// Hierarchical statistics registry — the single naming and emission
// authority for every simulator counter. Components keep plain uint64
// members for hot-path increments and bind them here under dotted,
// component-scoped names ("core.fetch.fetched", "mem.l1d.misses.main",
// "spear.pt.extracted"); distributions and derived formula stats register
// alongside. Emitters render the whole tree as aligned text, nested JSON
// (the schema the bench trajectory and CI consume) or flat CSV.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "telemetry/json.h"
#include "telemetry/stat.h"

namespace spear::telemetry {

// Version of the emitted stats/bench JSON schema. Bump when renaming stats
// or restructuring the document; spearstats and CI check it.
// v3: sampled runs add a "sampling" member (interval estimates with
// confidence intervals) to runner rows and spearsim stats documents.
inline constexpr int kStatsSchemaVersion = 3;

class StatRegistry {
 public:
  // Name prefix prepended to every subsequent Bind*/AddFormula name. Lets a
  // multi-instance owner (CmpSystem) reuse the components' RegisterStats
  // methods verbatim under per-instance scopes ("core0.mem.l1d.hits.main").
  // The default empty prefix leaves names exactly as registered.
  void SetPrefix(std::string prefix) { prefix_ = std::move(prefix); }
  const std::string& prefix() const { return prefix_; }

  // Binds a scalar counter by pointer. The pointee must outlive every read
  // of the registry. Re-binding an existing name replaces the binding (a
  // re-registered component keeps one entry, matching the old registry).
  void BindCounter(const std::string& name, const std::uint64_t* v,
                   const std::string& desc = "");

  // Binds a distribution owned by the registering component.
  void BindDistribution(const std::string& name, const Distribution* d,
                        const std::string& desc = "");

  // Registers a derived stat evaluated at read/emission time.
  void AddFormula(const std::string& name, Formula fn,
                  const std::string& desc = "");

  bool Has(const std::string& name) const { return stats_.count(name) > 0; }
  StatKind KindOf(const std::string& name) const;

  // Typed reads; SPEAR_CHECK-fail on a missing name or kind mismatch.
  std::uint64_t Counter(const std::string& name) const;
  const Distribution& Dist(const std::string& name) const;
  double Eval(const std::string& name) const;  // formula value

  // Numeric read across kinds: counters widen to double, formulas evaluate,
  // distributions read their mean.
  double Value(const std::string& name) const;

  // Ratio helper returning 0 when the denominator is zero (backward
  // compatible with the old flat registry's Ratio()).
  double Ratio(const std::string& num, const std::string& den) const {
    return SafeRatio(Counter(num), Counter(den));
  }

  std::size_t size() const { return stats_.size(); }

  // All registered names, sorted (std::map order).
  std::vector<std::string> Names() const;

  // ---- emission ----

  // Aligned "name  value  # desc" lines, one stat per line.
  std::string Text() const;

  // The stats tree as nested JSON: dotted names become nested objects;
  // counters emit as integers, formulas as doubles, distributions as
  // {count,min,max,mean,stddev[,buckets]} objects.
  JsonValue Json() const;

  // Flat "name,value" CSV (distributions expand to .count/.min/.max/.mean).
  std::string Csv() const;

 private:
  struct Entry {
    StatKind kind = StatKind::kCounter;
    const std::uint64_t* counter = nullptr;
    const Distribution* dist = nullptr;
    Formula formula;
    std::string desc;
  };

  const Entry& At(const std::string& name) const;

  std::string prefix_;
  std::map<std::string, Entry> stats_;
};

// Wraps the full stats tree in the versioned envelope every emitter uses:
//   {"schema_version":2, "kind":<kind>, <meta keys...>, "stats":{...}}
// `meta` members are spliced in between the header and the stats.
JsonValue StatsDocument(const StatRegistry& reg, const std::string& kind,
                        const JsonValue& meta);

// Writes `text` to `path` ("-" means stdout). Returns false (with a
// perror-style message on stderr) if the file cannot be written.
bool WriteFileOrStdout(const std::string& path, const std::string& text);

}  // namespace spear::telemetry
