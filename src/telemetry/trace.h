// Low-overhead pipeline event trace.
//
// The core records one fixed-size binary record per instruction lifecycle
// event (fetch, dispatch, issue, complete, commit, squash) plus the SPEAR
// session events (trigger, live-in copy, p-thread extraction/retire,
// session end) into a bounded ring buffer; exporters convert the drained
// records to the Kanata or gem5 O3PipeView text formats for pipeline
// visualization, or to a raw binary stream.
//
// Cost model: when no trace is attached the per-event hook is a single
// null-pointer test; compiling with -DSPEAR_TELEMETRY_TRACE=0 removes even
// that (the hook expands to nothing), which the determinism test uses to
// show tracing has zero effect on simulated cycles.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"

#ifndef SPEAR_TELEMETRY_TRACE
#define SPEAR_TELEMETRY_TRACE 1
#endif

namespace spear::telemetry {

inline constexpr bool kTraceCompiled = SPEAR_TELEMETRY_TRACE != 0;

enum class TraceEvent : std::uint8_t {
  // Instruction lifecycle (uid identifies the dynamic instance).
  kFetch = 0,     // entered the IFQ
  kDispatch = 1,  // decoded/renamed into the RUU (aux: 1 = wrong path)
  kIssue = 2,     // won a functional unit
  kComplete = 3,  // wrote back
  kCommit = 4,    // retired architecturally (main thread)
  kSquash = 5,    // discarded (wrong path / IFQ flush / session teardown)
  // SPEAR session lifecycle (uid is the triggering d-load's instance).
  kTrigger = 6,      // trigger fired (aux: spec index)
  kLiveInCopy = 7,   // live-in copy began (aux: registers to copy)
  kPtExtract = 8,    // PE pulled this instruction into the p-thread
  kPtRetire = 9,     // drained from the p-thread RUU
  kSessionEnd = 10,  // pre-execution ended (aux: 1 = completed, 0 = aborted)
};

const char* TraceEventName(TraceEvent e);

// One packed trace record; 24 bytes in the binary encoding.
struct TraceRecord {
  Cycle cycle = 0;
  std::uint64_t uid = 0;  // (fetch seq << 1) | thread id
  Pc pc = 0;
  TraceEvent event = TraceEvent::kFetch;
  std::uint8_t tid = 0;
  std::uint16_t aux = 0;

  bool operator==(const TraceRecord&) const = default;
};

// The per-instance trace id: a fetched instruction and its p-thread copy
// (dual delivery) are distinct instances of the same fetch sequence.
inline std::uint64_t TraceUid(std::uint64_t fetch_seq, ThreadId tid) {
  return (fetch_seq << 1) | tid;
}

class PipeTrace {
 public:
  struct Config {
    std::size_t capacity = 1u << 20;  // ring size in records (24 B each)
    Cycle start_cycle = 0;            // first traced cycle
    Cycle num_cycles = UINT64_MAX;    // window length from start_cycle
  };

  explicit PipeTrace(const Config& config);

  // True when `now` is inside the [start, start+num) trace window.
  bool Armed(Cycle now) const {
    return now >= config_.start_cycle &&
           now - config_.start_cycle < config_.num_cycles;
  }

  void Record(TraceEvent event, Cycle cycle, std::uint64_t uid, Pc pc,
              ThreadId tid, std::uint16_t aux = 0) {
    if (!Armed(cycle)) return;
    if (size_ == ring_.size()) {
      head_ = (head_ + 1) % ring_.size();  // overwrite the oldest
      --size_;
      ++dropped_;
    }
    ring_[(head_ + size_) % ring_.size()] =
        TraceRecord{cycle, uid, pc, event, tid, aux};
    ++size_;
  }

  void Clear() {
    head_ = size_ = 0;
    dropped_ = 0;
  }

  std::size_t size() const { return size_; }
  std::uint64_t dropped() const { return dropped_; }
  const Config& config() const { return config_; }

  // Records in chronological order (the ring preserves insertion order).
  std::vector<TraceRecord> Records() const;

  // ---- binary stream ----
  // Layout: 8-byte magic "SPTRACE1", u64 record count, u64 dropped count,
  // then `count` records of 24 little-endian bytes each.
  std::string EncodeBinary() const;
  static bool DecodeBinary(const std::string& bytes,
                           std::vector<TraceRecord>* out,
                           std::uint64_t* dropped, std::string* error);

  // ---- text exporters ----
  // `label` renders an instruction for display (e.g. disassembly by pc);
  // when null, the hex pc is used.
  using LabelFn = std::function<std::string(Pc)>;
  std::string ExportKanata(const LabelFn& label = nullptr) const;
  std::string ExportO3PipeView(const LabelFn& label = nullptr) const;

 private:
  Config config_;
  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace spear::telemetry

// Trace hook used by the core's pipeline stages. Compiles to nothing when
// SPEAR_TELEMETRY_TRACE is 0; otherwise costs one branch when no trace is
// attached.
#if SPEAR_TELEMETRY_TRACE
#define SPEAR_TRACE_EVENT(trace, ...)                        \
  do {                                                       \
    if ((trace) != nullptr) (trace)->Record(__VA_ARGS__);    \
  } while (0)
#else
#define SPEAR_TRACE_EVENT(trace, ...) \
  do {                                \
  } while (0)
#endif
