// Statistic value types for the telemetry registry: bound scalar counters,
// owned distributions (histogram + moments) and derived formula stats.
//
// Components keep their hot-path counters as plain uint64 members (zero
// overhead to increment) and *bind* them into a StatRegistry by pointer;
// distributions have behaviour (bucketing, moments) so they are owned
// objects that components update directly. Formulas are evaluated lazily
// at emission time so derived values (IPC, miss ratios) never go stale.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/check.h"

namespace spear::telemetry {

enum class StatKind : std::uint8_t { kCounter, kDistribution, kFormula };

// A distribution/histogram over unsigned integer samples. Tracks count,
// sum, min, max and sum-of-squares (for mean/stddev) plus, when bucket
// upper bounds are supplied, a bucketed histogram: bucket i counts samples
// v with v <= bounds[i] (and an implicit overflow bucket at the end).
// All accumulators are integers so two identical runs produce bit-identical
// emitted values (the determinism tests rely on this).
class Distribution {
 public:
  Distribution() = default;
  explicit Distribution(std::vector<std::uint64_t> bucket_bounds)
      : bounds_(std::move(bucket_bounds)),
        buckets_(bounds_.size() + 1, 0) {
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
      SPEAR_CHECK(bounds_[i - 1] < bounds_[i]);
    }
  }

  void Add(std::uint64_t v) {
    if (count_ == 0 || v < min_) min_ = v;
    if (count_ == 0 || v > max_) max_ = v;
    ++count_;
    sum_ += v;
    sum_sq_ += static_cast<double>(v) * static_cast<double>(v);
    if (!buckets_.empty()) {
      std::size_t b = 0;
      while (b < bounds_.size() && v > bounds_[b]) ++b;
      ++buckets_[b];
    }
  }

  void Reset() {
    count_ = sum_ = min_ = max_ = 0;
    sum_sq_ = 0.0;
    for (std::uint64_t& b : buckets_) b = 0;
  }

  // Folds `other` into this distribution: counts, sums, extrema,
  // sum-of-squares and (when both are bucketed) per-bucket tallies.
  // Merge(a, b) equals feeding every sample of both through Add(), so
  // per-interval distributions (sampled simulation) aggregate exactly.
  // The bucket bounds must match — merging histograms with different
  // bucketing has no exact answer.
  void Merge(const Distribution& other) {
    SPEAR_CHECK(bounds_ == other.bounds_);
    if (other.count_ == 0) return;
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (count_ == 0 || other.max_ > max_) max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
    sum_sq_ += other.sum_sq_;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  double Variance() const {
    if (count_ == 0) return 0.0;
    const double m = Mean();
    const double v = sum_sq_ / static_cast<double>(count_) - m * m;
    return v < 0.0 ? 0.0 : v;  // clamp the usual negative epsilon
  }
  const std::vector<std::uint64_t>& bucket_bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  double sum_sq_ = 0.0;
  std::vector<std::uint64_t> bounds_;  // bucket upper bounds, ascending
  std::vector<std::uint64_t> buckets_;  // bounds_.size() + 1 (overflow last)
};

// A derived statistic computed from other values at emission time.
using Formula = std::function<double()>;

// Helper for the ubiquitous ratio formula; returns 0 when the denominator
// is zero (matches the old StatsRegistry::Ratio contract).
inline double SafeRatio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace spear::telemetry
