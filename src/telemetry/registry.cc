#include "telemetry/registry.h"

#include <cinttypes>
#include <cmath>

namespace spear::telemetry {

void StatRegistry::BindCounter(const std::string& name, const std::uint64_t* v,
                               const std::string& desc) {
  SPEAR_CHECK(v != nullptr);
  Entry e;
  e.kind = StatKind::kCounter;
  e.counter = v;
  e.desc = desc;
  stats_[prefix_ + name] = std::move(e);
}

void StatRegistry::BindDistribution(const std::string& name,
                                    const Distribution* d,
                                    const std::string& desc) {
  SPEAR_CHECK(d != nullptr);
  Entry e;
  e.kind = StatKind::kDistribution;
  e.dist = d;
  e.desc = desc;
  stats_[prefix_ + name] = std::move(e);
}

void StatRegistry::AddFormula(const std::string& name, Formula fn,
                              const std::string& desc) {
  SPEAR_CHECK(fn != nullptr);
  Entry e;
  e.kind = StatKind::kFormula;
  e.formula = std::move(fn);
  e.desc = desc;
  stats_[prefix_ + name] = std::move(e);
}

const StatRegistry::Entry& StatRegistry::At(const std::string& name) const {
  auto it = stats_.find(name);
  SPEAR_CHECK(it != stats_.end());
  return it->second;
}

StatKind StatRegistry::KindOf(const std::string& name) const {
  return At(name).kind;
}

std::uint64_t StatRegistry::Counter(const std::string& name) const {
  const Entry& e = At(name);
  SPEAR_CHECK(e.kind == StatKind::kCounter);
  return *e.counter;
}

const Distribution& StatRegistry::Dist(const std::string& name) const {
  const Entry& e = At(name);
  SPEAR_CHECK(e.kind == StatKind::kDistribution);
  return *e.dist;
}

double StatRegistry::Eval(const std::string& name) const {
  const Entry& e = At(name);
  SPEAR_CHECK(e.kind == StatKind::kFormula);
  return e.formula();
}

double StatRegistry::Value(const std::string& name) const {
  const Entry& e = At(name);
  switch (e.kind) {
    case StatKind::kCounter: return static_cast<double>(*e.counter);
    case StatKind::kFormula: return e.formula();
    case StatKind::kDistribution: return e.dist->Mean();
  }
  return 0.0;
}

std::vector<std::string> StatRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(stats_.size());
  for (const auto& [name, entry] : stats_) names.push_back(name);
  return names;
}

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

JsonValue DistJson(const Distribution& d) {
  JsonValue obj = JsonValue::Object();
  obj.Set("count", d.count());
  obj.Set("sum", d.sum());
  obj.Set("min", d.min());
  obj.Set("max", d.max());
  obj.Set("mean", d.Mean());
  obj.Set("stddev", std::sqrt(d.Variance()));
  if (!d.buckets().empty()) {
    JsonValue bounds = JsonValue::Array();
    for (std::uint64_t b : d.bucket_bounds()) bounds.Append(b);
    JsonValue counts = JsonValue::Array();
    for (std::uint64_t c : d.buckets()) counts.Append(c);
    obj.Set("bucket_le", std::move(bounds));
    obj.Set("bucket_counts", std::move(counts));
  }
  return obj;
}

}  // namespace

std::string StatRegistry::Text() const {
  std::size_t width = 0;
  for (const auto& [name, entry] : stats_) {
    if (name.size() > width) width = name.size();
  }
  std::string out;
  char buf[160];
  for (const auto& [name, e] : stats_) {
    std::string value;
    switch (e.kind) {
      case StatKind::kCounter:
        std::snprintf(buf, sizeof(buf), "%" PRIu64, *e.counter);
        value = buf;
        break;
      case StatKind::kFormula:
        value = FormatDouble(e.formula());
        break;
      case StatKind::kDistribution:
        std::snprintf(buf, sizeof(buf),
                      "count=%" PRIu64 " min=%" PRIu64 " max=%" PRIu64
                      " mean=%s",
                      e.dist->count(), e.dist->min(), e.dist->max(),
                      FormatDouble(e.dist->Mean()).c_str());
        value = buf;
        break;
    }
    std::snprintf(buf, sizeof(buf), "%-*s %20s", static_cast<int>(width),
                  name.c_str(), value.c_str());
    out += buf;
    if (!e.desc.empty()) {
      out += "  # ";
      out += e.desc;
    }
    out.push_back('\n');
  }
  return out;
}

JsonValue StatRegistry::Json() const {
  JsonValue root = JsonValue::Object();
  for (const auto& [name, e] : stats_) {
    // Walk/create the nested objects for all but the last dotted segment.
    JsonValue* node = &root;
    std::size_t start = 0;
    while (true) {
      const std::size_t dot = name.find('.', start);
      if (dot == std::string::npos) break;
      const std::string seg = name.substr(start, dot - start);
      JsonValue* next = const_cast<JsonValue*>(node->Find(seg));
      if (next == nullptr || next->kind() != JsonValue::Kind::kObject) {
        next = &node->Set(seg, JsonValue::Object());
      }
      node = next;
      start = dot + 1;
    }
    const std::string leaf = name.substr(start);
    switch (e.kind) {
      case StatKind::kCounter:
        node->Set(leaf, *e.counter);
        break;
      case StatKind::kFormula:
        node->Set(leaf, e.formula());
        break;
      case StatKind::kDistribution:
        node->Set(leaf, DistJson(*e.dist));
        break;
    }
  }
  return root;
}

std::string StatRegistry::Csv() const {
  std::string out = "name,value\n";
  char buf[128];
  for (const auto& [name, e] : stats_) {
    switch (e.kind) {
      case StatKind::kCounter:
        std::snprintf(buf, sizeof(buf), "%s,%" PRIu64 "\n", name.c_str(),
                      *e.counter);
        out += buf;
        break;
      case StatKind::kFormula:
        out += name + "," + FormatDouble(e.formula()) + "\n";
        break;
      case StatKind::kDistribution:
        std::snprintf(buf, sizeof(buf),
                      "%s.count,%" PRIu64 "\n%s.min,%" PRIu64 "\n%s.max,%" PRIu64
                      "\n",
                      name.c_str(), e.dist->count(), name.c_str(),
                      e.dist->min(), name.c_str(), e.dist->max());
        out += buf;
        out += name + ".mean," + FormatDouble(e.dist->Mean()) + "\n";
        break;
    }
  }
  return out;
}

JsonValue StatsDocument(const StatRegistry& reg, const std::string& kind,
                        const JsonValue& meta) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema_version", kStatsSchemaVersion);
  doc.Set("kind", kind);
  if (meta.kind() == JsonValue::Kind::kObject) {
    for (const auto& [k, v] : meta.members()) doc.Set(k, v);
  }
  doc.Set("stats", reg.Json());
  return doc;
}

bool WriteFileOrStdout(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "telemetry: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace spear::telemetry
