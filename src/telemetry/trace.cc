#include "telemetry/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>

#include "common/check.h"

namespace spear::telemetry {

const char* TraceEventName(TraceEvent e) {
  switch (e) {
    case TraceEvent::kFetch: return "fetch";
    case TraceEvent::kDispatch: return "dispatch";
    case TraceEvent::kIssue: return "issue";
    case TraceEvent::kComplete: return "complete";
    case TraceEvent::kCommit: return "commit";
    case TraceEvent::kSquash: return "squash";
    case TraceEvent::kTrigger: return "spear.trigger";
    case TraceEvent::kLiveInCopy: return "spear.livein_copy";
    case TraceEvent::kPtExtract: return "spear.extract";
    case TraceEvent::kPtRetire: return "spear.pt_retire";
    case TraceEvent::kSessionEnd: return "spear.session_end";
  }
  return "?";
}

PipeTrace::PipeTrace(const Config& config) : config_(config) {
  SPEAR_CHECK(config.capacity > 0);
  ring_.resize(config.capacity);
}

std::vector<TraceRecord> PipeTrace::Records() const {
  std::vector<TraceRecord> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Binary stream.
// ---------------------------------------------------------------------------

namespace {

constexpr char kTraceMagic[8] = {'S', 'P', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr std::size_t kRecordBytes = 24;

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint64_t GetU64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

std::string PipeTrace::EncodeBinary() const {
  std::string out;
  out.reserve(24 + size_ * kRecordBytes);
  out.append(kTraceMagic, sizeof(kTraceMagic));
  PutU64(&out, size_);
  PutU64(&out, dropped_);
  for (std::size_t i = 0; i < size_; ++i) {
    const TraceRecord& r = ring_[(head_ + i) % ring_.size()];
    PutU64(&out, r.cycle);
    PutU64(&out, r.uid);
    // pc (4) + event (1) + tid (1) + aux (2) packed into one u64.
    PutU64(&out, static_cast<std::uint64_t>(r.pc) |
                     (static_cast<std::uint64_t>(r.event) << 32) |
                     (static_cast<std::uint64_t>(r.tid) << 40) |
                     (static_cast<std::uint64_t>(r.aux) << 48));
  }
  return out;
}

bool PipeTrace::DecodeBinary(const std::string& bytes,
                             std::vector<TraceRecord>* out,
                             std::uint64_t* dropped, std::string* error) {
  auto fail = [error](const char* msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (bytes.size() < 24) return fail("truncated header");
  if (std::memcmp(bytes.data(), kTraceMagic, sizeof(kTraceMagic)) != 0) {
    return fail("bad magic (not a SPTRACE1 stream)");
  }
  const std::uint64_t count = GetU64(bytes.data() + 8);
  if (dropped != nullptr) *dropped = GetU64(bytes.data() + 16);
  if (bytes.size() != 24 + count * kRecordBytes) {
    return fail("record payload size mismatch");
  }
  out->clear();
  out->reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const char* p = bytes.data() + 24 + i * kRecordBytes;
    TraceRecord r;
    r.cycle = GetU64(p);
    r.uid = GetU64(p + 8);
    const std::uint64_t packed = GetU64(p + 16);
    r.pc = static_cast<Pc>(packed & 0xFFFFFFFFu);
    r.event = static_cast<TraceEvent>((packed >> 32) & 0xFF);
    r.tid = static_cast<std::uint8_t>((packed >> 40) & 0xFF);
    r.aux = static_cast<std::uint16_t>(packed >> 48);
    if (r.event > TraceEvent::kSessionEnd) return fail("bad event kind");
    out->push_back(r);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Kanata exporter (format version 0004, as consumed by the Kanata pipeline
// viewer). Stage names: F (IFQ residency), Ds (dispatched, waiting), Is
// (executing), Wb (completed, waiting to retire); p-thread instructions use
// Xt for their extraction residency. SPEAR session events appear as L
// (label) annotations on the triggering d-load's row.
// ---------------------------------------------------------------------------

namespace {

struct KanataRow {
  std::int64_t id = -1;       // display id; -1 = not yet introduced
  std::string stage;          // currently open stage, empty if none
  bool closed = false;        // retired or flushed
};

std::string DefaultLabel(Pc pc) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%x", pc);
  return buf;
}

}  // namespace

std::string PipeTrace::ExportKanata(const LabelFn& label) const {
  std::string out = "Kanata\t0004\n";
  const std::vector<TraceRecord> recs = Records();
  if (recs.empty()) return out;

  char buf[192];
  std::snprintf(buf, sizeof(buf), "C=\t%" PRIu64 "\n", recs.front().cycle);
  out += buf;

  std::map<std::uint64_t, KanataRow> rows;
  Cycle cur_cycle = recs.front().cycle;
  std::int64_t next_id = 0;
  std::int64_t next_retire = 0;

  auto advance_to = [&](Cycle c) {
    if (c > cur_cycle) {
      std::snprintf(buf, sizeof(buf), "C\t%" PRIu64 "\n", c - cur_cycle);
      out += buf;
      cur_cycle = c;
    }
  };
  auto ensure_row = [&](const TraceRecord& r) -> KanataRow& {
    KanataRow& row = rows[r.uid];
    if (row.id < 0) {
      row.id = next_id++;
      std::snprintf(buf, sizeof(buf), "I\t%" PRId64 "\t%" PRIu64 "\t%u\n",
                    row.id, r.uid >> 1, r.tid);
      out += buf;
      const std::string text =
          (label ? label(r.pc) : DefaultLabel(r.pc));
      std::snprintf(buf, sizeof(buf), "L\t%" PRId64 "\t0\t%s%s\n", row.id,
                    r.tid == kPThread ? "[pt] " : "", text.c_str());
      out += buf;
    }
    return row;
  };
  auto switch_stage = [&](KanataRow& row, const char* stage) {
    if (!row.stage.empty()) {
      std::snprintf(buf, sizeof(buf), "E\t%" PRId64 "\t0\t%s\n", row.id,
                    row.stage.c_str());
      out += buf;
    }
    row.stage = stage;
    if (!row.stage.empty()) {
      std::snprintf(buf, sizeof(buf), "S\t%" PRId64 "\t0\t%s\n", row.id,
                    stage);
      out += buf;
    }
  };
  auto retire = [&](KanataRow& row, bool flush) {
    switch_stage(row, "");
    std::snprintf(buf, sizeof(buf), "R\t%" PRId64 "\t%" PRId64 "\t%d\n",
                  row.id, flush ? 0 : next_retire++, flush ? 1 : 0);
    out += buf;
    row.closed = true;
  };
  auto annotate = [&](KanataRow& row, const std::string& text) {
    std::snprintf(buf, sizeof(buf), "L\t%" PRId64 "\t1\t%s\n", row.id,
                  text.c_str());
    out += buf;
  };

  for (const TraceRecord& r : recs) {
    advance_to(r.cycle);
    // A closed row can reappear only on uid reuse after very long runs;
    // treat it as a fresh instance.
    if (rows.count(r.uid) != 0 && rows[r.uid].closed) rows.erase(r.uid);
    KanataRow& row = ensure_row(r);
    switch (r.event) {
      case TraceEvent::kFetch: switch_stage(row, "F"); break;
      case TraceEvent::kPtExtract: switch_stage(row, "Xt"); break;
      case TraceEvent::kDispatch: switch_stage(row, "Ds"); break;
      case TraceEvent::kIssue: switch_stage(row, "Is"); break;
      case TraceEvent::kComplete: switch_stage(row, "Wb"); break;
      case TraceEvent::kCommit:
      case TraceEvent::kPtRetire: retire(row, /*flush=*/false); break;
      case TraceEvent::kSquash: retire(row, /*flush=*/true); break;
      case TraceEvent::kTrigger:
        std::snprintf(buf, sizeof(buf), "trigger fired (spec %u)", r.aux);
        annotate(row, buf);
        break;
      case TraceEvent::kLiveInCopy:
        std::snprintf(buf, sizeof(buf), "live-in copy (%u regs)", r.aux);
        annotate(row, buf);
        break;
      case TraceEvent::kSessionEnd:
        annotate(row, r.aux != 0 ? "pre-exec session completed"
                                 : "pre-exec session aborted");
        break;
    }
  }
  // Close any rows still in flight at the end of the window.
  for (auto& [uid, row] : rows) {
    if (!row.closed && !row.stage.empty()) {
      std::snprintf(buf, sizeof(buf), "E\t%" PRId64 "\t0\t%s\n", row.id,
                    row.stage.c_str());
      out += buf;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// gem5 O3PipeView exporter (consumed by gem5's util/o3-pipeview.py and
// compatible viewers). One record block per instruction; SPEAR session
// events become comment lines, which viewers ignore.
// ---------------------------------------------------------------------------

std::string PipeTrace::ExportO3PipeView(const LabelFn& label) const {
  struct Inst {
    Cycle fetch = 0, dispatch = 0, issue = 0, complete = 0, retire = 0;
    Pc pc = 0;
    std::uint8_t tid = 0;
    bool squashed = false;
    std::uint64_t order = 0;  // first-seen order for stable output
  };
  std::map<std::uint64_t, Inst> insts;
  std::string comments;
  char buf[192];
  std::uint64_t order = 0;

  for (const TraceRecord& r : Records()) {
    switch (r.event) {
      case TraceEvent::kTrigger:
      case TraceEvent::kLiveInCopy:
      case TraceEvent::kSessionEnd:
        std::snprintf(buf, sizeof(buf),
                      "# cycle %" PRIu64 ": %s pc=0x%x aux=%u\n", r.cycle,
                      TraceEventName(r.event), r.pc, r.aux);
        comments += buf;
        continue;
      default:
        break;
    }
    Inst& in = insts[r.uid];
    if (in.order == 0) {
      in.order = ++order;
      in.pc = r.pc;
      in.tid = r.tid;
    }
    switch (r.event) {
      case TraceEvent::kFetch:
      case TraceEvent::kPtExtract: in.fetch = r.cycle; break;
      case TraceEvent::kDispatch: in.dispatch = r.cycle; break;
      case TraceEvent::kIssue: in.issue = r.cycle; break;
      case TraceEvent::kComplete: in.complete = r.cycle; break;
      case TraceEvent::kCommit:
      case TraceEvent::kPtRetire: in.retire = r.cycle; break;
      case TraceEvent::kSquash: in.squashed = true; break;
      default: break;
    }
  }

  std::vector<const Inst*> ordered;
  std::vector<std::uint64_t> uids;
  ordered.reserve(insts.size());
  for (const auto& [uid, in] : insts) {
    ordered.push_back(&in);
    uids.push_back(uid);
  }
  // Sort by first appearance so the stream reads in program-fetch order.
  std::vector<std::size_t> idx(ordered.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return ordered[a]->order < ordered[b]->order;
  });

  std::string out = comments;
  for (std::size_t i : idx) {
    const Inst& in = *ordered[i];
    const std::string text = label ? label(in.pc) : DefaultLabel(in.pc);
    std::snprintf(buf, sizeof(buf),
                  "O3PipeView:fetch:%" PRIu64 ":0x%08x:%u:%" PRIu64 ":%s%s\n",
                  in.fetch, in.pc, in.tid, uids[i] >> 1,
                  in.tid == kPThread ? "[pt] " : "", text.c_str());
    out += buf;
    std::snprintf(buf, sizeof(buf), "O3PipeView:decode:%" PRIu64 "\n",
                  in.dispatch);
    out += buf;
    std::snprintf(buf, sizeof(buf), "O3PipeView:rename:%" PRIu64 "\n",
                  in.dispatch);
    out += buf;
    std::snprintf(buf, sizeof(buf), "O3PipeView:dispatch:%" PRIu64 "\n",
                  in.dispatch);
    out += buf;
    std::snprintf(buf, sizeof(buf), "O3PipeView:issue:%" PRIu64 "\n",
                  in.issue);
    out += buf;
    std::snprintf(buf, sizeof(buf), "O3PipeView:complete:%" PRIu64 "\n",
                  in.complete);
    out += buf;
    std::snprintf(buf, sizeof(buf), "O3PipeView:retire:%" PRIu64 ":store:0\n",
                  in.squashed ? 0 : in.retire);
    out += buf;
  }
  return out;
}

}  // namespace spear::telemetry
