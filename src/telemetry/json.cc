#include "telemetry/json.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace spear::telemetry {

JsonValue& JsonValue::Set(const std::string& key, JsonValue v) {
  kind_ = Kind::kObject;
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  object_.emplace_back(key, std::move(v));
  return object_.back().second;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue* JsonValue::FindPath(const std::string& dotted) const {
  const JsonValue* cur = this;
  std::size_t start = 0;
  while (start <= dotted.size()) {
    const std::size_t dot = dotted.find('.', start);
    const std::string seg = dotted.substr(
        start, dot == std::string::npos ? std::string::npos : dot - start);
    cur = cur->Find(seg);
    if (cur == nullptr || dot == std::string::npos) return cur;
    start = dot + 1;
  }
  return nullptr;
}

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNewlineIndent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  char buf[64];
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kInt:
      std::snprintf(buf, sizeof(buf), "%" PRId64, int_);
      *out += buf;
      return;
    case Kind::kDouble:
      if (!std::isfinite(double_)) {
        *out += "null";  // JSON has no inf/nan
        return;
      }
      std::snprintf(buf, sizeof(buf), "%.17g", double_);
      *out += buf;
      return;
    case Kind::kString:
      AppendEscaped(out, string_);
      return;
    case Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& v : array_) {
        if (!first) out->push_back(',');
        first = false;
        AppendNewlineIndent(out, indent, depth + 1);
        v.DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) AppendNewlineIndent(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out->push_back(',');
        first = false;
        AppendNewlineIndent(out, indent, depth + 1);
        AppendEscaped(out, k);
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        v.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) AppendNewlineIndent(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser: a straightforward recursive-descent over the full grammar (minus
// \uXXXX surrogate pairs, which the emitters never produce for the ASCII
// stat names and workload names this parser exists to read back).
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const std::string& msg) {
    if (error_ != nullptr) {
      *error_ = "offset " + std::to_string(pos_) + ": " + msg;
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *out = JsonValue(std::move(s));
        return true;
      }
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          *out = JsonValue(true);
          return true;
        }
        return Fail("bad literal");
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          *out = JsonValue(false);
          return true;
        }
        return Fail("bad literal");
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          *out = JsonValue();
          return true;
        }
        return Fail("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // Basic-plane code points only; encode as UTF-8.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool is_int = true;
    if (Consume('.')) {
      is_int = false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_int = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ == start) return Fail("expected value");
    const std::string tok = text_.substr(start, pos_ - start);
    if (is_int) {
      *out = JsonValue(
          static_cast<std::int64_t>(std::strtoll(tok.c_str(), nullptr, 10)));
    } else {
      *out = JsonValue(std::strtod(tok.c_str(), nullptr));
    }
    return true;
  }

  bool ParseArray(JsonValue* out) {
    Consume('[');
    *out = JsonValue::Array();
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      JsonValue v;
      SkipWs();
      if (!ParseValue(&v)) return false;
      out->Append(std::move(v));
      SkipWs();
      if (Consume(']')) return true;
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
  }

  bool ParseObject(JsonValue* out) {
    Consume('{');
    *out = JsonValue::Object();
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      SkipWs();
      JsonValue v;
      if (!ParseValue(&v)) return false;
      out->Set(key, std::move(v));
      SkipWs();
      if (Consume('}')) return true;
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool JsonParse(const std::string& text, JsonValue* out, std::string* error) {
  Parser p(text, error);
  return p.Parse(out);
}

}  // namespace spear::telemetry
