// Minimal JSON document model, writer and parser used by the telemetry
// emitters, the bench result files and the spearstats validator. Objects
// preserve insertion order so emission is deterministic (two identical
// simulator runs must produce byte-identical stats files).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace spear::telemetry {

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,     // stored exactly; emitted without a decimal point
    kDouble,
    kString,
    kArray,
    kObject,
  };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}                // NOLINT
  JsonValue(std::int64_t i) : kind_(Kind::kInt), int_(i) {}          // NOLINT
  JsonValue(std::uint64_t u)                                         // NOLINT
      : kind_(Kind::kInt), int_(static_cast<std::int64_t>(u)) {}
  JsonValue(int i) : kind_(Kind::kInt), int_(i) {}                   // NOLINT
  JsonValue(double d) : kind_(Kind::kDouble), double_(d) {}          // NOLINT
  JsonValue(std::string s)                                           // NOLINT
      : kind_(Kind::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}     // NOLINT

  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }

  bool AsBool() const { return bool_; }
  std::int64_t AsInt() const {
    return kind_ == Kind::kDouble ? static_cast<std::int64_t>(double_) : int_;
  }
  double AsDouble() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& AsString() const { return string_; }

  // Array access.
  void Append(JsonValue v) { array_.push_back(std::move(v)); }
  const std::vector<JsonValue>& items() const { return array_; }

  // Object access (insertion-ordered; Set replaces an existing key).
  JsonValue& Set(const std::string& key, JsonValue v);
  const JsonValue* Find(const std::string& key) const;  // nullptr if absent
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return object_;
  }

  // Convenience: walks a dotted path ("stats.core.cycles") through nested
  // objects; nullptr if any segment is missing.
  const JsonValue* FindPath(const std::string& dotted) const;

  // Serializes. indent <= 0 emits the compact single-line form.
  std::string Dump(int indent = 0) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

// Parses a JSON text. On failure returns null and, when `error` is given,
// fills it with "offset N: message".
bool JsonParse(const std::string& text, JsonValue* out, std::string* error);

}  // namespace spear::telemetry
