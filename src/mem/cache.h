// Generic set-associative cache with true-LRU replacement, write-back /
// write-allocate policy, and per-thread hit/miss accounting (the p-thread's
// accesses share the cache with the main thread — that sharing *is* the
// prefetching mechanism, so attribution matters for Figure 8).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "telemetry/registry.h"

namespace spear {

struct CacheConfig {
  std::string name = "cache";
  std::uint32_t sets = 256;
  std::uint32_t block_bytes = 32;
  std::uint32_t assoc = 4;

  std::uint64_t SizeBytes() const {
    return static_cast<std::uint64_t>(sets) * block_bytes * assoc;
  }
};

// Snapshot of a cache's tag/LRU arrays (not its statistics counters),
// taken after functional warmup so a checkpointed run can resume with the
// exact replacement state a live warmup would have produced. `flags` packs
// valid (bit 0) and dirty (bit 1) per line.
struct CacheState {
  std::uint64_t stamp = 0;
  std::vector<std::uint64_t> tags;
  std::vector<std::uint64_t> lru;
  std::vector<std::uint8_t> flags;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config)
      : config_(config),
        lines_(static_cast<std::size_t>(config.sets) * config.assoc),
        hits_(2, 0),
        misses_(2, 0) {
    SPEAR_CHECK(config.sets > 0 && config.assoc > 0);
    SPEAR_CHECK((config.sets & (config.sets - 1)) == 0);
    SPEAR_CHECK((config.block_bytes & (config.block_bytes - 1)) == 0);
    block_shift_ = 0;
    while ((1u << block_shift_) < config.block_bytes) ++block_shift_;
  }

  // Simulates one access. Returns true on hit. On miss the block is
  // allocated (write-allocate for stores too) and the LRU victim evicted.
  // `asid` distinguishes address spaces sharing the cache (CMP shared L2:
  // each core's program lives at overlapping virtual addresses). It folds
  // into the tag above bit 32 — Addr is 32 bits wide, so asid bits can
  // never collide with block bits and asid 0 leaves keys bit-identical to
  // the historical single-space form. The set index uses only low block
  // bits, so spaces contend for sets but never alias tags.
  bool Access(Addr addr, bool write, ThreadId tid, std::uint32_t asid = 0) {
    const std::uint64_t block = (addr >> block_shift_) |
                                (static_cast<std::uint64_t>(asid) << 32);
    const std::uint32_t set = static_cast<std::uint32_t>(block) &
                              (config_.sets - 1);
    Line* base = &lines_[static_cast<std::size_t>(set) * config_.assoc];
    ++stamp_;

    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
      Line& line = base[w];
      if (line.valid && line.tag == block) {
        line.lru = stamp_;
        line.dirty = line.dirty || write;
        SPEAR_DCHECK(tid < hits_.size());
        ++hits_[tid];
        return true;
      }
    }

    // Miss: fill an invalid way if any, else evict the LRU way. Way 0
    // needs the explicit validity probe too — the old scan seeded the
    // victim with way 0 and only checked validity from way 1, so a set
    // restored with an invalid way 0 carrying a nonzero stamp (legal in a
    // CacheState) evicted a live line while free space sat unused.
    Line* victim = nullptr;
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
      if (!base[w].valid) {
        victim = &base[w];
        break;
      }
    }
    if (victim == nullptr) {
      victim = base;
      for (std::uint32_t w = 1; w < config_.assoc; ++w) {
        if (base[w].lru < victim->lru) victim = &base[w];
      }
    }
    if (victim->valid && victim->dirty) ++writebacks_;
    victim->valid = true;
    victim->tag = block;
    victim->lru = stamp_;
    victim->dirty = write;
    SPEAR_DCHECK(tid < misses_.size());
    ++misses_[tid];
    return false;
  }

  // Non-allocating presence probe (used by tests and by the profiler's
  // would-this-miss queries).
  bool Contains(Addr addr, std::uint32_t asid = 0) const {
    const std::uint64_t block = (addr >> block_shift_) |
                                (static_cast<std::uint64_t>(asid) << 32);
    const std::uint32_t set = static_cast<std::uint32_t>(block) &
                              (config_.sets - 1);
    const Line* base = &lines_[static_cast<std::size_t>(set) * config_.assoc];
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
      if (base[w].valid && base[w].tag == block) return true;
    }
    return false;
  }

  void Invalidate() {
    for (Line& line : lines_) line = Line{};
  }

  // Tag/LRU snapshot for the checkpoint layer. Counters are excluded on
  // purpose: a restored run's statistics must count only post-restore
  // activity, exactly like a live run that installed the same warm state.
  CacheState SaveState() const {
    CacheState s;
    s.stamp = stamp_;
    s.tags.reserve(lines_.size());
    s.lru.reserve(lines_.size());
    s.flags.reserve(lines_.size());
    for (const Line& line : lines_) {
      s.tags.push_back(line.tag);
      s.lru.push_back(line.lru);
      s.flags.push_back(static_cast<std::uint8_t>((line.valid ? 1u : 0u) |
                                                  (line.dirty ? 2u : 0u)));
    }
    return s;
  }

  // Installs a snapshot taken from a cache of identical geometry. Returns
  // false (leaving this cache untouched) on a line-count mismatch.
  bool RestoreState(const CacheState& s) {
    if (s.tags.size() != lines_.size() || s.lru.size() != lines_.size() ||
        s.flags.size() != lines_.size()) {
      return false;
    }
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      lines_[i].tag = s.tags[i];
      lines_[i].lru = s.lru[i];
      lines_[i].valid = (s.flags[i] & 1u) != 0;
      lines_[i].dirty = (s.flags[i] & 2u) != 0;
    }
    stamp_ = s.stamp;
    return true;
  }

  // Sizes the per-thread counter arrays for `slots` contexts (N main
  // threads + 1 p-thread slot). The default of 2 preserves the historical
  // main/p-thread pair; any tid at or beyond the configured count is a
  // caller bug caught by the DCHECKs in Access. Must run before
  // RegisterStats (the registry binds counter addresses) and resets the
  // counters it resizes.
  void ConfigureThreadSlots(std::size_t slots) {
    SPEAR_CHECK(slots >= 1);
    hits_.assign(slots, 0);
    misses_.assign(slots, 0);
  }

  const CacheConfig& config() const { return config_; }
  std::size_t thread_slots() const { return hits_.size(); }
  std::uint64_t hits(ThreadId tid) const {
    SPEAR_DCHECK(tid < hits_.size());
    return hits_[tid];
  }
  std::uint64_t misses(ThreadId tid) const {
    SPEAR_DCHECK(tid < misses_.size());
    return misses_[tid];
  }
  std::uint64_t total_hits() const {
    std::uint64_t total = 0;
    for (std::uint64_t h : hits_) total += h;
    return total;
  }
  std::uint64_t total_misses() const {
    std::uint64_t total = 0;
    for (std::uint64_t m : misses_) total += m;
    return total;
  }
  std::uint64_t writebacks() const { return writebacks_; }

  void ResetStats() {
    std::fill(hits_.begin(), hits_.end(), 0);
    std::fill(misses_.begin(), misses_.end(), 0);
    writebacks_ = 0;
  }

  // Binds this cache's counters under `prefix` (e.g. "mem.l1d"): per-thread
  // hit/miss attribution, writebacks and a derived demand miss ratio. Slot
  // 0 is `.main` and the last slot is `.pthread` (the p-thread context is
  // always the highest tid); extra main-thread slots appear as `.t<k>` only
  // when more than two contexts are configured, so single-program stats
  // documents are unchanged.
  void RegisterStats(telemetry::StatRegistry& reg,
                     const std::string& prefix) const {
    const std::size_t n = hits_.size();
    const std::size_t pt = n - 1;
    reg.BindCounter(prefix + ".hits.main", &hits_[0]);
    for (std::size_t t = 1; t < pt; ++t) {
      reg.BindCounter(prefix + ".hits.t" + std::to_string(t), &hits_[t]);
    }
    reg.BindCounter(prefix + ".hits.pthread", &hits_[pt]);
    reg.BindCounter(prefix + ".misses.main", &misses_[0]);
    for (std::size_t t = 1; t < pt; ++t) {
      reg.BindCounter(prefix + ".misses.t" + std::to_string(t), &misses_[t]);
    }
    reg.BindCounter(prefix + ".misses.pthread", &misses_[pt]);
    reg.BindCounter(prefix + ".writebacks", &writebacks_);
    reg.AddFormula(
        prefix + ".miss_ratio",
        [this] {
          return telemetry::SafeRatio(total_misses(),
                                      total_hits() + total_misses());
        },
        "all-thread misses / accesses");
    reg.AddFormula(
        prefix + ".miss_ratio.main",
        [this, pt] {
          std::uint64_t h = 0;
          std::uint64_t m = 0;
          for (std::size_t t = 0; t < pt; ++t) {
            h += hits_[t];
            m += misses_[t];
          }
          return telemetry::SafeRatio(m, h + m);
        },
        "demand (main-thread) miss ratio");
  }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;
    bool valid = false;
    bool dirty = false;
  };

  CacheConfig config_;
  std::vector<Line> lines_;
  unsigned block_shift_ = 0;
  std::uint64_t stamp_ = 0;
  // Per-thread-context hit/miss attribution, indexed by ThreadId. Sized by
  // ConfigureThreadSlots (default 2: one main thread + the p-thread).
  std::vector<std::uint64_t> hits_;
  std::vector<std::uint64_t> misses_;
  std::uint64_t writebacks_ = 0;
};

}  // namespace spear
