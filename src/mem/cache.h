// Generic set-associative cache with true-LRU replacement, write-back /
// write-allocate policy, and per-thread hit/miss accounting (the p-thread's
// accesses share the cache with the main thread — that sharing *is* the
// prefetching mechanism, so attribution matters for Figure 8).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "telemetry/registry.h"

namespace spear {

struct CacheConfig {
  std::string name = "cache";
  std::uint32_t sets = 256;
  std::uint32_t block_bytes = 32;
  std::uint32_t assoc = 4;

  std::uint64_t SizeBytes() const {
    return static_cast<std::uint64_t>(sets) * block_bytes * assoc;
  }
};

// Snapshot of a cache's tag/LRU arrays (not its statistics counters),
// taken after functional warmup so a checkpointed run can resume with the
// exact replacement state a live warmup would have produced. `flags` packs
// valid (bit 0) and dirty (bit 1) per line.
struct CacheState {
  std::uint64_t stamp = 0;
  std::vector<std::uint64_t> tags;
  std::vector<std::uint64_t> lru;
  std::vector<std::uint8_t> flags;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config)
      : config_(config),
        lines_(static_cast<std::size_t>(config.sets) * config.assoc) {
    SPEAR_CHECK(config.sets > 0 && config.assoc > 0);
    SPEAR_CHECK((config.sets & (config.sets - 1)) == 0);
    SPEAR_CHECK((config.block_bytes & (config.block_bytes - 1)) == 0);
    block_shift_ = 0;
    while ((1u << block_shift_) < config.block_bytes) ++block_shift_;
  }

  // Simulates one access. Returns true on hit. On miss the block is
  // allocated (write-allocate for stores too) and the LRU victim evicted.
  bool Access(Addr addr, bool write, ThreadId tid) {
    const std::uint64_t block = addr >> block_shift_;
    const std::uint32_t set = static_cast<std::uint32_t>(block) &
                              (config_.sets - 1);
    Line* base = &lines_[static_cast<std::size_t>(set) * config_.assoc];
    ++stamp_;

    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
      Line& line = base[w];
      if (line.valid && line.tag == block) {
        line.lru = stamp_;
        line.dirty = line.dirty || write;
        ++hits_[tid];
        return true;
      }
    }

    // Miss: fill an invalid way if any, else evict the LRU way. Way 0
    // needs the explicit validity probe too — the old scan seeded the
    // victim with way 0 and only checked validity from way 1, so a set
    // restored with an invalid way 0 carrying a nonzero stamp (legal in a
    // CacheState) evicted a live line while free space sat unused.
    Line* victim = nullptr;
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
      if (!base[w].valid) {
        victim = &base[w];
        break;
      }
    }
    if (victim == nullptr) {
      victim = base;
      for (std::uint32_t w = 1; w < config_.assoc; ++w) {
        if (base[w].lru < victim->lru) victim = &base[w];
      }
    }
    if (victim->valid && victim->dirty) ++writebacks_;
    victim->valid = true;
    victim->tag = block;
    victim->lru = stamp_;
    victim->dirty = write;
    ++misses_[tid];
    return false;
  }

  // Non-allocating presence probe (used by tests and by the profiler's
  // would-this-miss queries).
  bool Contains(Addr addr) const {
    const std::uint64_t block = addr >> block_shift_;
    const std::uint32_t set = static_cast<std::uint32_t>(block) &
                              (config_.sets - 1);
    const Line* base = &lines_[static_cast<std::size_t>(set) * config_.assoc];
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
      if (base[w].valid && base[w].tag == block) return true;
    }
    return false;
  }

  void Invalidate() {
    for (Line& line : lines_) line = Line{};
  }

  // Tag/LRU snapshot for the checkpoint layer. Counters are excluded on
  // purpose: a restored run's statistics must count only post-restore
  // activity, exactly like a live run that installed the same warm state.
  CacheState SaveState() const {
    CacheState s;
    s.stamp = stamp_;
    s.tags.reserve(lines_.size());
    s.lru.reserve(lines_.size());
    s.flags.reserve(lines_.size());
    for (const Line& line : lines_) {
      s.tags.push_back(line.tag);
      s.lru.push_back(line.lru);
      s.flags.push_back(static_cast<std::uint8_t>((line.valid ? 1u : 0u) |
                                                  (line.dirty ? 2u : 0u)));
    }
    return s;
  }

  // Installs a snapshot taken from a cache of identical geometry. Returns
  // false (leaving this cache untouched) on a line-count mismatch.
  bool RestoreState(const CacheState& s) {
    if (s.tags.size() != lines_.size() || s.lru.size() != lines_.size() ||
        s.flags.size() != lines_.size()) {
      return false;
    }
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      lines_[i].tag = s.tags[i];
      lines_[i].lru = s.lru[i];
      lines_[i].valid = (s.flags[i] & 1u) != 0;
      lines_[i].dirty = (s.flags[i] & 2u) != 0;
    }
    stamp_ = s.stamp;
    return true;
  }

  const CacheConfig& config() const { return config_; }
  std::uint64_t hits(ThreadId tid) const { return hits_[tid]; }
  std::uint64_t misses(ThreadId tid) const { return misses_[tid]; }
  std::uint64_t total_hits() const { return hits_[0] + hits_[1]; }
  std::uint64_t total_misses() const { return misses_[0] + misses_[1]; }
  std::uint64_t writebacks() const { return writebacks_; }

  void ResetStats() {
    hits_[0] = hits_[1] = misses_[0] = misses_[1] = 0;
    writebacks_ = 0;
  }

  // Binds this cache's counters under `prefix` (e.g. "mem.l1d"): per-thread
  // hit/miss attribution, writebacks and a derived demand miss ratio.
  void RegisterStats(telemetry::StatRegistry& reg,
                     const std::string& prefix) const {
    reg.BindCounter(prefix + ".hits.main", &hits_[kMainThread]);
    reg.BindCounter(prefix + ".hits.pthread", &hits_[kPThread]);
    reg.BindCounter(prefix + ".misses.main", &misses_[kMainThread]);
    reg.BindCounter(prefix + ".misses.pthread", &misses_[kPThread]);
    reg.BindCounter(prefix + ".writebacks", &writebacks_);
    reg.AddFormula(
        prefix + ".miss_ratio",
        [this] {
          return telemetry::SafeRatio(total_misses(),
                                      total_hits() + total_misses());
        },
        "all-thread misses / accesses");
    reg.AddFormula(
        prefix + ".miss_ratio.main",
        [this] {
          return telemetry::SafeRatio(misses_[kMainThread],
                                      hits_[kMainThread] +
                                          misses_[kMainThread]);
        },
        "demand (main-thread) miss ratio");
  }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;
    bool valid = false;
    bool dirty = false;
  };

  CacheConfig config_;
  std::vector<Line> lines_;
  unsigned block_shift_ = 0;
  std::uint64_t stamp_ = 0;
  std::uint64_t hits_[2] = {0, 0};
  std::uint64_t misses_[2] = {0, 0};
  std::uint64_t writebacks_ = 0;
};

}  // namespace spear
