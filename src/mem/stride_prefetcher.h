// Tagged per-PC stride prefetcher — the "traditional data prefetching"
// the paper positions SPEAR against (Section 1: stride schemes work on
// regular access patterns and fail on irregular ones). Implemented as a
// baseline comparator: bench_ext_prefetch runs baseline vs stride vs
// SPEAR vs both on the workload suite to reproduce that argument
// quantitatively.
//
// Classic RPT design (Chen & Baer): a table indexed by load PC holding the
// last address and last stride with a 2-bit confidence counter. Once a
// stride repeats, accesses predict-ahead by `degree` blocks.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace spear {

struct StridePrefetcherConfig {
  bool enabled = false;
  std::uint32_t table_entries = 256;  // power of two
  std::uint32_t degree = 2;           // how many strides ahead to fetch
  std::uint8_t confidence_threshold = 2;
};

class StridePrefetcher {
 public:
  explicit StridePrefetcher(const StridePrefetcherConfig& config)
      : config_(config), table_(config.table_entries) {
    SPEAR_CHECK((config.table_entries & (config.table_entries - 1)) == 0);
  }

  // Observes a demand load and returns up to `degree` prefetch addresses
  // via the output span. Returns how many were produced.
  int Observe(Pc pc, Addr addr, Addr* out, int out_cap) {
    Entry& e = table_[Index(pc)];
    int produced = 0;
    if (e.pc == pc) {
      const auto stride =
          static_cast<std::int64_t>(addr) - static_cast<std::int64_t>(e.last_addr);
      if (stride == e.stride && stride != 0) {
        if (e.confidence < 3) ++e.confidence;
      } else {
        if (e.confidence > 0) {
          --e.confidence;
        } else {
          e.stride = stride;
        }
      }
      if (e.confidence >= config_.confidence_threshold && e.stride != 0) {
        for (std::uint32_t d = 1; d <= config_.degree && produced < out_cap;
             ++d) {
          const std::int64_t target =
              static_cast<std::int64_t>(addr) + e.stride * static_cast<std::int64_t>(d);
          if (target < 0 || target > 0xffffffffll) break;
          out[produced++] = static_cast<Addr>(target);
        }
      }
    } else {
      e = Entry{};
      e.pc = pc;
    }
    e.last_addr = addr;
    return produced;
  }

  const StridePrefetcherConfig& config() const { return config_; }

 private:
  struct Entry {
    Pc pc = 0;
    Addr last_addr = 0;
    std::int64_t stride = 0;
    std::uint8_t confidence = 0;
  };

  std::uint32_t Index(Pc pc) const {
    return (pc >> 3) & (config_.table_entries - 1);
  }

  StridePrefetcherConfig config_;
  std::vector<Entry> table_;
};

}  // namespace spear
