// Two-level memory hierarchy per paper Table 2: split L1 (data side
// modeled; instruction fetch is assumed to hit, as the kernels are small
// loops — see DESIGN.md), unified L2, flat main-memory latency.
//
// Latencies follow the paper's model: an access costs the latency of the
// level that services it (L1 hit = 1 cycle, L1 miss/L2 hit = 12, L2 miss =
// 120 by default; Figure 9 sweeps the L2/memory pair).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/types.h"
#include "mem/cache.h"

namespace spear {

struct HierarchyConfig {
  CacheConfig l1d{"dl1", /*sets=*/256, /*block_bytes=*/32, /*assoc=*/4};
  CacheConfig l2{"ul2", /*sets=*/1024, /*block_bytes=*/64, /*assoc=*/4};
  std::uint32_t l1_latency = 1;
  std::uint32_t l2_latency = 12;
  std::uint32_t mem_latency = 120;
};

struct AccessOutcome {
  std::uint32_t latency = 0;
  bool l1_miss = false;
  bool l2_miss = false;
};

class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const HierarchyConfig& config)
      : config_(config), l1d_(config.l1d), l2_(config.l2) {
    block_shift_ = 0;
    while ((1u << block_shift_) < config.l1d.block_bytes) ++block_shift_;
  }

  // Simulates one data access at cycle `now`. Misses record an
  // outstanding fill; a later access to a block whose fill is still in
  // flight waits for the remaining time instead of observing an instant
  // hit (MSHR-merge behaviour). This matters for prefetching fidelity: a
  // p-thread access only fully hides a miss if it ran far enough ahead.
  AccessOutcome AccessData(Addr addr, bool write, ThreadId tid, Cycle now) {
    AccessOutcome out;
    const std::uint64_t block = addr >> block_shift_;

    if (l1d_.Access(addr, write, tid)) {
      out.latency = config_.l1_latency;
    } else {
      out.l1_miss = true;
      if (l2_.Access(addr, write, tid)) {
        out.latency = config_.l2_latency;
      } else {
        out.l2_miss = true;
        out.latency = config_.mem_latency;
      }
    }

    auto it = outstanding_.find(block);
    if (it != outstanding_.end()) {
      if (it->second > now) {
        // Merge into the in-flight fill: pay the remaining time.
        const auto remaining = static_cast<std::uint32_t>(it->second - now);
        out.latency = remaining > config_.l1_latency ? remaining
                                                     : config_.l1_latency;
        return out;
      }
      outstanding_.erase(it);
    }
    if (out.latency > config_.l1_latency) {
      outstanding_[block] = now + out.latency;
      if (outstanding_.size() > kOutstandingSweep) SweepOutstanding(now);
    }
    return out;
  }

  // Warming-only access: updates tag/LRU/dirty state exactly like
  // AccessData but skips the latency and MSHR-merge bookkeeping, none of
  // which is part of a WarmState. The fast-forward and sampling
  // substrates drive this once per load/store, so it must stay lean.
  void WarmData(Addr addr, bool write, ThreadId tid) {
    if (!l1d_.Access(addr, write, tid)) l2_.Access(addr, write, tid);
  }

  const HierarchyConfig& config() const { return config_; }
  Cache& l1d() { return l1d_; }
  const Cache& l1d() const { return l1d_; }
  Cache& l2() { return l2_; }
  const Cache& l2() const { return l2_; }

  void ResetStats() {
    l1d_.ResetStats();
    l2_.ResetStats();
  }

  // Binds both cache levels under "mem.l1d.*" / "mem.l2.*".
  void RegisterStats(telemetry::StatRegistry& reg) const {
    l1d_.RegisterStats(reg, "mem.l1d");
    l2_.RegisterStats(reg, "mem.l2");
  }

  std::size_t outstanding_fills() const { return outstanding_.size(); }

 private:
  static constexpr std::size_t kOutstandingSweep = 4096;

  void SweepOutstanding(Cycle now) {
    for (auto it = outstanding_.begin(); it != outstanding_.end();) {
      it = it->second <= now ? outstanding_.erase(it) : std::next(it);
    }
  }

  HierarchyConfig config_;
  Cache l1d_;
  Cache l2_;
  unsigned block_shift_ = 5;
  std::unordered_map<std::uint64_t, Cycle> outstanding_;  // block -> ready
};

}  // namespace spear
