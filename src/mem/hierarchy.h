// Two-level memory hierarchy per paper Table 2: split L1 (data side
// modeled; instruction fetch is assumed to hit, as the kernels are small
// loops — see DESIGN.md), unified L2, flat main-memory latency.
//
// Latencies follow the paper's model: an access costs the latency of the
// level that services it (L1 hit = 1 cycle, L1 miss/L2 hit = 12, L2 miss =
// 120 by default; Figure 9 sweeps the L2/memory pair).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/types.h"
#include "mem/cache.h"

namespace spear {

struct HierarchyConfig {
  CacheConfig l1d{"dl1", /*sets=*/256, /*block_bytes=*/32, /*assoc=*/4};
  CacheConfig l2{"ul2", /*sets=*/1024, /*block_bytes=*/64, /*assoc=*/4};
  std::uint32_t l1_latency = 1;
  std::uint32_t l2_latency = 12;
  std::uint32_t mem_latency = 120;
};

struct AccessOutcome {
  std::uint32_t latency = 0;
  bool l1_miss = false;
  bool l2_miss = false;
};

class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const HierarchyConfig& config)
      : config_(config), l1d_(config.l1d), l2_(config.l2) {
    block_shift_ = 0;
    while ((1u << block_shift_) < config.l1d.block_bytes) ++block_shift_;
  }

  // Simulates one data access at cycle `now`. Misses record an
  // outstanding fill; a later access to a block whose fill is still in
  // flight waits for the remaining time instead of observing an instant
  // hit (MSHR-merge behaviour). This matters for prefetching fidelity: a
  // p-thread access only fully hides a miss if it ran far enough ahead.
  AccessOutcome AccessData(Addr addr, bool write, ThreadId tid, Cycle now) {
    AccessOutcome out;
    const std::uint64_t block = addr >> block_shift_;

    if (l1d_.Access(addr, write, tid)) {
      out.latency = config_.l1_latency;
    } else {
      out.l1_miss = true;
      if (l2_.Access(addr, write, tid)) {
        out.latency = config_.l2_latency;
      } else {
        out.l2_miss = true;
        out.latency = config_.mem_latency;
      }
    }

    // In-flight fill probe. Open addressing with linear probing: a slot
    // that was never used terminates the chain; an expired slot (ready <=
    // now) stays in the chain but is semantically absent — exactly the
    // behaviour of the old map, where expired entries were erased on
    // touch and never observable. This runs once per data access, so it
    // must not hash-allocate.
    const std::size_t mask = fills_.size() - 1;
    std::size_t i = FillHash(block) & mask;
    std::size_t reuse = fills_.size();  // first expired slot on the chain
    bool found = false;
    while (fills_[i].used) {
      if (fills_[i].block == block) {
        found = true;
        break;
      }
      if (reuse == fills_.size() && fills_[i].ready <= now) reuse = i;
      i = (i + 1) & mask;
    }
    if (found && fills_[i].ready > now) {
      // Merge into the in-flight fill: pay the remaining time.
      const auto remaining = static_cast<std::uint32_t>(fills_[i].ready - now);
      out.latency = remaining > config_.l1_latency ? remaining
                                                   : config_.l1_latency;
      return out;
    }
    if (out.latency > config_.l1_latency) {
      const Cycle ready = now + out.latency;
      if (found) {
        fills_[i].ready = ready;  // expired entry for this block: refresh
      } else if (reuse != fills_.size()) {
        fills_[reuse] = FillSlot{block, ready, true};
      } else {
        fills_[i] = FillSlot{block, ready, true};
        if (++fills_used_ * 2 > fills_.size()) RebuildFills(now);
      }
    }
    return out;
  }

  // Warming-only access: updates tag/LRU/dirty state exactly like
  // AccessData but skips the latency and MSHR-merge bookkeeping, none of
  // which is part of a WarmState. The fast-forward and sampling
  // substrates drive this once per load/store, so it must stay lean.
  void WarmData(Addr addr, bool write, ThreadId tid) {
    if (!l1d_.Access(addr, write, tid)) l2_.Access(addr, write, tid);
  }

  const HierarchyConfig& config() const { return config_; }
  Cache& l1d() { return l1d_; }
  const Cache& l1d() const { return l1d_; }
  Cache& l2() { return l2_; }
  const Cache& l2() const { return l2_; }

  void ResetStats() {
    l1d_.ResetStats();
    l2_.ResetStats();
  }

  // Binds both cache levels under "mem.l1d.*" / "mem.l2.*".
  void RegisterStats(telemetry::StatRegistry& reg) const {
    l1d_.RegisterStats(reg, "mem.l1d");
    l2_.RegisterStats(reg, "mem.l2");
  }

 private:
  struct FillSlot {
    std::uint64_t block = 0;
    Cycle ready = 0;
    bool used = false;
  };

  static std::size_t FillHash(std::uint64_t block) {
    return static_cast<std::size_t>((block * 0x9E3779B97F4A7C15ull) >> 32);
  }

  // Compacts the table once half its slots have ever been used: expired
  // entries drop out, live fills (a few dozen at most — bounded by issue
  // bandwidth times memory latency) re-home. Amortized cost per miss is
  // a fraction of the hash lookup this table replaced.
  void RebuildFills(Cycle now) {
    std::vector<FillSlot> old(fills_.size());
    old.swap(fills_);
    fills_used_ = 0;
    const std::size_t mask = fills_.size() - 1;
    for (const FillSlot& s : old) {
      if (!s.used || s.ready <= now) continue;
      std::size_t i = FillHash(s.block) & mask;
      while (fills_[i].used) i = (i + 1) & mask;
      fills_[i] = s;
      ++fills_used_;
    }
  }

  HierarchyConfig config_;
  Cache l1d_;
  Cache l2_;
  unsigned block_shift_ = 5;
  // Outstanding-fill table (block -> fill-complete cycle); see AccessData.
  std::vector<FillSlot> fills_{2048};
  std::size_t fills_used_ = 0;
};

}  // namespace spear
