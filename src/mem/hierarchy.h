// Two-level memory hierarchy per paper Table 2: split L1 (data side
// modeled; instruction fetch is assumed to hit, as the kernels are small
// loops — see DESIGN.md), unified L2, flat main-memory latency.
//
// Latencies follow the paper's model: an access costs the latency of the
// level that services it (L1 hit = 1 cycle, L1 miss/L2 hit = 12, L2 miss =
// 120 by default; Figure 9 sweeps the L2/memory pair).
//
// CMP mode (DESIGN.md §17) reuses this class as a per-core L1 front end
// over one *shared* L2 and one shared outstanding-fill table: AttachShared
// repoints the L2/fill-table accesses at structures owned by CmpSystem.
// Address-space ids (asids) fold into every block key so distinct programs
// — whether SMT contexts on one core or whole cores in a CMP — never alias
// in a shared structure; asid 0 is bit-identical to the historical
// single-space keying.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "mem/cache.h"

namespace spear {

struct HierarchyConfig {
  CacheConfig l1d{"dl1", /*sets=*/256, /*block_bytes=*/32, /*assoc=*/4};
  CacheConfig l2{"ul2", /*sets=*/1024, /*block_bytes=*/64, /*assoc=*/4};
  std::uint32_t l1_latency = 1;
  std::uint32_t l2_latency = 12;
  std::uint32_t mem_latency = 120;
};

struct AccessOutcome {
  std::uint32_t latency = 0;
  bool l1_miss = false;
  bool l2_miss = false;
};

// Outstanding-fill table (block key -> fill-complete cycle). Open
// addressing with linear probing: a slot that was never used terminates
// the chain; an expired slot (ready <= now) stays in the chain but is
// semantically absent — exactly the behaviour of the old map, where
// expired entries were erased on touch and never observable. This runs
// once per data access, so it must not hash-allocate.
class FillTable {
 public:
  explicit FillTable(std::size_t slots = 2048) : fills_(slots) {}

  // Combined probe + record, one call per data access. If `key` has an
  // in-flight fill (ready > now) returns its completion cycle — the caller
  // merges into it and nothing is recorded. Otherwise, when `record` is
  // set, records a fill completing at `ready` (refreshing an expired slot
  // for the same key, reusing the first expired slot on the chain, or
  // claiming a fresh one). Returns 0 when no in-flight fill matched.
  Cycle MergeOrRecord(std::uint64_t key, Cycle now, bool record,
                      Cycle ready) {
    const std::size_t mask = fills_.size() - 1;
    std::size_t i = FillHash(key) & mask;
    std::size_t reuse = fills_.size();  // first expired slot on the chain
    bool found = false;
    while (fills_[i].used) {
      if (fills_[i].key == key) {
        found = true;
        break;
      }
      if (reuse == fills_.size() && fills_[i].ready <= now) reuse = i;
      i = (i + 1) & mask;
    }
    if (found && fills_[i].ready > now) return fills_[i].ready;
    if (record) {
      if (found) {
        fills_[i].ready = ready;  // expired entry for this key: refresh
      } else if (reuse != fills_.size()) {
        fills_[reuse] = FillSlot{key, ready, true};
      } else {
        fills_[i] = FillSlot{key, ready, true};
        if (++fills_used_ * 2 > fills_.size()) Rebuild(now);
      }
    }
    return 0;
  }

  // Non-mutating in-flight probe (tests and telemetry).
  bool InFlight(std::uint64_t key, Cycle now) const {
    const std::size_t mask = fills_.size() - 1;
    std::size_t i = FillHash(key) & mask;
    while (fills_[i].used) {
      if (fills_[i].key == key) return fills_[i].ready > now;
      i = (i + 1) & mask;
    }
    return false;
  }

 private:
  struct FillSlot {
    std::uint64_t key = 0;
    Cycle ready = 0;
    bool used = false;
  };

  static std::size_t FillHash(std::uint64_t key) {
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> 32);
  }

  // Compacts the table once half its slots have ever been used: expired
  // entries drop out, live fills (a few dozen at most — bounded by issue
  // bandwidth times memory latency) re-home. Amortized cost per miss is
  // a fraction of the hash lookup this table replaced.
  void Rebuild(Cycle now) {
    std::vector<FillSlot> old(fills_.size());
    old.swap(fills_);
    fills_used_ = 0;
    const std::size_t mask = fills_.size() - 1;
    for (const FillSlot& s : old) {
      if (!s.used || s.ready <= now) continue;
      std::size_t i = FillHash(s.key) & mask;
      while (fills_[i].used) i = (i + 1) & mask;
      fills_[i] = s;
      ++fills_used_;
    }
  }

  std::vector<FillSlot> fills_;
  std::size_t fills_used_ = 0;
};

class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const HierarchyConfig& config)
      : config_(config), l1d_(config.l1d), l2_(config.l2) {
    block_shift_ = 0;
    while ((1u << block_shift_) < config.l1d.block_bytes) ++block_shift_;
  }

  // CMP mode: repoints L2 probes and fill-table bookkeeping at structures
  // shared by every core. The private l2_/fills_ members go dormant (their
  // stats stay zero and are not registered).
  void AttachShared(Cache* shared_l2, FillTable* shared_fills) {
    shared_l2_ = shared_l2;
    shared_fills_ = shared_fills;
  }
  bool shared() const { return shared_l2_ != nullptr; }

  // Simulates one data access at cycle `now`. Misses record an
  // outstanding fill; a later access to a block whose fill is still in
  // flight waits for the remaining time instead of observing an instant
  // hit (MSHR-merge behaviour). This matters for prefetching fidelity: a
  // p-thread access only fully hides a miss if it ran far enough ahead.
  AccessOutcome AccessData(Addr addr, bool write, ThreadId tid, Cycle now,
                           std::uint32_t asid = 0) {
    AccessOutcome out;
    const std::uint64_t key = FillKey(addr, asid);

    if (l1d_.Access(addr, write, tid, asid)) {
      out.latency = config_.l1_latency;
    } else {
      out.l1_miss = true;
      if (l2().Access(addr, write, tid, asid)) {
        out.latency = config_.l2_latency;
      } else {
        out.l2_miss = true;
        out.latency = config_.mem_latency;
      }
    }

    const bool record = out.latency > config_.l1_latency;
    const Cycle inflight =
        fills().MergeOrRecord(key, now, record, now + out.latency);
    if (inflight != 0) {
      // Merge into the in-flight fill: pay the remaining time.
      const auto remaining = static_cast<std::uint32_t>(inflight - now);
      out.latency = remaining > config_.l1_latency ? remaining
                                                   : config_.l1_latency;
    }
    return out;
  }

  // Cross-core pre-execution access (DESIGN.md §17): the p-thread runs on
  // a donor core, so its fills warm the *donor's* private L1 — useless to
  // the triggering core — and the shared L2, which is the whole benefit.
  // Model: skip this core's L1 entirely; the latency floor is the L2
  // latency and only L2 misses record fills.
  AccessOutcome AccessDataSkipL1(Addr addr, ThreadId tid, Cycle now,
                                 std::uint32_t asid = 0) {
    AccessOutcome out;
    out.l1_miss = true;
    if (l2().Access(addr, /*write=*/false, tid, asid)) {
      out.latency = config_.l2_latency;
    } else {
      out.l2_miss = true;
      out.latency = config_.mem_latency;
    }
    const bool record = out.latency > config_.l2_latency;
    const Cycle inflight = fills().MergeOrRecord(FillKey(addr, asid), now,
                                                 record, now + out.latency);
    if (inflight != 0) {
      const auto remaining = static_cast<std::uint32_t>(inflight - now);
      out.latency = remaining > config_.l2_latency ? remaining
                                                   : config_.l2_latency;
    }
    return out;
  }

  // Warming-only access: updates tag/LRU/dirty state exactly like
  // AccessData but skips the latency and MSHR-merge bookkeeping, none of
  // which is part of a WarmState. The fast-forward and sampling
  // substrates drive this once per load/store, so it must stay lean.
  void WarmData(Addr addr, bool write, ThreadId tid, std::uint32_t asid = 0) {
    if (!l1d_.Access(addr, write, tid, asid)) {
      l2().Access(addr, write, tid, asid);
    }
  }

  const HierarchyConfig& config() const { return config_; }
  Cache& l1d() { return l1d_; }
  const Cache& l1d() const { return l1d_; }
  Cache& l2() { return shared_l2_ != nullptr ? *shared_l2_ : l2_; }
  const Cache& l2() const {
    return shared_l2_ != nullptr ? *shared_l2_ : l2_;
  }
  FillTable& fills() {
    return shared_fills_ != nullptr ? *shared_fills_ : fills_;
  }

  void ResetStats() {
    l1d_.ResetStats();
    if (shared_l2_ == nullptr) l2_.ResetStats();
  }

  // Binds both cache levels under "mem.l1d.*" / "mem.l2.*". A shared L2 is
  // bound once by its owner (CmpSystem), not per core.
  void RegisterStats(telemetry::StatRegistry& reg) const {
    l1d_.RegisterStats(reg, "mem.l1d");
    if (shared_l2_ == nullptr) l2_.RegisterStats(reg, "mem.l2");
  }

 private:
  std::uint64_t FillKey(Addr addr, std::uint32_t asid) const {
    return (addr >> block_shift_) | (static_cast<std::uint64_t>(asid) << 32);
  }

  HierarchyConfig config_;
  Cache l1d_;
  Cache l2_;
  unsigned block_shift_ = 5;
  Cache* shared_l2_ = nullptr;        // CMP mode; nullptr = private l2_
  FillTable* shared_fills_ = nullptr; // CMP mode; nullptr = private fills_
  FillTable fills_;
};

}  // namespace spear
