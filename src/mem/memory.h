// Sparse paged physical memory for a 32-bit address space. Pointer-chasing
// workloads touch tens of megabytes scattered across the address space, so
// pages are allocated on first touch. Unwritten memory reads as zero.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "isa/program.h"

namespace spear {

class Memory {
 public:
  static constexpr unsigned kPageBits = 12;
  static constexpr Addr kPageSize = 1u << kPageBits;

  std::uint8_t ReadU8(Addr addr) const {
    const Page* page = FindPage(addr);
    return page ? (*page)[Offset(addr)] : 0;
  }

  void WriteU8(Addr addr, std::uint8_t value) {
    (*TouchPage(addr))[Offset(addr)] = value;
  }

  std::uint32_t ReadU32(Addr addr) const {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(ReadU8(addr + static_cast<Addr>(i)))
           << (8 * i);
    }
    return v;
  }

  void WriteU32(Addr addr, std::uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      WriteU8(addr + static_cast<Addr>(i),
              static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }

  std::uint64_t ReadU64(Addr addr) const {
    return static_cast<std::uint64_t>(ReadU32(addr)) |
           (static_cast<std::uint64_t>(ReadU32(addr + 4)) << 32);
  }

  void WriteU64(Addr addr, std::uint64_t value) {
    WriteU32(addr, static_cast<std::uint32_t>(value));
    WriteU32(addr + 4, static_cast<std::uint32_t>(value >> 32));
  }

  double ReadF64(Addr addr) const {
    const std::uint64_t bits = ReadU64(addr);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  void WriteF64(Addr addr, double value) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    WriteU64(addr, bits);
  }

  // Bulk write: page-at-a-time memcpy, one page lookup per page instead
  // of one per byte. Matters for multi-hundred-MiB scaled workload
  // images, where the byte loop dominated Core/Emulator construction.
  void WriteBlock(Addr base, const std::uint8_t* bytes, std::size_t n) {
    std::size_t done = 0;
    while (done < n) {
      const Addr addr = base + static_cast<Addr>(done);
      const Addr off = Offset(addr);
      const std::size_t chunk =
          std::min(n - done, static_cast<std::size_t>(kPageSize - off));
      std::memcpy(TouchPage(addr)->data() + off, bytes + done, chunk);
      done += chunk;
    }
  }

  // Installs the program's initialized data segments.
  void LoadProgram(const Program& prog) {
    for (const DataSegment& seg : prog.data) {
      WriteBlock(seg.base, seg.bytes.data(), seg.bytes.size());
    }
  }

  std::size_t AllocatedPages() const { return pages_.size(); }

  // Replaces this memory's contents with a deep copy of `other` (used to
  // transfer a fast-forwarded image into the timed core).
  void CopyFrom(const Memory& other) {
    pages_.clear();
    for (const auto& [pn, page] : other.pages_) {
      pages_[pn] = std::make_unique<Page>(*page);
    }
  }

  // Allocated page numbers in ascending order, for deterministic
  // serialization by the checkpoint layer.
  std::vector<Addr> PageNumbers() const {
    std::vector<Addr> out;
    out.reserve(pages_.size());
    for (const auto& [pn, page] : pages_) out.push_back(pn);
    std::sort(out.begin(), out.end());
    return out;
  }

  // Raw bytes of an allocated page (nullptr if the page was never touched).
  const std::uint8_t* PageData(Addr page_number) const {
    auto it = pages_.find(page_number);
    return it == pages_.end() ? nullptr : it->second->data();
  }

  // Installs kPageSize bytes as page `page_number` (checkpoint restore).
  void InstallPage(Addr page_number, const std::uint8_t* bytes) {
    Page* page = TouchPage(page_number << kPageBits);
    std::memcpy(page->data(), bytes, kPageSize);
  }

 private:
  using Page = std::array<std::uint8_t, kPageSize>;

  static Addr PageNumber(Addr addr) { return addr >> kPageBits; }
  static Addr Offset(Addr addr) { return addr & (kPageSize - 1); }

  const Page* FindPage(Addr addr) const {
    auto it = pages_.find(PageNumber(addr));
    return it == pages_.end() ? nullptr : it->second.get();
  }

  Page* TouchPage(Addr addr) {
    std::unique_ptr<Page>& slot = pages_[PageNumber(addr)];
    if (!slot) {
      slot = std::make_unique<Page>();
      slot->fill(0);
    }
    return slot.get();
  }

  std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
};

}  // namespace spear
