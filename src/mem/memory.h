// Sparse paged physical memory for a 32-bit address space. Pointer-chasing
// workloads touch tens of megabytes scattered across the address space, so
// pages are allocated on first touch. Unwritten memory reads as zero.
//
// Pages live in a two-level radix table (1024-entry directory of
// 1024-entry leaves) rather than a hash map: scattered access patterns
// defeat the one-entry page memos, and on those misses two dependent
// loads beat a hash probe by a wide margin in the functional substrate's
// per-instruction loop.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/types.h"
#include "isa/program.h"

namespace spear {

class Memory {
 public:
  static constexpr unsigned kPageBits = 12;
  static constexpr Addr kPageSize = 1u << kPageBits;

  std::uint8_t ReadU8(Addr addr) const {
    const Page* page = FindPageCached(addr);
    return page ? (*page)[Offset(addr)] : 0;
  }

  void WriteU8(Addr addr, std::uint8_t value) {
    (*TouchPageCached(addr))[Offset(addr)] = value;
  }

  // Multi-byte accesses take one page lookup (not one per byte) when the
  // access sits inside a single page — the overwhelmingly common case the
  // old byte loops paid 4–8 hash probes for. Byte order is unchanged:
  // little-endian composition from the page bytes, which the compiler
  // lowers to a plain load/store on LE hosts. Page-crossing accesses fall
  // back to the byte loop.
  std::uint32_t ReadU32(Addr addr) const {
    const Addr off = Offset(addr);
    if (off <= kPageSize - 4) {
      const Page* page = FindPageCached(addr);
      if (page == nullptr) return 0;
      const std::uint8_t* p = page->data() + off;
      return static_cast<std::uint32_t>(p[0]) |
             (static_cast<std::uint32_t>(p[1]) << 8) |
             (static_cast<std::uint32_t>(p[2]) << 16) |
             (static_cast<std::uint32_t>(p[3]) << 24);
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(ReadU8(addr + static_cast<Addr>(i)))
           << (8 * i);
    }
    return v;
  }

  void WriteU32(Addr addr, std::uint32_t value) {
    const Addr off = Offset(addr);
    if (off <= kPageSize - 4) {
      std::uint8_t* p = TouchPageCached(addr)->data() + off;
      p[0] = static_cast<std::uint8_t>(value);
      p[1] = static_cast<std::uint8_t>(value >> 8);
      p[2] = static_cast<std::uint8_t>(value >> 16);
      p[3] = static_cast<std::uint8_t>(value >> 24);
      return;
    }
    for (int i = 0; i < 4; ++i) {
      WriteU8(addr + static_cast<Addr>(i),
              static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }

  std::uint64_t ReadU64(Addr addr) const {
    const Addr off = Offset(addr);
    if (off <= kPageSize - 8) {
      const Page* page = FindPageCached(addr);
      if (page == nullptr) return 0;
      const std::uint8_t* p = page->data() + off;
      std::uint64_t v = 0;
      for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
      }
      return v;
    }
    return static_cast<std::uint64_t>(ReadU32(addr)) |
           (static_cast<std::uint64_t>(ReadU32(addr + 4)) << 32);
  }

  void WriteU64(Addr addr, std::uint64_t value) {
    const Addr off = Offset(addr);
    if (off <= kPageSize - 8) {
      std::uint8_t* p = TouchPageCached(addr)->data() + off;
      for (int i = 0; i < 8; ++i) {
        p[i] = static_cast<std::uint8_t>(value >> (8 * i));
      }
      return;
    }
    WriteU32(addr, static_cast<std::uint32_t>(value));
    WriteU32(addr + 4, static_cast<std::uint32_t>(value >> 32));
  }

  double ReadF64(Addr addr) const {
    const std::uint64_t bits = ReadU64(addr);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  void WriteF64(Addr addr, double value) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    WriteU64(addr, bits);
  }

  // Bulk write: page-at-a-time memcpy, one page lookup per page instead
  // of one per byte. Matters for multi-hundred-MiB scaled workload
  // images, where the byte loop dominated Core/Emulator construction.
  void WriteBlock(Addr base, const std::uint8_t* bytes, std::size_t n) {
    std::size_t done = 0;
    while (done < n) {
      const Addr addr = base + static_cast<Addr>(done);
      const Addr off = Offset(addr);
      const std::size_t chunk =
          std::min(n - done, static_cast<std::size_t>(kPageSize - off));
      std::memcpy(TouchPage(addr)->data() + off, bytes + done, chunk);
      done += chunk;
    }
  }

  // Installs the program's initialized data segments.
  void LoadProgram(const Program& prog) {
    for (const DataSegment& seg : prog.data) {
      WriteBlock(seg.base, seg.bytes.data(), seg.bytes.size());
    }
  }

  std::size_t AllocatedPages() const { return page_count_; }

  // Replaces this memory's contents with a deep copy of `other` (used to
  // transfer a fast-forwarded image into the timed core).
  void CopyFrom(const Memory& other) {
    InvalidateMemos();  // memoized pages may be dropped or rewritten below
    page_count_ = other.page_count_;
    for (std::size_t d = 0; d < kFanout; ++d) {
      const Leaf* src = other.dir_[d].get();
      if (src == nullptr) {
        dir_[d].reset();
        continue;
      }
      if (!dir_[d]) dir_[d] = std::make_unique<Leaf>();
      Leaf& dst = *dir_[d];
      for (std::size_t l = 0; l < kFanout; ++l) {
        const Page* page = (*src)[l].get();
        if (page == nullptr) {
          dst[l].reset();
        } else if (dst[l]) {
          *dst[l] = *page;
        } else {
          dst[l] = std::make_unique<Page>(*page);
        }
      }
    }
  }

  // Allocated page numbers in ascending order, for deterministic
  // serialization by the checkpoint layer. Ascending falls out of the
  // radix-table walk.
  std::vector<Addr> PageNumbers() const {
    std::vector<Addr> out;
    out.reserve(page_count_);
    for (std::size_t d = 0; d < kFanout; ++d) {
      const Leaf* leaf = dir_[d].get();
      if (leaf == nullptr) continue;
      for (std::size_t l = 0; l < kFanout; ++l) {
        if ((*leaf)[l]) {
          out.push_back(static_cast<Addr>((d << kLeafBits) | l));
        }
      }
    }
    return out;
  }

  // Raw bytes of an allocated page (nullptr if the page was never touched).
  const std::uint8_t* PageData(Addr page_number) const {
    const Leaf* leaf = dir_[page_number >> kLeafBits].get();
    if (leaf == nullptr) return nullptr;
    const Page* page = (*leaf)[page_number & (kFanout - 1)].get();
    return page == nullptr ? nullptr : page->data();
  }

  // Installs kPageSize bytes as page `page_number` (checkpoint restore).
  void InstallPage(Addr page_number, const std::uint8_t* bytes) {
    Page* page = TouchPage(page_number << kPageBits);
    std::memcpy(page->data(), bytes, kPageSize);
  }

 private:
  using Page = std::array<std::uint8_t, kPageSize>;

  // 20-bit page numbers (32-bit addresses, 4 KiB pages) split 10/10 over
  // a directory of on-demand leaves. The directory itself is 8 KiB of
  // inline storage per Memory — cheap enough for the transient Emulator
  // instances tests and sampling intervals create.
  static constexpr unsigned kLeafBits = 10;
  static constexpr std::size_t kFanout = 1u << kLeafBits;
  using Leaf = std::array<std::unique_ptr<Page>, kFanout>;

  static Addr PageNumber(Addr addr) { return addr >> kPageBits; }
  static Addr Offset(Addr addr) { return addr & (kPageSize - 1); }

  const Page* FindPage(Addr addr) const {
    const Addr pn = PageNumber(addr);
    const Leaf* leaf = dir_[pn >> kLeafBits].get();
    if (leaf == nullptr) return nullptr;
    return (*leaf)[pn & (kFanout - 1)].get();
  }

  Page* TouchPage(Addr addr) {
    const Addr pn = PageNumber(addr);
    std::unique_ptr<Leaf>& leaf = dir_[pn >> kLeafBits];
    if (!leaf) leaf = std::make_unique<Leaf>();
    std::unique_ptr<Page>& slot = (*leaf)[pn & (kFanout - 1)];
    if (!slot) {
      slot = std::make_unique<Page>();
      slot->fill(0);
      ++page_count_;
    }
    return slot.get();
  }

  // One-entry page memos for the read and write paths: loops and stack
  // traffic hit the same page for long runs, so most accesses skip the
  // hash probe entirely. Pages are heap-allocated and never freed except
  // in CopyFrom (which invalidates), so the cached pointers stay valid
  // across rehashes. Absent pages are not memoized — a later write may
  // create them.
  const Page* FindPageCached(Addr addr) const {
    const Addr pn = PageNumber(addr);
    if (pn == rmemo_pn_) return rmemo_page_;
    const Page* page = FindPage(addr);
    if (page != nullptr) {
      rmemo_pn_ = pn;
      rmemo_page_ = page;
    }
    return page;
  }

  Page* TouchPageCached(Addr addr) {
    const Addr pn = PageNumber(addr);
    if (pn == wmemo_pn_) return wmemo_page_;
    Page* page = TouchPage(addr);
    wmemo_pn_ = pn;
    wmemo_page_ = page;
    return page;
  }

  void InvalidateMemos() {
    rmemo_pn_ = kNoMemo;
    rmemo_page_ = nullptr;
    wmemo_pn_ = kNoMemo;
    wmemo_page_ = nullptr;
  }

  // No valid page number has the top bits set (4 KiB pages in a 32-bit
  // space cap page numbers at 2^20).
  static constexpr Addr kNoMemo = ~Addr{0};

  mutable Addr rmemo_pn_ = kNoMemo;
  mutable const Page* rmemo_page_ = nullptr;
  Addr wmemo_pn_ = kNoMemo;
  Page* wmemo_page_ = nullptr;

  std::array<std::unique_ptr<Leaf>, kFanout> dir_;
  std::size_t page_count_ = 0;
};

}  // namespace spear
