#include "runner/manifest.h"

#include <fstream>
#include <set>
#include <sstream>

namespace spear::runner {
namespace {

using telemetry::JsonValue;

// Accumulates the first error with its JSON path, parser-combinator
// style: every accessor is a no-op once an error is recorded, so parse
// code reads straight-line and the caller gets one precise diagnostic.
class Ctx {
 public:
  bool failed() const { return !error_.empty(); }
  const std::string& error() const { return error_; }

  void Fail(const std::string& path, const std::string& message) {
    if (error_.empty()) error_ = path + ": " + message;
  }

  const JsonValue* Object(const JsonValue& v, const std::string& path) {
    if (failed()) return nullptr;
    if (v.kind() != JsonValue::Kind::kObject) {
      Fail(path, "expected an object");
      return nullptr;
    }
    return &v;
  }

  // Rejects members of `obj` outside `known` (typo protection).
  void CheckKeys(const JsonValue& obj, const std::string& path,
                 const std::set<std::string>& known) {
    if (failed()) return;
    for (const auto& [key, value] : obj.members()) {
      if (!known.count(key)) {
        Fail(path.empty() ? key : path + "." + key, "unknown key");
        return;
      }
    }
  }

  std::string Str(const JsonValue& obj, const std::string& path,
                  const std::string& key, const std::string& def = "") {
    const JsonValue* v = obj.Find(key);
    if (failed() || v == nullptr) return def;
    if (v->kind() != JsonValue::Kind::kString) {
      Fail(Join(path, key), "expected a string");
      return def;
    }
    return v->AsString();
  }

  std::int64_t Int(const JsonValue& obj, const std::string& path,
                   const std::string& key, std::int64_t def) {
    const JsonValue* v = obj.Find(key);
    if (failed() || v == nullptr) return def;
    if (v->kind() != JsonValue::Kind::kInt) {
      Fail(Join(path, key), "expected an integer");
      return def;
    }
    return v->AsInt();
  }

  std::uint64_t U64(const JsonValue& obj, const std::string& path,
                    const std::string& key, std::uint64_t def) {
    const std::int64_t v = Int(obj, path, key, static_cast<std::int64_t>(def));
    if (!failed() && v < 0) {
      Fail(Join(path, key), "must be >= 0");
      return def;
    }
    return static_cast<std::uint64_t>(v);
  }

  double Num(const JsonValue& obj, const std::string& path,
             const std::string& key, double def) {
    const JsonValue* v = obj.Find(key);
    if (failed() || v == nullptr) return def;
    if (!v->is_number()) {
      Fail(Join(path, key), "expected a number");
      return def;
    }
    return v->AsDouble();
  }

  bool Bool(const JsonValue& obj, const std::string& path,
            const std::string& key, bool def) {
    const JsonValue* v = obj.Find(key);
    if (failed() || v == nullptr) return def;
    if (v->kind() != JsonValue::Kind::kBool) {
      Fail(Join(path, key), "expected true or false");
      return def;
    }
    return v->AsBool();
  }

  static std::string Join(const std::string& path, const std::string& key) {
    return path.empty() ? key : path + "." + key;
  }

 private:
  std::string error_;
};

std::string Elem(const std::string& base, std::size_t i) {
  return base + "[" + std::to_string(i) + "]";
}

const std::set<std::string> kDefaultsKeys = {
    "sim_instrs", "max_cycles", "ref_seed",    "profile_seed",
    "ff_instrs",  "timeout_ms", "max_retries", "backoff_ms",
    "scale",      "sampling"};

const std::set<std::string> kSamplingKeys = {"period", "detail", "warmup"};

const std::set<std::string> kConfigKeys = {
    "label",         "binary",
    "spear",         "separate_fu",
    "ifq",           "mem_latency",
    "l2_latency",    "bpred_kind",
    "bpred_entries", "trigger_occupancy_div",
    "extract_per_cycle", "drain_policy",
    "chaining_trigger",  "stride_prefetch",
    "stride_degree",     "dcycle_budget",
    "taint",             "fence_spec_loads",
    "cores",             "xcore_pthreads"};

const std::set<std::string> kJobKeys = {"workload",   "workloads",
                                        "config",     "debug_hang",
                                        "timeout_ms", "max_retries"};

const std::set<std::string> kDerivedKeys = {"name", "op", "metric", "num",
                                            "den"};

const std::set<std::string> kTopKeys = {
    "manifest_version", "name",     "defaults", "workloads",
    "configs",          "jobs",     "derived"};

void ParseDefaults(Ctx& ctx, const JsonValue& obj, ManifestDefaults* d) {
  const std::string path = "defaults";
  ctx.CheckKeys(obj, path, kDefaultsKeys);
  d->sim_instrs = ctx.U64(obj, path, "sim_instrs", d->sim_instrs);
  d->max_cycles = ctx.U64(obj, path, "max_cycles", d->max_cycles);
  d->ref_seed = ctx.U64(obj, path, "ref_seed", d->ref_seed);
  d->profile_seed = ctx.U64(obj, path, "profile_seed", d->profile_seed);
  d->ff_instrs = ctx.U64(obj, path, "ff_instrs", d->ff_instrs);
  d->timeout_ms = ctx.U64(obj, path, "timeout_ms", d->timeout_ms);
  d->max_retries = static_cast<int>(ctx.Int(obj, path, "max_retries",
                                            d->max_retries));
  d->backoff_ms = ctx.U64(obj, path, "backoff_ms", d->backoff_ms);
  d->scale = static_cast<int>(ctx.Int(obj, path, "scale", d->scale));
  if (!ctx.failed() && d->scale < 1) {
    ctx.Fail(path + ".scale", "must be >= 1");
    return;
  }
  if (const JsonValue* s = obj.Find("sampling"); s != nullptr) {
    const std::string spath = path + ".sampling";
    if (ctx.Object(*s, spath) == nullptr) return;
    ctx.CheckKeys(*s, spath, kSamplingKeys);
    d->sampling.period = ctx.U64(*s, spath, "period", d->sampling.period);
    d->sampling.detail = ctx.U64(*s, spath, "detail", d->sampling.detail);
    d->sampling.warmup = ctx.U64(*s, spath, "warmup", d->sampling.warmup);
    std::string why;
    if (!ctx.failed() && !d->sampling.Validate(&why)) ctx.Fail(spath, why);
  }
}

void ParseConfig(Ctx& ctx, const JsonValue& obj, const std::string& path,
                 ConfigSpec* c) {
  ctx.CheckKeys(obj, path, kConfigKeys);
  c->label = ctx.Str(obj, path, "label");
  if (!ctx.failed() && c->label.empty()) {
    ctx.Fail(path + ".label", "missing or empty");
    return;
  }
  c->binary = ctx.Str(obj, path, "binary");
  if (!ctx.failed() && !c->binary.empty() && c->binary != "plain" &&
      c->binary != "annotated") {
    ctx.Fail(path + ".binary", "must be 'plain' or 'annotated', got '" +
                                   c->binary + "'");
    return;
  }
  c->spear = ctx.Bool(obj, path, "spear", false);
  c->separate_fu = ctx.Bool(obj, path, "separate_fu", false);
  c->ifq = static_cast<std::uint32_t>(ctx.U64(obj, path, "ifq", 128));
  c->mem_latency =
      static_cast<std::uint32_t>(ctx.U64(obj, path, "mem_latency", 0));
  c->l2_latency =
      static_cast<std::uint32_t>(ctx.U64(obj, path, "l2_latency", 0));
  c->bpred_kind = ctx.Str(obj, path, "bpred_kind");
  if (!ctx.failed() && !c->bpred_kind.empty() && c->bpred_kind != "bimodal" &&
      c->bpred_kind != "gshare" && c->bpred_kind != "static_btfn" &&
      c->bpred_kind != "always_taken") {
    ctx.Fail(path + ".bpred_kind",
             "unknown predictor '" + c->bpred_kind + "'");
    return;
  }
  c->bpred_entries =
      static_cast<std::uint32_t>(ctx.U64(obj, path, "bpred_entries", 0));
  c->trigger_occupancy_div = static_cast<std::uint32_t>(
      ctx.U64(obj, path, "trigger_occupancy_div", 0));
  c->extract_per_cycle = static_cast<std::int32_t>(
      ctx.Int(obj, path, "extract_per_cycle", -1));
  c->drain_policy = ctx.Str(obj, path, "drain_policy");
  if (!ctx.failed() && !c->drain_policy.empty() &&
      c->drain_policy != "immediate" &&
      c->drain_policy != "drain_to_trigger" &&
      c->drain_policy != "stall_dispatch") {
    ctx.Fail(path + ".drain_policy",
             "unknown policy '" + c->drain_policy + "'");
    return;
  }
  c->chaining_trigger = ctx.Bool(obj, path, "chaining_trigger", false);
  c->stride_prefetch = ctx.Bool(obj, path, "stride_prefetch", false);
  c->stride_degree =
      static_cast<std::uint32_t>(ctx.U64(obj, path, "stride_degree", 0));
  c->dcycle_budget = ctx.Num(obj, path, "dcycle_budget", 0.0);
  c->taint = ctx.Bool(obj, path, "taint", false);
  c->fence_spec_loads = ctx.Bool(obj, path, "fence_spec_loads", false);
  c->cores = static_cast<std::uint32_t>(ctx.U64(obj, path, "cores", 1));
  if (!ctx.failed() && c->cores < 1) {
    ctx.Fail(path + ".cores", "must be >= 1");
    return;
  }
  c->xcore_pthreads = ctx.Bool(obj, path, "xcore_pthreads", false);
  if (!ctx.failed() && c->xcore_pthreads && !c->spear) {
    ctx.Fail(path + ".xcore_pthreads", "needs spear: true");
    return;
  }
  if (!ctx.failed() && c->xcore_pthreads && c->cores < 2) {
    ctx.Fail(path + ".xcore_pthreads",
             "needs a CMP config (cores >= 2) to have a donor core");
    return;
  }
}

void ParseJob(Ctx& ctx, const JsonValue& obj, const std::string& path,
              const Manifest& m, JobSpec* j) {
  ctx.CheckKeys(obj, path, kJobKeys);
  j->workload = ctx.Str(obj, path, "workload");
  if (const JsonValue* ws = obj.Find("workloads"); ws != nullptr) {
    if (!ctx.failed() && ws->kind() != JsonValue::Kind::kArray) {
      ctx.Fail(path + ".workloads", "expected an array");
      return;
    }
    for (std::size_t i = 0; i < ws->items().size(); ++i) {
      if (ws->items()[i].kind() != JsonValue::Kind::kString) {
        ctx.Fail(Elem(path + ".workloads", i),
                 "expected a workload name string");
        return;
      }
      j->workloads.push_back(ws->items()[i].AsString());
    }
    if (!ctx.failed() && j->workloads.size() < 2) {
      ctx.Fail(path + ".workloads",
               "a mix needs at least two workloads (use 'workload' for one)");
      return;
    }
    if (!ctx.failed() && !j->workload.empty()) {
      ctx.Fail(path + ".workloads", "mutually exclusive with 'workload'");
      return;
    }
  }
  if (!ctx.failed() && j->workload.empty() && j->workloads.empty()) {
    ctx.Fail(path + ".workload", "missing or empty");
    return;
  }
  const std::string label = ctx.Str(obj, path, "config");
  if (ctx.failed()) return;
  j->config = -1;
  for (std::size_t i = 0; i < m.configs.size(); ++i) {
    if (m.configs[i].label == label) j->config = static_cast<int>(i);
  }
  if (j->config < 0) {
    ctx.Fail(path + ".config", "no config labeled '" + label + "'");
    return;
  }
  // The only supported topologies: SMT (cores == 1) and one program per
  // core (cores == mix size). Catch mismatches at parse time, not after
  // the first N-1 jobs already ran.
  const std::uint32_t cores = m.configs[j->config].cores;
  if (j->is_mix()) {
    if (cores != 1 && cores != j->workloads.size()) {
      ctx.Fail(path + ".config",
               "config '" + label + "' has cores=" + std::to_string(cores) +
                   " but the mix lists " + std::to_string(j->workloads.size()) +
                   " workloads (want 1 for SMT or one core per program)");
      return;
    }
  } else if (cores != 1) {
    ctx.Fail(path + ".config",
             "config '" + label + "' has cores=" + std::to_string(cores) +
                 " — a single-workload job needs cores=1 (use 'workloads' "
                 "for a mix)");
    return;
  }
  j->debug_hang = ctx.Bool(obj, path, "debug_hang", false);
  j->timeout_ms = ctx.U64(obj, path, "timeout_ms", 0);
  j->max_retries = static_cast<int>(ctx.Int(obj, path, "max_retries", -1));
}

void ParseDerived(Ctx& ctx, const JsonValue& obj, const std::string& path,
                  const Manifest& m, DerivedSpec* d) {
  ctx.CheckKeys(obj, path, kDerivedKeys);
  d->name = ctx.Str(obj, path, "name");
  d->op = ctx.Str(obj, path, "op");
  d->metric = ctx.Str(obj, path, "metric");
  d->num = ctx.Str(obj, path, "num");
  d->den = ctx.Str(obj, path, "den");
  if (ctx.failed()) return;
  if (d->name.empty()) {
    ctx.Fail(path + ".name", "missing or empty");
    return;
  }
  if (d->op != "mean_ratio" && d->op != "mean_reduction") {
    ctx.Fail(path + ".op", "must be 'mean_ratio' or 'mean_reduction', got '" +
                               d->op + "'");
    return;
  }
  if (d->metric.empty()) {
    ctx.Fail(path + ".metric", "missing or empty");
    return;
  }
  for (const std::string* label : {&d->num, &d->den}) {
    bool found = false;
    for (const ConfigSpec& c : m.configs) found |= c.label == *label;
    if (!found) {
      ctx.Fail(path + (label == &d->num ? ".num" : ".den"),
               "no config labeled '" + *label + "'");
      return;
    }
  }
}

// --- emission helpers (only non-default fields, fixed key order) ---

JsonValue DefaultsToJson(const ManifestDefaults& d) {
  const ManifestDefaults def;
  JsonValue o = JsonValue::Object();
  o.Set("sim_instrs", JsonValue(d.sim_instrs));
  o.Set("max_cycles", JsonValue(d.max_cycles));
  o.Set("ref_seed", JsonValue(d.ref_seed));
  o.Set("profile_seed", JsonValue(d.profile_seed));
  if (d.ff_instrs != def.ff_instrs) o.Set("ff_instrs", JsonValue(d.ff_instrs));
  if (d.timeout_ms != def.timeout_ms) {
    o.Set("timeout_ms", JsonValue(d.timeout_ms));
  }
  if (d.max_retries != def.max_retries) {
    o.Set("max_retries", JsonValue(static_cast<std::int64_t>(d.max_retries)));
  }
  if (d.backoff_ms != def.backoff_ms) {
    o.Set("backoff_ms", JsonValue(d.backoff_ms));
  }
  if (d.scale != def.scale) {
    o.Set("scale", JsonValue(static_cast<std::int64_t>(d.scale)));
  }
  if (d.sampling.enabled()) {
    JsonValue s = JsonValue::Object();
    s.Set("period", JsonValue(d.sampling.period));
    s.Set("detail", JsonValue(d.sampling.detail));
    s.Set("warmup", JsonValue(d.sampling.warmup));
    o.Set("sampling", std::move(s));
  }
  return o;
}

JsonValue ConfigToJson(const ConfigSpec& c) {
  JsonValue o = JsonValue::Object();
  o.Set("label", JsonValue(c.label));
  if (!c.binary.empty()) o.Set("binary", JsonValue(c.binary));
  if (c.spear) o.Set("spear", JsonValue(true));
  if (c.separate_fu) o.Set("separate_fu", JsonValue(true));
  if (c.ifq != 128) {
    o.Set("ifq", JsonValue(static_cast<std::int64_t>(c.ifq)));
  }
  if (c.mem_latency != 0) {
    o.Set("mem_latency", JsonValue(static_cast<std::int64_t>(c.mem_latency)));
  }
  if (c.l2_latency != 0) {
    o.Set("l2_latency", JsonValue(static_cast<std::int64_t>(c.l2_latency)));
  }
  if (!c.bpred_kind.empty()) o.Set("bpred_kind", JsonValue(c.bpred_kind));
  if (c.bpred_entries != 0) {
    o.Set("bpred_entries",
          JsonValue(static_cast<std::int64_t>(c.bpred_entries)));
  }
  if (c.trigger_occupancy_div != 0) {
    o.Set("trigger_occupancy_div",
          JsonValue(static_cast<std::int64_t>(c.trigger_occupancy_div)));
  }
  if (c.extract_per_cycle >= 0) {
    o.Set("extract_per_cycle",
          JsonValue(static_cast<std::int64_t>(c.extract_per_cycle)));
  }
  if (!c.drain_policy.empty()) {
    o.Set("drain_policy", JsonValue(c.drain_policy));
  }
  if (c.chaining_trigger) o.Set("chaining_trigger", JsonValue(true));
  if (c.stride_prefetch) o.Set("stride_prefetch", JsonValue(true));
  if (c.stride_degree != 0) {
    o.Set("stride_degree",
          JsonValue(static_cast<std::int64_t>(c.stride_degree)));
  }
  if (c.dcycle_budget != 0.0) {
    o.Set("dcycle_budget", JsonValue(c.dcycle_budget));
  }
  if (c.taint) o.Set("taint", JsonValue(true));
  if (c.fence_spec_loads) o.Set("fence_spec_loads", JsonValue(true));
  if (c.cores != 1) {
    o.Set("cores", JsonValue(static_cast<std::int64_t>(c.cores)));
  }
  if (c.xcore_pthreads) o.Set("xcore_pthreads", JsonValue(true));
  return o;
}

}  // namespace

std::vector<JobSpec> ExpandJobs(const Manifest& m) {
  std::vector<JobSpec> jobs;
  jobs.reserve(m.workloads.size() * m.configs.size() + m.extra_jobs.size());
  for (const std::string& w : m.workloads) {
    for (std::size_t c = 0; c < m.configs.size(); ++c) {
      JobSpec j;
      j.workload = w;
      j.config = static_cast<int>(c);
      jobs.push_back(std::move(j));
    }
  }
  jobs.insert(jobs.end(), m.extra_jobs.begin(), m.extra_jobs.end());
  return jobs;
}

std::string JobId(const Manifest& m, const JobSpec& job) {
  if (job.is_mix()) {
    std::string mix;
    for (const std::string& w : job.workloads) {
      if (!mix.empty()) mix += "+";
      mix += w;
    }
    return mix + "/" + m.configs[job.config].label;
  }
  return job.workload + "/" + m.configs[job.config].label;
}

bool ParseManifest(const std::string& text, Manifest* out,
                   std::string* error) {
  JsonValue doc;
  std::string parse_error;
  if (!telemetry::JsonParse(text, &doc, &parse_error)) {
    if (error != nullptr) *error = "not valid JSON: " + parse_error;
    return false;
  }

  Ctx ctx;
  Manifest m;
  if (ctx.Object(doc, "(top level)") == nullptr) {
    *error = ctx.error();
    return false;
  }
  ctx.CheckKeys(doc, "", kTopKeys);

  const std::int64_t version =
      ctx.Int(doc, "", "manifest_version", -1);
  if (!ctx.failed() && version != kManifestVersion) {
    ctx.Fail("manifest_version",
             "missing or unsupported (want " +
                 std::to_string(kManifestVersion) + ")");
  }
  m.name = ctx.Str(doc, "", "name");
  if (!ctx.failed() && m.name.empty()) ctx.Fail("name", "missing or empty");

  if (const JsonValue* d = doc.Find("defaults"); d != nullptr) {
    if (ctx.Object(*d, "defaults") != nullptr) {
      ParseDefaults(ctx, *d, &m.defaults);
    }
  }

  if (const JsonValue* w = doc.Find("workloads"); w != nullptr) {
    if (!ctx.failed() && w->kind() != JsonValue::Kind::kArray) {
      ctx.Fail("workloads", "expected an array");
    } else {
      for (std::size_t i = 0; i < w->items().size(); ++i) {
        const JsonValue& item = w->items()[i];
        if (item.kind() != JsonValue::Kind::kString) {
          ctx.Fail(Elem("workloads", i), "expected a workload name string");
          break;
        }
        m.workloads.push_back(item.AsString());
      }
    }
  }

  if (const JsonValue* cs = doc.Find("configs"); cs != nullptr) {
    if (!ctx.failed() && cs->kind() != JsonValue::Kind::kArray) {
      ctx.Fail("configs", "expected an array");
    } else {
      for (std::size_t i = 0; i < cs->items().size(); ++i) {
        const std::string path = Elem("configs", i);
        if (ctx.Object(cs->items()[i], path) == nullptr) break;
        ConfigSpec c;
        ParseConfig(ctx, cs->items()[i], path, &c);
        if (ctx.failed()) break;
        for (const ConfigSpec& prev : m.configs) {
          if (prev.label == c.label) {
            ctx.Fail(path + ".label", "duplicate label '" + c.label + "'");
            break;
          }
        }
        m.configs.push_back(std::move(c));
      }
    }
  }
  if (!ctx.failed() && m.configs.empty()) {
    ctx.Fail("configs", "a manifest needs at least one config");
  }
  // Matrix jobs are single-workload, so a CMP config can only ever be
  // used by explicit mix jobs; crossing it with the workload list would
  // produce N invalid jobs.
  if (!ctx.failed() && !m.workloads.empty()) {
    for (std::size_t i = 0; i < m.configs.size(); ++i) {
      if (m.configs[i].cores > 1) {
        ctx.Fail(Elem("configs", i) + ".cores",
                 "a multi-core config cannot join the workload matrix; "
                 "reference it from explicit 'jobs' mixes instead");
        break;
      }
    }
  }

  if (const JsonValue* js = doc.Find("jobs"); js != nullptr) {
    if (!ctx.failed() && js->kind() != JsonValue::Kind::kArray) {
      ctx.Fail("jobs", "expected an array");
    } else {
      for (std::size_t i = 0; i < js->items().size(); ++i) {
        const std::string path = Elem("jobs", i);
        if (ctx.Object(js->items()[i], path) == nullptr) break;
        JobSpec j;
        ParseJob(ctx, js->items()[i], path, m, &j);
        if (ctx.failed()) break;
        m.extra_jobs.push_back(std::move(j));
      }
    }
  }
  if (!ctx.failed() && m.workloads.empty() && m.extra_jobs.empty()) {
    ctx.Fail("workloads", "manifest declares no jobs (empty matrix, no "
                          "explicit jobs)");
  }

  if (const JsonValue* ds = doc.Find("derived"); ds != nullptr) {
    if (!ctx.failed() && ds->kind() != JsonValue::Kind::kArray) {
      ctx.Fail("derived", "expected an array");
    } else {
      for (std::size_t i = 0; i < ds->items().size(); ++i) {
        const std::string path = Elem("derived", i);
        if (ctx.Object(ds->items()[i], path) == nullptr) break;
        DerivedSpec d;
        ParseDerived(ctx, ds->items()[i], path, m, &d);
        if (ctx.failed()) break;
        m.derived.push_back(std::move(d));
      }
    }
  }

  if (ctx.failed()) {
    if (error != nullptr) *error = ctx.error();
    return false;
  }
  *out = std::move(m);
  return true;
}

bool LoadManifestFile(const std::string& path, Manifest* out,
                      std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!ParseManifest(buf.str(), out, error)) {
    if (error != nullptr) *error = path + ": " + *error;
    return false;
  }
  return true;
}

telemetry::JsonValue ManifestToJson(const Manifest& m) {
  JsonValue doc = JsonValue::Object();
  doc.Set("manifest_version", JsonValue(kManifestVersion));
  doc.Set("name", JsonValue(m.name));
  doc.Set("defaults", DefaultsToJson(m.defaults));

  JsonValue workloads = JsonValue::Array();
  for (const std::string& w : m.workloads) workloads.Append(JsonValue(w));
  doc.Set("workloads", std::move(workloads));

  JsonValue configs = JsonValue::Array();
  for (const ConfigSpec& c : m.configs) configs.Append(ConfigToJson(c));
  doc.Set("configs", std::move(configs));

  if (!m.extra_jobs.empty()) {
    JsonValue jobs = JsonValue::Array();
    for (const JobSpec& j : m.extra_jobs) {
      JsonValue o = JsonValue::Object();
      if (j.is_mix()) {
        JsonValue ws = JsonValue::Array();
        for (const std::string& w : j.workloads) ws.Append(JsonValue(w));
        o.Set("workloads", std::move(ws));
      } else {
        o.Set("workload", JsonValue(j.workload));
      }
      o.Set("config", JsonValue(m.configs[j.config].label));
      if (j.debug_hang) o.Set("debug_hang", JsonValue(true));
      if (j.timeout_ms != 0) o.Set("timeout_ms", JsonValue(j.timeout_ms));
      if (j.max_retries >= 0) {
        o.Set("max_retries",
              JsonValue(static_cast<std::int64_t>(j.max_retries)));
      }
      jobs.Append(std::move(o));
    }
    doc.Set("jobs", std::move(jobs));
  }

  if (!m.derived.empty()) {
    JsonValue derived = JsonValue::Array();
    for (const DerivedSpec& d : m.derived) {
      JsonValue o = JsonValue::Object();
      o.Set("name", JsonValue(d.name));
      o.Set("op", JsonValue(d.op));
      o.Set("metric", JsonValue(d.metric));
      o.Set("num", JsonValue(d.num));
      o.Set("den", JsonValue(d.den));
      derived.Append(std::move(o));
    }
    doc.Set("derived", std::move(derived));
  }
  return doc;
}

CoreConfig MakeCoreConfig(const ConfigSpec& c) {
  CoreConfig cfg = c.spear ? SpearCoreConfig(c.ifq, c.separate_fu)
                           : BaselineConfig(c.ifq);
  if (c.mem_latency != 0) cfg.mem.mem_latency = c.mem_latency;
  if (c.l2_latency != 0) cfg.mem.l2_latency = c.l2_latency;
  if (c.bpred_kind == "gshare") {
    cfg.bpred.kind = BpredKind::kGshare;
  } else if (c.bpred_kind == "static_btfn") {
    cfg.bpred.kind = BpredKind::kStaticBtfn;
  } else if (c.bpred_kind == "always_taken") {
    cfg.bpred.kind = BpredKind::kAlwaysTaken;
  } else if (c.bpred_kind == "bimodal" || c.bpred_kind.empty()) {
    cfg.bpred.kind = BpredKind::kBimodal;
  }
  if (c.bpred_entries != 0) cfg.bpred.table_entries = c.bpred_entries;
  if (c.trigger_occupancy_div != 0) {
    cfg.spear.trigger_occupancy_div = c.trigger_occupancy_div;
  }
  if (c.extract_per_cycle >= 0) {
    cfg.spear.extract_per_cycle =
        static_cast<std::uint32_t>(c.extract_per_cycle);
  }
  if (c.drain_policy == "drain_to_trigger") {
    cfg.spear.drain_policy = TriggerDrainPolicy::kDrainToTrigger;
  } else if (c.drain_policy == "stall_dispatch") {
    cfg.spear.drain_policy = TriggerDrainPolicy::kStallDispatch;
  }
  cfg.spear.chaining_trigger = c.chaining_trigger;
  cfg.stride_prefetch.enabled = c.stride_prefetch;
  if (c.stride_degree != 0) cfg.stride_prefetch.degree = c.stride_degree;
  cfg.taint_observe = c.taint;
  cfg.fence_spec_loads = c.fence_spec_loads;
  cfg.spear.xcore_pthreads = c.xcore_pthreads;
  return cfg;
}

EvalOptions MakeEvalOptions(const ManifestDefaults& d, const ConfigSpec& c) {
  EvalOptions opt;
  opt.sim_instrs = d.sim_instrs;
  opt.max_cycles = d.max_cycles;
  opt.ref_seed = d.ref_seed;
  opt.profile_seed = d.profile_seed;
  opt.scale = d.scale;
  if (c.dcycle_budget != 0.0) {
    opt.compiler.slicer.dcycle_budget = c.dcycle_budget;
  }
  return opt;
}

std::string ResolveBinary(const ConfigSpec& c) {
  if (!c.binary.empty()) return c.binary;
  return c.spear ? "annotated" : "plain";
}

}  // namespace spear::runner
