// Job manifests: the declarative form of an experiment matrix. A manifest
// names a set of workloads, a set of labeled simulator configurations and
// optional derived metrics; the job list is the workload x config cross
// product (workload-major, so every sweep the bench binaries used to
// hardcode is a data file), optionally followed by explicit extra jobs
// (used by CI to inject deliberate failures). The runner executes the
// list; bench binaries both emit manifests (--emit-manifest) and run them
// in-process, so the committed bench/manifests/*.json files and the C++
// matrices can never drift apart unnoticed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/config.h"
#include "eval/harness.h"
#include "sampling/sampling.h"
#include "telemetry/json.h"

namespace spear::runner {

// Bump when the manifest JSON shape changes incompatibly; the parser
// rejects other versions with a clear message.
inline constexpr int kManifestVersion = 1;

struct ManifestDefaults {
  std::uint64_t sim_instrs = 400'000;
  std::uint64_t max_cycles = 80'000'000;
  std::uint64_t ref_seed = 42;
  std::uint64_t profile_seed = 20040426;
  // Functional fast-forward before the timed run (0 = start cold). The
  // warm state is checkpointed and shared by every config whose cache and
  // predictor geometry matches.
  std::uint64_t ff_instrs = 0;
  // Worker-pool failure policy (0 timeout = no deadline).
  std::uint64_t timeout_ms = 0;
  int max_retries = 2;
  std::uint64_t backoff_ms = 250;
  // Workload working-set / iteration scale (EvalOptions::scale). >1 grows
  // dynamic instruction counts toward billion-instruction sampled runs;
  // emitted (and appended to cache keys) only when != 1.
  int scale = 1;
  // Interval sampling (src/sampling). period == 0 = full-detail runs; when
  // enabled, every row becomes a sampled estimate with CIs and the rows
  // carry a "sampling" member (stats schema v3).
  sampling::SamplingPlan sampling;
};

// One labeled simulator configuration. Fields at their zero/empty value
// mean "leave the simulator default alone"; ManifestToJson emits only the
// overridden fields, so manifests stay readable.
struct ConfigSpec {
  std::string label;
  std::string binary;  // "plain" | "annotated" | "" = derived from `spear`
  bool spear = false;
  bool separate_fu = false;
  std::uint32_t ifq = 128;
  std::uint32_t mem_latency = 0;
  std::uint32_t l2_latency = 0;
  std::string bpred_kind;  // bimodal | gshare | static_btfn | always_taken
  std::uint32_t bpred_entries = 0;
  std::uint32_t trigger_occupancy_div = 0;
  std::int32_t extract_per_cycle = -1;  // -1 = core default (issue/2)
  std::string drain_policy;  // immediate | drain_to_trigger | stall_dispatch
  bool chaining_trigger = false;
  bool stride_prefetch = false;
  std::uint32_t stride_degree = 0;
  // Speculative-leakage evaluation (bench_fig_leakage): attach the taint
  // observer, and/or fence speculative loads behind unresolved branches.
  bool taint = false;
  bool fence_spec_loads = false;
  // Compiler knob (affects PrepareWorkload, not the core): 0 = default.
  double dcycle_budget = 0.0;
  // Multiprogram topology (DESIGN.md §17). cores == 1 runs a mix job's
  // programs as co-scheduled SMT contexts on one core; cores == N (the
  // mix size) gives every program a private core over a shared L2.
  // Single-workload jobs ignore `cores` beyond requiring it to be 1.
  std::uint32_t cores = 1;
  // Cross-core pre-execution: p-threads spawn on an idle donor core and
  // warm the shared L2 only. Needs spear and a CMP config (cores > 1).
  bool xcore_pthreads = false;
};

// One run. `config` indexes Manifest::configs. Matrix jobs inherit the
// defaults' failure policy; explicit jobs may override it, and debug_hang
// makes the worker sleep forever (CI's forced-timeout probe).
struct JobSpec {
  std::string workload;
  // Multiprogram mix: `workloads: ["a", "b"]` in place of `workload`.
  // The programs are co-scheduled (SMT or CMP per the config's `cores`)
  // and the row carries per-thread stats plus weighted speedup /
  // harmonic-mean fairness against solo runs of the same config.
  std::vector<std::string> workloads;
  int config = -1;
  bool debug_hang = false;
  std::uint64_t timeout_ms = 0;  // 0 = inherit defaults
  int max_retries = -1;          // -1 = inherit defaults

  bool is_mix() const { return !workloads.empty(); }
};

// A metric aggregated over the manifest's workloads from two configs'
// job rows: mean_ratio = mean(num.metric / den.metric), mean_reduction =
// mean(1 - num.metric / den.metric). `metric` is a RunStats JSON key.
struct DerivedSpec {
  std::string name;
  std::string op;  // "mean_ratio" | "mean_reduction"
  std::string metric;
  std::string num;  // config label
  std::string den;  // config label
};

struct Manifest {
  std::string name;
  ManifestDefaults defaults;
  std::vector<std::string> workloads;
  std::vector<ConfigSpec> configs;
  std::vector<JobSpec> extra_jobs;
  std::vector<DerivedSpec> derived;
};

// The full flattened job list: workloads x configs (workload-major), then
// extra_jobs. Job indices used by `spearrun --worker --job N` index this.
std::vector<JobSpec> ExpandJobs(const Manifest& m);

// "workload/config-label" — the stable identifier used in result rows.
// Mix jobs join their workload names with '+' ("mcf+art/spear256").
std::string JobId(const Manifest& m, const JobSpec& job);

// Parses a manifest document. On failure returns false and fills *error
// with a path-annotated diagnostic ("configs[2].bpred_kind: unknown
// predictor 'foo'"). Unknown keys are rejected, not ignored: a typoed
// knob must not silently run the default configuration.
bool ParseManifest(const std::string& text, Manifest* out,
                   std::string* error);
bool LoadManifestFile(const std::string& path, Manifest* out,
                      std::string* error);

// Canonical JSON form (what --emit-manifest writes). Parse(Emit(m)) is an
// identity, and Emit only writes non-default fields.
telemetry::JsonValue ManifestToJson(const Manifest& m);

// Materializes a ConfigSpec into the simulator structs.
CoreConfig MakeCoreConfig(const ConfigSpec& c);
EvalOptions MakeEvalOptions(const ManifestDefaults& d, const ConfigSpec& c);

// Which program the config runs: "plain" or "annotated" (explicit binary
// field wins; otherwise SPEAR-enabled configs run the annotated binary).
std::string ResolveBinary(const ConfigSpec& c);

}  // namespace spear::runner
