#include "runner/checkpoint.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <vector>

#include "isa/regs.h"
#include "sim/emulator.h"

namespace spear::runner {
namespace {

constexpr char kMagic[4] = {'S', 'P', 'C', 'K'};

const char* BpredKindName(BpredKind kind) {
  switch (kind) {
    case BpredKind::kBimodal:
      return "bimodal";
    case BpredKind::kGshare:
      return "gshare";
    case BpredKind::kStaticBtfn:
      return "static_btfn";
    case BpredKind::kAlwaysTaken:
      return "always_taken";
  }
  return "?";
}

std::uint64_t Fnv1a64(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

// Little-endian byte-buffer serializer. The whole checkpoint is built (or
// slurped) in memory; files are a few MiB at most, dominated by the page
// set of the warmed memory image.
class Writer {
 public:
  void Bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  void U8(std::uint8_t v) { buf_.push_back(v); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void F64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }
  const std::vector<std::uint8_t>& buffer() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

// Every read checks remaining length; the first failure poisons the reader
// and the caller reports a (recoverable) miss.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == size_; }

  bool Bytes(void* out, std::size_t n) {
    if (!ok_ || size_ - pos_ < n) return Fail();
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  std::uint8_t U8() {
    std::uint8_t v = 0;
    Bytes(&v, 1);
    return v;
  }
  std::uint32_t U32() {
    std::uint8_t b[4] = {};
    Bytes(b, 4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
  }
  std::uint64_t U64() {
    std::uint8_t b[8] = {};
    Bytes(b, 8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
  }
  double F64() {
    const std::uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    const std::uint32_t n = U32();
    if (!ok_ || size_ - pos_ < n) {
      Fail();
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

 private:
  bool Fail() {
    ok_ = false;
    return false;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

void WriteCacheState(Writer& w, const CacheState& s) {
  w.U64(s.stamp);
  w.U64(s.tags.size());
  for (std::size_t i = 0; i < s.tags.size(); ++i) {
    w.U64(s.tags[i]);
    w.U64(s.lru[i]);
    w.U8(s.flags[i]);
  }
}

bool ReadCacheState(Reader& r, CacheState* s) {
  s->stamp = r.U64();
  const std::uint64_t n = r.U64();
  if (!r.ok() || n > (1ull << 28)) return false;  // implausible line count
  s->tags.resize(n);
  s->lru.resize(n);
  s->flags.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    s->tags[i] = r.U64();
    s->lru[i] = r.U64();
    s->flags[i] = r.U8();
  }
  return r.ok();
}

}  // namespace

std::string KeyString(const CheckpointKey& key) {
  std::ostringstream os;
  os << "workload=" << key.workload << "|seed=" << key.seed
     << "|ff=" << key.ff_instrs << "|l1d=" << key.l1d.sets << "x"
     << key.l1d.block_bytes << "x" << key.l1d.assoc << "|l2=" << key.l2.sets
     << "x" << key.l2.block_bytes << "x" << key.l2.assoc
     << "|bpred=" << BpredKindName(key.bpred.kind) << ":"
     << key.bpred.table_entries << ":" << key.bpred.ras_entries << ":"
     << key.bpred.btb_entries;
  return os.str();
}

std::string CheckpointPath(const std::string& dir, const CheckpointKey& key) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(KeyString(key))));
  return dir + "/" + hex + ".spck";
}

FastForwardResult FastForward(const Program& prog, const CheckpointKey& key) {
  // Latencies don't affect tag/LRU or predictor contents, so the defaults
  // are fine regardless of which latency sweep the timed run belongs to.
  HierarchyConfig hcfg;
  hcfg.l1d = key.l1d;
  hcfg.l2 = key.l2;
  MemoryHierarchy hier(hcfg);
  BranchPredictor bpred(key.bpred);
  Emulator emu(prog);

  FastForwardResult out;
  while (!emu.halted() && out.executed < key.ff_instrs) {
    const StepInfo info = emu.Step();
    ++out.executed;
    // Mirror the timed core's warming protocol: every data access walks
    // the hierarchy, every control instruction is predicted at fetch and
    // trained at commit (Predict also maintains the RAS speculatively; on
    // the functional path fetch and commit coincide).
    if (info.result.is_load || info.result.is_store) {
      hier.AccessData(info.result.mem_addr, info.result.is_store, kMainThread,
                      info.icount);
    }
    if (info.result.is_control) {
      bpred.Predict(info.pc, info.instr);
      bpred.Update(info.pc, info.instr, info.result.taken,
                   info.result.next_pc);
    }
  }

  WarmState& ws = out.state;
  for (int i = 0; i < kNumIntRegs; ++i) ws.iregs[i] = emu.ReadIntReg(IntReg(i));
  for (int i = 0; i < kNumFpRegs; ++i) ws.fregs[i] = emu.ReadFpReg(FpReg(i));
  ws.pc = emu.pc();
  ws.warmed_instrs = out.executed;
  ws.halted = emu.halted();
  ws.mem.CopyFrom(emu.memory());
  ws.l1d = hier.l1d().SaveState();
  ws.l2 = hier.l2().SaveState();
  ws.bpred = bpred.SaveState();
  return out;
}

bool SaveCheckpoint(const std::string& dir, const CheckpointKey& key,
                    const WarmState& state, std::string* error) {
  Writer w;
  w.Bytes(kMagic, sizeof(kMagic));
  w.U32(kCheckpointFormatVersion);
  w.Str(KeyString(key));

  w.U8(state.halted ? 1 : 0);
  w.U32(state.pc);
  w.U64(state.warmed_instrs);
  for (std::uint32_t r : state.iregs) w.U32(r);
  for (double f : state.fregs) w.F64(f);

  const std::vector<Addr> pages = state.mem.PageNumbers();
  w.U32(static_cast<std::uint32_t>(pages.size()));
  for (Addr pn : pages) {
    w.U32(pn);
    w.Bytes(state.mem.PageData(pn), Memory::kPageSize);
  }

  WriteCacheState(w, state.l1d);
  WriteCacheState(w, state.l2);

  const BpredState& b = state.bpred;
  w.U32(static_cast<std::uint32_t>(b.counters.size()));
  w.Bytes(b.counters.data(), b.counters.size());
  w.U32(static_cast<std::uint32_t>(b.ras.size()));
  for (Pc p : b.ras) w.U32(p);
  w.U64(b.ras_top);
  w.U32(static_cast<std::uint32_t>(b.btb_pcs.size()));
  for (std::size_t i = 0; i < b.btb_pcs.size(); ++i) {
    w.U32(b.btb_pcs[i]);
    w.U32(b.btb_targets[i]);
  }
  w.U32(b.history);

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = CheckpointPath(dir, key);
  // Unique temp name per writer so parallel workers computing the same
  // checkpoint never see each other's partial files; the rename makes the
  // final path appear atomically.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open " + tmp + ": " + std::strerror(errno);
    }
    return false;
  }
  const std::vector<std::uint8_t>& buf = w.buffer();
  const bool wrote = std::fwrite(buf.data(), 1, buf.size(), f) == buf.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    if (error != nullptr) *error = "short write to " + tmp;
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) {
      *error = "rename " + tmp + " -> " + path + ": " + std::strerror(errno);
    }
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool LoadCheckpoint(const std::string& dir, const CheckpointKey& key,
                    WarmState* state, std::string* error) {
  const std::string path = CheckpointPath(dir, key);
  auto miss = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return miss("no checkpoint at " + path);
  std::vector<std::uint8_t> buf;
  std::uint8_t chunk[1 << 16];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buf.insert(buf.end(), chunk, chunk + n);
  }
  std::fclose(f);

  Reader r(buf.data(), buf.size());
  char magic[4] = {};
  r.Bytes(magic, sizeof(magic));
  if (!r.ok() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return miss(path + ": bad magic");
  }
  if (r.U32() != kCheckpointFormatVersion) {
    return miss(path + ": format version mismatch");
  }
  // The hash names the file but the full key string decides: a hash
  // collision (or a stale cache dir) must read as a miss, not a wrong warm
  // state.
  if (r.Str() != KeyString(key)) return miss(path + ": key mismatch");

  WarmState ws;
  ws.halted = r.U8() != 0;
  ws.pc = r.U32();
  ws.warmed_instrs = r.U64();
  for (int i = 0; i < kNumIntRegs; ++i) ws.iregs[i] = r.U32();
  for (int i = 0; i < kNumFpRegs; ++i) ws.fregs[i] = r.F64();

  const std::uint32_t npages = r.U32();
  if (!r.ok()) return miss(path + ": truncated");
  std::vector<std::uint8_t> page(Memory::kPageSize);
  for (std::uint32_t i = 0; i < npages; ++i) {
    const Addr pn = r.U32();
    if (!r.Bytes(page.data(), page.size())) return miss(path + ": truncated");
    ws.mem.InstallPage(pn, page.data());
  }

  if (!ReadCacheState(r, &ws.l1d) || !ReadCacheState(r, &ws.l2)) {
    return miss(path + ": truncated cache state");
  }

  BpredState& b = ws.bpred;
  const std::uint32_t ncounters = r.U32();
  if (!r.ok() || ncounters > (1u << 28)) return miss(path + ": truncated");
  b.counters.resize(ncounters);
  if (ncounters > 0 && !r.Bytes(b.counters.data(), ncounters)) {
    return miss(path + ": truncated");
  }
  const std::uint32_t nras = r.U32();
  if (!r.ok() || nras > (1u << 20)) return miss(path + ": truncated");
  b.ras.resize(nras);
  for (std::uint32_t i = 0; i < nras; ++i) b.ras[i] = r.U32();
  b.ras_top = r.U64();
  const std::uint32_t nbtb = r.U32();
  if (!r.ok() || nbtb > (1u << 24)) return miss(path + ": truncated");
  b.btb_pcs.resize(nbtb);
  b.btb_targets.resize(nbtb);
  for (std::uint32_t i = 0; i < nbtb; ++i) {
    b.btb_pcs[i] = r.U32();
    b.btb_targets[i] = r.U32();
  }
  b.history = r.U32();

  if (!r.ok() || !r.AtEnd()) return miss(path + ": truncated or oversized");
  *state = std::move(ws);
  return true;
}

}  // namespace spear::runner
