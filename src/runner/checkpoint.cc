#include "runner/checkpoint.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <vector>

#include "common/fnv.h"
#include "isa/regs.h"
#include "sim/emulator.h"

namespace spear::runner {
namespace {

constexpr char kMagic[4] = {'S', 'P', 'C', 'K'};

const char* BpredKindName(BpredKind kind) {
  switch (kind) {
    case BpredKind::kBimodal:
      return "bimodal";
    case BpredKind::kGshare:
      return "gshare";
    case BpredKind::kStaticBtfn:
      return "static_btfn";
    case BpredKind::kAlwaysTaken:
      return "always_taken";
  }
  return "?";
}

// Little-endian byte-buffer serializer. The whole checkpoint is built (or
// slurped) in memory; files are a few MiB at most, dominated by the page
// set of the warmed memory image.
class Writer {
 public:
  void Bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  void U8(std::uint8_t v) { buf_.push_back(v); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void F64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }
  const std::vector<std::uint8_t>& buffer() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

// Every read checks remaining length; the first failure poisons the reader
// and the caller reports a (recoverable) miss.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == size_; }

  bool Bytes(void* out, std::size_t n) {
    if (!ok_ || size_ - pos_ < n) return Fail();
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  std::uint8_t U8() {
    std::uint8_t v = 0;
    Bytes(&v, 1);
    return v;
  }
  std::uint32_t U32() {
    std::uint8_t b[4] = {};
    Bytes(b, 4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
  }
  std::uint64_t U64() {
    std::uint8_t b[8] = {};
    Bytes(b, 8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
  }
  double F64() {
    const std::uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    const std::uint32_t n = U32();
    if (!ok_ || size_ - pos_ < n) {
      Fail();
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

 private:
  bool Fail() {
    ok_ = false;
    return false;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// Wrong-format-version diagnostic, shared by both readers so the marker
// substring IsCheckpointVersionMismatch() keys on stays in one place.
std::string VersionMismatchError(const std::string& path, std::uint32_t got,
                                 std::uint32_t want) {
  std::ostringstream os;
  os << path << ": SPCK format version " << got << ", this reader expects "
     << want;
  if (got == kCheckpointTreeFormatVersion &&
      want == kCheckpointFormatVersion) {
    os << " (checkpoint tree handed to the flat-checkpoint reader — use "
          "LoadCheckpointTree)";
  } else if (got == kCheckpointFormatVersion &&
             want == kCheckpointTreeFormatVersion) {
    os << " (flat checkpoint handed to the tree reader — use "
          "LoadCheckpoint)";
  }
  return os.str();
}

void WriteCacheState(Writer& w, const CacheState& s) {
  w.U64(s.stamp);
  w.U64(s.tags.size());
  for (std::size_t i = 0; i < s.tags.size(); ++i) {
    w.U64(s.tags[i]);
    w.U64(s.lru[i]);
    w.U8(s.flags[i]);
  }
}

bool ReadCacheState(Reader& r, CacheState* s) {
  s->stamp = r.U64();
  const std::uint64_t n = r.U64();
  if (!r.ok() || n > (1ull << 28)) return false;  // implausible line count
  s->tags.resize(n);
  s->lru.resize(n);
  s->flags.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    s->tags[i] = r.U64();
    s->lru[i] = r.U64();
    s->flags[i] = r.U8();
  }
  return r.ok();
}

void WriteBpredState(Writer& w, const BpredState& b) {
  w.U32(static_cast<std::uint32_t>(b.counters.size()));
  w.Bytes(b.counters.data(), b.counters.size());
  w.U32(static_cast<std::uint32_t>(b.ras.size()));
  for (Pc p : b.ras) w.U32(p);
  w.U64(b.ras_top);
  w.U32(static_cast<std::uint32_t>(b.btb_pcs.size()));
  for (std::size_t i = 0; i < b.btb_pcs.size(); ++i) {
    w.U32(b.btb_pcs[i]);
    w.U32(b.btb_targets[i]);
  }
  w.U32(b.history);
}

bool ReadBpredState(Reader& r, BpredState* b) {
  const std::uint32_t ncounters = r.U32();
  if (!r.ok() || ncounters > (1u << 28)) return false;
  b->counters.resize(ncounters);
  if (ncounters > 0 && !r.Bytes(b->counters.data(), ncounters)) return false;
  const std::uint32_t nras = r.U32();
  if (!r.ok() || nras > (1u << 20)) return false;
  b->ras.resize(nras);
  for (std::uint32_t i = 0; i < nras; ++i) b->ras[i] = r.U32();
  b->ras_top = r.U64();
  const std::uint32_t nbtb = r.U32();
  if (!r.ok() || nbtb > (1u << 24)) return false;
  b->btb_pcs.resize(nbtb);
  b->btb_targets.resize(nbtb);
  for (std::uint32_t i = 0; i < nbtb; ++i) {
    b->btb_pcs[i] = r.U32();
    b->btb_targets[i] = r.U32();
  }
  b->history = r.U32();
  return r.ok();
}

// The v1 file body (everything after magic+version+key). The tree format
// reuses it verbatim for the root, so the byte layout of a v1 file is a
// strict prefix-compatible subset of a v2 file's root section.
void WriteWarmStateBody(Writer& w, const WarmState& state) {
  w.U8(state.halted ? 1 : 0);
  w.U32(state.pc);
  w.U64(state.warmed_instrs);
  for (std::uint32_t r : state.iregs) w.U32(r);
  for (double f : state.fregs) w.F64(f);

  const std::vector<Addr> pages = state.mem.PageNumbers();
  w.U32(static_cast<std::uint32_t>(pages.size()));
  for (Addr pn : pages) {
    w.U32(pn);
    w.Bytes(state.mem.PageData(pn), Memory::kPageSize);
  }

  WriteCacheState(w, state.l1d);
  WriteCacheState(w, state.l2);
  WriteBpredState(w, state.bpred);
}

bool ReadWarmStateBody(Reader& r, WarmState* out) {
  WarmState ws;
  ws.halted = r.U8() != 0;
  ws.pc = r.U32();
  ws.warmed_instrs = r.U64();
  for (int i = 0; i < kNumIntRegs; ++i) ws.iregs[i] = r.U32();
  for (int i = 0; i < kNumFpRegs; ++i) ws.fregs[i] = r.F64();

  const std::uint32_t npages = r.U32();
  if (!r.ok()) return false;
  std::vector<std::uint8_t> page(Memory::kPageSize);
  for (std::uint32_t i = 0; i < npages; ++i) {
    const Addr pn = r.U32();
    if (!r.Bytes(page.data(), page.size())) return false;
    ws.mem.InstallPage(pn, page.data());
  }

  if (!ReadCacheState(r, &ws.l1d) || !ReadCacheState(r, &ws.l2)) return false;
  if (!ReadBpredState(r, &ws.bpred)) return false;
  *out = std::move(ws);
  return true;
}

// Slurps the file at `path` and validates the SPCK envelope (magic,
// `version`, key string). On success *body_off is the offset of the first
// body byte; on any failure fills *why with the miss diagnostic.
bool OpenSpck(const std::string& path, std::uint32_t version,
              const std::string& key_string, std::vector<std::uint8_t>* buf,
              std::size_t* body_off, std::string* why) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *why = "no checkpoint at " + path;
    return false;
  }
  std::uint8_t chunk[1 << 16];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buf->insert(buf->end(), chunk, chunk + n);
  }
  std::fclose(f);

  Reader r(buf->data(), buf->size());
  char magic[4] = {};
  r.Bytes(magic, sizeof(magic));
  if (!r.ok() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    *why = path + ": bad magic";
    return false;
  }
  const std::uint32_t got = r.U32();
  if (!r.ok()) {
    *why = path + ": truncated";
    return false;
  }
  if (got != version) {
    *why = VersionMismatchError(path, got, version);
    return false;
  }
  // The hash names the file but the full key string decides: a hash
  // collision (or a stale cache dir) must read as a miss, not a wrong warm
  // state.
  if (r.Str() != key_string) {
    *why = path + ": key mismatch";
    return false;
  }
  // magic + version + length-prefixed key string.
  *body_off = sizeof(kMagic) + sizeof(std::uint32_t) +
              sizeof(std::uint32_t) + key_string.size();
  return true;
}

// Writes `buf` to `path` via a pid-unique temp file + rename, so parallel
// workers racing on the same key never see a partial file.
bool AtomicWriteFile(const std::string& dir, const std::string& path,
                     const std::vector<std::uint8_t>& buf,
                     std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open " + tmp + ": " + std::strerror(errno);
    }
    return false;
  }
  const bool wrote = std::fwrite(buf.data(), 1, buf.size(), f) == buf.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    if (error != nullptr) *error = "short write to " + tmp;
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) {
      *error = "rename " + tmp + " -> " + path + ": " + std::strerror(errno);
    }
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

std::string KeyString(const CheckpointKey& key) {
  std::ostringstream os;
  os << "workload=" << key.workload << "|seed=" << key.seed
     << "|ff=" << key.ff_instrs << "|l1d=" << key.l1d.sets << "x"
     << key.l1d.block_bytes << "x" << key.l1d.assoc << "|l2=" << key.l2.sets
     << "x" << key.l2.block_bytes << "x" << key.l2.assoc
     << "|bpred=" << BpredKindName(key.bpred.kind) << ":"
     << key.bpred.table_entries << ":" << key.bpred.ras_entries << ":"
     << key.bpred.btb_entries;
  // Appended only when non-default so the checkpoints committed under
  // bench/ckpt (written before the scale knob existed) keep their keys.
  if (key.scale != 1) os << "|scale=" << key.scale;
  return os.str();
}

std::string CheckpointPath(const std::string& dir, const CheckpointKey& key) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(KeyString(key))));
  return dir + "/" + hex + ".spck";
}

FastForwardResult FastForward(const Program& prog, const CheckpointKey& key) {
  // Latencies don't affect tag/LRU or predictor contents, so the defaults
  // are fine regardless of which latency sweep the timed run belongs to.
  HierarchyConfig hcfg;
  hcfg.l1d = key.l1d;
  hcfg.l2 = key.l2;
  MemoryHierarchy hier(hcfg);
  BranchPredictor bpred(key.bpred);
  Emulator emu(prog);

  FastForwardResult out;
  while (!emu.halted() && !emu.faulted() && out.executed < key.ff_instrs) {
    const StepInfo info = emu.Step();
    if (emu.faulted()) break;  // wild PC: stop warming, keep what we have
    ++out.executed;
    // Mirror the timed core's warming protocol: every data access walks
    // the hierarchy (WarmData — tag/LRU updates without the latency/MSHR
    // bookkeeping a WarmState doesn't carry), every control instruction
    // is predicted at fetch and trained at commit (Predict also maintains
    // the RAS speculatively; on the functional path fetch and commit
    // coincide).
    if (info.result.is_load || info.result.is_store) {
      hier.WarmData(info.result.mem_addr, info.result.is_store, kMainThread);
    }
    if (info.result.is_control) {
      bpred.Predict(info.pc, info.instr);
      bpred.Update(info.pc, info.instr, info.result.taken,
                   info.result.next_pc);
    }
  }

  WarmState& ws = out.state;
  for (int i = 0; i < kNumIntRegs; ++i) ws.iregs[i] = emu.ReadIntReg(IntReg(i));
  for (int i = 0; i < kNumFpRegs; ++i) ws.fregs[i] = emu.ReadFpReg(FpReg(i));
  ws.pc = emu.pc();
  ws.warmed_instrs = out.executed;
  ws.halted = emu.halted();
  ws.mem.CopyFrom(emu.memory());
  ws.l1d = hier.l1d().SaveState();
  ws.l2 = hier.l2().SaveState();
  ws.bpred = bpred.SaveState();
  return out;
}

bool SaveCheckpoint(const std::string& dir, const CheckpointKey& key,
                    const WarmState& state, std::string* error) {
  Writer w;
  w.Bytes(kMagic, sizeof(kMagic));
  w.U32(kCheckpointFormatVersion);
  w.Str(KeyString(key));
  WriteWarmStateBody(w, state);
  return AtomicWriteFile(dir, CheckpointPath(dir, key), w.buffer(), error);
}

bool LoadCheckpoint(const std::string& dir, const CheckpointKey& key,
                    WarmState* state, std::string* error) {
  const std::string path = CheckpointPath(dir, key);
  auto miss = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };

  std::vector<std::uint8_t> buf;
  std::size_t body_off = 0;
  std::string why;
  if (!OpenSpck(path, kCheckpointFormatVersion, KeyString(key), &buf,
                &body_off, &why)) {
    return miss(why);
  }

  Reader r(buf.data() + body_off, buf.size() - body_off);
  WarmState ws;
  if (!ReadWarmStateBody(r, &ws)) return miss(path + ": truncated");
  if (!r.ok() || !r.AtEnd()) return miss(path + ": truncated or oversized");
  *state = std::move(ws);
  return true;
}

bool IsCheckpointVersionMismatch(const std::string& error) {
  return error.find(": SPCK format version ") != std::string::npos;
}

// --- SPCK v2 checkpoint trees --------------------------------------------

std::string TreeKeyString(const CheckpointTreeKey& key) {
  std::ostringstream os;
  os << KeyString(key.base) << "|sim=" << key.sim_instrs
     << "|sampling=" << key.period << ":" << key.detail << ":" << key.warmup;
  return os.str();
}

std::string CheckpointTreePath(const std::string& dir,
                               const CheckpointTreeKey& key) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(TreeKeyString(key))));
  return dir + "/" + hex + ".spck";
}

WarmState CheckpointTree::MaterializeChild(std::size_t i) const {
  const CheckpointTreeChild& c = children[i];
  WarmState ws;
  ws.iregs = c.iregs;
  ws.fregs = c.fregs;
  ws.pc = c.pc;
  ws.warmed_instrs = c.start_icount;
  ws.halted = false;  // a halted point is never snapshotted as a child
  ws.mem.CopyFrom(root.mem);
  for (const auto& [pn, bytes] : c.delta_pages) {
    ws.mem.InstallPage(pn, bytes.data());
  }
  ws.l1d = c.l1d;
  ws.l2 = c.l2;
  ws.bpred = c.bpred;
  return ws;
}

void CheckpointTree::AddChild(const WarmState& ws) {
  CheckpointTreeChild c;
  c.start_icount = ws.warmed_instrs;
  c.iregs = ws.iregs;
  c.fregs = ws.fregs;
  c.pc = ws.pc;
  // Pages only ever appear (the sparse Memory never frees), so the child's
  // page set is a superset of the root's: store each page that the root
  // lacks or whose bytes changed.
  for (Addr pn : ws.mem.PageNumbers()) {
    const std::uint8_t* cur = ws.mem.PageData(pn);
    const std::uint8_t* base = root.mem.PageData(pn);
    if (base != nullptr &&
        std::memcmp(cur, base, Memory::kPageSize) == 0) {
      continue;
    }
    c.delta_pages.emplace_back(
        pn, std::vector<std::uint8_t>(cur, cur + Memory::kPageSize));
  }
  c.l1d = ws.l1d;
  c.l2 = ws.l2;
  c.bpred = ws.bpred;
  children.push_back(std::move(c));
}

bool SaveCheckpointTree(const std::string& dir, const CheckpointTreeKey& key,
                        const CheckpointTree& tree, std::string* error) {
  Writer w;
  w.Bytes(kMagic, sizeof(kMagic));
  w.U32(kCheckpointTreeFormatVersion);
  w.Str(TreeKeyString(key));

  w.U64(tree.covered_instrs);
  w.U8(tree.halted ? 1 : 0);
  WriteWarmStateBody(w, tree.root);

  w.U32(static_cast<std::uint32_t>(tree.children.size()));
  for (const CheckpointTreeChild& c : tree.children) {
    w.U64(c.start_icount);
    w.U32(c.pc);
    for (std::uint32_t r : c.iregs) w.U32(r);
    for (double f : c.fregs) w.F64(f);
    w.U32(static_cast<std::uint32_t>(c.delta_pages.size()));
    for (const auto& [pn, bytes] : c.delta_pages) {
      w.U32(pn);
      w.Bytes(bytes.data(), bytes.size());
    }
    WriteCacheState(w, c.l1d);
    WriteCacheState(w, c.l2);
    WriteBpredState(w, c.bpred);
  }
  return AtomicWriteFile(dir, CheckpointTreePath(dir, key), w.buffer(),
                         error);
}

bool LoadCheckpointTree(const std::string& dir, const CheckpointTreeKey& key,
                        CheckpointTree* tree, std::string* error) {
  const std::string path = CheckpointTreePath(dir, key);
  auto miss = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };

  std::vector<std::uint8_t> buf;
  std::size_t body_off = 0;
  std::string why;
  if (!OpenSpck(path, kCheckpointTreeFormatVersion, TreeKeyString(key), &buf,
                &body_off, &why)) {
    return miss(why);
  }

  Reader r(buf.data() + body_off, buf.size() - body_off);
  CheckpointTree t;
  t.covered_instrs = r.U64();
  t.halted = r.U8() != 0;
  if (!ReadWarmStateBody(r, &t.root)) {
    return miss(path + ": truncated root state");
  }

  const std::uint32_t nchildren = r.U32();
  if (!r.ok() || nchildren > (1u << 24)) return miss(path + ": truncated");
  t.children.reserve(nchildren);
  for (std::uint32_t i = 0; i < nchildren; ++i) {
    CheckpointTreeChild c;
    c.start_icount = r.U64();
    c.pc = r.U32();
    for (int j = 0; j < kNumIntRegs; ++j) c.iregs[j] = r.U32();
    for (int j = 0; j < kNumFpRegs; ++j) c.fregs[j] = r.F64();
    const std::uint32_t npages = r.U32();
    if (!r.ok() || npages > (1u << 24)) {
      return miss(path + ": truncated child");
    }
    c.delta_pages.reserve(npages);
    for (std::uint32_t p = 0; p < npages; ++p) {
      const Addr pn = r.U32();
      std::vector<std::uint8_t> bytes(Memory::kPageSize);
      if (!r.Bytes(bytes.data(), bytes.size())) {
        return miss(path + ": truncated child page");
      }
      c.delta_pages.emplace_back(pn, std::move(bytes));
    }
    if (!ReadCacheState(r, &c.l1d) || !ReadCacheState(r, &c.l2)) {
      return miss(path + ": truncated child cache state");
    }
    if (!ReadBpredState(r, &c.bpred)) {
      return miss(path + ": truncated child predictor state");
    }
    t.children.push_back(std::move(c));
  }
  if (!r.ok() || !r.AtEnd()) return miss(path + ": truncated or oversized");
  *tree = std::move(t);
  return true;
}

}  // namespace spear::runner
