// Checkpointed fast-forward: the expensive half of the paper's
// skip-and-simulate methodology (functional warmup of architectural state,
// caches and the branch predictor) done once per (workload, seed,
// warmup-instrs) and reused across every configuration that sweeps it.
//
// FastForward() runs the functional emulator for N instructions while
// warming a private cache hierarchy and branch predictor of the target
// geometry; the resulting WarmState transfers into a timed Core via
// Core::InstallWarmState. Save/Load serialize WarmState to a versioned
// binary file in a content-addressed cache directory, keyed by the warmup
// inputs plus the cache/predictor geometry (the only config knobs the warm
// state depends on — latencies, IFQ size etc. do not change it, so one
// checkpoint serves a whole sweep). A format or geometry mismatch is
// reported as a plain miss, never an error: the caller recomputes and
// overwrites. Writes go through a temp file + rename so concurrent workers
// racing on the same key are safe.
//
// Checkpoints carry no pipeline or scheduler state: WarmState installs
// only into a cycle-0 core, where those structures are empty (see
// warm_state.h and DESIGN.md §10), so format v1 stays valid across the
// event-driven scheduler.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bpred/bpred.h"
#include "common/types.h"
#include "cpu/warm_state.h"
#include "isa/program.h"
#include "isa/regs.h"
#include "mem/hierarchy.h"

namespace spear::runner {

// Bump when the serialized layout changes; old files then read as misses
// and are transparently regenerated (see DESIGN.md "Experiment
// orchestration" for the version policy). Version 2 is the checkpoint
// *tree* layout (one warmup root plus delta-encoded per-interval
// children, written by SaveCheckpointTree); flat single-state files stay
// at version 1, and each reader names both versions in its diagnostic
// when handed the other layout (see IsCheckpointVersionMismatch).
inline constexpr std::uint32_t kCheckpointFormatVersion = 1;
inline constexpr std::uint32_t kCheckpointTreeFormatVersion = 2;

// Inputs that determine a warm state, and therefore the cache key.
struct CheckpointKey {
  std::string workload;       // diagnostic; the program comes from the caller
  std::uint64_t seed = 0;     // workload input seed
  std::uint64_t ff_instrs = 0;
  // Workload working-set scale (WorkloadConfig::scale). Appended to the
  // key string only when != 1 so checkpoints cached before the knob
  // existed keep their keys.
  int scale = 1;
  CacheConfig l1d;
  CacheConfig l2;
  BpredConfig bpred;
};

// Canonical "field=value|..." form of the key (hashed for the filename,
// stored verbatim in the file and verified on load).
std::string KeyString(const CheckpointKey& key);

// Content-addressed path inside `dir`: <fnv1a64(KeyString)>.spck.
std::string CheckpointPath(const std::string& dir, const CheckpointKey& key);

struct FastForwardResult {
  WarmState state;
  std::uint64_t executed = 0;  // < ff_instrs iff the program halted early
};

// Executes `ff_instrs` instructions of `prog` on the functional emulator,
// routing every data access through a cache hierarchy and every control
// instruction through a branch predictor of the key's geometry (predict at
// fetch, train at commit — the same protocol the timed core follows).
FastForwardResult FastForward(const Program& prog, const CheckpointKey& key);

// Serializes `state` to CheckpointPath(dir, key), creating `dir` if
// needed. Returns false (with a message in *error) on I/O failure.
bool SaveCheckpoint(const std::string& dir, const CheckpointKey& key,
                    const WarmState& state, std::string* error = nullptr);

// Loads the checkpoint for `key` from `dir` into *state. Returns false on
// any mismatch — absent file, bad magic, other format version, different
// key, truncation — all of which the caller treats as a cache miss.
// A wrong-format-version file is still a miss for control flow, but the
// error message names both versions (see IsCheckpointVersionMismatch) so
// callers can warn instead of silently recomputing.
bool LoadCheckpoint(const std::string& dir, const CheckpointKey& key,
                    WarmState* state, std::string* error = nullptr);

// True when an error string from LoadCheckpoint/LoadCheckpointTree
// reports a well-formed SPCK file of the *other* format version — i.e.
// the file is not corrupt, the reader is just the wrong one. Callers
// should surface these (they indicate a version skew or a mis-shared
// cache directory), unlike ordinary misses.
bool IsCheckpointVersionMismatch(const std::string& error);

// --- SPCK v2 checkpoint trees (sampled simulation) -----------------------
//
// A sampled run (src/sampling) fast-forwards once to the measurement
// region, then alternates functional gaps with short detailed intervals.
// The tree caches that whole structure: the root is the post-fast-forward
// WarmState (stored in full), and each child is the architectural +
// microarchitectural state at one detailed interval's start, delta-encoded
// against the root where cheap (memory pages are stored only when they
// differ from the root's image; registers, cache tags and predictor
// tables are small and stored whole). Restoring the tree replays the
// detailed intervals without re-running the functional gaps, making a
// sampled row resumable and farm-cacheable per interval.

// Inputs that determine a checkpoint tree, and therefore its cache key:
// the flat warmup key plus the sampled-region budget and the sampling
// plan geometry (interval starts move whenever any of these move).
struct CheckpointTreeKey {
  CheckpointKey base;
  std::uint64_t sim_instrs = 0;  // sampled-region instruction budget
  std::uint64_t period = 0;
  std::uint64_t detail = 0;
  std::uint64_t warmup = 0;
};

std::string TreeKeyString(const CheckpointTreeKey& key);
std::string CheckpointTreePath(const std::string& dir,
                               const CheckpointTreeKey& key);

// One detailed interval's start state, delta-encoded against the root.
struct CheckpointTreeChild {
  std::uint64_t start_icount = 0;  // absolute instrs executed at snapshot
  std::array<std::uint32_t, kNumIntRegs> iregs{};
  std::array<double, kNumFpRegs> fregs{};
  Pc pc = 0;
  // Memory pages whose bytes differ from (or don't exist in) the root
  // image; each is a full kPageSize-byte page keyed by page number.
  std::vector<std::pair<Addr, std::vector<std::uint8_t>>> delta_pages;
  CacheState l1d;
  CacheState l2;
  BpredState bpred;
};

struct CheckpointTree {
  WarmState root;
  // Region coverage recorded at save time, so a restored run reproduces
  // the fresh run's totals without re-executing the functional gaps.
  std::uint64_t covered_instrs = 0;
  bool halted = false;  // the program halted inside the sampled region
  std::vector<CheckpointTreeChild> children;

  // Reconstructs child `i` as a full WarmState: the root memory image
  // with the child's delta pages applied, plus the child's registers,
  // cache and predictor state.
  WarmState MaterializeChild(std::size_t i) const;

  // Delta-encodes `ws` (an interval-start snapshot) against `root` and
  // appends it as a child.
  void AddChild(const WarmState& ws);
};

// Serialization mirrors Save/LoadCheckpoint: content-addressed path from
// TreeKeyString, temp-file + rename writes, every mismatch a miss.
bool SaveCheckpointTree(const std::string& dir, const CheckpointTreeKey& key,
                        const CheckpointTree& tree,
                        std::string* error = nullptr);
bool LoadCheckpointTree(const std::string& dir, const CheckpointTreeKey& key,
                        CheckpointTree* tree, std::string* error = nullptr);

}  // namespace spear::runner
