// Checkpointed fast-forward: the expensive half of the paper's
// skip-and-simulate methodology (functional warmup of architectural state,
// caches and the branch predictor) done once per (workload, seed,
// warmup-instrs) and reused across every configuration that sweeps it.
//
// FastForward() runs the functional emulator for N instructions while
// warming a private cache hierarchy and branch predictor of the target
// geometry; the resulting WarmState transfers into a timed Core via
// Core::InstallWarmState. Save/Load serialize WarmState to a versioned
// binary file in a content-addressed cache directory, keyed by the warmup
// inputs plus the cache/predictor geometry (the only config knobs the warm
// state depends on — latencies, IFQ size etc. do not change it, so one
// checkpoint serves a whole sweep). A format or geometry mismatch is
// reported as a plain miss, never an error: the caller recomputes and
// overwrites. Writes go through a temp file + rename so concurrent workers
// racing on the same key are safe.
//
// Checkpoints carry no pipeline or scheduler state: WarmState installs
// only into a cycle-0 core, where those structures are empty (see
// warm_state.h and DESIGN.md §10), so format v1 stays valid across the
// event-driven scheduler.
#pragma once

#include <cstdint>
#include <string>

#include "bpred/bpred.h"
#include "cpu/warm_state.h"
#include "isa/program.h"
#include "mem/hierarchy.h"

namespace spear::runner {

// Bump when the serialized layout changes; old files then read as misses
// and are transparently regenerated (see DESIGN.md "Experiment
// orchestration" for the version policy).
inline constexpr std::uint32_t kCheckpointFormatVersion = 1;

// Inputs that determine a warm state, and therefore the cache key.
struct CheckpointKey {
  std::string workload;       // diagnostic; the program comes from the caller
  std::uint64_t seed = 0;     // workload input seed
  std::uint64_t ff_instrs = 0;
  CacheConfig l1d;
  CacheConfig l2;
  BpredConfig bpred;
};

// Canonical "field=value|..." form of the key (hashed for the filename,
// stored verbatim in the file and verified on load).
std::string KeyString(const CheckpointKey& key);

// Content-addressed path inside `dir`: <fnv1a64(KeyString)>.spck.
std::string CheckpointPath(const std::string& dir, const CheckpointKey& key);

struct FastForwardResult {
  WarmState state;
  std::uint64_t executed = 0;  // < ff_instrs iff the program halted early
};

// Executes `ff_instrs` instructions of `prog` on the functional emulator,
// routing every data access through a cache hierarchy and every control
// instruction through a branch predictor of the key's geometry (predict at
// fetch, train at commit — the same protocol the timed core follows).
FastForwardResult FastForward(const Program& prog, const CheckpointKey& key);

// Serializes `state` to CheckpointPath(dir, key), creating `dir` if
// needed. Returns false (with a message in *error) on I/O failure.
bool SaveCheckpoint(const std::string& dir, const CheckpointKey& key,
                    const WarmState& state, std::string* error = nullptr);

// Loads the checkpoint for `key` from `dir` into *state. Returns false on
// any mismatch — absent file, bad magic, other format version, different
// key, truncation — all of which the caller treats as a cache miss.
bool LoadCheckpoint(const std::string& dir, const CheckpointKey& key,
                    WarmState* state, std::string* error = nullptr);

}  // namespace spear::runner
