// Manifest execution: turns a parsed Manifest into the schema-versioned
// results document under bench/results/. Two drivers share every
// deterministic code path (job -> row, row ordering, derived metrics):
//
//   RunManifestInProcess — sequential, used by the bench binaries and
//     tests; no fork, but the same checkpoint cache.
//   RunManifestParallel  — the spearrun parent: forks `spearrun --worker`
//     children through the ProcessPool, one per job, and embeds each
//     worker's row verbatim.
//
// Everything nondeterministic (wall times, attempt counts, checkpoint
// hit/miss tallies, worker count) is confined to the document's top-level
// "run" member, so `spearstats --strip=run` of a parallel run and of an
// in-process run of the same manifest are byte-identical.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "runner/manifest.h"
#include "runner/pool.h"
#include "telemetry/registry.h"

namespace spear::runner {

// Worker/tool exit codes. kExitUsage, kExitIncomplete and kExitCosim are
// deterministic — the pool fails fast on them instead of retrying. This
// mirrors the canonical table in tools/tool_flags.h (which src/ cannot
// include); keep the two in sync.
inline constexpr int kExitOk = 0;
inline constexpr int kExitFailure = 1;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitIncomplete = 3;  // max_cycles fired before budget
inline constexpr int kExitCosim = 4;       // lockstep cosim divergence
inline constexpr int kExitFarm = 6;        // farm client/daemon failure

struct RunnerOptions {
  int workers = 1;
  std::string ckpt_dir = "bench/ckpt";
  bool use_ckpt = true;
  bool verbose = false;  // per-job progress lines (spearrun parent)
  // --quick / --sim-instrs override, applied identically by parent and
  // workers so their rows agree.
  std::optional<std::uint64_t> sim_instrs_override;
  // Run every job under the lockstep cosim checker (src/cosim). A
  // divergence fails the job deterministically with kExitCosim.
  bool cosim = false;
};

// Caches PrepareWorkload results within one process; keyed by everything
// compilation depends on, so a manifest that sweeps compiler knobs (e.g.
// dcycle_budget) still compiles each variant exactly once.
class WorkloadCache {
 public:
  const PreparedWorkload& Get(const std::string& name,
                              const EvalOptions& options);

 private:
  std::map<std::string, std::unique_ptr<PreparedWorkload>> cache_;
};

// One executed job. `row` is the deterministic result row; the rest is
// run metadata destined for the "run" member.
struct JobRun {
  telemetry::JsonValue row;
  bool failed = false;
  std::string ckpt = "off";  // "hit" | "miss" | "off"
  std::uint64_t ms = 0;
};

// Executes one job in this process: compile (cached), fast-forward via
// the checkpoint cache when ff_instrs > 0, timed run, row assembly. A
// debug_hang job is not run — it fails deterministically (the hang is a
// worker-process behaviour for exercising pool timeouts).
JobRun ExecuteJob(const Manifest& m, const JobSpec& job, WorkloadCache& cache,
                  const RunnerOptions& opts);

struct ManifestRunResult {
  telemetry::JsonValue document;
  int failed_jobs = 0;
};

// The canonical failure row every driver emits for a job that produced no
// worker row (timeout, crash, lost output). Shared so the fork/exec path,
// the in-process path and the spearfarm daemon stay byte-identical.
telemetry::JsonValue MakeFailureRow(const Manifest& m, const JobSpec& job,
                                    const std::string& error);

// The deterministic document: schema envelope, manifest echo, the final
// jobs array and derived metrics — everything except the "run" member,
// which each driver attaches itself.
telemetry::JsonValue BuildRunnerDocument(const Manifest& m,
                                         telemetry::JsonValue jobs);

// Reconstructs the deterministic row for a finished worker process. When
// the exit status represents a verdict (ok, deterministic incomplete,
// cosim divergence) the row the worker wrote to `job_out_path` is embedded
// verbatim; otherwise the canonical failure row is synthesized ("timeout",
// "crashed (signal N)", "worker exited N"), carrying the worker's
// last-attempt stderr tail when one was captured.
struct WorkerRow {
  telemetry::JsonValue row;
  bool from_worker = false;  // row came from the worker's --job-out file
  std::string ckpt = "off";
};
WorkerRow RecoverWorkerRow(const Manifest& m, const JobSpec& job,
                           const PoolResult& r,
                           const std::string& job_out_path);

ManifestRunResult RunManifestInProcess(const Manifest& m,
                                       const RunnerOptions& opts);

// The spearrun parent. `manifest_path` and `exe_path` are what the worker
// argv needs to re-load the same manifest in the child.
ManifestRunResult RunManifestParallel(const Manifest& m,
                                      const std::string& manifest_path,
                                      const std::string& exe_path,
                                      const RunnerOptions& opts);

// Applies opts.sim_instrs_override to the manifest defaults (parent and
// worker both call this before executing anything).
void ApplyOverrides(Manifest* m, const RunnerOptions& opts);

// Writes `doc` (pretty-printed, trailing newline) to <out_dir>/<name>.json,
// creating the directory. Returns the path.
std::string WriteRunnerDoc(const telemetry::JsonValue& doc,
                           const std::string& out_dir,
                           const std::string& name);

}  // namespace spear::runner
