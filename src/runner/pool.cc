#include "runner/pool.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

namespace spear::runner {
namespace {

std::uint64_t NowMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

pid_t Spawn(const PoolJob& job, const std::string& stderr_path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;  // parent (or fork failure, -1)

  // Child: exec or die. _exit (not exit) so no parent-side state flushes.
  if (job.silence_stdio) {
    const int null_fd = ::open("/dev/null", O_WRONLY);
    if (null_fd >= 0) {
      ::dup2(null_fd, STDOUT_FILENO);
      if (stderr_path.empty()) ::dup2(null_fd, STDERR_FILENO);
      ::close(null_fd);
    }
  }
  if (!stderr_path.empty()) {
    // O_TRUNC: every attempt starts its capture from scratch, so whatever
    // the file holds at reap time is the *last* attempt's stderr.
    const int err_fd =
        ::open(stderr_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0600);
    if (err_fd >= 0) {
      ::dup2(err_fd, STDERR_FILENO);
      ::close(err_fd);
    }
  }
  std::vector<char*> argv;
  argv.reserve(job.argv.size() + 1);
  for (const std::string& a : job.argv) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);
  ::execvp(argv[0], argv.data());
  ::_exit(127);
}

bool FailFast(const PoolJob& job, int exit_code) {
  return std::find(job.fail_fast_exits.begin(), job.fail_fast_exits.end(),
                   exit_code) != job.fail_fast_exits.end();
}

std::string StderrCapturePath(std::uint64_t ticket) {
  return (std::filesystem::temp_directory_path() /
          ("spearpool." + std::to_string(static_cast<long>(::getpid())) + "." +
           std::to_string(ticket) + ".stderr"))
      .string();
}

std::string ReadTail(const std::string& path, std::uint32_t max_bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size <= 0) return "";
  const std::streamoff keep =
      std::min<std::streamoff>(size, static_cast<std::streamoff>(max_bytes));
  in.seekg(size - keep);
  std::string tail(static_cast<std::size_t>(keep), '\0');
  in.read(tail.data(), keep);
  tail.resize(static_cast<std::size_t>(in.gcount()));
  return tail;
}

}  // namespace

ProcessPool::ProcessPool(int workers) : workers_(workers < 1 ? 1 : workers) {}

ProcessPool::~ProcessPool() {
  // Abandon outstanding work: kill and reap our children so nothing leaks
  // past the pool's lifetime, and remove stray capture files.
  for (auto& [pid, run] : running_) {
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!run.stderr_path.empty()) ::unlink(run.stderr_path.c_str());
  }
}

std::uint64_t ProcessPool::Submit(PoolJob job) {
  const std::uint64_t ticket = next_ticket_++;
  jobs_.emplace(ticket, std::move(job));
  queued_.push_back(Queued{ticket, 1, 0, 0});
  return ticket;
}

void ProcessPool::Cancel(std::uint64_t ticket) {
  if (!jobs_.count(ticket)) return;
  const auto it = std::find_if(
      queued_.begin(), queued_.end(),
      [ticket](const Queued& q) { return q.ticket == ticket; });
  if (it != queued_.end()) {
    PoolResult r;
    r.canceled = true;
    r.attempts = it->attempt - 1;
    r.elapsed_ms = it->prior_elapsed_ms;
    queued_.erase(it);
    Finish(ticket, std::move(r), nullptr);
    return;
  }
  for (auto& [pid, run] : running_) {
    if (run.ticket == ticket && !run.killed_for_cancel) {
      run.killed_for_cancel = true;
      ::kill(pid, SIGKILL);  // reaped by the next Pump
    }
  }
}

void ProcessPool::Finish(std::uint64_t ticket, PoolResult r,
                         const Running* run) {
  if (run != nullptr && !run->stderr_path.empty()) {
    const auto jt = jobs_.find(ticket);
    if (jt != jobs_.end() && jt->second.stderr_tail_bytes > 0) {
      r.stderr_tail = ReadTail(run->stderr_path, jt->second.stderr_tail_bytes);
    }
    ::unlink(run->stderr_path.c_str());
  }
  jobs_.erase(ticket);
  completions_.emplace_back(ticket, std::move(r));
}

std::size_t ProcessPool::Pump() {
  const std::uint64_t now = NowMs();

  // Launch while slots are free and someone is past their backoff.
  while (running_.size() < static_cast<std::size_t>(workers_)) {
    auto it = std::find_if(queued_.begin(), queued_.end(), [now](const Queued& q) {
      return q.ready_at_ms <= now;
    });
    if (it == queued_.end()) break;
    const Queued ready = *it;
    queued_.erase(it);
    const PoolJob& job = jobs_.at(ready.ticket);
    const std::string stderr_path =
        job.stderr_tail_bytes > 0 ? StderrCapturePath(ready.ticket) : "";
    const pid_t pid = Spawn(job, stderr_path);
    if (pid < 0) {
      // fork failed (resource exhaustion): report as a non-ok result
      // rather than aborting the whole batch.
      PoolResult r;
      r.attempts = ready.attempt;
      r.elapsed_ms = ready.prior_elapsed_ms;
      Finish(ready.ticket, std::move(r), nullptr);
      continue;
    }
    Running run;
    run.ticket = ready.ticket;
    run.attempt = ready.attempt;
    run.started_ms = now;
    run.deadline_ms = job.timeout_ms == 0 ? 0 : now + job.timeout_ms;
    run.prior_elapsed_ms = ready.prior_elapsed_ms;
    run.stderr_path = stderr_path;
    running_[pid] = run;
  }

  // Enforce deadlines. SIGKILL, then reap through the normal wait path.
  for (auto& [pid, run] : running_) {
    if (run.deadline_ms != 0 && now >= run.deadline_ms &&
        !run.killed_for_timeout && !run.killed_for_cancel) {
      run.killed_for_timeout = true;
      ::kill(pid, SIGKILL);
    }
  }

  // Reap everything that has finished.
  int status = 0;
  pid_t pid;
  while ((pid = ::waitpid(-1, &status, WNOHANG)) > 0) {
    auto it = running_.find(pid);
    if (it == running_.end()) continue;  // not ours (shouldn't happen)
    const Running run = it->second;
    running_.erase(it);
    const PoolJob& job = jobs_.at(run.ticket);
    const std::uint64_t elapsed =
        run.prior_elapsed_ms + (NowMs() - run.started_ms);

    PoolResult r;
    r.attempts = run.attempt;
    r.elapsed_ms = elapsed;
    r.timed_out = run.killed_for_timeout;
    r.canceled = run.killed_for_cancel;
    if (WIFEXITED(status)) {
      r.exit_code = WEXITSTATUS(status);
      r.ok = r.exit_code == 0 && !r.canceled;
    } else if (WIFSIGNALED(status)) {
      r.term_signal = WTERMSIG(status);
    }
    if (r.ok || r.canceled || FailFast(job, r.exit_code) ||
        run.attempt > job.max_retries) {
      Finish(run.ticket, std::move(r), &run);
      continue;
    }
    // Retry with exponential backoff: base << (attempt-1). The capture
    // file is left in place — the next attempt truncates it, keeping the
    // last-attempt-wins stderr contract.
    const std::uint64_t delay =
        job.backoff_ms == 0
            ? 0
            : job.backoff_ms << static_cast<unsigned>(run.attempt - 1);
    queued_.push_back(
        Queued{run.ticket, run.attempt + 1, NowMs() + delay, elapsed});
  }
  return outstanding();
}

std::vector<std::pair<std::uint64_t, PoolResult>>
ProcessPool::TakeCompletions() {
  std::vector<std::pair<std::uint64_t, PoolResult>> out;
  out.swap(completions_);
  return out;
}

std::vector<PoolResult> ProcessPool::Run(
    const std::vector<PoolJob>& jobs,
    const std::function<void(std::size_t, const PoolResult&)>& on_done) {
  std::vector<PoolResult> results(jobs.size());
  if (jobs.empty()) return results;

  std::map<std::uint64_t, std::size_t> index_of;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    index_of[Submit(jobs[i])] = i;
  }

  std::size_t outstanding = jobs.size();
  while (outstanding > 0) {
    Pump();
    const auto done = TakeCompletions();
    for (const auto& [ticket, result] : done) {
      const std::size_t i = index_of.at(ticket);
      results[i] = result;
      --outstanding;
      if (on_done) on_done(i, results[i]);
    }
    if (done.empty() && outstanding > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  return results;
}

}  // namespace spear::runner
