#include "runner/pool.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>

namespace spear::runner {
namespace {

std::uint64_t NowMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

pid_t Spawn(const PoolJob& job) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;  // parent (or fork failure, -1)

  // Child: exec or die. _exit (not exit) so no parent-side state flushes.
  if (job.silence_stdio) {
    const int null_fd = ::open("/dev/null", O_WRONLY);
    if (null_fd >= 0) {
      ::dup2(null_fd, STDOUT_FILENO);
      ::dup2(null_fd, STDERR_FILENO);
      ::close(null_fd);
    }
  }
  std::vector<char*> argv;
  argv.reserve(job.argv.size() + 1);
  for (const std::string& a : job.argv) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);
  ::execvp(argv[0], argv.data());
  ::_exit(127);
}

struct Running {
  std::size_t job = 0;
  int attempt = 1;
  std::uint64_t started_ms = 0;
  std::uint64_t deadline_ms = 0;  // 0 = none
  bool killed_for_timeout = false;
  std::uint64_t prior_elapsed_ms = 0;  // earlier attempts of this job
};

bool FailFast(const PoolJob& job, int exit_code) {
  return std::find(job.fail_fast_exits.begin(), job.fail_fast_exits.end(),
                   exit_code) != job.fail_fast_exits.end();
}

}  // namespace

ProcessPool::ProcessPool(int workers) : workers_(workers < 1 ? 1 : workers) {}

std::vector<PoolResult> ProcessPool::Run(
    const std::vector<PoolJob>& jobs,
    const std::function<void(std::size_t, const PoolResult&)>& on_done) {
  std::vector<PoolResult> results(jobs.size());
  if (jobs.empty()) return results;

  struct Ready {
    std::size_t job;
    int attempt;
    std::uint64_t ready_at_ms;  // backoff gate
    std::uint64_t prior_elapsed_ms;
  };
  // The shared queue: every idle slot pulls the first eligible entry, so
  // a slot that finishes early steals whatever work remains.
  std::vector<Ready> queue;
  queue.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    queue.push_back(Ready{i, 1, 0, 0});
  }
  std::map<pid_t, Running> running;
  std::size_t outstanding = jobs.size();

  auto finish = [&](std::size_t job, PoolResult r) {
    results[job] = r;
    --outstanding;
    if (on_done) on_done(job, results[job]);
  };

  while (outstanding > 0) {
    const std::uint64_t now = NowMs();

    // Launch while slots are free and someone is past their backoff.
    while (running.size() < static_cast<std::size_t>(workers_)) {
      auto it = std::find_if(queue.begin(), queue.end(), [now](const Ready& r) {
        return r.ready_at_ms <= now;
      });
      if (it == queue.end()) break;
      const Ready ready = *it;
      queue.erase(it);
      const PoolJob& job = jobs[ready.job];
      const pid_t pid = Spawn(job);
      if (pid < 0) {
        // fork failed (resource exhaustion): report as a non-ok result
        // rather than aborting the whole batch.
        PoolResult r;
        r.attempts = ready.attempt;
        r.elapsed_ms = ready.prior_elapsed_ms;
        finish(ready.job, r);
        continue;
      }
      Running run;
      run.job = ready.job;
      run.attempt = ready.attempt;
      run.started_ms = now;
      run.deadline_ms = job.timeout_ms == 0 ? 0 : now + job.timeout_ms;
      run.prior_elapsed_ms = ready.prior_elapsed_ms;
      running[pid] = run;
    }

    // Enforce deadlines. SIGKILL, then reap through the normal wait path.
    for (auto& [pid, run] : running) {
      if (run.deadline_ms != 0 && now >= run.deadline_ms &&
          !run.killed_for_timeout) {
        run.killed_for_timeout = true;
        ::kill(pid, SIGKILL);
      }
    }

    // Reap everything that has finished.
    int status = 0;
    pid_t pid;
    bool reaped = false;
    while ((pid = ::waitpid(-1, &status, WNOHANG)) > 0) {
      auto it = running.find(pid);
      if (it == running.end()) continue;  // not ours (shouldn't happen)
      reaped = true;
      const Running run = it->second;
      running.erase(it);
      const PoolJob& job = jobs[run.job];
      const std::uint64_t elapsed =
          run.prior_elapsed_ms + (NowMs() - run.started_ms);

      PoolResult r;
      r.attempts = run.attempt;
      r.elapsed_ms = elapsed;
      r.timed_out = run.killed_for_timeout;
      if (WIFEXITED(status)) {
        r.exit_code = WEXITSTATUS(status);
        r.ok = r.exit_code == 0;
      } else if (WIFSIGNALED(status)) {
        r.term_signal = WTERMSIG(status);
      }
      if (r.ok || FailFast(job, r.exit_code) ||
          run.attempt > job.max_retries) {
        finish(run.job, r);
        continue;
      }
      // Retry with exponential backoff: base << (attempt-1).
      const std::uint64_t delay =
          job.backoff_ms == 0
              ? 0
              : job.backoff_ms << static_cast<unsigned>(run.attempt - 1);
      queue.push_back(Ready{run.job, run.attempt + 1, NowMs() + delay,
                            elapsed});
    }

    if (!reaped && outstanding > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  return results;
}

}  // namespace spear::runner
