#include "runner/runner.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "runner/checkpoint.h"
#include "runner/pool.h"
#include "sampling/sampled_run.h"

namespace spear::runner {
namespace {

using telemetry::JsonValue;

std::uint64_t NowMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Echo of the deterministic run parameters (not the failure policy —
// timeouts and retries shape the run, never the numbers).
JsonValue DefaultsEcho(const ManifestDefaults& d) {
  JsonValue o = JsonValue::Object();
  o.Set("sim_instrs", JsonValue(d.sim_instrs));
  o.Set("max_cycles", JsonValue(d.max_cycles));
  o.Set("ref_seed", JsonValue(d.ref_seed));
  o.Set("profile_seed", JsonValue(d.profile_seed));
  o.Set("ff_instrs", JsonValue(d.ff_instrs));
  // Conditional members keep pre-sampling documents byte-identical.
  if (d.scale != 1) {
    o.Set("scale", JsonValue(static_cast<std::int64_t>(d.scale)));
  }
  if (d.sampling.enabled()) {
    JsonValue s = JsonValue::Object();
    s.Set("period", JsonValue(d.sampling.period));
    s.Set("detail", JsonValue(d.sampling.detail));
    s.Set("warmup", JsonValue(d.sampling.warmup));
    o.Set("sampling", std::move(s));
  }
  return o;
}

const JsonValue* FindRow(const JsonValue& jobs, const std::string& id) {
  for (const JsonValue& row : jobs.items()) {
    const JsonValue* rid = row.Find("id");
    if (rid != nullptr && rid->AsString() == id) return &row;
  }
  return nullptr;
}

// Derived metrics, computed from the final jobs array so the in-process
// and parallel paths cannot diverge. A workload whose numerator or
// denominator row is missing or failed drops out of the mean; if every
// workload drops out the metric is null.
JsonValue ComputeDerived(const Manifest& m, const JsonValue& jobs) {
  JsonValue out = JsonValue::Object();
  for (const DerivedSpec& d : m.derived) {
    double sum = 0.0;
    int n = 0;
    for (const std::string& w : m.workloads) {
      const JsonValue* num = FindRow(jobs, w + "/" + d.num);
      const JsonValue* den = FindRow(jobs, w + "/" + d.den);
      if (num == nullptr || den == nullptr) continue;
      if (num->Find("failed") != nullptr || den->Find("failed") != nullptr) {
        continue;
      }
      const JsonValue* nv = num->FindPath("stats." + d.metric);
      const JsonValue* dv = den->FindPath("stats." + d.metric);
      if (nv == nullptr || dv == nullptr || !nv->is_number() ||
          !dv->is_number()) {
        continue;
      }
      const double denom = dv->AsDouble();
      if (d.op == "mean_reduction") {
        // Convention from the Figure 8 bench: zero base misses = nothing
        // to reduce = 0 reduction, not a dropped sample.
        sum += denom == 0.0 ? 0.0 : 1.0 - nv->AsDouble() / denom;
        ++n;
      } else {  // mean_ratio
        if (denom == 0.0) continue;
        sum += nv->AsDouble() / denom;
        ++n;
      }
    }
    out.Set(d.name,
            n == 0 ? JsonValue() : JsonValue(sum / static_cast<double>(n)));
  }
  return out;
}

struct RunnerStats {
  std::uint64_t jobs_total = 0;
  std::uint64_t jobs_ok = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t retries = 0;
  std::uint64_t ckpt_hits = 0;
  std::uint64_t ckpt_misses = 0;

  void Register(telemetry::StatRegistry& reg) const {
    reg.BindCounter("runner.jobs.total", &jobs_total, "jobs in the manifest");
    reg.BindCounter("runner.jobs.ok", &jobs_ok, "jobs that completed");
    reg.BindCounter("runner.jobs.failed", &jobs_failed,
                    "jobs that failed after retries");
    reg.BindCounter("runner.jobs.retries", &retries,
                    "extra attempts across all jobs");
    reg.BindCounter("runner.ckpt.hits", &ckpt_hits,
                    "fast-forward checkpoints reused");
    reg.BindCounter("runner.ckpt.misses", &ckpt_misses,
                    "fast-forward checkpoints computed");
  }
};

struct JobRunMeta {
  std::string id;
  int attempts = 1;
  std::uint64_t ms = 0;
  std::string ckpt = "off";
};

JsonValue RunMember(int workers, std::uint64_t elapsed_ms,
                    const std::vector<JobRunMeta>& metas,
                    const RunnerStats& stats) {
  JsonValue run = JsonValue::Object();
  run.Set("workers", JsonValue(static_cast<std::int64_t>(workers)));
  run.Set("elapsed_ms", JsonValue(elapsed_ms));
  JsonValue jobs = JsonValue::Array();
  for (const JobRunMeta& meta : metas) {
    JsonValue o = JsonValue::Object();
    o.Set("id", JsonValue(meta.id));
    o.Set("attempts", JsonValue(static_cast<std::int64_t>(meta.attempts)));
    o.Set("ms", JsonValue(meta.ms));
    o.Set("ckpt", JsonValue(meta.ckpt));
    jobs.Append(std::move(o));
  }
  run.Set("jobs", std::move(jobs));
  telemetry::StatRegistry reg;
  stats.Register(reg);
  run.Set("stats", reg.Json());
  return run;
}

}  // namespace

JsonValue MakeFailureRow(const Manifest& m, const JobSpec& job,
                         const std::string& error) {
  JsonValue row = JsonValue::Object();
  row.Set("id", JsonValue(JobId(m, job)));
  if (job.is_mix()) {
    JsonValue ws = JsonValue::Array();
    for (const std::string& w : job.workloads) ws.Append(JsonValue(w));
    row.Set("workloads", std::move(ws));
  } else {
    row.Set("workload", JsonValue(job.workload));
  }
  row.Set("config", JsonValue(m.configs[job.config].label));
  row.Set("failed", JsonValue(true));
  row.Set("error", JsonValue(error));
  return row;
}

namespace {

// Multiprogram mix row (DESIGN.md §17). The commit budget applies per
// context; the weighted-speedup / fairness figures compare against solo
// runs of the same config and budget, computed here with cosim off (the
// single-program matrix already verifies those runs). Mixes run
// full-detail from cold state: sampling and fast-forward checkpoints are
// single-program machinery.
JobRun ExecuteMixJob(const Manifest& m, const JobSpec& job,
                     WorkloadCache& cache, const RunnerOptions& opts) {
  JobRun out;
  const ConfigSpec& spec = m.configs[job.config];
  if (m.defaults.sampling.enabled() || m.defaults.ff_instrs > 0) {
    out.row = MakeFailureRow(
        m, job, "mix jobs run full-detail from cold state (drop sampling "
                "and ff_instrs)");
    out.failed = true;
    return out;
  }
  const EvalOptions options = MakeEvalOptions(m.defaults, spec);
  CoreConfig cfg = MakeCoreConfig(spec);
  if (opts.cosim) cfg.cosim_check = true;

  std::vector<const Program*> progs;
  std::vector<double> solo_ipcs;
  std::int64_t specs = 0;
  std::size_t slice_instrs = 0;
  for (const std::string& w : job.workloads) {
    const PreparedWorkload& pw = cache.Get(w, options);
    const Program& prog =
        ResolveBinary(spec) == "plain" ? pw.plain : pw.annotated;
    progs.push_back(&prog);
    specs += static_cast<std::int64_t>(pw.annotated.pthreads.size());
    for (const PThreadSpec& s : pw.annotated.pthreads) {
      slice_instrs += s.slice_pcs.size();
    }
    CoreConfig solo_cfg = cfg;
    solo_cfg.cosim_check = false;
    solo_ipcs.push_back(RunConfig(prog, solo_cfg, options).ipc);
  }

  const MixRunStats mix =
      RunMix(progs, job.workloads, cfg, options, spec.cores, &solo_ipcs);

  JsonValue row = JsonValue::Object();
  row.Set("id", JsonValue(JobId(m, job)));
  JsonValue ws = JsonValue::Array();
  for (const std::string& w : job.workloads) ws.Append(JsonValue(w));
  row.Set("workloads", std::move(ws));
  row.Set("config", JsonValue(spec.label));
  if (mix.cosim_diverged) {
    row.Set("failed", JsonValue(true));
    row.Set("error", JsonValue(mix.cosim_summary));
    std::fputs(mix.cosim_report.c_str(), stderr);
    out.failed = true;
  } else if (!mix.complete) {
    row.Set("failed", JsonValue(true));
    row.Set("error", JsonValue("incomplete: max_cycles fired before every "
                               "context met its commit budget"));
    out.failed = true;
  }
  row.Set("stats", MixRunStatsToJson(mix));
  JsonValue compile = JsonValue::Object();
  compile.Set("specs", JsonValue(specs));
  compile.Set("slice_instrs",
              JsonValue(static_cast<std::int64_t>(slice_instrs)));
  row.Set("compile", std::move(compile));
  out.row = std::move(row);
  return out;
}

}  // namespace

JsonValue BuildRunnerDocument(const Manifest& m, JsonValue jobs) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema_version", JsonValue(telemetry::kStatsSchemaVersion));
  doc.Set("kind", JsonValue("runner"));
  doc.Set("manifest", JsonValue(m.name));
  doc.Set("defaults", DefaultsEcho(m.defaults));
  const JsonValue derived = ComputeDerived(m, jobs);
  doc.Set("jobs", std::move(jobs));
  if (!m.derived.empty()) doc.Set("derived", derived);
  return doc;
}

WorkerRow RecoverWorkerRow(const Manifest& m, const JobSpec& job,
                           const PoolResult& r,
                           const std::string& job_out_path) {
  WorkerRow out;
  // A worker that ran to a verdict (ok, deterministic incomplete, or
  // cosim divergence) wrote {"job": <row>, "run": {...}}; embed its row
  // verbatim so every driver's document matches the in-process one byte
  // for byte.
  if (r.ok || r.exit_code == kExitIncomplete || r.exit_code == kExitCosim) {
    std::ifstream in(job_out_path, std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      std::string perr;
      JsonValue worker_doc;
      if (telemetry::JsonParse(buf.str(), &worker_doc, &perr)) {
        const JsonValue* row = worker_doc.Find("job");
        if (row != nullptr) {
          out.row = *row;
          out.from_worker = true;
          if (const JsonValue* wr = worker_doc.FindPath("run.ckpt");
              wr != nullptr) {
            out.ckpt = wr->AsString();
          }
          return out;
        }
      }
    }
  }
  const std::string why = r.canceled ? "canceled"
                          : r.timed_out
                              ? "timeout"
                              : r.term_signal != 0
                                    ? "crashed (signal " +
                                          std::to_string(r.term_signal) + ")"
                                    : r.ok ? "worker output lost"
                                           : "worker exited " +
                                                 std::to_string(r.exit_code);
  out.row = MakeFailureRow(m, job, why);
  // Surface the failing attempt's stderr (the pool captures the *last*
  // attempt — the one this exit status belongs to).
  if (!r.stderr_tail.empty()) {
    out.row.Set("stderr", JsonValue(r.stderr_tail));
  }
  return out;
}

const PreparedWorkload& WorkloadCache::Get(const std::string& name,
                                           const EvalOptions& options) {
  std::ostringstream key;
  key << name << "|" << options.ref_seed << "|" << options.profile_seed << "|"
      << options.compiler.slicer.dcycle_budget << "|"
      << options.compiler.profiler.max_instrs << "|scale=" << options.scale;
  auto it = cache_.find(key.str());
  if (it == cache_.end()) {
    it = cache_
             .emplace(key.str(), std::make_unique<PreparedWorkload>(
                                     PrepareWorkload(name, options)))
             .first;
  }
  return *it->second;
}

void ApplyOverrides(Manifest* m, const RunnerOptions& opts) {
  if (opts.sim_instrs_override) {
    m->defaults.sim_instrs = *opts.sim_instrs_override;
  }
}

JobRun ExecuteJob(const Manifest& m, const JobSpec& job, WorkloadCache& cache,
                  const RunnerOptions& opts) {
  JobRun out;
  const std::uint64_t t0 = NowMs();
  if (job.debug_hang) {
    out.row = MakeFailureRow(m, job, "debug_hang");
    out.failed = true;
    return out;
  }
  if (job.is_mix()) {
    out = ExecuteMixJob(m, job, cache, opts);
    out.ms = NowMs() - t0;
    return out;
  }

  const ConfigSpec& spec = m.configs[job.config];
  const EvalOptions options = MakeEvalOptions(m.defaults, spec);
  const PreparedWorkload& pw = cache.Get(job.workload, options);
  CoreConfig cfg = MakeCoreConfig(spec);
  if (opts.cosim) cfg.cosim_check = true;
  const Program& prog =
      ResolveBinary(spec) == "plain" ? pw.plain : pw.annotated;

  RunStats stats;
  JsonValue stats_json;
  if (m.defaults.sampling.enabled()) {
    // Sampled row: the checkpoint unit is the whole interval tree (root
    // warm state + per-interval snapshots), keyed by the flat warmup key
    // plus the region budget and the plan geometry.
    const sampling::SamplingPlan& plan = m.defaults.sampling;
    CheckpointTreeKey tkey;
    tkey.base.workload = job.workload;
    tkey.base.seed = m.defaults.ref_seed;
    tkey.base.ff_instrs = m.defaults.ff_instrs;
    tkey.base.scale = m.defaults.scale;
    tkey.base.l1d = cfg.mem.l1d;
    tkey.base.l2 = cfg.mem.l2;
    tkey.base.bpred = cfg.bpred;
    tkey.sim_instrs = options.sim_instrs;
    tkey.period = plan.period;
    tkey.detail = plan.detail;
    tkey.warmup = plan.warmup;

    CheckpointTree tree;
    sampling::SampledStats ss;
    std::string load_err;
    if (opts.use_ckpt &&
        LoadCheckpointTree(opts.ckpt_dir, tkey, &tree, &load_err)) {
      out.ckpt = "hit";
      ss = sampling::RunSampledFromTree(prog, cfg, options, plan, tree);
    } else {
      // A version-skewed file is a miss for control flow, but never a
      // silent one (unlike an absent or stale-key file).
      if (opts.use_ckpt && IsCheckpointVersionMismatch(load_err)) {
        std::fprintf(stderr, "warning: %s\n", load_err.c_str());
      }
      ss = sampling::RunSampled(pw.plain, prog, cfg, options, plan,
                                m.defaults.ff_instrs,
                                opts.use_ckpt ? &tree : nullptr);
      out.ckpt = opts.use_ckpt ? "miss" : "off";
      // A partial tree (cycle cap or divergence cut the region short)
      // must not poison the cache.
      if (opts.use_ckpt && ss.stats.complete) {
        SaveCheckpointTree(opts.ckpt_dir, tkey, tree);
      }
    }
    if (ss.covered_instrs == 0 && ss.stats.halted) {
      out.row = MakeFailureRow(m, job, "workload halted during fast-forward");
      out.failed = true;
      out.ms = NowMs() - t0;
      return out;
    }
    stats = ss.stats;
    stats_json = sampling::SampledStatsToJson(ss);
  } else {
    WarmState warm;
    const WarmState* warm_ptr = nullptr;
    if (m.defaults.ff_instrs > 0) {
      CheckpointKey key;
      key.workload = job.workload;
      key.seed = m.defaults.ref_seed;
      key.ff_instrs = m.defaults.ff_instrs;
      key.scale = m.defaults.scale;
      key.l1d = cfg.mem.l1d;
      key.l2 = cfg.mem.l2;
      key.bpred = cfg.bpred;
      // Warm on the plain binary: the annotated one shares its text, so the
      // functional path (and therefore the checkpoint) is identical.
      std::string load_err;
      if (opts.use_ckpt && LoadCheckpoint(opts.ckpt_dir, key, &warm,
                                          &load_err)) {
        out.ckpt = "hit";
      } else {
        if (opts.use_ckpt && IsCheckpointVersionMismatch(load_err)) {
          std::fprintf(stderr, "warning: %s\n", load_err.c_str());
        }
        warm = std::move(FastForward(pw.plain, key).state);
        out.ckpt = opts.use_ckpt ? "miss" : "off";
        if (opts.use_ckpt) SaveCheckpoint(opts.ckpt_dir, key, warm);
      }
      if (warm.halted) {
        out.row = MakeFailureRow(m, job, "workload halted during fast-forward");
        out.failed = true;
        out.ms = NowMs() - t0;
        return out;
      }
      warm_ptr = &warm;
    }
    stats = RunConfig(prog, cfg, options, warm_ptr);
    stats_json = RunStatsToJson(stats);
  }

  JsonValue row = JsonValue::Object();
  row.Set("id", JsonValue(JobId(m, job)));
  row.Set("workload", JsonValue(job.workload));
  row.Set("config", JsonValue(spec.label));
  if (stats.cosim_diverged) {
    // Deterministic pipeline-vs-oracle contradiction: the error string
    // starts with "cosim" so the worker maps it to kExitCosim.
    row.Set("failed", JsonValue(true));
    row.Set("error", JsonValue(stats.cosim_summary));
    std::fputs(stats.cosim_report.c_str(), stderr);
    out.failed = true;
  } else if (!stats.complete) {
    row.Set("failed", JsonValue(true));
    row.Set("error", JsonValue("incomplete: max_cycles fired before the "
                               "commit budget"));
    out.failed = true;
  }
  row.Set("stats", std::move(stats_json));
  JsonValue compile = JsonValue::Object();
  compile.Set("specs", JsonValue(static_cast<std::int64_t>(
                           pw.annotated.pthreads.size())));
  std::size_t slice_instrs = 0;
  for (const PThreadSpec& s : pw.annotated.pthreads) {
    slice_instrs += s.slice_pcs.size();
  }
  compile.Set("slice_instrs",
              JsonValue(static_cast<std::int64_t>(slice_instrs)));
  compile.Set("profiled_l1_misses",
              JsonValue(pw.compile_report.profiled_l1_misses));
  row.Set("compile", std::move(compile));
  out.row = std::move(row);
  out.ms = NowMs() - t0;
  return out;
}

ManifestRunResult RunManifestInProcess(const Manifest& m,
                                       const RunnerOptions& opts) {
  const std::uint64_t t0 = NowMs();
  const std::vector<JobSpec> jobs = ExpandJobs(m);
  WorkloadCache cache;
  RunnerStats stats;
  stats.jobs_total = jobs.size();

  JsonValue rows = JsonValue::Array();
  std::vector<JobRunMeta> metas;
  int failed = 0;
  for (const JobSpec& job : jobs) {
    JobRun run = ExecuteJob(m, job, cache, opts);
    if (run.failed) {
      ++failed;
      ++stats.jobs_failed;
    } else {
      ++stats.jobs_ok;
    }
    if (run.ckpt == "hit") ++stats.ckpt_hits;
    if (run.ckpt == "miss") ++stats.ckpt_misses;
    JobRunMeta meta;
    meta.id = JobId(m, job);
    meta.ms = run.ms;
    meta.ckpt = run.ckpt;
    metas.push_back(std::move(meta));
    if (opts.verbose) {
      std::printf("[%zu/%zu] %-28s %s (%llu ms)\n", metas.size(), jobs.size(),
                  JobId(m, job).c_str(), run.failed ? "FAILED" : "ok",
                  static_cast<unsigned long long>(run.ms));
      std::fflush(stdout);
    }
    rows.Append(std::move(run.row));
  }

  ManifestRunResult result;
  result.document = BuildRunnerDocument(m, std::move(rows));
  result.document.Set("run", RunMember(1, NowMs() - t0, metas, stats));
  result.failed_jobs = failed;
  return result;
}

ManifestRunResult RunManifestParallel(const Manifest& m,
                                      const std::string& manifest_path,
                                      const std::string& exe_path,
                                      const RunnerOptions& opts) {
  const std::uint64_t t0 = NowMs();
  const std::vector<JobSpec> jobs = ExpandJobs(m);

  const std::string tmp_dir =
      (std::filesystem::temp_directory_path() /
       ("spearrun." + std::to_string(static_cast<long>(::getpid()))))
          .string();
  std::filesystem::create_directories(tmp_dir);

  std::vector<PoolJob> pool_jobs;
  std::vector<std::string> job_outs;
  pool_jobs.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobSpec& job = jobs[i];
    PoolJob pj;
    pj.argv = {exe_path,
               "--worker",
               "--manifest=" + manifest_path,
               "--job=" + std::to_string(i),
               "--job-out=" + tmp_dir + "/job" + std::to_string(i) + ".json",
               "--ckpt-dir=" + opts.ckpt_dir};
    if (!opts.use_ckpt) pj.argv.push_back("--no-ckpt");
    if (opts.cosim) pj.argv.push_back("--cosim");
    if (opts.sim_instrs_override) {
      pj.argv.push_back("--sim-instrs=" +
                        std::to_string(*opts.sim_instrs_override));
    }
    pj.timeout_ms =
        job.timeout_ms != 0 ? job.timeout_ms : m.defaults.timeout_ms;
    pj.max_retries =
        job.max_retries >= 0 ? job.max_retries : m.defaults.max_retries;
    pj.backoff_ms = m.defaults.backoff_ms;
    pj.fail_fast_exits = {kExitUsage, kExitIncomplete, kExitCosim};
    pj.stderr_tail_bytes = 4096;  // surfaced in the failure row
    job_outs.push_back(pj.argv[4].substr(std::string("--job-out=").size()));
    pool_jobs.push_back(std::move(pj));
  }

  ProcessPool pool(opts.workers);
  std::size_t done = 0;
  const std::vector<PoolResult> results = pool.Run(
      pool_jobs, [&](std::size_t i, const PoolResult& r) {
        ++done;
        if (!opts.verbose) return;
        const char* what = r.ok          ? "ok"
                           : r.timed_out ? "TIMEOUT"
                           : r.term_signal != 0
                               ? "CRASHED"
                               : r.exit_code == kExitIncomplete
                                     ? "INCOMPLETE"
                                     : r.exit_code == kExitCosim
                                           ? "COSIM-DIVERGED"
                                           : "FAILED";
        std::printf("[%zu/%zu] %-28s %s (attempt %d, %llu ms)\n", done,
                    pool_jobs.size(), JobId(m, jobs[i]).c_str(), what,
                    r.attempts, static_cast<unsigned long long>(r.elapsed_ms));
        std::fflush(stdout);
      });

  RunnerStats stats;
  stats.jobs_total = jobs.size();
  JsonValue rows = JsonValue::Array();
  std::vector<JobRunMeta> metas;
  int failed = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const PoolResult& r = results[i];
    stats.retries += static_cast<std::uint64_t>(
        r.attempts > 1 ? r.attempts - 1 : 0);
    JobRunMeta meta;
    meta.id = JobId(m, jobs[i]);
    meta.attempts = r.attempts;
    meta.ms = r.elapsed_ms;

    WorkerRow recovered = RecoverWorkerRow(m, jobs[i], r, job_outs[i]);
    meta.ckpt = recovered.ckpt;
    rows.Append(std::move(recovered.row));
    const bool job_failed = !r.ok;
    if (job_failed) {
      ++failed;
      ++stats.jobs_failed;
    } else {
      ++stats.jobs_ok;
    }
    if (meta.ckpt == "hit") ++stats.ckpt_hits;
    if (meta.ckpt == "miss") ++stats.ckpt_misses;
    metas.push_back(std::move(meta));
  }

  std::error_code ec;
  std::filesystem::remove_all(tmp_dir, ec);

  ManifestRunResult result;
  result.document = BuildRunnerDocument(m, std::move(rows));
  result.document.Set(
      "run", RunMember(pool.workers(), NowMs() - t0, metas, stats));
  result.failed_jobs = failed;
  return result;
}

std::string WriteRunnerDoc(const telemetry::JsonValue& doc,
                           const std::string& out_dir,
                           const std::string& name) {
  std::filesystem::create_directories(out_dir);
  const std::string path = out_dir + "/" + name + ".json";
  std::ofstream out(path, std::ios::binary);
  out << doc.Dump(2) << "\n";
  return path;
}

}  // namespace spear::runner
