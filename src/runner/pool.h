// Multi-process worker pool: fork/exec one child per job, with a shared
// ready queue the parent hands out as slots free up (work stealing between
// worker slots falls out of the single queue), per-job wall-clock
// deadlines enforced by SIGKILL, and bounded retry with exponential
// backoff. A crashed, hung or failing child loses only its own job — the
// pool records the failure and keeps draining the queue. The pool is
// deliberately simulator-agnostic (argv in, exit status out) so the tests
// can drive it with /bin/sh instead of multi-second simulator runs.
//
// Two driving styles share one engine:
//
//   Run()                      — batch: submit a job list, block until every
//                                job reached its final outcome (spearrun's
//                                fork/exec path, tests).
//   Submit()/Pump()/Take...()  — incremental: enqueue jobs at any time,
//                                pump the launch/deadline/reap step from an
//                                event loop, and collect completions as
//                                they land (the spearfarm daemon).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace spear::runner {

struct PoolJob {
  std::vector<std::string> argv;  // argv[0] = executable (PATH-resolved)
  std::uint64_t timeout_ms = 0;   // 0 = no deadline
  int max_retries = 0;            // extra attempts after the first
  std::uint64_t backoff_ms = 0;   // delay before attempt k: backoff << (k-1)
  // Exit codes that mean "deterministic failure, retrying is pointless"
  // (e.g. the worker's usage and incomplete-run codes). Timeouts, signals
  // and other nonzero exits are retried up to max_retries.
  std::vector<int> fail_fast_exits;
  // Child stdout/stderr go to /dev/null by default so parallel workers
  // don't interleave garbage through the parent's output.
  bool silence_stdio = true;
  // > 0: capture up to this many trailing bytes of the child's stderr into
  // PoolResult::stderr_tail. Each attempt gets a fresh capture file, so a
  // retried job reports the stderr of its *last* attempt — the one whose
  // exit status the result describes — not a stale first-attempt message.
  std::uint32_t stderr_tail_bytes = 0;
};

struct PoolResult {
  bool ok = false;
  int exit_code = -1;   // -1 when the child died by signal
  int term_signal = 0;  // 0 when the child exited normally
  bool timed_out = false;  // last attempt hit its deadline
  bool canceled = false;   // Cancel() reached it before a final outcome
  int attempts = 0;
  std::uint64_t elapsed_ms = 0;  // wall time across all attempts
  // Trailing stderr of the final attempt (empty unless the job asked for
  // capture via PoolJob::stderr_tail_bytes).
  std::string stderr_tail;
};

class ProcessPool {
 public:
  // `workers` <= 0 means one.
  explicit ProcessPool(int workers);
  ~ProcessPool();

  ProcessPool(const ProcessPool&) = delete;
  ProcessPool& operator=(const ProcessPool&) = delete;

  // --- incremental interface (event-loop callers) ---

  // Enqueues a job; returns its ticket. The job starts on a later Pump()
  // when a worker slot is free.
  std::uint64_t Submit(PoolJob job);

  // Kills the job if running (SIGKILL) and drops it if queued. Its final
  // PoolResult arrives through TakeCompletions with canceled=true. A
  // ticket already completed (or unknown) is a no-op.
  void Cancel(std::uint64_t ticket);

  // One engine step: launch eligible jobs into free slots, enforce
  // deadlines, reap finished children. Never blocks. Returns the number of
  // jobs still outstanding (queued + running).
  std::size_t Pump();

  // Completions since the last call, in completion order.
  std::vector<std::pair<std::uint64_t, PoolResult>> TakeCompletions();

  std::size_t outstanding() const { return queued_.size() + running_.size(); }
  std::size_t running() const { return running_.size(); }
  int workers() const { return workers_; }

  // --- batch interface ---

  // Runs every job to completion (including retries) and returns results
  // parallel to `jobs`. `on_done` (optional) fires in the parent as each
  // job reaches its final outcome, in completion order.
  std::vector<PoolResult> Run(
      const std::vector<PoolJob>& jobs,
      const std::function<void(std::size_t, const PoolResult&)>& on_done =
          nullptr);

 private:
  struct Queued {
    std::uint64_t ticket = 0;
    int attempt = 1;
    std::uint64_t ready_at_ms = 0;  // backoff gate
    std::uint64_t prior_elapsed_ms = 0;
  };
  struct Running {
    std::uint64_t ticket = 0;
    int attempt = 1;
    std::uint64_t started_ms = 0;
    std::uint64_t deadline_ms = 0;  // 0 = none
    bool killed_for_timeout = false;
    bool killed_for_cancel = false;
    std::uint64_t prior_elapsed_ms = 0;
    std::string stderr_path;  // this attempt's capture file ("" = off)
  };

  void Finish(std::uint64_t ticket, PoolResult r, const Running* run);

  int workers_;
  std::uint64_t next_ticket_ = 1;
  std::map<std::uint64_t, PoolJob> jobs_;  // outstanding tickets only
  std::vector<Queued> queued_;
  std::map<int, Running> running_;  // keyed by pid
  std::vector<std::pair<std::uint64_t, PoolResult>> completions_;
};

}  // namespace spear::runner
