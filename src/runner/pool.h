// Multi-process worker pool: fork/exec one child per job, with a shared
// ready queue the parent hands out as slots free up (work stealing between
// worker slots falls out of the single queue), per-job wall-clock
// deadlines enforced by SIGKILL, and bounded retry with exponential
// backoff. A crashed, hung or failing child loses only its own job — the
// pool records the failure and keeps draining the queue. The pool is
// deliberately simulator-agnostic (argv in, exit status out) so the tests
// can drive it with /bin/sh instead of multi-second simulator runs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace spear::runner {

struct PoolJob {
  std::vector<std::string> argv;  // argv[0] = executable (PATH-resolved)
  std::uint64_t timeout_ms = 0;   // 0 = no deadline
  int max_retries = 0;            // extra attempts after the first
  std::uint64_t backoff_ms = 0;   // delay before attempt k: backoff << (k-1)
  // Exit codes that mean "deterministic failure, retrying is pointless"
  // (e.g. the worker's usage and incomplete-run codes). Timeouts, signals
  // and other nonzero exits are retried up to max_retries.
  std::vector<int> fail_fast_exits;
  // Child stdout/stderr go to /dev/null by default so parallel workers
  // don't interleave garbage through the parent's output.
  bool silence_stdio = true;
};

struct PoolResult {
  bool ok = false;
  int exit_code = -1;   // -1 when the child died by signal
  int term_signal = 0;  // 0 when the child exited normally
  bool timed_out = false;  // last attempt hit its deadline
  int attempts = 0;
  std::uint64_t elapsed_ms = 0;  // wall time across all attempts
};

class ProcessPool {
 public:
  // `workers` <= 0 means one.
  explicit ProcessPool(int workers);

  // Runs every job to completion (including retries) and returns results
  // parallel to `jobs`. `on_done` (optional) fires in the parent as each
  // job reaches its final outcome, in completion order.
  std::vector<PoolResult> Run(
      const std::vector<PoolJob>& jobs,
      const std::function<void(std::size_t, const PoolResult&)>& on_done =
          nullptr);

  int workers() const { return workers_; }

 private:
  int workers_;
};

}  // namespace spear::runner
