#include "cosim/cosim.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "isa/disasm.h"

namespace spear::cosim {
namespace {

std::string Hex32(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

std::string FmtF64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g (bits 0x%016" PRIx64 ")", v, bits);
  return buf;
}

// FP compares are bitwise: the emulator and the dispatch path run the
// identical ExecuteInstruction code, so even NaNs must match exactly.
bool SameBits(double a, double b) {
  std::uint64_t ab, bb;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

std::string FmtOut(const std::optional<std::uint32_t>& v) {
  return v ? Hex32(*v) : std::string("(none)");
}

}  // namespace

CosimChecker::CosimChecker(const Program& prog)
    : CosimChecker(prog, Config{}) {}

CosimChecker::CosimChecker(const Program& prog, Config cfg)
    : CosimChecker(std::vector<const Program*>{&prog}, cfg) {}

CosimChecker::CosimChecker(const std::vector<const Program*>& progs)
    : CosimChecker(progs, Config{}) {}

CosimChecker::CosimChecker(const std::vector<const Program*>& progs,
                           Config cfg)
    : cfg_(cfg), checked_by_tid_(progs.size(), 0) {
  emus_.reserve(progs.size());
  for (const Program* p : progs) emus_.push_back(std::make_unique<Emulator>(*p));
}

void CosimChecker::SyncToWarmState(const WarmState& ws) {
  SPEAR_CHECK(emus_.size() == 1);
  emus_[0]->Restore(ws.iregs, ws.fregs, ws.pc, ws.mem, ws.warmed_instrs);
}

std::string CosimChecker::TidTag(ThreadId tid) const {
  if (tid >= emus_.size()) return "PT";
  if (emus_.size() == 1) return "MT";
  return "T" + std::to_string(static_cast<unsigned>(tid));
}

bool CosimChecker::Fail(const CommitRecord& rec, DivergentField field,
                        std::string oracle, std::string pipeline) {
  ++stats_.divergences;
  Divergence d;
  d.field = field;
  d.oracle = std::move(oracle);
  d.pipeline = std::move(pipeline);
  d.record = rec;
  d.commit_index = stats_.commits_checked + stats_.pthread_commits_checked;
  div_ = std::move(d);
  return false;
}

void CosimChecker::PushWindow(const CommitRecord& rec) {
  window_.push_back(rec);
  if (window_.size() > cfg_.window) window_.pop_front();
}

bool CosimChecker::OnCommit(const CommitRecord& rec) {
  if (div_) return false;  // latched: the first divergence is the verdict

  if (rec.tid >= emus_.size()) {  // the p-thread is always the highest tid
    PushWindow(rec);
    ++stats_.pthread_commits_checked;
    if (rec.pthread_arch_clobber) {
      return Fail(rec, DivergentField::kPThreadArchWrite,
                  "main architectural state unchanged",
                  "p-thread write reached the main register file");
    }
    return true;
  }

  CommitRecord checked = rec;
  ++stats_.commits_checked;
  ++checked_by_tid_[rec.tid];
  const std::uint64_t inject_count =
      cfg_.inject_tid >= 0 ? checked_by_tid_[rec.tid] : stats_.commits_checked;
  const bool inject_match =
      cfg_.inject_tid < 0 ||
      static_cast<std::int32_t>(rec.tid) == cfg_.inject_tid;
  if (cfg_.inject_at != 0 && inject_match &&
      inject_count == cfg_.inject_at) {
    // Self-test: flip the captured destination value (or, for stores, the
    // payload; for pure control flow, the successor) so the comparison
    // below must trip.
    if (DestOf(checked.instr).has_value()) {
      checked.int_dest ^= 0x1;
      std::uint64_t bits;
      std::memcpy(&bits, &checked.fp_dest, sizeof(bits));
      bits ^= 0x1;
      std::memcpy(&checked.fp_dest, &bits, sizeof(bits));
    } else if (checked.exec.is_store) {
      checked.store_u32 ^= 0x1;
      std::uint64_t bits;
      std::memcpy(&bits, &checked.store_f64, sizeof(bits));
      bits ^= 0x1;
      std::memcpy(&checked.store_f64, &bits, sizeof(bits));
    } else {
      checked.exec.next_pc ^= kInstrBytes;
    }
  }
  PushWindow(checked);
  return CheckMain(*emus_[rec.tid], checked);
}

bool CosimChecker::CheckMain(Emulator& emu, const CommitRecord& rec) {
  if (emu.halted()) {
    return Fail(rec, DivergentField::kHaltedPastEnd, "program halted",
                "committed " + Hex32(rec.pc));
  }
  if (emu.faulted()) {
    // The reference emulator's PC left the text section: the core cannot
    // legitimately have committed anything past that point.
    return Fail(rec, DivergentField::kHaltedPastEnd,
                "reference faulted @ " + Hex32(emu.fault_pc()),
                "committed " + Hex32(rec.pc));
  }
  if (emu.pc() != rec.pc) {
    return Fail(rec, DivergentField::kPc, Hex32(emu.pc()), Hex32(rec.pc));
  }

  const StepInfo si = emu.Step();
  if (emu.faulted()) {
    return Fail(rec, DivergentField::kHaltedPastEnd,
                "reference faulted @ " + Hex32(emu.fault_pc()),
                "committed " + Hex32(rec.pc));
  }
  const ExecResult& want = si.result;

  if (want.next_pc != rec.exec.next_pc) {
    return Fail(rec, DivergentField::kNextPc, Hex32(want.next_pc),
                Hex32(rec.exec.next_pc));
  }
  if (want.taken != rec.exec.taken) {
    return Fail(rec, DivergentField::kTaken, want.taken ? "taken" : "not taken",
                rec.exec.taken ? "taken" : "not taken");
  }
  if (want.is_load != rec.exec.is_load || want.is_store != rec.exec.is_store ||
      ((want.is_load || want.is_store) && want.mem_addr != rec.exec.mem_addr)) {
    return Fail(rec, DivergentField::kMemAccess,
                (want.is_load ? "load @ " : want.is_store ? "store @ " : "") +
                    Hex32(want.mem_addr),
                (rec.exec.is_load    ? "load @ "
                 : rec.exec.is_store ? "store @ "
                                     : "") +
                    Hex32(rec.exec.mem_addr));
  }
  if (want.out_value != rec.exec.out_value) {
    return Fail(rec, DivergentField::kOutValue, FmtOut(want.out_value),
                FmtOut(rec.exec.out_value));
  }

  if (const auto rd = DestOf(rec.instr)) {
    if (IsFpReg(*rd)) {
      const double want_v = emu.ReadFpReg(*rd);
      if (!SameBits(want_v, rec.fp_dest)) {
        return Fail(rec, DivergentField::kFpDest, FmtF64(want_v),
                    FmtF64(rec.fp_dest));
      }
    } else {
      const std::uint32_t want_v = emu.ReadIntReg(*rd);
      if (want_v != rec.int_dest) {
        return Fail(rec, DivergentField::kIntDest, Hex32(want_v),
                    Hex32(rec.int_dest));
      }
    }
  }

  if (rec.exec.is_store) {
    // The oracle already performed the store; read its memory back.
    switch (rec.instr.op) {
      case Opcode::kSw: {
        const std::uint32_t want_v = emu.memory().ReadU32(rec.exec.mem_addr);
        if (want_v != rec.store_u32) {
          return Fail(rec, DivergentField::kStoreData, Hex32(want_v),
                      Hex32(rec.store_u32));
        }
        break;
      }
      case Opcode::kSb: {
        const std::uint32_t want_v = emu.memory().ReadU8(rec.exec.mem_addr);
        if (want_v != (rec.store_u32 & 0xffu)) {
          return Fail(rec, DivergentField::kStoreData, Hex32(want_v),
                      Hex32(rec.store_u32 & 0xffu));
        }
        break;
      }
      case Opcode::kStf: {
        const double want_v = emu.memory().ReadF64(rec.exec.mem_addr);
        if (!SameBits(want_v, rec.store_f64)) {
          return Fail(rec, DivergentField::kStoreData, FmtF64(want_v),
                      FmtF64(rec.store_f64));
        }
        break;
      }
      default:
        break;
    }
  }
  return true;
}

std::string CosimChecker::Summary() const {
  if (!div_) return "";
  std::ostringstream os;
  os << "cosim divergence: " << FieldName(div_->field) << " at pc "
     << Hex32(div_->record.pc) << " (commit #" << div_->commit_index << ")";
  if (emus_.size() > 1) {
    os << " [thread " << static_cast<unsigned>(div_->record.tid) << "]";
  }
  return os.str();
}

std::string CosimChecker::Report() const {
  std::ostringstream os;
  if (!div_) {
    os << "cosim: OK — " << stats_.commits_checked << " main + "
       << stats_.pthread_commits_checked << " p-thread commits checked\n";
    return os.str();
  }
  const Divergence& d = *div_;
  os << "=== COSIM DIVERGENCE ===\n";
  os << "field:    " << FieldName(d.field) << "\n";
  os << "at:       pc " << Hex32(d.record.pc) << "  `"
     << Disassemble(d.record.instr) << "`"
     << (d.record.tid >= emus_.size()
             ? "  [p-thread]"
             : emus_.size() > 1
                   ? "  [thread " +
                         std::to_string(static_cast<unsigned>(d.record.tid)) +
                         "]"
                   : "")
     << "\n";
  os << "commit:   #" << d.commit_index << ", cycle " << d.record.cycle
     << "\n";
  os << "oracle:   " << d.oracle << "\n";
  os << "pipeline: " << d.pipeline << "\n";
  os << "occupancy: RUU " << d.record.ruu_occupancy << ", IFQ "
     << d.record.ifq_occupancy << "\n";
  os << "last " << window_.size() << " commits (oldest first):\n";
  for (const CommitRecord& r : window_) {
    os << "  [" << TidTag(r.tid) << "] " << Hex32(r.pc)
       << "  " << Disassemble(r.instr) << "\n";
  }
  os << "telemetry: core.cosim.commits_checked=" << stats_.commits_checked
     << " core.cosim.pthread_commits_checked="
     << stats_.pthread_commits_checked
     << " core.cosim.divergences=" << stats_.divergences << "\n";
  return os.str();
}

void CosimChecker::RegisterStats(telemetry::StatRegistry& reg) const {
  reg.BindCounter("core.cosim.commits_checked", &stats_.commits_checked,
                  "main-thread commits compared against the oracle");
  reg.BindCounter("core.cosim.pthread_commits_checked",
                  &stats_.pthread_commits_checked,
                  "p-thread retires audited for arch-state writes");
  reg.BindCounter("core.cosim.divergences", &stats_.divergences,
                  "lockstep divergences detected (first one stops the run)");
  if (emus_.size() > 1) {
    for (std::size_t t = 0; t < emus_.size(); ++t) {
      reg.BindCounter("core.cosim.thread" + std::to_string(t) + ".checked",
                      &checked_by_tid_[t],
                      "commits compared for this context");
    }
  }
}

}  // namespace spear::cosim
