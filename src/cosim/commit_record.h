// Commit-stream capture types shared between the core and the lockstep
// co-simulation checker (DESIGN.md §11).
//
// The core cannot depend on the checker (spear_cosim links spear_cpu), so
// this header defines only what the capture sites need: the per-commit
// record, the abstract sink the core calls at each commit, and the
// compile-out gate. The concrete CosimChecker lives in cosim/cosim.h.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "isa/instruction.h"
#include "sim/exec.h"

// Build-time gate, mirroring SPEAR_TELEMETRY_TRACE: with
// -DSPEAR_ENABLE_COSIM=0 every capture site folds to a constant-false
// branch and the compiler deletes the whole path. The default leaves the
// hooks in (they cost one null-pointer test per commit when no checker is
// attached).
#ifndef SPEAR_ENABLE_COSIM
#define SPEAR_ENABLE_COSIM 1
#endif

namespace spear::cosim {

inline constexpr bool kCosimCompiled = SPEAR_ENABLE_COSIM != 0;

// Which architectural fact diverged between the pipeline and the oracle.
enum class DivergentField : std::uint8_t {
  kNone,
  kPc,               // committed a different instruction address
  kNextPc,           // control-flow successor (branch/jump target)
  kTaken,            // conditional branch direction
  kMemAccess,        // load/store classification or effective address
  kIntDest,          // integer destination-register writeback value
  kFpDest,           // FP destination-register writeback value
  kStoreData,        // bytes the store wrote to memory
  kOutValue,         // OUT side-channel value
  kHaltedPastEnd,    // core committed beyond the oracle's HALT
  kPThreadArchWrite, // p-thread commit mutated main architectural state
};

inline const char* FieldName(DivergentField f) {
  switch (f) {
    case DivergentField::kNone: return "none";
    case DivergentField::kPc: return "pc";
    case DivergentField::kNextPc: return "next_pc";
    case DivergentField::kTaken: return "taken";
    case DivergentField::kMemAccess: return "mem_access";
    case DivergentField::kIntDest: return "int_dest";
    case DivergentField::kFpDest: return "fp_dest";
    case DivergentField::kStoreData: return "store_data";
    case DivergentField::kOutValue: return "out_value";
    case DivergentField::kHaltedPastEnd: return "halted_past_end";
    case DivergentField::kPThreadArchWrite: return "pthread_arch_write";
  }
  return "?";
}

// Everything the checker compares for one committed instruction. Captured
// at dispatch (where the core executes functionally) and delivered at
// commit, so only correct-path instructions ever reach the sink.
struct CommitRecord {
  Pc pc = 0;
  Instruction instr;
  ThreadId tid = kMainThread;
  ExecResult exec;  // dispatch-time functional result

  // Destination value read back from the dispatch register file right
  // after functional execution (meaningful when DestOf(instr) is set).
  std::uint32_t int_dest = 0;
  double fp_dest = 0.0;

  // Store payload read back from dispatch memory at exec.mem_addr (kSw:
  // word; kSb: byte in the low 8 bits; kStf: the double).
  std::uint32_t store_u32 = 0;
  double store_f64 = 0.0;

  // P-thread invariant probe: true iff executing this p-thread
  // instruction changed its destination register in the *main* register
  // file (must never happen; see DESIGN.md §11).
  bool pthread_arch_clobber = false;

  // Pipeline context for the divergence report.
  Cycle cycle = 0;
  std::uint32_t ruu_occupancy = 0;
  std::uint32_t ifq_occupancy = 0;
};

// The core's side of the contract. OnCommit returns false when the record
// diverges from the oracle; the core then latches cosim_diverged(), stops
// committing and ends the run.
class CommitSink {
 public:
  virtual ~CommitSink() = default;
  virtual bool OnCommit(const CommitRecord& rec) = 0;
};

}  // namespace spear::cosim
