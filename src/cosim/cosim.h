// Lockstep co-simulation checker (DESIGN.md §11): a shadow functional
// emulator stepped once per main-thread commit, comparing the pipeline's
// committed architectural effects field by field — PC, control-flow
// successor and direction, effective address, destination-register
// writeback (int and FP), store payload, OUT values — and asserting the
// paper's p-thread safety invariant (pre-execution never mutates checked
// architectural state).
//
// Multiprogram runs (DESIGN.md §17) keep one shadow emulator per main
// thread, keyed by the CommitRecord's tid; any tid at or past the main
// count is the p-thread and takes the arch-clobber audit path. A detected
// divergence is attributed to the committing thread.
//
// The checker is a CommitSink; attach with Core::set_cosim. On the first
// divergence it latches a structured verdict (field, oracle vs pipeline
// value, the last-N commit window with disassembly) and returns false,
// which stops the core's run. Divergence is deterministic, so tools exit
// with the dedicated cosim code (see tools/tool_flags.h) and runners fail
// fast instead of retrying.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cosim/commit_record.h"
#include "cpu/warm_state.h"
#include "isa/program.h"
#include "sim/emulator.h"
#include "telemetry/registry.h"

namespace spear::cosim {

// core.cosim.* counters; bound into a StatRegistry via RegisterStats.
struct CosimStats {
  std::uint64_t commits_checked = 0;          // main-thread commits compared
  std::uint64_t pthread_commits_checked = 0;  // p-thread retires audited
  std::uint64_t divergences = 0;              // 0 or 1 (first one latches)
};

// The latched verdict for the first diverging commit.
struct Divergence {
  DivergentField field = DivergentField::kNone;
  std::string oracle;    // expected value, formatted
  std::string pipeline;  // observed value, formatted
  CommitRecord record;   // the diverging commit (record.tid = culprit thread)
  std::uint64_t commit_index = 0;  // 1-based, counting checked commits
};

class CosimChecker : public CommitSink {
 public:
  struct Config {
    std::size_t window = 16;  // commits kept for the divergence report
    // Self-test fault injection: corrupt the Nth (1-based) main-thread
    // record before checking, so the full divergence path — report, core
    // stop, exit code — can be exercised without a real pipeline bug.
    std::uint64_t inject_at = 0;
    // When >= 0, inject_at counts only the named thread's commits, so a
    // multiprogram self-test can verify the verdict is attributed to
    // exactly the corrupted thread. -1 counts commits of every thread.
    std::int32_t inject_tid = -1;
  };

  // Two overloads rather than `Config cfg = {}`: GCC rejects a braced
  // default argument of a nested class before the enclosing class is
  // complete.
  explicit CosimChecker(const Program& prog);
  CosimChecker(const Program& prog, Config cfg);

  // Multiprogram: one shadow emulator per main thread, in tid order.
  explicit CosimChecker(const std::vector<const Program*>& progs);
  CosimChecker(const std::vector<const Program*>& progs, Config cfg);

  // Re-seats the shadow emulator at a post-warmup state so checking can
  // follow a fast-forwarded (--ff-instrs / checkpointed) run. Only legal
  // single-program (warm starts are, too).
  void SyncToWarmState(const WarmState& ws);

  // CommitSink. Returns false on (latched) divergence.
  bool OnCommit(const CommitRecord& rec) override;

  bool ok() const { return !div_.has_value(); }
  const std::optional<Divergence>& divergence() const { return div_; }
  const CosimStats& stats() const { return stats_; }
  std::uint64_t commits_checked(ThreadId tid) const {
    return checked_by_tid_[tid];
  }

  // One-line verdict ("cosim divergence: int_dest at pc 0x... ") — used as
  // the runner row error; empty while ok(). Multiprogram verdicts name the
  // diverging thread.
  std::string Summary() const;

  // Full human-readable report: divergent field with oracle/pipeline
  // values, pipeline occupancy, the last-N commits disassembled, and the
  // core.cosim.* counter block.
  std::string Report() const;

  // Binds the core.cosim.* counters.
  void RegisterStats(telemetry::StatRegistry& reg) const;

 private:
  bool Fail(const CommitRecord& rec, DivergentField field,
            std::string oracle, std::string pipeline);
  void PushWindow(const CommitRecord& rec);
  bool CheckMain(Emulator& emu, const CommitRecord& rec);
  std::string TidTag(ThreadId tid) const;  // "MT"/"PT", or "T<k>"/"PT"

  Config cfg_;
  std::vector<std::unique_ptr<Emulator>> emus_;  // one per main thread
  CosimStats stats_;
  std::vector<std::uint64_t> checked_by_tid_;  // per main thread
  std::deque<CommitRecord> window_;
  std::optional<Divergence> div_;
};

}  // namespace spear::cosim
