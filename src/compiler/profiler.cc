#include "compiler/profiler.h"

#include "common/check.h"
#include "sim/emulator.h"

namespace spear {
namespace {

// One dynamic instruction record in the profiling window.
struct Record {
  Pc pc = 0;
  std::int64_t producer[2] = {-1, -1};  // absolute record numbers
  std::int64_t mem_producer = -1;       // last store to the loaded word
  std::uint8_t nproducers = 0;
};

}  // namespace

ProfileResult ProfileProgram(const Program& prog, const Cfg& cfg,
                             const LoopForest& loops,
                             const ProfilerOptions& options) {
  ProfileResult result;
  result.loops.resize(static_cast<std::size_t>(loops.num_loops()));
  for (int i = 0; i < loops.num_loops(); ++i) result.loops[static_cast<std::size_t>(i)].loop_id = i;

  Emulator emu(prog);
  MemoryHierarchy hier(options.mem);

  const std::uint32_t window = options.window;
  std::vector<Record> ring(window);
  std::int64_t record_count = 0;  // absolute id of the next record

  // Last-writer chains: absolute record numbers.
  std::int64_t reg_writer[kNumArchRegs];
  for (auto& w : reg_writer) w = -1;
  std::unordered_map<Addr, std::int64_t> store_writer;  // word addr -> record

  // Scratch for the per-miss backward walk. visited_stamp gives O(1)
  // de-dup per walk (stamped with the walk number).
  std::vector<std::int64_t> work;
  std::vector<std::uint64_t> visited_stamp(window, 0);
  std::uint64_t walk_id = 0;

  while (!emu.halted() && !emu.faulted() &&
         result.instrs < options.max_instrs) {
    const StepInfo step = emu.Step();
    if (emu.faulted()) break;  // wild PC: profile what we saw so far
    ++result.instrs;

    // --- cost model & loop accounting ---
    double cost = 1.0;
    bool l1_miss = false;
    if (step.result.is_load || step.result.is_store) {
      const AccessOutcome out =
          hier.AccessData(step.result.mem_addr, step.result.is_store,
                          kMainThread, /*now=*/result.instrs);
      cost = out.latency;
      l1_miss = out.l1_miss;
    }
    {
      int loop = loops.InnermostAt(cfg.BlockOfPc(step.pc));
      while (loop != -1) {
        result.loops[static_cast<std::size_t>(loop)].total_cost += cost;
        loop = loops.loop(loop).parent;
      }
      const int block = cfg.BlockOfPc(step.pc);
      const int inner = loops.InnermostAt(block);
      if (inner != -1 && loops.loop(inner).header == block &&
          cfg.block(block).first == prog.IndexOf(step.pc)) {
        ++result.loops[static_cast<std::size_t>(inner)].header_visits;
      }
    }

    // --- dependence record ---
    const std::int64_t rec_id = record_count++;
    Record& rec = ring[static_cast<std::size_t>(rec_id % window)];
    rec = Record{};
    rec.pc = step.pc;
    const SrcRegs srcs = SourcesOf(step.instr);
    for (int i = 0; i < srcs.count; ++i) {
      const RegId reg = srcs.reg[i];
      if (reg == kRegZero) continue;
      rec.producer[rec.nproducers++] = reg_writer[reg];
    }
    if (step.result.is_load && options.memory_deps) {
      auto it = store_writer.find(step.result.mem_addr & ~3u);
      if (it != store_writer.end()) rec.mem_producer = it->second;
    }
    if (auto rd = DestOf(step.instr)) reg_writer[*rd] = rec_id;
    if (step.result.is_store) {
      store_writer[step.result.mem_addr & ~3u] = rec_id;
    }

    // --- load stats & miss-conditioned slicing ---
    if (step.result.is_load) {
      LoadProfile& lp = result.loads[step.pc];
      lp.pc = step.pc;
      ++lp.execs;
      if (l1_miss) {
        ++lp.l1_misses;
        ++result.total_l1_misses;

        // Backward walk over the in-window dependence chains; every static
        // PC reached gets a vote for this d-load's slice.
        auto& votes = result.slice_votes[step.pc];
        const std::int64_t oldest = record_count - window;
        ++walk_id;
        work.clear();
        work.push_back(rec_id);
        while (!work.empty()) {
          const std::int64_t id = work.back();
          work.pop_back();
          if (id < 0 || id < oldest) continue;
          const auto slot = static_cast<std::size_t>(id % window);
          if (visited_stamp[slot] == walk_id) continue;
          visited_stamp[slot] = walk_id;
          const Record& r = ring[slot];
          ++votes[r.pc];
          for (int i = 0; i < r.nproducers; ++i) work.push_back(r.producer[i]);
          if (r.mem_producer >= 0) work.push_back(r.mem_producer);
        }
      }
    }
  }
  return result;
}

}  // namespace spear
