#include "compiler/slicer.h"

#include <algorithm>

#include "analysis/verifier.h"
#include "common/check.h"
#include "isa/instruction.h"

namespace spear {
namespace {

// Registers read before defined when executing `slice_pcs` in PC order.
std::vector<RegId> ComputeLiveIns(const Program& prog,
                                  const std::vector<Pc>& slice_pcs) {
  bool defined[kNumArchRegs] = {};
  bool live[kNumArchRegs] = {};
  for (Pc pc : slice_pcs) {
    const Instruction& in = prog.At(pc);
    const SrcRegs srcs = SourcesOf(in);
    for (int i = 0; i < srcs.count; ++i) {
      const RegId reg = srcs.reg[i];
      if (reg != kRegZero && !defined[reg]) live[reg] = true;
    }
    if (auto rd = DestOf(in)) defined[*rd] = true;
  }
  std::vector<RegId> out;
  for (int r = 0; r < kNumArchRegs; ++r) {
    if (live[r]) out.push_back(static_cast<RegId>(r));
  }
  return out;
}

}  // namespace

bool VerifyCandidateSpec(const Program& prog, const PThreadSpec& spec,
                         SliceReport* report) {
  // Lints are advisory; only contract violations block emission.
  const SpecVerifyResult vr =
      VerifySpec(prog, spec, VerifyOptions{.lints = false});
  if (vr.ok()) return true;
  report->rejected = true;
  for (const SpecDiag& d : vr.diags) {
    if (d.severity() != SpecDiagSeverity::kError) continue;
    report->reject_reason = std::string("failed verification: ") + d.message +
                            " [" + SpecDiagCodeName(d.code) + "]";
    break;
  }
  return false;
}

SliceResult BuildSlices(const Program& prog, const Cfg& cfg,
                        const LoopForest& loops, const ProfileResult& profile,
                        const SlicerOptions& options) {
  SliceResult result;

  // --- delinquent-load selection ---
  std::vector<const LoadProfile*> candidates;
  for (const auto& [pc, lp] : profile.loads) {
    if (lp.l1_misses < options.miss_threshold) continue;
    if (profile.total_l1_misses > 0 &&
        static_cast<double>(lp.l1_misses) <
            options.miss_share * static_cast<double>(profile.total_l1_misses)) {
      continue;
    }
    candidates.push_back(&lp);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const LoadProfile* a, const LoadProfile* b) {
              return a->l1_misses > b->l1_misses;
            });
  if (static_cast<int>(candidates.size()) > options.max_dloads) {
    candidates.resize(static_cast<std::size_t>(options.max_dloads));
  }

  for (const LoadProfile* lp : candidates) {
    SliceReport report;
    report.dload_pc = lp->pc;
    report.misses = lp->l1_misses;

    // A load that already belongs to a heavier d-load's slice is being
    // pre-executed as part of that p-thread; a second spec would only
    // duplicate triggers.
    bool covered = false;
    for (const PThreadSpec& accepted : result.specs) {
      if (accepted.InSlice(lp->pc)) {
        covered = true;
        break;
      }
    }
    if (covered) {
      report.rejected = true;
      report.reject_reason = "covered by a heavier d-load's slice";
      result.reports.push_back(report);
      continue;
    }

    // --- region selection: innermost loop, grown while budget allows ---
    const int block = cfg.BlockOfPc(lp->pc);
    int region = loops.InnermostAt(block);
    if (region == -1) {
      report.rejected = true;
      report.reject_reason = "d-load not inside any loop";
      result.reports.push_back(report);
      continue;
    }
    report.region_depth = 1;
    double budget_used =
        profile.loops[static_cast<std::size_t>(region)].DCycle();
    while (true) {
      const int parent = loops.loop(region).parent;
      if (parent == -1) break;
      const Loop& pl = loops.loop(parent);
      if (pl.contains_call) break;  // never grow across function calls
      const double parent_dcycle =
          profile.loops[static_cast<std::size_t>(parent)].DCycle();
      if (budget_used + parent_dcycle > options.dcycle_budget) break;
      budget_used += parent_dcycle;
      region = parent;
      ++report.region_depth;
    }
    report.region_loop = region;

    // --- profile-filtered slice within the region ---
    auto votes_it = profile.slice_votes.find(lp->pc);
    if (votes_it == profile.slice_votes.end()) {
      report.rejected = true;
      report.reject_reason = "no dynamic dependence information";
      result.reports.push_back(report);
      continue;
    }
    const Loop& region_loop = loops.loop(region);
    const auto min_votes = static_cast<std::uint64_t>(
        options.inclusion_share * static_cast<double>(lp->l1_misses));
    std::vector<Pc> slice;
    for (const auto& [member_pc, votes] : votes_it->second) {
      if (votes < min_votes) continue;  // cold path: pruned (Figure 5)
      if (!region_loop.Contains(cfg.BlockOfPc(member_pc))) continue;
      const Instruction& in = prog.At(member_pc);
      if (IsControl(in.op) || IsHalt(in.op)) continue;  // data-flow only
      slice.push_back(member_pc);
    }
    if (!std::binary_search(slice.begin(), slice.end(), lp->pc)) {
      slice.insert(std::lower_bound(slice.begin(), slice.end(), lp->pc),
                   lp->pc);
    }
    // The p-thread must be lighter than the main program; a slice that is
    // nearly the whole region buys nothing (the paper's fft pathology).
    report.slice_size = slice.size();

    PThreadSpec spec;
    spec.dload_pc = lp->pc;
    spec.slice_pcs = std::move(slice);
    spec.live_ins = ComputeLiveIns(prog, spec.slice_pcs);
    report.live_ins = spec.live_ins.size();
    spec.region_start = prog.PcOf(cfg.block(region_loop.blocks.front()).first);
    spec.region_end = prog.PcOf(cfg.block(region_loop.blocks.back()).last);
    spec.profile_misses = lp->l1_misses;
    spec.region_dcycles = budget_used;

    // Final gate: a spec that violates the p-thread contract is dropped
    // here, before it can ever reach a binary or the hardware PT.
    if (!VerifyCandidateSpec(prog, spec, &report)) {
      result.reports.push_back(report);
      continue;
    }

    result.specs.push_back(std::move(spec));
    result.reports.push_back(report);
  }
  return result;
}

}  // namespace spear
