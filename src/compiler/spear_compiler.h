// The SPEAR post-compiler driver (paper Figure 4): binary in, SPEAR binary
// out. Chains the four modules — CFG drawing, profiling, slicing,
// attaching — and supports the paper's methodology of profiling with a
// *different* input than the one simulated (profile on one binary, attach
// the resulting p-thread specs to another with identical text).
#pragma once

#include <string>
#include <vector>

#include "compiler/profiler.h"
#include "compiler/slicer.h"
#include "isa/program.h"

namespace spear {

struct CompilerOptions {
  ProfilerOptions profiler;
  SlicerOptions slicer;
};

struct CompileReport {
  std::uint64_t profiled_instrs = 0;
  std::uint64_t profiled_l1_misses = 0;
  int num_blocks = 0;
  int num_loops = 0;
  std::vector<SliceReport> slices;

  std::string ToString() const;
};

// Profiles `profile_input` (typically the same text as `target` but with a
// different data set), slices, and returns `target` with the p-thread
// section attached. The two programs must share their text section.
Program CompileSpear(const Program& profile_input, const Program& target,
                     const CompilerOptions& options,
                     CompileReport* report = nullptr);

// Single-input convenience (profile and target are the same program).
inline Program CompileSpear(const Program& prog, const CompilerOptions& options,
                            CompileReport* report = nullptr) {
  return CompileSpear(prog, prog, options, report);
}

}  // namespace spear
