// Hybrid program slicing + region-based prefetching range (paper
// Section 4.2, Figure 4 modules 3 and 4).
//
// For every delinquent load (miss count above threshold):
//  * The prefetching region starts at the innermost loop containing the
//    load and grows outward while the accumulated expected per-iteration
//    delay (d-cycle) stays within the budget (the paper uses 120,
//    empirically) and the candidate loop contains no function calls.
//  * The slice contains the static instructions inside the region whose
//    miss-conditioned vote share exceeds the inclusion threshold — i.e.
//    instructions that dynamically fed the miss instances, which is how
//    profile information prunes cold control-flow paths out of the static
//    backward slice (paper Figure 5).
//  * Live-ins are the registers read before being defined when the slice
//    is executed in program order (the IFQ extraction order).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/loops.h"
#include "compiler/profiler.h"
#include "isa/pthread_spec.h"

namespace spear {

struct SlicerOptions {
  // D-load selection: a load qualifies when its L1 miss count is at least
  // `miss_threshold` and at least `miss_share` of all profiled misses.
  std::uint64_t miss_threshold = 500;
  double miss_share = 0.02;
  int max_dloads = 8;  // keep the heaviest offenders

  // Slice membership: votes(member) / misses(d-load) must reach this.
  double inclusion_share = 0.25;

  // Region growth budget in accumulated d-cycles (paper: 120).
  double dcycle_budget = 120.0;
};

struct SliceReport {
  Pc dload_pc = 0;
  std::uint64_t misses = 0;
  int region_loop = -1;   // chosen loop id
  int region_depth = 0;   // how many levels the region grew (1 = innermost)
  std::size_t slice_size = 0;
  std::size_t live_ins = 0;
  bool rejected = false;
  std::string reject_reason;
};

struct SliceResult {
  std::vector<PThreadSpec> specs;
  std::vector<SliceReport> reports;
};

SliceResult BuildSlices(const Program& prog, const Cfg& cfg,
                        const LoopForest& loops, const ProfileResult& profile,
                        const SlicerOptions& options);

// Verification gate applied to every candidate spec before it is emitted
// (analysis/verifier.h): returns false and marks `report` rejected with the
// first error diagnostic when the spec violates the p-thread contract.
// Exposed so tests can drive the rejection path with adversarial specs.
bool VerifyCandidateSpec(const Program& prog, const PThreadSpec& spec,
                         SliceReport* report);

}  // namespace spear
