// SPEAR profiling tool (paper Figure 4, module 2).
//
// Runs the program on the functional emulator against the same cache
// geometry the simulator uses and collects the three kinds of dynamic
// information the slicer needs:
//
//  1. Per-static-load miss counts (delinquent-load identification).
//  2. Miss-conditioned backward dependence sets: at every L1 miss, the
//     dynamic backward slice of that load instance is chased through the
//     last-writer chains (register and, optionally, store->load memory
//     dependencies) over a window of recently executed instructions, and
//     each member's static PC gets a vote. This is the paper's
//     "control-flow detection": only slice paths that actually feed
//     misses accumulate votes (Figure 5).
//  3. Per-loop expected delay (the d-cycle): average sequential cost of
//     one iteration, used by the region-based prefetching-range budget.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/loops.h"
#include "mem/hierarchy.h"

namespace spear {

struct ProfilerOptions {
  std::uint64_t max_instrs = 2'000'000;
  HierarchyConfig mem;           // profile with the simulator's geometry
  std::uint32_t window = 512;    // backward-slice window (dynamic records)
  bool memory_deps = true;       // chase store->load address dependencies
};

struct LoadProfile {
  Pc pc = 0;
  std::uint64_t execs = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;
};

struct LoopProfile {
  int loop_id = -1;
  std::uint64_t header_visits = 0;
  double total_cost = 0.0;  // sequential-cost cycles spent inside the loop

  double DCycle() const {
    return header_visits == 0 ? 0.0 : total_cost / static_cast<double>(header_visits);
  }
};

struct ProfileResult {
  std::uint64_t instrs = 0;
  std::uint64_t total_l1_misses = 0;
  // Keyed by static PC; ordered so reports are deterministic.
  std::map<Pc, LoadProfile> loads;
  // d-load pc -> (slice member pc -> votes). A member's vote count says in
  // how many miss instances it appeared in the dynamic backward slice.
  std::map<Pc, std::map<Pc, std::uint64_t>> slice_votes;
  std::vector<LoopProfile> loops;  // indexed by loop id
};

ProfileResult ProfileProgram(const Program& prog, const Cfg& cfg,
                             const LoopForest& loops,
                             const ProfilerOptions& options);

}  // namespace spear
