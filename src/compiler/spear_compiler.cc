#include "compiler/spear_compiler.h"

#include <cstdio>

#include "common/check.h"
#include "analysis/cfg.h"
#include "analysis/loops.h"

namespace spear {

std::string CompileReport::ToString() const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "profiled %llu instrs, %llu L1 misses, %d blocks, %d loops\n",
                static_cast<unsigned long long>(profiled_instrs),
                static_cast<unsigned long long>(profiled_l1_misses),
                num_blocks, num_loops);
  out += buf;
  for (const SliceReport& s : slices) {
    if (s.rejected) {
      std::snprintf(buf, sizeof(buf), "  dload 0x%x: rejected (%s)\n",
                    s.dload_pc,
                    s.reject_reason.empty() ? "?" : s.reject_reason.c_str());
    } else {
      std::snprintf(buf, sizeof(buf),
                    "  dload 0x%x: %llu misses, region depth %d, slice %zu "
                    "instrs, %zu live-ins\n",
                    s.dload_pc, static_cast<unsigned long long>(s.misses),
                    s.region_depth, s.slice_size, s.live_ins);
    }
    out += buf;
  }
  return out;
}

Program CompileSpear(const Program& profile_input, const Program& target,
                     const CompilerOptions& options, CompileReport* report) {
  // The p-thread annotations are PC-based, so they are only meaningful if
  // the two binaries share their text exactly (same program, different
  // input data).
  SPEAR_CHECK(profile_input.text == target.text);
  SPEAR_CHECK(profile_input.text_base == target.text_base);

  const Cfg cfg = Cfg::Build(profile_input);
  const LoopForest loops = LoopForest::Build(cfg);
  const ProfileResult profile =
      ProfileProgram(profile_input, cfg, loops, options.profiler);
  SliceResult slices =
      BuildSlices(profile_input, cfg, loops, profile, options.slicer);

  if (report != nullptr) {
    report->profiled_instrs = profile.instrs;
    report->profiled_l1_misses = profile.total_l1_misses;
    report->num_blocks = cfg.num_blocks();
    report->num_loops = loops.num_loops();
    report->slices = slices.reports;
  }

  Program out = target;  // the attaching tool rewrites the binary
  out.pthreads = std::move(slices.specs);
  return out;
}

}  // namespace spear
