// Branch prediction substrate.
//
// The paper's configuration is a bimodal predictor with a 2048-entry table
// of 2-bit saturating counters (Table 2). Because our fetch engine reads
// instructions straight out of the loaded program (small-kernel I-side, see
// DESIGN.md), direct branch/jump targets are known at predict time from the
// instruction itself; only the *direction* needs predicting, plus targets
// for indirect jumps (return-address stack for returns, last-target BTB for
// other indirect jumps). gshare and static-BTFN schemes are included for
// the predictor-sensitivity ablation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "isa/instruction.h"
#include "telemetry/registry.h"

namespace spear {

enum class BpredKind : std::uint8_t {
  kBimodal,  // paper configuration
  kGshare,
  kStaticBtfn,  // backward taken, forward not-taken
  kAlwaysTaken,
};

struct BpredConfig {
  BpredKind kind = BpredKind::kBimodal;
  std::uint32_t table_entries = 2048;  // paper: 2048
  std::uint32_t ras_entries = 8;
  std::uint32_t btb_entries = 512;
};

struct BranchPrediction {
  bool taken = false;
  Pc target = 0;  // predicted next PC when taken
};

// Snapshot of the predictor's learned state (direction counters, RAS, BTB,
// global history) for the checkpoint layer. Activity counters are excluded:
// a restored run counts only post-restore predictions.
struct BpredState {
  std::vector<std::uint8_t> counters;
  std::vector<Pc> ras;
  std::uint64_t ras_top = 0;
  std::vector<Pc> btb_pcs;
  std::vector<Pc> btb_targets;
  std::uint32_t history = 0;
};

class BranchPredictor {
 public:
  explicit BranchPredictor(const BpredConfig& config)
      : config_(config),
        counters_(config.table_entries, 2),  // weakly taken
        ras_(config.ras_entries, 0),
        btb_(config.btb_entries, BtbEntry{}) {
    SPEAR_CHECK((config.table_entries & (config.table_entries - 1)) == 0);
    SPEAR_CHECK((config.btb_entries & (config.btb_entries - 1)) == 0);
  }

  // Predicts the outcome of a control instruction at fetch time, updating
  // speculative structures (RAS push/pop). `fallthrough` = pc + 8.
  BranchPrediction Predict(Pc pc, const Instruction& in) {
    const Pc fallthrough = pc + kInstrBytes;
    ++predicts_;
    BranchPrediction p;
    if (IsCondBranch(in.op)) {
      p.taken = PredictDirection(pc, in);
      p.target = p.taken ? StaticTargetOf(in) : fallthrough;
      return p;
    }
    // Unconditional control flow.
    p.taken = true;
    if (!IsIndirectJump(in.op)) {
      p.target = StaticTargetOf(in);
    } else if (in.rs == kRegRa && !IsCall(in.op)) {
      p.target = RasPop();  // return
    } else {
      p.target = BtbLookup(pc);  // other indirect: last-seen target
      if (p.target == 0) p.target = fallthrough;
    }
    if (IsCall(in.op)) RasPush(fallthrough);
    return p;
  }

  // Trains the predictor with the resolved outcome (called at commit).
  void Update(Pc pc, const Instruction& in, bool taken, Pc actual_target) {
    ++updates_;
    if (IsCondBranch(in.op)) {
      std::uint8_t& c = counters_[DirIndex(pc)];
      if (taken) {
        if (c < 3) ++c;
      } else {
        if (c > 0) --c;
      }
      history_ = (history_ << 1) | (taken ? 1u : 0u);
    } else if (IsIndirectJump(in.op)) {
      btb_[BtbIndex(pc)] = BtbEntry{pc, actual_target};
    }
  }

  const BpredConfig& config() const { return config_; }

  BpredState SaveState() const {
    BpredState s;
    s.counters = counters_;
    s.ras = ras_;
    s.ras_top = ras_top_;
    s.btb_pcs.reserve(btb_.size());
    s.btb_targets.reserve(btb_.size());
    for (const BtbEntry& e : btb_) {
      s.btb_pcs.push_back(e.pc);
      s.btb_targets.push_back(e.target);
    }
    s.history = history_;
    return s;
  }

  // Installs a snapshot from a predictor of identical geometry. Returns
  // false (leaving this predictor untouched) on a table-size mismatch.
  bool RestoreState(const BpredState& s) {
    if (s.counters.size() != counters_.size() || s.ras.size() != ras_.size() ||
        s.btb_pcs.size() != btb_.size() ||
        s.btb_targets.size() != btb_.size() || s.ras_top >= ras_.size()) {
      return false;
    }
    counters_ = s.counters;
    ras_ = s.ras;
    ras_top_ = static_cast<std::size_t>(s.ras_top);
    for (std::size_t i = 0; i < btb_.size(); ++i) {
      btb_[i] = BtbEntry{s.btb_pcs[i], s.btb_targets[i]};
    }
    history_ = s.history;
    return true;
  }

  // Binds predictor activity under "bpred.*" (direction accuracy lives
  // with the core, which owns commit-time resolution).
  void RegisterStats(telemetry::StatRegistry& reg) const {
    reg.BindCounter("bpred.predicts", &predicts_,
                    "fetch-time control-flow predictions");
    reg.BindCounter("bpred.updates", &updates_,
                    "commit-time predictor trainings");
  }

 private:
  struct BtbEntry {
    Pc pc = 0;
    Pc target = 0;
  };

  bool PredictDirection(Pc pc, const Instruction& in) const {
    switch (config_.kind) {
      case BpredKind::kBimodal:
      case BpredKind::kGshare:
        return counters_[DirIndex(pc)] >= 2;
      case BpredKind::kStaticBtfn:
        return StaticTargetOf(in) <= pc;  // backward taken, forward not
      case BpredKind::kAlwaysTaken:
        return true;
    }
    return false;
  }

  std::uint32_t DirIndex(Pc pc) const {
    std::uint32_t idx = (pc >> 3);  // instructions are 8-byte aligned
    if (config_.kind == BpredKind::kGshare) idx ^= history_;
    return idx & (config_.table_entries - 1);
  }

  std::uint32_t BtbIndex(Pc pc) const {
    return (pc >> 3) & (config_.btb_entries - 1);
  }

  Pc BtbLookup(Pc pc) const {
    const BtbEntry& e = btb_[BtbIndex(pc)];
    return e.pc == pc ? e.target : 0;
  }

  void RasPush(Pc return_pc) {
    ras_top_ = (ras_top_ + 1) % ras_.size();
    ras_[ras_top_] = return_pc;
  }

  Pc RasPop() {
    const Pc top = ras_[ras_top_];
    ras_top_ = (ras_top_ + ras_.size() - 1) % ras_.size();
    return top;
  }

  BpredConfig config_;
  std::vector<std::uint8_t> counters_;
  std::vector<Pc> ras_;
  std::size_t ras_top_ = 0;
  std::vector<BtbEntry> btb_;
  std::uint32_t history_ = 0;
  std::uint64_t predicts_ = 0;
  std::uint64_t updates_ = 0;
};

}  // namespace spear
