// FNV-1a 64-bit hashing, shared by every fingerprint/key consumer (farm
// result cache, SPCK checkpoint filenames, decoded-block cache). One
// definition so two subsystems can never disagree about what a "program
// fingerprint" is.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>

namespace spear {

inline constexpr std::uint64_t kFnv1a64Seed = 14695981039346656037ull;
inline constexpr std::uint64_t kFnv1a64Prime = 1099511628211ull;

inline std::uint64_t Fnv1a64(const void* data, std::size_t n,
                             std::uint64_t h = kFnv1a64Seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnv1a64Prime;
  }
  return h;
}

inline std::uint64_t Fnv1a64(const std::string& s,
                             std::uint64_t h = kFnv1a64Seed) {
  return Fnv1a64(s.data(), s.size(), h);
}

// Hashes a trivially-copyable value by its object representation.
template <typename T>
std::uint64_t Fnv1a64Value(const T& v, std::uint64_t h = kFnv1a64Seed) {
  static_assert(std::is_trivially_copyable_v<T>);
  return Fnv1a64(&v, sizeof(v), h);
}

}  // namespace spear
