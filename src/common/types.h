// Fundamental scalar types and small strong typedefs shared by every
// SPEAR module. Kept deliberately tiny: anything with behaviour lives in
// its own header.
#pragma once

#include <cstdint>

namespace spear {

// 32-bit byte address space, as in SimpleScalar PISA.
using Addr = std::uint32_t;

// Program counters are instruction addresses; instructions are 8 bytes in
// the SPEARBIN encoding, so valid PCs are always 8-byte aligned.
using Pc = std::uint32_t;
inline constexpr Addr kInstrBytes = 8;

// Simulated time in CPU clock cycles.
using Cycle = std::uint64_t;

// Architectural register index. Integer regs are [0, 32), FP regs are
// [32, 64); see isa/regs.h for the split helpers.
using RegId = std::uint8_t;
inline constexpr int kNumIntRegs = 32;
inline constexpr int kNumFpRegs = 32;
inline constexpr int kNumArchRegs = kNumIntRegs + kNumFpRegs;
inline constexpr RegId kRegZero = 0;  // r0 is hardwired to zero.

// Hardware thread (context) id: 0 = main program thread, 1 = p-thread.
using ThreadId = std::uint8_t;
inline constexpr ThreadId kMainThread = 0;
inline constexpr ThreadId kPThread = 1;

// Identifier of a static instruction inside a loaded program: its index in
// the text section (pc = text_base + index * kInstrBytes).
using InstrIndex = std::uint32_t;

}  // namespace spear
