// Named-counter statistics registry. Every simulator component owns plain
// uint64 counters for speed and registers them here by name so tests,
// benches and the EXPERIMENTS harness can read them uniformly.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/check.h"

namespace spear {

class StatsRegistry {
 public:
  // Registers (or re-binds) a counter under `name`. The pointee must
  // outlive the registry user.
  void Register(const std::string& name, const std::uint64_t* counter) {
    SPEAR_CHECK(counter != nullptr);
    counters_[name] = counter;
  }

  bool Has(const std::string& name) const { return counters_.count(name) > 0; }

  std::uint64_t Get(const std::string& name) const {
    auto it = counters_.find(name);
    SPEAR_CHECK(it != counters_.end());
    return *it->second;
  }

  // Ratio helper returning 0 when the denominator is zero.
  double Ratio(const std::string& num, const std::string& den) const {
    const std::uint64_t d = Get(den);
    return d == 0 ? 0.0 : static_cast<double>(Get(num)) / static_cast<double>(d);
  }

  const std::map<std::string, const std::uint64_t*>& counters() const {
    return counters_;
  }

 private:
  std::map<std::string, const std::uint64_t*> counters_;
};

}  // namespace spear
