// Deterministic xorshift128+ generator. All workload generators and
// randomized tests draw from this so every simulation run is reproducible
// from a single seed (a requirement for the profile-then-simulate SPEAR
// compiler flow: the paper intentionally profiles with a *different* input
// set, which we reproduce by deriving a distinct child seed).
#pragma once

#include <cstdint>

namespace spear {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 to spread a possibly small seed over both words.
    s_[0] = SplitMix(seed);
    s_[1] = SplitMix(seed ^ 0xbf58476d1ce4e5b9ull);
    if (s_[0] == 0 && s_[1] == 0) s_[0] = 1;
  }

  std::uint64_t Next() {
    std::uint64_t x = s_[0];
    const std::uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi].
  std::int64_t Range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    Below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  double NextDouble() {  // [0, 1)
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool Chance(double p) { return NextDouble() < p; }

  // Derives an independent stream (e.g. profiling vs. reference inputs).
  Rng Fork(std::uint64_t salt) const {
    return Rng(s_[0] ^ (salt * 0xd6e8feb86659fd93ull) ^ s_[1]);
  }

 private:
  static std::uint64_t SplitMix(std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  std::uint64_t s_[2];
};

}  // namespace spear
