// Deterministic xorshift128+ generator. All workload generators and
// randomized tests draw from this so every simulation run is reproducible
// from a single seed (a requirement for the profile-then-simulate SPEAR
// compiler flow: the paper intentionally profiles with a *different* input
// set, which we reproduce by deriving a distinct child seed).
#pragma once

#include <cstdint>

#include "common/check.h"

namespace spear {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 to spread a possibly small seed over both words.
    s_[0] = SplitMix(seed);
    s_[1] = SplitMix(seed ^ 0xbf58476d1ce4e5b9ull);
    if (s_[0] == 0 && s_[1] == 0) s_[0] = 1;
  }

  std::uint64_t Next() {
    std::uint64_t x = s_[0];
    const std::uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t Below(std::uint64_t bound) {
    SPEAR_DCHECK(bound > 0);
    return Next() % bound;
  }

  // Uniform in [lo, hi]. The span is computed in unsigned arithmetic:
  // `hi - lo + 1` as int64 is UB for the full span (INT64_MIN..INT64_MAX)
  // and a wrapped span used to reach Below(0), a modulo-by-zero. A span of
  // 0 here means the request covers all 2^64 residues, so the raw draw is
  // already uniform.
  std::int64_t Range(std::int64_t lo, std::int64_t hi) {
    SPEAR_DCHECK(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi) -
                               static_cast<std::uint64_t>(lo) + 1;
    const std::uint64_t draw = span == 0 ? Next() : Below(span);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
  }

  double NextDouble() {  // [0, 1)
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool Chance(double p) { return NextDouble() < p; }

  // Derives an independent stream (e.g. profiling vs. reference inputs).
  Rng Fork(std::uint64_t salt) const {
    return Rng(s_[0] ^ (salt * 0xd6e8feb86659fd93ull) ^ s_[1]);
  }

 private:
  static std::uint64_t SplitMix(std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  std::uint64_t s_[2];
};

}  // namespace spear
