// Bump-pointer arena for trivially-destructible records that live and die
// together. The decoded-block cache allocates one record run per built
// block and frees them all at once on a fingerprint flush; individual
// frees never happen, so allocation is a pointer add and deallocation is
// O(chunks). Not thread-safe (neither are its owners).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/check.h"

namespace spear {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {}

  // Uninitialized storage for `count` objects of T, aligned for T.
  // Oversized requests get a dedicated chunk, so there is no per-request
  // size ceiling beyond available memory.
  template <typename T>
  T* AllocArray(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    if (count == 0) return nullptr;
    const std::size_t bytes = count * sizeof(T);
    void* p = AllocBytes(bytes, alignof(T));
    return static_cast<T*>(p);
  }

  // Releases every allocation but keeps the first chunk for reuse, so a
  // flush-then-rebuild cycle (cache invalidation) does not churn malloc.
  void Reset() {
    if (chunks_.size() > 1) chunks_.resize(1);
    used_ = 0;
    total_allocated_ = 0;
  }

  std::size_t total_allocated() const { return total_allocated_; }

 private:
  void* AllocBytes(std::size_t bytes, std::size_t align) {
    SPEAR_DCHECK((align & (align - 1)) == 0);
    if (chunks_.empty()) {
      chunks_.push_back(NewChunk(std::max(bytes, chunk_bytes_)));
      used_ = 0;
    }
    Chunk& back = chunks_.back();
    std::size_t off = (used_ + align - 1) & ~(align - 1);
    if (off + bytes > back.size) {
      chunks_.push_back(NewChunk(std::max(bytes, chunk_bytes_)));
      used_ = 0;
      off = 0;
    }
    Chunk& c = chunks_.back();
    used_ = off + bytes;
    total_allocated_ += bytes;
    return c.data.get() + off;
  }

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  static Chunk NewChunk(std::size_t size) {
    // max_align_t alignment from new[] covers every record type we store.
    return Chunk{std::make_unique<std::byte[]>(size), size};
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t used_ = 0;  // bytes consumed in chunks_.back()
  std::size_t total_allocated_ = 0;
};

}  // namespace spear
