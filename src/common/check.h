// Lightweight precondition / invariant checking.
//
// SPEAR_CHECK is always on (simulator correctness over raw speed: a silent
// corruption of microarchitectural state costs far more debugging time than
// a branch per check). SPEAR_DCHECK compiles out in NDEBUG builds and is
// used on hot inner-loop paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace spear::detail {

[[noreturn]] inline void CheckFailed(const char* cond, const char* file,
                                     int line) {
  std::fprintf(stderr, "SPEAR_CHECK failed: %s at %s:%d\n", cond, file, line);
  std::abort();
}

}  // namespace spear::detail

#define SPEAR_CHECK(cond)                                       \
  do {                                                          \
    if (!(cond)) {                                              \
      ::spear::detail::CheckFailed(#cond, __FILE__, __LINE__);  \
    }                                                           \
  } while (false)

#ifdef NDEBUG
#define SPEAR_DCHECK(cond) \
  do {                     \
  } while (false)
#else
#define SPEAR_DCHECK(cond) SPEAR_CHECK(cond)
#endif

// Inline the annotated function's entire call tree where the compiler can.
// Reserved for the few per-retired-instruction dispatch loops where an
// out-of-line ExecuteInstruction call (and the by-value ExecResult it
// returns) is measurable; everything else keeps default inlining.
#if defined(__GNUC__) || defined(__clang__)
#define SPEAR_FLATTEN __attribute__((flatten))
#else
#define SPEAR_FLATTEN
#endif
