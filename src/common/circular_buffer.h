// Fixed-capacity circular FIFO used for the IFQ, the RUU and the profiler's
// retired-instruction window. Indices returned by PushBack are stable
// "slots" (physical positions in the ring) so hardware structures can hold
// references to entries while they sit in the queue — exactly what the
// SPEAR P-thread Extractor needs ("the PE remembers the IFQ entry of the
// d-load which initiated the pre-execution mode").
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace spear {

template <typename T>
class CircularBuffer {
 public:
  explicit CircularBuffer(std::size_t capacity)
      : slots_(capacity), head_(0), size_(0) {
    SPEAR_CHECK(capacity > 0);
  }

  std::size_t capacity() const { return slots_.size(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == slots_.size(); }

  // Appends a value; returns the physical slot index it occupies.
  std::size_t PushBack(T value) {
    SPEAR_CHECK(!full());
    const std::size_t slot = PhysicalIndex(size_);
    slots_[slot] = std::move(value);
    ++size_;
    return slot;
  }

  // Removes and returns the oldest element.
  T PopFront() {
    SPEAR_CHECK(!empty());
    T value = std::move(slots_[head_]);
    head_ = Next(head_);
    --size_;
    return value;
  }

  // Logical access: At(0) is the oldest element.
  T& At(std::size_t logical) {
    SPEAR_DCHECK(logical < size_);
    return slots_[PhysicalIndex(logical)];
  }
  const T& At(std::size_t logical) const {
    SPEAR_DCHECK(logical < size_);
    return slots_[PhysicalIndex(logical)];
  }

  T& Front() { return At(0); }
  const T& Front() const { return At(0); }
  T& Back() { return At(size_ - 1); }
  const T& Back() const { return At(size_ - 1); }

  // Physical-slot access for structures that captured a slot index.
  T& Slot(std::size_t slot) {
    SPEAR_DCHECK(slot < slots_.size());
    return slots_[slot];
  }
  const T& Slot(std::size_t slot) const {
    SPEAR_DCHECK(slot < slots_.size());
    return slots_[slot];
  }

  // Maps a logical position to its physical slot.
  std::size_t PhysicalIndex(std::size_t logical) const {
    SPEAR_DCHECK(logical <= size_);  // one-past-end allowed for PushBack
    std::size_t p = head_ + logical;
    if (p >= slots_.size()) p -= slots_.size();
    return p;
  }

  // Maps a physical slot back to its logical position (0 = oldest).
  // Slot must currently hold a live element.
  std::size_t LogicalIndex(std::size_t slot) const {
    SPEAR_DCHECK(slot < slots_.size());
    const std::size_t logical =
        slot >= head_ ? slot - head_ : slot + slots_.size() - head_;
    SPEAR_DCHECK(logical < size_);
    return logical;
  }

  // True when the physical slot currently holds a live element.
  bool SlotLive(std::size_t slot) const {
    if (slot >= slots_.size() || size_ == 0) return false;
    const std::size_t logical =
        slot >= head_ ? slot - head_ : slot + slots_.size() - head_;
    return logical < size_;
  }

  // Removes the newest `n` elements (branch-misprediction squash).
  void PopBack(std::size_t n) {
    SPEAR_CHECK(n <= size_);
    size_ -= n;
  }

  void Clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::size_t Next(std::size_t p) const {
    ++p;
    return p == slots_.size() ? 0 : p;
  }

  std::vector<T> slots_;
  std::size_t head_;
  std::size_t size_;
};

}  // namespace spear
