#include "sampling/sampled_run.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "bpred/bpred.h"
#include "common/check.h"
#include "cosim/cosim.h"
#include "mem/hierarchy.h"
#include "sim/emulator.h"

namespace spear::sampling {
namespace {

// Functional substrate: the plain binary on the Emulator plus a private
// cache hierarchy and branch predictor of the target geometry, warmed
// with the exact protocol the flat fast-forward uses (checkpoint.cc).
class Substrate {
 public:
  Substrate(const Program& prog, const CoreConfig& config)
      : hier_(config.mem), bpred_(config.bpred), emu_(prog) {}

  // Executes up to `n` instructions, warming caches and predictor.
  // Returns the number actually executed (< n iff the program halted or
  // faulted).
  std::uint64_t Advance(std::uint64_t n) {
    std::uint64_t done = 0;
    while (!emu_.halted() && !emu_.faulted() && done < n) {
      const StepInfo info = emu_.Step();
      ++done;
      if (info.result.is_load || info.result.is_store) {
        hier_.WarmData(info.result.mem_addr, info.result.is_store,
                       kMainThread);
      }
      if (info.result.is_control) {
        bpred_.Predict(info.pc, info.instr);
        bpred_.Update(info.pc, info.instr, info.result.taken,
                      info.result.next_pc);
      }
    }
    return done;
  }

  bool halted() const { return emu_.halted(); }
  bool faulted() const { return emu_.faulted(); }

  WarmState Snapshot() const {
    WarmState ws;
    for (int i = 0; i < kNumIntRegs; ++i) {
      ws.iregs[i] = emu_.ReadIntReg(IntReg(i));
    }
    for (int i = 0; i < kNumFpRegs; ++i) {
      ws.fregs[i] = emu_.ReadFpReg(FpReg(i));
    }
    ws.pc = emu_.pc();
    ws.warmed_instrs = emu_.icount();
    ws.halted = emu_.halted();
    ws.mem.CopyFrom(emu_.memory());
    ws.l1d = hier_.l1d().SaveState();
    ws.l2 = hier_.l2().SaveState();
    ws.bpred = bpred_.SaveState();
    return ws;
  }

 private:
  MemoryHierarchy hier_;
  BranchPredictor bpred_;
  Emulator emu_;
};

// Counter snapshot diffed across the measured window.
struct Counters {
  std::uint64_t cycles = 0;
  std::uint64_t committed = 0;
  std::uint64_t l1d_misses_main = 0;
  std::uint64_t l1d_misses_pthread = 0;
  std::uint64_t l2_misses_main = 0;
  std::uint64_t l2_misses_pthread = 0;
  std::uint64_t committed_branches = 0;
  std::uint64_t committed_cond_branches = 0;
  std::uint64_t bpred_dir_correct = 0;
  std::uint64_t triggers = 0;
  std::uint64_t sessions = 0;
  std::uint64_t extracted = 0;
  std::uint64_t dispatched_wrongpath = 0;
  std::uint64_t squashed_wrongpath = 0;
  std::uint64_t ifq_flushed = 0;
  std::uint64_t chained_triggers = 0;
};

Counters Grab(const Core& core) {
  Counters c;
  c.cycles = core.stats().cycles;
  c.committed = core.stats().committed;
  c.l1d_misses_main = core.hierarchy().l1d().misses(kMainThread);
  c.l1d_misses_pthread = core.hierarchy().l1d().misses(kPThread);
  c.l2_misses_main = core.hierarchy().l2().misses(kMainThread);
  c.l2_misses_pthread = core.hierarchy().l2().misses(kPThread);
  c.committed_branches = core.stats().committed_branches;
  c.committed_cond_branches = core.stats().committed_cond_branches;
  c.bpred_dir_correct = core.stats().bpred_dir_correct;
  c.triggers = core.stats().triggers_fired;
  c.sessions = core.stats().preexec_sessions_completed;
  c.extracted = core.stats().pthread_extracted;
  c.dispatched_wrongpath = core.stats().dispatched_wrongpath;
  c.squashed_wrongpath = core.stats().squashed_wrongpath;
  c.ifq_flushed = core.stats().ifq_flushed;
  c.chained_triggers = core.stats().chained_triggers;
  return c;
}

IntervalSample Diff(const Counters& a, const Counters& b) {
  IntervalSample s;
  s.instrs = b.committed - a.committed;
  s.cycles = b.cycles - a.cycles;
  s.l1d_misses_main = b.l1d_misses_main - a.l1d_misses_main;
  s.l1d_misses_pthread = b.l1d_misses_pthread - a.l1d_misses_pthread;
  s.l2_misses_main = b.l2_misses_main - a.l2_misses_main;
  s.l2_misses_pthread = b.l2_misses_pthread - a.l2_misses_pthread;
  s.committed_branches = b.committed_branches - a.committed_branches;
  s.committed_cond_branches =
      b.committed_cond_branches - a.committed_cond_branches;
  s.bpred_dir_correct = b.bpred_dir_correct - a.bpred_dir_correct;
  s.triggers = b.triggers - a.triggers;
  s.sessions = b.sessions - a.sessions;
  s.extracted = b.extracted - a.extracted;
  s.dispatched_wrongpath = b.dispatched_wrongpath - a.dispatched_wrongpath;
  s.squashed_wrongpath = b.squashed_wrongpath - a.squashed_wrongpath;
  s.ifq_flushed = b.ifq_flushed - a.ifq_flushed;
  s.chained_triggers = b.chained_triggers - a.chained_triggers;
  return s;
}

struct IntervalOutcome {
  IntervalSample sample;  // measured-window deltas (sample.instrs may be 0)
  bool halted = false;    // the program halted inside the interval
  bool hit_cycle_cap = false;  // max_cycles fired mid-interval
  bool diverged = false;       // cosim divergence (latched in the checker)
};

// One detailed interval on a fresh timed core, warm-started from `ws`:
// `warmup` detailed-unmeasured instructions, then `detail` measured ones.
IntervalOutcome RunDetailedInterval(const Program& timed,
                                    const CoreConfig& config,
                                    const SamplingPlan& plan,
                                    std::uint64_t max_cycles,
                                    const WarmState& ws,
                                    cosim::CosimChecker* checker,
                                    telemetry::Distribution* ifq,
                                    bool* ifq_init, BlockCache* bcache) {
  IntervalOutcome out;
  // Per-interval cores share the orchestrator's decoded-block cache: the
  // program and PT never change across intervals, so every core after the
  // first warm-attaches and fetches from already-built blocks.
  Core core(timed, config, bcache);
  core.InstallWarmState(ws);
  if (checker != nullptr) {
    checker->SyncToWarmState(ws);
    core.set_cosim(checker);
  }
  core.Run(plan.warmup, max_cycles);
  const Counters before = Grab(core);
  core.Run(plan.warmup + plan.detail, max_cycles);
  out.sample = Diff(before, Grab(core));
  out.halted = core.halted();
  out.diverged = core.cosim_diverged();
  out.hit_cycle_cap = !out.halted && !out.diverged &&
                      core.stats().committed < plan.warmup + plan.detail;
  // Occupancy telemetry merges over the whole interval (warmup included —
  // it is a pipeline-health distribution, not a measured estimate).
  if (*ifq_init) {
    ifq->Merge(core.core_telemetry().ifq_occupancy);
  } else {
    *ifq = core.core_telemetry().ifq_occupancy;
    *ifq_init = true;
  }
  return out;
}

// Shared epilogue: estimator pass plus the cosim/incomplete overrides.
SampledStats Finish(const SamplingPlan& plan,
                    const std::vector<IntervalSample>& samples,
                    std::uint64_t covered, bool halted, bool incomplete,
                    const telemetry::Distribution* ifq, bool ifq_init,
                    cosim::CosimChecker* checker) {
  SampledStats out = Summarize(plan, samples, covered, halted);
  if (ifq_init) out.ifq_occupancy = *ifq;
  if (incomplete) out.stats.complete = false;
  if (checker != nullptr) {
    out.stats.cosim_checked = checker->stats().commits_checked +
                              checker->stats().pthread_commits_checked;
    out.stats.cosim_diverged = !checker->ok();
    if (out.stats.cosim_diverged) {
      out.stats.cosim_summary = checker->Summary();
      out.stats.cosim_report = checker->Report();
      out.stats.complete = false;
    }
  }
  return out;
}

}  // namespace

SampledStats RunSampled(const Program& plain, const Program& timed,
                        const CoreConfig& config, const EvalOptions& options,
                        const SamplingPlan& plan, std::uint64_t ff_instrs,
                        runner::CheckpointTree* tree_out) {
  SPEAR_CHECK(plan.enabled());
  Substrate sub(plain, config);
  sub.Advance(ff_instrs);
  if (tree_out != nullptr) {
    *tree_out = runner::CheckpointTree{};
    tree_out->root = sub.Snapshot();
  }

  std::unique_ptr<cosim::CosimChecker> checker;
  if (config.cosim_check) {
    checker = std::make_unique<cosim::CosimChecker>(timed);
  }

  std::vector<IntervalSample> samples;
  telemetry::Distribution ifq;
  bool ifq_init = false;
  std::uint64_t covered = 0;
  bool halted = sub.halted();  // halted during fast-forward: empty region
  bool incomplete = sub.faulted();  // wild PC during fast-forward
  BlockCache core_cache;  // shared by every detailed interval's core

  const std::uint64_t budget = options.sim_instrs;
  while (!halted && !incomplete && covered < budget) {
    const std::uint64_t remaining = budget - covered;
    // A detailed interval only runs where a full warmup+detail window
    // fits; a shorter tail stays functional. The restored path replays
    // children with the same full-window budget, so both paths measure
    // identical windows.
    if (remaining >= plan.warmup + plan.detail) {
      const WarmState ws = sub.Snapshot();
      const IntervalOutcome o =
          RunDetailedInterval(timed, config, plan, options.max_cycles, ws,
                              checker.get(), &ifq, &ifq_init, &core_cache);
      if (o.sample.instrs > 0) samples.push_back(o.sample);
      if (tree_out != nullptr) tree_out->AddChild(ws);
      if (o.diverged) break;
      if (o.hit_cycle_cap) {
        incomplete = true;
        break;
      }
    }
    const std::uint64_t stride = std::min<std::uint64_t>(plan.period,
                                                         remaining);
    covered += sub.Advance(stride);
    halted = sub.halted();
    // A substrate fault (PC left the text section) makes the remaining
    // region unmeasurable: surface it as an incomplete run, not a hang.
    if (sub.faulted()) incomplete = true;
  }

  if (tree_out != nullptr) {
    tree_out->covered_instrs = covered;
    tree_out->halted = halted;
  }
  return Finish(plan, samples, covered, halted, incomplete, &ifq, ifq_init,
                checker.get());
}

SampledStats RunSampledFromTree(const Program& timed, const CoreConfig& config,
                                const EvalOptions& options,
                                const SamplingPlan& plan,
                                const runner::CheckpointTree& tree) {
  SPEAR_CHECK(plan.enabled());
  std::unique_ptr<cosim::CosimChecker> checker;
  if (config.cosim_check) {
    checker = std::make_unique<cosim::CosimChecker>(timed);
  }

  std::vector<IntervalSample> samples;
  telemetry::Distribution ifq;
  bool ifq_init = false;
  bool incomplete = false;
  BlockCache core_cache;  // shared by every replayed interval's core
  for (std::size_t i = 0; i < tree.children.size(); ++i) {
    const WarmState ws = tree.MaterializeChild(i);
    const IntervalOutcome o =
        RunDetailedInterval(timed, config, plan, options.max_cycles, ws,
                            checker.get(), &ifq, &ifq_init, &core_cache);
    if (o.sample.instrs > 0) samples.push_back(o.sample);
    if (o.diverged) break;
    if (o.hit_cycle_cap) {
      incomplete = true;
      break;
    }
  }
  return Finish(plan, samples, tree.covered_instrs, tree.halted, incomplete,
                &ifq, ifq_init, checker.get());
}

}  // namespace spear::sampling
