// SMARTS-style systematic interval sampling (DESIGN.md §14): the plan
// geometry, the per-interval sample record, and the population estimator
// that turns interval measurements into point estimates with standard
// errors and 95% confidence intervals.
//
// The sampled unit is the per-interval CPI (and per-instruction rates for
// the other headline stats). Intervals are equal-sized systematic picks
// from the instruction stream, so the mean of per-interval CPIs equals
// the CPI over all sampled instructions, and the usual SMARTS standard
// error sqrt(s^2/n) applies directly. IPC bounds come from transforming
// the CPI interval (IPC = 1/CPI is monotone), which respects the
// harmonic-mean structure of IPC instead of pretending interval IPCs
// average arithmetically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eval/harness.h"
#include "telemetry/json.h"
#include "telemetry/stat.h"

namespace spear::sampling {

// Systematic sampling geometry, in instructions. Every `period` committed
// instructions, one detailed interval runs on the timed core: `warmup`
// instructions to re-establish pipeline/p-thread state after the
// functional gap (measured stats discard them), then `detail` measured
// instructions. The rest of the period executes functionally.
struct SamplingPlan {
  std::uint64_t period = 0;  // 0 = sampling disabled
  std::uint64_t detail = 0;
  std::uint64_t warmup = 0;

  bool enabled() const { return period > 0; }

  // Validation shared by the manifest parser and the spearsim flags; the
  // message is path-free (callers prepend their own path/flag context).
  bool Validate(std::string* error) const;
};

// Measured deltas over one detailed interval's `detail` window.
struct IntervalSample {
  std::uint64_t instrs = 0;  // == plan.detail except a halt-truncated tail
  std::uint64_t cycles = 0;
  std::uint64_t l1d_misses_main = 0;
  std::uint64_t l1d_misses_pthread = 0;
  std::uint64_t l2_misses_main = 0;
  std::uint64_t l2_misses_pthread = 0;
  std::uint64_t committed_branches = 0;
  std::uint64_t committed_cond_branches = 0;
  std::uint64_t bpred_dir_correct = 0;
  std::uint64_t triggers = 0;
  std::uint64_t sessions = 0;
  std::uint64_t extracted = 0;
  std::uint64_t dispatched_wrongpath = 0;
  std::uint64_t squashed_wrongpath = 0;
  std::uint64_t ifq_flushed = 0;
  std::uint64_t chained_triggers = 0;
};

// A population estimate: sample mean, standard error of the mean, and the
// Student-t 95% confidence interval.
struct Estimate {
  double mean = 0.0;
  double se = 0.0;
  double ci_lo = 0.0;
  double ci_hi = 0.0;
  std::uint64_t n = 0;
  // A CI needs at least two samples (sample variance has n-1 degrees of
  // freedom). With n <= 1 the interval is degenerate — ci_lo/ci_hi are
  // pinned to the mean and this flag marks them as not-a-real-interval so
  // consumers don't read a zero-width CI as "perfectly converged".
  bool ci_defined = false;
};

// 97.5% Student-t quantile for `dof` degrees of freedom (two-sided 95%
// interval half-width multiplier). Tabulated for small dof, asymptotic
// 1.96 beyond.
double TQuantile975(std::uint64_t dof);

// Mean/SE/CI95 over a vector of per-interval values.
Estimate Estimate95(const std::vector<double>& values);

// Everything a sampled run produces: a RunStats-compatible summary (point
// estimates scaled to the covered region, so derived metrics and result
// tables keep working), plus the interval estimates with CIs.
struct SampledStats {
  // Scaled summary. `instructions` is the covered region,
  // `cycles`/miss counts/trigger counts are point estimates extrapolated
  // from the measured windows, `ipc` is the sampled point estimate.
  RunStats stats;

  std::uint64_t period = 0;
  std::uint64_t detail = 0;
  std::uint64_t warmup = 0;
  std::uint64_t intervals = 0;        // measured intervals (n)
  std::uint64_t covered_instrs = 0;   // region instructions covered
  std::uint64_t sampled_instrs = 0;   // sum of measured windows
  Estimate cpi;                        // per-interval CPI (the sampled unit)
  Estimate ipc;                        // 1 / CPI with transformed bounds
  Estimate l1d_miss_per_kinstr;        // main-thread misses per 1k instrs
  Estimate l2_miss_per_kinstr;
  Estimate branch_hit_ratio;
  Estimate triggers_per_kinstr;
  Estimate extracted_per_kinstr;
  // Per-interval core IFQ occupancy distributions merged across intervals
  // (telemetry::Distribution::Merge).
  telemetry::Distribution ifq_occupancy;
};

// Computes every estimate and the scaled RunStats summary from the raw
// interval samples. `covered` is the number of region instructions the
// run covered (functional + detailed), `halted` whether the program
// halted inside the region.
SampledStats Summarize(const SamplingPlan& plan,
                       const std::vector<IntervalSample>& samples,
                       std::uint64_t covered, bool halted);

// RunStatsToJson(stats) plus the "sampling" member — the schema-v3 row
// shape for sampled runs. Non-sampled rows never carry the member, so
// full-detail documents keep their exact bytes.
telemetry::JsonValue SampledStatsToJson(const SampledStats& s);

}  // namespace spear::sampling
