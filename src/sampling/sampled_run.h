// Sampled-run orchestrator (DESIGN.md §14): alternates fast functional
// execution with short detailed intervals on the timed core, per a
// SamplingPlan.
//
// The functional substrate mirrors the fast-forward warming protocol
// exactly (checkpoint.cc FastForward): the plain binary steps on the
// Emulator while a private cache hierarchy and branch predictor of the
// target geometry warm alongside. At each interval start the substrate's
// state snapshots into a WarmState, a *fresh* timed Core installs it
// (warm state is only legal at cycle 0), runs `warmup` detailed-but-
// unmeasured instructions, then `detail` measured ones; counters are
// diffed across the measured window into an IntervalSample.
//
// The substrate executes the plain binary and never sees p-thread or
// wrong-path perturbations; the detailed warmup window absorbs the
// resulting micro-architectural discrepancy (the SMARTS argument).
//
// A fresh run can emit a runner::CheckpointTree (root + per-interval
// snapshots) so the whole sampled row is replayable without re-running
// the functional gaps; RunSampledFromTree is that replay, and produces a
// byte-identical stats document.
#pragma once

#include "cpu/config.h"
#include "cpu/core.h"
#include "eval/harness.h"
#include "isa/program.h"
#include "runner/checkpoint.h"
#include "sampling/sampling.h"

namespace spear::sampling {

// Runs `options.sim_instrs` region instructions sampled per `plan`, after
// fast-forwarding `ff_instrs` on the substrate. `plain` is the reference
// binary driving the substrate; `timed` the (possibly SPEAR-annotated)
// binary the detailed core executes — both must be the same workload
// build, so their architectural execution is identical.
//
// When config.cosim_check is set, one CosimChecker shadows every detailed
// interval (re-seated per interval via SyncToWarmState); a divergence
// stops the run and lands in stats.cosim_* with complete=false.
//
// When `tree_out` is non-null it is filled with the post-fast-forward
// root, one child per detailed interval, and the region coverage — ready
// for SaveCheckpointTree. If the program halts during fast-forward the
// result has covered_instrs == 0, halted == true and no samples (and
// tree_out->root.halted is set).
SampledStats RunSampled(const Program& plain, const Program& timed,
                        const CoreConfig& config, const EvalOptions& options,
                        const SamplingPlan& plan, std::uint64_t ff_instrs,
                        runner::CheckpointTree* tree_out = nullptr);

// Replays the detailed intervals of a restored tree — no emulator, no
// functional gaps. Coverage and the halted flag come from the tree
// header, so the summarized document is byte-identical to the fresh
// run's (modulo the caller-owned "run" member).
SampledStats RunSampledFromTree(const Program& timed, const CoreConfig& config,
                                const EvalOptions& options,
                                const SamplingPlan& plan,
                                const runner::CheckpointTree& tree);

}  // namespace spear::sampling
