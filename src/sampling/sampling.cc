#include "sampling/sampling.h"

#include <algorithm>
#include <cmath>

namespace spear::sampling {
namespace {

using telemetry::JsonValue;

// total/total aggregate over the measured windows: the deterministic
// point value used for the scaled RunStats summary fields.
double WindowRatio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}

std::int64_t ScaleToRegion(std::uint64_t num, std::uint64_t sampled,
                           std::uint64_t covered) {
  return static_cast<std::int64_t>(
      std::llround(WindowRatio(num, sampled) * static_cast<double>(covered)));
}

JsonValue EstimateJson(const Estimate& e) {
  JsonValue o = JsonValue::Object();
  o.Set("mean", JsonValue(e.mean));
  o.Set("se", JsonValue(e.se));
  o.Set("ci_lo", JsonValue(e.ci_lo));
  o.Set("ci_hi", JsonValue(e.ci_hi));
  o.Set("n", JsonValue(static_cast<std::int64_t>(e.n)));
  // Emitted only for the degenerate n<=1 case so existing well-formed
  // rows keep their exact bytes (every defined estimate stays implicit).
  if (!e.ci_defined) o.Set("ci_defined", JsonValue(false));
  return o;
}

}  // namespace

bool SamplingPlan::Validate(std::string* error) const {
  auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (!enabled()) {
    if (detail != 0 || warmup != 0) {
      return fail("sampling disabled (period 0) but detail/warmup set");
    }
    return true;
  }
  if (detail == 0) return fail("detail must be > 0 when period is set");
  if (warmup + detail > period) {
    return fail("warmup + detail must fit inside one period (" +
                std::to_string(warmup) + " + " + std::to_string(detail) +
                " > " + std::to_string(period) + ")");
  }
  return true;
}

double TQuantile975(std::uint64_t dof) {
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
      2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
      2.048,  2.045, 2.042};
  if (dof == 0) return 0.0;
  if (dof <= 30) return kTable[dof - 1];
  if (dof <= 40) return 2.021;
  if (dof <= 60) return 2.000;
  if (dof <= 120) return 1.980;
  return 1.960;
}

Estimate Estimate95(const std::vector<double>& values) {
  Estimate e;
  e.n = values.size();
  if (values.empty()) return e;
  double sum = 0.0;
  for (double v : values) sum += v;
  e.mean = sum / static_cast<double>(values.size());
  if (values.size() < 2) {
    // One sample: the variance estimator has zero degrees of freedom, so
    // no finite interval exists. Pin the bounds to the mean and leave
    // ci_defined false — a degenerate marker, not a claim of certainty.
    e.ci_lo = e.ci_hi = e.mean;
    return e;
  }
  double ss = 0.0;
  for (double v : values) ss += (v - e.mean) * (v - e.mean);
  const double s2 = ss / static_cast<double>(values.size() - 1);
  e.se = std::sqrt(s2 / static_cast<double>(values.size()));
  const double t = TQuantile975(values.size() - 1);
  e.ci_lo = e.mean - t * e.se;
  e.ci_hi = e.mean + t * e.se;
  e.ci_defined = true;
  return e;
}

SampledStats Summarize(const SamplingPlan& plan,
                       const std::vector<IntervalSample>& samples,
                       std::uint64_t covered, bool halted) {
  SampledStats out;
  out.period = plan.period;
  out.detail = plan.detail;
  out.warmup = plan.warmup;
  out.intervals = samples.size();
  out.covered_instrs = covered;

  std::vector<double> cpi, l1d_rate, l2_rate, bhr, trig_rate, extr_rate;
  cpi.reserve(samples.size());
  IntervalSample total;
  for (const IntervalSample& s : samples) {
    out.sampled_instrs += s.instrs;
    const double instrs = static_cast<double>(s.instrs);
    cpi.push_back(static_cast<double>(s.cycles) / instrs);
    l1d_rate.push_back(static_cast<double>(s.l1d_misses_main) * 1e3 / instrs);
    l2_rate.push_back(static_cast<double>(s.l2_misses_main) * 1e3 / instrs);
    // 0/0 convention matches CoreStats::BranchHitRatio: no conditional
    // branches in the window = a perfect 1.0, not a dropped sample.
    bhr.push_back(s.committed_cond_branches == 0
                      ? 1.0
                      : static_cast<double>(s.bpred_dir_correct) /
                            static_cast<double>(s.committed_cond_branches));
    trig_rate.push_back(static_cast<double>(s.triggers) * 1e3 / instrs);
    extr_rate.push_back(static_cast<double>(s.extracted) * 1e3 / instrs);

    total.cycles += s.cycles;
    total.l1d_misses_main += s.l1d_misses_main;
    total.l1d_misses_pthread += s.l1d_misses_pthread;
    total.l2_misses_main += s.l2_misses_main;
    total.l2_misses_pthread += s.l2_misses_pthread;
    total.committed_branches += s.committed_branches;
    total.committed_cond_branches += s.committed_cond_branches;
    total.bpred_dir_correct += s.bpred_dir_correct;
    total.triggers += s.triggers;
    total.sessions += s.sessions;
    total.extracted += s.extracted;
    total.dispatched_wrongpath += s.dispatched_wrongpath;
    total.squashed_wrongpath += s.squashed_wrongpath;
    total.ifq_flushed += s.ifq_flushed;
    total.chained_triggers += s.chained_triggers;
  }

  out.cpi = Estimate95(cpi);
  out.l1d_miss_per_kinstr = Estimate95(l1d_rate);
  out.l2_miss_per_kinstr = Estimate95(l2_rate);
  out.branch_hit_ratio = Estimate95(bhr);
  out.triggers_per_kinstr = Estimate95(trig_rate);
  out.extracted_per_kinstr = Estimate95(extr_rate);

  // IPC = 1/CPI is monotone decreasing, so the interval bounds swap. The
  // standard error comes from the delta method (d(1/x)/dx = -1/x^2).
  // When the CPI interval is not strictly positive (tiny n with a huge
  // t-quantile can push ci_lo below zero), the transform is undefined;
  // fall back to the symmetric delta-method interval clamped at zero so
  // the IPC CI always satisfies ci_lo <= mean <= ci_hi.
  out.ipc.n = out.cpi.n;
  out.ipc.ci_defined = out.cpi.ci_defined;  // same sample set, same dof
  if (out.cpi.mean > 0.0) {
    out.ipc.mean = 1.0 / out.cpi.mean;
    out.ipc.se = out.cpi.se / (out.cpi.mean * out.cpi.mean);
    if (out.cpi.ci_lo > 0.0) {
      out.ipc.ci_lo = 1.0 / out.cpi.ci_hi;
      out.ipc.ci_hi = 1.0 / out.cpi.ci_lo;
    } else {
      const double t =
          out.ipc.se > 0.0 ? (out.cpi.ci_hi - out.cpi.mean) / out.cpi.se
                           : 0.0;
      out.ipc.ci_lo = std::max(0.0, out.ipc.mean - t * out.ipc.se);
      out.ipc.ci_hi = out.ipc.mean + t * out.ipc.se;
    }
  }

  // The RunStats-compatible summary: counts extrapolate the measured
  // windows' aggregate rates onto the whole covered region, so sampled
  // and full-detail rows read on the same scale (and the derived
  // mean_ratio/mean_reduction metrics stay meaningful).
  const std::uint64_t sampled = out.sampled_instrs;
  RunStats& rs = out.stats;
  rs.instructions = covered;
  rs.ipc = out.ipc.mean;
  rs.cycles = static_cast<Cycle>(
      std::llround(out.cpi.mean * static_cast<double>(covered)));
  rs.l1d_misses_main = static_cast<std::uint64_t>(
      ScaleToRegion(total.l1d_misses_main, sampled, covered));
  rs.l1d_misses_pthread = static_cast<std::uint64_t>(
      ScaleToRegion(total.l1d_misses_pthread, sampled, covered));
  rs.l2_misses_main = static_cast<std::uint64_t>(
      ScaleToRegion(total.l2_misses_main, sampled, covered));
  rs.l2_misses_pthread = static_cast<std::uint64_t>(
      ScaleToRegion(total.l2_misses_pthread, sampled, covered));
  rs.branch_hit_ratio =
      total.committed_cond_branches == 0
          ? 1.0
          : WindowRatio(total.bpred_dir_correct,
                        total.committed_cond_branches);
  rs.ipb = total.committed_branches == 0
               ? 0.0
               : WindowRatio(sampled, total.committed_branches);
  rs.triggers = static_cast<std::uint64_t>(
      ScaleToRegion(total.triggers, sampled, covered));
  rs.sessions = static_cast<std::uint64_t>(
      ScaleToRegion(total.sessions, sampled, covered));
  rs.extracted = static_cast<std::uint64_t>(
      ScaleToRegion(total.extracted, sampled, covered));
  rs.dispatched_wrongpath = static_cast<std::uint64_t>(
      ScaleToRegion(total.dispatched_wrongpath, sampled, covered));
  rs.squashed_wrongpath = static_cast<std::uint64_t>(
      ScaleToRegion(total.squashed_wrongpath, sampled, covered));
  rs.ifq_flushed = static_cast<std::uint64_t>(
      ScaleToRegion(total.ifq_flushed, sampled, covered));
  rs.chained_triggers = static_cast<std::uint64_t>(
      ScaleToRegion(total.chained_triggers, sampled, covered));
  rs.halted = halted;
  rs.complete = true;  // callers override on incomplete/diverged intervals
  return out;
}

telemetry::JsonValue SampledStatsToJson(const SampledStats& s) {
  JsonValue o = RunStatsToJson(s.stats);
  JsonValue sampling = JsonValue::Object();
  sampling.Set("period", JsonValue(s.period));
  sampling.Set("detail", JsonValue(s.detail));
  sampling.Set("warmup", JsonValue(s.warmup));
  sampling.Set("intervals", JsonValue(static_cast<std::int64_t>(s.intervals)));
  sampling.Set("covered_instrs", JsonValue(s.covered_instrs));
  sampling.Set("sampled_instrs", JsonValue(s.sampled_instrs));
  sampling.Set("ipc", EstimateJson(s.ipc));
  sampling.Set("cpi", EstimateJson(s.cpi));
  sampling.Set("l1d_miss_per_kinstr", EstimateJson(s.l1d_miss_per_kinstr));
  sampling.Set("l2_miss_per_kinstr", EstimateJson(s.l2_miss_per_kinstr));
  sampling.Set("branch_hit_ratio", EstimateJson(s.branch_hit_ratio));
  sampling.Set("triggers_per_kinstr", EstimateJson(s.triggers_per_kinstr));
  sampling.Set("extracted_per_kinstr", EstimateJson(s.extracted_per_kinstr));

  JsonValue ifq = JsonValue::Object();
  ifq.Set("count", JsonValue(s.ifq_occupancy.count()));
  ifq.Set("sum", JsonValue(s.ifq_occupancy.sum()));
  ifq.Set("min", JsonValue(s.ifq_occupancy.min()));
  ifq.Set("max", JsonValue(s.ifq_occupancy.max()));
  JsonValue buckets = JsonValue::Array();
  for (std::uint64_t b : s.ifq_occupancy.buckets()) {
    buckets.Append(JsonValue(b));
  }
  ifq.Set("buckets", std::move(buckets));
  sampling.Set("ifq_occupancy", std::move(ifq));

  o.Set("sampling", std::move(sampling));
  return o;
}

}  // namespace spear::sampling
