// Architectural-state functional emulator.
//
// Three roles:
//   1. Reference semantics — the oracle the pipeline integration tests
//      compare final register/output state against.
//   2. Substrate for the SPEAR profiling tool (per-step observation hook).
//   3. Fast workload validation during development.
//
// Run() executes block-at-a-time through a decoded basic-block cache
// (sim/block_cache.h): one cache lookup per straight-line run instead of a
// PC containment check and text-table probe per instruction. Step() keeps
// the per-instruction observation contract the profiler/cosim/warming
// consumers need. Semantics stay single-sourced in ExecuteInstruction —
// the cache only stores decode/classification results, so the two paths
// cannot diverge.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "isa/program.h"
#include "mem/memory.h"
#include "sim/block_cache.h"
#include "sim/exec.h"

namespace spear {

// Everything an observer (e.g. the profiler) can learn about one retired
// instruction.
struct StepInfo {
  Pc pc = 0;
  Instruction instr;
  ExecResult result;
  std::uint64_t icount = 0;  // 1-based dynamic instruction number
};

class Emulator {
 public:
  // `shared_cache` lets several same-program consumers (e.g. per-interval
  // shadow emulators) reuse one decoded-block cache; the emulator attaches
  // it on first Run(). Default: a private cache, created lazily so pure
  // Step() users (lockstep cosim) pay nothing for it.
  explicit Emulator(const Program& prog, BlockCache* shared_cache = nullptr)
      : prog_(&prog), pc_(prog.entry), shared_cache_(shared_cache) {
    iregs_.fill(0);
    fregs_.fill(0.0);
    mem_.LoadProgram(prog);
    // Conventional stack: grows down from just under 256 MiB — relocated
    // above any data segment that reaches the stack band (isa/program.h).
    iregs_[kRegSp] = InitialStackPointer(prog);
  }

  bool halted() const { return halted_; }
  // The PC left the text section (wild jr target, corrupt return address):
  // a structured error instead of the old CHECK-abort, so orchestrators
  // can surface the run as a failed row. fault_pc() is the offending PC.
  bool faulted() const { return faulted_; }
  Pc fault_pc() const { return fault_pc_; }
  Pc pc() const { return pc_; }
  std::uint64_t icount() const { return icount_; }
  const std::vector<std::uint32_t>& outputs() const { return outputs_; }

  std::uint32_t ReadIntReg(RegId reg) const {
    SPEAR_DCHECK(!IsFpReg(reg));
    return reg == kRegZero ? 0 : iregs_[reg];
  }
  double ReadFpReg(RegId reg) const {
    SPEAR_DCHECK(IsFpReg(reg));
    return fregs_[FpIndex(reg)];
  }
  // Unified read used by trigger logic and tests: FP values are returned
  // as raw bits elsewhere; here we expose typed variants only.
  Memory& memory() { return mem_; }
  const Memory& memory() const { return mem_; }

  // The decoded-block cache backing Run() (nullptr until first use).
  const BlockCache* block_cache() const { return cache_; }

  // Executes one instruction; undefined if already halted or faulted.
  // On an out-of-text PC the emulator latches faulted() and returns a
  // StepInfo with a default (no-effect) result — callers' loops must test
  // faulted() alongside halted().
  StepInfo Step() {
    SPEAR_CHECK(!halted_ && !faulted_);
    StepInfo info;
    info.pc = pc_;
    if (!prog_->ContainsPc(pc_)) {
      faulted_ = true;
      fault_pc_ = pc_;
      info.icount = icount_;
      return info;
    }
    info.instr = prog_->At(pc_);
    ArchState st{this};
    info.result = ExecuteInstruction(st, info.instr, pc_);
    ++icount_;
    info.icount = icount_;
    if (info.result.out_value) outputs_.push_back(*info.result.out_value);
    halted_ = info.result.halted;
    pc_ = info.result.next_pc;
    return info;
  }

  // Runs until halt, fault, or the instruction budget is exhausted.
  // Returns the number of instructions executed by this call. Flattened:
  // ExecuteInstruction must inline here so the per-instruction ExecResult
  // never materializes in memory.
  SPEAR_FLATTEN std::uint64_t Run(std::uint64_t max_instrs) {
    if (!kBlockCacheEnabled) return RunPerInstruction(max_instrs);
    BlockCache& bc = EnsureCache();
    std::uint64_t n = 0;
    ArchState st{this};
    while (!halted_ && !faulted_ && n < max_instrs) {
      const BlockCache::Block b = bc.Lookup(pc_);
      if (b.len == 0) {  // pc outside text: structured fault
        faulted_ = true;
        fault_pc_ = pc_;
        break;
      }
      const std::uint64_t budget = max_instrs - n;
      const std::uint32_t take =
          b.len <= budget ? b.len : static_cast<std::uint32_t>(budget);
      Pc pc = pc_;
      std::uint32_t i = 0;
      while (i < take) {
        const ExecResult res = ExecuteInstruction(st, b.recs[i].instr, pc);
        ++i;
        pc = res.next_pc;
        if (res.out_value) outputs_.push_back(*res.out_value);
        if (res.halted) {
          halted_ = true;
          break;
        }
      }
      n += i;
      icount_ += i;
      pc_ = pc;
    }
    return n;
  }

  // Re-seats the emulator at an externally produced architectural state
  // (a functional fast-forward or a restored checkpoint), so it can shadow
  // a warm-started core from the switch point onward. `icount` is the
  // instruction count already consumed producing that state.
  void Restore(const std::array<std::uint32_t, kNumIntRegs>& iregs,
               const std::array<double, kNumFpRegs>& fregs, Pc pc,
               const Memory& mem, std::uint64_t icount) {
    SPEAR_CHECK(prog_->ContainsPc(pc));
    iregs_ = iregs;
    iregs_[kRegZero] = 0;  // r0 stays hardwired whatever the source held
    fregs_ = fregs;
    pc_ = pc;
    mem_.CopyFrom(mem);
    icount_ = icount;
    halted_ = false;
    faulted_ = false;
    outputs_.clear();
  }

 private:
  // The state-concept adapter handed to ExecuteInstruction. r0 is masked
  // here as well as in the exec helpers: a state object must never expose
  // a stale r0 value (or accept one), even to a caller that bypasses the
  // rint/wint guards — that's the contract warm-state restore and any
  // future direct user rely on.
  struct ArchState {
    Emulator* e;
    std::uint32_t ReadInt(RegId reg) {
      return reg == kRegZero ? 0 : e->iregs_[reg];
    }
    void WriteInt(RegId reg, std::uint32_t v) {
      if (reg != kRegZero) e->iregs_[reg] = v;
    }
    double ReadFp(RegId reg) { return e->fregs_[FpIndex(reg)]; }
    void WriteFp(RegId reg, double v) { e->fregs_[FpIndex(reg)] = v; }
    std::uint32_t LoadU32(Addr a) { return e->mem_.ReadU32(a); }
    std::uint8_t LoadU8(Addr a) { return e->mem_.ReadU8(a); }
    double LoadF64(Addr a) { return e->mem_.ReadF64(a); }
    void StoreU32(Addr a, std::uint32_t v) { e->mem_.WriteU32(a, v); }
    void StoreU8(Addr a, std::uint8_t v) { e->mem_.WriteU8(a, v); }
    void StoreF64(Addr a, double v) { e->mem_.WriteF64(a, v); }
  };

  // Legacy per-instruction loop: the compiled-out fallback for
  // -DSPEAR_ENABLE_BLOCK_CACHE=0 builds (kept compiled unconditionally).
  std::uint64_t RunPerInstruction(std::uint64_t max_instrs) {
    std::uint64_t n = 0;
    while (!halted_ && !faulted_ && n < max_instrs) {
      Step();
      if (!faulted_) ++n;
    }
    return n;
  }

  BlockCache& EnsureCache() {
    if (cache_ == nullptr) {
      if (shared_cache_ != nullptr) {
        cache_ = shared_cache_;
      } else {
        own_cache_ = std::make_unique<BlockCache>();
        cache_ = own_cache_.get();
      }
      // No PT marks: the emulator never pre-decodes. A shared cache must
      // therefore only be shared between mark-less consumers.
      cache_->Attach(*prog_, nullptr);
    }
    return *cache_;
  }

  const Program* prog_;
  Memory mem_;
  std::array<std::uint32_t, kNumIntRegs> iregs_;
  std::array<double, kNumFpRegs> fregs_;
  Pc pc_;
  bool halted_ = false;
  bool faulted_ = false;
  Pc fault_pc_ = 0;
  std::uint64_t icount_ = 0;
  std::vector<std::uint32_t> outputs_;
  BlockCache* shared_cache_ = nullptr;
  BlockCache* cache_ = nullptr;
  std::unique_ptr<BlockCache> own_cache_;
};

}  // namespace spear
