// Architectural-state functional emulator.
//
// Three roles:
//   1. Reference semantics — the oracle the pipeline integration tests
//      compare final register/output state against.
//   2. Substrate for the SPEAR profiling tool (per-step observation hook).
//   3. Fast workload validation during development.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "isa/program.h"
#include "mem/memory.h"
#include "sim/exec.h"

namespace spear {

// Everything an observer (e.g. the profiler) can learn about one retired
// instruction.
struct StepInfo {
  Pc pc = 0;
  Instruction instr;
  ExecResult result;
  std::uint64_t icount = 0;  // 1-based dynamic instruction number
};

class Emulator {
 public:
  explicit Emulator(const Program& prog) : prog_(&prog), pc_(prog.entry) {
    iregs_.fill(0);
    fregs_.fill(0.0);
    mem_.LoadProgram(prog);
    // Conventional stack: grows down from just under 256 MiB.
    iregs_[kRegSp] = 0x0fff0000u;
  }

  bool halted() const { return halted_; }
  Pc pc() const { return pc_; }
  std::uint64_t icount() const { return icount_; }
  const std::vector<std::uint32_t>& outputs() const { return outputs_; }

  std::uint32_t ReadIntReg(RegId reg) const {
    SPEAR_DCHECK(!IsFpReg(reg));
    return reg == kRegZero ? 0 : iregs_[reg];
  }
  double ReadFpReg(RegId reg) const {
    SPEAR_DCHECK(IsFpReg(reg));
    return fregs_[FpIndex(reg)];
  }
  // Unified read used by trigger logic and tests: FP values are returned
  // as raw bits elsewhere; here we expose typed variants only.
  Memory& memory() { return mem_; }
  const Memory& memory() const { return mem_; }

  // Executes one instruction; undefined if already halted.
  StepInfo Step() {
    SPEAR_CHECK(!halted_);
    SPEAR_CHECK(prog_->ContainsPc(pc_));
    StepInfo info;
    info.pc = pc_;
    info.instr = prog_->At(pc_);
    ArchState st{this};
    info.result = ExecuteInstruction(st, info.instr, pc_);
    ++icount_;
    info.icount = icount_;
    if (info.result.out_value) outputs_.push_back(*info.result.out_value);
    halted_ = info.result.halted;
    pc_ = info.result.next_pc;
    return info;
  }

  // Runs until halt or the instruction budget is exhausted. Returns the
  // number of instructions executed by this call.
  std::uint64_t Run(std::uint64_t max_instrs) {
    std::uint64_t n = 0;
    while (!halted_ && n < max_instrs) {
      Step();
      ++n;
    }
    return n;
  }

  // Re-seats the emulator at an externally produced architectural state
  // (a functional fast-forward or a restored checkpoint), so it can shadow
  // a warm-started core from the switch point onward. `icount` is the
  // instruction count already consumed producing that state.
  void Restore(const std::array<std::uint32_t, kNumIntRegs>& iregs,
               const std::array<double, kNumFpRegs>& fregs, Pc pc,
               const Memory& mem, std::uint64_t icount) {
    SPEAR_CHECK(prog_->ContainsPc(pc));
    iregs_ = iregs;
    iregs_[kRegZero] = 0;  // r0 stays hardwired whatever the source held
    fregs_ = fregs;
    pc_ = pc;
    mem_.CopyFrom(mem);
    icount_ = icount;
    halted_ = false;
    outputs_.clear();
  }

 private:
  // The state-concept adapter handed to ExecuteInstruction. r0 is masked
  // here as well as in the exec helpers: a state object must never expose
  // a stale r0 value (or accept one), even to a caller that bypasses the
  // rint/wint guards — that's the contract warm-state restore and any
  // future direct user rely on.
  struct ArchState {
    Emulator* e;
    std::uint32_t ReadInt(RegId reg) {
      return reg == kRegZero ? 0 : e->iregs_[reg];
    }
    void WriteInt(RegId reg, std::uint32_t v) {
      if (reg != kRegZero) e->iregs_[reg] = v;
    }
    double ReadFp(RegId reg) { return e->fregs_[FpIndex(reg)]; }
    void WriteFp(RegId reg, double v) { e->fregs_[FpIndex(reg)] = v; }
    std::uint32_t LoadU32(Addr a) { return e->mem_.ReadU32(a); }
    std::uint8_t LoadU8(Addr a) { return e->mem_.ReadU8(a); }
    double LoadF64(Addr a) { return e->mem_.ReadF64(a); }
    void StoreU32(Addr a, std::uint32_t v) { e->mem_.WriteU32(a, v); }
    void StoreU8(Addr a, std::uint8_t v) { e->mem_.WriteU8(a, v); }
    void StoreF64(Addr a, double v) { e->mem_.WriteF64(a, v); }
  };

  const Program* prog_;
  Memory mem_;
  std::array<std::uint32_t, kNumIntRegs> iregs_;
  std::array<double, kNumFpRegs> fregs_;
  Pc pc_;
  bool halted_ = false;
  std::uint64_t icount_ = 0;
  std::vector<std::uint32_t> outputs_;
};

}  // namespace spear
