// Decoded basic-block dispatch cache (the classic ISS optimization): a
// PC-keyed cache of straight-line instruction runs, where every record
// carries the decoded Instruction, the P-thread Table pre-decode marks the
// Core's pre-decoder would otherwise re-probe on every fetch (p-thread
// indicator + d-load spec index, each a hash lookup per visit), and a
// precategorized exec-dispatch tag derived from the opcode table.
//
// Both hot loops consume the same records through two views:
//   * Record(pc)  — per-instruction (Core fetch + pre-decode): one bounds
//     check and one array index per fetched instruction;
//   * Lookup(pc)  — block-at-a-time (Emulator::Run): the contiguous run
//     starting at pc, executed without per-step containment checks or
//     table probes.
//
// Blocks are built lazily on first touch and end at a control instruction,
// a HALT, the text-section boundary, or the edge of an already-built
// region (runs are never merged, so record storage never moves). Records
// live in an arena and are dropped wholesale when the cache is re-attached
// to a different code image: invalidation keys on a fingerprint of the
// program's text + entry + p-thread section (the same FNV-1a scheme the
// farm result cache uses for whole-binary fingerprints), so attaching a
// different SPEARBIN or PT flushes and a warm re-attach keeps everything.
//
// -DSPEAR_ENABLE_BLOCK_CACHE=0 compiles the cached paths out of Emulator
// and Core (both fall back to the per-instruction probe loops, which stay
// compiled and CI-tested either way); the cache itself still builds.
#pragma once

#include <cstdint>
#include <vector>

#include "common/arena.h"
#include "common/types.h"
#include "isa/program.h"
#include "spear/pthread_table.h"

#ifndef SPEAR_ENABLE_BLOCK_CACHE
#define SPEAR_ENABLE_BLOCK_CACHE 1
#endif

namespace spear {

inline constexpr bool kBlockCacheEnabled = SPEAR_ENABLE_BLOCK_CACHE != 0;

// Exec-dispatch tag bits, precomputed from GetOpInfo at decode time so the
// hot loops never re-consult the opcode table.
inline constexpr std::uint8_t kTagControl = 1u << 0;
inline constexpr std::uint8_t kTagCondBranch = 1u << 1;
inline constexpr std::uint8_t kTagHalt = 1u << 2;
inline constexpr std::uint8_t kTagLoad = 1u << 3;
inline constexpr std::uint8_t kTagStore = 1u << 4;
inline constexpr std::uint8_t kTagOut = 1u << 5;

// One pre-resolved instruction record. Semantics stay single-sourced in
// ExecuteInstruction (sim/exec.h) — the tag only classifies, it never
// executes.
struct DecodedInstr {
  Instruction instr;
  std::uint8_t tag = 0;
  // P-thread Table pre-decode marks (always false/-1 when the cache was
  // attached without a PT, matching a pre-decoder that is switched off).
  bool pthread_indicator = false;
  std::int32_t dload_spec = -1;  // PThreadTable::kNoSpec

  bool is_control() const { return tag & kTagControl; }
  bool is_halt() const { return tag & kTagHalt; }
};

class BlockCache {
 public:
  // A straight-line run of decoded records. `recs[0..len)` is contiguous;
  // only the last record can be a control instruction or HALT.
  struct Block {
    const DecodedInstr* recs = nullptr;
    std::uint32_t len = 0;
  };

  struct Stats {
    std::uint64_t hits = 0;          // record/block served from cache
    std::uint64_t misses = 0;        // lookups that built a block
    std::uint64_t blocks_built = 0;
    std::uint64_t instrs_decoded = 0;
    std::uint64_t flushes = 0;       // fingerprint-change invalidations
  };

  BlockCache() = default;
  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  // Binds the cache to a program image, baking `pt`'s pre-decode marks
  // into the records (pass nullptr when the pre-decoder is off). A warm
  // re-attach (same fingerprint) keeps every built block — that is what
  // lets the sampled-run orchestrator reuse one cache across per-interval
  // cores; anything else flushes.
  void Attach(const Program& prog, const PThreadTable* pt);

  bool attached() const { return prog_ != nullptr; }
  std::uint64_t fingerprint() const { return fingerprint_; }
  const Stats& stats() const { return stats_; }

  // Fingerprint of the code image the records depend on: text bytes,
  // text_base, entry, and (when `marks` is set) the p-thread section's
  // d-load PCs and slice PCs. Data segments are deliberately excluded —
  // they cannot affect decode or pre-decode marks.
  static std::uint64_t CodeFingerprint(const Program& prog, bool marks);

  // Per-instruction view: the record at `pc`, or nullptr when `pc` is not
  // a valid text PC (exactly Program::ContainsPc semantics, so a fetch
  // stall on a wild PC behaves as before).
  const DecodedInstr* Record(Pc pc) {
    if (!InText(pc)) return nullptr;
    const std::uint32_t idx = (pc - text_base_) >> kInstrShift;
    if (recs_[idx] != nullptr) {
      ++stats_.hits;
      return recs_[idx];
    }
    return Build(idx);
  }

  // Block view: the run starting at `pc` (built on miss), or an empty
  // block when `pc` is not a valid text PC.
  Block Lookup(Pc pc) {
    if (!InText(pc)) return Block{};
    const std::uint32_t idx = (pc - text_base_) >> kInstrShift;
    if (recs_[idx] != nullptr) {
      ++stats_.hits;
      return Block{recs_[idx], len_[idx]};
    }
    Build(idx);
    return Block{recs_[idx], len_[idx]};
  }

 private:
  static constexpr std::uint32_t kInstrShift = 3;
  static_assert((1u << kInstrShift) == kInstrBytes);

  bool InText(Pc pc) const {
    return pc >= text_base_ && pc < text_end_ &&
           ((pc - text_base_) & (kInstrBytes - 1)) == 0;
  }

  // Decodes the run starting at `idx`; returns its first record.
  const DecodedInstr* Build(std::uint32_t idx);

  const Program* prog_ = nullptr;
  const PThreadTable* pt_ = nullptr;
  std::uint64_t fingerprint_ = 0;
  Pc text_base_ = 0;
  Pc text_end_ = 0;

  // Per-instruction-index tables: the record pointer (nullptr = not yet
  // built) and the contiguous run length from that index to the end of
  // its arena run.
  std::vector<const DecodedInstr*> recs_;
  std::vector<std::uint32_t> len_;
  Arena arena_;
  Stats stats_;
};

}  // namespace spear
