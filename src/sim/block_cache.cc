#include "sim/block_cache.h"

#include <new>

#include "common/fnv.h"
#include "isa/opcode.h"

namespace spear {
namespace {

std::uint8_t TagOf(const Instruction& in) {
  const OpInfo& info = GetOpInfo(in.op);
  std::uint8_t tag = 0;
  if (info.flags & (kFlagCondBranch | kFlagUncondJump)) tag |= kTagControl;
  if (info.flags & kFlagCondBranch) tag |= kTagCondBranch;
  if (info.flags & kFlagHalt) tag |= kTagHalt;
  if (info.flags & kFlagLoad) tag |= kTagLoad;
  if (info.flags & kFlagStore) tag |= kTagStore;
  if (info.flags & kFlagOut) tag |= kTagOut;
  return tag;
}

}  // namespace

std::uint64_t BlockCache::CodeFingerprint(const Program& prog, bool marks) {
  std::uint64_t h = Fnv1a64Value(prog.text_base);
  h = Fnv1a64Value(prog.entry, h);
  h = Fnv1a64Value(static_cast<std::uint64_t>(prog.text.size()), h);
  for (const Instruction& in : prog.text) {
    h = Fnv1a64Value(Encode(in), h);
  }
  h = Fnv1a64Value(marks, h);
  if (marks) {
    h = Fnv1a64Value(static_cast<std::uint64_t>(prog.pthreads.size()), h);
    for (const PThreadSpec& spec : prog.pthreads) {
      h = Fnv1a64Value(spec.dload_pc, h);
      h = Fnv1a64Value(static_cast<std::uint64_t>(spec.slice_pcs.size()), h);
      for (Pc pc : spec.slice_pcs) h = Fnv1a64Value(pc, h);
    }
  }
  return h;
}

void BlockCache::Attach(const Program& prog, const PThreadTable* pt) {
  const bool marks = pt != nullptr && !pt->empty();
  const std::uint64_t fp = CodeFingerprint(prog, marks);
  if (prog_ != nullptr && fp == fingerprint_) {
    // Warm re-attach: same code image and marks source, so every built
    // record is still valid (possibly through a different Program copy).
    prog_ = &prog;
    pt_ = marks ? pt : nullptr;
    return;
  }
  if (prog_ != nullptr) ++stats_.flushes;
  prog_ = &prog;
  pt_ = marks ? pt : nullptr;
  fingerprint_ = fp;
  text_base_ = prog.text_base;
  text_end_ = prog.EndPc();
  arena_.Reset();
  recs_.assign(prog.text.size(), nullptr);
  len_.assign(prog.text.size(), 0);
}

const DecodedInstr* BlockCache::Build(std::uint32_t idx) {
  SPEAR_DCHECK(prog_ != nullptr && idx < recs_.size());
  // Pass 1: find the run end — a terminator (control/HALT, inclusive),
  // the text boundary, or the edge of an already-built region.
  const std::uint32_t n = static_cast<std::uint32_t>(recs_.size());
  std::uint32_t end = idx;
  while (end < n && recs_[end] == nullptr) {
    const Instruction& in = prog_->text[end];
    ++end;
    if (IsControl(in.op) || IsHalt(in.op)) break;
  }
  const std::uint32_t len = end - idx;

  // Pass 2: decode into one contiguous arena run and point every covered
  // index at its record (a later branch into the middle of this run hits
  // the cache directly).
  DecodedInstr* run = arena_.AllocArray<DecodedInstr>(len);
  for (std::uint32_t i = 0; i < len; ++i) {
    DecodedInstr& r = *new (&run[i]) DecodedInstr();
    r.instr = prog_->text[idx + i];
    r.tag = TagOf(r.instr);
    if (pt_ != nullptr) {
      const Pc pc = text_base_ + static_cast<Pc>(idx + i) * kInstrBytes;
      r.pthread_indicator = pt_->InAnySlice(pc);
      r.dload_spec = pt_->DloadSpec(pc);
    } else {
      r.pthread_indicator = false;
      r.dload_spec = PThreadTable::kNoSpec;
    }
    recs_[idx + i] = &run[i];
    len_[idx + i] = len - i;
  }
  ++stats_.misses;
  ++stats_.blocks_built;
  stats_.instrs_decoded += len;
  return run;
}

}  // namespace spear
