// Single source of truth for instruction semantics.
//
// ExecuteInstruction() is a template over an architectural-state concept so
// the same code drives (a) the functional emulator, (b) the pipeline's
// dispatch-time speculative execution (sim-outorder style) and (c) the
// p-thread context with its private store buffer. The three can therefore
// never diverge in semantics — the integration tests exploit this by using
// the emulator as an oracle for the pipeline.
//
// State concept:
//   std::uint32_t ReadInt(RegId) / void WriteInt(RegId, std::uint32_t)
//   double ReadFp(RegId)        / void WriteFp(RegId, double)
//   std::uint32_t LoadU32(Addr) / std::uint8_t LoadU8(Addr) / double LoadF64(Addr)
//   void StoreU32(Addr, std::uint32_t) / StoreU8(Addr, std::uint8_t) /
//        StoreF64(Addr, double)
// Reads of r0 must return 0 (enforced here, not by the state).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "common/check.h"
#include "common/types.h"
#include "isa/instruction.h"

namespace spear {

struct ExecResult {
  Pc next_pc = 0;
  bool is_control = false;
  bool taken = false;       // conditional branches only
  bool is_load = false;
  bool is_store = false;
  Addr mem_addr = 0;        // valid when is_load || is_store
  bool halted = false;
  std::optional<std::uint32_t> out_value;  // kOut side channel
};

namespace detail {

inline std::int32_t AsSigned(std::uint32_t v) {
  return static_cast<std::int32_t>(v);
}

inline std::uint32_t SafeDiv(std::uint32_t a, std::uint32_t b) {
  const std::int64_t sa = AsSigned(a);
  const std::int64_t sb = AsSigned(b);
  if (sb == 0) return 0;  // defined: no trap in the simulator
  return static_cast<std::uint32_t>(sa / sb);
}

inline std::uint32_t SafeRem(std::uint32_t a, std::uint32_t b) {
  const std::int64_t sa = AsSigned(a);
  const std::int64_t sb = AsSigned(b);
  if (sb == 0) return 0;
  return static_cast<std::uint32_t>(sa % sb);
}

}  // namespace detail

template <typename State>
ExecResult ExecuteInstruction(State& st, const Instruction& in, Pc pc) {
  using detail::AsSigned;
  ExecResult res;
  res.next_pc = pc + kInstrBytes;

  auto rint = [&st](RegId reg) -> std::uint32_t {
    return reg == kRegZero ? 0u : st.ReadInt(reg);
  };
  auto wint = [&st](RegId reg, std::uint32_t v) {
    if (reg != kRegZero) st.WriteInt(reg, v);
  };

  // FP opcodes carry FP register ids in rs/rt; reading those through the
  // integer file would index past its 32 entries, so the eager operand
  // reads (dead for such opcodes anyway) must skip them.
  const std::uint32_t s = IsFpReg(in.rs) ? 0u : rint(in.rs);
  const std::uint32_t t = IsFpReg(in.rt) ? 0u : rint(in.rt);
  const auto imm = static_cast<std::uint32_t>(in.imm);

  switch (in.op) {
    case Opcode::kNop:
      break;
    case Opcode::kHalt:
      res.halted = true;
      break;
    case Opcode::kOut:
      res.out_value = s;
      break;

    case Opcode::kAdd: wint(in.rd, s + t); break;
    case Opcode::kSub: wint(in.rd, s - t); break;
    case Opcode::kMul: wint(in.rd, s * t); break;
    case Opcode::kDiv: wint(in.rd, detail::SafeDiv(s, t)); break;
    case Opcode::kRem: wint(in.rd, detail::SafeRem(s, t)); break;
    case Opcode::kAnd: wint(in.rd, s & t); break;
    case Opcode::kOr: wint(in.rd, s | t); break;
    case Opcode::kXor: wint(in.rd, s ^ t); break;
    case Opcode::kSll: wint(in.rd, s << (t & 31)); break;
    case Opcode::kSrl: wint(in.rd, s >> (t & 31)); break;
    case Opcode::kSra:
      wint(in.rd, static_cast<std::uint32_t>(AsSigned(s) >> (t & 31)));
      break;
    case Opcode::kSlt: wint(in.rd, AsSigned(s) < AsSigned(t) ? 1 : 0); break;
    case Opcode::kSltu: wint(in.rd, s < t ? 1 : 0); break;

    case Opcode::kAddi: wint(in.rd, s + imm); break;
    case Opcode::kAndi: wint(in.rd, s & imm); break;
    case Opcode::kOri: wint(in.rd, s | imm); break;
    case Opcode::kXori: wint(in.rd, s ^ imm); break;
    case Opcode::kSlli: wint(in.rd, s << (imm & 31)); break;
    case Opcode::kSrli: wint(in.rd, s >> (imm & 31)); break;
    case Opcode::kSrai:
      wint(in.rd, static_cast<std::uint32_t>(AsSigned(s) >> (imm & 31)));
      break;
    case Opcode::kSlti:
      wint(in.rd, AsSigned(s) < AsSigned(imm) ? 1 : 0);
      break;
    case Opcode::kLui: wint(in.rd, imm << 16); break;

    case Opcode::kLw:
      res.is_load = true;
      res.mem_addr = s + imm;
      wint(in.rd, st.LoadU32(res.mem_addr));
      break;
    case Opcode::kLbu:
      res.is_load = true;
      res.mem_addr = s + imm;
      wint(in.rd, st.LoadU8(res.mem_addr));
      break;
    case Opcode::kLdf:
      res.is_load = true;
      res.mem_addr = s + imm;
      st.WriteFp(in.rd, st.LoadF64(res.mem_addr));
      break;
    case Opcode::kSw:
      res.is_store = true;
      res.mem_addr = s + imm;
      st.StoreU32(res.mem_addr, t);
      break;
    case Opcode::kSb:
      res.is_store = true;
      res.mem_addr = s + imm;
      st.StoreU8(res.mem_addr, static_cast<std::uint8_t>(t));
      break;
    case Opcode::kStf:
      res.is_store = true;
      res.mem_addr = s + imm;
      st.StoreF64(res.mem_addr, st.ReadFp(in.rt));
      break;

    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu: {
      res.is_control = true;
      switch (in.op) {
        case Opcode::kBeq: res.taken = s == t; break;
        case Opcode::kBne: res.taken = s != t; break;
        case Opcode::kBlt: res.taken = AsSigned(s) < AsSigned(t); break;
        case Opcode::kBge: res.taken = AsSigned(s) >= AsSigned(t); break;
        case Opcode::kBltu: res.taken = s < t; break;
        case Opcode::kBgeu: res.taken = s >= t; break;
        default: break;
      }
      if (res.taken) res.next_pc = static_cast<Pc>(in.imm);
      break;
    }

    case Opcode::kJ:
      res.is_control = true;
      res.taken = true;
      res.next_pc = static_cast<Pc>(in.imm);
      break;
    case Opcode::kJal:
      res.is_control = true;
      res.taken = true;
      wint(in.rd, pc + kInstrBytes);
      res.next_pc = static_cast<Pc>(in.imm);
      break;
    case Opcode::kJr:
      res.is_control = true;
      res.taken = true;
      res.next_pc = s;
      break;
    case Opcode::kJalr:
      res.is_control = true;
      res.taken = true;
      wint(in.rd, pc + kInstrBytes);
      res.next_pc = s;
      break;

    case Opcode::kFadd:
      st.WriteFp(in.rd, st.ReadFp(in.rs) + st.ReadFp(in.rt));
      break;
    case Opcode::kFsub:
      st.WriteFp(in.rd, st.ReadFp(in.rs) - st.ReadFp(in.rt));
      break;
    case Opcode::kFmul:
      st.WriteFp(in.rd, st.ReadFp(in.rs) * st.ReadFp(in.rt));
      break;
    case Opcode::kFdiv: {
      const double d = st.ReadFp(in.rt);
      st.WriteFp(in.rd, d == 0.0 ? 0.0 : st.ReadFp(in.rs) / d);
      break;
    }
    case Opcode::kFmov: st.WriteFp(in.rd, st.ReadFp(in.rs)); break;
    case Opcode::kFneg: st.WriteFp(in.rd, -st.ReadFp(in.rs)); break;
    case Opcode::kCvtif:
      st.WriteFp(in.rd, static_cast<double>(AsSigned(s)));
      break;
    case Opcode::kCvtfi: {
      const double v = st.ReadFp(in.rs);
      // Saturating conversion keeps wrong-path execution well defined.
      std::int32_t iv;
      if (v >= 2147483647.0) {
        iv = std::numeric_limits<std::int32_t>::max();
      } else if (v <= -2147483648.0) {
        iv = std::numeric_limits<std::int32_t>::min();
      } else {
        iv = static_cast<std::int32_t>(v);
      }
      wint(in.rd, static_cast<std::uint32_t>(iv));
      break;
    }
    case Opcode::kFeq:
      wint(in.rd, st.ReadFp(in.rs) == st.ReadFp(in.rt) ? 1 : 0);
      break;
    case Opcode::kFlt:
      wint(in.rd, st.ReadFp(in.rs) < st.ReadFp(in.rt) ? 1 : 0);
      break;
    case Opcode::kFle:
      wint(in.rd, st.ReadFp(in.rs) <= st.ReadFp(in.rt) ? 1 : 0);
      break;

    case Opcode::kCount:
      SPEAR_CHECK(false);
  }
  return res;
}

}  // namespace spear
