#include "eval/harness.h"

#include <memory>

#include "cosim/cosim.h"
#include "cpu/cmp.h"

namespace spear {

PreparedWorkload PrepareWorkload(const std::string& name,
                                 const EvalOptions& options) {
  PreparedWorkload out;
  out.name = name;

  WorkloadConfig ref_cfg;
  ref_cfg.seed = options.ref_seed;
  ref_cfg.scale = options.scale;
  out.plain = BuildWorkloadProgram(name, ref_cfg);

  WorkloadConfig prof_cfg;
  prof_cfg.seed = options.profile_seed;
  prof_cfg.scale = options.scale;
  const Program profile_input = BuildWorkloadProgram(name, prof_cfg);

  out.annotated = CompileSpear(profile_input, out.plain, options.compiler,
                               &out.compile_report);
  return out;
}

RunStats RunConfig(const Program& prog, const CoreConfig& config,
                   const EvalOptions& options, const WarmState* warm) {
  Core core(prog, config);
  if (warm != nullptr) core.InstallWarmState(*warm);
  std::unique_ptr<cosim::CosimChecker> checker;
  if (config.cosim_check) {
    checker = std::make_unique<cosim::CosimChecker>(prog);
    if (warm != nullptr) checker->SyncToWarmState(*warm);
    core.set_cosim(checker.get());
  }
  std::unique_ptr<taint::TaintObserver> taint_obs;
  if (config.taint_observe && taint::kTaintCompiled) {
    taint_obs =
        std::make_unique<taint::TaintObserver>(prog, config.mem.l1d.block_bytes);
    core.set_taint_observer(taint_obs.get());
  }
  const RunResult rr = core.Run(options.sim_instrs, options.max_cycles);
  RunStats s;
  s.cycles = rr.cycles;
  s.instructions = rr.instructions;
  s.ipc = rr.Ipc();
  s.halted = rr.halted;
  s.l1d_misses_main = core.hierarchy().l1d().misses(kMainThread);
  s.l1d_misses_pthread = core.hierarchy().l1d().misses(kPThread);
  s.l2_misses_main = core.hierarchy().l2().misses(kMainThread);
  s.l2_misses_pthread = core.hierarchy().l2().misses(kPThread);
  s.branch_hit_ratio = core.stats().BranchHitRatio();
  s.ipb = core.stats().Ipb();
  s.triggers = core.stats().triggers_fired;
  s.sessions = core.stats().preexec_sessions_completed;
  s.extracted = core.stats().pthread_extracted;
  s.dispatched_wrongpath = core.stats().dispatched_wrongpath;
  s.squashed_wrongpath = core.stats().squashed_wrongpath;
  s.ifq_flushed = core.stats().ifq_flushed;
  s.chained_triggers = core.stats().chained_triggers;
  s.complete = s.halted || s.instructions >= options.sim_instrs;
  if (checker != nullptr) {
    s.cosim_checked = checker->stats().commits_checked +
                      checker->stats().pthread_commits_checked;
    s.cosim_diverged = !checker->ok();
    if (s.cosim_diverged) {
      s.cosim_summary = checker->Summary();
      s.cosim_report = checker->Report();
      s.complete = false;  // the run was cut short at the divergence
    }
  }
  if (taint_obs != nullptr) {
    s.taint_observed = true;
    s.spec_loads = taint_obs->spec_loads();
    s.tainted_addr_loads = taint_obs->tainted_addr_loads();
    s.secret_loads = taint_obs->secret_loads();
    s.lines_spec = taint_obs->spec_line_count();
    s.lines_demand = taint_obs->demand_line_count();
    s.lines_spec_only = taint_obs->SpecOnlyLines();
  }
  return s;
}

namespace {

// Weighted speedup and harmonic-mean fairness from per-context mix IPCs
// and the matching solo IPCs (Snavely & Tullsen / Luo et al. metrics).
void FillDerivedMetrics(MixRunStats& s, const std::vector<double>& solo) {
  double ws = 0.0;
  double inv_sum = 0.0;
  for (std::size_t i = 0; i < s.threads.size(); ++i) {
    const double mix = s.threads[i].ipc;
    const double ref = solo[i];
    if (ref > 0.0) ws += mix / ref;
    if (mix > 0.0) inv_sum += ref / mix;
  }
  s.weighted_speedup = ws;
  s.hmean_fairness =
      inv_sum > 0.0 ? static_cast<double>(s.threads.size()) / inv_sum : 0.0;
}

}  // namespace

MixRunStats RunMix(const std::vector<const Program*>& progs,
                   const std::vector<std::string>& names,
                   const CoreConfig& config, const EvalOptions& options,
                   std::uint32_t cores, const std::vector<double>* solo_ipcs) {
  SPEAR_CHECK(!progs.empty() && names.size() == progs.size());
  SPEAR_CHECK(cores == 1 || cores == progs.size());
  MixRunStats s;
  s.threads.resize(progs.size());

  auto fill_thread = [&](std::size_t i, const ThreadResult& tr) {
    ThreadRunStats& t = s.threads[i];
    t.name = names[i];
    t.committed = tr.committed;
    t.cycles = tr.cycles;
    t.ipc = tr.Ipc();
    t.halted = tr.halted;
  };

  if (cores == 1) {
    // SMT mix: every program is a context on one core.
    Core core(progs, config);
    std::unique_ptr<cosim::CosimChecker> checker;
    if (config.cosim_check) {
      cosim::CosimChecker::Config cc;
      cc.inject_at = options.cosim_inject_at;
      cc.inject_tid = options.cosim_inject_tid;
      checker = std::make_unique<cosim::CosimChecker>(progs, cc);
      core.set_cosim(checker.get());
    }
    const RunResult rr =
        core.Run(options.sim_instrs * progs.size(), options.max_cycles);
    s.cycles = rr.cycles;
    s.instructions = rr.instructions;
    s.throughput_ipc = rr.Ipc();
    for (std::size_t i = 0; i < progs.size(); ++i) {
      fill_thread(i, core.thread_result(static_cast<std::uint32_t>(i)));
    }
    s.complete = rr.halted || s.instructions >= options.sim_instrs * progs.size();
    if (checker != nullptr) {
      s.cosim_checked = checker->stats().commits_checked +
                        checker->stats().pthread_commits_checked;
      s.cosim_diverged = !checker->ok();
      if (s.cosim_diverged) {
        s.cosim_summary = checker->Summary();
        s.cosim_report = checker->Report();
        s.complete = false;
      }
    }
  } else {
    // CMP: one program per core, shared L2, lockstep stepping.
    CmpSystem cmp(progs, config);
    if (config.cosim_check) {
      cosim::CosimChecker::Config cc;
      cc.inject_at = options.cosim_inject_at;
      cmp.EnableCosim(cc, options.cosim_inject_tid);
    }
    const RunResult rr = cmp.Run(options.sim_instrs, options.max_cycles);
    s.cycles = rr.cycles;
    s.instructions = rr.instructions;
    s.throughput_ipc = rr.Ipc();
    bool complete = true;
    for (std::size_t i = 0; i < progs.size(); ++i) {
      const ThreadResult tr = cmp.core(i).thread_result(0);
      fill_thread(i, tr);
      complete = complete &&
                 (tr.halted || tr.committed >= options.sim_instrs);
    }
    s.complete = complete;
    if (config.cosim_check) {
      s.cosim_checked = cmp.cosim_checked();
      s.cosim_diverged = cmp.cosim_diverged();
      if (s.cosim_diverged) {
        s.cosim_report = cmp.CosimReport();
        s.cosim_summary = "cosim divergence (see report)";
        s.complete = false;
      }
    }
  }

  if (solo_ipcs != nullptr && solo_ipcs->size() == s.threads.size()) {
    FillDerivedMetrics(s, *solo_ipcs);
  }
  return s;
}

telemetry::JsonValue MixRunStatsToJson(const MixRunStats& s) {
  telemetry::JsonValue o = telemetry::JsonValue::Object();
  o.Set("cycles", telemetry::JsonValue(static_cast<std::int64_t>(s.cycles)));
  o.Set("instructions",
        telemetry::JsonValue(static_cast<std::int64_t>(s.instructions)));
  o.Set("throughput_ipc", telemetry::JsonValue(s.throughput_ipc));
  telemetry::JsonValue threads = telemetry::JsonValue::Array();
  for (const ThreadRunStats& t : s.threads) {
    telemetry::JsonValue row = telemetry::JsonValue::Object();
    row.Set("name", telemetry::JsonValue(t.name));
    row.Set("committed",
            telemetry::JsonValue(static_cast<std::int64_t>(t.committed)));
    row.Set("cycles", telemetry::JsonValue(static_cast<std::int64_t>(t.cycles)));
    row.Set("ipc", telemetry::JsonValue(t.ipc));
    row.Set("halted", telemetry::JsonValue(t.halted));
    threads.Append(std::move(row));
  }
  o.Set("threads", std::move(threads));
  if (s.weighted_speedup != 0.0 || s.hmean_fairness != 0.0) {
    o.Set("weighted_speedup", telemetry::JsonValue(s.weighted_speedup));
    o.Set("hmean_fairness", telemetry::JsonValue(s.hmean_fairness));
  }
  o.Set("complete", telemetry::JsonValue(s.complete));
  if (s.cosim_checked > 0 || s.cosim_diverged) {
    o.Set("cosim_checked",
          telemetry::JsonValue(static_cast<std::int64_t>(s.cosim_checked)));
    o.Set("cosim_diverged", telemetry::JsonValue(s.cosim_diverged));
  }
  return o;
}

telemetry::JsonValue RunStatsToJson(const RunStats& s) {
  telemetry::JsonValue o = telemetry::JsonValue::Object();
  o.Set("cycles", telemetry::JsonValue(static_cast<std::int64_t>(s.cycles)));
  o.Set("instructions",
        telemetry::JsonValue(static_cast<std::int64_t>(s.instructions)));
  o.Set("ipc", telemetry::JsonValue(s.ipc));
  o.Set("l1d_misses_main",
        telemetry::JsonValue(static_cast<std::int64_t>(s.l1d_misses_main)));
  o.Set("l1d_misses_pthread",
        telemetry::JsonValue(static_cast<std::int64_t>(s.l1d_misses_pthread)));
  o.Set("l2_misses_main",
        telemetry::JsonValue(static_cast<std::int64_t>(s.l2_misses_main)));
  o.Set("l2_misses_pthread",
        telemetry::JsonValue(static_cast<std::int64_t>(s.l2_misses_pthread)));
  o.Set("branch_hit_ratio", telemetry::JsonValue(s.branch_hit_ratio));
  o.Set("ipb", telemetry::JsonValue(s.ipb));
  o.Set("triggers", telemetry::JsonValue(static_cast<std::int64_t>(s.triggers)));
  o.Set("sessions", telemetry::JsonValue(static_cast<std::int64_t>(s.sessions)));
  o.Set("extracted",
        telemetry::JsonValue(static_cast<std::int64_t>(s.extracted)));
  o.Set("dispatched_wrongpath",
        telemetry::JsonValue(
            static_cast<std::int64_t>(s.dispatched_wrongpath)));
  o.Set("squashed_wrongpath",
        telemetry::JsonValue(static_cast<std::int64_t>(s.squashed_wrongpath)));
  o.Set("ifq_flushed",
        telemetry::JsonValue(static_cast<std::int64_t>(s.ifq_flushed)));
  o.Set("chained_triggers",
        telemetry::JsonValue(static_cast<std::int64_t>(s.chained_triggers)));
  o.Set("halted", telemetry::JsonValue(s.halted));
  o.Set("complete", telemetry::JsonValue(s.complete));
  // Emitted only when checking actually ran, so documents from non-cosim
  // runs (the byte-identity CI comparisons) keep their exact shape.
  if (s.cosim_checked > 0 || s.cosim_diverged) {
    o.Set("cosim_checked",
          telemetry::JsonValue(static_cast<std::int64_t>(s.cosim_checked)));
    o.Set("cosim_diverged", telemetry::JsonValue(s.cosim_diverged));
  }
  // Same conditional-emission discipline for the leakage observation.
  if (s.taint_observed) {
    o.Set("spec_leak_loads",
          telemetry::JsonValue(static_cast<std::int64_t>(s.spec_loads)));
    o.Set("spec_leak_tainted_addr",
          telemetry::JsonValue(
              static_cast<std::int64_t>(s.tainted_addr_loads)));
    o.Set("spec_leak_secret_loads",
          telemetry::JsonValue(static_cast<std::int64_t>(s.secret_loads)));
    o.Set("spec_leak_lines_spec",
          telemetry::JsonValue(static_cast<std::int64_t>(s.lines_spec)));
    o.Set("spec_leak_lines_demand",
          telemetry::JsonValue(static_cast<std::int64_t>(s.lines_demand)));
    o.Set("spec_leak_lines_spec_only",
          telemetry::JsonValue(static_cast<std::int64_t>(s.lines_spec_only)));
  }
  return o;
}

}  // namespace spear
