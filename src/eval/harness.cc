#include "eval/harness.h"

namespace spear {

PreparedWorkload PrepareWorkload(const std::string& name,
                                 const EvalOptions& options) {
  PreparedWorkload out;
  out.name = name;

  WorkloadConfig ref_cfg;
  ref_cfg.seed = options.ref_seed;
  out.plain = BuildWorkloadProgram(name, ref_cfg);

  WorkloadConfig prof_cfg;
  prof_cfg.seed = options.profile_seed;
  const Program profile_input = BuildWorkloadProgram(name, prof_cfg);

  out.annotated = CompileSpear(profile_input, out.plain, options.compiler,
                               &out.compile_report);
  return out;
}

RunStats RunConfig(const Program& prog, const CoreConfig& config,
                   const EvalOptions& options) {
  Core core(prog, config);
  const RunResult rr = core.Run(options.sim_instrs, options.max_cycles);
  RunStats s;
  s.cycles = rr.cycles;
  s.instructions = rr.instructions;
  s.ipc = rr.Ipc();
  s.halted = rr.halted;
  s.l1d_misses_main = core.hierarchy().l1d().misses(kMainThread);
  s.l1d_misses_pthread = core.hierarchy().l1d().misses(kPThread);
  s.branch_hit_ratio = core.stats().BranchHitRatio();
  s.ipb = core.stats().Ipb();
  s.triggers = core.stats().triggers_fired;
  s.sessions = core.stats().preexec_sessions_completed;
  s.extracted = core.stats().pthread_extracted;
  return s;
}

}  // namespace spear
