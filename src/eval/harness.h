// Evaluation harness shared by the benchmark binaries and integration
// tests: builds a workload, runs the SPEAR post-compiler on it with a
// *different* input seed (the paper's methodology), and executes
// simulator configurations for a fixed instruction budget, mirroring the
// paper's skip-and-simulate runs.
#pragma once

#include <cstdint>
#include <string>

#include "compiler/spear_compiler.h"
#include "cpu/core.h"
#include "telemetry/json.h"
#include "workloads/workload.h"

namespace spear {

struct EvalOptions {
  std::uint64_t sim_instrs = 400'000;       // per-run commit budget
  std::uint64_t max_cycles = 80'000'000;    // safety net
  std::uint64_t ref_seed = 42;              // simulated input
  std::uint64_t profile_seed = 20040426;    // profiling input (different)
  // Workload working-set / iteration scale (WorkloadConfig::scale),
  // applied to both the reference and the profiling build. >1 grows
  // dynamic instruction counts toward sampled billion-instruction runs.
  int scale = 1;
  CompilerOptions compiler;
  // Cosim fault-injection self-test (multiprogram runs; 0 = disabled):
  // corrupt the Nth checked commit so the checker provably fails. In an
  // SMT mix `cosim_inject_tid` picks the context (-1 = global count); in
  // CMP mode it picks the core (-1 = core 0).
  std::uint64_t cosim_inject_at = 0;
  int cosim_inject_tid = -1;
};

// A workload prepared for evaluation: the reference binary for baseline
// runs and the SPEAR-annotated binary produced by the post-compiler.
struct PreparedWorkload {
  std::string name;
  Program plain;
  Program annotated;
  CompileReport compile_report;
};

PreparedWorkload PrepareWorkload(const std::string& name,
                                 const EvalOptions& options);

// One simulator run, condensed.
struct RunStats {
  Cycle cycles = 0;
  std::uint64_t instructions = 0;
  double ipc = 0.0;
  std::uint64_t l1d_misses_main = 0;
  std::uint64_t l1d_misses_pthread = 0;
  std::uint64_t l2_misses_main = 0;
  std::uint64_t l2_misses_pthread = 0;
  double branch_hit_ratio = 1.0;
  double ipb = 0.0;
  std::uint64_t triggers = 0;
  std::uint64_t sessions = 0;
  std::uint64_t extracted = 0;
  // Wrong-path cost of control speculation.
  std::uint64_t dispatched_wrongpath = 0;
  std::uint64_t squashed_wrongpath = 0;
  std::uint64_t ifq_flushed = 0;
  // Chaining-trigger extension re-arms (bench_ext_chaining).
  std::uint64_t chained_triggers = 0;
  bool halted = false;
  // A run is complete when it either committed a HALT or exhausted its
  // commit budget. !complete means the max_cycles safety net fired — the
  // measurement is bogus, and tools exit nonzero so sweep drivers notice.
  bool complete = false;

  // Lockstep co-simulation (config.cosim_check; see src/cosim). When the
  // run diverged, `cosim_summary` carries the one-line verdict (used as
  // the runner row error — its "cosim" prefix maps to the dedicated exit
  // code) and `cosim_report` the full structured report.
  std::uint64_t cosim_checked = 0;  // main + p-thread commits compared
  bool cosim_diverged = false;
  std::string cosim_summary;
  std::string cosim_report;

  // Speculative-leakage observation (config.taint_observe; see
  // spear/taint_observer.h). `taint_observed` gates JSON emission so
  // documents from unobserved runs keep their exact shape.
  bool taint_observed = false;
  std::uint64_t spec_loads = 0;          // loads on wrong-path/p-thread
  std::uint64_t tainted_addr_loads = 0;  // address register carried taint
  std::uint64_t secret_loads = 0;        // loads reading a @secret range
  std::uint64_t lines_spec = 0;          // lines touched speculatively
  std::uint64_t lines_demand = 0;        // lines touched by committed path
  std::uint64_t lines_spec_only = 0;     // the leakage surface
};

// Runs `prog` on `config` for the options' commit budget. When `warm` is
// given, the core starts from that post-warmup state instead of cold
// (skip-and-simulate); stats count post-restore activity only.
RunStats RunConfig(const Program& prog, const CoreConfig& config,
                   const EvalOptions& options,
                   const WarmState* warm = nullptr);

// RunStats as an insertion-ordered JSON object (for bench result files).
telemetry::JsonValue RunStatsToJson(const RunStats& s);

// ---- multiprogram (SMT mixes and CMP; DESIGN.md §17) ----

// One hardware context's outcome inside a multiprogram run.
struct ThreadRunStats {
  std::string name;             // workload name (for mix labels)
  std::uint64_t committed = 0;
  Cycle cycles = 0;             // own halt cycle, or total elapsed
  double ipc = 0.0;
  bool halted = false;
};

struct MixRunStats {
  Cycle cycles = 0;                   // total elapsed
  std::uint64_t instructions = 0;     // summed over contexts
  double throughput_ipc = 0.0;        // instructions / cycles
  std::vector<ThreadRunStats> threads;
  // Multiprogram figures of merit, filled when `solo_ipcs` was provided:
  // weighted speedup = sum_i IPC_mix_i / IPC_solo_i, and harmonic-mean
  // fairness = N / sum_i (IPC_solo_i / IPC_mix_i).
  double weighted_speedup = 0.0;
  double hmean_fairness = 0.0;
  bool complete = false;
  std::uint64_t cosim_checked = 0;
  bool cosim_diverged = false;
  std::string cosim_summary;
  std::string cosim_report;
};

// Runs the programs as co-scheduled SMT contexts on one core (SMT mix,
// `cores == 1`) or as one program per core over a shared L2 (CMP,
// `cores == progs.size()`); those are the only two supported shapes.
// `names` labels the per-thread rows; `solo_ipcs` (same order, from prior
// single-program runs of the same config) enables the derived metrics.
// The commit budget applies per context. config.cosim_check attaches the
// per-thread (or per-core) lockstep checkers.
MixRunStats RunMix(const std::vector<const Program*>& progs,
                   const std::vector<std::string>& names,
                   const CoreConfig& config, const EvalOptions& options,
                   std::uint32_t cores = 1,
                   const std::vector<double>* solo_ipcs = nullptr);

telemetry::JsonValue MixRunStatsToJson(const MixRunStats& s);

}  // namespace spear
