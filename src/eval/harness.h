// Evaluation harness shared by the benchmark binaries and integration
// tests: builds a workload, runs the SPEAR post-compiler on it with a
// *different* input seed (the paper's methodology), and executes
// simulator configurations for a fixed instruction budget, mirroring the
// paper's skip-and-simulate runs.
#pragma once

#include <cstdint>
#include <string>

#include "compiler/spear_compiler.h"
#include "cpu/core.h"
#include "telemetry/json.h"
#include "workloads/workload.h"

namespace spear {

struct EvalOptions {
  std::uint64_t sim_instrs = 400'000;       // per-run commit budget
  std::uint64_t max_cycles = 80'000'000;    // safety net
  std::uint64_t ref_seed = 42;              // simulated input
  std::uint64_t profile_seed = 20040426;    // profiling input (different)
  // Workload working-set / iteration scale (WorkloadConfig::scale),
  // applied to both the reference and the profiling build. >1 grows
  // dynamic instruction counts toward sampled billion-instruction runs.
  int scale = 1;
  CompilerOptions compiler;
};

// A workload prepared for evaluation: the reference binary for baseline
// runs and the SPEAR-annotated binary produced by the post-compiler.
struct PreparedWorkload {
  std::string name;
  Program plain;
  Program annotated;
  CompileReport compile_report;
};

PreparedWorkload PrepareWorkload(const std::string& name,
                                 const EvalOptions& options);

// One simulator run, condensed.
struct RunStats {
  Cycle cycles = 0;
  std::uint64_t instructions = 0;
  double ipc = 0.0;
  std::uint64_t l1d_misses_main = 0;
  std::uint64_t l1d_misses_pthread = 0;
  std::uint64_t l2_misses_main = 0;
  std::uint64_t l2_misses_pthread = 0;
  double branch_hit_ratio = 1.0;
  double ipb = 0.0;
  std::uint64_t triggers = 0;
  std::uint64_t sessions = 0;
  std::uint64_t extracted = 0;
  // Wrong-path cost of control speculation.
  std::uint64_t dispatched_wrongpath = 0;
  std::uint64_t squashed_wrongpath = 0;
  std::uint64_t ifq_flushed = 0;
  // Chaining-trigger extension re-arms (bench_ext_chaining).
  std::uint64_t chained_triggers = 0;
  bool halted = false;
  // A run is complete when it either committed a HALT or exhausted its
  // commit budget. !complete means the max_cycles safety net fired — the
  // measurement is bogus, and tools exit nonzero so sweep drivers notice.
  bool complete = false;

  // Lockstep co-simulation (config.cosim_check; see src/cosim). When the
  // run diverged, `cosim_summary` carries the one-line verdict (used as
  // the runner row error — its "cosim" prefix maps to the dedicated exit
  // code) and `cosim_report` the full structured report.
  std::uint64_t cosim_checked = 0;  // main + p-thread commits compared
  bool cosim_diverged = false;
  std::string cosim_summary;
  std::string cosim_report;

  // Speculative-leakage observation (config.taint_observe; see
  // spear/taint_observer.h). `taint_observed` gates JSON emission so
  // documents from unobserved runs keep their exact shape.
  bool taint_observed = false;
  std::uint64_t spec_loads = 0;          // loads on wrong-path/p-thread
  std::uint64_t tainted_addr_loads = 0;  // address register carried taint
  std::uint64_t secret_loads = 0;        // loads reading a @secret range
  std::uint64_t lines_spec = 0;          // lines touched speculatively
  std::uint64_t lines_demand = 0;        // lines touched by committed path
  std::uint64_t lines_spec_only = 0;     // the leakage surface
};

// Runs `prog` on `config` for the options' commit budget. When `warm` is
// given, the core starts from that post-warmup state instead of cold
// (skip-and-simulate); stats count post-restore activity only.
RunStats RunConfig(const Program& prog, const CoreConfig& config,
                   const EvalOptions& options,
                   const WarmState* warm = nullptr);

// RunStats as an insertion-ordered JSON object (for bench result files).
telemetry::JsonValue RunStatsToJson(const RunStats& s);

}  // namespace spear
