// P-thread verifier: proves, statically, that every `PThreadSpec` in a
// SPEAR binary honors the contract the hardware trusts — the slice
// decodes, stays inside its region, never escapes architectural state
// (no stores, control transfers, halts or outs), declares exactly the
// live-ins it reads, and is self-contained (every other read is fed by an
// in-slice definition). Lint-grade warnings flag specs that are legal but
// waste hardware: dead slice instructions, live-in sets beyond the
// 1-reg/cycle copy budget, and slices that pre-execute nothing.
//
// Three consumers: the `spearverify` CLI, `spearc --verify`, and the
// slicer itself, which drops any candidate spec that fails verification
// (see compiler/slicer.h).
#pragma once

#include <string>
#include <vector>

#include "isa/program.h"
#include "isa/spec_check.h"

namespace spear {

struct VerifyOptions {
  // Live-ins are copied main-thread -> p-thread at 1 register per cycle, so
  // every entry beyond this budget delays the p-thread launch by a cycle.
  int live_in_budget = 8;
  bool lints = true;  // emit warnings in addition to errors
  // Run the speculative-leakage taint pass (analysis/taint.h) as well:
  // secret-tainted load addresses are errors, load-tainted ones warnings.
  bool security = false;
};

struct SpecVerifyResult {
  Pc dload_pc = 0;
  std::vector<SpecDiag> diags;

  bool ok() const { return !HasSpecErrors(diags); }
};

struct VerifyResult {
  std::vector<SpecVerifyResult> specs;

  bool ok() const;
  int errors() const;
  int warnings() const;
  // One "<source>:0x<pc>: error: message [code]" line per diagnostic.
  std::string ToString(const std::string& source) const;
};

SpecVerifyResult VerifySpec(const Program& prog, const PThreadSpec& spec,
                            const VerifyOptions& options = {});
VerifyResult VerifyProgram(const Program& prog,
                           const VerifyOptions& options = {});

}  // namespace spear
