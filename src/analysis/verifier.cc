#include "analysis/verifier.h"

#include <cstdio>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/taint.h"
#include "isa/regs.h"

namespace spear {
namespace {

// Slice as a straight-line program in extraction (ascending-PC) order —
// exactly the stream the P-thread Extractor feeds the p-thread context.
Program SliceProgram(const Program& prog, const PThreadSpec& spec) {
  Program line;
  line.text.reserve(spec.slice_pcs.size());
  for (Pc pc : spec.slice_pcs) line.text.push_back(prog.At(pc));
  return line;
}

// Pc of the first read of `reg` not preceded by an in-slice definition.
Pc FirstExposedReadOf(const Program& line, const std::vector<Pc>& pcs,
                      RegId reg) {
  RegSet defined;
  for (std::size_t k = 0; k < line.text.size(); ++k) {
    if (UsesOf(line.text[k]).Contains(reg) && !defined.Contains(reg)) {
      return pcs[k];
    }
    defined |= DefsOf(line.text[k]);
  }
  return pcs.front();
}

void CheckLiveIns(const Program& line, const PThreadSpec& spec,
                  std::vector<SpecDiag>* diags) {
  const Cfg cfg = Cfg::Build(line);
  const LiveVariables live = LiveVariables::Compute(cfg);

  RegSet declared;
  for (RegId r : spec.live_ins) declared.Add(r);
  const RegSet computed = live.live_in(cfg.entry_block());

  for (RegId r : (computed - declared).ToVector()) {
    diags->push_back(
        {SpecDiagCode::kMissingLiveIn,
         FirstExposedReadOf(line, spec.slice_pcs, r),
         "slice reads " + RegName(r) +
             " before any slice definition, but it is not a live-in"});
  }
  for (RegId r : (declared - computed).ToVector()) {
    diags->push_back({SpecDiagCode::kSpuriousLiveIn, spec.dload_pc,
                      "live-in " + RegName(r) +
                          " is never read before being defined in the slice"});
  }

  // Self-containment at instruction grade: reaching definitions pins the
  // exact read an uncopied, undefined value would break. Deliberately
  // overlaps kMissingLiveIn — that one names the register, this one the
  // faulting read site.
  const ReachingDefinitions reach = ReachingDefinitions::Compute(cfg);
  for (std::size_t k = 0; k < line.text.size(); ++k) {
    for (RegId reg : UsesOf(line.text[k]).ToVector()) {
      if (declared.Contains(reg)) continue;  // copied at trigger time
      if (!reach.DefsOfRegAt(reg, static_cast<InstrIndex>(k)).empty()) {
        continue;
      }
      diags->push_back(
          {SpecDiagCode::kUncoveredRead, spec.slice_pcs[k],
           "read of " + RegName(reg) +
               " is covered by neither the live-ins nor a slice definition"});
    }
  }
}

void CheckLints(const Program& line, const PThreadSpec& spec,
                const VerifyOptions& options, std::vector<SpecDiag>* diags) {
  if (spec.slice_pcs.size() == 1) {
    diags->push_back({SpecDiagCode::kEmptyRegion, spec.dload_pc,
                      "slice contains only the delinquent load; the p-thread "
                      "pre-executes nothing ahead of the main thread"});
  }
  if (static_cast<int>(spec.live_ins.size()) > options.live_in_budget) {
    diags->push_back(
        {SpecDiagCode::kOversizedLiveIns, spec.dload_pc,
         std::to_string(spec.live_ins.size()) +
             " live-ins against a copy budget of " +
             std::to_string(options.live_in_budget) +
             "; at 1 reg/cycle the trigger-to-launch latency is " +
             std::to_string(spec.live_ins.size()) + " cycles"});
  }

  // Dead slice instructions: liveness over the *looped* slice, because a
  // p-thread session crosses region iterations — a definition may feed an
  // earlier-pc slice instruction of the next iteration (e.g. the pointer
  // increment at the bottom of a chase loop).
  Program looped = line;
  looped.text.push_back({Opcode::kJ, 0, 0, 0,
                         static_cast<std::int32_t>(looped.PcOf(0))});
  const Cfg cfg = Cfg::Build(looped);
  const LiveVariables live = LiveVariables::Compute(cfg);
  for (std::size_t k = 0; k < line.text.size(); ++k) {
    const Instruction& in = line.text[k];
    if (spec.slice_pcs[k] == spec.dload_pc) continue;
    if (IsLoad(in.op)) continue;  // even a "dead" load still warms the cache
    const auto rd = DestOf(in);
    if (!rd) continue;
    if (live.LiveAfter(static_cast<InstrIndex>(k)).Contains(*rd)) continue;
    diags->push_back({SpecDiagCode::kDeadSliceInstr, spec.slice_pcs[k],
                      "dead slice instruction: result " + RegName(*rd) +
                          " feeds no later slice instruction, not even "
                          "across the region back edge"});
  }
}

}  // namespace

bool VerifyResult::ok() const {
  for (const SpecVerifyResult& s : specs) {
    if (!s.ok()) return false;
  }
  return true;
}

int VerifyResult::errors() const {
  int n = 0;
  for (const SpecVerifyResult& s : specs) {
    for (const SpecDiag& d : s.diags) {
      n += d.severity() == SpecDiagSeverity::kError;
    }
  }
  return n;
}

int VerifyResult::warnings() const {
  int n = 0;
  for (const SpecVerifyResult& s : specs) {
    for (const SpecDiag& d : s.diags) {
      n += d.severity() == SpecDiagSeverity::kWarning;
    }
  }
  return n;
}

std::string VerifyResult::ToString(const std::string& source) const {
  std::string out;
  char buf[64];
  for (const SpecVerifyResult& s : specs) {
    for (const SpecDiag& d : s.diags) {
      std::snprintf(buf, sizeof(buf), ":0x%x: ", d.pc);
      out += source + buf;
      out += d.severity() == SpecDiagSeverity::kError ? "error: " : "warning: ";
      out += d.message;
      out += " [";
      out += SpecDiagCodeName(d.code);
      std::snprintf(buf, sizeof(buf), "] (p-thread @0x%x)\n", s.dload_pc);
      out += buf;
    }
  }
  return out;
}

SpecVerifyResult VerifySpec(const Program& prog, const PThreadSpec& spec,
                            const VerifyOptions& options) {
  SpecVerifyResult res;
  res.dload_pc = spec.dload_pc;
  res.diags = CheckSpecStructure(prog, spec);
  // Dataflow checks assume a decodable, sorted, escape-free slice.
  if (HasSpecErrors(res.diags)) return res;

  const Program line = SliceProgram(prog, spec);
  CheckLiveIns(line, spec, &res.diags);
  if (options.lints) CheckLints(line, spec, options, &res.diags);
  if (options.security) {
    std::vector<SpecDiag> taint = CheckSliceTaint(prog, spec);
    res.diags.insert(res.diags.end(), taint.begin(), taint.end());
  }
  return res;
}

VerifyResult VerifyProgram(const Program& prog, const VerifyOptions& options) {
  VerifyResult result;
  result.specs.reserve(prog.pthreads.size());
  for (const PThreadSpec& spec : prog.pthreads) {
    result.specs.push_back(VerifySpec(prog, spec, options));
  }
  return result;
}

}  // namespace spear
