#include "analysis/dataflow.h"

#include "common/check.h"

namespace spear {

std::vector<RegId> RegSet::ToVector() const {
  std::vector<RegId> out;
  for (int r = 0; r < kNumArchRegs; ++r) {
    if (Contains(static_cast<RegId>(r))) out.push_back(static_cast<RegId>(r));
  }
  return out;
}

RegSet UsesOf(const Instruction& in) {
  RegSet s;
  const SrcRegs srcs = SourcesOf(in);
  for (int i = 0; i < srcs.count; ++i) {
    if (srcs.reg[i] != kRegZero) s.Add(srcs.reg[i]);
  }
  return s;
}

RegSet DefsOf(const Instruction& in) {
  RegSet s;
  if (auto rd = DestOf(in)) s.Add(*rd);
  return s;
}

// ---- live variables ----

LiveVariables LiveVariables::Compute(const Cfg& cfg) {
  LiveVariables lv;
  lv.cfg_ = &cfg;
  const auto n = static_cast<std::size_t>(cfg.num_blocks());
  lv.use_.assign(n, {});
  lv.def_.assign(n, {});
  lv.in_.assign(n, {});
  lv.out_.assign(n, {});

  const Program& prog = cfg.program();
  for (const BasicBlock& bb : cfg.blocks()) {
    const auto id = static_cast<std::size_t>(bb.id);
    // Forward scan: a read is upward-exposed unless a prior instruction in
    // the same block already defined the register.
    for (InstrIndex i = bb.first; i <= bb.last; ++i) {
      const Instruction& in = prog.text[i];
      lv.use_[id] |= UsesOf(in) - lv.def_[id];
      lv.def_[id] |= DefsOf(in);
    }
  }

  // Round-robin in reverse block order (ids follow pc order, so this is
  // roughly post-order) until the fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int b = cfg.num_blocks() - 1; b >= 0; --b) {
      const auto id = static_cast<std::size_t>(b);
      RegSet out;
      for (int s : cfg.block(b).succs) {
        out |= lv.in_[static_cast<std::size_t>(s)];
      }
      const RegSet in = lv.use_[id] | (out - lv.def_[id]);
      if (out == lv.out_[id] && in == lv.in_[id]) continue;
      lv.out_[id] = out;
      lv.in_[id] = in;
      changed = true;
    }
  }
  return lv;
}

RegSet LiveVariables::LiveBefore(InstrIndex index) const {
  const BasicBlock& bb = cfg_->block(cfg_->BlockOf(index));
  RegSet live = out_[static_cast<std::size_t>(bb.id)];
  for (InstrIndex i = bb.last;; --i) {
    const Instruction& in = cfg_->program().text[i];
    live = UsesOf(in) | (live - DefsOf(in));
    if (i == index) return live;
  }
}

RegSet LiveVariables::LiveAfter(InstrIndex index) const {
  const BasicBlock& bb = cfg_->block(cfg_->BlockOf(index));
  if (index == bb.last) return out_[static_cast<std::size_t>(bb.id)];
  return LiveBefore(index + 1);
}

// ---- reaching definitions ----

bool ReachingDefinitions::DefSet::UnionWith(const DefSet& o) {
  SPEAR_CHECK(words_.size() == o.words_.size());
  bool grew = false;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t merged = words_[i] | o.words_[i];
    grew |= merged != words_[i];
    words_[i] = merged;
  }
  return grew;
}

ReachingDefinitions ReachingDefinitions::Compute(const Cfg& cfg) {
  ReachingDefinitions rd;
  rd.cfg_ = &cfg;
  const Program& prog = cfg.program();
  const std::size_t n = prog.text.size();

  rd.def_of_instr_.assign(n, -1);
  rd.by_reg_.assign(kNumArchRegs, {});
  for (std::size_t i = 0; i < n; ++i) {
    if (auto reg = DestOf(prog.text[i])) {
      const int id = static_cast<int>(rd.defs_.size());
      rd.defs_.push_back({static_cast<InstrIndex>(i), *reg});
      rd.def_of_instr_[i] = id;
      rd.by_reg_[*reg].push_back(id);
    }
  }

  const auto nblocks = static_cast<std::size_t>(cfg.num_blocks());
  const DefSet empty(rd.defs_.size());
  rd.in_.assign(nblocks, empty);
  rd.out_.assign(nblocks, empty);

  // Per-block transfer composed instruction by instruction; gen/kill per
  // block is implicit in the in-order application.
  auto flow_block = [&rd, &cfg](int b) {
    DefSet out = rd.in_[static_cast<std::size_t>(b)];
    const BasicBlock& bb = cfg.block(b);
    for (InstrIndex i = bb.first; i <= bb.last; ++i) rd.Transfer(i, &out);
    return out;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (int b = 0; b < cfg.num_blocks(); ++b) {
      const auto id = static_cast<std::size_t>(b);
      DefSet in(rd.defs_.size());
      for (int p : cfg.block(b).preds) {
        in.UnionWith(rd.out_[static_cast<std::size_t>(p)]);
      }
      rd.in_[id] = in;
      DefSet out = flow_block(b);
      if (!(out == rd.out_[id])) {
        rd.out_[id] = std::move(out);
        changed = true;
      }
    }
  }
  return rd;
}

void ReachingDefinitions::Transfer(InstrIndex index, DefSet* set) const {
  const int def = def_of_instr_[index];
  if (def == -1) return;
  for (int other : by_reg_[defs_[static_cast<std::size_t>(def)].reg]) {
    set->Remove(other);
  }
  set->Add(def);
}

ReachingDefinitions::DefSet ReachingDefinitions::ReachingBefore(
    InstrIndex index) const {
  const BasicBlock& bb = cfg_->block(cfg_->BlockOf(index));
  DefSet set = in_[static_cast<std::size_t>(bb.id)];
  for (InstrIndex i = bb.first; i < index; ++i) Transfer(i, &set);
  return set;
}

std::vector<int> ReachingDefinitions::DefsOfRegAt(RegId reg,
                                                  InstrIndex index) const {
  const DefSet reaching = ReachingBefore(index);
  std::vector<int> out;
  for (int def : by_reg_[reg]) {
    if (reaching.Contains(def)) out.push_back(def);
  }
  return out;
}

}  // namespace spear
