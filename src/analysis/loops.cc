#include "analysis/loops.h"

#include <algorithm>

#include "common/check.h"

namespace spear {
namespace {

// Reverse postorder over the CFG from the entry block.
std::vector<int> ReversePostorder(const Cfg& cfg) {
  const int n = cfg.num_blocks();
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<int> post;
  post.reserve(static_cast<std::size_t>(n));
  // Iterative DFS with explicit stack of (block, next-successor-index).
  std::vector<std::pair<int, std::size_t>> stack;
  stack.emplace_back(cfg.entry_block(), 0);
  visited[static_cast<std::size_t>(cfg.entry_block())] = 1;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    const BasicBlock& bb = cfg.block(b);
    if (next < bb.succs.size()) {
      const int s = bb.succs[next++];
      if (!visited[static_cast<std::size_t>(s)]) {
        visited[static_cast<std::size_t>(s)] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      post.push_back(b);
      stack.pop_back();
    }
  }
  std::reverse(post.begin(), post.end());
  return post;
}

}  // namespace

bool LoopForest::Dominates(int a, int b) const {
  // Walk b's dominator chain toward the entry.
  while (b != -1) {
    if (b == a) return true;
    if (b == idom_[static_cast<std::size_t>(b)]) break;  // entry
    b = idom_[static_cast<std::size_t>(b)];
  }
  return b == a;
}

LoopForest LoopForest::Build(const Cfg& cfg) {
  LoopForest lf;
  const int n = cfg.num_blocks();
  lf.idom_.assign(static_cast<std::size_t>(n), -1);
  lf.innermost_.assign(static_cast<std::size_t>(n), -1);

  // Cooper-Harvey-Kennedy iterative dominators over reverse postorder.
  const std::vector<int> rpo = ReversePostorder(cfg);
  std::vector<int> rpo_index(static_cast<std::size_t>(n), -1);
  for (std::size_t i = 0; i < rpo.size(); ++i) {
    rpo_index[static_cast<std::size_t>(rpo[i])] = static_cast<int>(i);
  }
  const int entry = cfg.entry_block();
  lf.idom_[static_cast<std::size_t>(entry)] = entry;

  auto intersect = [&lf, &rpo_index](int a, int b) {
    while (a != b) {
      while (rpo_index[static_cast<std::size_t>(a)] >
             rpo_index[static_cast<std::size_t>(b)]) {
        a = lf.idom_[static_cast<std::size_t>(a)];
      }
      while (rpo_index[static_cast<std::size_t>(b)] >
             rpo_index[static_cast<std::size_t>(a)]) {
        b = lf.idom_[static_cast<std::size_t>(b)];
      }
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (int b : rpo) {
      if (b == entry) continue;
      int new_idom = -1;
      for (int p : cfg.block(b).preds) {
        if (lf.idom_[static_cast<std::size_t>(p)] == -1) continue;
        if (rpo_index[static_cast<std::size_t>(p)] == -1) continue;
        new_idom = new_idom == -1 ? p : intersect(p, new_idom);
      }
      if (new_idom != -1 && lf.idom_[static_cast<std::size_t>(b)] != new_idom) {
        lf.idom_[static_cast<std::size_t>(b)] = new_idom;
        changed = true;
      }
    }
  }

  // Natural loops from back edges; merge bodies sharing a header.
  std::vector<int> loop_of_header(static_cast<std::size_t>(n), -1);
  for (int b = 0; b < n; ++b) {
    if (lf.idom_[static_cast<std::size_t>(b)] == -1) continue;  // unreachable
    for (int s : cfg.block(b).succs) {
      if (!lf.Dominates(s, b)) continue;  // not a back edge
      int loop_id = loop_of_header[static_cast<std::size_t>(s)];
      if (loop_id == -1) {
        loop_id = static_cast<int>(lf.loops_.size());
        Loop loop;
        loop.id = loop_id;
        loop.header = s;
        loop.blocks = {s};
        lf.loops_.push_back(loop);
        loop_of_header[static_cast<std::size_t>(s)] = loop_id;
      }
      // Grow the body backward from the tail.
      Loop& loop = lf.loops_[static_cast<std::size_t>(loop_id)];
      std::vector<int> work = {b};
      while (!work.empty()) {
        const int w = work.back();
        work.pop_back();
        if (std::binary_search(loop.blocks.begin(), loop.blocks.end(), w)) {
          continue;
        }
        loop.blocks.insert(
            std::lower_bound(loop.blocks.begin(), loop.blocks.end(), w), w);
        for (int p : cfg.block(w).preds) work.push_back(p);
      }
    }
  }

  // Nesting: parent = smallest strictly-containing loop.
  for (Loop& loop : lf.loops_) {
    int best = -1;
    for (const Loop& other : lf.loops_) {
      if (other.id == loop.id) continue;
      if (other.blocks.size() <= loop.blocks.size()) continue;
      if (!other.Contains(loop.header)) continue;
      bool contains_all = true;
      for (int b : loop.blocks) {
        if (!other.Contains(b)) {
          contains_all = false;
          break;
        }
      }
      if (!contains_all) continue;
      if (best == -1 ||
          other.blocks.size() <
              lf.loops_[static_cast<std::size_t>(best)].blocks.size()) {
        best = other.id;
      }
    }
    loop.parent = best;
  }
  for (Loop& loop : lf.loops_) {
    int d = 1;
    int p = loop.parent;
    while (p != -1) {
      ++d;
      p = lf.loops_[static_cast<std::size_t>(p)].parent;
    }
    loop.depth = d;
    for (int b : loop.blocks) {
      if (cfg.block(b).has_call) loop.contains_call = true;
    }
  }

  // Innermost loop per block = deepest loop containing it.
  for (const Loop& loop : lf.loops_) {
    for (int b : loop.blocks) {
      const int cur = lf.innermost_[static_cast<std::size_t>(b)];
      if (cur == -1 ||
          lf.loops_[static_cast<std::size_t>(cur)].depth < loop.depth) {
        lf.innermost_[static_cast<std::size_t>(b)] = loop.id;
      }
    }
  }
  return lf;
}

}  // namespace spear
