#include "analysis/cfg.h"

#include <algorithm>

#include "common/check.h"
#include "isa/instruction.h"

namespace spear {

Cfg Cfg::Build(const Program& prog) {
  Cfg cfg;
  cfg.prog_ = &prog;
  const std::size_t n = prog.text.size();
  SPEAR_CHECK(n > 0);

  // 1. Mark leaders.
  std::vector<char> leader(n, 0);
  leader[prog.IndexOf(prog.entry)] = 1;
  for (std::size_t i = 0; i < n; ++i) {
    const Instruction& in = prog.text[i];
    if (!IsControl(in.op)) continue;
    if (HasStaticTarget(in)) {
      const Pc target = StaticTargetOf(in);
      if (prog.ContainsPc(target)) leader[prog.IndexOf(target)] = 1;
    }
    if (i + 1 < n) leader[i + 1] = 1;  // fall-through starts a block
  }

  // 2. Form blocks.
  cfg.block_of_.assign(n, -1);
  for (std::size_t i = 0; i < n;) {
    BasicBlock bb;
    bb.id = static_cast<int>(cfg.blocks_.size());
    bb.first = static_cast<InstrIndex>(i);
    std::size_t j = i;
    while (true) {
      cfg.block_of_[j] = bb.id;
      const Instruction& in = prog.text[j];
      if (IsCall(in.op)) bb.has_call = true;
      const bool ends = IsControl(in.op) || IsHalt(in.op) || j + 1 == n ||
                        leader[j + 1];
      if (ends) break;
      ++j;
    }
    bb.last = static_cast<InstrIndex>(j);
    cfg.blocks_.push_back(bb);
    i = j + 1;
  }

  // 3. Edges.
  auto add_edge = [&cfg](int from, int to) {
    cfg.blocks_[static_cast<std::size_t>(from)].succs.push_back(to);
    cfg.blocks_[static_cast<std::size_t>(to)].preds.push_back(from);
  };
  for (BasicBlock& bb : cfg.blocks_) {
    const Instruction& in = prog.text[bb.last];
    const bool falls_through =
        !IsHalt(in.op) &&
        (!IsControl(in.op) || IsCondBranch(in.op) || IsCall(in.op));
    if (falls_through && bb.last + 1 < n) {
      add_edge(bb.id, cfg.block_of_[bb.last + 1]);
    }
    // Direct targets; calls are intraprocedural fall-through only, and
    // indirect jumps (returns) get no intra-CFG successor.
    if (IsControl(in.op) && HasStaticTarget(in) && !IsCall(in.op)) {
      const Pc target = StaticTargetOf(in);
      if (prog.ContainsPc(target)) {
        add_edge(bb.id, cfg.block_of_[prog.IndexOf(target)]);
      }
    }
  }
  for (BasicBlock& bb : cfg.blocks_) {
    std::sort(bb.succs.begin(), bb.succs.end());
    bb.succs.erase(std::unique(bb.succs.begin(), bb.succs.end()),
                   bb.succs.end());
    std::sort(bb.preds.begin(), bb.preds.end());
    bb.preds.erase(std::unique(bb.preds.begin(), bb.preds.end()),
                   bb.preds.end());
  }

  cfg.entry_block_ = cfg.block_of_[prog.IndexOf(prog.entry)];
  return cfg;
}

std::string Cfg::ToString() const {
  std::string out;
  for (const BasicBlock& bb : blocks_) {
    out += "B" + std::to_string(bb.id) + " [" +
           std::to_string(prog_->PcOf(bb.first)) + ".." +
           std::to_string(prog_->PcOf(bb.last)) + "] ->";
    for (int s : bb.succs) out += " B" + std::to_string(s);
    if (bb.has_call) out += " (call)";
    out += "\n";
  }
  return out;
}

}  // namespace spear
