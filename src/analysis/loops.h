// Dominator analysis and natural-loop detection over the binary CFG —
// the "loop-region identification" half of the paper's CFG drawing tool.
//
// Loops are natural loops of back edges (tail -> header where the header
// dominates the tail); bodies of back edges sharing a header are merged.
// Nesting is computed by body containment, giving each loop a parent and
// a depth, which the region-based prefetching-range algorithm walks
// outward (paper Section 4.2).
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/cfg.h"

namespace spear {

struct Loop {
  int id = -1;
  int header = -1;             // header block id
  std::vector<int> blocks;     // sorted block ids, includes header
  int parent = -1;             // immediately enclosing loop, -1 if top level
  int depth = 1;               // 1 = outermost
  bool contains_call = false;  // any block in the body has a call

  bool Contains(int block_id) const {
    for (int b : blocks) {
      if (b == block_id) return true;
      if (b > block_id) break;
    }
    return false;
  }
};

class LoopForest {
 public:
  static LoopForest Build(const Cfg& cfg);

  const std::vector<Loop>& loops() const { return loops_; }
  int num_loops() const { return static_cast<int>(loops_.size()); }
  const Loop& loop(int id) const { return loops_[static_cast<std::size_t>(id)]; }

  // Innermost loop containing the block, or -1.
  int InnermostAt(int block_id) const {
    return innermost_[static_cast<std::size_t>(block_id)];
  }

  // True when block `a` dominates block `b`.
  bool Dominates(int a, int b) const;

  const std::vector<int>& idom() const { return idom_; }

 private:
  std::vector<Loop> loops_;
  std::vector<int> innermost_;  // block id -> innermost loop id or -1
  std::vector<int> idom_;       // block id -> immediate dominator
};

}  // namespace spear
