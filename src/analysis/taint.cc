#include "analysis/taint.h"

#include <array>
#include <cstdio>
#include <optional>

#include "common/check.h"
#include "isa/instruction.h"
#include "isa/regs.h"

namespace spear {
namespace {

std::string HexPc(Pc pc) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%x", pc);
  return buf;
}

// Abstract state over the unified 64-register namespace: two taint bits per
// register (secret-sourced / load-sourced), the pc of the load that sourced
// the taint (diagnostics only), and a flat constant lattice over the integer
// registers for resolving statically known addresses against the @secret
// ranges. FP registers are never constant; r0 is handled inline as the
// constant 0 and never carries taint.
struct TaintState {
  std::uint64_t secret = 0;
  std::uint64_t spec = 0;
  std::array<Pc, 64> origin{};
  std::array<std::optional<std::uint32_t>, 64> consts{};
};

bool Bit(std::uint64_t mask, RegId r) { return (mask >> (r & 63)) & 1; }
void SetBit(std::uint64_t& mask, RegId r, bool v) {
  const std::uint64_t bit = 1ull << (r & 63);
  mask = v ? (mask | bit) : (mask & ~bit);
}

std::int32_t AsSigned(std::uint32_t v) { return static_cast<std::int32_t>(v); }

// Constant transfer for the integer ALU, mirroring sim/exec.h exactly
// (including the defined-division-by-zero and shift-masking choices).
// Anything not modeled — loads, FP-sourced writes, the link writes control
// ops would make (structurally excluded from slices anyway) — is Unknown.
std::optional<std::uint32_t> EvalInt(const Instruction& in,
                                     std::optional<std::uint32_t> s,
                                     std::optional<std::uint32_t> t) {
  const auto imm = static_cast<std::uint32_t>(in.imm);
  switch (in.op) {
    case Opcode::kLui:
      return imm << 16;
    case Opcode::kAddi:
    case Opcode::kAndi:
    case Opcode::kOri:
    case Opcode::kXori:
    case Opcode::kSlli:
    case Opcode::kSrli:
    case Opcode::kSrai:
    case Opcode::kSlti:
      if (!s) return std::nullopt;
      switch (in.op) {
        case Opcode::kAddi: return *s + imm;
        case Opcode::kAndi: return *s & imm;
        case Opcode::kOri: return *s | imm;
        case Opcode::kXori: return *s ^ imm;
        case Opcode::kSlli: return *s << (imm & 31);
        case Opcode::kSrli: return *s >> (imm & 31);
        case Opcode::kSrai:
          return static_cast<std::uint32_t>(AsSigned(*s) >> (imm & 31));
        case Opcode::kSlti: return AsSigned(*s) < AsSigned(imm) ? 1u : 0u;
        default: return std::nullopt;
      }
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kRem:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kSll:
    case Opcode::kSrl:
    case Opcode::kSra:
    case Opcode::kSlt:
    case Opcode::kSltu:
      if (!s || !t) return std::nullopt;
      switch (in.op) {
        case Opcode::kAdd: return *s + *t;
        case Opcode::kSub: return *s - *t;
        case Opcode::kMul: return *s * *t;
        case Opcode::kDiv:
          if (AsSigned(*t) == 0) return 0u;
          return static_cast<std::uint32_t>(
              static_cast<std::int64_t>(AsSigned(*s)) / AsSigned(*t));
        case Opcode::kRem:
          if (AsSigned(*t) == 0) return 0u;
          return static_cast<std::uint32_t>(
              static_cast<std::int64_t>(AsSigned(*s)) % AsSigned(*t));
        case Opcode::kAnd: return *s & *t;
        case Opcode::kOr: return *s | *t;
        case Opcode::kXor: return *s ^ *t;
        case Opcode::kSll: return *s << (*t & 31);
        case Opcode::kSrl: return *s >> (*t & 31);
        case Opcode::kSra:
          return static_cast<std::uint32_t>(AsSigned(*s) >> (*t & 31));
        case Opcode::kSlt: return AsSigned(*s) < AsSigned(*t) ? 1u : 0u;
        case Opcode::kSltu: return *s < *t ? 1u : 0u;
        default: return std::nullopt;
      }
    default:
      return std::nullopt;
  }
}

std::optional<std::uint32_t> ConstOf(const TaintState& st, RegId r) {
  if (r == kRegZero) return 0u;
  if (IsFpReg(r)) return std::nullopt;
  return st.consts[r];
}

// One instruction's transfer function. When `diags` is non-null this is the
// reporting pass: sink hits are emitted, most severe first, one per load.
void Transfer(const Program& prog, const Instruction& in, Pc pc,
              const TaintOptions& options, TaintState& st,
              std::vector<SpecDiag>* diags) {
  const SrcRegs srcs = SourcesOf(in);
  bool secret_src = false;
  bool spec_src = false;
  Pc src_origin = 0;
  for (int i = 0; i < srcs.count; ++i) {
    const RegId r = srcs.reg[i];
    if (r == kRegZero) continue;
    if (Bit(st.secret, r)) {
      secret_src = true;
      src_origin = st.origin[r];
    }
    if (Bit(st.spec, r)) {
      spec_src = true;
      if (src_origin == 0) src_origin = st.origin[r];
    }
  }

  const auto rd = DestOf(in);

  if (IsLoad(in.op)) {
    const RegId base = in.rs;
    const bool addr_secret = base != kRegZero && Bit(st.secret, base);
    const bool addr_spec = base != kRegZero && Bit(st.spec, base);
    if (diags != nullptr && addr_secret) {
      diags->push_back(
          {SpecDiagCode::kSecretTaintedAddress, pc,
           "speculative load address in " + RegName(base) +
               " derives from a @secret-region load at " +
               HexPc(st.origin[base]) + "; its cache footprint leaks the secret"});
    } else if (diags != nullptr && addr_spec) {
      diags->push_back(
          {SpecDiagCode::kSpecTaintedAddress, pc,
           "speculative load address in " + RegName(base) +
               " derives from a value loaded speculatively at " +
               HexPc(st.origin[base])});
    }

    // Source rules (may-analysis): a statically resolved address is
    // checked against the @secret ranges exactly; an unresolvable address
    // may point anywhere, so once the program declares any secret region
    // every such load conservatively sources secret taint. Programs
    // without @secret annotations never see it. Under the default policy
    // any loaded value is additionally load-tainted, and address taint
    // flows through to the result either way (mem[secret] is as secret as
    // the index).
    const std::optional<std::uint32_t> addr_base = ConstOf(st, base);
    const bool secret_hit =
        !prog.secret_ranges.empty() &&
        (!addr_base.has_value() ||
         prog.IsSecretAddr(*addr_base + static_cast<std::uint32_t>(in.imm),
                           GetOpInfo(in.op).access_bytes));
    if (rd) {
      SetBit(st.secret, *rd, secret_hit || addr_secret);
      SetBit(st.spec, *rd, options.spec_load_sources || addr_spec);
      st.origin[*rd] = (secret_hit || options.spec_load_sources)
                           ? pc
                           : (base != kRegZero ? st.origin[base] : pc);
      if (!IsFpReg(*rd)) st.consts[*rd] = std::nullopt;
    }
    return;
  }

  if (!rd) return;  // nop/out; stores and control are structurally excluded

  SetBit(st.secret, *rd, secret_src);
  SetBit(st.spec, *rd, spec_src);
  st.origin[*rd] = (secret_src || spec_src) ? src_origin : 0;
  if (!IsFpReg(*rd)) {
    st.consts[*rd] =
        EvalInt(in, ConstOf(st, in.rs),
                srcs.count > 1 ? ConstOf(st, in.rt) : std::nullopt);
  }
}

}  // namespace

std::vector<SpecDiag> CheckSliceTaint(const Program& prog,
                                      const PThreadSpec& spec,
                                      const TaintOptions& options) {
  std::vector<Instruction> line;
  line.reserve(spec.slice_pcs.size());
  for (Pc pc : spec.slice_pcs) line.push_back(prog.At(pc));

  auto run = [&](TaintState& st, std::vector<SpecDiag>* diags) {
    for (std::size_t k = 0; k < line.size(); ++k) {
      Transfer(prog, line[k], spec.slice_pcs[k], options, st, diags);
    }
  };

  // A p-thread session crosses region iterations (same back edge the dead-
  // instruction lint models), so taint at the end of one pass feeds the
  // entry of the next: iterate to a fixpoint over the 128 taint bits.
  // Constants stay Unknown at entry — a value is only known if the slice
  // re-establishes it each iteration, which is exactly when relying on it
  // is sound.
  TaintState entry;
  for (;;) {
    TaintState st = entry;
    run(st, nullptr);
    const std::uint64_t nsecret = entry.secret | st.secret;
    const std::uint64_t nspec = entry.spec | st.spec;
    if (nsecret == entry.secret && nspec == entry.spec) break;
    for (RegId r = 0; r < 64; ++r) {
      const bool was = Bit(entry.secret, r) || Bit(entry.spec, r);
      const bool now = Bit(nsecret, r) || Bit(nspec, r);
      if (!was && now) entry.origin[r] = st.origin[r];
    }
    entry.secret = nsecret;
    entry.spec = nspec;
  }

  std::vector<SpecDiag> diags;
  TaintState st = entry;
  run(st, &diags);
  return diags;
}

}  // namespace spear
