// Static taint-dataflow pass over p-thread slices: the analysis half of the
// speculative-leakage story (ROADMAP item 5).
//
// A p-thread executes speculatively and its loads warm the D-cache, so the
// *addresses* it touches are observable through timing even though no value
// ever reaches architectural state. If an address is computed from data the
// program considers secret, the slice is a ready-made Spectre gadget. The
// pass runs a forward taint analysis over the straight-line slice (with the
// region back edge folded in, matching the looped-liveness lint):
//
//   sources — loads from a declared `@secret` region (Program::secret_ranges,
//             resolved via intra-slice constant propagation mirroring
//             sim/exec.h), and, by default, *every* load the slice executes,
//             since any speculatively loaded value is attacker-influenced;
//   propagation — through every int/FP ALU op, conversions included, with
//             strong updates (a constant overwrite kills taint);
//   sink    — a load whose address register is tainted. Secret-sourced
//             taint raises kSecretTaintedAddress (error); load-sourced
//             taint raises kSpecTaintedAddress (warning).
//
// Run by analysis/verifier.h under VerifyOptions::security, surfaced as
// `spearverify --security` / `spearc --security`.
#pragma once

#include <vector>

#include "isa/program.h"
#include "isa/spec_check.h"

namespace spear {

struct TaintOptions {
  // Treat every load in the slice as a taint source, not only loads that
  // provably read a @secret range. Any value a p-thread loads arrives on a
  // speculative path, so an address derived from it is a leakage channel
  // regardless of labelling; turning this off limits the pass to declared
  // secrets.
  bool spec_load_sources = true;
};

// Taint analysis over one slice. The caller must have established the
// structural contract first (CheckSpecStructure with no errors): the pass
// assumes every slice pc decodes and that the slice is store- and
// control-free. Returns only security diagnostics (IsSecurityDiag).
std::vector<SpecDiag> CheckSliceTaint(const Program& prog,
                                      const PThreadSpec& spec,
                                      const TaintOptions& options = {});

}  // namespace spear
