// Reusable static dataflow framework over the binary CFG.
//
// Two classic iterative solvers, both computed to a fixpoint with per-block
// gen/kill sets over the unified 64-register namespace:
//
//  * LiveVariables (backward, may): which registers are read before being
//    written along some path from a program point. Powers the p-thread
//    live-in contract check and the dead-slice-instruction lint.
//  * ReachingDefinitions (forward, may): which static definitions may
//    supply the value of a register at a program point. Powers the slice
//    self-containment check (every read covered by a live-in or an
//    in-slice definition).
//
// Convention shared with the slicer: r0 is hardwired to zero, so reads of
// r0 are not uses and writes to r0 are not definitions.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "analysis/cfg.h"
#include "common/types.h"
#include "isa/instruction.h"

namespace spear {

// Dense register set: the unified id space is exactly 64 wide, one word.
class RegSet {
 public:
  constexpr RegSet() = default;

  static RegSet Of(std::initializer_list<RegId> regs) {
    RegSet s;
    for (RegId r : regs) s.Add(r);
    return s;
  }

  void Add(RegId r) { bits_ |= Bit(r); }
  void Remove(RegId r) { bits_ &= ~Bit(r); }
  bool Contains(RegId r) const { return (bits_ & Bit(r)) != 0; }
  bool Empty() const { return bits_ == 0; }
  int Count() const { return __builtin_popcountll(bits_); }

  RegSet operator|(RegSet o) const { return RegSet(bits_ | o.bits_); }
  RegSet operator&(RegSet o) const { return RegSet(bits_ & o.bits_); }
  RegSet operator-(RegSet o) const { return RegSet(bits_ & ~o.bits_); }
  RegSet& operator|=(RegSet o) {
    bits_ |= o.bits_;
    return *this;
  }
  bool operator==(const RegSet&) const = default;

  std::vector<RegId> ToVector() const;  // ascending register ids

 private:
  explicit constexpr RegSet(std::uint64_t bits) : bits_(bits) {}
  static constexpr std::uint64_t Bit(RegId r) { return 1ull << (r & 63); }

  std::uint64_t bits_ = 0;
};

// Registers an instruction reads / writes, under the r0 convention above.
RegSet UsesOf(const Instruction& in);
RegSet DefsOf(const Instruction& in);

class LiveVariables {
 public:
  static LiveVariables Compute(const Cfg& cfg);

  RegSet live_in(int block) const { return in_[static_cast<std::size_t>(block)]; }
  RegSet live_out(int block) const { return out_[static_cast<std::size_t>(block)]; }
  // Per-block gen/kill, exposed for tests: `use` is upward-exposed reads,
  // `def` is everything the block writes.
  RegSet use(int block) const { return use_[static_cast<std::size_t>(block)]; }
  RegSet def(int block) const { return def_[static_cast<std::size_t>(block)]; }

  // Registers live immediately before / after one instruction. Recomputed
  // by a backward walk of the containing block: O(block size), fine for
  // verification and diagnostics, not for a per-cycle pipeline path.
  RegSet LiveBefore(InstrIndex index) const;
  RegSet LiveAfter(InstrIndex index) const;

 private:
  const Cfg* cfg_ = nullptr;
  std::vector<RegSet> use_, def_, in_, out_;
};

// One static definition: instruction `instr` writes register `reg`.
struct Definition {
  InstrIndex instr = 0;
  RegId reg = 0;
};

class ReachingDefinitions {
 public:
  // Set of definition ids (indices into definitions()).
  class DefSet {
   public:
    explicit DefSet(std::size_t num_defs = 0)
        : words_((num_defs + 63) / 64, 0) {}

    void Add(int def) { words_[Word(def)] |= Bit(def); }
    void Remove(int def) { words_[Word(def)] &= ~Bit(def); }
    bool Contains(int def) const {
      return (words_[Word(def)] & Bit(def)) != 0;
    }
    // Unions `o` in; returns true when this set grew.
    bool UnionWith(const DefSet& o);
    bool operator==(const DefSet&) const = default;

   private:
    static std::size_t Word(int def) { return static_cast<std::size_t>(def) / 64; }
    static std::uint64_t Bit(int def) {
      return 1ull << (static_cast<std::size_t>(def) % 64);
    }
    std::vector<std::uint64_t> words_;
  };

  static ReachingDefinitions Compute(const Cfg& cfg);

  const std::vector<Definition>& definitions() const { return defs_; }
  const DefSet& reach_in(int block) const {
    return in_[static_cast<std::size_t>(block)];
  }
  const DefSet& reach_out(int block) const {
    return out_[static_cast<std::size_t>(block)];
  }

  // Definitions reaching the program point just before `index` executes.
  DefSet ReachingBefore(InstrIndex index) const;
  // Ids of definitions of `reg` among those reaching `index`; empty means
  // a read of `reg` there is not covered by any definition in the CFG.
  std::vector<int> DefsOfRegAt(RegId reg, InstrIndex index) const;

 private:
  // Applies one instruction's transfer function (kill other defs of the
  // written register, gen this one) to `set`.
  void Transfer(InstrIndex index, DefSet* set) const;

  const Cfg* cfg_ = nullptr;
  std::vector<Definition> defs_;
  std::vector<int> def_of_instr_;          // instr index -> def id or -1
  std::vector<std::vector<int>> by_reg_;   // reg -> def ids, ascending
  std::vector<DefSet> in_, out_;
};

}  // namespace spear
