// Control-flow graph construction from a SPEAR binary (paper Figure 4,
// module 1: "CFG drawing tool"). Works directly on decoded instructions:
// leaders are the entry point, targets of direct branches/jumps, and the
// fall-throughs of control instructions.
//
// Calls (jal/jalr) are treated intraprocedurally: the call site's block
// has a fall-through edge to the return point and the block is flagged
// `has_call` (the region selector refuses to grow regions across calls).
// Indirect jumps (jr) end a block with no intra-CFG successors (they are
// returns under the software convention).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "isa/program.h"

namespace spear {

struct BasicBlock {
  int id = -1;
  InstrIndex first = 0;  // index of first instruction
  InstrIndex last = 0;   // index of last instruction (inclusive)
  std::vector<int> succs;
  std::vector<int> preds;
  bool has_call = false;

  std::size_t InstrCount() const { return last - first + 1; }
};

class Cfg {
 public:
  static Cfg Build(const Program& prog);

  const Program& program() const { return *prog_; }
  const std::vector<BasicBlock>& blocks() const { return blocks_; }
  const BasicBlock& block(int id) const { return blocks_[static_cast<std::size_t>(id)]; }
  int num_blocks() const { return static_cast<int>(blocks_.size()); }

  // Block containing the given instruction index / pc.
  int BlockOf(InstrIndex index) const {
    return block_of_[static_cast<std::size_t>(index)];
  }
  int BlockOfPc(Pc pc) const { return BlockOf(prog_->IndexOf(pc)); }

  int entry_block() const { return entry_block_; }

  std::string ToString() const;  // debug listing

 private:
  const Program* prog_ = nullptr;
  std::vector<BasicBlock> blocks_;
  std::vector<int> block_of_;  // instruction index -> block id
  int entry_block_ = 0;
};

}  // namespace spear
