#include "cpu/core.h"

#include "isa/opcode.h"

namespace spear {

using telemetry::TraceEvent;
using telemetry::TraceUid;

// ---------------------------------------------------------------------------
// Dispatch-time architectural state with wrong-path overlay.
//
// On the correct path, reads/writes go straight to the in-order dispatch
// register file and memory image. After a mispredicted branch dispatches,
// spec_mode_ routes writes into an epoch-tagged overlay that is discarded
// at recovery, so wrong-path execution can never corrupt correct-path
// state. Recovery is an epoch bump, not a clear — see core.h.
// ---------------------------------------------------------------------------

std::uint32_t Core::MainState::ReadInt(RegId reg) {
  if (c->spec_mode_ && c->spec_ireg_epoch_[reg] == c->spec_epoch_) {
    return c->spec_ireg_val_[reg];
  }
  return c->iregs_[reg];
}

void Core::MainState::WriteInt(RegId reg, std::uint32_t v) {
  if (c->spec_mode_) {
    c->spec_ireg_val_[reg] = v;
    c->spec_ireg_epoch_[reg] = c->spec_epoch_;
  } else {
    c->iregs_[reg] = v;
  }
}

double Core::MainState::ReadFp(RegId reg) {
  const int f = FpIndex(reg);
  if (c->spec_mode_ && c->spec_freg_epoch_[f] == c->spec_epoch_) {
    return c->spec_freg_val_[f];
  }
  return c->fregs_[f];
}

void Core::MainState::WriteFp(RegId reg, double v) {
  if (c->spec_mode_) {
    const int f = FpIndex(reg);
    c->spec_freg_val_[f] = v;
    c->spec_freg_epoch_[f] = c->spec_epoch_;
  } else {
    c->fregs_[FpIndex(reg)] = v;
  }
}

std::uint8_t Core::MainState::LoadU8(Addr a) {
  if (c->spec_mode_ && c->spec_mem_count_ != 0) {
    std::uint8_t v;
    if (c->SpecMemFind(a, &v)) return v;
  }
  return c->mem_.ReadU8(a);
}

std::uint32_t Core::MainState::LoadU32(Addr a) {
  // Until the wrong path stores something, the overlay is empty and loads
  // can take the word-wide fast path on the dispatch memory image.
  if (!c->spec_mode_ || c->spec_mem_count_ == 0) return c->mem_.ReadU32(a);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(LoadU8(a + static_cast<Addr>(i)))
         << (8 * i);
  }
  return v;
}

double Core::MainState::LoadF64(Addr a) {
  if (!c->spec_mode_ || c->spec_mem_count_ == 0) return c->mem_.ReadF64(a);
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(LoadU8(a + static_cast<Addr>(i)))
            << (8 * i);
  }
  double v;
  __builtin_memcpy(&v, &bits, sizeof(v));
  return v;
}

void Core::MainState::StoreU8(Addr a, std::uint8_t v) {
  if (c->spec_mode_) {
    c->SpecMemInsert(a, v);
  } else {
    c->mem_.WriteU8(a, v);
  }
}

void Core::MainState::StoreU32(Addr a, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    StoreU8(a + static_cast<Addr>(i), static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Core::MainState::StoreF64(Addr a, double v) {
  std::uint64_t bits;
  __builtin_memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    StoreU8(a + static_cast<Addr>(i),
            static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

// Wrong-path store overlay: open addressing with linear probing. A slot
// whose epoch differs from spec_epoch_ is empty, both for probe
// termination and for insertion, which is what makes recovery an O(1)
// epoch bump. Entries are never deleted within an epoch, so the probe
// chain invariant holds.
namespace {
inline std::size_t SpecMemHash(Addr a) {
  std::uint32_t h = a * 2654435761u;  // Knuth multiplicative
  h ^= h >> 16;
  return h;
}
}  // namespace

bool Core::SpecMemFind(Addr a, std::uint8_t* out) const {
  const std::size_t mask = spec_mem_.size() - 1;
  std::size_t i = SpecMemHash(a) & mask;
  while (spec_mem_[i].epoch == spec_epoch_) {
    if (spec_mem_[i].addr == a) {
      *out = spec_mem_[i].val;
      return true;
    }
    i = (i + 1) & mask;
  }
  return false;
}

void Core::SpecMemInsert(Addr a, std::uint8_t v) {
  // Grow at 50% load so probes always terminate at an empty slot.
  if ((spec_mem_count_ + 1) * 2 > spec_mem_.size()) SpecMemGrow();
  const std::size_t mask = spec_mem_.size() - 1;
  std::size_t i = SpecMemHash(a) & mask;
  while (spec_mem_[i].epoch == spec_epoch_) {
    if (spec_mem_[i].addr == a) {
      spec_mem_[i].val = v;
      return;
    }
    i = (i + 1) & mask;
  }
  spec_mem_[i] = SpecMemSlot{a, spec_epoch_, v};
  ++spec_mem_count_;
}

void Core::SpecMemGrow() {
  std::vector<SpecMemSlot> old = std::move(spec_mem_);
  spec_mem_.assign(old.empty() ? 1024 : old.size() * 2, SpecMemSlot{});
  const std::size_t mask = spec_mem_.size() - 1;
  for (const SpecMemSlot& s : old) {
    if (s.epoch != spec_epoch_) continue;  // stale epochs stay dead
    std::size_t i = SpecMemHash(s.addr) & mask;
    while (spec_mem_[i].epoch == spec_epoch_) i = (i + 1) & mask;
    spec_mem_[i] = s;
  }
}

// ---------------------------------------------------------------------------
// Construction.
// ---------------------------------------------------------------------------

Core::Core(const Program& prog, const CoreConfig& config,
           BlockCache* shared_block_cache)
    : prog_(prog),
      config_(config),
      hier_(config.mem),
      bpred_(config.bpred),
      stride_(config.stride_prefetch),
      ifq_(config.ifq_size),
      fetch_pc_(prog.entry),
      bcache_(shared_block_cache != nullptr ? shared_block_cache
                                            : &own_bcache_),
      ruu_(config.ruu_size),
      pt_(config.spear.enabled ? PThreadTable(prog.pthreads)
                               : PThreadTable()),
      pctx_(&mem_),
      pruu_(config.spear.pthread_ruu_size) {
  iregs_.fill(0);
  fregs_.fill(0.0);
  // Match the functional emulator's ABI (same relocation rules, or the
  // lockstep cosim would diverge on the first sp-relative access).
  iregs_[kRegSp] = InitialStackPointer(prog);
  mem_.LoadProgram(prog);
  // Bake the pre-decoder's PT marks into the decoded records exactly when
  // the per-instruction pre-decoder would consult the PT.
  bcache_->Attach(prog_,
                  config_.spear.enabled && !pt_.empty() ? &pt_ : nullptr);
  sched_.SetSlotCount(ruu_.capacity());
  psched_.SetSlotCount(pruu_.capacity());
  rename_.Reset();
  prename_.Reset();
}

void Core::InstallWarmState(const WarmState& ws) {
  SPEAR_CHECK(now_ == 0 && stats_.committed == 0 && ifq_.empty() &&
              ruu_.empty());
  // Checkpoints (SPCK) carry no scheduler state on purpose: install is
  // only legal before the first cycle, where the event scheduler is
  // reconstructible as "all empty". Keep that contract checked.
  SPEAR_CHECK(sched_.empty() && psched_.empty());
  SPEAR_CHECK(prog_.ContainsPc(ws.pc));
  iregs_ = ws.iregs;
  fregs_ = ws.fregs;
  fetch_pc_ = ws.pc;
  mem_.CopyFrom(ws.mem);
  SPEAR_CHECK(hier_.l1d().RestoreState(ws.l1d));
  SPEAR_CHECK(hier_.l2().RestoreState(ws.l2));
  SPEAR_CHECK(bpred_.RestoreState(ws.bpred));
}

// ---------------------------------------------------------------------------
// Cycle loop. Stages run in reverse pipeline order, sim-outorder style.
// ---------------------------------------------------------------------------

void Core::StepCycle() {
  ++now_;
  stats_.cycles = now_;

  Commit();
  if (halted_ || cosim_diverged_) return;
  PThreadRetire();
  Writeback();
  Issue();
  SpearTriggerTick();
  const int extracted = pe_active_ ? ExtractPThread() : 0;
  const std::uint32_t budget =
      config_.decode_width > static_cast<std::uint32_t>(extracted)
          ? config_.decode_width - static_cast<std::uint32_t>(extracted)
          : 0;
  Dispatch(budget);
  Fetch();
  telem_.ifq_occupancy.Add(ifq_.size());
}

RunResult Core::Run(std::uint64_t max_instrs, std::uint64_t max_cycles) {
  Cycle last_commit_cycle = now_;
  std::uint64_t last_committed = stats_.committed;
  while (!halted_ && !cosim_diverged_ && stats_.committed < max_instrs &&
         now_ < max_cycles) {
    StepCycle();
    if (stats_.committed != last_committed) {
      last_committed = stats_.committed;
      last_commit_cycle = now_;
    }
    SPEAR_CHECK(now_ - last_commit_cycle < config_.commit_watchdog_cycles);
  }
  RunResult r;
  r.cycles = now_;
  r.instructions = stats_.committed;
  r.halted = halted_;
  return r;
}

// ---------------------------------------------------------------------------
// Commit (main thread).
// ---------------------------------------------------------------------------

// Builds a CommitRecord from a retiring entry and delivers it to the
// attached checker. Returns false (and latches cosim_diverged_) on
// divergence, in which case the entry must NOT retire: the run is over and
// the diverging instruction stays at the RUU head for post-mortems.
bool Core::DeliverCommit(const RuuEntry& e) {
  if constexpr (!cosim::kCosimCompiled) return true;
  cosim::CommitRecord rec;
  rec.pc = e.pc;
  rec.instr = e.instr;
  rec.tid = e.tid;
  rec.exec = e.exec;
  rec.int_dest = e.cosim_int_dest;
  rec.fp_dest = e.cosim_fp_dest;
  rec.store_u32 = e.cosim_store_u32;
  rec.store_f64 = e.cosim_store_f64;
  rec.pthread_arch_clobber = e.cosim_arch_clobber;
  rec.cycle = now_;
  rec.ruu_occupancy = static_cast<std::uint32_t>(ruu_.size());
  rec.ifq_occupancy = static_cast<std::uint32_t>(ifq_.size());
  if (cosim_->OnCommit(rec)) return true;
  cosim_diverged_ = true;
  return false;
}

// Bounded committed-PC ring (oracle tests): grow until the cap, then
// overwrite the oldest slot.
void Core::RecordTraceCommit(Pc pc) {
  if (commit_trace_.size() < commit_trace_cap_) {
    commit_trace_.push_back(pc);
    return;
  }
  commit_trace_[commit_trace_head_] = pc;
  commit_trace_head_ = (commit_trace_head_ + 1) % commit_trace_cap_;
  ++commit_trace_dropped_;
}

std::vector<Pc> Core::commit_trace() const {
  std::vector<Pc> out;
  out.reserve(commit_trace_.size());
  out.insert(out.end(), commit_trace_.begin() + commit_trace_head_,
             commit_trace_.end());
  out.insert(out.end(), commit_trace_.begin(),
             commit_trace_.begin() + commit_trace_head_);
  return out;
}

void Core::Commit() {
  for (std::uint32_t n = 0; n < config_.commit_width && !ruu_.empty(); ++n) {
    RuuEntry& e = ruu_.Front();
    if (!e.completed) break;
    SPEAR_CHECK(!e.wrongpath);  // wrong-path entries are squashed at recovery
    if (cosim_ != nullptr && !DeliverCommit(e)) return;

    if (IsCondBranch(e.instr.op)) {
      bpred_.Update(e.pc, e.instr, e.exec.taken, e.exec.next_pc);
      ++stats_.committed_cond_branches;
      ++stats_.committed_branches;
      if (e.pred_taken == e.exec.taken) ++stats_.bpred_dir_correct;
    } else if (IsControl(e.instr.op)) {
      bpred_.Update(e.pc, e.instr, true, e.exec.next_pc);
      ++stats_.committed_branches;
    }
    if (e.exec.is_load) ++stats_.committed_loads;
    if (e.exec.is_store) ++stats_.committed_stores;
    if (e.exec.out_value) outputs_.push_back(*e.exec.out_value);
    if (trace_commits_) RecordTraceCommit(e.pc);
    ++stats_.committed;
    SPEAR_TRACE_EVENT(trace_, TraceEvent::kCommit, now_,
                      TraceUid(e.fetch_seq, kMainThread), e.pc, kMainThread);

    const bool halt = e.exec.halted;
    ruu_.PopFront();
    if (halt) {
      halted_ = true;
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// P-thread retirement. The p-thread has no architectural side effects; its
// entries drain in order once completed. Retiring the triggering d-load
// ends pre-execution mode (paper Section 3.3).
// ---------------------------------------------------------------------------

void Core::PThreadRetire() {
  while (!pruu_.empty() && pruu_.Front().completed) {
    // Audit the p-thread safety invariant: retires are delivered to the
    // checker too (tid = kPThread), which asserts no main architectural
    // state was touched. The oracle is NOT stepped for these.
    if (cosim_ != nullptr && !DeliverCommit(pruu_.Front())) return;
    const bool was_trigger = pruu_.Front().is_trigger_dload;
    SPEAR_TRACE_EVENT(trace_, TraceEvent::kPtRetire, now_,
                      TraceUid(pruu_.Front().fetch_seq, kPThread),
                      pruu_.Front().pc, kPThread);
    pruu_.PopFront();
    if (was_trigger) {
      EndPreExec(/*completed=*/true);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Writeback: drain this cycle's completion events (marking completions and
// waking dependents); resolve at most one mispredicted branch per cycle
// (the oldest completed one), triggering recovery.
// ---------------------------------------------------------------------------

void Core::DrainCompletions(EventScheduler& sched,
                            CircularBuffer<RuuEntry>& buf, ThreadId tid) {
  std::vector<SchedRef>& bucket = completion_scratch_;
  sched.TakeCompletionsInto(now_, bucket);
  // Everything the old per-cycle writeback scan would have walked and the
  // event list didn't touch counts as saved scan work.
  stats_.sched_scan_saved +=
      buf.size() > bucket.size() ? buf.size() - bucket.size() : 0;
  for (const SchedRef r : bucket) {
    if (!buf.SlotLive(r.slot) || buf.Slot(r.slot).seq != r.seq) {
      continue;  // squashed after issue; slot possibly reused
    }
    RuuEntry& e = buf.Slot(r.slot);
    SPEAR_DCHECK(e.issued && !e.completed && e.complete_cycle == now_);
    e.completed = true;
    SPEAR_TRACE_EVENT(trace_, TraceEvent::kComplete, now_,
                      TraceUid(e.fetch_seq, tid), e.pc, tid);
    WakeConsumers(sched, buf, r.slot, e.seq);
    if (tid == kMainThread && e.mispredict && !e.recovery_done) {
      sched.pending_recovery().push_back(r);
    }
  }
}

void Core::WakeConsumers(EventScheduler& sched, CircularBuffer<RuuEntry>& buf,
                         std::uint32_t producer_slot,
                         std::uint64_t producer_seq) {
  // A slot's list holds only its occupants' waiters: the current
  // producer's (seq match) plus possibly a squashed predecessor's. A
  // squash kills everything younger than the squashed producer, so those
  // stale waiters' consumers are dead too and the whole list drains here.
  std::vector<EventScheduler::Waiter>& list = sched.waiters(producer_slot);
  if (list.empty()) return;
  for (const EventScheduler::Waiter w : list) {
    if (w.producer_seq != producer_seq) continue;  // stale (squashed) waiter
    if (!buf.SlotLive(w.consumer_slot) ||
        buf.Slot(w.consumer_slot).seq != w.consumer_seq) {
      continue;  // consumer squashed while waiting
    }
    RuuEntry& c = buf.Slot(w.consumer_slot);
    SPEAR_DCHECK(c.pending_deps > 0);
    ++stats_.sched_wakeups;
    if (--c.pending_deps == 0) {
      sched.InsertReady({w.consumer_seq, w.consumer_slot});
      ++stats_.sched_ready_enqueued;
    }
  }
  list.clear();
}

void Core::Writeback() {
  DrainCompletions(psched_, pruu_, kPThread);
  DrainCompletions(sched_, ruu_, kMainThread);

  // Resolve the oldest completed, still-unrecovered mispredict (one per
  // cycle). Stale refs — branches squashed by an older branch's recovery
  // — are dropped here.
  std::vector<SchedRef>& pend = sched_.pending_recovery();
  if (!pend.empty()) {
    std::size_t out = 0;
    for (std::size_t i = 0; i < pend.size(); ++i) {
      const SchedRef r = pend[i];
      if (!ruu_.SlotLive(r.slot)) continue;
      const RuuEntry& e = ruu_.Slot(r.slot);
      if (e.seq != r.seq || e.recovery_done) continue;
      pend[out++] = r;
    }
    pend.resize(out);
    if (out > 0) {
      std::size_t oldest = 0;
      for (std::size_t i = 1; i < out; ++i) {
        if (pend[i].seq < pend[oldest].seq) oldest = i;
      }
      const SchedRef r = pend[oldest];
      pend.erase(pend.begin() + static_cast<std::ptrdiff_t>(oldest));
      RecoverFromMispredict(r.slot);
    }
  }
}

void Core::RecoverFromMispredict(std::size_t branch_slot) {
  RuuEntry& branch = ruu_.Slot(branch_slot);
  branch.recovery_done = true;
  ++stats_.mispredict_recoveries;

  // Squash everything younger than the branch (all wrong-path). The slot
  // maps straight to the branch's queue position — no head-to-tail rescan.
  const std::size_t idx = ruu_.LogicalIndex(branch_slot);
  stats_.squashed_wrongpath += ruu_.size() - idx - 1;
  if constexpr (telemetry::kTraceCompiled) {
    if (trace_ != nullptr) {
      for (std::size_t l = idx + 1; l < ruu_.size(); ++l) {
        const RuuEntry& s = ruu_.At(l);
        trace_->Record(TraceEvent::kSquash, now_,
                       TraceUid(s.fetch_seq, kMainThread), s.pc, kMainThread);
      }
    }
  }
  ruu_.PopBack(ruu_.size() - idx - 1);

  // Discard the wrong-path overlay and rebuild rename state. Bumping the
  // epoch orphans every overlay slot at once; nothing is walked.
  spec_mode_ = false;
  ++spec_epoch_;
  spec_mem_count_ = 0;
  if constexpr (taint::kTaintCompiled) {
    // The observer's wrong-path taint overlay dies with the squash.
    if (taint_ != nullptr) taint_->OnWrongPathEnd();
  }
  RebuildRenameMap();
  // Drop scheduler references killed by the squash so they cannot pile up
  // across recoveries. (In-flight completion events for squashed entries
  // are validated lazily when their bucket fires — each issued entry owns
  // exactly one event, so those cannot accumulate.)
  PurgeDeadRefs(sched_, ruu_);

  // Redirect the front end.
  stats_.ifq_flushed += ifq_.size();
  if constexpr (telemetry::kTraceCompiled) {
    if (trace_ != nullptr) {
      for (std::size_t l = 0; l < ifq_.size(); ++l) {
        const IfqEntry& fe = ifq_.At(l);
        trace_->Record(TraceEvent::kSquash, now_,
                       TraceUid(fe.seq, kMainThread), fe.pc, kMainThread);
      }
    }
  }
  ifq_.Clear();
  fetch_pc_ = branch.exec.next_pc;
  dispatch_halted_ = false;

  // The IFQ flush destroys the in-flight p-thread session. (Letting a
  // captured session run to completion instead was measured and is
  // *worse*: the completion tail blocks re-arming, and a fresh session
  // over the post-recovery window prefetches more than the stale one
  // finishes — see EXPERIMENTS.md, design notes.)
  if (trigger_state_ != TriggerState::kNormal) {
    ++stats_.triggers_aborted;
    EndPreExec(/*completed=*/false);
  }
}

void Core::RebuildRenameMap() {
  rename_.Reset();
  for (std::size_t l = 0; l < ruu_.size(); ++l) {
    const RuuEntry& e = ruu_.At(l);
    if (auto rd = DestOf(e.instr)) {
      rename_.slot[*rd] = static_cast<std::int32_t>(ruu_.PhysicalIndex(l));
      rename_.seq[*rd] = e.seq;
    }
  }
}

void Core::PurgeDeadRefs(EventScheduler& sched, CircularBuffer<RuuEntry>& buf) {
  auto live = [&buf](std::uint32_t slot, std::uint64_t seq) {
    return buf.SlotLive(slot) && buf.Slot(slot).seq == seq;
  };
  std::vector<SchedRef>& ready = sched.ready();
  std::size_t out = 0;
  for (std::size_t i = 0; i < ready.size(); ++i) {
    if (live(ready[i].slot, ready[i].seq)) ready[out++] = ready[i];
  }
  ready.resize(out);
  for (std::size_t s = 0; s < buf.capacity(); ++s) {
    std::vector<EventScheduler::Waiter>& list = sched.waiters(s);
    out = 0;
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (live(list[i].consumer_slot, list[i].consumer_seq)) {
        list[out++] = list[i];
      }
    }
    list.resize(out);
  }
}

// ---------------------------------------------------------------------------
// Issue: p-thread entries get scheduling priority (paper Section 3.3);
// remaining bandwidth goes to the main thread in age order.
// ---------------------------------------------------------------------------

bool Core::DepsReady(const RuuEntry& e) const {
  const CircularBuffer<RuuEntry>& buf = e.tid == kPThread ? pruu_ : ruu_;
  for (int i = 0; i < e.ndeps; ++i) {
    const RuuEntry::SrcDep& d = e.dep[i];
    if (d.slot < 0) continue;
    const auto slot = static_cast<std::size_t>(d.slot);
    if (!buf.SlotLive(slot)) continue;  // producer committed/retired
    const RuuEntry& p = buf.Slot(slot);
    if (p.seq != d.producer_seq) continue;  // slot reused by younger entry
    if (!p.completed) return false;
  }
  return true;
}

bool Core::AcquireFu(FuClass fu, ThreadId tid) {
  FuUse& use = fu_use_[(config_.spear.separate_fu && tid == kPThread) ? 1 : 0];
  switch (fu) {
    case FuClass::kNone:
      return true;
    case FuClass::kIntAlu:
      if (use.int_alu < config_.fu.int_alu) {
        ++use.int_alu;
        return true;
      }
      return false;
    case FuClass::kIntMul:
    case FuClass::kIntDiv:
      if (use.int_muldiv < config_.fu.int_muldiv) {
        ++use.int_muldiv;
        return true;
      }
      return false;
    case FuClass::kFpAlu:
      if (use.fp_alu < config_.fu.fp_alu) {
        ++use.fp_alu;
        return true;
      }
      return false;
    case FuClass::kFpMul:
    case FuClass::kFpDiv:
      if (use.fp_muldiv < config_.fu.fp_muldiv) {
        ++use.fp_muldiv;
        return true;
      }
      return false;
    case FuClass::kMemRead:
    case FuClass::kMemWrite:
      if (use.mem_ports < config_.fu.mem_ports) {
        ++use.mem_ports;
        return true;
      }
      return false;
  }
  return false;
}

std::uint32_t Core::ExecLatency(const RuuEntry& e) {
  const FuLatencies& lat = config_.lat;
  switch (GetOpInfo(e.instr.op).fu) {
    case FuClass::kNone:
      return 1;
    case FuClass::kIntAlu:
      return lat.int_alu;
    case FuClass::kIntMul:
      return lat.int_mul;
    case FuClass::kIntDiv:
      return lat.int_div;
    case FuClass::kFpAlu:
      return lat.fp_alu;
    case FuClass::kFpMul:
      return lat.fp_mul;
    case FuClass::kFpDiv:
      return lat.fp_div;
    case FuClass::kMemRead: {
      if (e.tid == kPThread) ++stats_.pthread_loads_issued;
      const std::uint32_t latency =
          hier_.AccessData(e.exec.mem_addr, /*write=*/false, e.tid, now_)
              .latency;
      telem_.access_latency.Add(latency);
      if constexpr (taint::kTaintCompiled) {
        // The demand access only; stride-prefetch probes below are cache
        // warming, not program-observable footprint attribution.
        if (taint_ != nullptr) {
          taint_->OnCacheAccess(e.exec.mem_addr, e.tid == kPThread,
                                e.wrongpath);
        }
      }
      if (config_.stride_prefetch.enabled && e.tid == kMainThread) {
        // Prefetch traffic is attributed to the helper (kPThread) stats
        // slot so Figure-8-style miss accounting stays demand-only.
        Addr targets[8];
        const int n = stride_.Observe(e.pc, e.exec.mem_addr, targets, 8);
        for (int i = 0; i < n; ++i) {
          hier_.AccessData(targets[i], /*write=*/false, kPThread, now_);
          ++stats_.stride_prefetches;
        }
      }
      return latency;
    }
    case FuClass::kMemWrite: {
      // Stores complete after address generation; the cache write happens
      // now. P-thread stores never touch memory or cache (private buffer).
      if (e.tid == kMainThread) {
        hier_.AccessData(e.exec.mem_addr, /*write=*/true, e.tid, now_);
        if constexpr (taint::kTaintCompiled) {
          if (taint_ != nullptr) {
            taint_->OnCacheAccess(e.exec.mem_addr, /*pthread=*/false,
                                  e.wrongpath);
          }
        }
      }
      return 1;
    }
  }
  return 1;
}

void Core::IssueReady(EventScheduler& sched, CircularBuffer<RuuEntry>& buf) {
  std::vector<SchedRef>& ready = sched.ready();
  stats_.sched_scan_saved +=
      buf.size() > ready.size() ? buf.size() - ready.size() : 0;
  if (ready.empty()) return;
  std::size_t out = 0;
  for (std::size_t i = 0; i < ready.size(); ++i) {
    const SchedRef r = ready[i];
    if (!buf.SlotLive(r.slot) || buf.Slot(r.slot).seq != r.seq) continue;
    RuuEntry& e = buf.Slot(r.slot);
    SPEAR_DCHECK(!e.issued && !e.completed && e.pending_deps == 0);
    SPEAR_DCHECK(DepsReady(e));
    // BasicBlocker-style fence: a load is speculative until every older
    // branch has resolved, so it may not touch the cache before then. Main-
    // thread loads wait on older main-RUU branches; p-thread loads are
    // speculative by construction and wait on the whole main window.
    if (config_.fence_spec_loads && IsLoad(e.instr.op)) {
      const std::size_t limit =
          e.tid == kPThread ? ruu_.size() : ruu_.LogicalIndex(r.slot);
      bool blocked = false;
      for (std::size_t l = 0; l < limit; ++l) {
        const RuuEntry& older = ruu_.At(l);
        if (IsControl(older.instr.op) && !older.completed) {
          blocked = true;
          break;
        }
      }
      if (blocked) {
        ++stats_.fence_load_stalls;
        ready[out++] = r;  // stays ready; retried next cycle
        continue;
      }
    }
    // Width exhaustion short-circuits before the FU probe, mirroring the
    // old scan's early return: FU slots are not consumed past the width.
    if (issued_this_cycle_ >= config_.issue_width ||
        !AcquireFu(GetOpInfo(e.instr.op).fu, e.tid)) {
      ready[out++] = r;  // stays ready; retried next cycle
      continue;
    }
    e.issued = true;
    e.complete_cycle = now_ + ExecLatency(e);
    sched.ScheduleCompletion(now_, e.complete_cycle, r);
    ++issued_this_cycle_;
    SPEAR_TRACE_EVENT(trace_, TraceEvent::kIssue, now_,
                      TraceUid(e.fetch_seq, e.tid), e.pc, e.tid);
  }
  ready.resize(out);
}

void Core::Issue() {
  fu_use_[0] = FuUse{};
  fu_use_[1] = FuUse{};
  issued_this_cycle_ = 0;
  telem_.sched_ready_occupancy.Add(sched_.ready().size() +
                                   psched_.ready().size());

  // P-thread issue waits for the deterministic-state drain and live-in
  // copy to finish; until then extracted entries sit dormant in the
  // p-thread RUU. Once running, the p-thread has scheduling priority.
  if (trigger_state_ == TriggerState::kPreExec) IssueReady(psched_, pruu_);
  IssueReady(sched_, ruu_);
}

// ---------------------------------------------------------------------------
// SPEAR trigger state machine (paper Section 3.2).
// ---------------------------------------------------------------------------

void Core::ArmTrigger(int spec_index, std::uint64_t dload_seq) {
  SPEAR_CHECK(trigger_state_ == TriggerState::kNormal);
  active_spec_ = spec_index;
  trigger_dload_seq_ = dload_seq;
  trigger_dispatch_seq_ = dispatch_seq_;  // drain-to-trigger commit point
  trigger_captured_ = false;
  ++stats_.triggers_fired;
  SPEAR_TRACE_EVENT(trace_, TraceEvent::kTrigger, now_,
                    TraceUid(dload_seq, kMainThread),
                    pt_.spec(spec_index).dload_pc, kMainThread,
                    static_cast<std::uint16_t>(spec_index));
  switch (config_.spear.drain_policy) {
    case TriggerDrainPolicy::kStallDispatch:
      // Live-ins copied after the full drain; PE activates at pre-exec.
      trigger_state_ = TriggerState::kDraining;
      break;
    case TriggerDrainPolicy::kDrainToTrigger:
      SnapshotLiveIns();
      ActivatePe();
      trigger_state_ = TriggerState::kDraining;
      break;
    case TriggerDrainPolicy::kImmediate:
      SnapshotLiveIns();
      ActivatePe();
      BeginCopy();
      break;
  }
}

// Copies the live-in registers from the in-order dispatch state into the
// p-thread context (the value transfer; the per-register cycle cost is
// modeled by the kCopying countdown).
void Core::SnapshotLiveIns() {
  pctx_.Reset();
  prename_.Reset();
  const PThreadSpec& spec = pt_.spec(active_spec_);
  for (RegId reg : spec.live_ins) {
    if (IsFpReg(reg)) {
      pctx_.CopyLiveInFp(reg, fregs_[FpIndex(reg)]);
    } else {
      pctx_.CopyLiveInInt(reg, reg == kRegZero ? 0 : iregs_[reg]);
    }
  }
  copy_remaining_ = static_cast<std::uint32_t>(spec.live_ins.size()) *
                    config_.spear.copy_cycles_per_reg;
  if constexpr (taint::kTaintCompiled) {
    // The p-thread session inherits exactly the copied registers' taint.
    if (taint_ != nullptr) taint_->OnPThreadSessionStart(spec.live_ins);
  }
  SPEAR_TRACE_EVENT(trace_, TraceEvent::kLiveInCopy, now_,
                    TraceUid(trigger_dload_seq_, kMainThread), spec.dload_pc,
                    kMainThread,
                    static_cast<std::uint16_t>(spec.live_ins.size()));
}

// Starts PE scanning at the current IFQ head. Extraction may begin right
// away (entries buffer in the p-thread RUU); p-thread *issue* is gated on
// reaching kPreExec.
void Core::ActivatePe() {
  pe_active_ = true;
  pe_scan_seq_ = ifq_.empty() ? fetch_seq_ : ifq_.Front().seq;
}

void Core::BeginCopy() {
  trigger_state_ = TriggerState::kCopying;
  if (copy_remaining_ == 0) BeginPreExec();
}

void Core::BeginPreExec() {
  trigger_state_ = TriggerState::kPreExec;
  if (config_.spear.drain_policy == TriggerDrainPolicy::kStallDispatch) {
    // Dispatch was held, so the trigger window is intact; scan from head.
    ActivatePe();
  }
  if (!pe_active_ && !trigger_captured_) {
    // The triggering d-load already left the IFQ without being captured.
    ++stats_.triggers_aborted;
    EndPreExec(/*completed=*/false);
  }
}

void Core::EndPreExec(bool completed) {
  if constexpr (telemetry::kTraceCompiled) {
    if (trace_ != nullptr) {
      const Pc dload_pc = active_spec_ >= 0 ? pt_.spec(active_spec_).dload_pc : 0;
      trace_->Record(TraceEvent::kSessionEnd, now_,
                     TraceUid(trigger_dload_seq_, kMainThread), dload_pc,
                     kMainThread, completed ? 1 : 0);
      // Whatever is still in the p-thread RUU is discarded with the session.
      for (std::size_t l = 0; l < pruu_.size(); ++l) {
        const RuuEntry& e = pruu_.At(l);
        trace_->Record(TraceEvent::kSquash, now_,
                       TraceUid(e.fetch_seq, kPThread), e.pc, kPThread);
      }
    }
  }
  telem_.session_len.Add(session_extracted_);
  session_extracted_ = 0;
  if constexpr (taint::kTaintCompiled) {
    if (taint_ != nullptr) taint_->OnPThreadSessionEnd();
  }
  trigger_state_ = TriggerState::kNormal;
  pe_active_ = false;
  active_spec_ = -1;
  pruu_.Clear();
  psched_.Reset();  // every p-thread scheduler ref died with the buffer
  pctx_.Reset();
  copy_remaining_ = 0;
  if (completed) {
    ++stats_.preexec_sessions_completed;
    if (config_.spear.chaining_trigger) chain_pending_ = true;
  }
}

void Core::SpearTriggerTick() {
  switch (trigger_state_) {
    case TriggerState::kNormal:
      break;
    case TriggerState::kPreExec:
      ++stats_.preexec_cycles;
      break;
    case TriggerState::kDraining: {
      ++stats_.drain_cycles;
      bool drained;
      if (config_.spear.drain_policy == TriggerDrainPolicy::kStallDispatch) {
        drained = ruu_.empty();
        if (drained) SnapshotLiveIns();  // iregs_ are now committed values
      } else {
        // Commit has passed the trigger-time dispatch point.
        drained = ruu_.empty() || ruu_.Front().seq > trigger_dispatch_seq_;
      }
      if (drained) BeginCopy();
      break;
    }
    case TriggerState::kCopying:
      ++stats_.copy_cycles;
      if (copy_remaining_ > 0) --copy_remaining_;
      if (copy_remaining_ == 0) BeginPreExec();
      break;
  }
}

// ---------------------------------------------------------------------------
// P-thread extraction (the PE). Scans the IFQ from the p-thread head,
// pulling up to issue_width/2 marked entries per cycle into the p-thread
// context; clears each indicator; stops at the triggering d-load.
// ---------------------------------------------------------------------------

int Core::ExtractPThread() {
  int extracted = 0;
  const int limit = static_cast<int>(config_.ExtractPerCycle());

  while (extracted < limit && pe_active_) {
    if (ifq_.empty()) break;
    const std::uint64_t front_seq = ifq_.Front().seq;
    if (pe_scan_seq_ < front_seq) {
      // Every IFQ pop advances the scan pointer via MaybeExtractOnPop, so
      // the pointer can never trail the head; if it does, an IFQ pop
      // bypassed the PE. Count + resync in release, loud in debug.
      SPEAR_DCHECK(false);
      ++stats_.pe_scan_resyncs;
      pe_scan_seq_ = front_seq;
    }
    const std::uint64_t offset = pe_scan_seq_ - front_seq;
    if (offset >= ifq_.size()) break;  // caught up with fetch; resume later
    IfqEntry& en = ifq_.At(static_cast<std::size_t>(offset));

    if (!en.pthread_indicator) {
      ++pe_scan_seq_;
      continue;  // scanning unmarked entries is free (indicator bits)
    }
    if (pruu_.full()) break;  // retry next cycle

    en.pthread_indicator = false;
    ++pe_scan_seq_;
    const bool is_trigger = en.seq == trigger_dload_seq_;
    if (IsControl(en.instr.op)) {
      // Slices are data-flow only; a marked control instruction is skipped
      // rather than pre-executed (the p-thread follows the IFQ's path).
      if (is_trigger) pe_active_ = false;
      continue;
    }
    DispatchOne(pruu_, en, kPThread);
    if (is_trigger) {
      pruu_.Back().is_trigger_dload = true;
      trigger_captured_ = true;
      pe_active_ = false;  // extraction complete; wait for retirement
    }
    ++extracted;
    ++stats_.pthread_extracted;
    ++session_extracted_;
    SPEAR_TRACE_EVENT(trace_, TraceEvent::kPtExtract, now_,
                      TraceUid(en.seq, kPThread), en.pc, kPThread);
  }
  return extracted;
}

// ---------------------------------------------------------------------------
// Dispatch (decode/rename/functional-execute/RUU allocate).
// ---------------------------------------------------------------------------

void Core::DispatchOne(CircularBuffer<RuuEntry>& buffer, const IfqEntry& fe,
                       ThreadId tid) {
  RuuEntry e;
  e.instr = fe.instr;
  e.pc = fe.pc;
  e.tid = tid;
  e.seq = tid == kPThread ? ++pdispatch_seq_ : ++dispatch_seq_;
  e.fetch_seq = fe.seq;
  e.predicted_next = fe.predicted_next;
  e.pred_taken = fe.pred_taken;

  RenameMap& rm = tid == kPThread ? prename_ : rename_;
  EventScheduler& sc = tid == kPThread ? psched_ : sched_;
  const SrcRegs srcs = SourcesOf(fe.instr);
  for (int i = 0; i < srcs.count; ++i) {
    const RegId reg = srcs.reg[i];
    if (reg == kRegZero) continue;
    if (rm.slot[reg] >= 0) {
      e.dep[e.ndeps].slot = rm.slot[reg];
      e.dep[e.ndeps].producer_seq = rm.seq[reg];
      // A dep is outstanding only while its producer still occupies the
      // renamed slot and has not completed; anything else is already
      // architectural (same predicate the old per-cycle poll applied).
      const auto pslot = static_cast<std::size_t>(rm.slot[reg]);
      if (buffer.SlotLive(pslot) && buffer.Slot(pslot).seq == rm.seq[reg] &&
          !buffer.Slot(pslot).completed) {
        ++e.pending_deps;
      }
      ++e.ndeps;
    }
  }

  if (tid == kMainThread) {
    e.wrongpath = spec_mode_;
    MainState st{this};
    e.exec = ExecuteInstruction(st, fe.instr, fe.pc);
    if (cosim::kCosimCompiled && cosim_ != nullptr && !e.wrongpath) {
      // Lockstep capture: correct-path dispatch just updated the in-order
      // register file and memory image, so reading them back here yields
      // exactly the values this instruction committed architecturally.
      if (const auto rd = DestOf(fe.instr)) {
        if (IsFpReg(*rd)) {
          e.cosim_fp_dest = fregs_[FpIndex(*rd)];
        } else {
          e.cosim_int_dest = iregs_[*rd];
        }
      }
      if (e.exec.is_store) {
        switch (fe.instr.op) {
          case Opcode::kSw:
            e.cosim_store_u32 = mem_.ReadU32(e.exec.mem_addr);
            break;
          case Opcode::kSb:
            e.cosim_store_u32 = mem_.ReadU8(e.exec.mem_addr);
            break;
          case Opcode::kStf:
            e.cosim_store_f64 = mem_.ReadF64(e.exec.mem_addr);
            break;
          default:
            break;
        }
      }
    }
    if (!e.wrongpath && e.exec.next_pc != fe.predicted_next) {
      e.mispredict = true;
      spec_mode_ = true;  // younger dispatches go to the overlay
    }
    if (IsHalt(fe.instr.op)) dispatch_halted_ = true;
    ++stats_.dispatched_main;
    if (e.wrongpath) ++stats_.dispatched_wrongpath;
    SPEAR_TRACE_EVENT(trace_, TraceEvent::kDispatch, now_,
                      TraceUid(fe.seq, kMainThread), fe.pc, kMainThread,
                      e.wrongpath ? 1 : 0);
  } else if (cosim::kCosimCompiled && cosim_ != nullptr) {
    // P-thread invariant probe: snapshot the would-be destination in the
    // *main* register file around the p-thread execution. PThreadContext
    // routes all effects into its private registers and store buffer, so
    // any change here is a safety-invariant violation the checker flags at
    // retire. (P-thread stores structurally cannot reach dispatch memory;
    // a leak there would surface as a main-thread store/dest divergence.)
    const auto rd = DestOf(fe.instr);
    std::uint32_t before_int = 0;
    double before_fp = 0.0;
    if (rd) {
      if (IsFpReg(*rd)) {
        before_fp = fregs_[FpIndex(*rd)];
      } else {
        before_int = iregs_[*rd];
      }
    }
    e.exec = ExecuteInstruction(pctx_, fe.instr, fe.pc);
    if (rd) {
      if (IsFpReg(*rd)) {
        // Bitwise: a NaN parked in the main register file must still
        // compare equal to itself.
        std::uint64_t was, now;
        __builtin_memcpy(&was, &before_fp, sizeof(was));
        __builtin_memcpy(&now, &fregs_[FpIndex(*rd)], sizeof(now));
        e.cosim_arch_clobber = was != now;
      } else {
        e.cosim_arch_clobber = iregs_[*rd] != before_int;
      }
    }
  } else {
    e.exec = ExecuteInstruction(pctx_, fe.instr, fe.pc);
  }

  if constexpr (taint::kTaintCompiled) {
    if (taint_ != nullptr) {
      if (tid == kPThread) {
        taint_->OnPThreadExec(fe.instr, e.exec);
      } else {
        taint_->OnMainExec(fe.instr, e.exec, e.wrongpath);
      }
    }
  }

  const std::size_t slot = buffer.PushBack(e);
  // Register one wakeup-table waiter per outstanding operand; an entry
  // with none is ready the moment it dispatches.
  for (int i = 0; i < e.ndeps; ++i) {
    const RuuEntry::SrcDep& d = e.dep[i];
    if (d.slot < 0) continue;
    const auto pslot = static_cast<std::size_t>(d.slot);
    if (buffer.SlotLive(pslot) && buffer.Slot(pslot).seq == d.producer_seq &&
        !buffer.Slot(pslot).completed) {
      sc.waiters(pslot).push_back(
          {d.producer_seq, e.seq, static_cast<std::uint32_t>(slot)});
    }
  }
  if (e.pending_deps == 0) {
    sc.InsertReady({e.seq, static_cast<std::uint32_t>(slot)});
    ++stats_.sched_ready_enqueued;
  }
  if (auto rd = DestOf(fe.instr)) {
    rm.slot[*rd] = static_cast<std::int32_t>(slot);
    rm.seq[*rd] = e.seq;
  }
}

// A marked entry leaving the IFQ through main dispatch passes the shared
// decoder, where the PE can still capture it for the p-thread (dual
// delivery). If the p-thread RUU has no room the instance is lost — the
// main thread is executing it anyway, so only prefetch reach is affected,
// never correctness.
void Core::MaybeExtractOnPop(const IfqEntry& fe) {
  if (!pe_active_) return;
  if (fe.seq < pe_scan_seq_) return;  // PE already scanned this entry
  // Advance the scan pointer past every unscanned pop, marked or not.
  // Unmarked pops used to skip this (the early indicator check), leaving
  // the pointer trailing the IFQ head whenever the PE stalled — the
  // trigger for the old silent resync clamp in ExtractPThread.
  pe_scan_seq_ = fe.seq + 1;
  if (!fe.pthread_indicator) return;
  const bool is_trigger = fe.seq == trigger_dload_seq_;
  if (IsControl(fe.instr.op)) {
    if (is_trigger) pe_active_ = false;
    return;
  }
  if (pruu_.full()) {
    ++stats_.pthread_lost_to_dispatch;
    if (is_trigger) {
      // The terminating d-load can never retire from the p-thread RUU now;
      // tear the session down.
      pe_active_ = false;
      ++stats_.triggers_aborted;
      EndPreExec(/*completed=*/false);
    }
    return;
  }
  DispatchOne(pruu_, fe, kPThread);
  ++stats_.pthread_extracted;
  ++session_extracted_;
  SPEAR_TRACE_EVENT(trace_, TraceEvent::kPtExtract, now_,
                    TraceUid(fe.seq, kPThread), fe.pc, kPThread);
  if (is_trigger) {
    pruu_.Back().is_trigger_dload = true;
    trigger_captured_ = true;
    pe_active_ = false;
  }
}

void Core::Dispatch(std::uint32_t budget) {
  if (config_.spear.drain_policy == TriggerDrainPolicy::kStallDispatch &&
      (trigger_state_ == TriggerState::kDraining ||
       trigger_state_ == TriggerState::kCopying)) {
    // Stall-dispatch trigger policy: main dispatch holds so the RUU reaches
    // a deterministic (fully committed) state for the live-in copy.
    ++stats_.dispatch_stall_trigger;
    return;
  }
  while (budget > 0 && !dispatch_halted_ && !ifq_.empty()) {
    if (ruu_.full()) {
      ++stats_.dispatch_stall_ruu_full;
      break;
    }
    const IfqEntry fe = ifq_.PopFront();
    MaybeExtractOnPop(fe);
    DispatchOne(ruu_, fe, kMainThread);
    --budget;
  }
}

// ---------------------------------------------------------------------------
// Fetch + pre-decode. Follows the predicted path, breaks after a
// predicted-taken control instruction, marks p-thread indicators and
// detects trigger conditions (d-load pre-decoded AND IFQ at least half
// full).
// ---------------------------------------------------------------------------

void Core::Fetch() {
  for (std::uint32_t n = 0; n < config_.fetch_width && !ifq_.full(); ++n) {
    IfqEntry fe;
    bool is_control;
    if (kBlockCacheEnabled) {
      // One decoded-record lookup replaces the per-fetch text containment
      // check, text-table read, opcode-table probe and the two PT hash
      // probes of the pre-decoder — the marks were baked in at decode.
      const DecodedInstr* rec = bcache_->Record(fetch_pc_);
      if (rec == nullptr) break;  // stalled (wrong path / end)
      fe.instr = rec->instr;
      is_control = rec->is_control();
      fe.pthread_indicator = rec->pthread_indicator;
      fe.dload_spec = rec->dload_spec;
    } else {
      // Per-instruction probe path (-DSPEAR_ENABLE_BLOCK_CACHE=0).
      if (!prog_.ContainsPc(fetch_pc_)) break;  // stalled (wrong path / end)
      fe.instr = prog_.At(fetch_pc_);
      is_control = IsControl(fe.instr.op);
      if (config_.spear.enabled && !pt_.empty()) {  // pre-decoder (PD)
        fe.pthread_indicator = pt_.InAnySlice(fetch_pc_);
        fe.dload_spec = pt_.DloadSpec(fetch_pc_);
      }
    }

    fe.pc = fetch_pc_;
    fe.seq = fetch_seq_++;
    bool taken = false;
    if (is_control) {
      const BranchPrediction p = bpred_.Predict(fetch_pc_, fe.instr);
      fe.pred_taken = p.taken;
      fe.predicted_next = p.target;
      taken = p.taken;
    } else {
      fe.predicted_next = fetch_pc_ + kInstrBytes;
    }

    ifq_.PushBack(fe);
    ++stats_.fetched;
    SPEAR_TRACE_EVENT(trace_, TraceEvent::kFetch, now_,
                      TraceUid(fe.seq, kMainThread), fe.pc, kMainThread);

    if (fe.dload_spec >= 0 && config_.spear.enabled) {
      if (trigger_state_ == TriggerState::kNormal &&
          (ifq_.size() >= config_.TriggerOccupancy() || chain_pending_)) {
        if (chain_pending_ && ifq_.size() < config_.TriggerOccupancy()) {
          ++stats_.chained_triggers;
        }
        chain_pending_ = false;
        ArmTrigger(fe.dload_spec, fe.seq);
      } else if (trigger_state_ == TriggerState::kNormal) {
        ++stats_.triggers_suppressed_occupancy;
      }
    }

    fetch_pc_ = fe.predicted_next;
    if (taken) break;  // one taken control flow break per cycle
  }
}

}  // namespace spear
