#include "cpu/core.h"

#include "isa/opcode.h"

namespace spear {

using telemetry::TraceEvent;
using telemetry::TraceUid;

// ---------------------------------------------------------------------------
// Dispatch-time architectural state with wrong-path overlay.
//
// On the correct path, reads/writes go straight to the in-order dispatch
// register file and memory image of the owning thread context. After a
// mispredicted branch dispatches, spec_mode routes writes into an
// epoch-tagged overlay that is discarded at recovery, so wrong-path
// execution can never corrupt correct-path state. Recovery is an epoch
// bump, not a clear — see core.h.
// ---------------------------------------------------------------------------

std::uint32_t Core::MainState::ReadInt(RegId reg) {
  if (t->spec_mode && t->spec_ireg_epoch[reg] == t->spec_epoch) {
    return t->spec_ireg_val[reg];
  }
  return t->iregs[reg];
}

void Core::MainState::WriteInt(RegId reg, std::uint32_t v) {
  if (t->spec_mode) {
    t->spec_ireg_val[reg] = v;
    t->spec_ireg_epoch[reg] = t->spec_epoch;
  } else {
    t->iregs[reg] = v;
  }
}

double Core::MainState::ReadFp(RegId reg) {
  const int f = FpIndex(reg);
  if (t->spec_mode && t->spec_freg_epoch[f] == t->spec_epoch) {
    return t->spec_freg_val[f];
  }
  return t->fregs[f];
}

void Core::MainState::WriteFp(RegId reg, double v) {
  if (t->spec_mode) {
    const int f = FpIndex(reg);
    t->spec_freg_val[f] = v;
    t->spec_freg_epoch[f] = t->spec_epoch;
  } else {
    t->fregs[FpIndex(reg)] = v;
  }
}

std::uint8_t Core::MainState::LoadU8(Addr a) {
  if (t->spec_mode && t->spec_mem_count != 0) {
    std::uint8_t v;
    if (c->SpecMemFind(*t, a, &v)) return v;
  }
  return t->mem.ReadU8(a);
}

std::uint32_t Core::MainState::LoadU32(Addr a) {
  // Until the wrong path stores something, the overlay is empty and loads
  // can take the word-wide fast path on the dispatch memory image.
  if (!t->spec_mode || t->spec_mem_count == 0) return t->mem.ReadU32(a);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(LoadU8(a + static_cast<Addr>(i)))
         << (8 * i);
  }
  return v;
}

double Core::MainState::LoadF64(Addr a) {
  if (!t->spec_mode || t->spec_mem_count == 0) return t->mem.ReadF64(a);
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(LoadU8(a + static_cast<Addr>(i)))
            << (8 * i);
  }
  double v;
  __builtin_memcpy(&v, &bits, sizeof(v));
  return v;
}

void Core::MainState::StoreU8(Addr a, std::uint8_t v) {
  if (t->spec_mode) {
    c->SpecMemInsert(*t, a, v);
  } else {
    t->mem.WriteU8(a, v);
  }
}

void Core::MainState::StoreU32(Addr a, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    StoreU8(a + static_cast<Addr>(i), static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Core::MainState::StoreF64(Addr a, double v) {
  std::uint64_t bits;
  __builtin_memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    StoreU8(a + static_cast<Addr>(i),
            static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

// Wrong-path store overlay: open addressing with linear probing. A slot
// whose epoch differs from spec_epoch is empty, both for probe
// termination and for insertion, which is what makes recovery an O(1)
// epoch bump. Entries are never deleted within an epoch, so the probe
// chain invariant holds.
namespace {
inline std::size_t SpecMemHash(Addr a) {
  std::uint32_t h = a * 2654435761u;  // Knuth multiplicative
  h ^= h >> 16;
  return h;
}
}  // namespace

bool Core::SpecMemFind(const ThreadCtx& t, Addr a, std::uint8_t* out) const {
  const std::size_t mask = t.spec_mem.size() - 1;
  std::size_t i = SpecMemHash(a) & mask;
  while (t.spec_mem[i].epoch == t.spec_epoch) {
    if (t.spec_mem[i].addr == a) {
      *out = t.spec_mem[i].val;
      return true;
    }
    i = (i + 1) & mask;
  }
  return false;
}

void Core::SpecMemInsert(ThreadCtx& t, Addr a, std::uint8_t v) {
  // Grow at 50% load so probes always terminate at an empty slot.
  if ((t.spec_mem_count + 1) * 2 > t.spec_mem.size()) SpecMemGrow(t);
  const std::size_t mask = t.spec_mem.size() - 1;
  std::size_t i = SpecMemHash(a) & mask;
  while (t.spec_mem[i].epoch == t.spec_epoch) {
    if (t.spec_mem[i].addr == a) {
      t.spec_mem[i].val = v;
      return;
    }
    i = (i + 1) & mask;
  }
  t.spec_mem[i] = SpecMemSlot{a, t.spec_epoch, v};
  ++t.spec_mem_count;
}

void Core::SpecMemGrow(ThreadCtx& t) {
  std::vector<SpecMemSlot> old = std::move(t.spec_mem);
  t.spec_mem.assign(old.empty() ? 1024 : old.size() * 2, SpecMemSlot{});
  const std::size_t mask = t.spec_mem.size() - 1;
  for (const SpecMemSlot& s : old) {
    if (s.epoch != t.spec_epoch) continue;  // stale epochs stay dead
    std::size_t i = SpecMemHash(s.addr) & mask;
    while (t.spec_mem[i].epoch == t.spec_epoch) i = (i + 1) & mask;
    t.spec_mem[i] = s;
  }
}

// ---------------------------------------------------------------------------
// Construction.
// ---------------------------------------------------------------------------

Core::ThreadCtx::ThreadCtx(const Program& p, std::uint32_t ifq_cap,
                           std::uint32_t ruu_cap, std::uint32_t idx)
    : prog(&p), index(idx), ifq(ifq_cap), fetch_pc(p.entry), ruu(ruu_cap) {
  iregs.fill(0);
  fregs.fill(0.0);
  // Match the functional emulator's ABI (same relocation rules, or the
  // lockstep cosim would diverge on the first sp-relative access).
  iregs[kRegSp] = InitialStackPointer(p);
  mem.LoadProgram(p);
  sched.SetSlotCount(ruu.capacity());
  rename.Reset();
}

Core::Core(const Program& prog, const CoreConfig& config,
           BlockCache* shared_block_cache)
    : Core(std::vector<const Program*>{&prog}, config, shared_block_cache) {}

Core::Core(const std::vector<const Program*>& progs, const CoreConfig& config,
           BlockCache* shared_block_cache)
    : config_(config),
      num_main_(static_cast<std::uint32_t>(progs.size())),
      hier_(config.mem),
      bpred_(config.bpred),
      stride_(config.stride_prefetch),
      pctx_(nullptr),
      pruu_(config.spear.pthread_ruu_size) {
  SPEAR_CHECK(!progs.empty() && progs.size() < 250);
  SPEAR_CHECK(shared_block_cache == nullptr || progs.size() == 1);
  // Each context gets an equal share of the front-end queue and the RUU.
  // At N=1 the shares are the full structures, preserving the historical
  // single-thread geometry exactly.
  const auto n = static_cast<std::uint32_t>(progs.size());
  const std::uint32_t ifq_cap = config.ifq_size / n;
  const std::uint32_t ruu_cap = config.ruu_size / n;
  SPEAR_CHECK(ifq_cap >= 1 && ruu_cap >= 1);
  threads_.reserve(progs.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    threads_.push_back(
        std::make_unique<ThreadCtx>(*progs[i], ifq_cap, ruu_cap, i));
    ThreadCtx& t = *threads_.back();
    t.pt = config.spear.enabled ? PThreadTable(progs[i]->pthreads)
                                : PThreadTable();
    t.bcache = (shared_block_cache != nullptr && i == 0) ? shared_block_cache
                                                         : &t.own_bcache;
    // Bake the pre-decoder's PT marks into the decoded records exactly
    // when the per-instruction pre-decoder would consult the PT.
    t.bcache->Attach(*t.prog,
                     config_.spear.enabled && !t.pt.empty() ? &t.pt : nullptr);
  }
  // The p-thread reads its session owner's memory; rebind happens at every
  // live-in snapshot. Seed with thread 0 (the only owner at N=1).
  pctx_.RebindMemory(&threads_[0]->mem);
  psched_.SetSlotCount(pruu_.capacity());
  prename_.Reset();
  // One cache-counter slot per main thread + one for the p-thread.
  hier_.l1d().ConfigureThreadSlots(num_main_ + 1);
  hier_.l2().ConfigureThreadSlots(num_main_ + 1);
}

void Core::InstallWarmState(const WarmState& ws) {
  SPEAR_CHECK(num_main_ == 1);
  ThreadCtx& t = *threads_[0];
  SPEAR_CHECK(now_ == 0 && stats_.committed == 0 && t.ifq.empty() &&
              t.ruu.empty());
  // Checkpoints (SPCK) carry no scheduler state on purpose: install is
  // only legal before the first cycle, where the event scheduler is
  // reconstructible as "all empty". Keep that contract checked.
  SPEAR_CHECK(t.sched.empty() && psched_.empty());
  SPEAR_CHECK(t.prog->ContainsPc(ws.pc));
  t.iregs = ws.iregs;
  t.fregs = ws.fregs;
  t.fetch_pc = ws.pc;
  t.mem.CopyFrom(ws.mem);
  SPEAR_CHECK(hier_.l1d().RestoreState(ws.l1d));
  SPEAR_CHECK(hier_.l2().RestoreState(ws.l2));
  SPEAR_CHECK(bpred_.RestoreState(ws.bpred));
}

ThreadResult Core::thread_result(std::uint32_t t) const {
  const ThreadCtx& ctx = *threads_[t];
  ThreadResult r;
  r.committed = ctx.committed;
  r.cycles = ctx.halted ? ctx.halt_cycle : now_;
  r.halted = ctx.halted;
  return r;
}

bool Core::in_session() const {
  return trigger_state_ != TriggerState::kNormal;
}

// ---------------------------------------------------------------------------
// Cycle loop. Stages run in reverse pipeline order, sim-outorder style.
// ---------------------------------------------------------------------------

void Core::StepCycle() {
  ++now_;
  stats_.cycles = now_;

  Commit();
  if (halted_ || cosim_diverged_) return;
  PThreadRetire();
  Writeback();
  Issue();
  SpearTriggerTick();
  const int extracted = pe_active_ ? ExtractPThread() : 0;
  const std::uint32_t budget =
      config_.decode_width > static_cast<std::uint32_t>(extracted)
          ? config_.decode_width - static_cast<std::uint32_t>(extracted)
          : 0;
  Dispatch(budget);
  Fetch();
  std::size_t ifq_occ = 0;
  for (const auto& t : threads_) ifq_occ += t->ifq.size();
  telem_.ifq_occupancy.Add(ifq_occ);
}

RunResult Core::Run(std::uint64_t max_instrs, std::uint64_t max_cycles) {
  Cycle last_commit_cycle = now_;
  std::uint64_t last_committed = stats_.committed;
  while (!halted_ && !cosim_diverged_ && stats_.committed < max_instrs &&
         now_ < max_cycles) {
    StepCycle();
    if (stats_.committed != last_committed) {
      last_committed = stats_.committed;
      last_commit_cycle = now_;
    }
    SPEAR_CHECK(now_ - last_commit_cycle < config_.commit_watchdog_cycles);
  }
  RunResult r;
  r.cycles = now_;
  r.instructions = stats_.committed;
  r.halted = halted_;
  return r;
}

// ---------------------------------------------------------------------------
// Commit (main threads, round-robin-free: every thread gets the full
// commit width — threads own disjoint RUU partitions, so their commit
// streams are independent; at N=1 this is the historical loop).
// ---------------------------------------------------------------------------

// Builds a CommitRecord from a retiring entry and delivers it to the
// attached checker. Returns false (and latches cosim_diverged_) on
// divergence, in which case the entry must NOT retire: the run is over and
// the diverging instruction stays at the RUU head for post-mortems.
bool Core::DeliverCommit(const RuuEntry& e) {
  if constexpr (!cosim::kCosimCompiled) return true;
  const ThreadCtx& t =
      e.tid == pthread_tid() ? owner_ctx() : *threads_[e.tid];
  cosim::CommitRecord rec;
  rec.pc = e.pc;
  rec.instr = e.instr;
  rec.tid = e.tid;
  rec.exec = e.exec;
  rec.int_dest = e.cosim_int_dest;
  rec.fp_dest = e.cosim_fp_dest;
  rec.store_u32 = e.cosim_store_u32;
  rec.store_f64 = e.cosim_store_f64;
  rec.pthread_arch_clobber = e.cosim_arch_clobber;
  rec.cycle = now_;
  rec.ruu_occupancy = static_cast<std::uint32_t>(t.ruu.size());
  rec.ifq_occupancy = static_cast<std::uint32_t>(t.ifq.size());
  if (cosim_->OnCommit(rec)) return true;
  cosim_diverged_ = true;
  return false;
}

// Bounded committed-PC ring (oracle tests): grow until the cap, then
// overwrite the oldest slot.
void Core::RecordTraceCommit(Pc pc) {
  if (commit_trace_.size() < commit_trace_cap_) {
    commit_trace_.push_back(pc);
    return;
  }
  commit_trace_[commit_trace_head_] = pc;
  commit_trace_head_ = (commit_trace_head_ + 1) % commit_trace_cap_;
  ++commit_trace_dropped_;
}

std::vector<Pc> Core::commit_trace() const {
  std::vector<Pc> out;
  out.reserve(commit_trace_.size());
  out.insert(out.end(), commit_trace_.begin() + commit_trace_head_,
             commit_trace_.end());
  out.insert(out.end(), commit_trace_.begin(),
             commit_trace_.begin() + commit_trace_head_);
  return out;
}

void Core::Commit() {
  for (std::uint32_t ti = 0; ti < num_main_; ++ti) {
    if (!CommitThread(*threads_[ti])) return;  // divergence: stop everything
  }
  bool all_halted = true;
  for (const auto& t : threads_) all_halted = all_halted && t->halted;
  halted_ = all_halted;
}

bool Core::CommitThread(ThreadCtx& t) {
  if (t.halted) return true;
  const auto tid = static_cast<ThreadId>(t.index);
  for (std::uint32_t n = 0; n < config_.commit_width && !t.ruu.empty(); ++n) {
    RuuEntry& e = t.ruu.Front();
    if (!e.completed) break;
    SPEAR_CHECK(!e.wrongpath);  // wrong-path entries are squashed at recovery
    if (cosim_ != nullptr && !DeliverCommit(e)) return false;

    if (IsCondBranch(e.instr.op)) {
      bpred_.Update(e.pc, e.instr, e.exec.taken, e.exec.next_pc);
      ++stats_.committed_cond_branches;
      ++stats_.committed_branches;
      if (e.pred_taken == e.exec.taken) ++stats_.bpred_dir_correct;
    } else if (IsControl(e.instr.op)) {
      bpred_.Update(e.pc, e.instr, true, e.exec.next_pc);
      ++stats_.committed_branches;
    }
    if (e.exec.is_load) ++stats_.committed_loads;
    if (e.exec.is_store) ++stats_.committed_stores;
    if (e.exec.out_value) t.outputs.push_back(*e.exec.out_value);
    if (trace_commits_) RecordTraceCommit(e.pc);
    ++stats_.committed;
    ++t.committed;
    SPEAR_TRACE_EVENT(trace_, TraceEvent::kCommit, now_,
                      TraceUid(e.fetch_seq, tid), e.pc, tid);

    const bool halt = e.exec.halted;
    t.ruu.PopFront();
    if (halt) {
      t.halted = true;
      t.halt_cycle = now_;
      return true;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// P-thread retirement. The p-thread has no architectural side effects; its
// entries drain in order once completed. Retiring the triggering d-load
// ends pre-execution mode (paper Section 3.3).
// ---------------------------------------------------------------------------

void Core::PThreadRetire() {
  const ThreadId ptid = pthread_tid();
  while (!pruu_.empty() && pruu_.Front().completed) {
    // Audit the p-thread safety invariant: retires are delivered to the
    // checker too (tid = pthread_tid()), which asserts no main
    // architectural state was touched. The oracle is NOT stepped for these.
    if (cosim_ != nullptr && !DeliverCommit(pruu_.Front())) return;
    const bool was_trigger = pruu_.Front().is_trigger_dload;
    SPEAR_TRACE_EVENT(trace_, TraceEvent::kPtRetire, now_,
                      TraceUid(pruu_.Front().fetch_seq, ptid),
                      pruu_.Front().pc, ptid);
    pruu_.PopFront();
    if (was_trigger) {
      EndPreExec(/*completed=*/true);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Writeback: drain this cycle's completion events (marking completions and
// waking dependents); resolve at most one mispredicted branch per thread
// per cycle (the oldest completed one), triggering recovery.
// ---------------------------------------------------------------------------

void Core::DrainCompletions(EventScheduler& sched,
                            CircularBuffer<RuuEntry>& buf, ThreadId tid,
                            bool main_thread) {
  std::vector<SchedRef>& bucket = completion_scratch_;
  sched.TakeCompletionsInto(now_, bucket);
  // Everything the old per-cycle writeback scan would have walked and the
  // event list didn't touch counts as saved scan work.
  stats_.sched_scan_saved +=
      buf.size() > bucket.size() ? buf.size() - bucket.size() : 0;
  for (const SchedRef r : bucket) {
    if (!buf.SlotLive(r.slot) || buf.Slot(r.slot).seq != r.seq) {
      continue;  // squashed after issue; slot possibly reused
    }
    RuuEntry& e = buf.Slot(r.slot);
    SPEAR_DCHECK(e.issued && !e.completed && e.complete_cycle == now_);
    e.completed = true;
    SPEAR_TRACE_EVENT(trace_, TraceEvent::kComplete, now_,
                      TraceUid(e.fetch_seq, tid), e.pc, tid);
    WakeConsumers(sched, buf, r.slot, e.seq);
    if (main_thread && e.mispredict && !e.recovery_done) {
      sched.pending_recovery().push_back(r);
    }
  }
}

void Core::WakeConsumers(EventScheduler& sched, CircularBuffer<RuuEntry>& buf,
                         std::uint32_t producer_slot,
                         std::uint64_t producer_seq) {
  // A slot's list holds only its occupants' waiters: the current
  // producer's (seq match) plus possibly a squashed predecessor's. A
  // squash kills everything younger than the squashed producer, so those
  // stale waiters' consumers are dead too and the whole list drains here.
  std::vector<EventScheduler::Waiter>& list = sched.waiters(producer_slot);
  if (list.empty()) return;
  for (const EventScheduler::Waiter w : list) {
    if (w.producer_seq != producer_seq) continue;  // stale (squashed) waiter
    if (!buf.SlotLive(w.consumer_slot) ||
        buf.Slot(w.consumer_slot).seq != w.consumer_seq) {
      continue;  // consumer squashed while waiting
    }
    RuuEntry& c = buf.Slot(w.consumer_slot);
    SPEAR_DCHECK(c.pending_deps > 0);
    ++stats_.sched_wakeups;
    if (--c.pending_deps == 0) {
      sched.InsertReady({w.consumer_seq, w.consumer_slot});
      ++stats_.sched_ready_enqueued;
    }
  }
  list.clear();
}

void Core::Writeback() {
  DrainCompletions(psched_, pruu_, pthread_tid(), /*main_thread=*/false);
  for (std::uint32_t ti = 0; ti < num_main_; ++ti) {
    DrainCompletions(threads_[ti]->sched, threads_[ti]->ruu,
                     static_cast<ThreadId>(ti), /*main_thread=*/true);
  }

  // Resolve the oldest completed, still-unrecovered mispredict per thread
  // (one per cycle each). Stale refs — branches squashed by an older
  // branch's recovery — are dropped here.
  for (std::uint32_t ti = 0; ti < num_main_; ++ti) {
    ThreadCtx& t = *threads_[ti];
    std::vector<SchedRef>& pend = t.sched.pending_recovery();
    if (pend.empty()) continue;
    std::size_t out = 0;
    for (std::size_t i = 0; i < pend.size(); ++i) {
      const SchedRef r = pend[i];
      if (!t.ruu.SlotLive(r.slot)) continue;
      const RuuEntry& e = t.ruu.Slot(r.slot);
      if (e.seq != r.seq || e.recovery_done) continue;
      pend[out++] = r;
    }
    pend.resize(out);
    if (out > 0) {
      std::size_t oldest = 0;
      for (std::size_t i = 1; i < out; ++i) {
        if (pend[i].seq < pend[oldest].seq) oldest = i;
      }
      const SchedRef r = pend[oldest];
      pend.erase(pend.begin() + static_cast<std::ptrdiff_t>(oldest));
      RecoverFromMispredict(t, r.slot);
    }
  }
}

void Core::RecoverFromMispredict(ThreadCtx& t, std::size_t branch_slot) {
  const auto tid = static_cast<ThreadId>(t.index);
  RuuEntry& branch = t.ruu.Slot(branch_slot);
  branch.recovery_done = true;
  ++stats_.mispredict_recoveries;

  // Squash everything younger than the branch (all wrong-path). The slot
  // maps straight to the branch's queue position — no head-to-tail rescan.
  const std::size_t idx = t.ruu.LogicalIndex(branch_slot);
  stats_.squashed_wrongpath += t.ruu.size() - idx - 1;
  if constexpr (telemetry::kTraceCompiled) {
    if (trace_ != nullptr) {
      for (std::size_t l = idx + 1; l < t.ruu.size(); ++l) {
        const RuuEntry& s = t.ruu.At(l);
        trace_->Record(TraceEvent::kSquash, now_, TraceUid(s.fetch_seq, tid),
                       s.pc, tid);
      }
    }
  }
  t.ruu.PopBack(t.ruu.size() - idx - 1);

  // Discard the wrong-path overlay and rebuild rename state. Bumping the
  // epoch orphans every overlay slot at once; nothing is walked.
  t.spec_mode = false;
  ++t.spec_epoch;
  t.spec_mem_count = 0;
  if constexpr (taint::kTaintCompiled) {
    // The observer's wrong-path taint overlay dies with the squash.
    if (taint_ != nullptr) taint_->OnWrongPathEnd();
  }
  RebuildRenameMap(t);
  // Drop scheduler references killed by the squash so they cannot pile up
  // across recoveries. (In-flight completion events for squashed entries
  // are validated lazily when their bucket fires — each issued entry owns
  // exactly one event, so those cannot accumulate.)
  PurgeDeadRefs(t.sched, t.ruu);

  // Redirect the front end.
  stats_.ifq_flushed += t.ifq.size();
  if constexpr (telemetry::kTraceCompiled) {
    if (trace_ != nullptr) {
      for (std::size_t l = 0; l < t.ifq.size(); ++l) {
        const IfqEntry& fe = t.ifq.At(l);
        trace_->Record(TraceEvent::kSquash, now_, TraceUid(fe.seq, tid),
                       fe.pc, tid);
      }
    }
  }
  t.ifq.Clear();
  t.fetch_pc = branch.exec.next_pc;
  t.dispatch_halted = false;

  // The IFQ flush destroys the in-flight p-thread session *of this
  // thread*. (Letting a captured session run to completion instead was
  // measured and is *worse*: the completion tail blocks re-arming, and a
  // fresh session over the post-recovery window prefetches more than the
  // stale one finishes — see EXPERIMENTS.md, design notes.)
  if (trigger_state_ != TriggerState::kNormal && session_owner_ == t.index) {
    ++stats_.triggers_aborted;
    EndPreExec(/*completed=*/false);
  }
}

void Core::RebuildRenameMap(ThreadCtx& t) {
  t.rename.Reset();
  for (std::size_t l = 0; l < t.ruu.size(); ++l) {
    const RuuEntry& e = t.ruu.At(l);
    if (auto rd = DestOf(e.instr)) {
      t.rename.slot[*rd] = static_cast<std::int32_t>(t.ruu.PhysicalIndex(l));
      t.rename.seq[*rd] = e.seq;
    }
  }
}

void Core::PurgeDeadRefs(EventScheduler& sched, CircularBuffer<RuuEntry>& buf) {
  auto live = [&buf](std::uint32_t slot, std::uint64_t seq) {
    return buf.SlotLive(slot) && buf.Slot(slot).seq == seq;
  };
  std::vector<SchedRef>& ready = sched.ready();
  std::size_t out = 0;
  for (std::size_t i = 0; i < ready.size(); ++i) {
    if (live(ready[i].slot, ready[i].seq)) ready[out++] = ready[i];
  }
  ready.resize(out);
  for (std::size_t s = 0; s < buf.capacity(); ++s) {
    std::vector<EventScheduler::Waiter>& list = sched.waiters(s);
    out = 0;
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (live(list[i].consumer_slot, list[i].consumer_seq)) {
        list[out++] = list[i];
      }
    }
    list.resize(out);
  }
}

// ---------------------------------------------------------------------------
// Issue: p-thread entries get scheduling priority (paper Section 3.3);
// remaining bandwidth goes to the main threads in age order (round-robin
// across threads, rotating with the cycle count).
// ---------------------------------------------------------------------------

bool Core::DepsReady(const RuuEntry& e) const {
  const CircularBuffer<RuuEntry>& buf =
      e.tid == pthread_tid() ? pruu_ : threads_[e.tid]->ruu;
  for (int i = 0; i < e.ndeps; ++i) {
    const RuuEntry::SrcDep& d = e.dep[i];
    if (d.slot < 0) continue;
    const auto slot = static_cast<std::size_t>(d.slot);
    if (!buf.SlotLive(slot)) continue;  // producer committed/retired
    const RuuEntry& p = buf.Slot(slot);
    if (p.seq != d.producer_seq) continue;  // slot reused by younger entry
    if (!p.completed) return false;
  }
  return true;
}

bool Core::AcquireFu(FuClass fu, ThreadId tid) {
  // Pool 1 models FUs the main threads cannot see: the configured separate
  // p-thread pool, or — for a cross-core session — the donor core's units.
  const bool pthread = tid == pthread_tid();
  const std::size_t pool =
      (pthread && (config_.spear.separate_fu || session_xcore_)) ? 1 : 0;
  SPEAR_DCHECK(pool < kNumFuPools);
  FuUse& use = fu_use_[pool];
  switch (fu) {
    case FuClass::kNone:
      return true;
    case FuClass::kIntAlu:
      if (use.int_alu < config_.fu.int_alu) {
        ++use.int_alu;
        return true;
      }
      return false;
    case FuClass::kIntMul:
    case FuClass::kIntDiv:
      if (use.int_muldiv < config_.fu.int_muldiv) {
        ++use.int_muldiv;
        return true;
      }
      return false;
    case FuClass::kFpAlu:
      if (use.fp_alu < config_.fu.fp_alu) {
        ++use.fp_alu;
        return true;
      }
      return false;
    case FuClass::kFpMul:
    case FuClass::kFpDiv:
      if (use.fp_muldiv < config_.fu.fp_muldiv) {
        ++use.fp_muldiv;
        return true;
      }
      return false;
    case FuClass::kMemRead:
    case FuClass::kMemWrite:
      if (use.mem_ports < config_.fu.mem_ports) {
        ++use.mem_ports;
        return true;
      }
      return false;
  }
  return false;
}

std::uint32_t Core::ExecLatency(const RuuEntry& e) {
  const FuLatencies& lat = config_.lat;
  switch (GetOpInfo(e.instr.op).fu) {
    case FuClass::kNone:
      return 1;
    case FuClass::kIntAlu:
      return lat.int_alu;
    case FuClass::kIntMul:
      return lat.int_mul;
    case FuClass::kIntDiv:
      return lat.int_div;
    case FuClass::kFpAlu:
      return lat.fp_alu;
    case FuClass::kFpMul:
      return lat.fp_mul;
    case FuClass::kFpDiv:
      return lat.fp_div;
    case FuClass::kMemRead: {
      const bool pthread = e.tid == pthread_tid();
      if (pthread) ++stats_.pthread_loads_issued;
      const std::uint32_t asid = AsidOf(e.tid);
      // Cross-core sessions run the p-thread on a donor core: its loads
      // bypass this core's private L1 and warm the shared L2 only.
      const std::uint32_t latency =
          (pthread && session_xcore_)
              ? hier_.AccessDataSkipL1(e.exec.mem_addr, e.tid, now_, asid)
                    .latency
              : hier_.AccessData(e.exec.mem_addr, /*write=*/false, e.tid,
                                 now_, asid)
                    .latency;
      telem_.access_latency.Add(latency);
      if constexpr (taint::kTaintCompiled) {
        // The demand access only; stride-prefetch probes below are cache
        // warming, not program-observable footprint attribution.
        if (taint_ != nullptr) {
          taint_->OnCacheAccess(e.exec.mem_addr, pthread, e.wrongpath);
        }
      }
      if (config_.stride_prefetch.enabled && !pthread) {
        // Prefetch traffic is attributed to the helper (p-thread) stats
        // slot so Figure-8-style miss accounting stays demand-only.
        Addr targets[8];
        const int n = stride_.Observe(e.pc, e.exec.mem_addr, targets, 8);
        for (int i = 0; i < n; ++i) {
          hier_.AccessData(targets[i], /*write=*/false, pthread_tid(), now_,
                           asid);
          ++stats_.stride_prefetches;
        }
      }
      return latency;
    }
    case FuClass::kMemWrite: {
      // Stores complete after address generation; the cache write happens
      // now. P-thread stores never touch memory or cache (private buffer).
      if (e.tid != pthread_tid()) {
        hier_.AccessData(e.exec.mem_addr, /*write=*/true, e.tid, now_,
                         AsidOf(e.tid));
        if constexpr (taint::kTaintCompiled) {
          if (taint_ != nullptr) {
            taint_->OnCacheAccess(e.exec.mem_addr, /*pthread=*/false,
                                  e.wrongpath);
          }
        }
      }
      return 1;
    }
  }
  return 1;
}

void Core::IssueReady(EventScheduler& sched, CircularBuffer<RuuEntry>& buf,
                      ThreadCtx& fence_owner, bool pthread_buf) {
  std::vector<SchedRef>& ready = sched.ready();
  stats_.sched_scan_saved +=
      buf.size() > ready.size() ? buf.size() - ready.size() : 0;
  if (ready.empty()) return;
  // Cross-core sessions spend the donor core's issue bandwidth, not this
  // core's — the donor is idle, which is why it was granted.
  const bool count_width = !(pthread_buf && session_xcore_);
  std::size_t out = 0;
  for (std::size_t i = 0; i < ready.size(); ++i) {
    const SchedRef r = ready[i];
    if (!buf.SlotLive(r.slot) || buf.Slot(r.slot).seq != r.seq) continue;
    RuuEntry& e = buf.Slot(r.slot);
    SPEAR_DCHECK(!e.issued && !e.completed && e.pending_deps == 0);
    SPEAR_DCHECK(DepsReady(e));
    // BasicBlocker-style fence: a load is speculative until every older
    // branch has resolved, so it may not touch the cache before then. Main-
    // thread loads wait on older branches in their own RUU; p-thread loads
    // are speculative by construction and wait on the owner's whole window.
    if (config_.fence_spec_loads && IsLoad(e.instr.op)) {
      const CircularBuffer<RuuEntry>& mruu = fence_owner.ruu;
      const std::size_t limit =
          pthread_buf ? mruu.size() : mruu.LogicalIndex(r.slot);
      bool blocked = false;
      for (std::size_t l = 0; l < limit; ++l) {
        const RuuEntry& older = mruu.At(l);
        if (IsControl(older.instr.op) && !older.completed) {
          blocked = true;
          break;
        }
      }
      if (blocked) {
        ++stats_.fence_load_stalls;
        ready[out++] = r;  // stays ready; retried next cycle
        continue;
      }
    }
    // Width exhaustion short-circuits before the FU probe, mirroring the
    // old scan's early return: FU slots are not consumed past the width.
    if ((count_width && issued_this_cycle_ >= config_.issue_width) ||
        !AcquireFu(GetOpInfo(e.instr.op).fu, e.tid)) {
      ready[out++] = r;  // stays ready; retried next cycle
      continue;
    }
    e.issued = true;
    e.complete_cycle = now_ + ExecLatency(e);
    sched.ScheduleCompletion(now_, e.complete_cycle, r);
    if (count_width) ++issued_this_cycle_;
    SPEAR_TRACE_EVENT(trace_, TraceEvent::kIssue, now_,
                      TraceUid(e.fetch_seq, e.tid), e.pc, e.tid);
  }
  ready.resize(out);
}

void Core::Issue() {
  fu_use_[0] = FuUse{};
  fu_use_[1] = FuUse{};
  issued_this_cycle_ = 0;
  std::size_t ready_occ = psched_.ready().size();
  for (const auto& t : threads_) ready_occ += t->sched.ready().size();
  telem_.sched_ready_occupancy.Add(ready_occ);

  // P-thread issue waits for the deterministic-state drain and live-in
  // copy to finish; until then extracted entries sit dormant in the
  // p-thread RUU. Once running, the p-thread has scheduling priority.
  if (trigger_state_ == TriggerState::kPreExec) {
    IssueReady(psched_, pruu_, owner_ctx(), /*pthread_buf=*/true);
  }
  const auto start = static_cast<std::uint32_t>(now_ % num_main_);
  for (std::uint32_t i = 0; i < num_main_; ++i) {
    ThreadCtx& t = *threads_[(start + i) % num_main_];
    IssueReady(t.sched, t.ruu, t, /*pthread_buf=*/false);
  }
}

// ---------------------------------------------------------------------------
// SPEAR trigger state machine (paper Section 3.2). One session core-wide;
// session_owner_ names the arming main thread.
// ---------------------------------------------------------------------------

void Core::ArmTrigger(ThreadCtx& t, int spec_index, std::uint64_t dload_seq) {
  SPEAR_CHECK(trigger_state_ == TriggerState::kNormal);
  session_owner_ = t.index;
  active_spec_ = spec_index;
  trigger_dload_seq_ = dload_seq;
  trigger_dispatch_seq_ = t.dispatch_seq;  // drain-to-trigger commit point
  trigger_captured_ = false;
  // Cross-core pre-execution (CMP mode): ask the arbiter for an idle donor
  // core. Granted: the session's p-thread models execution on the donor
  // (shared-L2-only warming, donor FUs, costlier live-in transfer).
  // Denied: fall back to the same-core context.
  session_xcore_ = false;
  session_donor_ = -1;
  if (xcore_arb_ != nullptr && config_.spear.xcore_pthreads) {
    const int donor = xcore_arb_->RequestDonor(core_id_);
    if (donor >= 0) {
      session_xcore_ = true;
      session_donor_ = donor;
      ++stats_.xcore_sessions;
    } else {
      ++stats_.xcore_fallback_same_core;
    }
  }
  ++stats_.triggers_fired;
  SPEAR_TRACE_EVENT(trace_, TraceEvent::kTrigger, now_,
                    TraceUid(dload_seq, static_cast<ThreadId>(t.index)),
                    t.pt.spec(spec_index).dload_pc,
                    static_cast<ThreadId>(t.index),
                    static_cast<std::uint16_t>(spec_index));
  switch (config_.spear.drain_policy) {
    case TriggerDrainPolicy::kStallDispatch:
      // Live-ins copied after the full drain; PE activates at pre-exec.
      trigger_state_ = TriggerState::kDraining;
      break;
    case TriggerDrainPolicy::kDrainToTrigger:
      SnapshotLiveIns();
      ActivatePe();
      trigger_state_ = TriggerState::kDraining;
      break;
    case TriggerDrainPolicy::kImmediate:
      SnapshotLiveIns();
      ActivatePe();
      BeginCopy();
      break;
  }
}

// Copies the live-in registers from the owner's in-order dispatch state
// into the p-thread context (the value transfer; the per-register cycle
// cost is modeled by the kCopying countdown — higher for cross-core
// sessions, which ship values to another core).
void Core::SnapshotLiveIns() {
  ThreadCtx& o = owner_ctx();
  pctx_.RebindMemory(&o.mem);
  pctx_.Reset();
  prename_.Reset();
  const PThreadSpec& spec = o.pt.spec(active_spec_);
  for (RegId reg : spec.live_ins) {
    if (IsFpReg(reg)) {
      pctx_.CopyLiveInFp(reg, o.fregs[FpIndex(reg)]);
    } else {
      pctx_.CopyLiveInInt(reg, reg == kRegZero ? 0 : o.iregs[reg]);
    }
  }
  const std::uint32_t per_reg = session_xcore_
                                    ? config_.spear.xcore_copy_cycles_per_reg
                                    : config_.spear.copy_cycles_per_reg;
  copy_remaining_ =
      static_cast<std::uint32_t>(spec.live_ins.size()) * per_reg;
  if constexpr (taint::kTaintCompiled) {
    // The p-thread session inherits exactly the copied registers' taint.
    if (taint_ != nullptr) taint_->OnPThreadSessionStart(spec.live_ins);
  }
  SPEAR_TRACE_EVENT(trace_, TraceEvent::kLiveInCopy, now_,
                    TraceUid(trigger_dload_seq_,
                             static_cast<ThreadId>(o.index)),
                    spec.dload_pc, static_cast<ThreadId>(o.index),
                    static_cast<std::uint16_t>(spec.live_ins.size()));
}

// Starts PE scanning at the owner's current IFQ head. Extraction may begin
// right away (entries buffer in the p-thread RUU); p-thread *issue* is
// gated on reaching kPreExec.
void Core::ActivatePe() {
  ThreadCtx& o = owner_ctx();
  pe_active_ = true;
  pe_scan_seq_ = o.ifq.empty() ? o.fetch_seq : o.ifq.Front().seq;
}

void Core::BeginCopy() {
  trigger_state_ = TriggerState::kCopying;
  if (copy_remaining_ == 0) BeginPreExec();
}

void Core::BeginPreExec() {
  trigger_state_ = TriggerState::kPreExec;
  if (config_.spear.drain_policy == TriggerDrainPolicy::kStallDispatch) {
    // Dispatch was held, so the trigger window is intact; scan from head.
    ActivatePe();
  }
  if (!pe_active_ && !trigger_captured_) {
    // The triggering d-load already left the IFQ without being captured.
    ++stats_.triggers_aborted;
    EndPreExec(/*completed=*/false);
  }
}

void Core::EndPreExec(bool completed) {
  if constexpr (telemetry::kTraceCompiled) {
    if (trace_ != nullptr) {
      const ThreadId otid = static_cast<ThreadId>(session_owner_);
      const Pc dload_pc =
          active_spec_ >= 0 ? owner_ctx().pt.spec(active_spec_).dload_pc : 0;
      trace_->Record(TraceEvent::kSessionEnd, now_,
                     TraceUid(trigger_dload_seq_, otid), dload_pc, otid,
                     completed ? 1 : 0);
      // Whatever is still in the p-thread RUU is discarded with the session.
      for (std::size_t l = 0; l < pruu_.size(); ++l) {
        const RuuEntry& e = pruu_.At(l);
        trace_->Record(TraceEvent::kSquash, now_,
                       TraceUid(e.fetch_seq, pthread_tid()), e.pc,
                       pthread_tid());
      }
    }
  }
  telem_.session_len.Add(session_extracted_);
  session_extracted_ = 0;
  if constexpr (taint::kTaintCompiled) {
    if (taint_ != nullptr) taint_->OnPThreadSessionEnd();
  }
  trigger_state_ = TriggerState::kNormal;
  pe_active_ = false;
  active_spec_ = -1;
  pruu_.Clear();
  psched_.Reset();  // every p-thread scheduler ref died with the buffer
  pctx_.Reset();
  copy_remaining_ = 0;
  if (session_xcore_) {
    if (xcore_arb_ != nullptr) xcore_arb_->ReleaseDonor(session_donor_);
    session_xcore_ = false;
    session_donor_ = -1;
  }
  if (completed) {
    ++stats_.preexec_sessions_completed;
    if (config_.spear.chaining_trigger) chain_pending_ = true;
  }
}

void Core::SpearTriggerTick() {
  switch (trigger_state_) {
    case TriggerState::kNormal:
      break;
    case TriggerState::kPreExec:
      ++stats_.preexec_cycles;
      break;
    case TriggerState::kDraining: {
      ++stats_.drain_cycles;
      ThreadCtx& o = owner_ctx();
      bool drained;
      if (config_.spear.drain_policy == TriggerDrainPolicy::kStallDispatch) {
        drained = o.ruu.empty();
        if (drained) SnapshotLiveIns();  // iregs are now committed values
      } else {
        // Commit has passed the trigger-time dispatch point.
        drained = o.ruu.empty() || o.ruu.Front().seq > trigger_dispatch_seq_;
      }
      if (drained) BeginCopy();
      break;
    }
    case TriggerState::kCopying:
      ++stats_.copy_cycles;
      if (copy_remaining_ > 0) --copy_remaining_;
      if (copy_remaining_ == 0) BeginPreExec();
      break;
  }
}

// ---------------------------------------------------------------------------
// P-thread extraction (the PE). Scans the owner's IFQ from the p-thread
// head, pulling up to issue_width/2 marked entries per cycle into the
// p-thread context; clears each indicator; stops at the triggering d-load.
// ---------------------------------------------------------------------------

int Core::ExtractPThread() {
  int extracted = 0;
  const int limit = static_cast<int>(config_.ExtractPerCycle());
  ThreadCtx& o = owner_ctx();

  while (extracted < limit && pe_active_) {
    if (o.ifq.empty()) break;
    const std::uint64_t front_seq = o.ifq.Front().seq;
    if (pe_scan_seq_ < front_seq) {
      // Every IFQ pop advances the scan pointer via MaybeExtractOnPop, so
      // the pointer can never trail the head; if it does, an IFQ pop
      // bypassed the PE. Count + resync in release, loud in debug.
      SPEAR_DCHECK(false);
      ++stats_.pe_scan_resyncs;
      pe_scan_seq_ = front_seq;
    }
    const std::uint64_t offset = pe_scan_seq_ - front_seq;
    if (offset >= o.ifq.size()) break;  // caught up with fetch; resume later
    IfqEntry& en = o.ifq.At(static_cast<std::size_t>(offset));

    if (!en.pthread_indicator) {
      ++pe_scan_seq_;
      continue;  // scanning unmarked entries is free (indicator bits)
    }
    if (pruu_.full()) break;  // retry next cycle

    en.pthread_indicator = false;
    ++pe_scan_seq_;
    const bool is_trigger = en.seq == trigger_dload_seq_;
    if (IsControl(en.instr.op)) {
      // Slices are data-flow only; a marked control instruction is skipped
      // rather than pre-executed (the p-thread follows the IFQ's path).
      if (is_trigger) pe_active_ = false;
      continue;
    }
    DispatchOne(pruu_, en, pthread_tid(), o);
    if (is_trigger) {
      pruu_.Back().is_trigger_dload = true;
      trigger_captured_ = true;
      pe_active_ = false;  // extraction complete; wait for retirement
    }
    ++extracted;
    ++stats_.pthread_extracted;
    ++session_extracted_;
    SPEAR_TRACE_EVENT(trace_, TraceEvent::kPtExtract, now_,
                      TraceUid(en.seq, pthread_tid()), en.pc, pthread_tid());
  }
  return extracted;
}

// ---------------------------------------------------------------------------
// Dispatch (decode/rename/functional-execute/RUU allocate).
// ---------------------------------------------------------------------------

void Core::DispatchOne(CircularBuffer<RuuEntry>& buffer, const IfqEntry& fe,
                       ThreadId tid, ThreadCtx& t) {
  const bool pthread = tid == pthread_tid();
  RuuEntry e;
  e.instr = fe.instr;
  e.pc = fe.pc;
  e.tid = tid;
  e.seq = pthread ? ++pdispatch_seq_ : ++t.dispatch_seq;
  e.fetch_seq = fe.seq;
  e.predicted_next = fe.predicted_next;
  e.pred_taken = fe.pred_taken;

  RenameMap& rm = pthread ? prename_ : t.rename;
  EventScheduler& sc = pthread ? psched_ : t.sched;
  const SrcRegs srcs = SourcesOf(fe.instr);
  for (int i = 0; i < srcs.count; ++i) {
    const RegId reg = srcs.reg[i];
    if (reg == kRegZero) continue;
    if (rm.slot[reg] >= 0) {
      e.dep[e.ndeps].slot = rm.slot[reg];
      e.dep[e.ndeps].producer_seq = rm.seq[reg];
      // A dep is outstanding only while its producer still occupies the
      // renamed slot and has not completed; anything else is already
      // architectural (same predicate the old per-cycle poll applied).
      const auto pslot = static_cast<std::size_t>(rm.slot[reg]);
      if (buffer.SlotLive(pslot) && buffer.Slot(pslot).seq == rm.seq[reg] &&
          !buffer.Slot(pslot).completed) {
        ++e.pending_deps;
      }
      ++e.ndeps;
    }
  }

  if (!pthread) {
    e.wrongpath = t.spec_mode;
    MainState st{this, &t};
    e.exec = ExecuteInstruction(st, fe.instr, fe.pc);
    if (cosim::kCosimCompiled && cosim_ != nullptr && !e.wrongpath) {
      // Lockstep capture: correct-path dispatch just updated the in-order
      // register file and memory image, so reading them back here yields
      // exactly the values this instruction committed architecturally.
      if (const auto rd = DestOf(fe.instr)) {
        if (IsFpReg(*rd)) {
          e.cosim_fp_dest = t.fregs[FpIndex(*rd)];
        } else {
          e.cosim_int_dest = t.iregs[*rd];
        }
      }
      if (e.exec.is_store) {
        switch (fe.instr.op) {
          case Opcode::kSw:
            e.cosim_store_u32 = t.mem.ReadU32(e.exec.mem_addr);
            break;
          case Opcode::kSb:
            e.cosim_store_u32 = t.mem.ReadU8(e.exec.mem_addr);
            break;
          case Opcode::kStf:
            e.cosim_store_f64 = t.mem.ReadF64(e.exec.mem_addr);
            break;
          default:
            break;
        }
      }
    }
    if (!e.wrongpath && e.exec.next_pc != fe.predicted_next) {
      e.mispredict = true;
      t.spec_mode = true;  // younger dispatches go to the overlay
    }
    if (IsHalt(fe.instr.op)) t.dispatch_halted = true;
    ++stats_.dispatched_main;
    if (e.wrongpath) ++stats_.dispatched_wrongpath;
    SPEAR_TRACE_EVENT(trace_, TraceEvent::kDispatch, now_,
                      TraceUid(fe.seq, tid), fe.pc, tid,
                      e.wrongpath ? 1 : 0);
  } else if (cosim::kCosimCompiled && cosim_ != nullptr) {
    // P-thread invariant probe: snapshot the would-be destination in the
    // *owner's* register file around the p-thread execution. PThreadContext
    // routes all effects into its private registers and store buffer, so
    // any change here is a safety-invariant violation the checker flags at
    // retire. (P-thread stores structurally cannot reach dispatch memory;
    // a leak there would surface as a main-thread store/dest divergence.)
    const auto rd = DestOf(fe.instr);
    std::uint32_t before_int = 0;
    double before_fp = 0.0;
    if (rd) {
      if (IsFpReg(*rd)) {
        before_fp = t.fregs[FpIndex(*rd)];
      } else {
        before_int = t.iregs[*rd];
      }
    }
    e.exec = ExecuteInstruction(pctx_, fe.instr, fe.pc);
    if (rd) {
      if (IsFpReg(*rd)) {
        // Bitwise: a NaN parked in the main register file must still
        // compare equal to itself.
        std::uint64_t was, now;
        __builtin_memcpy(&was, &before_fp, sizeof(was));
        __builtin_memcpy(&now, &t.fregs[FpIndex(*rd)], sizeof(now));
        e.cosim_arch_clobber = was != now;
      } else {
        e.cosim_arch_clobber = t.iregs[*rd] != before_int;
      }
    }
  } else {
    e.exec = ExecuteInstruction(pctx_, fe.instr, fe.pc);
  }

  if constexpr (taint::kTaintCompiled) {
    if (taint_ != nullptr) {
      if (pthread) {
        taint_->OnPThreadExec(fe.instr, e.exec);
      } else {
        taint_->OnMainExec(fe.instr, e.exec, e.wrongpath);
      }
    }
  }

  const std::size_t slot = buffer.PushBack(e);
  // Register one wakeup-table waiter per outstanding operand; an entry
  // with none is ready the moment it dispatches.
  for (int i = 0; i < e.ndeps; ++i) {
    const RuuEntry::SrcDep& d = e.dep[i];
    if (d.slot < 0) continue;
    const auto pslot = static_cast<std::size_t>(d.slot);
    if (buffer.SlotLive(pslot) && buffer.Slot(pslot).seq == d.producer_seq &&
        !buffer.Slot(pslot).completed) {
      sc.waiters(pslot).push_back(
          {d.producer_seq, e.seq, static_cast<std::uint32_t>(slot)});
    }
  }
  if (e.pending_deps == 0) {
    sc.InsertReady({e.seq, static_cast<std::uint32_t>(slot)});
    ++stats_.sched_ready_enqueued;
  }
  if (auto rd = DestOf(fe.instr)) {
    rm.slot[*rd] = static_cast<std::int32_t>(slot);
    rm.seq[*rd] = e.seq;
  }
}

// A marked entry leaving the owner's IFQ through main dispatch passes the
// shared decoder, where the PE can still capture it for the p-thread (dual
// delivery). If the p-thread RUU has no room the instance is lost — the
// main thread is executing it anyway, so only prefetch reach is affected,
// never correctness.
void Core::MaybeExtractOnPop(ThreadCtx& t, const IfqEntry& fe) {
  if (!pe_active_ || t.index != session_owner_) return;
  if (fe.seq < pe_scan_seq_) return;  // PE already scanned this entry
  // Advance the scan pointer past every unscanned pop, marked or not.
  // Unmarked pops used to skip this (the early indicator check), leaving
  // the pointer trailing the IFQ head whenever the PE stalled — the
  // trigger for the old silent resync clamp in ExtractPThread.
  pe_scan_seq_ = fe.seq + 1;
  if (!fe.pthread_indicator) return;
  const bool is_trigger = fe.seq == trigger_dload_seq_;
  if (IsControl(fe.instr.op)) {
    if (is_trigger) pe_active_ = false;
    return;
  }
  if (pruu_.full()) {
    ++stats_.pthread_lost_to_dispatch;
    if (is_trigger) {
      // The terminating d-load can never retire from the p-thread RUU now;
      // tear the session down.
      pe_active_ = false;
      ++stats_.triggers_aborted;
      EndPreExec(/*completed=*/false);
    }
    return;
  }
  DispatchOne(pruu_, fe, pthread_tid(), t);
  ++stats_.pthread_extracted;
  ++session_extracted_;
  SPEAR_TRACE_EVENT(trace_, TraceEvent::kPtExtract, now_,
                    TraceUid(fe.seq, pthread_tid()), fe.pc, pthread_tid());
  if (is_trigger) {
    pruu_.Back().is_trigger_dload = true;
    trigger_captured_ = true;
    pe_active_ = false;
  }
}

void Core::DispatchThread(ThreadCtx& t, std::uint32_t& budget) {
  if (t.halted) return;
  if (config_.spear.drain_policy == TriggerDrainPolicy::kStallDispatch &&
      (trigger_state_ == TriggerState::kDraining ||
       trigger_state_ == TriggerState::kCopying) &&
      session_owner_ == t.index) {
    // Stall-dispatch trigger policy: the owner's dispatch holds so its RUU
    // reaches a deterministic (fully committed) state for the live-in copy.
    ++stats_.dispatch_stall_trigger;
    return;
  }
  while (budget > 0 && !t.dispatch_halted && !t.ifq.empty()) {
    if (t.ruu.full()) {
      ++stats_.dispatch_stall_ruu_full;
      break;
    }
    const IfqEntry fe = t.ifq.PopFront();
    MaybeExtractOnPop(t, fe);
    DispatchOne(t.ruu, fe, static_cast<ThreadId>(t.index), t);
    --budget;
  }
}

void Core::Dispatch(std::uint32_t budget) {
  // Decode bandwidth is shared; the serving order rotates with the cycle
  // count so no thread starves. At N=1 thread 0 always gets the full
  // budget, exactly the historical single-thread loop.
  const auto start = static_cast<std::uint32_t>(now_ % num_main_);
  for (std::uint32_t i = 0; i < num_main_ && budget > 0; ++i) {
    DispatchThread(*threads_[(start + i) % num_main_], budget);
  }
}

// ---------------------------------------------------------------------------
// Fetch + pre-decode. ICOUNT thread choice: the eligible thread with the
// fewest in-flight instructions (IFQ + RUU occupancy) fetches this cycle —
// ties go to the lowest tid, so N=1 always picks thread 0. Fetch follows
// the predicted path, breaks after a predicted-taken control instruction,
// marks p-thread indicators and detects trigger conditions (d-load
// pre-decoded AND the thread's IFQ share at least half full).
// ---------------------------------------------------------------------------

void Core::FetchThread(ThreadCtx& t) {
  const auto tid = static_cast<ThreadId>(t.index);
  const auto trig_occ = static_cast<std::uint32_t>(
      t.ifq.capacity() / config_.spear.trigger_occupancy_div);
  for (std::uint32_t n = 0; n < config_.fetch_width && !t.ifq.full(); ++n) {
    IfqEntry fe;
    bool is_control;
    if (kBlockCacheEnabled) {
      // One decoded-record lookup replaces the per-fetch text containment
      // check, text-table read, opcode-table probe and the two PT hash
      // probes of the pre-decoder — the marks were baked in at decode.
      const DecodedInstr* rec = t.bcache->Record(t.fetch_pc);
      if (rec == nullptr) break;  // stalled (wrong path / end)
      fe.instr = rec->instr;
      is_control = rec->is_control();
      fe.pthread_indicator = rec->pthread_indicator;
      fe.dload_spec = rec->dload_spec;
    } else {
      // Per-instruction probe path (-DSPEAR_ENABLE_BLOCK_CACHE=0).
      if (!t.prog->ContainsPc(t.fetch_pc)) break;  // stalled (wrong path / end)
      fe.instr = t.prog->At(t.fetch_pc);
      is_control = IsControl(fe.instr.op);
      if (config_.spear.enabled && !t.pt.empty()) {  // pre-decoder (PD)
        fe.pthread_indicator = t.pt.InAnySlice(t.fetch_pc);
        fe.dload_spec = t.pt.DloadSpec(t.fetch_pc);
      }
    }

    fe.pc = t.fetch_pc;
    fe.seq = t.fetch_seq++;
    bool taken = false;
    if (is_control) {
      const BranchPrediction p = bpred_.Predict(t.fetch_pc, fe.instr);
      fe.pred_taken = p.taken;
      fe.predicted_next = p.target;
      taken = p.taken;
    } else {
      fe.predicted_next = t.fetch_pc + kInstrBytes;
    }

    t.ifq.PushBack(fe);
    ++stats_.fetched;
    SPEAR_TRACE_EVENT(trace_, TraceEvent::kFetch, now_,
                      TraceUid(fe.seq, tid), fe.pc, tid);

    if (fe.dload_spec >= 0 && config_.spear.enabled) {
      if (donating_) {
        // This core's p-thread context is reserved by a neighbor.
        ++stats_.triggers_suppressed_donor;
      } else if (trigger_state_ == TriggerState::kNormal &&
                 (t.ifq.size() >= trig_occ || chain_pending_)) {
        if (chain_pending_ && t.ifq.size() < trig_occ) {
          ++stats_.chained_triggers;
        }
        chain_pending_ = false;
        ArmTrigger(t, fe.dload_spec, fe.seq);
      } else if (trigger_state_ == TriggerState::kNormal) {
        ++stats_.triggers_suppressed_occupancy;
      }
    }

    t.fetch_pc = fe.predicted_next;
    if (taken) break;  // one taken control flow break per cycle
  }
}

void Core::Fetch() {
  ThreadCtx* pick = nullptr;
  std::size_t best = 0;
  for (const auto& up : threads_) {
    ThreadCtx& t = *up;
    if (t.halted) continue;
    const std::size_t inflight = t.ifq.size() + t.ruu.size();
    if (pick == nullptr || inflight < best) {
      pick = &t;
      best = inflight;
    }
  }
  if (pick != nullptr) FetchThread(*pick);
}

}  // namespace spear
