// Core (pipeline) configuration. Defaults reproduce paper Table 2:
// 8-wide issue/commit, 128-entry RUU, bimodal 2048 predictor, 4+1 integer
// and 4+1 FP functional units, 2 memory ports, and the two-level hierarchy
// in mem/hierarchy.h. The IFQ size is the paper's headline knob (128/256).
#pragma once

#include <cstdint>

#include "bpred/bpred.h"
#include "mem/hierarchy.h"
#include "mem/stride_prefetcher.h"
#include "spear/config.h"

namespace spear {

struct FuPoolConfig {
  std::uint32_t int_alu = 4;
  std::uint32_t int_muldiv = 1;
  std::uint32_t fp_alu = 4;
  std::uint32_t fp_muldiv = 1;
  std::uint32_t mem_ports = 2;
};

struct FuLatencies {
  std::uint32_t int_alu = 1;
  std::uint32_t int_mul = 3;
  std::uint32_t int_div = 20;
  std::uint32_t fp_alu = 2;
  std::uint32_t fp_mul = 4;
  std::uint32_t fp_div = 12;
};

struct CoreConfig {
  std::uint32_t ifq_size = 128;   // paper: 128 and 256
  std::uint32_t ruu_size = 128;   // reorder buffer (RUU)
  std::uint32_t fetch_width = 8;
  std::uint32_t decode_width = 8;
  std::uint32_t issue_width = 8;
  std::uint32_t commit_width = 8;

  // Forward-progress watchdog: abort the run (pipeline bug) if commit
  // makes no progress for this many cycles. No workload legitimately
  // stalls commit this long with a 120-cycle memory.
  std::uint64_t commit_watchdog_cycles = 1'000'000;

  FuPoolConfig fu;
  FuLatencies lat;
  BpredConfig bpred;
  HierarchyConfig mem;
  SpearConfig spear;
  // Traditional-prefetching baseline (off by default; bench_ext_prefetch
  // compares it against SPEAR per the paper's Section 1 argument).
  StridePrefetcherConfig stride_prefetch;

  // Lockstep co-simulation: when set, RunConfig (and the tools) attach a
  // CosimChecker that compares every commit against the functional
  // emulator and aborts the run on divergence (see src/cosim). The core
  // itself only carries the flag — zero cost when off.
  bool cosim_check = false;

  // Speculative-leakage taint observer: when set, RunConfig (and the
  // tools) attach a TaintObserver that shadows taint through execution and
  // emits core.spec_leak.* stats (see spear/taint_observer.h). Purely
  // observational — never changes timing.
  bool taint_observe = false;

  // BasicBlocker-style speculation fence: a load may not issue while any
  // older branch in the RUU is unresolved (p-thread loads wait on the whole
  // main-thread window). Closes the speculative cache side channel at the
  // cost of load-issue latency; the leakage bench's "fenced" variant.
  bool fence_spec_loads = false;

  std::uint32_t ExtractPerCycle() const {
    return spear.extract_per_cycle != 0 ? spear.extract_per_cycle
                                        : issue_width / 2;
  }
  std::uint32_t TriggerOccupancy() const {
    return ifq_size / spear.trigger_occupancy_div;
  }
};

// Canonical configurations used throughout benches and tests.
inline CoreConfig BaselineConfig(std::uint32_t ifq = 128) {
  CoreConfig cfg;
  cfg.ifq_size = ifq;
  cfg.spear.enabled = false;
  return cfg;
}

inline CoreConfig SpearCoreConfig(std::uint32_t ifq, bool separate_fu = false) {
  CoreConfig cfg;
  cfg.ifq_size = ifq;
  cfg.spear.enabled = true;
  cfg.spear.separate_fu = separate_fu;
  return cfg;
}

inline CoreConfig StridePrefetchConfig(std::uint32_t ifq = 128,
                                       std::uint32_t degree = 2) {
  CoreConfig cfg = BaselineConfig(ifq);
  cfg.stride_prefetch.enabled = true;
  cfg.stride_prefetch.degree = degree;
  return cfg;
}

}  // namespace spear
