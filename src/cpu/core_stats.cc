// Core::RegisterStats — binds every counter, distribution and derived
// stat of a core (and its memory/bpred/SPEAR substrates) into a
// StatRegistry under the component-scoped namespaces the stats schema
// documents: core.*, mem.*, bpred.*, spear.*. The registry holds live
// pointers and formulas capture `this`, so the core must outlive any read
// of the registry. RegisterStatsPrefixed scopes the same tree under a
// per-core prefix ("core0.") for CMP documents.
#include <string>

#include "cpu/core.h"

namespace spear {

void Core::RegisterStats(telemetry::StatRegistry& reg) const {
  RegisterStatsPrefixed(reg, "");
}

void Core::RegisterStatsPrefixed(telemetry::StatRegistry& reg,
                                 const std::string& prefix) const {
  const CoreStats& s = stats_;
  const std::string saved = reg.prefix();
  reg.SetPrefix(saved + prefix);

  // ---- core: cycles and the pipeline stages ----
  reg.BindCounter("core.cycles", &s.cycles, "elapsed clock cycles");
  reg.BindCounter("core.fetch.fetched", &s.fetched,
                  "instructions entered into the IFQ");
  reg.BindCounter("core.fetch.ifq_flushed", &s.ifq_flushed,
                  "wrong-path fetches discarded at recovery");
  reg.BindCounter("core.dispatch.main", &s.dispatched_main,
                  "main-thread instructions decoded/renamed");
  reg.BindCounter("core.dispatch.wrongpath", &s.dispatched_wrongpath,
                  "dispatches past an unresolved mispredict");
  reg.BindCounter("core.dispatch.stall_ruu_full", &s.dispatch_stall_ruu_full,
                  "dispatch stalls: RUU full");
  reg.BindCounter("core.dispatch.stall_trigger", &s.dispatch_stall_trigger,
                  "dispatch stalls: trigger drain (kStallDispatch)");
  reg.BindCounter("core.commit.instructions", &s.committed,
                  "main-thread instructions committed");
  reg.BindCounter("core.commit.loads", &s.committed_loads);
  reg.BindCounter("core.commit.stores", &s.committed_stores);
  reg.BindCounter("core.commit.branches", &s.committed_branches,
                  "committed control instructions");
  reg.BindCounter("core.squash.wrongpath", &s.squashed_wrongpath,
                  "RUU entries squashed at mispredict recovery");
  reg.BindDistribution("core.ifq.occupancy", &telem_.ifq_occupancy,
                       "IFQ entries, sampled every cycle");
  reg.BindCounter("core.sched.wakeups", &s.sched_wakeups,
                  "operand-completion wakeups delivered");
  reg.BindCounter("core.sched.ready_enqueued", &s.sched_ready_enqueued,
                  "entries entered into a ready queue");
  reg.BindCounter("core.sched.scan_ops_saved", &s.sched_scan_saved,
                  "RUU walk steps the event scheduler avoided");
  reg.BindDistribution("core.sched.ready_occupancy",
                       &telem_.sched_ready_occupancy,
                       "ready-queue entries (all threads), per cycle");
  reg.AddFormula(
      "core.ipc",
      [&s] {
        return telemetry::SafeRatio(s.committed, s.cycles);
      },
      "committed main-thread instructions per cycle");

  // ---- per-thread telemetry: only bound for multiprogram cores, so
  // single-program stats documents stay byte-identical to the reference
  // set. Thread t's IPC uses its own halt cycle (a thread that finished
  // early is not charged the co-runners' tail cycles).
  if (num_main_ > 1) {
    for (std::uint32_t t = 0; t < num_main_; ++t) {
      const std::string tp = "core.thread" + std::to_string(t);
      reg.BindCounter(tp + ".committed", &threads_[t]->committed,
                      "instructions committed by this context");
      reg.AddFormula(
          tp + ".ipc", [this, t] { return thread_result(t).Ipc(); },
          "per-thread IPC over its own active cycles");
    }
  }

  // ---- bpred: prediction volume and commit-time accuracy ----
  bpred_.RegisterStats(reg);
  reg.BindCounter("bpred.cond_branches", &s.committed_cond_branches,
                  "committed conditional branches");
  reg.BindCounter("bpred.dir_correct", &s.bpred_dir_correct,
                  "conditional direction hits");
  reg.BindCounter("bpred.mispredict_recoveries", &s.mispredict_recoveries);
  reg.AddFormula(
      "bpred.hit_ratio", [&s] { return s.BranchHitRatio(); },
      "conditional direction accuracy");
  reg.AddFormula(
      "bpred.ipb", [&s] { return s.Ipb(); },
      "committed instructions per control instruction");

  // ---- mem: both cache levels plus access-latency shape ----
  hier_.RegisterStats(reg);
  reg.BindDistribution("mem.access_latency", &telem_.access_latency,
                       "data-read latency as issued (cycles)");
  reg.BindCounter("mem.stride.prefetches", &s.stride_prefetches,
                  "stride-prefetcher baseline issues");
  if (config_.fence_spec_loads) {
    // Bound only when fencing is on so default-config stats JSONs stay
    // byte-identical to the reference set.
    reg.BindCounter("core.fence.load_stalls", &s.fence_load_stalls,
                    "issue slots a load lost to an older unresolved branch");
  }

  // ---- spear: trigger, sessions, extraction ----
  threads_[0]->pt.RegisterStats(reg);
  reg.BindCounter("spear.trigger.fired", &s.triggers_fired);
  reg.BindCounter("spear.trigger.suppressed_occupancy",
                  &s.triggers_suppressed_occupancy,
                  "d-load seen but IFQ below the occupancy threshold");
  reg.BindCounter("spear.trigger.aborted", &s.triggers_aborted,
                  "sessions torn down by recovery or lost capture");
  reg.BindCounter("spear.trigger.chained", &s.chained_triggers,
                  "chaining-extension re-arms");
  reg.BindCounter("spear.session.completed", &s.preexec_sessions_completed,
                  "sessions ended by the triggering d-load retiring");
  reg.BindDistribution("spear.session.extracted", &telem_.session_len,
                       "instructions extracted per session");
  reg.BindCounter("spear.pt.extracted", &s.pthread_extracted,
                  "instructions the PE pulled from the IFQ");
  reg.BindCounter("spear.pt.lost_to_dispatch", &s.pthread_lost_to_dispatch,
                  "marked entries the PE missed at main dispatch");
  reg.BindCounter("spear.pt.loads_issued", &s.pthread_loads_issued,
                  "p-thread loads sent to the hierarchy (the prefetches)");
  reg.BindCounter("spear.pe_scan_resync", &s.pe_scan_resyncs,
                  "PE scan pointer found trailing the IFQ head (bug)");
  reg.BindCounter("spear.cycles.drain", &s.drain_cycles);
  reg.BindCounter("spear.cycles.copy", &s.copy_cycles);
  reg.BindCounter("spear.cycles.preexec", &s.preexec_cycles);

  // ---- cross-core pre-execution: only bound when an arbiter is attached
  // (CMP mode), so single-core documents are unchanged.
  if (xcore_arb_ != nullptr) {
    reg.BindCounter("spear.xcore.sessions", &s.xcore_sessions,
                    "sessions granted a donor core");
    reg.BindCounter("spear.xcore.fallback_same_core",
                    &s.xcore_fallback_same_core,
                    "no idle donor: session ran on the triggering core");
    reg.BindCounter("spear.xcore.suppressed_donor",
                    &s.triggers_suppressed_donor,
                    "own triggers suppressed while donating the p-thread");
  }

  reg.SetPrefix(saved);
}

}  // namespace spear
