#include "cpu/cmp.h"

#include <algorithm>

namespace spear {

CmpSystem::CmpSystem(const std::vector<const Program*>& progs,
                     const CoreConfig& config)
    : config_(config),
      progs_(progs),
      shared_l2_(config.mem.l2),
      donating_(progs.size(), false) {
  SPEAR_CHECK(!progs.empty());
  // Slot 0 aggregates every core's main thread; slot 1 every p-thread.
  // (Per-core attribution for the shared level lives in each core's
  // private-L1 tree; the shared L2 only needs the demand/helper split.)
  shared_l2_.ConfigureThreadSlots(2);
  cores_.reserve(progs.size());
  for (std::size_t i = 0; i < progs.size(); ++i) {
    cores_.push_back(std::make_unique<Core>(*progs[i], config));
    Core& c = *cores_.back();
    c.hierarchy().AttachShared(&shared_l2_, &shared_fills_);
    // One main thread per core, so core i's single asid is just i.
    c.set_asid_base(static_cast<std::uint32_t>(i));
    c.set_xcore_arbiter(this, static_cast<int>(i));
  }
}

void CmpSystem::EnableCosim(cosim::CosimChecker::Config inject,
                            int target_core) {
  SPEAR_CHECK(now_ == 0);
  inject.inject_tid = -1;  // each per-core checker sees one thread
  const std::size_t target =
      target_core < 0 ? 0
                      : std::min<std::size_t>(
                            static_cast<std::size_t>(target_core),
                            cores_.size() - 1);
  checkers_.clear();
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    cosim::CosimChecker::Config cc = i == target ? inject
                                                 : cosim::CosimChecker::Config{};
    checkers_.push_back(
        std::make_unique<cosim::CosimChecker>(*progs_[i], cc));
    cores_[i]->set_cosim(checkers_.back().get());
  }
}

bool CmpSystem::cosim_diverged() const {
  for (const auto& c : cores_) {
    if (c->cosim_diverged()) return true;
  }
  return false;
}

std::uint64_t CmpSystem::cosim_checked() const {
  std::uint64_t n = 0;
  for (const auto& ck : checkers_) {
    n += ck->stats().commits_checked + ck->stats().pthread_commits_checked;
  }
  return n;
}

std::string CmpSystem::CosimReport() const {
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (cores_[i]->cosim_diverged() && i < checkers_.size()) {
      return "core " + std::to_string(i) + ":\n" + checkers_[i]->Report();
    }
  }
  return "";
}

RunResult CmpSystem::Run(std::uint64_t max_instrs_per_core,
                         std::uint64_t max_cycles) {
  while (now_ < max_cycles) {
    bool any_live = false;
    for (const auto& c : cores_) {
      if (c->cosim_diverged()) {
        any_live = false;
        break;
      }
      if (!c->halted() && c->stats().committed < max_instrs_per_core) {
        any_live = true;
      }
    }
    if (!any_live) break;
    ++now_;
    for (const auto& c : cores_) {
      if (!c->halted() && !c->cosim_diverged() &&
          c->stats().committed < max_instrs_per_core) {
        c->StepCycle();
      }
    }
  }
  RunResult r;
  r.cycles = now_;
  r.halted = true;
  for (const auto& c : cores_) {
    r.instructions += c->stats().committed;
    r.halted = r.halted && c->halted();
  }
  return r;
}

int CmpSystem::RequestDonor(int requester) {
  for (std::size_t j = 0; j < cores_.size(); ++j) {
    if (static_cast<int>(j) == requester) continue;
    if (donating_[j]) continue;
    if (cores_[j]->in_session()) continue;  // its p-thread context is busy
    donating_[j] = true;
    cores_[j]->set_donating(true);
    ++donor_grants_;
    return static_cast<int>(j);
  }
  ++donor_denied_;
  return -1;
}

void CmpSystem::ReleaseDonor(int donor) {
  SPEAR_CHECK(donor >= 0 && static_cast<std::size_t>(donor) < cores_.size());
  SPEAR_CHECK(donating_[static_cast<std::size_t>(donor)]);
  donating_[static_cast<std::size_t>(donor)] = false;
  cores_[static_cast<std::size_t>(donor)]->set_donating(false);
}

void CmpSystem::RegisterStats(telemetry::StatRegistry& reg) const {
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    cores_[i]->RegisterStatsPrefixed(reg, "core" + std::to_string(i) + ".");
  }
  shared_l2_.RegisterStats(reg, "cmp.l2");
  reg.BindCounter("cmp.xcore.grants", &donor_grants_,
                  "donor-core requests granted");
  reg.BindCounter("cmp.xcore.denied", &donor_denied_,
                  "donor-core requests denied (no idle core)");
}

}  // namespace spear
