// Per-entry state for the two queue structures of the SPEAR front end:
// the Instruction Fetch Queue (IFQ) and the Register Update Unit (RUU,
// which doubles as reorder buffer and scheduler, as in sim-outorder).
#pragma once

#include <cstdint>

#include "common/types.h"
#include "isa/instruction.h"
#include "sim/exec.h"

namespace spear {

// One IFQ slot. Pre-decode metadata (p-thread indicator, d-load mark) is
// attached at fetch time by the pre-decoder (PD) from the P-thread Table.
struct IfqEntry {
  Instruction instr;
  Pc pc = 0;
  Pc predicted_next = 0;  // fetch-time prediction (pc+8 for non-control)
  bool pred_taken = false;

  // SPEAR pre-decode marks.
  bool pthread_indicator = false;
  std::int32_t dload_spec = -1;  // PT spec index if this PC is a d-load

  std::uint64_t seq = 0;  // monotone fetch sequence number
};

// One RUU slot (either thread's buffer; tid disambiguates).
struct RuuEntry {
  Instruction instr;
  Pc pc = 0;
  ThreadId tid = kMainThread;
  std::uint64_t seq = 0;        // dispatch sequence, unique per buffer
  std::uint64_t fetch_seq = 0;  // IFQ entry this was decoded from (telemetry)

  // Functional result, produced at dispatch (sim-outorder style).
  ExecResult exec;

  // Control speculation bookkeeping (main thread only).
  Pc predicted_next = 0;
  bool pred_taken = false;
  bool mispredict = false;   // correct-path entry whose prediction was wrong
  bool wrongpath = false;    // dispatched beyond a mispredicted branch
  bool recovery_done = false;

  // Scheduling state. Sources wait on producer RUU slots in the *same*
  // thread's buffer; a dep is satisfied once the producer slot no longer
  // holds that seq or has completed. The producer slot doubles as the
  // index into the scheduler's wakeup table.
  struct SrcDep {
    std::int32_t slot = -1;  // -1 = value already architectural
    std::uint64_t producer_seq = 0;
  };
  SrcDep dep[2];
  int ndeps = 0;

  // Operands still outstanding (producer not yet completed), maintained by
  // the event scheduler: counted down by wakeups; 0 means ready to issue.
  std::uint8_t pending_deps = 0;

  bool issued = false;
  bool completed = false;
  Cycle complete_cycle = 0;

  // P-thread specifics.
  bool is_trigger_dload = false;  // retiring this ends pre-execution mode

  // Lockstep co-simulation capture (populated at dispatch only while a
  // checker is attached; see cosim/commit_record.h). Dest values are read
  // back from the dispatch register file right after functional execution,
  // store payloads from dispatch memory at exec.mem_addr.
  std::uint32_t cosim_int_dest = 0;
  double cosim_fp_dest = 0.0;
  std::uint32_t cosim_store_u32 = 0;
  double cosim_store_f64 = 0.0;
  bool cosim_arch_clobber = false;  // p-thread wrote a main arch register
};

}  // namespace spear
