// CMP wrapper (DESIGN.md §17): N SPEAR cores, each with a private L1
// front end, over one shared L2 and one shared outstanding-fill table,
// stepped in lockstep (one call per core per cycle, core 0 first — fully
// deterministic).
//
// Address spaces: core i's program keys every shared structure with
// asid = i (threads-per-core is 1 in CMP mode), so same-virtual-address
// programs never alias in the shared L2 or its fill table; they still
// contend for sets and fill slots, which is the resource interference CMP
// mode exists to measure.
//
// Cross-core pre-execution: CmpSystem is the XcoreArbiter. When a core
// arms a trigger with spear.xcore_pthreads set, the lowest-numbered other
// core that is not running or hosting a session is granted as donor and
// reserved (its own triggers are suppressed) until the session ends. The
// granted session's p-thread then models donor execution: loads skip the
// triggering core's private L1 (they warm the shared L2 only), FUs and
// issue bandwidth come from the donor pool, and the live-in transfer pays
// the cross-core per-register cost.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cosim/cosim.h"
#include "cpu/core.h"
#include "isa/program.h"
#include "mem/cache.h"
#include "mem/hierarchy.h"
#include "telemetry/registry.h"

namespace spear {

class CmpSystem : public Core::XcoreArbiter {
 public:
  // One program per core; every core runs `config` (the shared L2 geometry
  // and latencies are taken from config.mem). spear.xcore_pthreads in the
  // config enables donor requests.
  CmpSystem(const std::vector<const Program*>& progs,
            const CoreConfig& config);
  ~CmpSystem() override = default;

  // Lockstep run: each cycle steps every unfinished core once, core 0
  // first. Stops when every core has halted (or hit `max_instrs_per_core`
  // committed instructions), a cosim checker diverged, or `max_cycles`
  // elapsed. The aggregate result sums instructions over cores.
  RunResult Run(std::uint64_t max_instrs_per_core,
                std::uint64_t max_cycles = UINT64_MAX);

  // Attaches one lockstep cosim checker per core. Must run before Run.
  // A nonzero `inject.inject_at` arms the fault-injection self-test on
  // one core only — `target_core` (clamped into range, so -1 = core 0);
  // the per-core checker sees a single thread, so `inject.inject_tid` is
  // forced to -1.
  void EnableCosim(cosim::CosimChecker::Config inject = {},
                   int target_core = 0);
  bool cosim_diverged() const;
  std::uint64_t cosim_checked() const;  // commits compared, summed over cores
  // Report of the first diverging core ("" when clean).
  std::string CosimReport() const;

  std::size_t num_cores() const { return cores_.size(); }
  Core& core(std::size_t i) { return *cores_[i]; }
  const Core& core(std::size_t i) const { return *cores_[i]; }
  const Cache& shared_l2() const { return shared_l2_; }
  const FillTable& shared_fills() const { return shared_fills_; }

  // Per-core trees under "core<i>." plus the shared L2 once under
  // "cmp.l2.*" and the cross-core grant counters under "cmp.xcore.*".
  void RegisterStats(telemetry::StatRegistry& reg) const;

  // XcoreArbiter: grants the lowest-numbered idle core (not the requester,
  // not in a session of its own, not already donating).
  int RequestDonor(int requester) override;
  void ReleaseDonor(int donor) override;

 private:
  CoreConfig config_;
  std::vector<const Program*> progs_;  // one per core, borrowed
  Cache shared_l2_;
  FillTable shared_fills_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<std::unique_ptr<cosim::CosimChecker>> checkers_;
  std::vector<bool> donating_;
  std::uint64_t donor_grants_ = 0;
  std::uint64_t donor_denied_ = 0;
  Cycle now_ = 0;
};

}  // namespace spear
