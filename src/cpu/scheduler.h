// Event-driven issue/wakeup scheduler state for one RUU (either thread's
// buffer — the p-thread RUU shares the machinery).
//
// The old core re-derived readiness every cycle by walking the full RUU in
// Issue(), Writeback() and recovery — O(ruu_size) per cycle even when
// nothing was ready, the classic SimpleScalar-descendant sim slowdown.
// This header holds the three structures that replace those scans:
//
//   * a ready queue (age-ordered) an entry enters exactly when its last
//     outstanding operand completes — or at dispatch, if none were
//     outstanding;
//   * a completion event list bucketed by cycle for in-flight FU/memory
//     ops, drained with a single hash lookup per cycle;
//   * a per-architectural-register wakeup table: each entry is a consumer
//     waiting for a specific producer (identified by dispatch seq) of that
//     register, appended at dispatch and consumed when the producer's
//     completion event fires.
//
// Everything here is *derived* scheduling state: it refers to RUU slots by
// {physical slot, dispatch seq} pairs (SchedRef). Slots are reused after
// commit/squash but seqs never are, so a stale reference is detected by a
// seq mismatch and dropped lazily — squash (mispredict recovery, p-thread
// session teardown) does not have to hunt down every reference it kills.
// Because nothing in here is architectural and the timed core only ever
// starts from an empty pipeline (Core::InstallWarmState requires cycle 0),
// SPCK checkpoints carry no scheduler state: it is trivially reconstructed
// as "all empty" at install (see runner/checkpoint.h).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace spear {

// Reference to an RUU occupant: physical slot + the dispatch seq that
// validates it. Holders must re-check `Slot(slot).seq == seq` before use.
struct SchedRef {
  std::uint64_t seq = 0;
  std::uint32_t slot = 0;
};

class EventScheduler {
 public:
  // One consumer waiting on one outstanding source operand. producer_seq
  // identifies which in-flight writer of the register this waiter belongs
  // to (a register can have several renamed writers in flight at once).
  struct Waiter {
    std::uint64_t producer_seq = 0;
    std::uint64_t consumer_seq = 0;
    std::uint32_t consumer_slot = 0;
  };

  // ---- ready queue -------------------------------------------------------
  // Kept sorted by seq so issue scans it oldest-first, exactly like the
  // old full-RUU age-order walk. Dispatch-time insertions are always the
  // youngest seq (O(1) append); wakeup-time insertions may interleave with
  // older FU-blocked entries and take the sorted-insert path.
  void InsertReady(SchedRef r) {
    if (ready_.empty() || ready_.back().seq < r.seq) {
      ready_.push_back(r);
      return;
    }
    const auto it = std::lower_bound(
        ready_.begin(), ready_.end(), r,
        [](const SchedRef& a, const SchedRef& b) { return a.seq < b.seq; });
    ready_.insert(it, r);
  }
  std::vector<SchedRef>& ready() { return ready_; }
  const std::vector<SchedRef>& ready() const { return ready_; }

  // ---- completion events -------------------------------------------------
  void ScheduleCompletion(Cycle cycle, SchedRef r) {
    events_[cycle].push_back(r);
    ++pending_events_;
  }

  // Removes and returns the completion bucket for `cycle`, sorted
  // oldest-first so completions (and their trace records / wakeups) happen
  // in the same age order the old linear writeback scan produced.
  std::vector<SchedRef> TakeCompletions(Cycle cycle) {
    std::vector<SchedRef> bucket;
    if (pending_events_ == 0) return bucket;
    const auto it = events_.find(cycle);
    if (it == events_.end()) return bucket;
    bucket = std::move(it->second);
    events_.erase(it);
    pending_events_ -= bucket.size();
    std::sort(bucket.begin(), bucket.end(),
              [](const SchedRef& a, const SchedRef& b) { return a.seq < b.seq; });
    return bucket;
  }

  // ---- per-architectural-register wakeup table ---------------------------
  std::vector<Waiter>& waiters(RegId reg) {
    SPEAR_DCHECK(reg < kNumArchRegs);
    return wakeup_[reg];
  }

  // Completed-but-unrecovered mispredicted branches (main thread only);
  // writeback resolves the oldest valid one per cycle.
  std::vector<SchedRef>& pending_recovery() { return pending_recovery_; }

  bool empty() const {
    if (!ready_.empty() || pending_events_ != 0 || !pending_recovery_.empty()) {
      return false;
    }
    for (const std::vector<Waiter>& w : wakeup_) {
      if (!w.empty()) return false;
    }
    return true;
  }

  void Reset() {
    ready_.clear();
    events_.clear();
    pending_events_ = 0;
    for (std::vector<Waiter>& w : wakeup_) w.clear();
    pending_recovery_.clear();
  }

 private:
  std::vector<SchedRef> ready_;
  std::unordered_map<Cycle, std::vector<SchedRef>> events_;
  std::size_t pending_events_ = 0;
  std::array<std::vector<Waiter>, kNumArchRegs> wakeup_;
  std::vector<SchedRef> pending_recovery_;
};

}  // namespace spear
