// Event-driven issue/wakeup scheduler state for one RUU (either thread's
// buffer — the p-thread RUU shares the machinery).
//
// The old core re-derived readiness every cycle by walking the full RUU in
// Issue(), Writeback() and recovery — O(ruu_size) per cycle even when
// nothing was ready, the classic SimpleScalar-descendant sim slowdown.
// This header holds the three structures that replace those scans:
//
//   * a ready queue (age-ordered) an entry enters exactly when its last
//     outstanding operand completes — or at dispatch, if none were
//     outstanding;
//   * a completion event calendar ring for in-flight FU/memory ops,
//     drained with a single masked array index per cycle;
//   * a per-producer-slot wakeup table: each entry is a consumer waiting
//     on the occupant of one physical RUU slot (validated by dispatch
//     seq), appended at dispatch and consumed when that producer's
//     completion event fires. Keying by producer slot instead of
//     architectural register means a completion walks exactly its own
//     consumers, never every waiter of a hot register; stale entries left
//     by a squashed producer are dropped by the seq check the next time
//     the slot's occupant completes.
//
// Everything here is *derived* scheduling state: it refers to RUU slots by
// {physical slot, dispatch seq} pairs (SchedRef). Slots are reused after
// commit/squash but seqs never are, so a stale reference is detected by a
// seq mismatch and dropped lazily — squash (mispredict recovery, p-thread
// session teardown) does not have to hunt down every reference it kills.
// Because nothing in here is architectural and the timed core only ever
// starts from an empty pipeline (Core::InstallWarmState requires cycle 0),
// SPCK checkpoints carry no scheduler state: it is trivially reconstructed
// as "all empty" at install (see runner/checkpoint.h).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace spear {

// Reference to an RUU occupant: physical slot + the dispatch seq that
// validates it. Holders must re-check `Slot(slot).seq == seq` before use.
struct SchedRef {
  std::uint64_t seq = 0;
  std::uint32_t slot = 0;
};

class EventScheduler {
 public:
  // One consumer waiting on one outstanding source operand. producer_seq
  // identifies which in-flight writer of the register this waiter belongs
  // to (a register can have several renamed writers in flight at once).
  struct Waiter {
    std::uint64_t producer_seq = 0;
    std::uint64_t consumer_seq = 0;
    std::uint32_t consumer_slot = 0;
  };

  // ---- ready queue -------------------------------------------------------
  // Kept sorted by seq so issue scans it oldest-first, exactly like the
  // old full-RUU age-order walk. Dispatch-time insertions are always the
  // youngest seq (O(1) append); wakeup-time insertions may interleave with
  // older FU-blocked entries and take the sorted-insert path.
  void InsertReady(SchedRef r) {
    if (ready_.empty() || ready_.back().seq < r.seq) {
      ready_.push_back(r);
      return;
    }
    const auto it = std::lower_bound(
        ready_.begin(), ready_.end(), r,
        [](const SchedRef& a, const SchedRef& b) { return a.seq < b.seq; });
    ready_.insert(it, r);
  }
  std::vector<SchedRef>& ready() { return ready_; }
  const std::vector<SchedRef>& ready() const { return ready_; }

  // ---- completion events -------------------------------------------------
  // Calendar ring: bucket index is the completion cycle masked into a
  // power-of-two ring. The drain visits every cycle in order, so a bucket
  // can never hold two distinct live cycles as long as every in-flight
  // latency is below the ring span — true for all real FU/memory configs.
  // Anything farther out (pathological --mem-latency tests) spills into a
  // map keyed by absolute cycle. No hashing, no node allocation, and no
  // bucket churn on the per-cycle path.
  static constexpr std::size_t kRingBuckets = 512;  // > max completion latency
  static constexpr std::size_t kRingMask = kRingBuckets - 1;

  void ScheduleCompletion(Cycle now, Cycle cycle, SchedRef r) {
    SPEAR_DCHECK(cycle > now);
    if (cycle - now < kRingBuckets) {
      ring_[cycle & kRingMask].push_back(r);
    } else {
      far_events_[cycle].push_back(r);
    }
    ++pending_events_;
  }

  // Removes the completion bucket for `cycle` into `out`, sorted
  // oldest-first so completions (and their trace records / wakeups) happen
  // in the same age order the old linear writeback scan produced. `out` is
  // cleared in all cases; callers keep a scratch vector across cycles so
  // the drain is allocation-free in steady state (bucket and scratch
  // capacities circulate via swap).
  void TakeCompletionsInto(Cycle cycle, std::vector<SchedRef>& out) {
    out.clear();
    if (pending_events_ == 0) return;
    std::vector<SchedRef>& bucket = ring_[cycle & kRingMask];
    if (!bucket.empty()) {
      out.swap(bucket);
      bucket.clear();  // swap left out's stale contents behind
    }
    if (!far_events_.empty()) {
      const auto it = far_events_.find(cycle);
      if (it != far_events_.end()) {
        out.insert(out.end(), it->second.begin(), it->second.end());
        far_events_.erase(it);
      }
    }
    pending_events_ -= out.size();
    if (out.size() > 1) {
      std::sort(out.begin(), out.end(), [](const SchedRef& a,
                                           const SchedRef& b) {
        return a.seq < b.seq;
      });
    }
  }

  // Compatibility wrapper around TakeCompletionsInto.
  std::vector<SchedRef> TakeCompletions(Cycle cycle) {
    std::vector<SchedRef> bucket;
    TakeCompletionsInto(cycle, bucket);
    return bucket;
  }

  // ---- per-producer-slot wakeup table ------------------------------------
  // Sized to the owning RUU's slot count at Core construction and
  // re-validated on every attach: a scheduler reused with a *smaller* RUU
  // geometry must not keep stale high slots around (waiters(slot) would
  // pass its bounds check against the old, larger table and index wakeup
  // state no live RUU slot backs). assign() both resizes and clears, so an
  // attach is always a clean slate.
  void SetSlotCount(std::size_t slots) {
    SPEAR_DCHECK(empty());
    wakeup_.assign(slots, {});
  }

  std::size_t slot_count() const { return wakeup_.size(); }

  std::vector<Waiter>& waiters(std::size_t producer_slot) {
    SPEAR_DCHECK(producer_slot < wakeup_.size());
    return wakeup_[producer_slot];
  }

  // Completed-but-unrecovered mispredicted branches (main thread only);
  // writeback resolves the oldest valid one per cycle.
  std::vector<SchedRef>& pending_recovery() { return pending_recovery_; }

  bool empty() const {
    if (!ready_.empty() || pending_events_ != 0 || !pending_recovery_.empty()) {
      return false;
    }
    for (const std::vector<Waiter>& w : wakeup_) {
      if (!w.empty()) return false;
    }
    return true;
  }

  void Reset() {
    ready_.clear();
    for (std::vector<SchedRef>& b : ring_) b.clear();
    far_events_.clear();
    pending_events_ = 0;
    for (std::vector<Waiter>& w : wakeup_) w.clear();
    pending_recovery_.clear();
  }

 private:
  std::vector<SchedRef> ready_;
  std::array<std::vector<SchedRef>, kRingBuckets> ring_;
  std::unordered_map<Cycle, std::vector<SchedRef>> far_events_;
  std::size_t pending_events_ = 0;
  std::vector<std::vector<Waiter>> wakeup_;  // indexed by producer slot
  std::vector<SchedRef> pending_recovery_;
};

}  // namespace spear
