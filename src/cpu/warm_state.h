// Post-warmup machine state produced by functional fast-forward and
// consumed by Core::InstallWarmState — the paper's skip-and-simulate
// methodology factored into a first-class object. Holds everything the
// timed core's behaviour depends on at the switch point: architectural
// registers, the memory image, cache tag/LRU arrays and predictor tables.
// The runner's checkpoint layer serializes exactly this struct, so a run
// restored from a checkpoint and a run warmed live are bit-identical.
// Deliberately absent: pipeline and scheduler state. Warm state installs
// only at cycle 0, where the RUU, IFQ and the event scheduler's wakeup /
// ready / completion structures are empty by construction (enforced by
// Core::InstallWarmState), so checkpoints need not carry them.
#pragma once

#include <array>
#include <cstdint>

#include "bpred/bpred.h"
#include "common/types.h"
#include "mem/cache.h"
#include "mem/memory.h"

namespace spear {

struct WarmState {
  std::array<std::uint32_t, kNumIntRegs> iregs{};
  std::array<double, kNumFpRegs> fregs{};
  Pc pc = 0;
  std::uint64_t warmed_instrs = 0;  // instructions actually fast-forwarded
  bool halted = false;              // program ended during warmup
  Memory mem;                       // move-only, so WarmState is too
  CacheState l1d;
  CacheState l2;
  BpredState bpred;
};

}  // namespace spear
