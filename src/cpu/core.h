// The SPEAR cycle-level core: an 8-wide out-of-order SMT pipeline in the
// sim-outorder tradition, extended with the SPEAR front end (paper
// Section 3):
//
//   fetch -> pre-decode(PD) -> IFQ -> decode/rename -> RUU -> issue ->
//   FUs/memory -> writeback -> commit
//
// Execution model: instructions execute *functionally* at dispatch against
// the in-order dispatch state; the scheduler models timing only. A
// mispredicted (correct-path) branch flips dispatch into speculative-
// overlay mode; its writeback squashes younger entries, discards the
// overlay, flushes the IFQ and redirects fetch.
//
// SPEAR additions: the pre-decoder marks IFQ entries from the P-thread
// Table; the trigger logic (d-load pre-decoded while IFQ >= half full)
// drains the RUU, copies live-ins at 1 reg/cycle, then activates the
// P-thread Extractor, which pulls marked entries out of the IFQ (<= 4 per
// cycle, sharing decode bandwidth) into the p-thread context. P-thread
// instructions get issue priority; their loads warm the shared D-cache;
// pre-execution ends when the triggering d-load retires from the p-thread
// RUU.
//
// Multi-program SMT (DESIGN.md §17): the core hosts N main-thread
// contexts (tids 0..N-1), each with its own program, dispatch-time memory
// image, IFQ share (ifq_size/N) and RUU partition (ruu_size/N), plus one
// p-thread context at tid N. Fetch picks one thread per cycle by ICOUNT
// (fewest in-flight instructions); dispatch/issue/commit bandwidth is
// shared round-robin. At N=1 every policy degenerates to the historical
// single-thread operation sequence, bit-exactly.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "bpred/bpred.h"
#include "common/circular_buffer.h"
#include "common/types.h"
#include "cosim/commit_record.h"
#include "cpu/config.h"
#include "cpu/pipeline_types.h"
#include "cpu/scheduler.h"
#include "cpu/warm_state.h"
#include "isa/program.h"
#include "mem/hierarchy.h"
#include "mem/memory.h"
#include "mem/stride_prefetcher.h"
#include "sim/block_cache.h"
#include "spear/pthread_context.h"
#include "spear/pthread_table.h"
#include "spear/taint_observer.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace spear {

struct RunResult {
  Cycle cycles = 0;
  std::uint64_t instructions = 0;  // main-thread committed (all threads)
  bool halted = false;
  double Ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }
};

// Per-main-thread outcome for multiprogram runs (weighted speedup and
// fairness are derived from these by the harness).
struct ThreadResult {
  std::uint64_t committed = 0;
  Cycle cycles = 0;  // halt cycle, or total elapsed if still running
  bool halted = false;
  double Ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(committed) /
                             static_cast<double>(cycles);
  }
};

// Aggregate counters exposed to benches and tests.
struct CoreStats {
  Cycle cycles = 0;
  std::uint64_t committed = 0;          // main-thread instructions
  std::uint64_t committed_loads = 0;
  std::uint64_t committed_stores = 0;
  std::uint64_t committed_branches = 0;     // all control
  std::uint64_t committed_cond_branches = 0;
  std::uint64_t bpred_dir_correct = 0;      // conditional direction hits
  std::uint64_t mispredict_recoveries = 0;
  std::uint64_t fetched = 0;
  std::uint64_t dispatched_main = 0;
  std::uint64_t dispatch_stall_ruu_full = 0;
  std::uint64_t dispatch_stall_trigger = 0;

  // Wrong-path accounting (recovery cost; see Figure 8 cross-checks).
  std::uint64_t dispatched_wrongpath = 0;  // executed past a mispredict
  std::uint64_t squashed_wrongpath = 0;    // RUU entries squashed at recovery
  std::uint64_t ifq_flushed = 0;           // fetched entries discarded at recovery

  // SPEAR.
  std::uint64_t triggers_fired = 0;
  std::uint64_t triggers_suppressed_occupancy = 0;  // d-load seen, IFQ too empty
  std::uint64_t triggers_aborted = 0;               // flushed by recovery
  std::uint64_t preexec_sessions_completed = 0;
  std::uint64_t pthread_extracted = 0;
  std::uint64_t pthread_lost_to_dispatch = 0;  // marked entries the PE missed
  std::uint64_t pthread_loads_issued = 0;
  std::uint64_t drain_cycles = 0;
  std::uint64_t copy_cycles = 0;
  std::uint64_t preexec_cycles = 0;

  // Stride-prefetcher baseline.
  std::uint64_t stride_prefetches = 0;

  // BasicBlocker-style fence (CoreConfig::fence_spec_loads): issue slots a
  // load lost to an older unresolved branch. Bound only when fencing is on.
  std::uint64_t fence_load_stalls = 0;

  // Chaining-trigger extension.
  std::uint64_t chained_triggers = 0;

  // Cross-core pre-execution (CMP mode; bound only when an arbiter is
  // attached): sessions granted a donor core, sessions that fell back to
  // the same-core context, and triggers suppressed while this core was
  // donating its p-thread context to a neighbor.
  std::uint64_t xcore_sessions = 0;
  std::uint64_t xcore_fallback_same_core = 0;
  std::uint64_t triggers_suppressed_donor = 0;

  // Event scheduler (core.sched.*): operand-completion wakeups delivered,
  // ready-queue insertions, and an estimate of the per-cycle RUU scan work
  // the event lists avoided relative to the old linear loops.
  std::uint64_t sched_wakeups = 0;
  std::uint64_t sched_ready_enqueued = 0;
  std::uint64_t sched_scan_saved = 0;

  // PE scan-pointer resyncs (spear.pe_scan_resync). Dispatch keeps the
  // pointer ahead of the IFQ head as it pops, so this must stay 0; a
  // nonzero count means the sequencing bug the old silent clamp hid is
  // back (SPEAR_DCHECKed in debug builds).
  std::uint64_t pe_scan_resyncs = 0;

  double BranchHitRatio() const {
    return committed_cond_branches == 0
               ? 1.0
               : static_cast<double>(bpred_dir_correct) /
                     static_cast<double>(committed_cond_branches);
  }
  double Ipb() const {  // instructions per branch
    // 0/0 convention matches Ipc() and telemetry::SafeRatio: a run that
    // committed no branches reports 0, not `committed` (which leaked a
    // count into a ratio slot and blew up downstream geomeans).
    return committed_branches == 0
               ? 0.0
               : static_cast<double>(committed) /
                     static_cast<double>(committed_branches);
  }
};

// Distribution stats the core samples while running (cheap integer
// accumulators; see telemetry/stat.h).
struct CoreTelemetry {
  telemetry::Distribution ifq_occupancy{
      std::vector<std::uint64_t>{8, 16, 32, 64, 128, 256, 512}};
  telemetry::Distribution access_latency{
      std::vector<std::uint64_t>{1, 4, 12, 40, 120, 240}};
  telemetry::Distribution session_len{
      std::vector<std::uint64_t>{1, 2, 4, 8, 16, 32, 64}};
  telemetry::Distribution sched_ready_occupancy{
      std::vector<std::uint64_t>{1, 2, 4, 8, 16, 32, 64}};
};

class Core {
 public:
  // Arbitrates idle donor cores for cross-core pre-execution (CMP mode;
  // implemented by CmpSystem). A core arming a trigger asks for a donor;
  // a granted donor is reserved until the session ends.
  class XcoreArbiter {
   public:
    virtual ~XcoreArbiter() = default;
    // Returns the reserved donor core id, or -1 when none is idle.
    virtual int RequestDonor(int requester) = 0;
    virtual void ReleaseDonor(int donor) = 0;
  };

  // `shared_block_cache` lets same-program cores (the sampled-run
  // orchestrator constructs one per detailed interval) reuse one decoded
  // code image; nullptr gives the core a private cache. The cache is
  // (re-)attached in the constructor, so a shared cache keyed to a
  // different program or P-thread Table flushes automatically.
  Core(const Program& prog, const CoreConfig& config,
       BlockCache* shared_block_cache = nullptr);

  // Multi-program SMT: one main-thread context per program (tid = index),
  // p-thread context at tid = progs.size(). A shared block cache is only
  // legal single-program (each context needs its own decoded image).
  Core(const std::vector<const Program*>& progs, const CoreConfig& config,
       BlockCache* shared_block_cache = nullptr);

  // Advances one clock cycle.
  void StepCycle();

  // Runs until every main thread commits a HALT, `max_instrs` main-thread
  // instructions have committed (summed over threads), or `max_cycles`
  // elapsed.
  RunResult Run(std::uint64_t max_instrs,
                std::uint64_t max_cycles = UINT64_MAX);

  // Installs post-warmup state (registers, fetch PC, memory image, cache
  // tag/LRU arrays, predictor tables) from a functional fast-forward or a
  // restored checkpoint. Only legal before the first cycle and with a
  // single main thread; the warm state's cache/predictor geometry must
  // match this core's config.
  void InstallWarmState(const WarmState& ws);

  bool halted() const { return halted_; }
  const CoreStats& stats() const { return stats_; }
  const CoreTelemetry& core_telemetry() const { return telem_; }
  const MemoryHierarchy& hierarchy() const { return hier_; }
  MemoryHierarchy& hierarchy() { return hier_; }
  const CoreConfig& config() const { return config_; }
  const std::vector<std::uint32_t>& outputs() const {
    return threads_[0]->outputs;
  }

  // ---- multi-thread / CMP surface ----
  std::uint32_t num_main_threads() const { return num_main_; }
  ThreadId pthread_tid() const { return static_cast<ThreadId>(num_main_); }
  ThreadResult thread_result(std::uint32_t t) const;
  const std::vector<std::uint32_t>& thread_outputs(std::uint32_t t) const {
    return threads_[t]->outputs;
  }
  bool in_session() const;

  // Address-space ids: main thread t keys shared cache structures with
  // asid_base + t (the p-thread uses its session owner's asid). CmpSystem
  // spaces the bases so cores never collide; the default base of 0 keeps
  // single-program keys bit-identical to the historical form.
  void set_asid_base(std::uint32_t base) { asid_base_ = base; }

  // Attaches the cross-core pre-execution arbiter (CMP mode). `core_id` is
  // this core's index in the CMP, used as the requester id.
  void set_xcore_arbiter(XcoreArbiter* arb, int core_id) {
    xcore_arb_ = arb;
    core_id_ = core_id;
  }
  // Marks this core as donating its p-thread context to a neighbor; its
  // own triggers are suppressed while set.
  void set_donating(bool on) { donating_ = on; }

  // Binds every counter, distribution and derived stat of this core (and
  // its substrates) into `reg` under the core/mem/bpred/spear namespaces.
  // The registry reads live values, so it can be registered once and
  // emitted after (or during) a run. Implemented in core_stats.cc.
  void RegisterStats(telemetry::StatRegistry& reg) const;
  // Same, under "core<id>." etc. for per-core CMP documents.
  void RegisterStatsPrefixed(telemetry::StatRegistry& reg,
                             const std::string& prefix) const;

  // Attaches a pipeline event trace (nullptr detaches). The trace is
  // passive: it never affects simulated timing, and the hooks compile out
  // entirely under -DSPEAR_TELEMETRY_TRACE=0.
  void set_trace(telemetry::PipeTrace* trace) { trace_ = trace; }

  // Attaches a lockstep co-simulation sink (nullptr detaches): every
  // main-thread commit and p-thread retire is delivered as a CommitRecord.
  // When the sink reports divergence the core latches cosim_diverged() and
  // the run stops (deterministically — see src/cosim). Costs one pointer
  // test per commit when detached; compiles out under
  // -DSPEAR_ENABLE_COSIM=0.
  void set_cosim(cosim::CommitSink* sink) { cosim_ = sink; }
  bool cosim_diverged() const { return cosim_diverged_; }

  // Attaches the speculative-leakage taint observer (nullptr detaches).
  // Purely observational: it sees execute-at-dispatch results, issue-time
  // cache accesses and episode boundaries, and never feeds timing back.
  // Costs one pointer test per event when detached; compiles out under
  // -DSPEAR_ENABLE_TAINT=0.
  void set_taint_observer(taint::TaintObserver* observer) {
    taint_ = observer;
  }

  // Committed-PC trace capture for oracle tests (off by default). The
  // backing store is a bounded ring holding the most recent `cap` commits,
  // so arbitrarily long runs stay O(cap) in memory; evicted entries are
  // tallied in commit_trace_dropped().
  static constexpr std::size_t kDefaultCommitTraceCap = 1u << 16;
  void set_trace_commits(bool on, std::size_t cap = kDefaultCommitTraceCap) {
    trace_commits_ = on;
    commit_trace_cap_ = cap == 0 ? 1 : cap;
  }
  // The retained trace, oldest to newest (materialized from the ring).
  std::vector<Pc> commit_trace() const;
  std::uint64_t commit_trace_dropped() const { return commit_trace_dropped_; }

 private:
  struct RenameMap {
    std::array<std::int32_t, kNumArchRegs> slot;
    std::array<std::uint64_t, kNumArchRegs> seq;
    void Reset() {
      slot.fill(-1);
      seq.fill(0);
    }
  };

  // Wrong-path store overlay slot (open-addressed table; see core.cc).
  struct SpecMemSlot {
    Addr addr = 0;
    std::uint64_t epoch = 0;
    std::uint8_t val = 0;
  };

  // One main-thread hardware context: program, dispatch-time architectural
  // state (with wrong-path overlay), front-end queue and back-end
  // partition. At N=1 the single context is the historical core state.
  struct ThreadCtx {
    ThreadCtx(const Program& p, std::uint32_t ifq_cap, std::uint32_t ruu_cap,
              std::uint32_t index);

    const Program* prog;
    std::uint32_t index;  // == main-thread tid
    Memory mem;           // dispatch-time memory image (correct path)

    // Front end.
    CircularBuffer<IfqEntry> ifq;
    Pc fetch_pc;
    std::uint64_t fetch_seq = 0;
    BlockCache own_bcache;
    BlockCache* bcache = nullptr;

    // Machine state at dispatch.
    std::array<std::uint32_t, kNumIntRegs> iregs;
    std::array<double, kNumFpRegs> fregs;
    bool spec_mode = false;
    // Wrong-path overlay. Every wrong-path register/memory access funnels
    // through here (vpr dispatches ~2 wrong-path instructions per
    // committed one), so the overlay must not hash per access. Registers
    // are epoch-tagged flat arrays: a slot belongs to the overlay iff its
    // epoch matches spec_epoch, and RecoverFromMispredict discards
    // everything by bumping the epoch. Stores land in an open-addressed
    // linear-probe byte table where stale-epoch slots read as empty, so it
    // too clears in O(1). The epoch is 64-bit: it never wraps within any
    // feasible run.
    std::uint64_t spec_epoch = 1;
    std::array<std::uint32_t, kNumIntRegs> spec_ireg_val{};
    std::array<std::uint64_t, kNumIntRegs> spec_ireg_epoch{};
    std::array<double, kNumFpRegs> spec_freg_val{};
    std::array<std::uint64_t, kNumFpRegs> spec_freg_epoch{};
    std::vector<SpecMemSlot> spec_mem;  // power-of-two open-addressed table
    std::size_t spec_mem_count = 0;     // live entries in the current epoch
    bool dispatch_halted = false;

    // Back end partition.
    CircularBuffer<RuuEntry> ruu;
    RenameMap rename;
    std::uint64_t dispatch_seq = 0;
    EventScheduler sched;

    // Per-program SPEAR pre-decode table.
    PThreadTable pt;

    // Run state.
    bool halted = false;
    Cycle halt_cycle = 0;
    std::uint64_t committed = 0;
    std::vector<std::uint32_t> outputs;
  };

  // ---- pipeline stages (called in reverse order each cycle) ----
  void Commit();
  bool CommitThread(ThreadCtx& t);  // false = stop the cycle (divergence)
  void PThreadRetire();
  void Writeback();
  void Issue();
  void SpearTriggerTick();
  int ExtractPThread();          // returns decode slots consumed
  void Dispatch(std::uint32_t budget);
  void DispatchThread(ThreadCtx& t, std::uint32_t& budget);
  void Fetch();
  void FetchThread(ThreadCtx& t);

  // ---- event scheduler ----
  void IssueReady(EventScheduler& sched, CircularBuffer<RuuEntry>& buf,
                  ThreadCtx& fence_owner, bool pthread_buf);
  void DrainCompletions(EventScheduler& sched, CircularBuffer<RuuEntry>& buf,
                        ThreadId tid, bool main_thread);
  void WakeConsumers(EventScheduler& sched, CircularBuffer<RuuEntry>& buf,
                     std::uint32_t producer_slot, std::uint64_t producer_seq);

  // ---- speculation ----
  void RecoverFromMispredict(ThreadCtx& t, std::size_t branch_slot);
  void RebuildRenameMap(ThreadCtx& t);
  void PurgeDeadRefs(EventScheduler& sched, CircularBuffer<RuuEntry>& buf);
  bool SpecMemFind(const ThreadCtx& t, Addr a, std::uint8_t* out) const;
  void SpecMemInsert(ThreadCtx& t, Addr a, std::uint8_t v);
  void SpecMemGrow(ThreadCtx& t);

  // ---- SPEAR state machine ----
  enum class TriggerState : std::uint8_t {
    kNormal,
    kDraining,
    kCopying,
    kPreExec,
  };
  void ArmTrigger(ThreadCtx& t, int spec_index, std::uint64_t dload_seq);
  void SnapshotLiveIns();
  void ActivatePe();
  void BeginCopy();
  void BeginPreExec();
  void EndPreExec(bool completed);
  void MaybeExtractOnPop(ThreadCtx& t, const IfqEntry& fe);

  // ---- helpers ----
  ThreadCtx& owner_ctx() { return *threads_[session_owner_]; }
  const ThreadCtx& owner_ctx() const { return *threads_[session_owner_]; }
  std::uint32_t AsidOf(ThreadId tid) const {
    return asid_base_ +
           (tid == pthread_tid() ? session_owner_
                                 : static_cast<std::uint32_t>(tid));
  }
  bool DepsReady(const RuuEntry& e) const;
  bool AcquireFu(FuClass fu, ThreadId tid);
  std::uint32_t ExecLatency(const RuuEntry& e);
  void DispatchOne(CircularBuffer<RuuEntry>& buffer, const IfqEntry& fe,
                   ThreadId tid, ThreadCtx& t);
  bool DeliverCommit(const RuuEntry& e);
  void RecordTraceCommit(Pc pc);

  // Dispatch-time architectural state, with speculative overlay for
  // wrong-path execution.
  struct MainState {
    Core* c;
    ThreadCtx* t;
    std::uint32_t ReadInt(RegId reg);
    void WriteInt(RegId reg, std::uint32_t v);
    double ReadFp(RegId reg);
    void WriteFp(RegId reg, double v);
    std::uint8_t LoadU8(Addr a);
    std::uint32_t LoadU32(Addr a);
    double LoadF64(Addr a);
    void StoreU8(Addr a, std::uint8_t v);
    void StoreU32(Addr a, std::uint32_t v);
    void StoreF64(Addr a, double v);
  };
  friend struct MainState;

  CoreConfig config_;
  std::uint32_t num_main_;

  // Substrates (shared by every context).
  MemoryHierarchy hier_;
  BranchPredictor bpred_;
  StridePrefetcher stride_;

  // Main-thread contexts (unique_ptr: ThreadCtx is not movable — its
  // buffers carry explicit capacities).
  std::vector<std::unique_ptr<ThreadCtx>> threads_;

  EventScheduler psched_;  // p-thread RUU shares the machinery
  // Reused completion-drain buffer: DrainCompletions runs twice per cycle
  // and must not allocate a fresh vector each time.
  std::vector<SchedRef> completion_scratch_;

  // P-thread machinery (one session core-wide; session_owner_ names the
  // main thread whose trigger armed it).
  PThreadContext pctx_;
  CircularBuffer<RuuEntry> pruu_;
  RenameMap prename_;
  std::uint64_t pdispatch_seq_ = 0;
  TriggerState trigger_state_ = TriggerState::kNormal;
  std::uint32_t session_owner_ = 0;
  int active_spec_ = -1;
  std::uint64_t trigger_dload_seq_ = 0;
  std::uint64_t trigger_dispatch_seq_ = 0;  // commit point for drain-to-trigger
  std::uint64_t pe_scan_seq_ = 0;
  bool pe_active_ = false;
  bool trigger_captured_ = false;  // the d-load entered the p-thread RUU
  bool chain_pending_ = false;     // chaining extension: next d-load re-arms

  std::uint32_t copy_remaining_ = 0;

  // Cross-core pre-execution (CMP mode).
  XcoreArbiter* xcore_arb_ = nullptr;
  int core_id_ = 0;
  bool donating_ = false;       // reserved as a neighbor's donor
  bool session_xcore_ = false;  // current session runs on a donor core
  int session_donor_ = -1;
  std::uint32_t asid_base_ = 0;

  // Per-cycle FU accounting: [0]=shared/main pool, [1]=p-thread pool when
  // separate_fu is on or the session runs cross-core (donor FUs).
  struct FuUse {
    std::uint32_t int_alu = 0;
    std::uint32_t int_muldiv = 0;
    std::uint32_t fp_alu = 0;
    std::uint32_t fp_muldiv = 0;
    std::uint32_t mem_ports = 0;
  };
  static constexpr std::size_t kNumFuPools = 2;
  FuUse fu_use_[kNumFuPools];
  std::uint32_t issued_this_cycle_ = 0;

  // Run state.
  Cycle now_ = 0;
  bool halted_ = false;
  CoreStats stats_;
  CoreTelemetry telem_;
  std::uint64_t session_extracted_ = 0;  // extraction count, current session
  telemetry::PipeTrace* trace_ = nullptr;

  // Lockstep co-simulation (see cosim/commit_record.h).
  cosim::CommitSink* cosim_ = nullptr;
  bool cosim_diverged_ = false;

  // Speculative-leakage observer (see spear/taint_observer.h).
  taint::TaintObserver* taint_ = nullptr;

  // Bounded committed-PC ring: commit_trace_ fills to commit_trace_cap_,
  // then commit_trace_head_ marks the oldest slot to overwrite.
  bool trace_commits_ = false;
  std::size_t commit_trace_cap_ = kDefaultCommitTraceCap;
  std::size_t commit_trace_head_ = 0;
  std::uint64_t commit_trace_dropped_ = 0;
  std::vector<Pc> commit_trace_;
};

}  // namespace spear
