#include "isa/binary.h"

#include <cstdio>
#include <cstring>

#include "common/check.h"
#include "isa/spec_check.h"

namespace spear {
namespace {

constexpr char kMagic[8] = {'S', 'P', 'E', 'A', 'R', 'B', 'I', 'N'};

class Writer {
 public:
  void U8(std::uint8_t v) { out_.push_back(v); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) U8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) U8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void F64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Bytes(const std::vector<std::uint8_t>& b) {
    out_.insert(out_.end(), b.begin(), b.end());
  }
  std::vector<std::uint8_t> Take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& in) : in_(in) {}

  std::uint8_t U8() {
    SPEAR_CHECK(pos_ < in_.size());
    return in_[pos_++];
  }
  std::uint32_t U32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(U8()) << (8 * i);
    return v;
  }
  std::uint64_t U64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(U8()) << (8 * i);
    return v;
  }
  double F64() {
    const std::uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::vector<std::uint8_t> Bytes(std::size_t n) {
    SPEAR_CHECK(pos_ + n <= in_.size());
    std::vector<std::uint8_t> b(in_.begin() + static_cast<long>(pos_),
                                in_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return b;
  }
  bool AtEnd() const { return pos_ == in_.size(); }

 private:
  const std::vector<std::uint8_t>& in_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> SerializeProgram(const Program& prog) {
  Writer w;
  for (char c : kMagic) w.U8(static_cast<std::uint8_t>(c));
  w.U32(kSpearBinVersion);
  w.U32(prog.text_base);
  w.U32(prog.entry);

  w.U32(static_cast<std::uint32_t>(prog.text.size()));
  for (const Instruction& in : prog.text) w.U64(Encode(in));

  w.U32(static_cast<std::uint32_t>(prog.data.size()));
  for (const DataSegment& seg : prog.data) {
    w.U32(seg.base);
    w.U32(static_cast<std::uint32_t>(seg.bytes.size()));
    w.Bytes(seg.bytes);
  }

  w.U32(static_cast<std::uint32_t>(prog.pthreads.size()));
  for (const PThreadSpec& spec : prog.pthreads) {
    w.U32(spec.dload_pc);
    w.U32(spec.region_start);
    w.U32(spec.region_end);
    w.U64(spec.profile_misses);
    w.F64(spec.region_dcycles);
    w.U32(static_cast<std::uint32_t>(spec.live_ins.size()));
    for (RegId reg : spec.live_ins) w.U8(reg);
    w.U32(static_cast<std::uint32_t>(spec.slice_pcs.size()));
    for (Pc pc : spec.slice_pcs) w.U32(pc);
  }

  w.U32(static_cast<std::uint32_t>(prog.secret_ranges.size()));
  for (const SecretRange& r : prog.secret_ranges) {
    w.U32(r.base);
    w.U32(r.size);
  }
  return w.Take();
}

Program DeserializeProgram(const std::vector<std::uint8_t>& bytes) {
  Reader rd(bytes);
  for (char c : kMagic) SPEAR_CHECK(rd.U8() == static_cast<std::uint8_t>(c));
  const std::uint32_t version = rd.U32();
  SPEAR_CHECK(version >= kSpearBinMinVersion && version <= kSpearBinVersion);

  Program prog;
  prog.text_base = rd.U32();
  prog.entry = rd.U32();

  const std::uint32_t ntext = rd.U32();
  prog.text.reserve(ntext);
  for (std::uint32_t i = 0; i < ntext; ++i) prog.text.push_back(Decode(rd.U64()));

  const std::uint32_t nseg = rd.U32();
  for (std::uint32_t i = 0; i < nseg; ++i) {
    DataSegment seg;
    seg.base = rd.U32();
    const std::uint32_t size = rd.U32();
    seg.bytes = rd.Bytes(size);
    prog.data.push_back(std::move(seg));
  }

  const std::uint32_t nspec = rd.U32();
  for (std::uint32_t i = 0; i < nspec; ++i) {
    PThreadSpec spec;
    spec.dload_pc = rd.U32();
    spec.region_start = rd.U32();
    spec.region_end = rd.U32();
    spec.profile_misses = rd.U64();
    spec.region_dcycles = rd.F64();
    const std::uint32_t nlive = rd.U32();
    for (std::uint32_t k = 0; k < nlive; ++k) spec.live_ins.push_back(rd.U8());
    const std::uint32_t nslice = rd.U32();
    for (std::uint32_t k = 0; k < nslice; ++k) spec.slice_pcs.push_back(rd.U32());
    prog.pthreads.push_back(std::move(spec));
  }

  if (version >= 3) {
    const std::uint32_t nsecret = rd.U32();
    for (std::uint32_t i = 0; i < nsecret; ++i) {
      SecretRange r;
      r.base = rd.U32();
      r.size = rd.U32();
      prog.secret_ranges.push_back(r);
    }
  }
  SPEAR_CHECK(rd.AtEnd());
  return prog;
}

void WriteProgram(const Program& prog, const std::string& path) {
  const std::vector<std::uint8_t> bytes = SerializeProgram(prog);
  std::FILE* fp = std::fopen(path.c_str(), "wb");
  SPEAR_CHECK(fp != nullptr);
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), fp);
  SPEAR_CHECK(written == bytes.size());
  SPEAR_CHECK(std::fclose(fp) == 0);
}

Program ReadProgram(const std::string& path, SpecLoadPolicy policy) {
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  SPEAR_CHECK(fp != nullptr);
  SPEAR_CHECK(std::fseek(fp, 0, SEEK_END) == 0);
  const long size = std::ftell(fp);
  SPEAR_CHECK(size >= 0);
  SPEAR_CHECK(std::fseek(fp, 0, SEEK_SET) == 0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  const std::size_t read = std::fread(bytes.data(), 1, bytes.size(), fp);
  SPEAR_CHECK(read == bytes.size());
  std::fclose(fp);

  Program prog = DeserializeProgram(bytes);
  if (policy == SpecLoadPolicy::kTrust) return prog;
  int bad_specs = 0;
  for (const PThreadSpec& spec : prog.pthreads) {
    const std::vector<SpecDiag> diags = CheckSpecStructure(prog, spec);
    if (!HasSpecErrors(diags)) continue;
    ++bad_specs;
    for (const SpecDiag& d : diags) {
      if (d.severity() != SpecDiagSeverity::kError) continue;
      std::fprintf(stderr, "%s:0x%x: %s: %s [%s]\n", path.c_str(), d.pc,
                   policy == SpecLoadPolicy::kReject ? "error" : "warning",
                   d.message.c_str(), SpecDiagCodeName(d.code));
    }
  }
  if (bad_specs > 0) {
    std::fprintf(stderr, "%s: %d p-thread spec(s) violate the slice contract\n",
                 path.c_str(), bad_specs);
    SPEAR_CHECK(policy != SpecLoadPolicy::kReject);
  }
  return prog;
}

}  // namespace spear
