// Embedded assembler: the C++ DSL the workload generators use to produce
// SPEAR binaries. Handles label binding/fixup for branch and jump targets
// (encoded as absolute byte PCs) and provides the usual pseudo-ops.
//
// Usage:
//   Program prog;
//   Assembler a(&prog);
//   Label loop = a.NewLabel();
//   a.li(r(1), 100);
//   a.Bind(loop);
//   a.addi(r(1), r(1), -1);
//   a.bne(r(1), r(0), loop);
//   a.halt();
//   a.Finish();
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "isa/instruction.h"
#include "isa/program.h"
#include "isa/regs.h"

namespace spear {

// Opaque label handle. Values index the assembler's label table.
struct Label {
  std::uint32_t id = 0;
};

class Assembler {
 public:
  explicit Assembler(Program* prog) : prog_(prog) { SPEAR_CHECK(prog); }

  Label NewLabel() {
    labels_.push_back(kUnbound);
    return Label{static_cast<std::uint32_t>(labels_.size() - 1)};
  }

  void Bind(Label label) {
    SPEAR_CHECK(label.id < labels_.size());
    SPEAR_CHECK(labels_[label.id] == kUnbound);  // no double binding
    labels_[label.id] = Here();
  }

  Label BindNew() {
    Label l = NewLabel();
    Bind(l);
    return l;
  }

  Pc Here() const {
    return prog_->PcOf(static_cast<InstrIndex>(prog_->text.size()));
  }

  // Resolves all pending label fixups. Must be called exactly once, after
  // all code is emitted; every referenced label must be bound by then.
  void Finish();

  // --- raw emission -------------------------------------------------------
  InstrIndex Emit(const Instruction& in) {
    prog_->text.push_back(in);
    return static_cast<InstrIndex>(prog_->text.size() - 1);
  }

  // --- integer ALU --------------------------------------------------------
  void add(RegId rd, RegId rs, RegId rt) { R(Opcode::kAdd, rd, rs, rt); }
  void sub(RegId rd, RegId rs, RegId rt) { R(Opcode::kSub, rd, rs, rt); }
  void mul(RegId rd, RegId rs, RegId rt) { R(Opcode::kMul, rd, rs, rt); }
  void div(RegId rd, RegId rs, RegId rt) { R(Opcode::kDiv, rd, rs, rt); }
  void rem(RegId rd, RegId rs, RegId rt) { R(Opcode::kRem, rd, rs, rt); }
  void and_(RegId rd, RegId rs, RegId rt) { R(Opcode::kAnd, rd, rs, rt); }
  void or_(RegId rd, RegId rs, RegId rt) { R(Opcode::kOr, rd, rs, rt); }
  void xor_(RegId rd, RegId rs, RegId rt) { R(Opcode::kXor, rd, rs, rt); }
  void sll(RegId rd, RegId rs, RegId rt) { R(Opcode::kSll, rd, rs, rt); }
  void srl(RegId rd, RegId rs, RegId rt) { R(Opcode::kSrl, rd, rs, rt); }
  void sra(RegId rd, RegId rs, RegId rt) { R(Opcode::kSra, rd, rs, rt); }
  void slt(RegId rd, RegId rs, RegId rt) { R(Opcode::kSlt, rd, rs, rt); }
  void sltu(RegId rd, RegId rs, RegId rt) { R(Opcode::kSltu, rd, rs, rt); }

  void addi(RegId rd, RegId rs, std::int32_t imm) { I(Opcode::kAddi, rd, rs, imm); }
  void andi(RegId rd, RegId rs, std::int32_t imm) { I(Opcode::kAndi, rd, rs, imm); }
  void ori(RegId rd, RegId rs, std::int32_t imm) { I(Opcode::kOri, rd, rs, imm); }
  void xori(RegId rd, RegId rs, std::int32_t imm) { I(Opcode::kXori, rd, rs, imm); }
  void slli(RegId rd, RegId rs, std::int32_t imm) { I(Opcode::kSlli, rd, rs, imm); }
  void srli(RegId rd, RegId rs, std::int32_t imm) { I(Opcode::kSrli, rd, rs, imm); }
  void srai(RegId rd, RegId rs, std::int32_t imm) { I(Opcode::kSrai, rd, rs, imm); }
  void slti(RegId rd, RegId rs, std::int32_t imm) { I(Opcode::kSlti, rd, rs, imm); }

  // --- pseudo-ops ---------------------------------------------------------
  void li(RegId rd, std::int32_t value) { addi(rd, kRegZero, value); }
  void la(RegId rd, Addr addr) { li(rd, static_cast<std::int32_t>(addr)); }
  void mov(RegId rd, RegId rs) { addi(rd, rs, 0); }
  void nop() { Emit({Opcode::kNop, 0, 0, 0, 0}); }
  void halt() { Emit({Opcode::kHalt, 0, 0, 0, 0}); }
  void out(RegId rs) { Emit({Opcode::kOut, 0, rs, 0, 0}); }

  // --- memory -------------------------------------------------------------
  void lw(RegId rd, RegId base, std::int32_t off) { I(Opcode::kLw, rd, base, off); }
  void lbu(RegId rd, RegId base, std::int32_t off) { I(Opcode::kLbu, rd, base, off); }
  void ldf(RegId fd, RegId base, std::int32_t off) { I(Opcode::kLdf, fd, base, off); }
  void sw(RegId src, RegId base, std::int32_t off) { S(Opcode::kSw, src, base, off); }
  void sb(RegId src, RegId base, std::int32_t off) { S(Opcode::kSb, src, base, off); }
  void stf(RegId fsrc, RegId base, std::int32_t off) { S(Opcode::kStf, fsrc, base, off); }

  // --- control flow -------------------------------------------------------
  void beq(RegId rs, RegId rt, Label target) { B(Opcode::kBeq, rs, rt, target); }
  void bne(RegId rs, RegId rt, Label target) { B(Opcode::kBne, rs, rt, target); }
  void blt(RegId rs, RegId rt, Label target) { B(Opcode::kBlt, rs, rt, target); }
  void bge(RegId rs, RegId rt, Label target) { B(Opcode::kBge, rs, rt, target); }
  void bltu(RegId rs, RegId rt, Label target) { B(Opcode::kBltu, rs, rt, target); }
  void bgeu(RegId rs, RegId rt, Label target) { B(Opcode::kBgeu, rs, rt, target); }

  void j(Label target) { J(Opcode::kJ, 0, target); }
  void jal(Label target) { J(Opcode::kJal, kRegRa, target); }
  void jr(RegId rs) { Emit({Opcode::kJr, 0, rs, 0, 0}); }
  void jalr(RegId rs) { Emit({Opcode::kJalr, kRegRa, rs, 0, 0}); }
  void ret() { jr(kRegRa); }

  // --- FP -----------------------------------------------------------------
  void fadd(RegId fd, RegId fs, RegId ft) { R(Opcode::kFadd, fd, fs, ft); }
  void fsub(RegId fd, RegId fs, RegId ft) { R(Opcode::kFsub, fd, fs, ft); }
  void fmul(RegId fd, RegId fs, RegId ft) { R(Opcode::kFmul, fd, fs, ft); }
  void fdiv(RegId fd, RegId fs, RegId ft) { R(Opcode::kFdiv, fd, fs, ft); }
  void fmov(RegId fd, RegId fs) { R(Opcode::kFmov, fd, fs, fs); }
  void fneg(RegId fd, RegId fs) { R(Opcode::kFneg, fd, fs, fs); }
  void cvtif(RegId fd, RegId rs) { R(Opcode::kCvtif, fd, rs, rs); }
  void cvtfi(RegId rd, RegId fs) { R(Opcode::kCvtfi, rd, fs, fs); }
  void feq(RegId rd, RegId fs, RegId ft) { R(Opcode::kFeq, rd, fs, ft); }
  void flt(RegId rd, RegId fs, RegId ft) { R(Opcode::kFlt, rd, fs, ft); }
  void fle(RegId rd, RegId fs, RegId ft) { R(Opcode::kFle, rd, fs, ft); }

 private:
  static constexpr Pc kUnbound = 0xffffffffu;

  struct Fixup {
    InstrIndex instr;
    std::uint32_t label_id;
  };

  void R(Opcode op, RegId rd, RegId rs, RegId rt) {
    Emit({op, rd, rs, rt, 0});
  }
  void I(Opcode op, RegId rd, RegId rs, std::int32_t imm) {
    Emit({op, rd, rs, 0, imm});
  }
  void S(Opcode op, RegId value, RegId base, std::int32_t imm) {
    Emit({op, 0, base, value, imm});
  }
  void B(Opcode op, RegId rs, RegId rt, Label target) {
    const InstrIndex idx = Emit({op, 0, rs, rt, 0});
    fixups_.push_back({idx, target.id});
  }
  void J(Opcode op, RegId link, Label target) {
    const InstrIndex idx = Emit({op, link, 0, 0, 0});
    fixups_.push_back({idx, target.id});
  }

  Program* prog_;
  std::vector<Pc> labels_;
  std::vector<Fixup> fixups_;
  bool finished_ = false;

  friend class AssemblerTestPeer;

 public:
  // Number of labels still unbound (exposed for diagnostics/tests).
  int UnboundLabels() const {
    int n = 0;
    for (Pc p : labels_) n += (p == kUnbound);
    return n;
  }
};

inline void Assembler::Finish() {
  SPEAR_CHECK(!finished_);
  finished_ = true;
  for (const Fixup& f : fixups_) {
    SPEAR_CHECK(f.label_id < labels_.size());
    const Pc target = labels_[f.label_id];
    SPEAR_CHECK(target != kUnbound);
    prog_->text[f.instr].imm = static_cast<std::int32_t>(target);
  }
  fixups_.clear();
}

// Terse register constructors for workload code: r(3) == IntReg(3).
inline constexpr RegId r(int n) { return IntReg(n); }
inline constexpr RegId f(int n) { return FpReg(n); }

}  // namespace spear
