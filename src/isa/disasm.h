// Human-readable instruction and program formatting, used by the compiler
// tool's dump mode, examples and test failure messages.
#pragma once

#include <string>

#include "isa/instruction.h"
#include "isa/program.h"

namespace spear {

// e.g. "lw r5, 16(r3)", "beq r1, r2, 0x1040", "fadd f2, f0, f1".
std::string Disassemble(const Instruction& in);

// One line per instruction: "0x1008: addi r1, r1, -1".
std::string DisassembleProgram(const Program& prog);

}  // namespace spear
