// Unified architectural register namespace.
//
// Instruction fields carry *unified* register ids: integer registers map to
// [0, 32) and FP registers to [32, 64). A single id space lets the rename
// logic, the dependence profiler and the backward slicer treat int and FP
// dependencies uniformly — the same trick SimpleScalar plays with its
// DEP_NAME encoding.
#pragma once

#include <string>

#include "common/check.h"
#include "common/types.h"

namespace spear {

inline constexpr RegId IntReg(int n) {
  SPEAR_DCHECK(n >= 0 && n < kNumIntRegs);
  return static_cast<RegId>(n);
}

inline constexpr RegId FpReg(int n) {
  SPEAR_DCHECK(n >= 0 && n < kNumFpRegs);
  return static_cast<RegId>(kNumIntRegs + n);
}

inline constexpr bool IsFpReg(RegId r) { return r >= kNumIntRegs; }
inline constexpr int FpIndex(RegId r) {
  SPEAR_DCHECK(IsFpReg(r));
  return r - kNumIntRegs;
}

// Software conventions used by the assembler and workload generators
// (mirroring MIPS): r31 link register, r29 stack pointer, r28 global
// pointer. The hardware itself treats every register uniformly except r0.
inline constexpr RegId kRegRa = IntReg(31);
inline constexpr RegId kRegSp = IntReg(29);
inline constexpr RegId kRegGp = IntReg(28);

inline std::string RegName(RegId r) {
  if (IsFpReg(r)) return "f" + std::to_string(FpIndex(r));
  return "r" + std::to_string(static_cast<int>(r));
}

}  // namespace spear
