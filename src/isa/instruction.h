// Decoded instruction representation, fixed 64-bit binary encoding, and the
// operand-extraction helpers every dependence-driven component uses.
//
// Encoding (little-endian, 8 bytes per instruction):
//   word0: [31:26] rt  [25:20] rs  [19:14] rd  [13:0] opcode
//   word1: imm (two's complement)
// Register fields hold unified ids (see isa/regs.h), so 6 bits suffice.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/check.h"
#include "common/types.h"
#include "isa/opcode.h"
#include "isa/regs.h"

namespace spear {

struct Instruction {
  Opcode op = Opcode::kNop;
  RegId rd = 0;
  RegId rs = 0;
  RegId rt = 0;
  std::int32_t imm = 0;

  bool operator==(const Instruction&) const = default;
};

inline std::uint64_t Encode(const Instruction& in) {
  SPEAR_CHECK(static_cast<unsigned>(in.op) < (1u << 14));
  SPEAR_CHECK(in.rd < 64 && in.rs < 64 && in.rt < 64);
  const std::uint32_t word0 = static_cast<std::uint32_t>(in.op) |
                              (static_cast<std::uint32_t>(in.rd) << 14) |
                              (static_cast<std::uint32_t>(in.rs) << 20) |
                              (static_cast<std::uint32_t>(in.rt) << 26);
  const std::uint32_t word1 = static_cast<std::uint32_t>(in.imm);
  return static_cast<std::uint64_t>(word0) |
         (static_cast<std::uint64_t>(word1) << 32);
}

inline Instruction Decode(std::uint64_t bits) {
  const auto word0 = static_cast<std::uint32_t>(bits);
  Instruction in;
  const std::uint32_t opcode_field = word0 & 0x3fffu;
  SPEAR_CHECK(opcode_field < static_cast<std::uint32_t>(kNumOpcodes));
  in.op = static_cast<Opcode>(opcode_field);
  in.rd = static_cast<RegId>((word0 >> 14) & 0x3f);
  in.rs = static_cast<RegId>((word0 >> 20) & 0x3f);
  in.rt = static_cast<RegId>((word0 >> 26) & 0x3f);
  in.imm = static_cast<std::int32_t>(bits >> 32);
  return in;
}

// Source registers actually read by the instruction (r0 reads included; the
// consumer decides whether to treat r0 specially). Fixed-size result with a
// count to stay allocation-free on the pipeline's hot path.
struct SrcRegs {
  std::array<RegId, 2> reg{};
  int count = 0;
};

inline SrcRegs SourcesOf(const Instruction& in) {
  SrcRegs s;
  const OpInfo& info = GetOpInfo(in.op);
  switch (info.format) {
    case OpFormat::kR:
      s.reg[s.count++] = in.rs;
      s.reg[s.count++] = in.rt;
      break;
    case OpFormat::kI:
    case OpFormat::kLoad:
      s.reg[s.count++] = in.rs;
      break;
    case OpFormat::kStore:
      s.reg[s.count++] = in.rs;  // address base
      s.reg[s.count++] = in.rt;  // stored value
      break;
    case OpFormat::kBranch:
      s.reg[s.count++] = in.rs;
      s.reg[s.count++] = in.rt;
      break;
    case OpFormat::kJumpReg:
      s.reg[s.count++] = in.rs;
      break;
    case OpFormat::kJump:
      break;
    case OpFormat::kNone:
      if (info.flags & kFlagOut) s.reg[s.count++] = in.rs;
      break;
  }
  // Unary FP ops (fmov/fneg/cvt*) read only rs; drop the rt slot so the
  // dependence graph doesn't grow spurious edges.
  switch (in.op) {
    case Opcode::kFmov:
    case Opcode::kFneg:
    case Opcode::kCvtif:
    case Opcode::kCvtfi:
      s.count = 1;
      break;
    default:
      break;
  }
  return s;
}

inline std::optional<RegId> DestOf(const Instruction& in) {
  if (!WritesRd(in.op)) return std::nullopt;
  if (in.rd == kRegZero) return std::nullopt;  // writes to r0 are discarded
  return in.rd;
}

// Static control-flow helpers used by fetch, branch prediction and the
// binary CFG builder. Direct targets are absolute byte PCs in `imm`.
inline bool HasStaticTarget(const Instruction& in) {
  return IsControl(in.op) && !IsIndirectJump(in.op);
}
inline Pc StaticTargetOf(const Instruction& in) {
  SPEAR_DCHECK(HasStaticTarget(in));
  return static_cast<Pc>(in.imm);
}

}  // namespace spear
