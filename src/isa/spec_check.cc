#include "isa/spec_check.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"
#include "isa/instruction.h"
#include "isa/regs.h"

namespace spear {
namespace {

std::string HexPc(Pc pc) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%x", pc);
  return buf;
}

}  // namespace

const std::vector<SpecDiagInfo>& AllSpecDiagInfos() {
  using C = SpecDiagCode;
  using S = SpecDiagSeverity;
  static const std::vector<SpecDiagInfo> kTable = {
      {C::kEmptySlice, "empty-slice", S::kError,
       "slice has no instructions"},
      {C::kUnsortedSlicePcs, "unsorted-slice-pcs", S::kError,
       "slice_pcs are not strictly ascending"},
      {C::kSlicePcNotInText, "slice-pc-not-in-text", S::kError,
       "a slice pc does not decode (outside the text section or misaligned)"},
      {C::kBadRegion, "bad-region", S::kError,
       "region bounds are invalid or outside the text"},
      {C::kSlicePcOutsideRegion, "slice-pc-outside-region", S::kError,
       "a slice pc lies outside [region_start, region_end]"},
      {C::kDloadNotInSlice, "dload-not-in-slice", S::kError,
       "the triggering d-load is not part of its own slice"},
      {C::kDloadNotALoad, "dload-not-a-load", S::kError,
       "dload_pc does not name a load instruction"},
      {C::kStoreInSlice, "store-in-slice", S::kError,
       "architectural-state escape: memory write in the slice"},
      {C::kControlInSlice, "control-in-slice", S::kError,
       "architectural-state escape: control transfer in the slice"},
      {C::kSideEffectInSlice, "side-effect-in-slice", S::kError,
       "architectural-state escape: halt/out in the slice"},
      {C::kBadLiveIn, "bad-live-in", S::kError,
       "live-in register id is invalid (r0 or out of range)"},
      {C::kUnsortedLiveIns, "unsorted-live-ins", S::kError,
       "live_ins are not strictly ascending"},
      {C::kMissingLiveIn, "missing-live-in", S::kError,
       "slice reads a register that is not a declared live-in"},
      {C::kSpuriousLiveIn, "spurious-live-in", S::kError,
       "declared live-in is never read before being defined"},
      {C::kUncoveredRead, "uncovered-read", S::kError,
       "read covered by neither the live-ins nor a slice definition"},
      {C::kDeadSliceInstr, "dead-slice-instr", S::kWarning,
       "slice instruction feeds nothing downstream"},
      {C::kOversizedLiveIns, "oversized-live-ins", S::kWarning,
       "live-in set exceeds the 1-reg/cycle copy budget"},
      {C::kEmptyRegion, "empty-region", S::kWarning,
       "slice is just the d-load: nothing pre-executes"},
      {C::kSecretTaintedAddress, "secret-tainted-address", S::kError,
       "speculative load address derives from a @secret-region load"},
      {C::kSpecTaintedAddress, "spec-tainted-address", S::kWarning,
       "speculative load address derives from a speculatively loaded value"},
  };
  return kTable;
}

namespace {

const SpecDiagInfo& InfoOf(SpecDiagCode code) {
  const std::vector<SpecDiagInfo>& table = AllSpecDiagInfos();
  const auto idx = static_cast<std::size_t>(code);
  SPEAR_CHECK(idx < table.size() && table[idx].code == code);
  return table[idx];
}

}  // namespace

const char* SpecDiagCodeName(SpecDiagCode code) { return InfoOf(code).name; }

SpecDiagSeverity SeverityOf(SpecDiagCode code) { return InfoOf(code).severity; }

bool IsSecurityDiag(SpecDiagCode code) {
  return code == SpecDiagCode::kSecretTaintedAddress ||
         code == SpecDiagCode::kSpecTaintedAddress;
}

bool HasSpecErrors(const std::vector<SpecDiag>& diags) {
  return std::any_of(diags.begin(), diags.end(), [](const SpecDiag& d) {
    return d.severity() == SpecDiagSeverity::kError;
  });
}

std::vector<SpecDiag> CheckSpecStructure(const Program& prog,
                                         const PThreadSpec& spec) {
  std::vector<SpecDiag> diags;
  auto diag = [&diags](SpecDiagCode code, Pc pc, std::string message) {
    diags.push_back(SpecDiag{code, pc, std::move(message)});
  };

  if (spec.slice_pcs.empty()) {
    diag(SpecDiagCode::kEmptySlice, spec.dload_pc, "slice has no instructions");
    return diags;  // every later rule quantifies over the slice
  }

  for (std::size_t i = 1; i < spec.slice_pcs.size(); ++i) {
    if (spec.slice_pcs[i] <= spec.slice_pcs[i - 1]) {
      diag(SpecDiagCode::kUnsortedSlicePcs, spec.slice_pcs[i],
           "slice_pcs must be strictly ascending (" +
               HexPc(spec.slice_pcs[i]) + " after " +
               HexPc(spec.slice_pcs[i - 1]) + ")");
      break;
    }
  }

  const bool region_ok = prog.ContainsPc(spec.region_start) &&
                         prog.ContainsPc(spec.region_end) &&
                         spec.region_start <= spec.region_end;
  if (!region_ok) {
    diag(SpecDiagCode::kBadRegion, spec.region_start,
         "region [" + HexPc(spec.region_start) + ", " +
             HexPc(spec.region_end) + "] is not a valid text range");
  }

  for (Pc pc : spec.slice_pcs) {
    if (!prog.ContainsPc(pc)) {
      diag(SpecDiagCode::kSlicePcNotInText, pc,
           "slice pc " + HexPc(pc) + " does not decode (outside the text "
           "section or misaligned)");
      continue;
    }
    if (region_ok && (pc < spec.region_start || pc > spec.region_end)) {
      diag(SpecDiagCode::kSlicePcOutsideRegion, pc,
           "slice pc " + HexPc(pc) + " lies outside the prefetching region");
    }
    const Opcode op = prog.At(pc).op;
    if (IsStore(op)) {
      diag(SpecDiagCode::kStoreInSlice, pc,
           "store in slice would escape to architectural memory state");
    } else if (IsControl(op)) {
      diag(SpecDiagCode::kControlInSlice, pc,
           "control transfer in slice; p-threads are data-flow only");
    } else if (IsHalt(op) || (GetOpInfo(op).flags & kFlagOut)) {
      diag(SpecDiagCode::kSideEffectInSlice, pc,
           "halt/out in slice would escape architectural state");
    }
  }

  if (std::find(spec.slice_pcs.begin(), spec.slice_pcs.end(), spec.dload_pc) ==
      spec.slice_pcs.end()) {
    diag(SpecDiagCode::kDloadNotInSlice, spec.dload_pc,
         "triggering d-load " + HexPc(spec.dload_pc) +
             " is not part of its own slice");
  }
  if (!prog.ContainsPc(spec.dload_pc) || !IsLoad(prog.At(spec.dload_pc).op)) {
    diag(SpecDiagCode::kDloadNotALoad, spec.dload_pc,
         "dload_pc " + HexPc(spec.dload_pc) +
             " does not name a load instruction");
  }

  for (RegId reg : spec.live_ins) {
    if (reg == kRegZero || reg >= kNumArchRegs) {
      diag(SpecDiagCode::kBadLiveIn, spec.dload_pc,
           "invalid live-in register id " + std::to_string(reg));
    }
  }
  for (std::size_t i = 1; i < spec.live_ins.size(); ++i) {
    if (spec.live_ins[i] <= spec.live_ins[i - 1]) {
      diag(SpecDiagCode::kUnsortedLiveIns, spec.dload_pc,
           "live_ins must be strictly ascending");
      break;
    }
  }

  return diags;
}

}  // namespace spear
