#include "isa/spec_check.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"
#include "isa/instruction.h"
#include "isa/regs.h"

namespace spear {
namespace {

std::string HexPc(Pc pc) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%x", pc);
  return buf;
}

}  // namespace

const char* SpecDiagCodeName(SpecDiagCode code) {
  switch (code) {
    case SpecDiagCode::kEmptySlice: return "empty-slice";
    case SpecDiagCode::kUnsortedSlicePcs: return "unsorted-slice-pcs";
    case SpecDiagCode::kSlicePcNotInText: return "slice-pc-not-in-text";
    case SpecDiagCode::kBadRegion: return "bad-region";
    case SpecDiagCode::kSlicePcOutsideRegion: return "slice-pc-outside-region";
    case SpecDiagCode::kDloadNotInSlice: return "dload-not-in-slice";
    case SpecDiagCode::kDloadNotALoad: return "dload-not-a-load";
    case SpecDiagCode::kStoreInSlice: return "store-in-slice";
    case SpecDiagCode::kControlInSlice: return "control-in-slice";
    case SpecDiagCode::kSideEffectInSlice: return "side-effect-in-slice";
    case SpecDiagCode::kBadLiveIn: return "bad-live-in";
    case SpecDiagCode::kUnsortedLiveIns: return "unsorted-live-ins";
    case SpecDiagCode::kMissingLiveIn: return "missing-live-in";
    case SpecDiagCode::kSpuriousLiveIn: return "spurious-live-in";
    case SpecDiagCode::kUncoveredRead: return "uncovered-read";
    case SpecDiagCode::kDeadSliceInstr: return "dead-slice-instr";
    case SpecDiagCode::kOversizedLiveIns: return "oversized-live-ins";
    case SpecDiagCode::kEmptyRegion: return "empty-region";
  }
  SPEAR_CHECK(false);
}

SpecDiagSeverity SeverityOf(SpecDiagCode code) {
  switch (code) {
    case SpecDiagCode::kDeadSliceInstr:
    case SpecDiagCode::kOversizedLiveIns:
    case SpecDiagCode::kEmptyRegion:
      return SpecDiagSeverity::kWarning;
    default:
      return SpecDiagSeverity::kError;
  }
}

bool HasSpecErrors(const std::vector<SpecDiag>& diags) {
  return std::any_of(diags.begin(), diags.end(), [](const SpecDiag& d) {
    return d.severity() == SpecDiagSeverity::kError;
  });
}

std::vector<SpecDiag> CheckSpecStructure(const Program& prog,
                                         const PThreadSpec& spec) {
  std::vector<SpecDiag> diags;
  auto diag = [&diags](SpecDiagCode code, Pc pc, std::string message) {
    diags.push_back(SpecDiag{code, pc, std::move(message)});
  };

  if (spec.slice_pcs.empty()) {
    diag(SpecDiagCode::kEmptySlice, spec.dload_pc, "slice has no instructions");
    return diags;  // every later rule quantifies over the slice
  }

  for (std::size_t i = 1; i < spec.slice_pcs.size(); ++i) {
    if (spec.slice_pcs[i] <= spec.slice_pcs[i - 1]) {
      diag(SpecDiagCode::kUnsortedSlicePcs, spec.slice_pcs[i],
           "slice_pcs must be strictly ascending (" +
               HexPc(spec.slice_pcs[i]) + " after " +
               HexPc(spec.slice_pcs[i - 1]) + ")");
      break;
    }
  }

  const bool region_ok = prog.ContainsPc(spec.region_start) &&
                         prog.ContainsPc(spec.region_end) &&
                         spec.region_start <= spec.region_end;
  if (!region_ok) {
    diag(SpecDiagCode::kBadRegion, spec.region_start,
         "region [" + HexPc(spec.region_start) + ", " +
             HexPc(spec.region_end) + "] is not a valid text range");
  }

  for (Pc pc : spec.slice_pcs) {
    if (!prog.ContainsPc(pc)) {
      diag(SpecDiagCode::kSlicePcNotInText, pc,
           "slice pc " + HexPc(pc) + " does not decode (outside the text "
           "section or misaligned)");
      continue;
    }
    if (region_ok && (pc < spec.region_start || pc > spec.region_end)) {
      diag(SpecDiagCode::kSlicePcOutsideRegion, pc,
           "slice pc " + HexPc(pc) + " lies outside the prefetching region");
    }
    const Opcode op = prog.At(pc).op;
    if (IsStore(op)) {
      diag(SpecDiagCode::kStoreInSlice, pc,
           "store in slice would escape to architectural memory state");
    } else if (IsControl(op)) {
      diag(SpecDiagCode::kControlInSlice, pc,
           "control transfer in slice; p-threads are data-flow only");
    } else if (IsHalt(op) || (GetOpInfo(op).flags & kFlagOut)) {
      diag(SpecDiagCode::kSideEffectInSlice, pc,
           "halt/out in slice would escape architectural state");
    }
  }

  if (std::find(spec.slice_pcs.begin(), spec.slice_pcs.end(), spec.dload_pc) ==
      spec.slice_pcs.end()) {
    diag(SpecDiagCode::kDloadNotInSlice, spec.dload_pc,
         "triggering d-load " + HexPc(spec.dload_pc) +
             " is not part of its own slice");
  }
  if (!prog.ContainsPc(spec.dload_pc) || !IsLoad(prog.At(spec.dload_pc).op)) {
    diag(SpecDiagCode::kDloadNotALoad, spec.dload_pc,
         "dload_pc " + HexPc(spec.dload_pc) +
             " does not name a load instruction");
  }

  for (RegId reg : spec.live_ins) {
    if (reg == kRegZero || reg >= kNumArchRegs) {
      diag(SpecDiagCode::kBadLiveIn, spec.dload_pc,
           "invalid live-in register id " + std::to_string(reg));
    }
  }
  for (std::size_t i = 1; i < spec.live_ins.size(); ++i) {
    if (spec.live_ins[i] <= spec.live_ins[i - 1]) {
      diag(SpecDiagCode::kUnsortedLiveIns, spec.dload_pc,
           "live_ins must be strictly ascending");
      break;
    }
  }

  return diags;
}

}  // namespace spear
