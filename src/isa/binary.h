// SPEARBIN container format — the "binary" the SPEAR post-compiler reads,
// annotates and rewrites (paper Figure 4: the attaching tool appends the
// p-thread information to the executable; the PT is loaded from it at run
// time).
//
// Layout (all integers little-endian):
//   magic "SPEARBIN" (8 bytes), version u32
//   text_base u32, entry u32
//   text:     count u32, count * u64 encoded instructions
//   data:     nseg u32, per segment { base u32, size u32, bytes }
//   pthreads: nspec u32, per spec {
//       dload_pc u32, region_start u32, region_end u32,
//       profile_misses u64, region_dcycles f64,
//       nlive u32 + nlive * u8, nslice u32 + nslice * u32 }
//   secrets (v3+): nsecret u32, per range { base u32, size u32 }
//
// Version 2 binaries (no secrets section) still load; the writer always
// emits the current version.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.h"

namespace spear {

inline constexpr std::uint32_t kSpearBinVersion = 3;
// Oldest version DeserializeProgram still accepts (v2 predates @secret
// region annotations).
inline constexpr std::uint32_t kSpearBinMinVersion = 2;

// In-memory (de)serialization.
std::vector<std::uint8_t> SerializeProgram(const Program& prog);
Program DeserializeProgram(const std::vector<std::uint8_t>& bytes);

// What to do when a loaded binary carries p-thread specs that violate the
// structural contract (isa/spec_check.h): warn on stderr and keep going
// (default — the simulator will still run, the hardware PT construction
// CHECKs the properties it relies on), abort the load, or skip the check
// entirely (for tools that run the full verifier themselves).
enum class SpecLoadPolicy { kWarn, kReject, kTrust };

// File I/O convenience. WriteProgram overwrites; ReadProgram aborts via
// SPEAR_CHECK on malformed input (simulator tooling, not a hostile-input
// parser) and applies `policy` to structurally invalid p-thread specs.
void WriteProgram(const Program& prog, const std::string& path);
Program ReadProgram(const std::string& path,
                    SpecLoadPolicy policy = SpecLoadPolicy::kWarn);

}  // namespace spear
