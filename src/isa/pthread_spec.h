// P-thread annotation record — the contract between the SPEAR post-compiler
// and the SPEAR hardware front end.
//
// The paper's attaching tool writes this information into the SPEAR binary;
// at program load it populates the hardware P-thread Table (PT). A spec
// names one delinquent load, the static PCs of its backward slice (the
// instructions whose "p-thread indicator" the pre-decoder turns on), the
// registers whose values must be copied from the main thread at trigger
// time, and the loop region the slice was limited to.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace spear {

struct PThreadSpec {
  Pc dload_pc = 0;  // the delinquent load that triggers pre-execution

  // Static slice: every instruction the PE may extract, in ascending PC
  // order. Always contains dload_pc itself.
  std::vector<Pc> slice_pcs;

  // Live-in registers, copied main-thread -> p-thread at 1 reg/cycle.
  std::vector<RegId> live_ins;

  // Prefetching region chosen by the region-based range algorithm
  // (innermost loop grown outward while accumulated d-cycles <= budget).
  Pc region_start = 0;
  Pc region_end = 0;  // inclusive PC of the region's last instruction

  // Profiling metadata (informational; handy in reports and tests).
  std::uint64_t profile_misses = 0;
  double region_dcycles = 0.0;

  // Pre-decode hot path. Sortedness is part of the spec contract — enforced
  // by the verifier (isa/spec_check.h) and checked when the PT is loaded.
  bool InSlice(Pc pc) const {
    return std::binary_search(slice_pcs.begin(), slice_pcs.end(), pc);
  }
};

}  // namespace spear
