#include "isa/disasm.h"

#include <cstdio>

namespace spear {
namespace {

std::string Hex(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%x", v);
  return buf;
}

}  // namespace

std::string Disassemble(const Instruction& in) {
  const OpInfo& info = GetOpInfo(in.op);
  const std::string m = info.mnemonic;
  switch (info.format) {
    case OpFormat::kNone:
      if (info.flags & kFlagOut) return m + " " + RegName(in.rs);
      return m;
    case OpFormat::kR:
      switch (in.op) {
        case Opcode::kFmov:
        case Opcode::kFneg:
        case Opcode::kCvtif:
        case Opcode::kCvtfi:
          return m + " " + RegName(in.rd) + ", " + RegName(in.rs);
        default:
          return m + " " + RegName(in.rd) + ", " + RegName(in.rs) + ", " +
                 RegName(in.rt);
      }
    case OpFormat::kI:
      return m + " " + RegName(in.rd) + ", " + RegName(in.rs) + ", " +
             std::to_string(in.imm);
    case OpFormat::kLoad:
      return m + " " + RegName(in.rd) + ", " + std::to_string(in.imm) + "(" +
             RegName(in.rs) + ")";
    case OpFormat::kStore:
      return m + " " + RegName(in.rt) + ", " + std::to_string(in.imm) + "(" +
             RegName(in.rs) + ")";
    case OpFormat::kBranch:
      return m + " " + RegName(in.rs) + ", " + RegName(in.rt) + ", " +
             Hex(static_cast<std::uint32_t>(in.imm));
    case OpFormat::kJump:
      return m + " " + Hex(static_cast<std::uint32_t>(in.imm));
    case OpFormat::kJumpReg:
      return m + " " + RegName(in.rs);
  }
  return m;
}

std::string DisassembleProgram(const Program& prog) {
  std::string out;
  for (InstrIndex i = 0; i < prog.text.size(); ++i) {
    out += Hex(prog.PcOf(i)) + ": " + Disassemble(prog.text[i]) + "\n";
  }
  return out;
}

}  // namespace spear
