// Opcode definitions for the SPEAR PISA-like ISA.
//
// The instruction set is a compact RISC modeled after SimpleScalar's PISA:
// 32 integer registers (r0 hardwired to zero), 32 floating-point registers
// holding doubles, word (4-byte) and byte integer memory accesses, 8-byte
// FP accesses, register-register conditional branches with absolute targets
// (targets resolved by the assembler; absolute encoding keeps the binary
// CFG builder honest and simple), and direct/indirect jumps for calls and
// returns.
//
// A single X-macro table carries every per-opcode attribute used across the
// stack: mnemonic, operand format, functional-unit class and behaviour
// flags. The functional emulator, the pipeline, the disassembler and the
// SPEAR binary tool all read this one table, so they can never disagree on
// instruction semantics metadata.
#pragma once

#include <cstdint>

#include "common/check.h"

namespace spear {

// Operand format determines which fields of Instruction are meaningful.
//  kR      : rd <- f(rs, rt)
//  kI      : rd <- f(rs, imm)
//  kLoad   : rd <- mem[rs + imm]
//  kStore  : mem[rs + imm] <- rt
//  kBranch : if f(rs, rt) goto imm           (imm = absolute byte PC)
//  kJump   : goto imm; kFlagCall also writes rd = return PC
//  kJumpReg: goto rs;  kFlagCall also writes rd = return PC
//  kNone   : no operands (nop/halt) or rs only (out)
enum class OpFormat : std::uint8_t {
  kNone,
  kR,
  kI,
  kLoad,
  kStore,
  kBranch,
  kJump,
  kJumpReg,
};

// Functional-unit class an instruction issues to (cpu/fu.h owns the pools).
enum class FuClass : std::uint8_t {
  kNone,     // nop, halt
  kIntAlu,   // also branches and jumps
  kIntMul,
  kIntDiv,
  kFpAlu,
  kFpMul,
  kFpDiv,
  kMemRead,  // memory-port consumer
  kMemWrite,
};

// Behaviour flags (bitmask).
inline constexpr std::uint32_t kFlagLoad = 1u << 0;
inline constexpr std::uint32_t kFlagStore = 1u << 1;
inline constexpr std::uint32_t kFlagCondBranch = 1u << 2;
inline constexpr std::uint32_t kFlagUncondJump = 1u << 3;
inline constexpr std::uint32_t kFlagCall = 1u << 4;      // writes link reg
inline constexpr std::uint32_t kFlagIndirect = 1u << 5;  // target from reg
inline constexpr std::uint32_t kFlagFpOp = 1u << 6;      // uses FP pipeline
inline constexpr std::uint32_t kFlagWritesRd = 1u << 7;
inline constexpr std::uint32_t kFlagRdIsFp = 1u << 8;    // rd names an FP reg
inline constexpr std::uint32_t kFlagSrcFp = 1u << 9;     // rs/rt name FP regs
inline constexpr std::uint32_t kFlagHalt = 1u << 10;
inline constexpr std::uint32_t kFlagOut = 1u << 11;      // test observability

// X(enumerator, mnemonic, format, fu_class, flags, access_bytes)
#define SPEAR_OPCODE_LIST(X)                                                   \
  /* --- misc --- */                                                           \
  X(kNop, "nop", kNone, kNone, 0, 0)                                           \
  X(kHalt, "halt", kNone, kNone, kFlagHalt, 0)                                 \
  X(kOut, "out", kNone, kIntAlu, kFlagOut, 0)                                  \
  /* --- integer ALU, register forms --- */                                    \
  X(kAdd, "add", kR, kIntAlu, kFlagWritesRd, 0)                                \
  X(kSub, "sub", kR, kIntAlu, kFlagWritesRd, 0)                                \
  X(kMul, "mul", kR, kIntMul, kFlagWritesRd, 0)                                \
  X(kDiv, "div", kR, kIntDiv, kFlagWritesRd, 0)                                \
  X(kRem, "rem", kR, kIntDiv, kFlagWritesRd, 0)                                \
  X(kAnd, "and", kR, kIntAlu, kFlagWritesRd, 0)                                \
  X(kOr, "or", kR, kIntAlu, kFlagWritesRd, 0)                                  \
  X(kXor, "xor", kR, kIntAlu, kFlagWritesRd, 0)                                \
  X(kSll, "sll", kR, kIntAlu, kFlagWritesRd, 0)                                \
  X(kSrl, "srl", kR, kIntAlu, kFlagWritesRd, 0)                                \
  X(kSra, "sra", kR, kIntAlu, kFlagWritesRd, 0)                                \
  X(kSlt, "slt", kR, kIntAlu, kFlagWritesRd, 0)                                \
  X(kSltu, "sltu", kR, kIntAlu, kFlagWritesRd, 0)                              \
  /* --- integer ALU, immediate forms --- */                                   \
  X(kAddi, "addi", kI, kIntAlu, kFlagWritesRd, 0)                              \
  X(kAndi, "andi", kI, kIntAlu, kFlagWritesRd, 0)                              \
  X(kOri, "ori", kI, kIntAlu, kFlagWritesRd, 0)                                \
  X(kXori, "xori", kI, kIntAlu, kFlagWritesRd, 0)                              \
  X(kSlli, "slli", kI, kIntAlu, kFlagWritesRd, 0)                              \
  X(kSrli, "srli", kI, kIntAlu, kFlagWritesRd, 0)                              \
  X(kSrai, "srai", kI, kIntAlu, kFlagWritesRd, 0)                              \
  X(kSlti, "slti", kI, kIntAlu, kFlagWritesRd, 0)                              \
  X(kLui, "lui", kI, kIntAlu, kFlagWritesRd, 0)                                \
  /* --- integer memory --- */                                                 \
  X(kLw, "lw", kLoad, kMemRead, kFlagLoad | kFlagWritesRd, 4)                  \
  X(kLbu, "lbu", kLoad, kMemRead, kFlagLoad | kFlagWritesRd, 1)                \
  X(kSw, "sw", kStore, kMemWrite, kFlagStore, 4)                               \
  X(kSb, "sb", kStore, kMemWrite, kFlagStore, 1)                               \
  /* --- FP memory (8-byte doubles) --- */                                     \
  X(kLdf, "ldf", kLoad, kMemRead,                                              \
    kFlagLoad | kFlagWritesRd | kFlagRdIsFp | kFlagFpOp, 8)                    \
  X(kStf, "stf", kStore, kMemWrite, kFlagStore | kFlagSrcFp | kFlagFpOp, 8)    \
  /* --- conditional branches (reg-reg compare, absolute target) --- */        \
  X(kBeq, "beq", kBranch, kIntAlu, kFlagCondBranch, 0)                         \
  X(kBne, "bne", kBranch, kIntAlu, kFlagCondBranch, 0)                         \
  X(kBlt, "blt", kBranch, kIntAlu, kFlagCondBranch, 0)                         \
  X(kBge, "bge", kBranch, kIntAlu, kFlagCondBranch, 0)                         \
  X(kBltu, "bltu", kBranch, kIntAlu, kFlagCondBranch, 0)                       \
  X(kBgeu, "bgeu", kBranch, kIntAlu, kFlagCondBranch, 0)                       \
  /* --- jumps --- */                                                          \
  X(kJ, "j", kJump, kIntAlu, kFlagUncondJump, 0)                               \
  X(kJal, "jal", kJump, kIntAlu,                                               \
    kFlagUncondJump | kFlagCall | kFlagWritesRd, 0)                            \
  X(kJr, "jr", kJumpReg, kIntAlu, kFlagUncondJump | kFlagIndirect, 0)          \
  X(kJalr, "jalr", kJumpReg, kIntAlu,                                          \
    kFlagUncondJump | kFlagIndirect | kFlagCall | kFlagWritesRd, 0)            \
  /* --- FP arithmetic --- */                                                  \
  X(kFadd, "fadd", kR, kFpAlu,                                                 \
    kFlagWritesRd | kFlagRdIsFp | kFlagSrcFp | kFlagFpOp, 0)                   \
  X(kFsub, "fsub", kR, kFpAlu,                                                 \
    kFlagWritesRd | kFlagRdIsFp | kFlagSrcFp | kFlagFpOp, 0)                   \
  X(kFmul, "fmul", kR, kFpMul,                                                 \
    kFlagWritesRd | kFlagRdIsFp | kFlagSrcFp | kFlagFpOp, 0)                   \
  X(kFdiv, "fdiv", kR, kFpDiv,                                                 \
    kFlagWritesRd | kFlagRdIsFp | kFlagSrcFp | kFlagFpOp, 0)                   \
  X(kFmov, "fmov", kR, kFpAlu,                                                 \
    kFlagWritesRd | kFlagRdIsFp | kFlagSrcFp | kFlagFpOp, 0)                   \
  X(kFneg, "fneg", kR, kFpAlu,                                                 \
    kFlagWritesRd | kFlagRdIsFp | kFlagSrcFp | kFlagFpOp, 0)                   \
  /* --- FP <-> int conversion and compare (compare writes int reg) --- */     \
  X(kCvtif, "cvtif", kR, kFpAlu, kFlagWritesRd | kFlagRdIsFp | kFlagFpOp, 0)   \
  X(kCvtfi, "cvtfi", kR, kFpAlu, kFlagWritesRd | kFlagSrcFp | kFlagFpOp, 0)    \
  X(kFeq, "feq", kR, kFpAlu, kFlagWritesRd | kFlagSrcFp | kFlagFpOp, 0)        \
  X(kFlt, "flt", kR, kFpAlu, kFlagWritesRd | kFlagSrcFp | kFlagFpOp, 0)        \
  X(kFle, "fle", kR, kFpAlu, kFlagWritesRd | kFlagSrcFp | kFlagFpOp, 0)

enum class Opcode : std::uint16_t {
#define X(name, mnemonic, fmt, fu, flags, bytes) name,
  SPEAR_OPCODE_LIST(X)
#undef X
      kCount
};

inline constexpr int kNumOpcodes = static_cast<int>(Opcode::kCount);

struct OpInfo {
  const char* mnemonic;
  OpFormat format;
  FuClass fu;
  std::uint32_t flags;
  std::uint8_t access_bytes;  // memory footprint; 0 for non-memory ops
};

inline const OpInfo& GetOpInfo(Opcode op) {
  static constexpr OpInfo kTable[] = {
#define X(name, mnemonic, fmt, fu, flags, bytes) \
  {mnemonic, OpFormat::fmt, FuClass::fu, flags, bytes},
      SPEAR_OPCODE_LIST(X)
#undef X
  };
  const auto idx = static_cast<std::size_t>(op);
  SPEAR_DCHECK(idx < static_cast<std::size_t>(kNumOpcodes));
  return kTable[idx];
}

inline bool IsLoad(Opcode op) { return GetOpInfo(op).flags & kFlagLoad; }
inline bool IsStore(Opcode op) { return GetOpInfo(op).flags & kFlagStore; }
inline bool IsMem(Opcode op) { return IsLoad(op) || IsStore(op); }
inline bool IsCondBranch(Opcode op) {
  return GetOpInfo(op).flags & kFlagCondBranch;
}
inline bool IsUncondJump(Opcode op) {
  return GetOpInfo(op).flags & kFlagUncondJump;
}
inline bool IsControl(Opcode op) { return IsCondBranch(op) || IsUncondJump(op); }
inline bool IsCall(Opcode op) { return GetOpInfo(op).flags & kFlagCall; }
inline bool IsIndirectJump(Opcode op) {
  return GetOpInfo(op).flags & kFlagIndirect;
}
inline bool IsFp(Opcode op) { return GetOpInfo(op).flags & kFlagFpOp; }
inline bool WritesRd(Opcode op) { return GetOpInfo(op).flags & kFlagWritesRd; }
inline bool IsHalt(Opcode op) { return GetOpInfo(op).flags & kFlagHalt; }

}  // namespace spear
