// A loaded (or under-construction) SPEAR program: text, initialized data
// segments, entry point and p-thread annotations.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "isa/instruction.h"
#include "isa/pthread_spec.h"

namespace spear {

struct DataSegment {
  Addr base = 0;
  std::vector<std::uint8_t> bytes;
};

// A `@secret` region annotation: bytes in [base, base + size) hold secret
// data, so a load from the range taints its result for the leakage analysis
// (analysis/taint.h and the runtime observer in spear/taint_observer.h).
struct SecretRange {
  Addr base = 0;
  std::uint32_t size = 0;

  bool Contains(Addr addr, std::uint32_t bytes) const {
    return addr < base + size && addr + bytes > base;
  }
};

class Program {
 public:
  static constexpr Addr kDefaultTextBase = 0x1000;

  Addr text_base = kDefaultTextBase;
  std::vector<Instruction> text;
  // Deque: AddSegment hands out references that must stay valid while
  // later segments are added (workload generators rely on this).
  std::deque<DataSegment> data;
  Pc entry = kDefaultTextBase;
  std::vector<PThreadSpec> pthreads;
  std::vector<SecretRange> secret_ranges;

  bool IsSecretAddr(Addr addr, std::uint32_t bytes) const {
    for (const SecretRange& r : secret_ranges) {
      if (r.Contains(addr, bytes)) return true;
    }
    return false;
  }

  Pc PcOf(InstrIndex index) const {
    return text_base + static_cast<Addr>(index) * kInstrBytes;
  }

  bool ContainsPc(Pc pc) const {
    return pc >= text_base && pc < text_base + text.size() * kInstrBytes &&
           (pc - text_base) % kInstrBytes == 0;
  }

  InstrIndex IndexOf(Pc pc) const {
    SPEAR_DCHECK(ContainsPc(pc));
    return static_cast<InstrIndex>((pc - text_base) / kInstrBytes);
  }

  const Instruction& At(Pc pc) const { return text[IndexOf(pc)]; }

  Pc EndPc() const {
    return text_base + static_cast<Addr>(text.size()) * kInstrBytes;
  }

  // Convenience for data-segment construction in workload generators.
  DataSegment& AddSegment(Addr base, std::size_t size) {
    data.push_back(DataSegment{base, std::vector<std::uint8_t>(size, 0)});
    return data.back();
  }
};

// Conventional stack base: the stack grows down from just under 256 MiB.
// Both the functional emulator and the timed core seed sp from
// InitialStackPointer below — they must agree or lockstep cosim diverges
// on the first sp-relative access.
inline constexpr Addr kStackBase = 0x0fff0000u;
// Band reserved below the stack base; a data segment reaching into it
// forces relocation (workloads never legitimately need this much stack,
// but a scaled working set can legitimately grow up into the band).
inline constexpr Addr kStackGuardBytes = 1u << 20;

// Initial sp for `prog`: kStackBase, unless a data segment overlaps the
// reserved band [kStackBase - guard, kStackBase) — the old unconditional
// seed silently let the stack clobber such segments. The stack is then
// relocated above every offending segment (keeping the guard band), and a
// program whose data reaches the top of the address space fails a CHECK
// rather than wrapping.
inline Addr InitialStackPointer(const Program& prog) {
  std::uint64_t sp = kStackBase;
  // A relocation can land the stack in yet another segment, so iterate to
  // a fixpoint; each pass either leaves sp alone or raises it past some
  // segment, so this terminates after at most prog.data.size() passes.
  bool moved = true;
  while (moved) {
    moved = false;
    for (const DataSegment& seg : prog.data) {
      const std::uint64_t seg_end =
          static_cast<std::uint64_t>(seg.base) + seg.bytes.size();
      if (seg.base < sp && seg_end > sp - kStackGuardBytes) {
        const std::uint64_t cand =
            ((seg_end + kInstrBytes - 1) & ~std::uint64_t{kInstrBytes - 1}) +
            kStackGuardBytes;
        if (cand > sp) {
          sp = cand;
          moved = true;
        }
      }
    }
  }
  SPEAR_CHECK(sp <= 0xfff00000ull);  // no room left for a stack: refuse
  return static_cast<Addr>(sp);
}

// Typed accessors for building initialized data images.
inline void PokeU32(DataSegment& seg, Addr addr, std::uint32_t value) {
  SPEAR_CHECK(addr >= seg.base && addr + 4 <= seg.base + seg.bytes.size());
  const std::size_t off = addr - seg.base;
  for (int i = 0; i < 4; ++i) {
    seg.bytes[off + i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

inline void PokeU8(DataSegment& seg, Addr addr, std::uint8_t value) {
  SPEAR_CHECK(addr >= seg.base && addr + 1 <= seg.base + seg.bytes.size());
  seg.bytes[addr - seg.base] = value;
}

inline void PokeF64(DataSegment& seg, Addr addr, double value) {
  SPEAR_CHECK(addr >= seg.base && addr + 8 <= seg.base + seg.bytes.size());
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, sizeof(bits));
  const std::size_t off = addr - seg.base;
  for (int i = 0; i < 8; ++i) {
    seg.bytes[off + i] = static_cast<std::uint8_t>(bits >> (8 * i));
  }
}

}  // namespace spear
