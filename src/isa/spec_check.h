// P-thread spec contract diagnostics and the structural half of the
// checker.
//
// SPEAR's safety story is that a p-thread only warms the D-cache and never
// changes architectural state; a `PThreadSpec` that smuggles a store into
// its slice, points outside its region, or omits a live-in breaks that
// contract before the hardware ever runs. This header owns the diagnostic
// vocabulary for the whole contract and implements the *structural* checks
// — the ones that need nothing but the program text, cheap enough to run
// every time a binary is loaded. The dataflow checks (live-in liveness,
// slice self-containment, dead-code lints) live in analysis/verifier.h on
// top of the solvers in analysis/dataflow.h.
#pragma once

#include <string>
#include <vector>

#include "isa/program.h"

namespace spear {

enum class SpecDiagCode {
  // Structural contract violations (checked at binary load time).
  kEmptySlice,            // slice_pcs is empty
  kUnsortedSlicePcs,      // slice_pcs not strictly ascending
  kSlicePcNotInText,      // a slice pc does not decode (outside/misaligned)
  kBadRegion,             // region bounds invalid or outside the text
  kSlicePcOutsideRegion,  // a slice pc outside [region_start, region_end]
  kDloadNotInSlice,       // dload_pc missing from its own slice
  kDloadNotALoad,         // dload_pc does not name a load instruction
  kStoreInSlice,          // architectural-state escape: memory write
  kControlInSlice,        // architectural-state escape: control transfer
  kSideEffectInSlice,     // architectural-state escape: halt/out
  kBadLiveIn,             // live-in register id invalid (r0 or out of range)
  kUnsortedLiveIns,       // live_ins not strictly ascending
  // Dataflow contract violations (spearverify / spearc --verify).
  kMissingLiveIn,         // slice reads a register that is not a live-in
  kSpuriousLiveIn,        // declared live-in never read before definition
  kUncoveredRead,         // read covered by neither live-ins nor slice defs
  // Lints (warnings; the spec works but wastes hardware).
  kDeadSliceInstr,        // slice instruction feeds nothing downstream
  kOversizedLiveIns,      // live-in copy (1 reg/cycle) delays the trigger
  kEmptyRegion,           // slice is just the d-load: nothing runs ahead
  // Security lints (analysis/taint.h; spearverify --security). A p-thread
  // executes speculatively and its loads leave cache footprints, so an
  // address derived from loaded data is a leakage channel.
  kSecretTaintedAddress,  // address derives from a @secret-region load
  kSpecTaintedAddress,    // address derives from a speculatively loaded value
};

enum class SpecDiagSeverity { kError, kWarning };

// Stable kebab-case name, printed in brackets after each diagnostic.
const char* SpecDiagCodeName(SpecDiagCode code);
SpecDiagSeverity SeverityOf(SpecDiagCode code);

// True for the taint-analysis diagnostics: failures map to the dedicated
// security exit code (tools/tool_flags.h) instead of the generic failure.
bool IsSecurityDiag(SpecDiagCode code);

// One row of the diagnostic vocabulary (spearverify --list-diagnostics).
struct SpecDiagInfo {
  SpecDiagCode code;
  const char* name;         // stable kebab-case string id
  SpecDiagSeverity severity;
  const char* description;  // one line, human readable
};

// Every diagnostic, in enum order. The table is the single source of truth
// behind SpecDiagCodeName/SeverityOf, so the dump can never drift.
const std::vector<SpecDiagInfo>& AllSpecDiagInfos();

struct SpecDiag {
  SpecDiagCode code;
  Pc pc = 0;            // offending pc (the d-load's for set-level checks)
  std::string message;  // human-readable, no file prefix

  SpecDiagSeverity severity() const { return SeverityOf(code); }
};

bool HasSpecErrors(const std::vector<SpecDiag>& diags);

// Structural checks only: slice decodes / is strictly sorted / stays inside
// a valid region / contains the d-load; no store, control transfer, halt or
// out in the slice; live-in register ids valid and canonically sorted.
std::vector<SpecDiag> CheckSpecStructure(const Program& prog,
                                         const PThreadSpec& spec);

}  // namespace spear
