// SPEC CFP2000 183.equake: unstructured-mesh earthquake simulation, whose
// hot loop is a sparse matrix-vector product over the stiffness matrix —
// CSR spine (row lengths + column indices) feeding double-precision
// gathers and multiply-adds. Long FP latencies overlap the memory stalls;
// the paper notes CFP2000 codes profit from decoupled memory access for
// exactly this reason.
#include "workloads/datagen.h"
#include "workloads/kernels.h"

namespace spear::workloads {

Program BuildEquake(const WorkloadConfig& config) {
  const int rows = 3000 * config.scale;
  const int nnz_per_row = 9;      // mesh nodes touch ~9 neighbours
  const int vec_len = 1 << 18;    // 256K doubles = 2 MiB displacement vector
  const int timesteps = 3;
  constexpr Addr kCol = 0x18000000;
  constexpr Addr kVal = 0x19000000;  // f64 stiffness entries
  constexpr Addr kVec = 0x1a000000;  // f64 displacement vector
  constexpr Addr kOut = 0x1b000000;  // f64 per-row results

  Program prog;
  Rng rng(config.seed);
  const int nnz = rows * nnz_per_row;
  DataSegment& col = prog.AddSegment(kCol, static_cast<std::size_t>(nnz) * 4);
  for (int i = 0; i < nnz; ++i) {
    // Mesh locality: clustered neighbours with occasional far links.
    const int row = i / nnz_per_row;
    const std::uint32_t base =
        static_cast<std::uint32_t>((static_cast<std::uint64_t>(row) * 87) %
                                   vec_len);
    const std::uint32_t idx =
        rng.Chance(0.7)
            ? (base + static_cast<std::uint32_t>(rng.Below(64))) % vec_len
            : static_cast<std::uint32_t>(rng.Below(vec_len));
    PokeU32(col, kCol + static_cast<Addr>(i) * 4, idx);
  }
  DataSegment& val = prog.AddSegment(kVal, static_cast<std::size_t>(nnz) * 8);
  for (int i = 0; i < nnz; i += 2) {
    PokeF64(val, kVal + static_cast<Addr>(i) * 8, rng.NextDouble() - 0.5);
  }
  DataSegment& vec = prog.AddSegment(kVec, static_cast<std::size_t>(vec_len) * 8);
  for (int i = 0; i < vec_len; i += 32) {
    PokeF64(vec, kVec + static_cast<Addr>(i) * 8, rng.NextDouble());
  }
  prog.AddSegment(kOut, static_cast<std::size_t>(rows) * 8);

  Assembler a(&prog);
  Label step = a.NewLabel(), row = a.NewLabel(), elem = a.NewLabel();
  a.li(r(20), timesteps);
  a.Bind(step);
  a.la(r(1), kCol);
  a.la(r(2), kVal);
  a.la(r(8), kVec);
  a.la(r(9), kOut);
  a.li(r(3), rows);
  a.Bind(row);
  a.cvtif(f(4), r(0));         // row accumulator = 0.0
  a.li(r(5), nnz_per_row);
  a.Bind(elem);
  a.lw(r(6), r(1), 0);         // column index (spine)
  a.slli(r(6), r(6), 3);
  a.add(r(6), r(8), r(6));
  a.ldf(f(1), r(6), 0);        // vector gather (DELINQUENT)
  a.ldf(f(2), r(2), 0);        // stiffness value (sequential)
  a.fmul(f(3), f(1), f(2));
  a.fadd(f(4), f(4), f(3));
  a.addi(r(1), r(1), 4);
  a.addi(r(2), r(2), 8);
  a.addi(r(5), r(5), -1);
  a.bne(r(5), r(0), elem);
  a.stf(f(4), r(9), 0);
  a.addi(r(9), r(9), 8);
  a.addi(r(3), r(3), -1);
  a.bne(r(3), r(0), row);
  a.addi(r(20), r(20), -1);
  a.bne(r(20), r(0), step);
  a.cvtfi(r(4), f(4));
  a.out(r(4));
  a.halt();
  a.Finish();
  return prog;
}

}  // namespace spear::workloads
