// Stressmark "update": like pointer, but every visited node is modified —
// a read-modify-write of the node payload accompanies each hop, adding
// store traffic and dirty-line writebacks to the dependent-load chain.
// Four chains round-robin.
#include "workloads/datagen.h"
#include "workloads/kernels.h"

namespace spear::workloads {

Program BuildUpdate(const WorkloadConfig& config) {
  constexpr int kChains = 4;
  const int nodes_per_chain = 3072 * config.scale;
  const int hops = 6000 * config.scale;  // per chain
  constexpr Addr kBase = 0x02800000;
  constexpr Addr kStride = 64;

  constexpr Addr kStarts = 0x027f0000;  // cursors in data: text stays
                                        // seed-independent
  Program prog;
  Rng rng(config.seed);
  DataSegment& starts = prog.AddSegment(kStarts, kChains * 4);
  DataSegment& seg = prog.AddSegment(
      kBase, static_cast<std::size_t>(kChains) * nodes_per_chain * kStride);

  Addr start[kChains];
  for (int c = 0; c < kChains; ++c) {
    const Addr chain_base =
        kBase + static_cast<Addr>(c) * nodes_per_chain * kStride;
    const std::vector<std::uint32_t> perm =
        RandomPermutation(nodes_per_chain, rng);
    for (int i = 0; i < nodes_per_chain; ++i) {
      const Addr node = chain_base + perm[static_cast<std::size_t>(i)] * kStride;
      const Addr next =
          chain_base +
          perm[static_cast<std::size_t>((i + 1) % nodes_per_chain)] * kStride;
      PokeU32(seg, node, next);
      PokeU32(seg, node + 4, static_cast<std::uint32_t>(rng.Next() & 0xffff));
    }
    start[c] = chain_base + perm[0] * kStride;
  }
  for (int c = 0; c < kChains; ++c) {
    PokeU32(starts, kStarts + static_cast<Addr>(c) * 4, start[c]);
  }

  Assembler a(&prog);
  Label loop = a.NewLabel();
  a.la(r(9), kStarts);
  for (int c = 0; c < kChains; ++c) a.lw(r(10 + c), r(9), c * 4);
  a.li(r(2), hops);
  a.li(r(3), 0);
  a.Bind(loop);
  for (int c = 0; c < kChains; ++c) {
    a.lw(r(4), r(10 + c), 4);       // payload
    a.addi(r(4), r(4), 1);          // update
    a.sw(r(4), r(10 + c), 4);       // write back to the node
    a.add(r(3), r(3), r(4));
    a.lw(r(10 + c), r(10 + c), 0);  // hop (delinquent load)
  }
  a.addi(r(2), r(2), -1);
  a.bne(r(2), r(0), loop);
  a.out(r(3));
  a.halt();
  a.Finish();
  return prog;
}

}  // namespace spear::workloads
