// DIS "data management": an in-memory record store indexed by a chained
// hash table. A query stream mixes lookups and updates: hash the key,
// load the bucket head, walk the collision chain (pointer hops through a
// node pool far larger than the L2), compare keys, and touch the record
// payload on a hit.
#include "workloads/datagen.h"
#include "workloads/kernels.h"

namespace spear::workloads {

Program BuildDm(const WorkloadConfig& config) {
  const int buckets = 1 << 14;            // 16K bucket heads
  const int records = 40000 * config.scale;
  const int queries = 30000 * config.scale;
  constexpr Addr kHeads = 0x08000000;     // buckets * 4
  constexpr Addr kPool = 0x08800000;      // node pool: {next, key, payload, pad}
  constexpr Addr kKeys = 0x09800000;      // query key stream
  constexpr Addr kNodeSize = 16;

  Program prog;
  Rng rng(config.seed);
  DataSegment& heads = prog.AddSegment(kHeads, buckets * 4);
  DataSegment& pool = prog.AddSegment(
      kPool, static_cast<std::size_t>(records) * kNodeSize);
  // Insert records in random order; chains average records/buckets ~ 2.4.
  std::vector<std::uint32_t> head(static_cast<std::size_t>(buckets), 0);
  const std::vector<std::uint32_t> order = RandomPermutation(records, rng);
  std::vector<std::uint32_t> keys(static_cast<std::size_t>(records));
  for (int i = 0; i < records; ++i) {
    const std::uint32_t key = static_cast<std::uint32_t>(rng.Next()) | 1u;
    keys[static_cast<std::size_t>(i)] = key;
    const std::uint32_t node = order[static_cast<std::size_t>(i)];
    const Addr node_addr = kPool + node * kNodeSize;
    const std::uint32_t b = (key * 2654435761u) >> 18;  // top 14 bits
    PokeU32(pool, node_addr + 0, head[b]);              // next
    PokeU32(pool, node_addr + 4, key);
    PokeU32(pool, node_addr + 8, key & 0xffff);         // payload
    head[b] = node_addr;
  }
  for (int b = 0; b < buckets; ++b) {
    PokeU32(heads, kHeads + static_cast<Addr>(b) * 4,
            head[static_cast<std::size_t>(b)]);
  }
  DataSegment& qs = prog.AddSegment(kKeys,
                                    static_cast<std::size_t>(queries) * 4);
  for (int i = 0; i < queries; ++i) {
    // 75% present keys, 25% absent.
    const std::uint32_t key =
        rng.Chance(0.75)
            ? keys[static_cast<std::size_t>(rng.Below(records))]
            : (static_cast<std::uint32_t>(rng.Next()) & ~1u);
    PokeU32(qs, kKeys + static_cast<Addr>(i) * 4, key);
  }

  Assembler a(&prog);
  Label loop = a.NewLabel(), walk = a.NewLabel(), found = a.NewLabel();
  Label next_query = a.NewLabel();
  a.la(r(1), kKeys);
  a.li(r(2), queries);
  a.li(r(3), 0);               // hit count / checksum
  a.la(r(9), kHeads);
  a.li(r(21), 2654435761u);
  a.Bind(loop);
  a.lw(r(4), r(1), 0);         // query key (sequential)
  a.mul(r(5), r(4), r(21));
  a.srli(r(5), r(5), 18);
  a.slli(r(5), r(5), 2);
  a.add(r(5), r(9), r(5));
  a.lw(r(6), r(5), 0);         // bucket head (delinquent)
  a.Bind(walk);
  a.beq(r(6), r(0), next_query);
  a.lw(r(7), r(6), 4);         // node key (delinquent chain hop)
  a.beq(r(7), r(4), found);
  a.lw(r(6), r(6), 0);         // next
  a.j(walk);
  a.Bind(found);
  a.lw(r(8), r(6), 8);         // payload
  a.addi(r(8), r(8), 1);
  a.sw(r(8), r(6), 8);         // update record
  a.addi(r(3), r(3), 1);
  a.Bind(next_query);
  a.addi(r(1), r(1), 4);
  a.addi(r(2), r(2), -1);
  a.bne(r(2), r(0), loop);
  a.out(r(3));
  a.halt();
  a.Finish();
  return prog;
}

}  // namespace spear::workloads
