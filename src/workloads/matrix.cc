// Stressmark "matrix": conjugate-gradient-style sparse solve, dominated by
// CSR sparse matrix-vector products — a sequential sweep over row pointers
// and column indices feeding an indexed gather from the dense vector. The
// gather is the delinquent load; control flow is extremely predictable
// (the paper reports a 99.4% branch hit ratio for matrix, and the largest
// SPEAR-256-over-SPEAR-128 gain).
#include "workloads/datagen.h"
#include "workloads/kernels.h"

namespace spear::workloads {

Program BuildMatrix(const WorkloadConfig& config) {
  const int rows = 4000 * config.scale;
  const int nnz_per_row = 12;
  const int vec_words = 1 << 20;  // 4 MiB dense vector: gather misses
  const int passes = 4;           // CG iterations (re-sweeps of the matrix)
  constexpr Addr kColIdx = 0x05000000;  // nnz u32 column indices
  constexpr Addr kVals = 0x05800000;    // nnz u32 fixed-point values
  constexpr Addr kVec = 0x06000000;     // dense vector
  constexpr Addr kOut = 0x06800000;     // result per row

  Program prog;
  Rng rng(config.seed);
  const int nnz = rows * nnz_per_row;
  DataSegment& col = prog.AddSegment(kColIdx, static_cast<std::size_t>(nnz) * 4);
  DataSegment& val = prog.AddSegment(kVals, static_cast<std::size_t>(nnz) * 4);
  for (int i = 0; i < nnz; ++i) {
    PokeU32(col, kColIdx + static_cast<Addr>(i) * 4,
            static_cast<std::uint32_t>(rng.Below(vec_words)));
    PokeU32(val, kVals + static_cast<Addr>(i) * 4,
            static_cast<std::uint32_t>(rng.Below(256) + 1));
  }
  DataSegment& vec = prog.AddSegment(kVec, static_cast<std::size_t>(vec_words) * 4);
  // Sparse init keeps the image small in memory: every 64th word.
  for (int i = 0; i < vec_words; i += 64) {
    PokeU32(vec, kVec + static_cast<Addr>(i) * 4,
            static_cast<std::uint32_t>(rng.Below(1000)));
  }
  prog.AddSegment(kOut, static_cast<std::size_t>(rows) * 4);

  Assembler a(&prog);
  Label pass = a.NewLabel(), row = a.NewLabel(), elem = a.NewLabel();
  a.li(r(20), passes);
  a.Bind(pass);
  a.la(r(1), kColIdx);
  a.la(r(2), kVals);
  a.la(r(8), kVec);
  a.la(r(9), kOut);
  a.li(r(3), rows);
  a.Bind(row);
  a.li(r(4), 0);                 // row accumulator
  a.li(r(5), nnz_per_row);
  a.Bind(elem);
  a.lw(r(6), r(1), 0);           // column index (spine, sequential)
  a.slli(r(6), r(6), 2);
  a.add(r(6), r(8), r(6));
  a.lw(r(7), r(6), 0);           // x[col] gather (delinquent load)
  a.lw(r(10), r(2), 0);          // value (sequential)
  a.mul(r(7), r(7), r(10));
  a.add(r(4), r(4), r(7));
  a.addi(r(1), r(1), 4);
  a.addi(r(2), r(2), 4);
  a.addi(r(5), r(5), -1);
  a.bne(r(5), r(0), elem);
  a.sw(r(4), r(9), 0);
  a.addi(r(9), r(9), 4);
  a.addi(r(3), r(3), -1);
  a.bne(r(3), r(0), row);
  a.addi(r(20), r(20), -1);
  a.bne(r(20), r(0), pass);
  a.out(r(4));
  a.halt();
  a.Finish();
  return prog;
}

}  // namespace spear::workloads
