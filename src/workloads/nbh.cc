// Stressmark "neighborhood": gray-level co-occurrence over a large image —
// for a stream of sample points, read a pixel and a displaced neighbor and
// update a histogram indexed by the two values. Strided pixel reads plus
// data-dependent histogram scatter; highly predictable control flow (the
// paper's nbh has a 99.6% branch hit ratio and profits from the long IFQ).
#include "workloads/datagen.h"
#include "workloads/kernels.h"

namespace spear::workloads {

Program BuildNbh(const WorkloadConfig& config) {
  const int dim = 1024;                     // image is dim x dim bytes = 1 MiB
  const int samples = 24000 * config.scale;
  constexpr Addr kImage = 0x03000000;
  constexpr Addr kHist = 0x03800000;        // 64x64 u32 histogram
  constexpr Addr kPoints = 0x03900000;      // precomputed sample offsets

  Program prog;
  Rng rng(config.seed);
  DataSegment& img = prog.AddSegment(
      kImage, static_cast<std::size_t>(dim) * dim);
  for (int i = 0; i < dim * dim; ++i) {
    PokeU8(img, kImage + static_cast<Addr>(i),
           static_cast<std::uint8_t>(rng.Below(64)));
  }
  prog.AddSegment(kHist, 64 * 64 * 4);
  DataSegment& pts = prog.AddSegment(
      kPoints, static_cast<std::size_t>(samples) * 4);
  for (int i = 0; i < samples; ++i) {
    // Random (x, y) with room for the displaced neighbor (dx=3, dy=2).
    const auto x = static_cast<std::uint32_t>(rng.Below(dim - 4));
    const auto y = static_cast<std::uint32_t>(rng.Below(dim - 4));
    PokeU32(pts, kPoints + static_cast<Addr>(i) * 4, y * dim + x);
  }

  Assembler a(&prog);
  Label loop = a.NewLabel();
  a.la(r(1), kPoints);
  a.li(r(2), samples);
  a.la(r(8), kImage);
  a.la(r(9), kHist);
  a.Bind(loop);
  a.lw(r(4), r(1), 0);            // sample offset (spine)
  a.add(r(5), r(8), r(4));
  a.lbu(r(6), r(5), 0);           // pixel (delinquent: image >> L2)
  a.lbu(r(7), r(5), 2 * dim + 3); // displaced neighbor
  a.slli(r(6), r(6), 6);
  a.or_(r(6), r(6), r(7));        // histogram index = p*64 + q
  a.slli(r(6), r(6), 2);
  a.add(r(6), r(9), r(6));
  a.lw(r(10), r(6), 0);           // histogram bin (scatter)
  a.addi(r(10), r(10), 1);
  a.sw(r(10), r(6), 0);
  a.addi(r(1), r(1), 4);
  a.addi(r(2), r(2), -1);
  a.bne(r(2), r(0), loop);
  a.out(r(2));
  a.halt();
  a.Finish();
  return prog;
}

}  // namespace spear::workloads
