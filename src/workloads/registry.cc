#include "workloads/workload.h"

#include "common/check.h"
#include "workloads/kernels.h"

namespace spear {

const std::vector<WorkloadInfo>& AllWorkloads() {
  using namespace workloads;
  static const std::vector<WorkloadInfo> kAll = {
      {"pointer", "Stressmark", "dependent-load chains, high L2 miss",
       BuildPointer},
      {"update", "Stressmark", "dependent chains + node writebacks",
       BuildUpdate},
      {"nbh", "Stressmark", "image neighborhood + histogram scatter",
       BuildNbh},
      {"tr", "Stressmark", "Floyd-Warshall sweeps, unpredictable branches",
       BuildTr},
      {"matrix", "Stressmark", "CSR sparse solve: index-fed gather",
       BuildMatrix},
      {"field", "Stressmark", "sequential token scan, low miss rate",
       BuildField},
      {"dm", "DIS", "hash-chain record store lookups/updates", BuildDm},
      {"ray", "DIS", "voxel-grid ray marching, FP + gather", BuildRay},
      {"fft", "DIS", "radix-2 butterflies, strided, heavy slices", BuildFft},
      {"gzip", "SPEC CINT2000", "LZ77 hash chains: d-loads everywhere",
       BuildGzip},
      {"mcf", "SPEC CINT2000", "arc sweep + random node potentials",
       BuildMcf},
      {"vpr", "SPEC CINT2000", "placement swaps: random 2-D lookups",
       BuildVpr},
      {"bzip2", "SPEC CINT2000", "BWT suffix compares at permuted offsets",
       BuildBzip2},
      {"equake", "SPEC CFP2000", "unstructured FP SMVP gather", BuildEquake},
      {"art", "SPEC CFP2000", "neural-net weight-matrix FP streams",
       BuildArt},
  };
  return kAll;
}

const WorkloadInfo& FindWorkload(const std::string& name) {
  for (const WorkloadInfo& w : AllWorkloads()) {
    if (name == w.name) return w;
  }
  SPEAR_CHECK(false && "unknown workload");
  __builtin_unreachable();
}

Program BuildWorkloadProgram(const std::string& name,
                             const WorkloadConfig& config) {
  return FindWorkload(name).build(config);
}

}  // namespace spear
