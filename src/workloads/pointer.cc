// Stressmark "pointer": repeated hops to randomized locations in a large
// field of words; the next hop address is computed from the values found
// at the current location. We run eight independent hop chains round-robin
// (the Stressmark's multi-thread configuration), each chain a random
// permutation cycle over its own partition — dependent-load chains with
// cross-chain memory-level parallelism.
#include "workloads/datagen.h"
#include "workloads/kernels.h"

namespace spear::workloads {

Program BuildPointer(const WorkloadConfig& config) {
  constexpr int kChains = 8;
  const int nodes_per_chain = 2048 * config.scale;  // x64B = 128KiB/chain
  const int hops = 4000 * config.scale;             // per chain
  constexpr Addr kBase = 0x02000000;
  constexpr Addr kStride = 64;  // one node per L2 block

  constexpr Addr kStarts = 0x01ff0000;  // chain cursors live in data, so
                                        // the text stays seed-independent
  Program prog;
  Rng rng(config.seed);
  DataSegment& starts = prog.AddSegment(kStarts, kChains * 4);
  DataSegment& seg = prog.AddSegment(
      kBase, static_cast<std::size_t>(kChains) * nodes_per_chain * kStride);

  Addr start[kChains];
  for (int c = 0; c < kChains; ++c) {
    const Addr chain_base =
        kBase + static_cast<Addr>(c) * nodes_per_chain * kStride;
    const std::vector<std::uint32_t> perm =
        RandomPermutation(nodes_per_chain, rng);
    for (int i = 0; i < nodes_per_chain; ++i) {
      const Addr node = chain_base + perm[static_cast<std::size_t>(i)] * kStride;
      const Addr next =
          chain_base +
          perm[static_cast<std::size_t>((i + 1) % nodes_per_chain)] * kStride;
      PokeU32(seg, node, next);
      PokeU32(seg, node + 4, static_cast<std::uint32_t>(rng.Next()));
    }
    start[c] = chain_base + perm[0] * kStride;
  }
  for (int c = 0; c < kChains; ++c) {
    PokeU32(starts, kStarts + static_cast<Addr>(c) * 4, start[c]);
  }

  Assembler a(&prog);
  Label loop = a.NewLabel();
  // r10..r17 hold the eight chain cursors; r3 accumulates a checksum.
  a.la(r(9), kStarts);
  for (int c = 0; c < kChains; ++c) a.lw(r(10 + c), r(9), c * 4);
  a.li(r(2), hops);
  a.li(r(3), 0);
  a.Bind(loop);
  for (int c = 0; c < kChains; ++c) {
    a.lw(r(4), r(10 + c), 4);      // payload word
    a.xor_(r(3), r(3), r(4));
    a.lw(r(10 + c), r(10 + c), 0); // hop (delinquent load)
  }
  a.addi(r(2), r(2), -1);
  a.bne(r(2), r(0), loop);
  a.out(r(3));
  a.halt();
  a.Finish();
  return prog;
}

}  // namespace spear::workloads
