// SPEC CINT2000 256.bzip2: Burrows-Wheeler-ish sorting phase — byte
// histogram, then repeated suffix comparisons through a rank/pointer
// permutation. The comparison loop does data-dependent byte loads at
// permuted positions of a large block, with branchy compare outcomes.
#include "workloads/datagen.h"
#include "workloads/kernels.h"

namespace spear::workloads {

Program BuildBzip2(const WorkloadConfig& config) {
  const int block = 1 << 20;             // 1 MiB text block
  const int compares = 22000 * config.scale;
  constexpr Addr kBlock = 0x15000000;
  constexpr Addr kPtr = 0x16000000;      // suffix pointer permutation
  constexpr Addr kHist = 0x17000000;     // 256 u32 histogram

  Program prog;
  Rng rng(config.seed);
  DataSegment& text = prog.AddSegment(kBlock, block);
  // Text-like input with skewed byte distribution.
  for (int i = 0; i < block; ++i) {
    const auto v = static_cast<std::uint8_t>(
        rng.Chance(0.7) ? 97 + rng.Below(26) : rng.Below(256));
    PokeU8(text, kBlock + static_cast<Addr>(i), v);
  }
  DataSegment& ptr = prog.AddSegment(kPtr, static_cast<std::size_t>(block) * 4);
  for (int i = 0; i < block; i += 1) {
    PokeU32(ptr, kPtr + static_cast<Addr>(i) * 4,
            static_cast<std::uint32_t>(rng.Below(block)));
  }
  prog.AddSegment(kHist, 256 * 4);

  Assembler a(&prog);
  // Phase 1: histogram of the first 4K bytes (sequential + scatter).
  Label hist = a.NewLabel();
  a.la(r(1), kBlock);
  a.li(r(2), 1 << 12);
  a.la(r(9), kHist);
  a.Bind(hist);
  a.lbu(r(4), r(1), 0);
  a.slli(r(4), r(4), 2);
  a.add(r(4), r(9), r(4));
  a.lw(r(5), r(4), 0);
  a.addi(r(5), r(5), 1);
  a.sw(r(5), r(4), 0);
  a.addi(r(1), r(1), 1);
  a.addi(r(2), r(2), -1);
  a.bne(r(2), r(0), hist);

  // Phase 2: suffix comparisons through the pointer permutation.
  Label cmp = a.NewLabel(), inner = a.NewLabel(), differ = a.NewLabel();
  a.la(r(1), kPtr);
  a.li(r(2), compares);
  a.li(r(3), 0);                // "less" count
  a.la(r(8), kBlock);
  a.li(r(20), block - 16);
  a.Bind(cmp);
  a.lw(r(4), r(1), 0);          // suffix A position (sequential spine)
  a.lw(r(5), r(1), 4);          // suffix B position
  a.and_(r(4), r(4), r(20));
  a.and_(r(5), r(5), r(20));
  a.add(r(4), r(8), r(4));
  a.add(r(5), r(8), r(5));
  a.li(r(6), 8);                // compare up to 8 bytes
  a.Bind(inner);
  a.lbu(r(10), r(4), 0);        // byte at permuted position (DELINQUENT)
  a.lbu(r(11), r(5), 0);        // byte at other position (DELINQUENT)
  a.bne(r(10), r(11), differ);
  a.addi(r(4), r(4), 1);
  a.addi(r(5), r(5), 1);
  a.addi(r(6), r(6), -1);
  a.bne(r(6), r(0), inner);
  a.Bind(differ);
  a.slt(r(12), r(10), r(11));
  a.add(r(3), r(3), r(12));
  a.addi(r(1), r(1), 4);
  a.addi(r(2), r(2), -1);
  a.bne(r(2), r(0), cmp);
  a.out(r(3));
  a.halt();
  a.Finish();
  return prog;
}

}  // namespace spear::workloads
