// SPEC CFP2000 179.art: Adaptive Resonance Theory image recognition — the
// F1-layer scan multiplies a large double-precision weight matrix against
// the input feature vector for every output category. Big sequential FP
// arrays (weights never fit any cache) with perfectly predictable control
// flow: the paper's best cache-miss reduction (-38.8%) comes from art.
#include "workloads/datagen.h"
#include "workloads/kernels.h"

namespace spear::workloads {

Program BuildArt(const WorkloadConfig& config) {
  const int features = 2500;               // f1 layer width
  const int categories = 24 * config.scale;
  const int epochs = 2;
  constexpr Addr kWeights = 0x1c000000;     // categories x features f64
  constexpr Addr kInput = 0x1d000000;       // features f64
  constexpr Addr kAct = 0x1e000000;         // categories f64 activations

  Program prog;
  Rng rng(config.seed);
  DataSegment& w = prog.AddSegment(
      kWeights, static_cast<std::size_t>(categories) * features * 8);
  for (int i = 0; i < categories * features; i += 2) {
    PokeF64(w, kWeights + static_cast<Addr>(i) * 8, rng.NextDouble());
  }
  DataSegment& in = prog.AddSegment(kInput,
                                    static_cast<std::size_t>(features) * 8);
  for (int i = 0; i < features; ++i) {
    PokeF64(in, kInput + static_cast<Addr>(i) * 8, rng.NextDouble());
  }
  prog.AddSegment(kAct, static_cast<std::size_t>(categories) * 8);

  Assembler a(&prog);
  Label epoch = a.NewLabel(), cat = a.NewLabel(), feat = a.NewLabel();
  Label no_best = a.NewLabel();
  a.li(r(20), epochs);
  a.Bind(epoch);
  a.la(r(1), kWeights);
  a.li(r(2), categories);
  a.la(r(9), kAct);
  a.cvtif(f(8), r(0));           // best activation
  a.Bind(cat);
  a.la(r(8), kInput);
  a.cvtif(f(4), r(0));           // activation accumulator
  a.li(r(3), features);
  a.Bind(feat);
  a.ldf(f(1), r(1), 0);          // weight (sequential DELINQUENT stream)
  a.ldf(f(2), r(8), 0);          // input feature (cached after first pass)
  a.fmul(f(3), f(1), f(2));
  a.fadd(f(4), f(4), f(3));
  a.addi(r(1), r(1), 8);
  a.addi(r(8), r(8), 8);
  a.addi(r(3), r(3), -1);
  a.bne(r(3), r(0), feat);
  a.stf(f(4), r(9), 0);
  a.addi(r(9), r(9), 8);
  a.fle(r(4), f(4), f(8));       // winner tracking
  a.bne(r(4), r(0), no_best);
  a.fmov(f(8), f(4));
  a.Bind(no_best);
  a.addi(r(2), r(2), -1);
  a.bne(r(2), r(0), cat);
  a.addi(r(20), r(20), -1);
  a.bne(r(20), r(0), epoch);
  a.cvtfi(r(4), f(8));
  a.out(r(4));
  a.halt();
  a.Finish();
  return prog;
}

}  // namespace spear::workloads
