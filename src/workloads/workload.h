// Workload registry: 15 synthetic kernels standing in for the paper's
// benchmark suite (Table 1) — six Atlantic Aerospace Stressmarks, three
// DIS benchmarks and six SPEC2000 applications. Each kernel reproduces
// the *memory access character* of its namesake (see DESIGN.md §4); the
// SPEAR evaluation depends on those access patterns, not on the exact
// SPEC sources.
//
// Determinism: a kernel's data is derived from WorkloadConfig::seed, so
// the paper's profile-on-a-different-input methodology is a seed change.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.h"

namespace spear {

struct WorkloadConfig {
  std::uint64_t seed = 42;
  // Working-set / iteration scale. 1 = default bench scale (hundreds of
  // thousands of dynamic instructions, working sets beyond the L2).
  int scale = 1;
};

struct WorkloadInfo {
  const char* name;
  const char* suite;      // "Stressmark" | "DIS" | "SPEC CINT2000" | "SPEC CFP2000"
  const char* character;  // one-line memory-behaviour summary
  Program (*build)(const WorkloadConfig&);
};

const std::vector<WorkloadInfo>& AllWorkloads();

// Returns the workload with the given name; aborts if unknown.
const WorkloadInfo& FindWorkload(const std::string& name);

Program BuildWorkloadProgram(const std::string& name,
                             const WorkloadConfig& config);

}  // namespace spear
