// Shared data-image construction helpers for the workload generators.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "isa/assembler.h"
#include "isa/program.h"

namespace spear::workloads {

// Random permutation of [0, n).
inline std::vector<std::uint32_t> RandomPermutation(int n, Rng& rng) {
  std::vector<std::uint32_t> perm(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] =
      static_cast<std::uint32_t>(i);
  for (int i = n - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(
        rng.Below(static_cast<std::uint64_t>(i + 1)));
    std::swap(perm[static_cast<std::size_t>(i)], perm[j]);
  }
  return perm;
}

// Fills [base, base + words*4) with random u32 values below `bound`
// (bound == 0 means full range).
inline void FillRandomWords(DataSegment& seg, Addr base, int words,
                            std::uint64_t bound, Rng& rng) {
  for (int i = 0; i < words; ++i) {
    const std::uint32_t v =
        bound == 0 ? static_cast<std::uint32_t>(rng.Next())
                   : static_cast<std::uint32_t>(rng.Below(bound));
    PokeU32(seg, base + static_cast<Addr>(i) * 4, v);
  }
}

// Fills with random doubles in [0, 1).
inline void FillRandomF64(DataSegment& seg, Addr base, int count, Rng& rng) {
  for (int i = 0; i < count; ++i) {
    PokeF64(seg, base + static_cast<Addr>(i) * 8, rng.NextDouble());
  }
}

// Emits a 3-step xorshift32 step on `reg` using `tmp` as scratch.
inline void EmitXorshift32(Assembler& a, RegId reg, RegId tmp) {
  a.slli(tmp, reg, 13);
  a.xor_(reg, reg, tmp);
  a.srli(tmp, reg, 17);
  a.xor_(reg, reg, tmp);
  a.slli(tmp, reg, 5);
  a.xor_(reg, reg, tmp);
}

}  // namespace spear::workloads
