// SPEC CINT2000 175.vpr: placement inner loop — evaluate random block
// swaps on a 2-D FPGA grid. Each proposal reads the two blocks' net lists
// and the bounding-box cost terms of their nets: random 2-D lookups across
// a grid and net arrays much larger than the L2, inside a moderately fat
// body with a data-dependent accept branch.
#include "workloads/datagen.h"
#include "workloads/kernels.h"

namespace spear::workloads {

Program BuildVpr(const WorkloadConfig& config) {
  const int grid_dim = 512;                  // 512x512 cells, 8B each = 2 MiB
  const int nets = 1 << 16;
  const int proposals = 20000 * config.scale;
  constexpr Addr kGrid = 0x12000000;         // cell -> {net id, occupancy}
  constexpr Addr kNets = 0x13000000;         // net -> bounding-box cost
  constexpr Addr kRand = 0x14000000;         // proposal stream (x1,y1,x2,y2)

  Program prog;
  Rng rng(config.seed);
  DataSegment& grid = prog.AddSegment(
      kGrid, static_cast<std::size_t>(grid_dim) * grid_dim * 8);
  for (int i = 0; i < grid_dim * grid_dim; i += 2) {
    PokeU32(grid, kGrid + static_cast<Addr>(i) * 8,
            static_cast<std::uint32_t>(rng.Below(nets)));
    PokeU32(grid, kGrid + static_cast<Addr>(i) * 8 + 4,
            static_cast<std::uint32_t>(rng.Below(4)));
  }
  DataSegment& net = prog.AddSegment(kNets, static_cast<std::size_t>(nets) * 4);
  for (int i = 0; i < nets; ++i) {
    PokeU32(net, kNets + static_cast<Addr>(i) * 4,
            static_cast<std::uint32_t>(rng.Below(1000)));
  }
  DataSegment& props = prog.AddSegment(
      kRand, static_cast<std::size_t>(proposals) * 8);
  for (int i = 0; i < proposals; ++i) {
    const std::uint32_t c1 =
        static_cast<std::uint32_t>(rng.Below(grid_dim * grid_dim));
    const std::uint32_t c2 =
        static_cast<std::uint32_t>(rng.Below(grid_dim * grid_dim));
    PokeU32(props, kRand + static_cast<Addr>(i) * 8, c1);
    PokeU32(props, kRand + static_cast<Addr>(i) * 8 + 4, c2);
  }

  Assembler a(&prog);
  Label loop = a.NewLabel(), reject = a.NewLabel();
  a.la(r(1), kRand);
  a.li(r(2), proposals);
  a.li(r(3), 0);               // accepted count
  a.la(r(8), kGrid);
  a.la(r(9), kNets);
  a.Bind(loop);
  a.lw(r(4), r(1), 0);         // cell 1 (sequential proposal stream)
  a.lw(r(5), r(1), 4);         // cell 2
  a.slli(r(4), r(4), 3);
  a.slli(r(5), r(5), 3);
  a.add(r(4), r(8), r(4));
  a.add(r(5), r(8), r(5));
  a.lw(r(6), r(4), 0);         // net of cell 1 (DELINQUENT random 2-D)
  a.lw(r(7), r(5), 0);         // net of cell 2 (DELINQUENT)
  a.slli(r(10), r(6), 2);
  a.add(r(10), r(9), r(10));
  a.lw(r(11), r(10), 0);       // bb cost of net 1 (dependent gather)
  a.slli(r(12), r(7), 2);
  a.add(r(12), r(9), r(12));
  a.lw(r(13), r(12), 0);       // bb cost of net 2
  a.sub(r(14), r(11), r(13));  // delta cost
  a.bge(r(14), r(0), reject);  // accept only improving swaps
  // Apply the swap: exchange net ids.
  a.sw(r(7), r(4), 0);
  a.sw(r(6), r(5), 0);
  a.addi(r(3), r(3), 1);
  a.Bind(reject);
  a.addi(r(1), r(1), 8);
  a.addi(r(2), r(2), -1);
  a.bne(r(2), r(0), loop);
  a.out(r(3));
  a.halt();
  a.Finish();
  return prog;
}

}  // namespace spear::workloads
