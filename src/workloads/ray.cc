// DIS "ray tracing": rays march through a 3-D voxel grid accumulating
// density (fixed-step DDA). Each step computes a voxel address from the
// ray position (FP math feeding an integer gather) and samples the voxel —
// semi-regular accesses through a grid larger than the L2, with long FP
// latencies overlapping the memory accesses.
#include "workloads/datagen.h"
#include "workloads/kernels.h"

namespace spear::workloads {

Program BuildRay(const WorkloadConfig& config) {
  const int grid = 64;  // 64^3 voxels * 8B doubles = 2 MiB
  const int rays = 700 * config.scale;
  const int steps = 48;
  constexpr Addr kGrid = 0x0a000000;
  constexpr Addr kRays = 0x0b000000;  // per ray: origin (3 f64) + dir (3 f64)

  Program prog;
  Rng rng(config.seed);
  DataSegment& g = prog.AddSegment(
      kGrid, static_cast<std::size_t>(grid) * grid * grid * 8);
  // Sparse density blobs keep the image generation cheap.
  for (int i = 0; i < grid * grid * grid; i += 16) {
    PokeF64(g, kGrid + static_cast<Addr>(i) * 8, rng.NextDouble());
  }
  DataSegment& rs = prog.AddSegment(kRays, static_cast<std::size_t>(rays) * 48);
  for (int i = 0; i < rays; ++i) {
    const Addr base = kRays + static_cast<Addr>(i) * 48;
    for (int k = 0; k < 3; ++k) {
      PokeF64(rs, base + static_cast<Addr>(k) * 8, rng.NextDouble() * 8.0);
      PokeF64(rs, base + 24 + static_cast<Addr>(k) * 8,
              rng.NextDouble() * 1.2 + 0.05);
    }
  }

  Assembler a(&prog);
  Label ray = a.NewLabel(), step = a.NewLabel();
  a.la(r(1), kRays);
  a.li(r(2), rays);
  a.la(r(9), kGrid);
  a.li(r(20), grid - 1);
  a.cvtif(f(10), r(0));        // accumulated density (0.0)
  a.Bind(ray);
  a.ldf(f(1), r(1), 0);        // position x, y, z
  a.ldf(f(2), r(1), 8);
  a.ldf(f(3), r(1), 16);
  a.ldf(f(4), r(1), 24);       // direction
  a.ldf(f(5), r(1), 32);
  a.ldf(f(6), r(1), 40);
  a.li(r(3), steps);
  a.Bind(step);
  a.fadd(f(1), f(1), f(4));    // advance
  a.fadd(f(2), f(2), f(5));
  a.fadd(f(3), f(3), f(6));
  a.cvtfi(r(4), f(1));         // voxel coordinates
  a.cvtfi(r(5), f(2));
  a.cvtfi(r(6), f(3));
  a.and_(r(4), r(4), r(20));   // wrap into the grid
  a.and_(r(5), r(5), r(20));
  a.and_(r(6), r(6), r(20));
  a.slli(r(5), r(5), 6);
  a.slli(r(6), r(6), 12);
  a.or_(r(4), r(4), r(5));
  a.or_(r(4), r(4), r(6));
  a.slli(r(4), r(4), 3);
  a.add(r(4), r(9), r(4));
  a.ldf(f(7), r(4), 0);        // sample voxel (delinquent load)
  a.fadd(f(10), f(10), f(7));
  a.addi(r(3), r(3), -1);
  a.bne(r(3), r(0), step);
  a.addi(r(1), r(1), 48);
  a.addi(r(2), r(2), -1);
  a.bne(r(2), r(0), ray);
  a.cvtfi(r(4), f(10));
  a.out(r(4));
  a.halt();
  a.Finish();
  return prog;
}

}  // namespace spear::workloads
