// SPEC CINT2000 164.gzip: LZ77 longest-match search with hash chains —
// hash three bytes, load the chain head, walk previous positions comparing
// input bytes. Nearly every load in the loop is miss-prone (head table,
// chain links, byte compares across a large window), reproducing the
// paper's observation that gzip has *too many* d-loads (excessive
// triggering corrupts p-thread execution) and degrades slightly.
#include "workloads/datagen.h"
#include "workloads/kernels.h"

namespace spear::workloads {

Program BuildGzip(const WorkloadConfig& config) {
  const int window = 1 << 20;           // 1 MiB input window
  const int positions = 25000 * config.scale;
  const int hash_bits = 15;
  constexpr Addr kInput = 0x0e000000;
  constexpr Addr kHead = 0x0f000000;    // hash -> most recent position
  constexpr Addr kPrev = 0x0f800000;    // position -> previous position

  Program prog;
  Rng rng(config.seed);
  DataSegment& in = prog.AddSegment(kInput, window);
  // Compressible-ish input: runs of repeated fragments.
  int i = 0;
  while (i < window) {
    const int run = 4 + static_cast<int>(rng.Below(12));
    const auto byte = static_cast<std::uint8_t>(rng.Below(64));
    for (int k = 0; k < run && i < window; ++k, ++i) {
      PokeU8(in, kInput + static_cast<Addr>(i),
             static_cast<std::uint8_t>(byte + (k & 3)));
    }
  }
  // Pre-populate hash chains with random earlier positions.
  DataSegment& head = prog.AddSegment(kHead, (1u << hash_bits) * 4);
  for (int h = 0; h < (1 << hash_bits); ++h) {
    PokeU32(head, kHead + static_cast<Addr>(h) * 4,
            static_cast<std::uint32_t>(rng.Below(window / 2)));
  }
  DataSegment& prev = prog.AddSegment(kPrev,
                                      static_cast<std::size_t>(window) * 4);
  for (int p = 0; p < window; p += 2) {
    const std::uint32_t q = p < 256 ? 0 : static_cast<std::uint32_t>(
                                              rng.Below(static_cast<std::uint64_t>(p)));
    PokeU32(prev, kPrev + static_cast<Addr>(p) * 4, q & ~1u);
  }

  Assembler a(&prog);
  Label loop = a.NewLabel(), chain = a.NewLabel(), chain_done = a.NewLabel();
  a.li(r(1), window / 2);     // current position
  a.li(r(2), positions);
  a.li(r(3), 0);              // total match score
  a.la(r(8), kInput);
  a.la(r(9), kHead);
  a.la(r(10), kPrev);
  a.Bind(loop);
  // hash = (b0<<10 ^ b1<<5 ^ b2) & mask
  a.add(r(4), r(8), r(1));
  a.lbu(r(5), r(4), 0);
  a.lbu(r(6), r(4), 1);
  a.lbu(r(7), r(4), 2);
  a.slli(r(5), r(5), 10);
  a.slli(r(6), r(6), 5);
  a.xor_(r(5), r(5), r(6));
  a.xor_(r(5), r(5), r(7));
  a.andi(r(5), r(5), (1 << hash_bits) - 1);
  a.slli(r(5), r(5), 2);
  a.add(r(5), r(9), r(5));
  a.lw(r(11), r(5), 0);       // chain head (d-load)
  a.sw(r(1), r(5), 0);        // update head to current position
  a.li(r(12), 4);             // chain depth budget
  a.Bind(chain);
  a.beq(r(12), r(0), chain_done);
  a.add(r(13), r(8), r(11));
  a.lbu(r(14), r(13), 0);     // candidate byte (d-load)
  a.lbu(r(15), r(4), 0);
  a.beq(r(14), r(15), chain_done);  // "match": stop early
  a.slli(r(16), r(11), 2);
  a.add(r(16), r(10), r(16));
  a.lw(r(11), r(16), 0);      // prev[pos] (d-load chain hop)
  a.addi(r(12), r(12), -1);
  a.j(chain);
  a.Bind(chain_done);
  a.add(r(3), r(3), r(12));
  // Advance by a data-dependent stride (short, gzip-like).
  a.andi(r(17), r(14), 7);
  a.addi(r(17), r(17), 1);
  a.add(r(1), r(1), r(17));
  a.andi(r(1), r(1), window - 1);
  a.addi(r(2), r(2), -1);
  a.bne(r(2), r(0), loop);
  a.out(r(3));
  a.halt();
  a.Finish();
  return prog;
}

}  // namespace spear::workloads
