// Stressmark "field": token search across a large byte field — sequential
// byte scanning with compare-and-count. The access pattern is a pure
// stream: one L1 miss per 32 scanned bytes, i.e. a miss rate too low for
// prefetching to matter (the paper finds field gains nothing from SPEAR
// for exactly this reason).
#include "workloads/datagen.h"
#include "workloads/kernels.h"

namespace spear::workloads {

Program BuildField(const WorkloadConfig& config) {
  const int field_bytes = (1 << 21) * config.scale;  // 2 MiB
  constexpr Addr kField = 0x07000000;

  Program prog;
  Rng rng(config.seed);
  DataSegment& seg = prog.AddSegment(kField,
                                     static_cast<std::size_t>(field_bytes));
  for (int i = 0; i < field_bytes; ++i) {
    PokeU8(seg, kField + static_cast<Addr>(i),
           static_cast<std::uint8_t>(rng.Below(256)));
  }

  // Count occurrences of the two-byte token (0x42, 0x17).
  Assembler a(&prog);
  Label loop = a.NewLabel(), nomatch = a.NewLabel();
  a.la(r(1), kField);
  a.li(r(2), field_bytes - 1);
  a.li(r(3), 0);       // match count
  a.li(r(8), 0x42);
  a.li(r(9), 0x17);
  a.Bind(loop);
  a.lbu(r(4), r(1), 0);
  a.bne(r(4), r(8), nomatch);
  a.lbu(r(5), r(1), 1);
  a.bne(r(5), r(9), nomatch);
  a.addi(r(3), r(3), 1);
  a.Bind(nomatch);
  a.addi(r(1), r(1), 1);
  a.addi(r(2), r(2), -1);
  a.bne(r(2), r(0), loop);
  a.out(r(3));
  a.halt();
  a.Finish();
  return prog;
}

}  // namespace spear::workloads
