// Stressmark "transitive closure": Floyd–Warshall over a dense distance
// matrix. The innermost loop sweeps rows (sequential) with a data-dependent
// update branch whose outcome follows the random distances — the low branch
// hit ratio is why tr responds poorly to the IFQ-based scheme in the paper.
#include "workloads/datagen.h"
#include "workloads/kernels.h"

namespace spear::workloads {

Program BuildTr(const WorkloadConfig& config) {
  // 128x128 u32 matrix (64 KiB): larger than the L1, L2-resident, so the
  // row sweeps miss in L1 throughout. Benches run a fixed instruction
  // budget of the O(n^3) sweep rather than to completion.
  const int n = 128 * config.scale;
  constexpr Addr kDist = 0x04000000;

  Program prog;
  Rng rng(config.seed);
  DataSegment& seg = prog.AddSegment(
      kDist, static_cast<std::size_t>(n) * n * 4);
  for (int i = 0; i < n * n; ++i) {
    // Distances 1..1000 with a sprinkling of "infinity".
    const std::uint32_t v = rng.Chance(0.3)
                                ? 1'000'000
                                : static_cast<std::uint32_t>(rng.Below(1000) + 1);
    PokeU32(seg, kDist + static_cast<Addr>(i) * 4, v);
  }

  Assembler a(&prog);
  // for k: for i: dik = d[i][k]; for j: cand = dik + d[k][j];
  //   if cand < d[i][j]: d[i][j] = cand
  Label kloop = a.NewLabel(), iloop = a.NewLabel(), jloop = a.NewLabel();
  Label skip = a.NewLabel();
  a.li(r(1), 0);               // k
  a.la(r(9), kDist);
  a.li(r(20), n);
  a.Bind(kloop);
  a.li(r(2), 0);               // i
  a.Bind(iloop);
  // r10 = &d[i][0], r11 = &d[k][0]
  a.mul(r(10), r(2), r(20));
  a.slli(r(10), r(10), 2);
  a.add(r(10), r(9), r(10));
  a.mul(r(11), r(1), r(20));
  a.slli(r(11), r(11), 2);
  a.add(r(11), r(9), r(11));
  // dik = d[i][k]
  a.slli(r(12), r(1), 2);
  a.add(r(12), r(10), r(12));
  a.lw(r(13), r(12), 0);
  a.li(r(3), 0);               // j
  a.Bind(jloop);
  a.lw(r(14), r(11), 0);       // d[k][j]
  a.add(r(14), r(14), r(13));  // cand
  a.lw(r(15), r(10), 0);       // d[i][j]
  a.bge(r(14), r(15), skip);   // data-dependent, poorly predicted
  a.sw(r(14), r(10), 0);
  a.Bind(skip);
  a.addi(r(10), r(10), 4);
  a.addi(r(11), r(11), 4);
  a.addi(r(3), r(3), 1);
  a.blt(r(3), r(20), jloop);
  a.addi(r(2), r(2), 1);
  a.blt(r(2), r(20), iloop);
  a.addi(r(1), r(1), 1);
  a.blt(r(1), r(20), kloop);
  a.lw(r(4), r(9), 0);
  a.out(r(4));
  a.halt();
  a.Finish();
  return prog;
}

}  // namespace spear::workloads
