// DIS "FFT": radix-2 decimation-in-time over 64K complex doubles —
// bit-reversal permutation (an irregular gather) followed by log2(N)
// butterfly passes with power-of-two strides that thrash cache sets.
// The butterfly's backward slice is large (index arithmetic plus four FP
// loads), reproducing the paper's fft pathology: p-threads too heavy to
// outrun the main thread.
#include "workloads/datagen.h"
#include "workloads/kernels.h"

namespace spear::workloads {

Program BuildFft(const WorkloadConfig& config) {
  const int logn = 14 + (config.scale > 1 ? 1 : 0);
  const int n = 1 << logn;  // 16K complex points = 256 KiB
  constexpr Addr kRe = 0x0c000000;
  constexpr Addr kIm = 0x0c800000;
  constexpr Addr kRev = 0x0d000000;   // bit-reversal index table
  constexpr Addr kTw = 0x0d800000;    // twiddle factors per stage offset

  Program prog;
  Rng rng(config.seed);
  DataSegment& re = prog.AddSegment(kRe, static_cast<std::size_t>(n) * 8);
  DataSegment& im = prog.AddSegment(kIm, static_cast<std::size_t>(n) * 8);
  for (int i = 0; i < n; i += 2) {
    PokeF64(re, kRe + static_cast<Addr>(i) * 8, rng.NextDouble() - 0.5);
    PokeF64(im, kIm + static_cast<Addr>(i) * 8, rng.NextDouble() - 0.5);
  }
  DataSegment& rev = prog.AddSegment(kRev, static_cast<std::size_t>(n) * 4);
  for (int i = 0; i < n; ++i) {
    std::uint32_t x = static_cast<std::uint32_t>(i), y = 0;
    for (int b = 0; b < logn; ++b) {
      y = (y << 1) | (x & 1);
      x >>= 1;
    }
    PokeU32(rev, kRev + static_cast<Addr>(i) * 4, y);
  }
  // One cos/sin pair per butterfly offset in the widest stage.
  DataSegment& tw = prog.AddSegment(kTw, static_cast<std::size_t>(n) * 8);
  for (int i = 0; i < n / 2; ++i) {
    const double angle = -6.283185307179586 * i / n;
    // cos approximated by a table value; exactness is irrelevant here.
    PokeF64(tw, kTw + static_cast<Addr>(i) * 16, 1.0 - angle * angle / 2);
    PokeF64(tw, kTw + static_cast<Addr>(i) * 16 + 8, angle);
  }

  Assembler a(&prog);
  // Phase 1: bit-reversal gather re2[i] = re[rev[i]] done in place via
  // conditional swap (i < rev[i]).
  Label bitrev = a.NewLabel(), noswap = a.NewLabel();
  a.la(r(1), kRev);
  a.li(r(2), 0);             // i
  a.li(r(20), n);
  a.la(r(8), kRe);
  a.la(r(9), kIm);
  a.Bind(bitrev);
  a.lw(r(4), r(1), 0);       // rev[i] (sequential)
  a.bge(r(2), r(4), noswap);
  a.slli(r(5), r(2), 3);
  a.slli(r(6), r(4), 3);
  a.add(r(5), r(8), r(5));
  a.add(r(6), r(8), r(6));
  a.ldf(f(1), r(5), 0);      // re[i]
  a.ldf(f(2), r(6), 0);      // re[rev[i]] (irregular, delinquent)
  a.stf(f(2), r(5), 0);
  a.stf(f(1), r(6), 0);
  a.Bind(noswap);
  a.addi(r(1), r(1), 4);
  a.addi(r(2), r(2), 1);
  a.blt(r(2), r(20), bitrev);

  // Phase 2: butterfly stages. stride doubles each stage.
  Label stage = a.NewLabel(), group = a.NewLabel(), fly = a.NewLabel();
  Label stage_done = a.NewLabel();
  a.li(r(21), 1);            // half = 1, doubles per stage
  a.Bind(stage);
  a.li(r(2), 0);             // group base
  a.Bind(group);
  a.li(r(3), 0);             // offset within group
  a.Bind(fly);
  a.add(r(4), r(2), r(3));   // top index
  a.add(r(5), r(4), r(21));  // bottom index
  a.slli(r(4), r(4), 3);
  a.slli(r(5), r(5), 3);
  a.add(r(6), r(8), r(4));   // &re[top]
  a.add(r(7), r(8), r(5));   // &re[bot]
  a.add(r(10), r(9), r(4));  // &im[top]
  a.add(r(11), r(9), r(5));  // &im[bot]
  a.ldf(f(1), r(6), 0);      // re[top]   (strided, delinquent)
  a.ldf(f(2), r(7), 0);      // re[bot]
  a.ldf(f(3), r(10), 0);     // im[top]
  a.ldf(f(4), r(11), 0);     // im[bot]
  // Twiddle from the table (offset scaled by stage is approximated by
  // offset alone: numerically wrong, architecturally identical).
  a.slli(r(12), r(3), 4);
  a.la(r(13), kTw);
  a.add(r(12), r(13), r(12));
  a.ldf(f(5), r(12), 0);     // c
  a.ldf(f(6), r(12), 8);     // s
  a.fmul(f(7), f(2), f(5));
  a.fmul(f(8), f(4), f(6));
  a.fsub(f(7), f(7), f(8));  // tr = re[bot]*c - im[bot]*s
  a.fmul(f(8), f(2), f(6));
  a.fmul(f(9), f(4), f(5));
  a.fadd(f(8), f(8), f(9));  // ti = re[bot]*s + im[bot]*c
  a.fsub(f(10), f(1), f(7));
  a.stf(f(10), r(7), 0);     // re[bot] = re[top] - tr
  a.fadd(f(10), f(1), f(7));
  a.stf(f(10), r(6), 0);     // re[top] += tr
  a.fsub(f(11), f(3), f(8));
  a.stf(f(11), r(11), 0);
  a.fadd(f(11), f(3), f(8));
  a.stf(f(11), r(10), 0);
  a.addi(r(3), r(3), 1);
  a.blt(r(3), r(21), fly);
  a.slli(r(14), r(21), 1);   // group stride = 2*half
  a.add(r(2), r(2), r(14));
  a.blt(r(2), r(20), group);
  a.slli(r(21), r(21), 1);   // half *= 2
  a.bge(r(21), r(20), stage_done);
  a.j(stage);
  a.Bind(stage_done);
  a.ldf(f(1), r(8), 0);
  a.cvtfi(r(4), f(1));
  a.out(r(4));
  a.halt();
  a.Finish();
  return prog;
}

}  // namespace spear::workloads
