// SPEC CINT2000 181.mcf: network-simplex pricing — the classic SPEAR
// showcase. The kernel sweeps the arc array sequentially (a fat loop body
// with arc field loads and reduced-cost arithmetic) and dereferences the
// tail/head *node* structures through pointers that jump randomly across a
// multi-megabyte node arena. The node-potential loads are the delinquent
// loads; they are independent across arcs, so a lightweight p-thread can
// run far ahead of the main thread's RUU window — which is why mcf shows
// the paper's largest speedup (+87.6%).
#include "workloads/datagen.h"
#include "workloads/kernels.h"

namespace spear::workloads {

Program BuildMcf(const WorkloadConfig& config) {
  const int nodes = 60000 * config.scale;   // node arena: 60000 * 32B ~ 1.9 MiB
  const int arcs = 30000 * config.scale;
  const int passes = 2;
  constexpr Addr kArcs = 0x10000000;   // per arc: {tail*, head*, cost, flow}
  constexpr Addr kNodes = 0x11000000;  // per node: {potential, orientation, ...}
  constexpr Addr kArcSize = 16;
  constexpr Addr kNodeSize = 32;

  Program prog;
  Rng rng(config.seed);
  DataSegment& nodeseg = prog.AddSegment(
      kNodes, static_cast<std::size_t>(nodes) * kNodeSize);
  for (int i = 0; i < nodes; ++i) {
    PokeU32(nodeseg, kNodes + static_cast<Addr>(i) * kNodeSize,
            static_cast<std::uint32_t>(rng.Below(10000)));  // potential
  }
  DataSegment& arcseg = prog.AddSegment(
      kArcs, static_cast<std::size_t>(arcs) * kArcSize);
  for (int i = 0; i < arcs; ++i) {
    const Addr a_addr = kArcs + static_cast<Addr>(i) * kArcSize;
    const Addr tail = kNodes + static_cast<Addr>(rng.Below(nodes)) * kNodeSize;
    const Addr head = kNodes + static_cast<Addr>(rng.Below(nodes)) * kNodeSize;
    PokeU32(arcseg, a_addr + 0, tail);
    PokeU32(arcseg, a_addr + 4, head);
    // Costs sit mostly above the potential spread so negative reduced
    // costs (the taken path) stay rare, as in mcf's pricing sweeps.
    PokeU32(arcseg, a_addr + 8,
            static_cast<std::uint32_t>(rng.Below(9000) + 7000));
    PokeU32(arcseg, a_addr + 12,
            rng.Chance(0.08) ? 1u : 0u);  // few basic arcs
  }

  Assembler a(&prog);
  Label pass = a.NewLabel(), loop = a.NewLabel();
  Label not_basic = a.NewLabel(), done_arc = a.NewLabel();
  a.li(r(20), passes);
  a.li(r(3), 0);                // best reduced cost accumulator
  a.li(r(21), 0);               // basic-arc count
  a.Bind(pass);
  a.la(r(1), kArcs);
  a.li(r(2), arcs);
  a.Bind(loop);
  a.lw(r(4), r(1), 0);          // arc->tail   (sequential spine)
  a.lw(r(5), r(1), 4);          // arc->head
  a.lw(r(6), r(1), 8);          // arc->cost
  a.lw(r(7), r(1), 12);         // arc->flow flag
  a.lw(r(8), r(4), 0);          // tail->potential (DELINQUENT)
  a.lw(r(9), r(5), 0);          // head->potential (DELINQUENT)
  // reduced cost = cost - tail->pot + head->pot
  a.sub(r(10), r(6), r(8));
  a.add(r(10), r(10), r(9));
  a.beq(r(7), r(0), not_basic);
  a.addi(r(21), r(21), 1);      // basic arc: different bookkeeping
  a.add(r(3), r(3), r(6));
  a.j(done_arc);
  a.Bind(not_basic);
  a.slt(r(11), r(10), r(0));    // negative reduced cost?
  a.beq(r(11), r(0), done_arc);
  a.add(r(3), r(3), r(10));     // candidate entering arc
  a.sw(r(10), r(1), 12);        // record on the arc
  a.Bind(done_arc);
  a.addi(r(1), r(1), kArcSize);
  a.addi(r(2), r(2), -1);
  a.bne(r(2), r(0), loop);
  a.addi(r(20), r(20), -1);
  a.bne(r(20), r(0), pass);
  a.out(r(3));
  a.out(r(21));
  a.halt();
  a.Finish();
  return prog;
}

}  // namespace spear::workloads
