// Individual kernel builders (one translation unit each). See workload.h
// for the registry; DESIGN.md §4 maps each kernel to its paper benchmark.
#pragma once

#include "workloads/workload.h"

namespace spear::workloads {

Program BuildPointer(const WorkloadConfig&);   // Stressmark: pointer
Program BuildUpdate(const WorkloadConfig&);    // Stressmark: update
Program BuildNbh(const WorkloadConfig&);       // Stressmark: neighborhood
Program BuildTr(const WorkloadConfig&);        // Stressmark: transitive closure
Program BuildMatrix(const WorkloadConfig&);    // Stressmark: matrix
Program BuildField(const WorkloadConfig&);     // Stressmark: field
Program BuildDm(const WorkloadConfig&);        // DIS: data management
Program BuildRay(const WorkloadConfig&);       // DIS: ray tracing
Program BuildFft(const WorkloadConfig&);       // DIS: FFT
Program BuildGzip(const WorkloadConfig&);      // SPEC CINT2000: 164.gzip
Program BuildMcf(const WorkloadConfig&);       // SPEC CINT2000: 181.mcf
Program BuildVpr(const WorkloadConfig&);       // SPEC CINT2000: 175.vpr
Program BuildBzip2(const WorkloadConfig&);     // SPEC CINT2000: 256.bzip2
Program BuildEquake(const WorkloadConfig&);    // SPEC CFP2000: 183.equake
Program BuildArt(const WorkloadConfig&);       // SPEC CFP2000: 179.art

}  // namespace spear::workloads
