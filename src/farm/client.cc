#include "farm/client.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <deque>
#include <vector>

#include "farm/proto.h"
#include "telemetry/registry.h"

namespace spear::farm {
namespace {

using telemetry::JsonValue;

std::uint64_t NowMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

bool FarmClient::Connect(const std::string& socket_path, std::string* error) {
  Close();
  fd_ = ConnectUnix(socket_path, error);
  return fd_ >= 0;
}

void FarmClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool FarmClient::Send(const JsonValue& frame, std::string* error) {
  return WriteFrame(fd_, frame, error);
}

bool FarmClient::Recv(JsonValue* frame, std::string* error) {
  return ReadFrame(fd_, frame, error);
}

namespace {

// Sends one control op and waits for its reply event, passing over any
// interleaved job events (a control connection normally has none).
bool ControlOp(FarmClient& client, const char* op, const char* reply,
               JsonValue* out, std::string* error) {
  JsonValue f = JsonValue::Object();
  f.Set("op", JsonValue(op));
  if (!client.Send(f, error)) return false;
  while (true) {
    JsonValue ev;
    if (!client.Recv(&ev, error)) {
      if (error != nullptr && error->empty()) {
        *error = std::string("daemon closed before replying to ") + op;
      }
      return false;
    }
    const JsonValue* kind = ev.Find("event");
    if (kind == nullptr) continue;
    if (kind->AsString() == reply) {
      if (out != nullptr) *out = std::move(ev);
      return true;
    }
    if (kind->AsString() == "error") {
      if (error != nullptr) {
        const JsonValue* msg = ev.Find("message");
        *error = msg != nullptr ? msg->AsString() : "daemon error";
      }
      return false;
    }
  }
}

}  // namespace

bool FarmClient::Ping(std::string* error) {
  return ControlOp(*this, "ping", "pong", nullptr, error);
}

bool FarmClient::Status(JsonValue* status, std::string* error) {
  return ControlOp(*this, "status", "status", status, error);
}

bool FarmClient::Drain(std::int64_t* persisted, std::string* error) {
  JsonValue ev;
  if (!ControlOp(*this, "drain", "drained", &ev, error)) return false;
  if (persisted != nullptr) {
    const JsonValue* p = ev.Find("persisted");
    *persisted = p != nullptr ? p->AsInt() : 0;
  }
  return true;
}

bool RunManifestFarm(const runner::Manifest& m, const std::string& socket_path,
                     const runner::RunnerOptions& opts,
                     runner::ManifestRunResult* out, std::string* error) {
  const std::uint64_t t0 = NowMs();
  runner::Manifest mm = m;
  // Overrides are folded into the submitted manifest itself, so daemon
  // workers run the identical defaults (and the cache key sees them).
  runner::ApplyOverrides(&mm, opts);
  const JsonValue man_json = runner::ManifestToJson(mm);
  const std::vector<runner::JobSpec> jobs = runner::ExpandJobs(mm);
  const std::size_t n = jobs.size();

  FarmClient client;
  if (!client.Connect(socket_path, error)) return false;

  std::vector<JsonValue> rows(n);
  std::vector<bool> have(n, false);
  std::vector<std::string> ckpts(n, "off");
  std::vector<bool> cached(n, false);
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t rejected_retries = 0;
  int failed = 0;
  std::size_t done = 0;
  std::size_t outstanding = 0;
  std::deque<std::size_t> pending;
  for (std::size_t i = 0; i < n; ++i) pending.push_back(i);

  auto finish = [&](std::size_t i, JsonValue row, bool job_failed,
                    const std::string& ckpt, bool from_cache) {
    if (have[i]) return;  // duplicate event — keep the first verdict
    rows[i] = std::move(row);
    have[i] = true;
    ckpts[i] = ckpt;
    cached[i] = from_cache;
    if (job_failed) ++failed;
    ++done;
    if (opts.verbose) {
      std::printf("[%zu/%zu] %-28s %s%s\n", done, n,
                  runner::JobId(mm, jobs[i]).c_str(),
                  job_failed ? "FAILED" : "ok", from_cache ? " (cached)" : "");
      std::fflush(stdout);
    }
  };

  // Keep a submission window in flight: enough to saturate the daemon's
  // workers, small enough that queue-full rejections stay rare.
  const std::size_t kWindow = 32;
  while (done < n) {
    while (outstanding < kWindow && !pending.empty()) {
      const std::size_t i = pending.front();
      pending.pop_front();
      JsonValue f = JsonValue::Object();
      f.Set("op", JsonValue("submit"));
      f.Set("manifest", man_json);
      f.Set("job", JsonValue(static_cast<std::int64_t>(i)));
      if (opts.cosim) f.Set("cosim", JsonValue(true));
      if (!client.Send(f, error)) return false;
      ++outstanding;
    }

    JsonValue ev;
    if (!client.Recv(&ev, error)) {
      if (error != nullptr && error->empty()) {
        *error = "daemon closed the connection mid-run";
      }
      return false;
    }
    const JsonValue* kind_field = ev.Find("event");
    const std::string kind =
        kind_field != nullptr ? kind_field->AsString() : "";
    const JsonValue* job_field = ev.Find("job");
    const std::int64_t job = job_field != nullptr ? job_field->AsInt() : -1;
    const bool job_known =
        job >= 0 && static_cast<std::size_t>(job) < n;
    const std::size_t i = job_known ? static_cast<std::size_t>(job) : 0;

    if (kind == "queued") {
      const JsonValue* co = ev.Find("coalesced");
      if (co != nullptr && co->AsBool()) ++coalesced;
    } else if (kind == "started") {
      // progress only; nothing to record
    } else if (kind == "result" && job_known) {
      const JsonValue* row = ev.Find("row");
      const JsonValue* f = ev.Find("failed");
      const JsonValue* c = ev.Find("cached");
      const JsonValue* ck = ev.Find("ckpt");
      const bool from_cache = c != nullptr && c->AsBool();
      if (from_cache) {
        ++hits;
      } else {
        ++misses;
      }
      --outstanding;
      finish(i, row != nullptr ? *row : JsonValue(),
             f != nullptr && f->AsBool(),
             ck != nullptr ? ck->AsString() : "off", from_cache);
    } else if (kind == "rejected" && job_known) {
      --outstanding;
      const JsonValue* reason_field = ev.Find("reason");
      const std::string reason =
          reason_field != nullptr ? reason_field->AsString() : "rejected";
      if (reason == "queue-full") {
        // Transient back-pressure: retry once the window drains a bit.
        ++rejected_retries;
        pending.push_back(i);
        if (outstanding == 0) ::usleep(50 * 1000);
      } else {
        finish(i, runner::MakeFailureRow(mm, jobs[i], "farm rejected: " +
                                                          reason),
               true, "off", false);
      }
    } else if (kind == "canceled" && job_known) {
      --outstanding;
      finish(i, runner::MakeFailureRow(mm, jobs[i], "canceled"), true, "off",
             false);
    } else if (kind == "error") {
      if (!job_known) {
        if (error != nullptr) {
          const JsonValue* msg = ev.Find("message");
          *error = msg != nullptr ? msg->AsString() : "daemon error";
        }
        return false;
      }
      --outstanding;
      const JsonValue* msg = ev.Find("message");
      finish(i,
             runner::MakeFailureRow(
                 mm, jobs[i],
                 "farm error: " +
                     (msg != nullptr ? msg->AsString() : "unknown")),
             true, "off", false);
    }
  }

  JsonValue row_array = JsonValue::Array();
  for (std::size_t i = 0; i < n; ++i) row_array.Append(std::move(rows[i]));

  runner::ManifestRunResult result;
  result.document = runner::BuildRunnerDocument(mm, std::move(row_array));
  result.failed_jobs = failed;

  // The "run" member is the strippable nondeterministic envelope; here it
  // carries the client's view of the farm cache (CI asserts a warm sweep
  // reports 100% hits on these paths).
  JsonValue run = JsonValue::Object();
  run.Set("farm", JsonValue(socket_path));
  run.Set("elapsed_ms", JsonValue(NowMs() - t0));
  JsonValue job_metas = JsonValue::Array();
  for (std::size_t i = 0; i < n; ++i) {
    JsonValue o = JsonValue::Object();
    o.Set("id", JsonValue(runner::JobId(mm, jobs[i])));
    o.Set("ckpt", JsonValue(ckpts[i]));
    o.Set("cached", JsonValue(cached[i]));
    job_metas.Append(std::move(o));
  }
  run.Set("jobs", std::move(job_metas));
  telemetry::StatRegistry reg;
  reg.BindCounter("runner.farm.cache.hits", &hits,
                  "rows served from the daemon's result cache");
  reg.BindCounter("runner.farm.cache.misses", &misses,
                  "rows the daemon had to simulate");
  reg.BindCounter("runner.farm.cache.coalesced", &coalesced,
                  "rows coalesced onto another client's in-flight job");
  reg.BindCounter("runner.farm.rejected.retries", &rejected_retries,
                  "queue-full rejections retried");
  run.Set("stats", reg.Json());
  result.document.Set("run", std::move(run));

  *out = std::move(result);
  return true;
}

}  // namespace spear::farm
