// Farm client: the `spearrun --farm` side. FarmClient is a thin framed
// connection (submit / events / control ops); RunManifestFarm drives a
// whole manifest through the daemon and assembles the same deterministic
// results document the fork/exec path produces — byte-identical modulo
// the strippable "run" member, which here records farm cache telemetry
// (runner.farm.cache.hits / .misses from this client's point of view).
#pragma once

#include <cstdint>
#include <string>

#include "runner/runner.h"
#include "telemetry/json.h"

namespace spear::farm {

class FarmClient {
 public:
  FarmClient() = default;
  ~FarmClient() { Close(); }
  FarmClient(const FarmClient&) = delete;
  FarmClient& operator=(const FarmClient&) = delete;

  bool Connect(const std::string& socket_path, std::string* error);
  void Close();
  bool connected() const { return fd_ >= 0; }

  bool Send(const telemetry::JsonValue& frame, std::string* error);
  // Blocking read of the next event frame. False on error or EOF (EOF
  // leaves *error empty).
  bool Recv(telemetry::JsonValue* frame, std::string* error);

  // Control ops (send + wait for the matching reply, skipping unrelated
  // job events).
  bool Ping(std::string* error);
  bool Status(telemetry::JsonValue* status, std::string* error);
  bool Drain(std::int64_t* persisted, std::string* error);

 private:
  int fd_ = -1;
};

// Runs every job of `m` through the daemon at `socket_path` and builds
// the runner document (rows in ExpandJobs order, derived metrics, "run"
// member with farm telemetry). Transport failures — cannot connect, the
// daemon dies mid-run — return false with *error set; job-level failures
// (timeouts, crashes) are failure rows in the document, exactly like the
// fork/exec path. opts.workers is ignored (the daemon owns the pool);
// opts.sim_instrs_override is applied to the manifest before submission
// so daemon workers run the identical defaults.
bool RunManifestFarm(const runner::Manifest& m, const std::string& socket_path,
                     const runner::RunnerOptions& opts,
                     runner::ManifestRunResult* out, std::string* error);

}  // namespace spear::farm
