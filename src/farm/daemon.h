// spearfarm: simulation-as-a-service. One long-lived daemon owns the
// worker pool; many concurrent clients submit manifest jobs over a
// Unix-domain socket and stream progress events back. The daemon fronts
// every simulation with the content-addressed result cache (farm/cache.h)
// so a row is simulated at most once per (binaries, config, defaults,
// schema) key — concurrent submitters racing the same key coalesce onto
// one in-flight job and each receive the finished document.
//
// Single-threaded design: one poll() loop multiplexes the listening
// socket, every client connection (non-blocking reads through
// FrameBuffer) and the executor pump. No locks, no data races; the pool's
// fork/exec children provide the actual parallelism.
//
// Fairness + admission: queued jobs are drained round-robin across the
// submitting clients (one greedy client cannot starve the rest), and the
// queue depth is capped — beyond it submits answer
// {"event":"rejected","reason":"queue-full"}.
//
// Drain: stop admitting, finish in-flight jobs (their results still land
// in the cache), persist the queued remainder to <state-dir>/queue.json
// (temp + rename, like every cache write) and exit 0. The next daemon
// restores the persisted queue on startup, so a restart loses no work.
#pragma once

#include <csignal>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "farm/cache.h"
#include "farm/proto.h"
#include "runner/runner.h"
#include "telemetry/registry.h"

namespace spear::farm {

// How the daemon actually executes one admitted job. The production
// implementation (PoolExecutor) forks `spearrun --worker` children via
// runner::ProcessPool; tests substitute a deterministic fake so protocol
// behaviour (fairness, coalescing, drain, cancel) is testable without
// simulations.
class JobExecutor {
 public:
  struct Launch {
    std::string manifest_path;  // on-disk manifest the worker re-loads
    std::size_t job_index = 0;  // into runner::ExpandJobs order
    bool cosim = false;
    std::uint64_t timeout_ms = 0;
    int max_retries = 0;
    std::uint64_t backoff_ms = 0;
  };
  struct Completion {
    std::uint64_t ticket = 0;
    runner::PoolResult result;
    std::string job_out_path;  // worker's {"job":row,"run":{...}} file
  };

  virtual ~JobExecutor() = default;
  virtual std::uint64_t Start(const Launch& launch) = 0;
  virtual void Cancel(std::uint64_t ticket) = 0;
  // Advances children (launch/deadline/reap) and returns finished jobs.
  // Must never block.
  virtual std::vector<Completion> Pump() = 0;
  virtual std::size_t in_flight() const = 0;
};

// Fork/exec executor: one `spearrun --worker` child per job, same argv
// contract as runner::RunManifestParallel.
class PoolExecutor : public JobExecutor {
 public:
  PoolExecutor(std::string spearrun_path, std::string ckpt_dir, bool use_ckpt,
               std::string tmp_dir, int workers);
  std::uint64_t Start(const Launch& launch) override;
  void Cancel(std::uint64_t ticket) override;
  std::vector<Completion> Pump() override;
  std::size_t in_flight() const override;

 private:
  runner::ProcessPool pool_;
  std::string spearrun_path_;
  std::string ckpt_dir_;
  bool use_ckpt_;
  std::string tmp_dir_;
  std::map<std::uint64_t, std::string> job_outs_;
};

// Everything under runner.farm.* — the daemon's own StatRegistry
// namespace, reported by the "status" op and printed on exit.
struct FarmStats {
  std::uint64_t submits = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_coalesced = 0;
  std::uint64_t cache_stores = 0;
  std::uint64_t jobs_ok = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_canceled = 0;
  std::uint64_t queue_peak = 0;
  std::uint64_t clients_total = 0;
  std::uint64_t frames_bad = 0;

  void Register(telemetry::StatRegistry& reg) const;
  telemetry::JsonValue Json() const;
};

struct FarmOptions {
  std::string socket_path;
  std::string state_dir;  // queue.json, manifests/, tmp/; also default cache
  std::string cache_dir;  // defaults to <state_dir>/cache
  int workers = 2;
  std::size_t max_queued = 256;
  // PoolExecutor knobs (ignored when a test injects its own executor).
  std::string spearrun_path;
  std::string ckpt_dir = "bench/ckpt";
  bool use_ckpt = true;
  bool verbose = false;
  // Optional async-signal stop: when *stop_flag becomes nonzero the loop
  // persists the queue and exits 0 (same path as drain, minus the reply).
  const volatile std::sig_atomic_t* stop_flag = nullptr;
};

class FarmDaemon {
 public:
  // `executor` may be null: the daemon then owns a PoolExecutor built
  // from the options. A non-null executor is borrowed (tests).
  explicit FarmDaemon(FarmOptions opts, JobExecutor* executor = nullptr);
  ~FarmDaemon();

  // Creates state directories, restores a persisted queue, binds the
  // socket. False + *error on failure.
  bool Init(std::string* error);

  // Runs the poll loop until a drain completes or *stop_flag fires.
  // Returns a process exit code (0 clean, kExitFarm on fatal I/O).
  int Serve();

  const FarmStats& stats() const { return stats_; }
  std::size_t queue_depth() const { return queued_count_; }

 private:
  struct StoredManifest {
    runner::Manifest m;
    std::string path;
    std::vector<runner::JobSpec> jobs;  // ExpandJobs(m), index = wire "job"
  };
  struct Subscriber {
    std::uint64_t client = 0;
    std::int64_t job_echo = -1;  // the client's submitted job index
  };
  struct FarmJob {
    std::uint64_t ticket = 0;
    std::shared_ptr<StoredManifest> man;
    std::size_t job_index = 0;
    bool cosim = false;
    ResultCacheKey key;  // key.key empty = uncacheable (debug_hang)
    std::uint64_t owner = 0;
    std::vector<Subscriber> subs;
    bool running = false;
    std::uint64_t exec_ticket = 0;
  };
  struct Client {
    int fd = -1;
    std::uint64_t id = 0;
    FrameBuffer in;
  };

  void AcceptClients();
  bool ReadClient(Client& c);  // false = drop the connection
  void DropClient(std::uint64_t id);
  void HandleFrame(Client& c, const telemetry::JsonValue& frame);
  void HandleSubmit(Client& c, const telemetry::JsonValue& frame);
  void HandleCancel(Client& c, const telemetry::JsonValue& frame);
  void HandleStatus(Client& c);
  void HandleDrain(Client& c);
  std::shared_ptr<StoredManifest> InternManifest(
      const telemetry::JsonValue& manifest_json, std::string* error);
  void DispatchQueued();
  void HandleCompletions();
  void SendEvent(std::uint64_t client_id, const telemetry::JsonValue& event);
  void SendJobEvent(const FarmJob& job, const char* event,
                    const telemetry::JsonValue* row, bool cached, bool failed,
                    const std::string& ckpt);
  void EnqueueTicket(std::uint64_t ticket, std::uint64_t owner);
  std::uint64_t DequeueNextFair();  // 0 = nothing queued
  bool RemoveQueuedTicket(std::uint64_t ticket);
  std::size_t PersistQueue();
  void RestoreQueue();
  telemetry::JsonValue* FindOrError(Client& c,
                                    const telemetry::JsonValue& frame,
                                    const char* field);

  FarmOptions opts_;
  std::unique_ptr<JobExecutor> owned_executor_;
  JobExecutor* executor_ = nullptr;
  int listen_fd_ = -1;
  std::map<std::uint64_t, Client> clients_;  // by client id
  std::uint64_t next_client_ = 1;
  std::uint64_t next_ticket_ = 1;
  std::map<std::uint64_t, FarmJob> jobs_;            // by ticket
  std::map<std::uint64_t, std::uint64_t> by_exec_;   // exec ticket -> ticket
  std::map<std::string, std::uint64_t> inflight_by_key_;
  std::map<std::string, std::shared_ptr<StoredManifest>> manifests_;
  // Round-robin fair queue: per-owner FIFO + rotation order.
  std::map<std::uint64_t, std::deque<std::uint64_t>> queues_;
  std::deque<std::uint64_t> rr_;
  std::size_t queued_count_ = 0;
  runner::WorkloadCache workloads_;  // fingerprint compilation, memoized
  std::map<std::string, std::uint64_t> fingerprints_;
  FarmStats stats_;
  bool draining_ = false;
  std::uint64_t drain_requester_ = 0;
};

}  // namespace spear::farm
