#include "farm/daemon.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

namespace spear::farm {
namespace {

using telemetry::JsonValue;

std::uint64_t Fnv1a64(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string Hex64(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

bool WriteFileAtomic(const std::string& path, const std::string& text,
                     std::string* error) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      if (error != nullptr) *error = "cannot write " + tmp;
      return false;
    }
    out << text;
    if (!out.good()) {
      if (error != nullptr) *error = "short write to " + tmp;
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    if (error != nullptr) *error = "rename to " + path + ": " + ec.message();
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

inline constexpr int kQueueFileVersion = 1;

}  // namespace

// ---------------------------------------------------------------- stats

void FarmStats::Register(telemetry::StatRegistry& reg) const {
  reg.BindCounter("runner.farm.submits", &submits, "submit ops received");
  reg.BindCounter("runner.farm.admitted", &admitted, "jobs admitted");
  reg.BindCounter("runner.farm.rejected", &rejected,
                  "submits rejected (queue-full/draining)");
  reg.BindCounter("runner.farm.cache.hits", &cache_hits,
                  "submits served from the result cache");
  reg.BindCounter("runner.farm.cache.misses", &cache_misses,
                  "submits that required a simulation");
  reg.BindCounter("runner.farm.cache.coalesced", &cache_coalesced,
                  "submits coalesced onto an in-flight job");
  reg.BindCounter("runner.farm.cache.stores", &cache_stores,
                  "rows written to the result cache");
  reg.BindCounter("runner.farm.jobs.ok", &jobs_ok, "jobs that completed");
  reg.BindCounter("runner.farm.jobs.failed", &jobs_failed, "jobs that failed");
  reg.BindCounter("runner.farm.jobs.canceled", &jobs_canceled,
                  "jobs canceled before a verdict");
  reg.BindCounter("runner.farm.queue.peak", &queue_peak,
                  "high-water mark of the admission queue");
  reg.BindCounter("runner.farm.clients.total", &clients_total,
                  "connections accepted over the daemon's life");
  reg.BindCounter("runner.farm.frames.bad", &frames_bad,
                  "malformed or oversized frames");
}

JsonValue FarmStats::Json() const {
  telemetry::StatRegistry reg;
  Register(reg);
  return reg.Json();
}

// --------------------------------------------------------- PoolExecutor

PoolExecutor::PoolExecutor(std::string spearrun_path, std::string ckpt_dir,
                           bool use_ckpt, std::string tmp_dir, int workers)
    : pool_(workers),
      spearrun_path_(std::move(spearrun_path)),
      ckpt_dir_(std::move(ckpt_dir)),
      use_ckpt_(use_ckpt),
      tmp_dir_(std::move(tmp_dir)) {}

std::uint64_t PoolExecutor::Start(const Launch& launch) {
  static std::uint64_t seq = 0;
  const std::string job_out =
      tmp_dir_ + "/exec" + std::to_string(++seq) + ".json";
  runner::PoolJob pj;
  // Same worker argv contract as runner::RunManifestParallel — the farm
  // path and the fork/exec path must execute byte-identical workers.
  pj.argv = {spearrun_path_,
             "--worker",
             "--manifest=" + launch.manifest_path,
             "--job=" + std::to_string(launch.job_index),
             "--job-out=" + job_out,
             "--ckpt-dir=" + ckpt_dir_};
  if (!use_ckpt_) pj.argv.push_back("--no-ckpt");
  if (launch.cosim) pj.argv.push_back("--cosim");
  pj.timeout_ms = launch.timeout_ms;
  pj.max_retries = launch.max_retries;
  pj.backoff_ms = launch.backoff_ms;
  pj.fail_fast_exits = {runner::kExitUsage, runner::kExitIncomplete,
                        runner::kExitCosim};
  pj.stderr_tail_bytes = 4096;
  const std::uint64_t ticket = pool_.Submit(std::move(pj));
  job_outs_[ticket] = job_out;
  return ticket;
}

void PoolExecutor::Cancel(std::uint64_t ticket) { pool_.Cancel(ticket); }

std::vector<JobExecutor::Completion> PoolExecutor::Pump() {
  pool_.Pump();
  std::vector<Completion> out;
  for (auto& [ticket, result] : pool_.TakeCompletions()) {
    Completion c;
    c.ticket = ticket;
    c.result = std::move(result);
    auto it = job_outs_.find(ticket);
    if (it != job_outs_.end()) {
      c.job_out_path = it->second;
      job_outs_.erase(it);
    }
    out.push_back(std::move(c));
  }
  return out;
}

std::size_t PoolExecutor::in_flight() const { return pool_.outstanding(); }

// ------------------------------------------------------------ FarmDaemon

FarmDaemon::FarmDaemon(FarmOptions opts, JobExecutor* executor)
    : opts_(std::move(opts)) {
  if (opts_.cache_dir.empty()) opts_.cache_dir = opts_.state_dir + "/cache";
  if (executor != nullptr) {
    executor_ = executor;
  } else {
    owned_executor_ = std::make_unique<PoolExecutor>(
        opts_.spearrun_path, opts_.ckpt_dir, opts_.use_ckpt,
        opts_.state_dir + "/tmp", opts_.workers);
    executor_ = owned_executor_.get();
  }
}

FarmDaemon::~FarmDaemon() {
  for (auto& [id, c] : clients_) {
    if (c.fd >= 0) ::close(c.fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(opts_.socket_path.c_str());
  }
}

bool FarmDaemon::Init(std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(opts_.state_dir + "/manifests", ec);
  std::filesystem::create_directories(opts_.state_dir + "/tmp", ec);
  std::filesystem::create_directories(opts_.cache_dir, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create state dir " + opts_.state_dir;
    }
    return false;
  }
  RestoreQueue();
  listen_fd_ = ListenUnix(opts_.socket_path, 64, error);
  if (listen_fd_ < 0) return false;
  ::fcntl(listen_fd_, F_SETFL, O_NONBLOCK);
  if (opts_.verbose) {
    std::printf("spearfarm: listening on %s (%d workers, %zu restored)\n",
                opts_.socket_path.c_str(), opts_.workers, queued_count_);
    std::fflush(stdout);
  }
  return true;
}

int FarmDaemon::Serve() {
  while (true) {
    if (opts_.stop_flag != nullptr && *opts_.stop_flag != 0) {
      // Same exit path as drain, minus the reply: in-flight jobs are
      // already children and will be killed by the pool destructor, but
      // their queue entries were consumed — persist only what is queued.
      PersistQueue();
      return 0;
    }

    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    std::vector<std::uint64_t> order;
    for (auto& [id, c] : clients_) {
      fds.push_back({c.fd, POLLIN, 0});
      order.push_back(id);
    }
    ::poll(fds.data(), fds.size(), 25);

    if ((fds[0].revents & POLLIN) != 0) AcceptClients();
    std::vector<std::uint64_t> drop;
    for (std::size_t i = 0; i < order.size(); ++i) {
      if ((fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      auto it = clients_.find(order[i]);
      if (it == clients_.end()) continue;  // dropped by an earlier frame
      if (!ReadClient(it->second)) drop.push_back(order[i]);
    }
    for (const std::uint64_t id : drop) DropClient(id);

    DispatchQueued();
    HandleCompletions();

    if (draining_ && by_exec_.empty()) {
      const std::size_t persisted = PersistQueue();
      JsonValue ev = JsonValue::Object();
      ev.Set("event", JsonValue("drained"));
      ev.Set("persisted", JsonValue(static_cast<std::int64_t>(persisted)));
      SendEvent(drain_requester_, ev);
      if (opts_.verbose) {
        std::printf("spearfarm: drained (%zu queued jobs persisted)\n",
                    persisted);
        std::fflush(stdout);
      }
      return 0;
    }
  }
}

void FarmDaemon::AcceptClients() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error — poll again later
    Client c;
    c.fd = fd;
    c.id = next_client_++;
    ++stats_.clients_total;
    clients_.emplace(c.id, std::move(c));
  }
}

bool FarmDaemon::ReadClient(Client& c) {
  char buf[65536];
  while (true) {
    const ssize_t r = ::recv(c.fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (r < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) {
      // Disconnect. The client's jobs stay queued/running — their results
      // still land in the cache for the next submitter (warm restarts of
      // an interrupted sweep are the whole point).
      return false;
    }
    c.in.Append(buf, static_cast<std::size_t>(r));
    if (r < static_cast<ssize_t>(sizeof(buf))) break;
  }

  while (true) {
    JsonValue frame;
    std::string error;
    if (!c.in.Next(&frame, &error)) {
      if (error.empty()) return true;  // need more bytes
      // Malformed or oversized: the length prefix can no longer be
      // trusted, so answer once and cut the connection.
      ++stats_.frames_bad;
      JsonValue ev = JsonValue::Object();
      ev.Set("event", JsonValue("error"));
      ev.Set("message", JsonValue(error));
      std::string werr;
      WriteFrame(c.fd, ev, &werr);
      return false;
    }
    HandleFrame(c, frame);
    if (clients_.find(c.id) == clients_.end()) return true;  // dropped
  }
}

void FarmDaemon::DropClient(std::uint64_t id) {
  auto it = clients_.find(id);
  if (it == clients_.end()) return;
  ::close(it->second.fd);
  clients_.erase(it);
}

void FarmDaemon::SendEvent(std::uint64_t client_id, const JsonValue& event) {
  auto it = clients_.find(client_id);
  if (it == clients_.end()) return;  // orphaned subscriber
  std::string error;
  if (!WriteFrame(it->second.fd, event, &error)) DropClient(client_id);
}

void FarmDaemon::HandleFrame(Client& c, const JsonValue& frame) {
  const JsonValue* op = frame.Find("op");
  const std::string name = op != nullptr ? op->AsString() : "";
  if (name == "submit") {
    HandleSubmit(c, frame);
  } else if (name == "status") {
    HandleStatus(c);
  } else if (name == "ping") {
    JsonValue ev = JsonValue::Object();
    ev.Set("event", JsonValue("pong"));
    ev.Set("protocol", JsonValue(kFarmProtocolVersion));
    SendEvent(c.id, ev);
  } else if (name == "cancel") {
    HandleCancel(c, frame);
  } else if (name == "drain") {
    HandleDrain(c);
  } else {
    ++stats_.frames_bad;
    JsonValue ev = JsonValue::Object();
    ev.Set("event", JsonValue("error"));
    ev.Set("message", JsonValue("unknown op: " + name));
    SendEvent(c.id, ev);
  }
}

std::shared_ptr<FarmDaemon::StoredManifest> FarmDaemon::InternManifest(
    const JsonValue& manifest_json, std::string* error) {
  const std::string text = manifest_json.Dump(2) + "\n";
  const std::string hash = Hex64(Fnv1a64(text));
  auto it = manifests_.find(hash);
  if (it != manifests_.end()) return it->second;

  auto stored = std::make_shared<StoredManifest>();
  if (!runner::ParseManifest(text, &stored->m, error)) return nullptr;
  stored->path = opts_.state_dir + "/manifests/" + hash + ".json";
  if (!std::filesystem::exists(stored->path) &&
      !WriteFileAtomic(stored->path, text, error)) {
    return nullptr;
  }
  stored->jobs = runner::ExpandJobs(stored->m);
  manifests_.emplace(hash, stored);
  return stored;
}

void FarmDaemon::HandleSubmit(Client& c, const JsonValue& frame) {
  ++stats_.submits;
  const JsonValue* man_json = frame.Find("manifest");
  const JsonValue* job_field = frame.Find("job");
  const std::int64_t job_echo =
      job_field != nullptr ? job_field->AsInt() : -1;
  const JsonValue* cosim_field = frame.Find("cosim");
  const bool cosim = cosim_field != nullptr && cosim_field->AsBool();

  auto send_error = [&](const std::string& msg) {
    JsonValue ev = JsonValue::Object();
    ev.Set("event", JsonValue("error"));
    if (job_echo >= 0) ev.Set("job", JsonValue(job_echo));
    ev.Set("message", JsonValue(msg));
    SendEvent(c.id, ev);
  };
  auto send_rejected = [&](const char* reason) {
    ++stats_.rejected;
    JsonValue ev = JsonValue::Object();
    ev.Set("event", JsonValue("rejected"));
    if (job_echo >= 0) ev.Set("job", JsonValue(job_echo));
    ev.Set("reason", JsonValue(reason));
    SendEvent(c.id, ev);
  };

  if (man_json == nullptr || job_field == nullptr) {
    send_error("submit needs \"manifest\" and \"job\"");
    return;
  }
  std::string error;
  std::shared_ptr<StoredManifest> man = InternManifest(*man_json, &error);
  if (man == nullptr) {
    send_error("bad manifest: " + error);
    return;
  }
  if (job_echo < 0 ||
      static_cast<std::size_t>(job_echo) >= man->jobs.size()) {
    send_error("job index " + std::to_string(job_echo) + " out of range (" +
               std::to_string(man->jobs.size()) + " jobs)");
    return;
  }
  const std::size_t job_index = static_cast<std::size_t>(job_echo);
  const runner::JobSpec& spec = man->jobs[job_index];

  // A debug_hang job deliberately never produces a cacheable row (it
  // exists to exercise pool timeouts), so it bypasses cache + coalescing.
  ResultCacheKey key;
  if (!spec.debug_hang) {
    const runner::ConfigSpec& cfg = man->m.configs[spec.config];
    const EvalOptions eopts = runner::MakeEvalOptions(man->m.defaults, cfg);
    const PreparedWorkload& pw = workloads_.Get(spec.workload, eopts);
    std::ostringstream fkey;
    fkey << spec.workload << "|" << eopts.ref_seed << "|"
         << eopts.profile_seed << "|" << eopts.compiler.slicer.dcycle_budget
         << "|" << eopts.compiler.profiler.max_instrs;
    auto fit = fingerprints_.find(fkey.str());
    if (fit == fingerprints_.end()) {
      fit = fingerprints_.emplace(fkey.str(), BinaryFingerprint(pw)).first;
    }
    key = MakeResultKey(man->m, spec, fit->second, cosim);

    JsonValue row;
    std::string ckpt;
    if (LoadResult(opts_.cache_dir, key, &row, &ckpt)) {
      ++stats_.cache_hits;
      JsonValue ev = JsonValue::Object();
      ev.Set("event", JsonValue("result"));
      ev.Set("job", JsonValue(job_echo));
      ev.Set("cached", JsonValue(true));
      ev.Set("ckpt", JsonValue(ckpt));
      ev.Set("failed", JsonValue(false));
      ev.Set("row", std::move(row));
      SendEvent(c.id, ev);
      return;
    }
    ++stats_.cache_misses;

    auto inflight = inflight_by_key_.find(key.key);
    if (inflight != inflight_by_key_.end()) {
      // Coalesce: one simulation, every subscriber gets the document.
      ++stats_.cache_coalesced;
      FarmJob& job = jobs_.at(inflight->second);
      job.subs.push_back({c.id, job_echo});
      JsonValue ev = JsonValue::Object();
      ev.Set("event", JsonValue("queued"));
      ev.Set("ticket", JsonValue(job.ticket));
      ev.Set("job", JsonValue(job_echo));
      ev.Set("coalesced", JsonValue(true));
      SendEvent(c.id, ev);
      return;
    }
  } else {
    ++stats_.cache_misses;
  }

  if (draining_) {
    send_rejected("draining");
    return;
  }
  if (queued_count_ >= opts_.max_queued) {
    send_rejected("queue-full");
    return;
  }

  FarmJob job;
  job.ticket = next_ticket_++;
  job.man = std::move(man);
  job.job_index = job_index;
  job.cosim = cosim;
  job.key = std::move(key);
  job.owner = c.id;
  job.subs.push_back({c.id, job_echo});
  if (!job.key.key.empty()) inflight_by_key_[job.key.key] = job.ticket;
  const std::uint64_t ticket = job.ticket;
  jobs_.emplace(ticket, std::move(job));
  EnqueueTicket(ticket, c.id);
  ++stats_.admitted;
  if (queued_count_ > stats_.queue_peak) stats_.queue_peak = queued_count_;

  JsonValue ev = JsonValue::Object();
  ev.Set("event", JsonValue("queued"));
  ev.Set("ticket", JsonValue(ticket));
  ev.Set("job", JsonValue(job_echo));
  SendEvent(c.id, ev);
}

void FarmDaemon::HandleCancel(Client& c, const JsonValue& frame) {
  const JsonValue* tf = frame.Find("ticket");
  const std::uint64_t ticket =
      tf != nullptr ? static_cast<std::uint64_t>(tf->AsInt()) : 0;
  auto it = jobs_.find(ticket);
  JsonValue ev = JsonValue::Object();
  ev.Set("event", JsonValue("canceled"));
  ev.Set("ticket", JsonValue(ticket));
  if (it == jobs_.end()) {
    // Already finished (or never existed): cancel is an idempotent no-op.
    SendEvent(c.id, ev);
    return;
  }
  FarmJob& job = it->second;
  if (job.running) {
    // The kill surfaces through the executor as a canceled PoolResult;
    // subscribers get their result event from HandleCompletions.
    executor_->Cancel(job.exec_ticket);
    SendEvent(c.id, ev);
    return;
  }
  RemoveQueuedTicket(ticket);
  ++stats_.jobs_canceled;
  for (const Subscriber& s : job.subs) {
    JsonValue sub_ev = JsonValue::Object();
    sub_ev.Set("event", JsonValue("canceled"));
    sub_ev.Set("ticket", JsonValue(ticket));
    sub_ev.Set("job", JsonValue(s.job_echo));
    SendEvent(s.client, sub_ev);
  }
  if (!job.key.key.empty()) inflight_by_key_.erase(job.key.key);
  jobs_.erase(it);
  // The canceling client may not be a subscriber (e.g. an operator tool).
  SendEvent(c.id, ev);
}

void FarmDaemon::HandleStatus(Client& c) {
  JsonValue ev = JsonValue::Object();
  ev.Set("event", JsonValue("status"));
  ev.Set("protocol", JsonValue(kFarmProtocolVersion));
  ev.Set("queue_depth", JsonValue(static_cast<std::int64_t>(queued_count_)));
  ev.Set("in_flight",
         JsonValue(static_cast<std::int64_t>(executor_->in_flight())));
  ev.Set("draining", JsonValue(draining_));
  ev.Set("stats", stats_.Json());
  SendEvent(c.id, ev);
}

void FarmDaemon::HandleDrain(Client& c) {
  draining_ = true;
  drain_requester_ = c.id;
  // The reply comes from Serve() once in-flight jobs finish.
}

void FarmDaemon::EnqueueTicket(std::uint64_t ticket, std::uint64_t owner) {
  auto& q = queues_[owner];
  if (q.empty()) rr_.push_back(owner);
  q.push_back(ticket);
  ++queued_count_;
}

std::uint64_t FarmDaemon::DequeueNextFair() {
  while (!rr_.empty()) {
    const std::uint64_t owner = rr_.front();
    rr_.pop_front();
    auto it = queues_.find(owner);
    if (it == queues_.end() || it->second.empty()) {
      queues_.erase(owner);
      continue;
    }
    const std::uint64_t ticket = it->second.front();
    it->second.pop_front();
    --queued_count_;
    if (it->second.empty()) {
      queues_.erase(it);
    } else {
      rr_.push_back(owner);  // rotate: next pick serves another client
    }
    return ticket;
  }
  return 0;
}

bool FarmDaemon::RemoveQueuedTicket(std::uint64_t ticket) {
  for (auto& [owner, q] : queues_) {
    for (auto it = q.begin(); it != q.end(); ++it) {
      if (*it == ticket) {
        q.erase(it);
        --queued_count_;
        return true;
      }
    }
  }
  return false;
}

void FarmDaemon::DispatchQueued() {
  while (!draining_ &&
         executor_->in_flight() < static_cast<std::size_t>(opts_.workers)) {
    const std::uint64_t ticket = DequeueNextFair();
    if (ticket == 0) return;
    auto it = jobs_.find(ticket);
    if (it == jobs_.end()) continue;  // canceled while queued
    FarmJob& job = it->second;
    const runner::JobSpec& spec = job.man->jobs[job.job_index];
    const runner::ManifestDefaults& d = job.man->m.defaults;

    JobExecutor::Launch launch;
    launch.manifest_path = job.man->path;
    launch.job_index = job.job_index;
    launch.cosim = job.cosim;
    launch.timeout_ms = spec.timeout_ms != 0 ? spec.timeout_ms : d.timeout_ms;
    launch.max_retries = spec.max_retries >= 0 ? spec.max_retries
                                               : d.max_retries;
    launch.backoff_ms = d.backoff_ms;
    job.exec_ticket = executor_->Start(launch);
    job.running = true;
    by_exec_[job.exec_ticket] = ticket;

    for (const Subscriber& s : job.subs) {
      JsonValue ev = JsonValue::Object();
      ev.Set("event", JsonValue("started"));
      ev.Set("ticket", JsonValue(ticket));
      ev.Set("job", JsonValue(s.job_echo));
      SendEvent(s.client, ev);
    }
    if (opts_.verbose) {
      std::printf("spearfarm: start %s (ticket %llu)\n",
                  runner::JobId(job.man->m, spec).c_str(),
                  static_cast<unsigned long long>(ticket));
      std::fflush(stdout);
    }
  }
}

void FarmDaemon::HandleCompletions() {
  for (JobExecutor::Completion& comp : executor_->Pump()) {
    auto bx = by_exec_.find(comp.ticket);
    if (bx == by_exec_.end()) continue;
    const std::uint64_t ticket = bx->second;
    by_exec_.erase(bx);
    auto it = jobs_.find(ticket);
    if (it == jobs_.end()) continue;
    FarmJob& job = it->second;
    const runner::JobSpec& spec = job.man->jobs[job.job_index];

    runner::WorkerRow recovered = runner::RecoverWorkerRow(
        job.man->m, spec, comp.result, comp.job_out_path);
    const bool failed = !comp.result.ok;
    if (comp.result.canceled) {
      ++stats_.jobs_canceled;
    } else if (failed) {
      ++stats_.jobs_failed;
    } else {
      ++stats_.jobs_ok;
    }
    // Only verdict rows that actually came from a worker are cacheable —
    // and failed ones never are (a timeout on a loaded host must not
    // poison future runs).
    if (!failed && recovered.from_worker && !job.key.key.empty()) {
      std::string error;
      if (StoreResult(opts_.cache_dir, job.key, recovered.row,
                      recovered.ckpt, &error)) {
        ++stats_.cache_stores;
      } else if (opts_.verbose) {
        std::printf("spearfarm: cache store failed: %s\n", error.c_str());
      }
    }
    if (!comp.job_out_path.empty()) {
      std::error_code ec;
      std::filesystem::remove(comp.job_out_path, ec);
    }

    for (const Subscriber& s : job.subs) {
      JsonValue ev = JsonValue::Object();
      ev.Set("event", JsonValue("result"));
      ev.Set("ticket", JsonValue(ticket));
      ev.Set("job", JsonValue(s.job_echo));
      ev.Set("cached", JsonValue(false));
      ev.Set("ckpt", JsonValue(recovered.ckpt));
      ev.Set("failed", JsonValue(failed));
      ev.Set("row", recovered.row);
      SendEvent(s.client, ev);
    }
    if (opts_.verbose) {
      std::printf("spearfarm: done %s (%s)\n",
                  runner::JobId(job.man->m, spec).c_str(),
                  failed ? "failed" : "ok");
      std::fflush(stdout);
    }
    if (!job.key.key.empty()) inflight_by_key_.erase(job.key.key);
    jobs_.erase(it);
  }
}

std::size_t FarmDaemon::PersistQueue() {
  JsonValue doc = JsonValue::Object();
  doc.Set("farm_queue_version", JsonValue(kQueueFileVersion));
  JsonValue entries = JsonValue::Array();
  std::size_t n = 0;
  // Persist in fair-dequeue order so a restart resumes exactly where the
  // drain stopped.
  std::uint64_t ticket = 0;
  while ((ticket = DequeueNextFair()) != 0) {
    auto it = jobs_.find(ticket);
    if (it == jobs_.end()) continue;
    const FarmJob& job = it->second;
    JsonValue e = JsonValue::Object();
    e.Set("manifest", JsonValue(job.man->path));
    e.Set("job", JsonValue(static_cast<std::int64_t>(job.job_index)));
    if (job.cosim) e.Set("cosim", JsonValue(true));
    entries.Append(std::move(e));
    ++n;
  }
  doc.Set("jobs", std::move(entries));
  std::string error;
  WriteFileAtomic(opts_.state_dir + "/queue.json", doc.Dump(2) + "\n",
                  &error);
  return n;
}

void FarmDaemon::RestoreQueue() {
  const std::string path = opts_.state_dir + "/queue.json";
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  std::ostringstream buf;
  buf << in.rdbuf();
  in.close();
  std::error_code ec;
  std::filesystem::remove(path, ec);  // consumed either way

  JsonValue doc;
  std::string error;
  if (!telemetry::JsonParse(buf.str(), &doc, &error)) return;
  const JsonValue* version = doc.Find("farm_queue_version");
  if (version == nullptr || version->AsInt() != kQueueFileVersion) return;
  const JsonValue* entries = doc.Find("jobs");
  if (entries == nullptr) return;

  for (const JsonValue& e : entries->items()) {
    const JsonValue* man_path = e.Find("manifest");
    const JsonValue* job_field = e.Find("job");
    if (man_path == nullptr || job_field == nullptr) continue;
    std::ifstream mf(man_path->AsString(), std::ios::binary);
    if (!mf) continue;
    std::ostringstream mtext;
    mtext << mf.rdbuf();
    JsonValue man_json;
    if (!telemetry::JsonParse(mtext.str(), &man_json, &error)) continue;
    std::shared_ptr<StoredManifest> man = InternManifest(man_json, &error);
    if (man == nullptr) continue;
    const std::size_t job_index =
        static_cast<std::size_t>(job_field->AsInt());
    if (job_index >= man->jobs.size()) continue;
    const JsonValue* cosim_field = e.Find("cosim");
    const bool cosim = cosim_field != nullptr && cosim_field->AsBool();

    // Restored jobs are orphans (owner 0): no subscribers, but their
    // results land in the cache, which is the reason they were persisted.
    FarmJob job;
    job.ticket = next_ticket_++;
    job.man = std::move(man);
    job.job_index = job_index;
    job.cosim = cosim;
    job.owner = 0;
    if (!job.man->jobs[job_index].debug_hang) {
      // Cache-key the restored job so later submits of the same row
      // coalesce onto it; if the row got cached between persist and
      // restart there is nothing left to do.
      const runner::JobSpec& spec = job.man->jobs[job_index];
      const runner::ConfigSpec& cfg = job.man->m.configs[spec.config];
      const EvalOptions eopts =
          runner::MakeEvalOptions(job.man->m.defaults, cfg);
      const PreparedWorkload& pw = workloads_.Get(spec.workload, eopts);
      job.key = MakeResultKey(job.man->m, spec, BinaryFingerprint(pw), cosim);
      if (ProbeResult(opts_.cache_dir, job.key, nullptr)) continue;
      if (inflight_by_key_.count(job.key.key) != 0) continue;
      inflight_by_key_[job.key.key] = job.ticket;
    }
    const std::uint64_t ticket = job.ticket;
    jobs_.emplace(ticket, std::move(job));
    EnqueueTicket(ticket, 0);
  }
  if (queued_count_ > stats_.queue_peak) stats_.queue_peak = queued_count_;
}

}  // namespace spear::farm
