#include "farm/proto.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

namespace spear::farm {
namespace {

bool SendAll(int fd, const char* data, std::size_t n, std::string* error) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) {
        *error = std::string("send: ") + ::strerror(errno);
      }
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

// Returns 1 on success, 0 on clean EOF before any byte, -1 on error/short
// read (error filled).
int RecvAll(int fd, char* data, std::size_t n, std::string* error) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, data + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) {
        *error = std::string("recv: ") + ::strerror(errno);
      }
      return -1;
    }
    if (r == 0) {
      if (got == 0) return 0;
      if (error != nullptr) *error = "connection closed mid-frame";
      return -1;
    }
    got += static_cast<std::size_t>(r);
  }
  return 1;
}

}  // namespace

bool ReadFrame(int fd, telemetry::JsonValue* out, std::string* error) {
  if (error != nullptr) error->clear();
  unsigned char len_bytes[4];
  const int rc = RecvAll(fd, reinterpret_cast<char*>(len_bytes),
                         sizeof(len_bytes), error);
  if (rc <= 0) return false;  // clean EOF leaves *error empty
  const std::uint32_t len = static_cast<std::uint32_t>(len_bytes[0]) |
                            static_cast<std::uint32_t>(len_bytes[1]) << 8 |
                            static_cast<std::uint32_t>(len_bytes[2]) << 16 |
                            static_cast<std::uint32_t>(len_bytes[3]) << 24;
  if (len == 0 || len > kMaxFrameBytes) {
    if (error != nullptr) {
      *error = "oversized frame: " + std::to_string(len) + " bytes (max " +
               std::to_string(kMaxFrameBytes) + ")";
    }
    return false;
  }
  std::string payload(len, '\0');
  if (RecvAll(fd, payload.data(), len, error) <= 0) {
    if (error != nullptr && error->empty()) {
      *error = "connection closed mid-frame";
    }
    return false;
  }
  std::string parse_error;
  if (!telemetry::JsonParse(payload, out, &parse_error)) {
    if (error != nullptr) *error = "malformed frame: " + parse_error;
    return false;
  }
  return true;
}

bool WriteFrame(int fd, const telemetry::JsonValue& frame,
                std::string* error) {
  const std::string payload = frame.Dump();
  if (payload.size() > kMaxFrameBytes) {
    if (error != nullptr) {
      *error = "frame too large to send: " + std::to_string(payload.size()) +
               " bytes";
    }
    return false;
  }
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const char len_bytes[4] = {
      static_cast<char>(len & 0xff), static_cast<char>((len >> 8) & 0xff),
      static_cast<char>((len >> 16) & 0xff),
      static_cast<char>((len >> 24) & 0xff)};
  return SendAll(fd, len_bytes, sizeof(len_bytes), error) &&
         SendAll(fd, payload.data(), payload.size(), error);
}

bool FrameBuffer::Next(telemetry::JsonValue* out, std::string* error) {
  if (error != nullptr) error->clear();
  if (buf_.size() < 4) return false;
  const auto* b = reinterpret_cast<const unsigned char*>(buf_.data());
  const std::uint32_t len = static_cast<std::uint32_t>(b[0]) |
                            static_cast<std::uint32_t>(b[1]) << 8 |
                            static_cast<std::uint32_t>(b[2]) << 16 |
                            static_cast<std::uint32_t>(b[3]) << 24;
  if (len == 0 || len > kMaxFrameBytes) {
    if (error != nullptr) {
      *error = "oversized frame: " + std::to_string(len) + " bytes (max " +
               std::to_string(kMaxFrameBytes) + ")";
    }
    return false;
  }
  if (buf_.size() < 4u + len) return false;
  const std::string payload = buf_.substr(4, len);
  buf_.erase(0, 4u + len);
  std::string parse_error;
  if (!telemetry::JsonParse(payload, out, &parse_error)) {
    if (error != nullptr) *error = "malformed frame: " + parse_error;
    return false;
  }
  return true;
}

int ListenUnix(const std::string& path, int backlog, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "socket path too long: " + path;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = std::string("socket: ") + ::strerror(errno);
    }
    return -1;
  }
  ::unlink(path.c_str());  // stale socket from a previous daemon
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, backlog) < 0) {
    if (error != nullptr) {
      *error = "bind/listen " + path + ": " + ::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  return fd;
}

int ConnectUnix(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "socket path too long: " + path;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = std::string("socket: ") + ::strerror(errno);
    }
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error != nullptr) {
      *error = "connect " + path + ": " + ::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace spear::farm
