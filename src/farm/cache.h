// Content-addressed result cache: full deterministic job rows stored on
// disk, keyed on everything the row's bytes depend on — the manifest
// row's deterministic inputs (workload + canonical config JSON + the
// deterministic defaults), a fingerprint of the compiled SPEARBIN pair
// the job would simulate, the cosim flag and the stats schema version.
// The failure policy (timeouts, retries, backoff) is deliberately
// excluded: it shapes the run, never the numbers.
//
// Soundness: since PR 3 every runner document confines nondeterminism to
// the strippable "run" member, so a job row is a pure function of this
// key and replaying it from the cache is byte-identical to re-simulating.
// The SPEARBIN fingerprint covers the code-generation half of that
// function — a compiler or workload-generator change produces different
// binaries, a different fingerprint, and therefore a clean miss instead
// of a stale row.
//
// On-disk protocol mirrors the SPCK checkpoint cache: the key hash names
// the file, the full key string is stored inside and verified on load (a
// hash collision or any mismatch reads as a miss, never an error), and
// writes go through a temp file + rename so concurrent writers racing the
// same key can never expose a torn entry.
#pragma once

#include <cstdint>
#include <string>

#include "eval/harness.h"
#include "runner/manifest.h"
#include "telemetry/json.h"

namespace spear::farm {

// Bump when the stored-entry layout or the key composition changes; old
// entries then read as misses and are transparently regenerated. v2 added
// the workload scale and sampling-plan fields to the key, so sampled and
// full-detail rows (and different scales) can never collide.
inline constexpr int kResultCacheVersion = 2;

// FNV-1a over the serialized SPEARBIN bytes of both binaries the job
// could run (plain ++ annotated — the config's binary choice is part of
// the key string, the fingerprint covers the code itself).
std::uint64_t BinaryFingerprint(const PreparedWorkload& pw);

struct ResultCacheKey {
  std::string key;          // canonical "field=value|..." form
  std::uint64_t hash = 0;   // fnv1a64(key), names the file
};

// Derives the cache key for one manifest job. `binary_fingerprint` comes
// from BinaryFingerprint over the job's prepared workload.
ResultCacheKey MakeResultKey(const runner::Manifest& m,
                             const runner::JobSpec& job,
                             std::uint64_t binary_fingerprint, bool cosim);

// <dir>/<hex hash>.row.json
std::string ResultCachePath(const std::string& dir,
                            const ResultCacheKey& key);

// Stores `row` (plus its ckpt provenance) under the key, creating `dir`.
// Temp-file + rename; returns false with *error on I/O failure.
bool StoreResult(const std::string& dir, const ResultCacheKey& key,
                 const telemetry::JsonValue& row, const std::string& ckpt,
                 std::string* error = nullptr);

// Loads the row for `key`. Any mismatch — absent file, other cache
// version, different key string, malformed JSON — is a miss. `ckpt`
// and `bytes` (on-disk entry size) are optional out-params.
bool LoadResult(const std::string& dir, const ResultCacheKey& key,
                telemetry::JsonValue* row, std::string* ckpt = nullptr,
                std::uint64_t* bytes = nullptr);

// Hit/miss + on-disk size without reading the entry (spearrun's
// --cache-audit dry mode).
bool ProbeResult(const std::string& dir, const ResultCacheKey& key,
                 std::uint64_t* bytes);

}  // namespace spear::farm
