#include "farm/cache.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/fnv.h"
#include "isa/binary.h"
#include "telemetry/registry.h"

namespace spear::farm {
namespace {

std::string HexHash(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

std::uint64_t BinaryFingerprint(const PreparedWorkload& pw) {
  const std::vector<std::uint8_t> plain = SerializeProgram(pw.plain);
  const std::vector<std::uint8_t> annotated = SerializeProgram(pw.annotated);
  return Fnv1a64(annotated.data(), annotated.size(),
                 Fnv1a64(plain.data(), plain.size()));
}

ResultCacheKey MakeResultKey(const runner::Manifest& m,
                             const runner::JobSpec& job,
                             std::uint64_t binary_fingerprint, bool cosim) {
  // The canonical compact config JSON covers every simulator/compiler
  // knob plus the label (the label is part of the row's bytes). Emitting
  // through a one-config manifest reuses ConfigToJson's only-non-default
  // canonical form.
  runner::Manifest probe;
  probe.configs.push_back(m.configs[job.config]);
  const telemetry::JsonValue probe_json = runner::ManifestToJson(probe);
  const std::string config_json = probe_json.Find("configs")->items()[0].Dump();

  ResultCacheKey out;
  std::ostringstream full;
  full << "rcache=" << kResultCacheVersion
       << "|schema=" << telemetry::kStatsSchemaVersion
       << "|fp=" << HexHash(binary_fingerprint)
       << "|cosim=" << (cosim ? 1 : 0)
       << "|sim_instrs=" << m.defaults.sim_instrs
       << "|max_cycles=" << m.defaults.max_cycles
       << "|ref_seed=" << m.defaults.ref_seed
       << "|profile_seed=" << m.defaults.profile_seed
       << "|ff_instrs=" << m.defaults.ff_instrs
       << "|scale=" << m.defaults.scale
       << "|sampling=" << m.defaults.sampling.period << ":"
       << m.defaults.sampling.detail << ":" << m.defaults.sampling.warmup
       << "|workload=" << job.workload
       << "|debug_hang=" << (job.debug_hang ? 1 : 0)
       << "|config=" << config_json;
  out.key = full.str();
  out.hash = Fnv1a64(out.key.data(), out.key.size());
  return out;
}

std::string ResultCachePath(const std::string& dir,
                            const ResultCacheKey& key) {
  return dir + "/" + HexHash(key.hash) + ".row.json";
}

bool StoreResult(const std::string& dir, const ResultCacheKey& key,
                 const telemetry::JsonValue& row, const std::string& ckpt,
                 std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);

  telemetry::JsonValue doc = telemetry::JsonValue::Object();
  doc.Set("result_cache_version", telemetry::JsonValue(kResultCacheVersion));
  doc.Set("key", telemetry::JsonValue(key.key));
  doc.Set("ckpt", telemetry::JsonValue(ckpt));
  doc.Set("row", row);

  const std::string path = ResultCachePath(dir, key);
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      if (error != nullptr) *error = "cannot write " + tmp;
      return false;
    }
    out << doc.Dump(2) << "\n";
    if (!out.good()) {
      if (error != nullptr) *error = "short write to " + tmp;
      return false;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "rename " + tmp + " -> " + path + ": " + ec.message();
    }
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

bool LoadResult(const std::string& dir, const ResultCacheKey& key,
                telemetry::JsonValue* row, std::string* ckpt,
                std::uint64_t* bytes) {
  const std::string path = ResultCachePath(dir, key);
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  telemetry::JsonValue doc;
  std::string perr;
  if (!telemetry::JsonParse(text, &doc, &perr)) return false;
  const telemetry::JsonValue* version = doc.Find("result_cache_version");
  if (version == nullptr || version->AsInt() != kResultCacheVersion) {
    return false;
  }
  // The hash names the file but the full key string decides: a hash
  // collision reads as a miss, exactly like the SPCK cache.
  const telemetry::JsonValue* stored_key = doc.Find("key");
  if (stored_key == nullptr || stored_key->AsString() != key.key) {
    return false;
  }
  const telemetry::JsonValue* stored_row = doc.Find("row");
  if (stored_row == nullptr) return false;
  if (row != nullptr) *row = *stored_row;
  if (ckpt != nullptr) {
    const telemetry::JsonValue* c = doc.Find("ckpt");
    *ckpt = c != nullptr ? c->AsString() : "off";
  }
  if (bytes != nullptr) *bytes = text.size();
  return true;
}

bool ProbeResult(const std::string& dir, const ResultCacheKey& key,
                 std::uint64_t* bytes) {
  // A probe answers the same question a load would, so it verifies the
  // stored key too — just without handing the row back.
  telemetry::JsonValue row;
  return LoadResult(dir, key, &row, nullptr, bytes);
}

}  // namespace spear::farm
