// spearfarm wire protocol: length-prefixed JSON frames over a Unix-domain
// stream socket. Every frame is a 4-byte little-endian payload length
// followed by that many bytes of compact JSON (the telemetry/json.h
// model, so emission is deterministic). Frames above kMaxFrameBytes are a
// protocol error — the daemon answers with an "error" event and closes
// the connection rather than allocating unbounded memory.
//
// Requests (client -> daemon), keyed by "op":
//   {"op":"submit","manifest":{...},"job":N,"cosim":false}
//       -> {"event":"result", ...} immediately on a cache hit, else
//          {"event":"queued","ticket":T[,"coalesced":true]} followed
//          later by {"event":"started","ticket":T} and
//          {"event":"result","ticket":T,"cached":false,"ckpt":...,
//           "failed":B,"row":{...}}; admission control answers
//          {"event":"rejected","reason":"queue-full"|"draining", ...}
//   {"op":"status"}  -> {"event":"status","queue_depth":..,"in_flight":..,
//                        "draining":B,"stats":{runner.farm.*}}
//   {"op":"ping"}    -> {"event":"pong","protocol":1}
//   {"op":"cancel","ticket":T} -> {"event":"canceled","ticket":T} (queued
//       jobs are dropped; a running job is killed and reports a canceled
//       result to every subscriber)
//   {"op":"drain"}   -> daemon stops admitting, finishes in-flight jobs,
//       persists the queued remainder to <state-dir>/queue.json and
//       answers {"event":"drained","persisted":K} before exiting cleanly.
#pragma once

#include <cstdint>
#include <string>

#include "telemetry/json.h"

namespace spear::farm {

inline constexpr int kFarmProtocolVersion = 1;
inline constexpr std::uint32_t kMaxFrameBytes = 8u << 20;  // 8 MiB

// Exit code for farm transport failures (cannot bind/connect/talk to the
// daemon). Mirrors kExitFarm in tools/tool_flags.h — keep in sync.
inline constexpr int kExitFarm = 6;

// Blocking frame I/O (clients, tests). ReadFrame returns false on close
// or error; a clean EOF at a frame boundary leaves *error empty, anything
// else (short read, oversized length, bad JSON) fills it. Writes use
// MSG_NOSIGNAL so a dead peer reads as an error, not SIGPIPE.
bool ReadFrame(int fd, telemetry::JsonValue* out, std::string* error);
bool WriteFrame(int fd, const telemetry::JsonValue& frame,
                std::string* error);

// Incremental frame decoder for the daemon's non-blocking reads: feed
// whatever bytes arrived, pull complete frames out. Next() returns false
// with *error empty when more bytes are needed, and false with *error set
// on a malformed or oversized frame (the connection is unusable then —
// the length prefix can no longer be trusted).
class FrameBuffer {
 public:
  void Append(const char* data, std::size_t n) { buf_.append(data, n); }
  bool Next(telemetry::JsonValue* out, std::string* error);
  std::size_t pending_bytes() const { return buf_.size(); }

 private:
  std::string buf_;
};

// Unix-domain socket helpers. Both return -1 with *error filled on
// failure. ListenUnix unlinks a stale socket file first; ConnectUnix
// leaves timeouts to the caller.
int ListenUnix(const std::string& path, int backlog, std::string* error);
int ConnectUnix(const std::string& path, std::string* error);

}  // namespace spear::farm
