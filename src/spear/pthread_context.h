// P-thread execution context: the second hardware context's register file
// plus a private store buffer.
//
// Semantics per paper Section 3: the p-thread "only updates the data cache
// without changing the semantic state of the main program". Loads read the
// main thread's memory (possibly stale — the p-thread is speculative);
// stores are captured in a private buffer so later p-thread loads can
// forward from them, and are never written back.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <unordered_map>

#include "common/types.h"
#include "isa/regs.h"
#include "mem/memory.h"

namespace spear {

class PThreadContext {
 public:
  explicit PThreadContext(const Memory* main_memory) : mem_(main_memory) {
    Reset();
  }

  void Reset() {
    iregs_.fill(0);
    fregs_.fill(0.0);
    store_buffer_.clear();
  }

  // Repoints load forwarding at another main thread's memory image. A
  // multiprogram core rebinds at every live-in snapshot so the p-thread
  // reads its session owner's address space; must not be called
  // mid-session (the store buffer would span two spaces).
  void RebindMemory(const Memory* main_memory) { mem_ = main_memory; }

  // Live-in copy at trigger time: one unified register from the main
  // thread's deterministic state.
  void CopyLiveInInt(RegId reg, std::uint32_t value) { iregs_[reg] = value; }
  void CopyLiveInFp(RegId reg, double value) { fregs_[FpIndex(reg)] = value; }

  // --- architectural-state concept for ExecuteInstruction -----------------
  std::uint32_t ReadInt(RegId reg) { return iregs_[reg]; }
  void WriteInt(RegId reg, std::uint32_t v) { iregs_[reg] = v; }
  double ReadFp(RegId reg) { return fregs_[FpIndex(reg)]; }
  void WriteFp(RegId reg, double v) { fregs_[FpIndex(reg)] = v; }

  std::uint8_t LoadU8(Addr a) {
    auto it = store_buffer_.find(a);
    return it != store_buffer_.end() ? it->second : mem_->ReadU8(a);
  }
  std::uint32_t LoadU32(Addr a) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(LoadU8(a + static_cast<Addr>(i)))
           << (8 * i);
    }
    return v;
  }
  double LoadF64(Addr a) {
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(LoadU8(a + static_cast<Addr>(i)))
              << (8 * i);
    }
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  void StoreU8(Addr a, std::uint8_t v) { store_buffer_[a] = v; }
  void StoreU32(Addr a, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      StoreU8(a + static_cast<Addr>(i), static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void StoreF64(Addr a, double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      StoreU8(a + static_cast<Addr>(i),
              static_cast<std::uint8_t>(bits >> (8 * i)));
    }
  }

  std::size_t store_buffer_entries() const { return store_buffer_.size(); }

 private:
  const Memory* mem_;  // main-thread memory, read-only from here
  std::array<std::uint32_t, kNumIntRegs> iregs_;
  std::array<double, kNumFpRegs> fregs_;
  std::unordered_map<Addr, std::uint8_t> store_buffer_;
};

}  // namespace spear
