// SPEAR front-end configuration knobs (paper Section 3 defaults, each
// exposed for the ablation benches).
#pragma once

#include <cstdint>

namespace spear {

// What the trigger logic does between d-load detection and p-thread start.
// The paper says the trigger "waits until all instructions which are
// already decoded have been committed" so the live-in copy sees a
// deterministic state.
enum class TriggerDrainPolicy : std::uint8_t {
  // Default: live-ins are snapshotted at trigger time from the in-order
  // dispatch-time register state and the p-thread starts as soon as the
  // 1-cycle-per-register copy has elapsed — the only trigger cost the
  // paper quantifies ("we assumed that each copy operation would take one
  // clock cycle"). In an execute-at-dispatch simulator (sim-outorder and
  // this one alike) the dispatch-time state *is* the deterministic state
  // the paper's drain produces: correct-path values are final, and any
  // intervening misprediction flushes the IFQ and aborts the session
  // anyway. The two drain variants below model stricter hardware readings;
  // bench_ablation_drain shows they forfeit most of SPEAR's gain, which is
  // why they cannot be what the paper's simulator measured.
  kImmediate,
  // Ablation: snapshot live-ins at trigger, but gate p-thread issue until
  // commit has caught up to the trigger point. Extraction buffers in the
  // meantime.
  kDrainToTrigger,
  // Ablation: literal conservative reading — main dispatch stalls outright
  // until the whole RUU has committed, then live-ins are copied.
  kStallDispatch,
};

struct SpearConfig {
  bool enabled = false;

  // Trigger fires only when IFQ occupancy >= ifq_size / trigger_occupancy_div
  // ("we empirically used half of the IFQ size").
  std::uint32_t trigger_occupancy_div = 2;

  // Max p-thread instructions the PE extracts per cycle. Paper: half the
  // issue bandwidth (8/2 = 4), "so as not to overly penalize the main
  // thread". 0 means derive issue_width / 2.
  std::uint32_t extract_per_cycle = 0;

  // Separate functional-unit pool for the p-thread (SPEAR.sf, Figure 7).
  bool separate_fu = false;

  // P-thread reorder buffer capacity. Matches the main RUU by default: the
  // p-thread's prefetch lookahead is bounded by this window, so a smaller
  // buffer would give the p-thread *less* reach than the main thread's own
  // out-of-order window.
  std::uint32_t pthread_ruu_size = 128;

  TriggerDrainPolicy drain_policy = TriggerDrainPolicy::kImmediate;

  // Cycles per live-in register copy (paper assumes 1).
  std::uint32_t copy_cycles_per_reg = 1;

  // CMP extension (off by default): when an XcoreArbiter is attached and an
  // idle neighbor core exists at trigger time, run the session's p-thread
  // on that donor core. The p-thread then warms the shared L2 only (the
  // donor's private L1 is useless to the triggering core), uses the donor's
  // functional units and issue bandwidth, and pays a higher live-in
  // transfer cost. With no arbiter or no idle donor, sessions fall back to
  // the same-core context.
  bool xcore_pthreads = false;

  // Cycles per live-in register for a *cross-core* live-in transfer
  // (shipping values to the donor crosses the interconnect; 1 cycle is not
  // plausible there).
  std::uint32_t xcore_copy_cycles_per_reg = 3;

  // Extension (off by default): chaining trigger in the spirit of Collins
  // et al.'s Speculative Precomputation — when a session completes, the
  // next pre-decoded d-load re-arms immediately, bypassing the occupancy
  // check, so sessions chain back-to-back instead of waiting for the IFQ
  // to refill past the threshold.
  bool chaining_trigger = false;
};

}  // namespace spear
