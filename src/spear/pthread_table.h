// P-thread Table (PT): the hardware structure loaded from the SPEAR
// binary's p-thread section. The pre-decoder consults it on every fetched
// instruction to set the entry's p-thread indicator and delinquent-load
// mark (paper Section 3.1).
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "isa/program.h"

namespace spear {

class PThreadTable {
 public:
  static constexpr int kNoSpec = -1;

  PThreadTable() = default;

  explicit PThreadTable(const std::vector<PThreadSpec>& specs) : specs_(specs) {
    for (int i = 0; i < static_cast<int>(specs_.size()); ++i) {
      // InSlice binary-searches slice_pcs; a spec that slipped past the
      // verifier with an unsorted slice must not reach the hardware.
      SPEAR_CHECK(std::is_sorted(specs_[i].slice_pcs.begin(),
                                 specs_[i].slice_pcs.end()));
      dload_to_spec_.emplace(specs_[i].dload_pc, i);
      for (Pc pc : specs_[i].slice_pcs) slice_pcs_.insert(pc);
    }
  }

  bool empty() const { return specs_.empty(); }
  std::size_t size() const { return specs_.size(); }

  // Pre-decode query: is this PC part of any p-thread slice?
  bool InAnySlice(Pc pc) const { return slice_pcs_.count(pc) > 0; }

  // Pre-decode query: does this PC trigger a p-thread? Returns the spec
  // index or kNoSpec.
  int DloadSpec(Pc pc) const {
    auto it = dload_to_spec_.find(pc);
    return it == dload_to_spec_.end() ? kNoSpec : it->second;
  }

  const PThreadSpec& spec(int index) const {
    SPEAR_CHECK(index >= 0 && index < static_cast<int>(specs_.size()));
    return specs_[static_cast<std::size_t>(index)];
  }

 private:
  std::vector<PThreadSpec> specs_;
  std::unordered_map<Pc, int> dload_to_spec_;
  std::unordered_set<Pc> slice_pcs_;
};

}  // namespace spear
