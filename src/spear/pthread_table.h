// P-thread Table (PT): the hardware structure loaded from the SPEAR
// binary's p-thread section. The pre-decoder consults it on every fetched
// instruction to set the entry's p-thread indicator and delinquent-load
// mark (paper Section 3.1).
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "isa/program.h"
#include "telemetry/registry.h"

namespace spear {

class PThreadTable {
 public:
  static constexpr int kNoSpec = -1;

  PThreadTable() = default;

  explicit PThreadTable(const std::vector<PThreadSpec>& specs) : specs_(specs) {
    for (int i = 0; i < static_cast<int>(specs_.size()); ++i) {
      // InSlice binary-searches slice_pcs; a spec that slipped past the
      // verifier with an unsorted slice must not reach the hardware.
      SPEAR_CHECK(std::is_sorted(specs_[i].slice_pcs.begin(),
                                 specs_[i].slice_pcs.end()));
      dload_to_spec_.emplace(specs_[i].dload_pc, i);
      for (Pc pc : specs_[i].slice_pcs) slice_pcs_.insert(pc);
      slice_len_.Add(specs_[i].slice_pcs.size());
      livein_count_.Add(specs_[i].live_ins.size());
    }
    num_specs_ = specs_.size();
  }

  // Binds the table's static shape under "spear.pt.*".
  void RegisterStats(telemetry::StatRegistry& reg) const {
    reg.BindCounter("spear.pt.specs", &num_specs_,
                    "p-thread specs loaded into the PT");
    reg.BindDistribution("spear.pt.slice_len", &slice_len_,
                         "static slice length per spec (instructions)");
    reg.BindDistribution("spear.pt.livein_count", &livein_count_,
                         "declared live-in registers per spec");
  }

  bool empty() const { return specs_.empty(); }
  std::size_t size() const { return specs_.size(); }

  // Pre-decode query: is this PC part of any p-thread slice?
  bool InAnySlice(Pc pc) const { return slice_pcs_.count(pc) > 0; }

  // Pre-decode query: does this PC trigger a p-thread? Returns the spec
  // index or kNoSpec.
  int DloadSpec(Pc pc) const {
    auto it = dload_to_spec_.find(pc);
    return it == dload_to_spec_.end() ? kNoSpec : it->second;
  }

  const PThreadSpec& spec(int index) const {
    SPEAR_CHECK(index >= 0 && index < static_cast<int>(specs_.size()));
    return specs_[static_cast<std::size_t>(index)];
  }

 private:
  std::vector<PThreadSpec> specs_;
  std::unordered_map<Pc, int> dload_to_spec_;
  std::unordered_set<Pc> slice_pcs_;

  // Static-shape telemetry, filled at construction.
  std::uint64_t num_specs_ = 0;
  telemetry::Distribution slice_len_{std::vector<std::uint64_t>{2, 4, 8, 16, 32}};
  telemetry::Distribution livein_count_{std::vector<std::uint64_t>{1, 2, 4, 8}};
};

}  // namespace spear
