// Dynamic taint-tracking observer over speculative execution — the runtime
// half of the speculative-leakage analysis (the static half is
// analysis/taint.h).
//
// The core calls in at three kinds of events:
//   * execute-at-dispatch of every instruction (main thread, wrong path,
//     p-thread) — register/memory shadow taint propagation and the
//     tainted-address / secret-load counters;
//   * cache access at issue time — which cache lines each speculative
//     episode touches;
//   * episode boundaries (wrong-path recovery, p-thread session start/end)
//     — the leakage-surface histogram sample and overlay discard.
//
// Taint sources mirror the static pass: loads from a @secret range
// (Program::secret_ranges) taint on every path; any load executed
// speculatively (wrong path or p-thread) taints its result. Wrong-path
// taint overlays the main-thread state and is discarded at recovery, the
// same discipline the core applies to its spec_* register/memory overlays.
// P-thread taint starts from the live-in copy and dies with the session.
//
// Everything emits through StatRegistry as `core.spec_leak.*`. The hooks
// compile out under -DSPEAR_ENABLE_TAINT=0 (mirroring SPEAR_ENABLE_COSIM);
// the default build keeps them at one null-pointer test per event.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "isa/instruction.h"
#include "isa/program.h"
#include "sim/exec.h"
#include "telemetry/registry.h"
#include "telemetry/stat.h"

#ifndef SPEAR_ENABLE_TAINT
#define SPEAR_ENABLE_TAINT 1
#endif

namespace spear::taint {

inline constexpr bool kTaintCompiled = SPEAR_ENABLE_TAINT != 0;

class TaintObserver {
 public:
  // `prog` supplies the @secret ranges and must outlive the observer;
  // `block_bytes` is the L1-D line size (leakage is observed per line).
  TaintObserver(const Program& prog, std::uint32_t block_bytes)
      : prog_(&prog) {
    while ((1u << block_shift_) < block_bytes) ++block_shift_;
  }

  // --- execute-at-dispatch hooks -----------------------------------------

  void OnMainExec(const Instruction& in, const ExecResult& ex,
                  bool wrongpath) {
    if (wrongpath && !in_wrongpath_) {
      // First wrong-path instruction: overlay the committed-path taint.
      in_wrongpath_ = true;
      wp_regs_ = main_regs_;
      wp_mem_.clear();
      wp_lines_.clear();
    }
    Step(in, ex, wrongpath ? Ctx::kWrongPath : Ctx::kMain);
  }

  void OnPThreadExec(const Instruction& in, const ExecResult& ex) {
    if (!pt_active_) return;  // trailing in-flight work after session end
    Step(in, ex, Ctx::kPThread);
  }

  // --- episode boundaries -------------------------------------------------

  // Mispredict recovery: the wrong-path overlay dies with the squashed
  // instructions. No-op when the resolved branch never let a wrong-path
  // instruction reach dispatch.
  void OnWrongPathEnd() {
    if (!in_wrongpath_) return;
    in_wrongpath_ = false;
    surface_.Add(wp_lines_.size());
    ++wp_episodes_;
    wp_regs_ = 0;
    wp_mem_.clear();
    wp_lines_.clear();
  }

  // Live-in snapshot at p-thread launch: the session inherits exactly the
  // taint of the copied registers.
  void OnPThreadSessionStart(const std::vector<RegId>& live_ins) {
    pt_active_ = true;
    pt_regs_ = 0;
    for (RegId r : live_ins) {
      if ((main_regs_ >> (r & 63)) & 1) pt_regs_ |= 1ull << (r & 63);
    }
    pt_lines_.clear();
  }

  void OnPThreadSessionEnd() {
    if (!pt_active_) return;
    pt_active_ = false;
    surface_.Add(pt_lines_.size());
    ++pt_sessions_;
    pt_regs_ = 0;
    pt_lines_.clear();
  }

  // --- issue-time cache hook ----------------------------------------------

  void OnCacheAccess(Addr addr, bool pthread, bool wrongpath) {
    const Addr line = addr >> block_shift_;
    if (pthread) {
      spec_lines_.insert(line);
      if (pt_active_) pt_lines_.insert(line);
    } else if (wrongpath) {
      spec_lines_.insert(line);
      if (in_wrongpath_) wp_lines_.insert(line);
    } else {
      demand_lines_.insert(line);
    }
  }

  // --- telemetry ----------------------------------------------------------

  void RegisterStats(telemetry::StatRegistry& reg,
                     const std::string& prefix = "core.spec_leak.") {
    reg.BindCounter(prefix + "loads.spec", &spec_loads_,
                    "loads executed speculatively (wrong path or p-thread)");
    reg.BindCounter(prefix + "loads.tainted_addr", &tainted_addr_loads_,
                    "loads whose address register carried taint at execute");
    reg.BindCounter(prefix + "loads.secret", &secret_loads_,
                    "loads reading a declared @secret range");
    reg.BindCounter(prefix + "episodes.wrongpath", &wp_episodes_,
                    "wrong-path episodes that reached dispatch");
    reg.BindCounter(prefix + "episodes.pthread", &pt_sessions_,
                    "p-thread pre-execution sessions observed");
    reg.AddFormula(prefix + "lines.spec",
                   [this] { return static_cast<double>(spec_lines_.size()); },
                   "distinct cache lines touched by speculative accesses");
    reg.AddFormula(prefix + "lines.demand",
                   [this] { return static_cast<double>(demand_lines_.size()); },
                   "distinct cache lines touched by committed-path accesses");
    reg.AddFormula(prefix + "lines.spec_only",
                   [this] { return static_cast<double>(SpecOnlyLines()); },
                   "cache lines touched only speculatively: the attacker-"
                   "observable leakage surface");
    reg.BindDistribution(prefix + "surface", &surface_,
                         "cache lines touched per speculative episode");
  }

  std::uint64_t spec_loads() const { return spec_loads_; }
  std::uint64_t tainted_addr_loads() const { return tainted_addr_loads_; }
  std::uint64_t secret_loads() const { return secret_loads_; }
  std::uint64_t spec_line_count() const { return spec_lines_.size(); }
  std::uint64_t demand_line_count() const { return demand_lines_.size(); }

  std::uint64_t SpecOnlyLines() const {
    std::uint64_t n = 0;
    for (Addr line : spec_lines_) n += demand_lines_.count(line) == 0;
    return n;
  }

 private:
  // Which shadow state an executing instruction reads and writes.
  enum class Ctx { kMain, kWrongPath, kPThread };

  static bool Bit(std::uint64_t mask, RegId r) { return (mask >> (r & 63)) & 1; }
  static void SetBit(std::uint64_t& mask, RegId r, bool v) {
    const std::uint64_t bit = 1ull << (r & 63);
    mask = v ? (mask | bit) : (mask & ~bit);
  }

  std::uint64_t& Regs(Ctx ctx) {
    switch (ctx) {
      case Ctx::kWrongPath: return wp_regs_;
      case Ctx::kPThread: return pt_regs_;
      default: return main_regs_;
    }
  }

  bool MemTainted(Ctx ctx, Addr addr, std::uint32_t bytes) const {
    for (std::uint32_t i = 0; i < bytes; ++i) {
      const Addr a = addr + i;
      if (ctx == Ctx::kWrongPath) {
        // Wrong-path stores shadow the committed-path bytes.
        auto it = wp_mem_.find(a);
        if (it != wp_mem_.end()) {
          if (it->second) return true;
          continue;
        }
      }
      if (main_mem_.count(a) > 0) return true;
    }
    return false;
  }

  void TaintMem(Ctx ctx, Addr addr, std::uint32_t bytes, bool taint) {
    for (std::uint32_t i = 0; i < bytes; ++i) {
      const Addr a = addr + i;
      if (ctx == Ctx::kWrongPath) {
        wp_mem_[a] = taint;
      } else if (taint) {
        main_mem_.insert(a);
      } else {
        main_mem_.erase(a);
      }
    }
  }

  void Step(const Instruction& in, const ExecResult& ex, Ctx ctx) {
    std::uint64_t& regs = Regs(ctx);
    const SrcRegs srcs = SourcesOf(in);
    bool src_taint = false;
    for (int i = 0; i < srcs.count; ++i) {
      const RegId r = srcs.reg[i];
      if (r != kRegZero && Bit(regs, r)) src_taint = true;
    }
    const std::uint32_t bytes = GetOpInfo(in.op).access_bytes;
    const auto rd = DestOf(in);

    if (ex.is_load) {
      const bool speculative = ctx != Ctx::kMain;
      const bool addr_taint = in.rs != kRegZero && Bit(regs, in.rs);
      const bool secret = prog_->IsSecretAddr(ex.mem_addr, bytes);
      if (speculative) ++spec_loads_;
      if (addr_taint) ++tainted_addr_loads_;
      if (secret) ++secret_loads_;
      if (rd) {
        SetBit(regs, *rd, speculative || secret || addr_taint ||
                              MemTainted(ctx, ex.mem_addr, bytes));
      }
      return;
    }
    if (ex.is_store) {
      // Taint of the stored value (rt); address taint does not transfer.
      const bool value_taint = in.rt != kRegZero && Bit(regs, in.rt);
      TaintMem(ctx, ex.mem_addr, bytes, value_taint);
      return;
    }
    if (rd) SetBit(regs, *rd, src_taint);
  }

  const Program* prog_;
  std::uint32_t block_shift_ = 0;

  // Shadow register taint, one bit per unified register id.
  std::uint64_t main_regs_ = 0;
  std::uint64_t wp_regs_ = 0;
  std::uint64_t pt_regs_ = 0;
  bool in_wrongpath_ = false;
  bool pt_active_ = false;

  // Byte-granular shadow memory: committed-path tainted bytes, plus a
  // wrong-path overlay discarded at recovery (p-thread slices are
  // store-free by contract, so they need no overlay).
  std::unordered_set<Addr> main_mem_;
  std::unordered_map<Addr, bool> wp_mem_;

  // Cache-line footprints (line ids, i.e. addr >> block_shift).
  std::unordered_set<Addr> spec_lines_;
  std::unordered_set<Addr> demand_lines_;
  std::unordered_set<Addr> wp_lines_;
  std::unordered_set<Addr> pt_lines_;

  std::uint64_t spec_loads_ = 0;
  std::uint64_t tainted_addr_loads_ = 0;
  std::uint64_t secret_loads_ = 0;
  std::uint64_t wp_episodes_ = 0;
  std::uint64_t pt_sessions_ = 0;
  telemetry::Distribution surface_{std::vector<std::uint64_t>{
      0, 1, 2, 4, 8, 16, 32, 64, 128}};
};

}  // namespace spear::taint
