// Property tests for the SPEARBIN container: randomly generated programs
// (random but well-formed instructions, segments and p-thread specs) must
// survive serialize -> deserialize bit-exactly, and the two encodings of
// an instruction (struct vs 64-bit word) must agree for random field
// combinations.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "isa/binary.h"
#include "isa/instruction.h"
#include "isa/program.h"

namespace spear {
namespace {

Instruction RandomInstruction(Rng& rng) {
  Instruction in;
  in.op = static_cast<Opcode>(rng.Below(static_cast<std::uint64_t>(kNumOpcodes)));
  in.rd = static_cast<RegId>(rng.Below(64));
  in.rs = static_cast<RegId>(rng.Below(64));
  in.rt = static_cast<RegId>(rng.Below(64));
  in.imm = static_cast<std::int32_t>(rng.Next());
  return in;
}

Program RandomProgram(std::uint64_t seed) {
  Rng rng(seed);
  Program prog;
  const int ninstr = 1 + static_cast<int>(rng.Below(200));
  for (int i = 0; i < ninstr; ++i) prog.text.push_back(RandomInstruction(rng));
  prog.entry = prog.PcOf(static_cast<InstrIndex>(
      rng.Below(static_cast<std::uint64_t>(ninstr))));

  const int nseg = static_cast<int>(rng.Below(4));
  Addr base = 0x100000;
  for (int s = 0; s < nseg; ++s) {
    const auto size = static_cast<std::size_t>(1 + rng.Below(300));
    DataSegment& seg = prog.AddSegment(base, size);
    for (std::size_t i = 0; i < size; ++i) {
      seg.bytes[i] = static_cast<std::uint8_t>(rng.Next());
    }
    base += 0x10000;
  }

  const int nspec = static_cast<int>(rng.Below(4));
  for (int s = 0; s < nspec; ++s) {
    PThreadSpec spec;
    spec.dload_pc = prog.PcOf(static_cast<InstrIndex>(
        rng.Below(static_cast<std::uint64_t>(ninstr))));
    const int nslice = 1 + static_cast<int>(rng.Below(10));
    for (int k = 0; k < nslice; ++k) {
      spec.slice_pcs.push_back(prog.PcOf(static_cast<InstrIndex>(
          rng.Below(static_cast<std::uint64_t>(ninstr)))));
    }
    const int nlive = static_cast<int>(rng.Below(6));
    for (int k = 0; k < nlive; ++k) {
      spec.live_ins.push_back(static_cast<RegId>(rng.Below(64)));
    }
    spec.region_start = prog.PcOf(0);
    spec.region_end = prog.PcOf(static_cast<InstrIndex>(ninstr - 1));
    spec.profile_misses = rng.Next();
    spec.region_dcycles = rng.NextDouble() * 1000.0;
    prog.pthreads.push_back(std::move(spec));
  }
  return prog;
}

class BinaryRoundTrip : public testing::TestWithParam<int> {};

TEST_P(BinaryRoundTrip, RandomProgramSurvivesExactly) {
  const Program prog = RandomProgram(static_cast<std::uint64_t>(GetParam()));
  const Program back = DeserializeProgram(SerializeProgram(prog));

  EXPECT_EQ(back.text_base, prog.text_base);
  EXPECT_EQ(back.entry, prog.entry);
  ASSERT_EQ(back.text.size(), prog.text.size());
  for (std::size_t i = 0; i < prog.text.size(); ++i) {
    EXPECT_EQ(back.text[i], prog.text[i]) << "instr " << i;
  }
  ASSERT_EQ(back.data.size(), prog.data.size());
  for (std::size_t i = 0; i < prog.data.size(); ++i) {
    EXPECT_EQ(back.data[i].base, prog.data[i].base);
    EXPECT_EQ(back.data[i].bytes, prog.data[i].bytes);
  }
  ASSERT_EQ(back.pthreads.size(), prog.pthreads.size());
  for (std::size_t i = 0; i < prog.pthreads.size(); ++i) {
    EXPECT_EQ(back.pthreads[i].dload_pc, prog.pthreads[i].dload_pc);
    EXPECT_EQ(back.pthreads[i].slice_pcs, prog.pthreads[i].slice_pcs);
    EXPECT_EQ(back.pthreads[i].live_ins, prog.pthreads[i].live_ins);
    EXPECT_EQ(back.pthreads[i].region_start, prog.pthreads[i].region_start);
    EXPECT_EQ(back.pthreads[i].region_end, prog.pthreads[i].region_end);
    EXPECT_EQ(back.pthreads[i].profile_misses,
              prog.pthreads[i].profile_misses);
    EXPECT_DOUBLE_EQ(back.pthreads[i].region_dcycles,
                     prog.pthreads[i].region_dcycles);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinaryRoundTrip, testing::Range(1, 21));

TEST(InstructionEncoding, RandomFieldsRoundTrip) {
  Rng rng(99);
  for (int i = 0; i < 10'000; ++i) {
    const Instruction in = RandomInstruction(rng);
    EXPECT_EQ(Decode(Encode(in)), in);
  }
}

TEST(InstructionEncoding, EncodingIsInjectiveOnSample) {
  // Distinct instructions must produce distinct words (no field overlap).
  Rng rng(7);
  std::vector<std::pair<std::uint64_t, Instruction>> seen;
  for (int i = 0; i < 2'000; ++i) {
    const Instruction in = RandomInstruction(rng);
    const std::uint64_t bits = Encode(in);
    for (const auto& [obits, oin] : seen) {
      if (bits == obits) {
        EXPECT_EQ(in, oin);
      }
    }
    seen.emplace_back(bits, in);
  }
}

TEST(BinarySerialization, EmptyProgramStillRoundTrips) {
  Program prog;
  prog.text.push_back({Opcode::kHalt, 0, 0, 0, 0});
  const Program back = DeserializeProgram(SerializeProgram(prog));
  EXPECT_EQ(back.text.size(), 1u);
  EXPECT_TRUE(back.data.empty());
  EXPECT_TRUE(back.pthreads.empty());
}

}  // namespace
}  // namespace spear
