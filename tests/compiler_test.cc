// SPEAR post-compiler tests: CFG construction, dominator/loop analysis,
// profiling, hybrid slicing and the end-to-end compile-then-simulate flow.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/cfg.h"
#include "analysis/loops.h"
#include "compiler/profiler.h"
#include "compiler/slicer.h"
#include "compiler/spear_compiler.h"
#include "cpu/core.h"
#include "isa/assembler.h"
#include "sim/emulator.h"
#include "test_programs.h"

namespace spear {
namespace {

using testprog::BuildGather;
using testprog::GatherProgram;

// ---- CFG ----

TEST(Cfg, SingleLoopShape) {
  Program prog;
  Assembler a(&prog);
  Label loop = a.NewLabel();
  a.li(r(1), 10);        // B0
  a.Bind(loop);          // B1 (loop body)
  a.addi(r(1), r(1), -1);
  a.bne(r(1), r(0), loop);
  a.halt();              // B2
  a.Finish();

  const Cfg cfg = Cfg::Build(prog);
  ASSERT_EQ(cfg.num_blocks(), 3);
  EXPECT_EQ(cfg.entry_block(), 0);
  // B0 -> B1; B1 -> {B1, B2}; B2 -> {}.
  EXPECT_EQ(cfg.block(0).succs, (std::vector<int>{1}));
  EXPECT_EQ(cfg.block(1).succs, (std::vector<int>{1, 2}));
  EXPECT_TRUE(cfg.block(2).succs.empty());
  EXPECT_EQ(cfg.BlockOfPc(prog.PcOf(1)), 1);
  EXPECT_EQ(cfg.BlockOfPc(prog.PcOf(3)), 2);
}

TEST(Cfg, DiamondShape) {
  Program prog;
  Assembler a(&prog);
  Label els = a.NewLabel(), join = a.NewLabel();
  a.beq(r(1), r(0), els);  // B0
  a.li(r(2), 1);           // B1 (then)
  a.j(join);
  a.Bind(els);
  a.li(r(2), 2);           // B2 (else)
  a.Bind(join);
  a.halt();                // B3
  a.Finish();

  const Cfg cfg = Cfg::Build(prog);
  ASSERT_EQ(cfg.num_blocks(), 4);
  EXPECT_EQ(cfg.block(0).succs, (std::vector<int>{1, 2}));
  EXPECT_EQ(cfg.block(1).succs, (std::vector<int>{3}));
  EXPECT_EQ(cfg.block(2).succs, (std::vector<int>{3}));
  EXPECT_EQ(cfg.block(3).preds, (std::vector<int>{1, 2}));
}

TEST(Cfg, CallsAreIntraproceduralFallthrough) {
  Program prog;
  Assembler a(&prog);
  Label fn = a.NewLabel(), done = a.NewLabel();
  a.jal(fn);   // B0, has_call, falls through to B1
  a.j(done);   // B1
  a.Bind(fn);
  a.ret();     // B2 (no intra-CFG successors)
  a.Bind(done);
  a.halt();    // B3
  a.Finish();

  const Cfg cfg = Cfg::Build(prog);
  ASSERT_EQ(cfg.num_blocks(), 4);
  EXPECT_TRUE(cfg.block(0).has_call);
  EXPECT_EQ(cfg.block(0).succs, (std::vector<int>{1}));  // not to the callee
  EXPECT_TRUE(cfg.block(2).succs.empty());               // return
}

// ---- loops & dominators ----

Program NestedLoopProgram(Pc* inner_dload = nullptr) {
  // for i in 100: for j in 50: r5 += mem[r4]; r4 += 64
  // The pointer r4 carries across outer iterations, so the walk touches
  // 320 KiB of fresh memory (> L2) and the load misses throughout.
  Program prog;
  prog.AddSegment(0x200000, 1 << 22);
  Assembler a(&prog);
  Label outer = a.NewLabel(), inner = a.NewLabel();
  a.li(r(1), 100);
  a.la(r(4), 0x200000);
  a.Bind(outer);
  a.li(r(2), 50);
  a.Bind(inner);
  const Pc dload = a.Here();
  a.lw(r(3), r(4), 0);
  a.add(r(5), r(5), r(3));
  a.addi(r(4), r(4), 64);
  a.addi(r(2), r(2), -1);
  a.bne(r(2), r(0), inner);
  a.addi(r(1), r(1), -1);
  a.bne(r(1), r(0), outer);
  a.halt();
  a.Finish();
  if (inner_dload) *inner_dload = dload;
  return prog;
}

TEST(Loops, DetectsNestingAndDepth) {
  const Program prog = NestedLoopProgram();
  const Cfg cfg = Cfg::Build(prog);
  const LoopForest lf = LoopForest::Build(cfg);
  ASSERT_EQ(lf.num_loops(), 2);

  const Loop* inner = nullptr;
  const Loop* outer = nullptr;
  for (const Loop& l : lf.loops()) {
    if (l.depth == 2) inner = &l;
    if (l.depth == 1) outer = &l;
  }
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(inner->parent, outer->id);
  EXPECT_EQ(outer->parent, -1);
  EXPECT_LT(inner->blocks.size(), outer->blocks.size());
  // Every inner block is inside the outer loop.
  for (int b : inner->blocks) EXPECT_TRUE(outer->Contains(b));
}

TEST(Loops, InnermostAtResolvesToDeepestLoop) {
  Pc dload;
  const Program prog = NestedLoopProgram(&dload);
  const Cfg cfg = Cfg::Build(prog);
  const LoopForest lf = LoopForest::Build(cfg);
  const int at = lf.InnermostAt(cfg.BlockOfPc(dload));
  ASSERT_NE(at, -1);
  EXPECT_EQ(lf.loop(at).depth, 2);
}

TEST(Loops, DominatorsOnDiamond) {
  Program prog;
  Assembler a(&prog);
  Label els = a.NewLabel(), join = a.NewLabel();
  a.beq(r(1), r(0), els);
  a.li(r(2), 1);
  a.j(join);
  a.Bind(els);
  a.li(r(2), 2);
  a.Bind(join);
  a.halt();
  a.Finish();
  const Cfg cfg = Cfg::Build(prog);
  const LoopForest lf = LoopForest::Build(cfg);
  EXPECT_TRUE(lf.Dominates(0, 1));
  EXPECT_TRUE(lf.Dominates(0, 3));
  EXPECT_FALSE(lf.Dominates(1, 3));  // join reachable around the then-arm
  EXPECT_FALSE(lf.Dominates(2, 3));
  EXPECT_EQ(lf.num_loops(), 0);
}

TEST(Loops, LoopWithCallIsFlagged) {
  Program prog;
  Assembler a(&prog);
  Label loop = a.NewLabel(), fn = a.NewLabel(), start = a.NewLabel();
  a.j(start);
  a.Bind(fn);
  a.ret();
  a.Bind(start);
  a.li(r(1), 10);
  a.Bind(loop);
  a.jal(fn);
  a.addi(r(1), r(1), -1);
  a.bne(r(1), r(0), loop);
  a.halt();
  a.Finish();
  const Cfg cfg = Cfg::Build(prog);
  const LoopForest lf = LoopForest::Build(cfg);
  ASSERT_EQ(lf.num_loops(), 1);
  EXPECT_TRUE(lf.loops()[0].contains_call);
}

// ---- profiler ----

TEST(Profiler, CountsMissesPerStaticLoad) {
  const GatherProgram g = BuildGather(/*iterations=*/5000,
                                      /*table_words=*/1 << 20);
  const Cfg cfg = Cfg::Build(g.prog);
  const LoopForest lf = LoopForest::Build(cfg);
  const ProfileResult prof = ProfileProgram(g.prog, cfg, lf, ProfilerOptions{});

  ASSERT_TRUE(prof.loads.count(g.dload_pc));
  const LoadProfile& dl = prof.loads.at(g.dload_pc);
  EXPECT_EQ(dl.execs, 5000u);
  // Random accesses into a 4 MiB table: the vast majority miss.
  EXPECT_GT(dl.l1_misses, 4000u);
  // The spine load is sequential: few misses.
  const Pc spine_pc = g.spec.slice_pcs.front();
  ASSERT_TRUE(prof.loads.count(spine_pc));
  EXPECT_LT(prof.loads.at(spine_pc).l1_misses * 5,
            prof.loads.at(spine_pc).execs);
}

TEST(Profiler, SliceVotesCoverTheAddressChain) {
  const GatherProgram g = BuildGather(/*iterations=*/5000,
                                      /*table_words=*/1 << 20);
  const Cfg cfg = Cfg::Build(g.prog);
  const LoopForest lf = LoopForest::Build(cfg);
  const ProfileResult prof = ProfileProgram(g.prog, cfg, lf, ProfilerOptions{});

  ASSERT_TRUE(prof.slice_votes.count(g.dload_pc));
  const auto& votes = prof.slice_votes.at(g.dload_pc);
  const std::uint64_t misses = prof.loads.at(g.dload_pc).l1_misses;
  // Every hand-identified slice member must be voted on nearly every miss.
  for (Pc member : g.spec.slice_pcs) {
    ASSERT_TRUE(votes.count(member)) << "missing votes for 0x" << std::hex
                                     << member;
    EXPECT_GT(votes.at(member), misses / 2) << "0x" << std::hex << member;
  }
}

TEST(Profiler, LoopDCyclesArePositiveAndOrdered) {
  const Program prog = NestedLoopProgram();
  const Cfg cfg = Cfg::Build(prog);
  const LoopForest lf = LoopForest::Build(cfg);
  const ProfileResult prof = ProfileProgram(prog, cfg, lf, ProfilerOptions{});
  ASSERT_EQ(prof.loops.size(), 2u);
  double inner_dc = 0, outer_dc = 0;
  for (const Loop& l : lf.loops()) {
    const double dc = prof.loops[static_cast<std::size_t>(l.id)].DCycle();
    if (l.depth == 2) inner_dc = dc;
    if (l.depth == 1) outer_dc = dc;
  }
  EXPECT_GT(inner_dc, 0.0);
  // One outer iteration contains 50 inner iterations: its d-cycle dwarfs
  // the inner one.
  EXPECT_GT(outer_dc, inner_dc * 20);
}

TEST(Profiler, RespectsInstructionBudget) {
  const GatherProgram g = BuildGather(100000, 1 << 20);
  const Cfg cfg = Cfg::Build(g.prog);
  const LoopForest lf = LoopForest::Build(cfg);
  ProfilerOptions opt;
  opt.max_instrs = 10'000;
  const ProfileResult prof = ProfileProgram(g.prog, cfg, lf, opt);
  EXPECT_EQ(prof.instrs, 10'000u);
}

// ---- slicer ----

TEST(Slicer, RecoversTheHandWrittenSlice) {
  const GatherProgram g = BuildGather(/*iterations=*/8000,
                                      /*table_words=*/1 << 20,
                                      /*seed=*/42, /*attach_spec=*/false);
  const Cfg cfg = Cfg::Build(g.prog);
  const LoopForest lf = LoopForest::Build(cfg);
  const ProfileResult prof = ProfileProgram(g.prog, cfg, lf, ProfilerOptions{});
  const SliceResult sr = BuildSlices(g.prog, cfg, lf, prof, SlicerOptions{});

  ASSERT_EQ(sr.specs.size(), 1u);
  const PThreadSpec& spec = sr.specs[0];
  EXPECT_EQ(spec.dload_pc, g.dload_pc);
  EXPECT_EQ(spec.slice_pcs, g.spec.slice_pcs);
  EXPECT_EQ(spec.live_ins, g.spec.live_ins);
  EXPECT_TRUE(std::is_sorted(spec.slice_pcs.begin(), spec.slice_pcs.end()));
}

TEST(Slicer, ThresholdSuppressesColdLoads) {
  // L1-resident data: no load reaches the miss threshold.
  const GatherProgram g = BuildGather(2000, 256, 42, /*attach_spec=*/false);
  const Cfg cfg = Cfg::Build(g.prog);
  const LoopForest lf = LoopForest::Build(cfg);
  const ProfileResult prof = ProfileProgram(g.prog, cfg, lf, ProfilerOptions{});
  const SliceResult sr = BuildSlices(g.prog, cfg, lf, prof, SlicerOptions{});
  EXPECT_TRUE(sr.specs.empty());
}

TEST(Slicer, MaxDloadsKeepsHeaviest) {
  // Two independent d-loads in one loop; cap at 1 keeps the heavier one.
  Program prog;
  prog.AddSegment(0x03000000, 1 << 22);
  prog.AddSegment(0x04000000, 1 << 22);
  Rng rng(3);
  Assembler a(&prog);
  Label loop = a.NewLabel(), skip = a.NewLabel();
  a.li(r(2), 20000);
  a.li(r(7), 12345);
  a.Bind(loop);
  // Pseudo-random index chain (xorshift-ish).
  a.slli(r(8), r(7), 13);
  a.xor_(r(7), r(7), r(8));
  a.srli(r(8), r(7), 17);
  a.xor_(r(7), r(7), r(8));
  a.slli(r(8), r(7), 5);
  a.xor_(r(7), r(7), r(8));
  a.andi(r(9), r(7), (1 << 20) - 4);
  a.la(r(10), 0x03000000);
  a.add(r(10), r(10), r(9));
  a.lw(r(3), r(10), 0);  // d-load A: every iteration
  a.andi(r(11), r(2), 3);
  a.bne(r(11), r(0), skip);
  a.la(r(12), 0x04000000);
  a.add(r(12), r(12), r(9));
  a.lw(r(4), r(12), 0);  // d-load B: every 4th iteration
  a.Bind(skip);
  a.addi(r(2), r(2), -1);
  a.bne(r(2), r(0), loop);
  a.halt();
  a.Finish();

  const Cfg cfg = Cfg::Build(prog);
  const LoopForest lf = LoopForest::Build(cfg);
  const ProfileResult prof = ProfileProgram(prog, cfg, lf, ProfilerOptions{});
  SlicerOptions opt;
  opt.max_dloads = 1;
  const SliceResult sr = BuildSlices(prog, cfg, lf, prof, opt);
  ASSERT_EQ(sr.specs.size(), 1u);
  // The kept d-load is the one that misses ~4x more often (d-load A).
  std::uint64_t best_misses = 0;
  for (const auto& [pc, lp] : prof.loads) best_misses = std::max(best_misses, lp.l1_misses);
  EXPECT_EQ(sr.specs[0].profile_misses, best_misses);
}

TEST(Slicer, RegionGrowsThroughCheapInnerLoop) {
  // Inner loop with a tiny d-cycle: region should grow to the outer loop.
  Pc dload;
  const Program prog = NestedLoopProgram(&dload);
  const Cfg cfg = Cfg::Build(prog);
  const LoopForest lf = LoopForest::Build(cfg);
  const ProfileResult prof = ProfileProgram(prog, cfg, lf, ProfilerOptions{});
  SlicerOptions opt;
  opt.miss_threshold = 100;
  opt.dcycle_budget = 1e9;  // unlimited: growth must reach the outer loop
  const SliceResult srs = BuildSlices(prog, cfg, lf, prof, opt);
  ASSERT_FALSE(srs.reports.empty());
  EXPECT_EQ(srs.reports[0].region_depth, 2);

  opt.dcycle_budget = 1.0;  // no budget: stay in the innermost loop
  const SliceResult srt = BuildSlices(prog, cfg, lf, prof, opt);
  ASSERT_FALSE(srt.reports.empty());
  EXPECT_EQ(srt.reports[0].region_depth, 1);
}

// ---- end-to-end ----

TEST(CompileSpear, CompiledBinarySpeedsUpAndStaysExact) {
  const GatherProgram g = BuildGather(/*iterations=*/20000,
                                      /*table_words=*/1 << 20,
                                      /*seed=*/42, /*attach_spec=*/false);
  // Paper methodology: profile with a different input set.
  const GatherProgram profile_input =
      BuildGather(20000, 1 << 20, /*seed=*/1234, /*attach_spec=*/false);

  CompileReport report;
  const Program spear_bin =
      CompileSpear(profile_input.prog, g.prog, CompilerOptions{}, &report);
  ASSERT_FALSE(spear_bin.pthreads.empty());
  EXPECT_GT(report.profiled_l1_misses, 0u);
  EXPECT_GT(report.num_loops, 0);

  Emulator emu(g.prog);
  emu.Run(10'000'000);
  ASSERT_TRUE(emu.halted());

  Core base(g.prog, BaselineConfig(256));
  const RunResult rb = base.Run(UINT64_MAX, 100'000'000);
  Core sp(spear_bin, SpearCoreConfig(256));
  const RunResult rs = sp.Run(UINT64_MAX, 100'000'000);
  ASSERT_TRUE(rb.halted && rs.halted);
  EXPECT_EQ(sp.outputs(), emu.outputs());
  EXPECT_GT(sp.stats().triggers_fired, 0u);
  EXPECT_LT(rs.cycles, rb.cycles);
}

TEST(CompileSpear, ReportIsHumanReadable) {
  const GatherProgram g = BuildGather(5000, 1 << 20, 42, false);
  CompileReport report;
  CompileSpear(g.prog, CompilerOptions{}, &report);
  const std::string text = report.ToString();
  EXPECT_NE(text.find("profiled"), std::string::npos);
  EXPECT_NE(text.find("dload"), std::string::npos);
}

}  // namespace
}  // namespace spear
