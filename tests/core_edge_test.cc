// Pipeline edge cases and resource-constraint behaviour: tiny structures,
// width limits, FU pool pressure, p-thread RUU exhaustion, the stride
// prefetcher, and the chaining-trigger extension — all under the emulator
// oracle wherever semantics are at stake.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "cpu/core.h"
#include "isa/assembler.h"
#include "sim/emulator.h"
#include "test_programs.h"

namespace spear {
namespace {

using testprog::BuildGather;
using testprog::GatherProgram;

void ExpectOracleExact(const Program& prog, const CoreConfig& cfg) {
  Emulator emu(prog);
  std::vector<Pc> oracle;
  while (!emu.halted() && oracle.size() < 2'000'000) {
    oracle.push_back(emu.pc());
    emu.Step();
  }
  ASSERT_TRUE(emu.halted());
  Core core(prog, cfg);
  // Full-trace exactness: raise the ring cap to the oracle length (the
  // test already holds the whole oracle, so this costs nothing extra).
  core.set_trace_commits(true, oracle.size());
  const RunResult rr = core.Run(UINT64_MAX, 400'000'000);
  ASSERT_TRUE(rr.halted);
  ASSERT_EQ(core.commit_trace().size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    ASSERT_EQ(core.commit_trace()[i], oracle[i]) << "diverged at " << i;
  }
  EXPECT_EQ(core.outputs(), emu.outputs());
}

Program BranchyMemProgram() {
  // Mixed kernel: random loads, data-dependent branches, stores and a
  // call — enough structure to stress every recovery path.
  Program prog;
  const Addr base = 0x300000;
  const int n = 4096;
  Rng rng(17);
  DataSegment& seg = prog.AddSegment(base, n * 4);
  for (int i = 0; i < n; ++i) {
    PokeU32(seg, base + static_cast<Addr>(i) * 4,
            static_cast<std::uint32_t>(rng.Next()));
  }
  Assembler a(&prog);
  Label loop = a.NewLabel(), odd = a.NewLabel(), cont = a.NewLabel();
  Label helper = a.NewLabel(), start = a.NewLabel();
  a.j(start);
  a.Bind(helper);
  a.slli(r(8), r(5), 1);
  a.ret();
  a.Bind(start);
  a.li(r(1), 6000);
  a.li(r(2), 0);   // index
  a.li(r(3), 0);   // checksum
  a.la(r(9), base);
  a.Bind(loop);
  a.andi(r(4), r(2), n - 1);
  a.slli(r(4), r(4), 2);
  a.add(r(4), r(9), r(4));
  a.lw(r(5), r(4), 0);
  a.andi(r(6), r(5), 1);
  a.bne(r(6), r(0), odd);
  a.add(r(3), r(3), r(5));
  a.sw(r(3), r(4), 0);
  a.j(cont);
  a.Bind(odd);
  a.jal(helper);
  a.xor_(r(3), r(3), r(8));
  a.Bind(cont);
  a.srli(r(7), r(5), 9);
  a.add(r(2), r(2), r(7));
  a.addi(r(2), r(2), 1);
  a.addi(r(1), r(1), -1);
  a.bne(r(1), r(0), loop);
  a.out(r(3));
  a.halt();
  a.Finish();
  return prog;
}

// ---- structure-size sweeps (oracle-exact everywhere) ----

struct SizeCase {
  std::uint32_t ifq, ruu;
};

class StructureSizes : public testing::TestWithParam<SizeCase> {};

TEST_P(StructureSizes, OracleExactOnBranchyMemKernel) {
  CoreConfig cfg = BaselineConfig(GetParam().ifq);
  cfg.ruu_size = GetParam().ruu;
  ExpectOracleExact(BranchyMemProgram(), cfg);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StructureSizes,
    testing::Values(SizeCase{4, 4}, SizeCase{8, 16}, SizeCase{16, 8},
                    SizeCase{32, 128}, SizeCase{128, 32}, SizeCase{512, 256}),
    [](const testing::TestParamInfo<SizeCase>& info) {
      return "ifq" + std::to_string(info.param.ifq) + "_ruu" +
             std::to_string(info.param.ruu);
    });

TEST(CoreWidths, NarrowIssueAndCommitStillExact) {
  CoreConfig cfg = BaselineConfig(128);
  cfg.issue_width = 1;
  cfg.commit_width = 1;
  cfg.decode_width = 1;
  cfg.fetch_width = 1;
  ExpectOracleExact(BranchyMemProgram(), cfg);
}

TEST(CoreWidths, WiderMachineIsNotSlower) {
  const Program prog = BranchyMemProgram();
  CoreConfig narrow = BaselineConfig(128);
  narrow.issue_width = 2;
  narrow.commit_width = 2;
  narrow.decode_width = 2;
  Core n(prog, narrow);
  const RunResult rn = n.Run(UINT64_MAX, 400'000'000);
  Core w(prog, BaselineConfig(128));
  const RunResult rw = w.Run(UINT64_MAX, 400'000'000);
  ASSERT_TRUE(rn.halted && rw.halted);
  EXPECT_LE(rw.cycles, rn.cycles);
}

// ---- FU pool pressure ----

TEST(FuPools, SingleAluSerializesIndependentAdds) {
  Program prog;
  Assembler a(&prog);
  Label loop = a.NewLabel();
  a.li(r(1), 2000);
  a.Bind(loop);
  for (int i = 2; i <= 7; ++i) a.addi(r(i), r(i), 1);  // 6 independent adds
  a.addi(r(1), r(1), -1);
  a.bne(r(1), r(0), loop);
  a.halt();
  a.Finish();

  CoreConfig one_alu = BaselineConfig(128);
  one_alu.fu.int_alu = 1;
  Core c1(prog, one_alu);
  const RunResult r1 = c1.Run(UINT64_MAX, 100'000'000);
  Core c4(prog, BaselineConfig(128));
  const RunResult r4 = c4.Run(UINT64_MAX, 100'000'000);
  ASSERT_TRUE(r1.halted && r4.halted);
  // 8 ALU ops per iteration at 1/cycle vs 4/cycle.
  EXPECT_GT(r1.cycles, r4.cycles * 2);
}

TEST(FuPools, MemPortLimitThrottlesParallelLoads) {
  Program prog;
  prog.AddSegment(0x200000, 1 << 16);
  Assembler a(&prog);
  Label loop = a.NewLabel();
  a.li(r(1), 2000);
  a.la(r(9), 0x200000);
  a.Bind(loop);
  for (int i = 2; i <= 7; ++i) a.lw(r(i), r(9), i * 4);  // 6 parallel L1 hits
  a.addi(r(1), r(1), -1);
  a.bne(r(1), r(0), loop);
  a.halt();
  a.Finish();

  CoreConfig one_port = BaselineConfig(128);
  one_port.fu.mem_ports = 1;
  Core c1(prog, one_port);
  const RunResult r1 = c1.Run(UINT64_MAX, 100'000'000);
  CoreConfig four_ports = BaselineConfig(128);
  four_ports.fu.mem_ports = 4;
  Core c4(prog, four_ports);
  const RunResult r4 = c4.Run(UINT64_MAX, 100'000'000);
  ASSERT_TRUE(r1.halted && r4.halted);
  EXPECT_GT(r1.cycles, r4.cycles * 3 / 2);
}

TEST(FuPools, DivLatencyDominatesDivChain) {
  Program prog;
  Assembler a(&prog);
  Label loop = a.NewLabel();
  a.li(r(1), 500);
  a.li(r(2), 1'000'000'000);
  a.li(r(3), 3);
  a.li(r(6), 0x40000000);
  a.Bind(loop);
  a.div(r(2), r(2), r(3));  // dependent divide chain...
  a.or_(r(2), r(2), r(6));  // ...kept live and large across iterations
  a.addi(r(1), r(1), -1);
  a.bne(r(1), r(0), loop);
  a.halt();
  a.Finish();
  Core core(prog, BaselineConfig(128));
  const RunResult rr = core.Run(UINT64_MAX, 100'000'000);
  ASSERT_TRUE(rr.halted);
  // Each iteration carries a 20-cycle divide.
  EXPECT_GT(rr.cycles, 500u * 18);
}

// ---- SPEAR resource edges ----

TEST(SpearEdge, TinyPThreadRuuLosesInstancesButStaysExact) {
  GatherProgram g = BuildGather(10000, 1 << 20);
  Emulator emu(g.prog);
  emu.Run(10'000'000);

  CoreConfig cfg = SpearCoreConfig(128);
  cfg.spear.pthread_ruu_size = 4;  // practically no p-thread window
  Core core(g.prog, cfg);
  const RunResult rr = core.Run(UINT64_MAX, 200'000'000);
  ASSERT_TRUE(rr.halted);
  EXPECT_EQ(core.outputs(), emu.outputs());
  // With a 4-entry buffer the PE stalls constantly; the dual-delivery path
  // must record the lost instances.
  EXPECT_GT(core.stats().pthread_lost_to_dispatch, 0u);
}

TEST(SpearEdge, ZeroLiveInsStartsWithoutCopyCycles) {
  // A slice whose address chain starts from r0 has no live-ins.
  Program prog;
  prog.AddSegment(0x01000000, 1 << 22);
  Assembler a(&prog);
  Label loop = a.NewLabel();
  a.li(r(2), 20000);
  a.li(r(7), 99999);
  a.Bind(loop);
  const Pc p0 = a.Here();
  a.slli(r(8), r(7), 13);
  const Pc p1 = a.Here();
  a.xor_(r(7), r(7), r(8));
  const Pc p2 = a.Here();
  a.srli(r(8), r(7), 17);
  const Pc p3 = a.Here();
  a.xor_(r(7), r(7), r(8));
  const Pc p4 = a.Here();
  a.slli(r(8), r(7), 5);
  const Pc p5 = a.Here();
  a.xor_(r(7), r(7), r(8));
  const Pc p6 = a.Here();
  a.andi(r(9), r(7), (1 << 22) - 4);
  const Pc p7 = a.Here();
  a.ori(r(10), r(9), 0x01000000);
  const Pc p8 = a.Here();
  a.lw(r(3), r(10), 0);
  a.addi(r(2), r(2), -1);
  a.bne(r(2), r(0), loop);
  a.out(r(3));
  a.halt();
  a.Finish();
  PThreadSpec spec;
  spec.dload_pc = p8;
  spec.slice_pcs = {p0, p1, p2, p3, p4, p5, p6, p7, p8};
  spec.live_ins = {IntReg(7)};  // xorshift seed register
  prog.pthreads.push_back(spec);

  Emulator emu(prog);
  emu.Run(10'000'000);
  Core core(prog, SpearCoreConfig(128));
  const RunResult rr = core.Run(UINT64_MAX, 200'000'000);
  ASSERT_TRUE(rr.halted);
  EXPECT_EQ(core.outputs(), emu.outputs());
  EXPECT_GT(core.stats().triggers_fired, 0u);
}

TEST(SpearEdge, ExtractionBandwidthOneStillExact) {
  GatherProgram g = BuildGather(8000, 1 << 20);
  Emulator emu(g.prog);
  emu.Run(10'000'000);
  CoreConfig cfg = SpearCoreConfig(128);
  cfg.spear.extract_per_cycle = 1;
  Core core(g.prog, cfg);
  const RunResult rr = core.Run(UINT64_MAX, 200'000'000);
  ASSERT_TRUE(rr.halted);
  EXPECT_EQ(core.outputs(), emu.outputs());
}

// ---- stride prefetcher ----

TEST(StridePrefetch, SequentialStreamMissesCollapse) {
  Program prog;
  Assembler a(&prog);
  Label loop = a.NewLabel();
  a.li(r(1), 20000);
  a.la(r(2), 0x400000);
  a.Bind(loop);
  a.lw(r(3), r(2), 0);
  a.add(r(4), r(4), r(3));
  a.addi(r(2), r(2), 32);  // one load per L1 block
  a.addi(r(1), r(1), -1);
  a.bne(r(1), r(0), loop);
  a.halt();
  a.Finish();

  Core base(prog, BaselineConfig(128));
  base.Run(UINT64_MAX, 100'000'000);
  Core pf(prog, StridePrefetchConfig(128, 4));
  const RunResult rr = pf.Run(UINT64_MAX, 100'000'000);
  ASSERT_TRUE(rr.halted);
  EXPECT_GT(pf.stats().stride_prefetches, 10'000u);
  EXPECT_LT(pf.hierarchy().l1d().misses(kMainThread),
            base.hierarchy().l1d().misses(kMainThread) / 2);
  EXPECT_LT(rr.cycles, base.stats().cycles);
}

TEST(StridePrefetch, RandomAccessesGetNoHelp) {
  const GatherProgram g = BuildGather(10000, 1 << 20);
  Core base(g.prog, BaselineConfig(128));
  base.Run(UINT64_MAX, 100'000'000);
  Core pf(g.prog, StridePrefetchConfig(128, 2));
  pf.Run(UINT64_MAX, 100'000'000);
  // The irregular gather defeats stride prediction: misses barely move.
  const auto base_m = static_cast<double>(base.hierarchy().l1d().misses(kMainThread));
  const auto pf_m = static_cast<double>(pf.hierarchy().l1d().misses(kMainThread));
  EXPECT_GT(pf_m, base_m * 0.6);
}

TEST(StridePrefetch, SemanticsUntouched) {
  ExpectOracleExact(BranchyMemProgram(), StridePrefetchConfig(128, 4));
}

// ---- chaining trigger extension ----

TEST(ChainingTrigger, ChainsSessionsAndStaysExact) {
  const GatherProgram g = BuildGather(20000, 1 << 20);
  Emulator emu(g.prog);
  emu.Run(10'000'000);

  CoreConfig cfg = SpearCoreConfig(256);
  cfg.spear.chaining_trigger = true;
  Core core(g.prog, cfg);
  const RunResult rr = core.Run(UINT64_MAX, 200'000'000);
  ASSERT_TRUE(rr.halted);
  EXPECT_EQ(core.outputs(), emu.outputs());

  Core stock(g.prog, SpearCoreConfig(256));
  stock.Run(UINT64_MAX, 200'000'000);
  EXPECT_GE(core.stats().triggers_fired, stock.stats().triggers_fired);
}

TEST(ChainingTrigger, OffByDefault) {
  const GatherProgram g = BuildGather(8000, 1 << 20);
  Core core(g.prog, SpearCoreConfig(128));
  core.Run(UINT64_MAX, 200'000'000);
  EXPECT_EQ(core.stats().chained_triggers, 0u);
}

// ---- misc pipeline edges ----

TEST(CoreEdge, ImmediateHalt) {
  Program prog;
  Assembler a(&prog);
  a.halt();
  a.Finish();
  Core core(prog, BaselineConfig(128));
  const RunResult rr = core.Run(UINT64_MAX, 1000);
  EXPECT_TRUE(rr.halted);
  EXPECT_EQ(rr.instructions, 1u);
}

TEST(CoreEdge, HaltDirectlyAfterMispredictedBranch) {
  // The branch mispredicts on its last iteration; the halt sits on the
  // fall-through path that fetch only reaches after recovery.
  Program prog;
  Assembler a(&prog);
  Label loop = a.NewLabel();
  a.li(r(1), 100);
  a.Bind(loop);
  a.addi(r(1), r(1), -1);
  a.bne(r(1), r(0), loop);
  a.halt();
  a.Finish();
  Core core(prog, BaselineConfig(128));
  const RunResult rr = core.Run(UINT64_MAX, 1'000'000);
  ASSERT_TRUE(rr.halted);
  EXPECT_EQ(rr.instructions, 202u);  // li + 100*(addi+bne) + halt
}

TEST(CoreEdge, DeepCallNestingOverflowsRasButStaysExact) {
  // 16 nested calls against an 8-entry RAS: predictions go wrong, results
  // must not.
  Program prog;
  Assembler a(&prog);
  std::vector<Label> fns;
  Label start = a.NewLabel();
  a.j(start);
  for (int depth = 0; depth < 16; ++depth) fns.push_back(a.NewLabel());
  for (int depth = 15; depth >= 0; --depth) {
    a.Bind(fns[static_cast<std::size_t>(depth)]);
    a.addi(r(4), r(4), 1);
    if (depth < 15) {
      // Save ra on the stack, call deeper, restore.
      a.addi(r(29), r(29), -4);
      a.sw(kRegRa, r(29), 0);
      a.jal(fns[static_cast<std::size_t>(depth + 1)]);
      a.lw(kRegRa, r(29), 0);
      a.addi(r(29), r(29), 4);
    }
    a.ret();
  }
  a.Bind(start);
  Label loop = a.NewLabel();
  a.li(r(1), 50);
  a.Bind(loop);
  a.jal(fns[0]);
  a.addi(r(1), r(1), -1);
  a.bne(r(1), r(0), loop);
  a.out(r(4));
  a.halt();
  a.Finish();
  ExpectOracleExact(prog, BaselineConfig(128));
}

TEST(CoreEdge, StatsLoadsAndStoresCounted) {
  Program prog;
  prog.AddSegment(0x200000, 64);
  Assembler a(&prog);
  a.la(r(1), 0x200000);
  a.lw(r(2), r(1), 0);
  a.sw(r(2), r(1), 4);
  a.lw(r(3), r(1), 4);
  a.halt();
  a.Finish();
  Core core(prog, BaselineConfig(128));
  core.Run(UINT64_MAX, 10'000);
  EXPECT_EQ(core.stats().committed_loads, 2u);
  EXPECT_EQ(core.stats().committed_stores, 1u);
}

}  // namespace
}  // namespace spear
