// Workload-suite tests: every kernel builds deterministically, runs, and
// (the strongest property in the repository) commits exactly the
// emulator's instruction stream on the pipeline — both baseline and
// SPEAR-annotated.
#include <gtest/gtest.h>

#include <string>

#include "cpu/core.h"
#include "eval/harness.h"
#include "sim/emulator.h"
#include "workloads/workload.h"

namespace spear {
namespace {

class EveryWorkload : public testing::TestWithParam<const char*> {};

TEST_P(EveryWorkload, BuildsNonTrivialProgram) {
  WorkloadConfig cfg;
  const Program prog = BuildWorkloadProgram(GetParam(), cfg);
  EXPECT_GT(prog.text.size(), 10u);
  EXPECT_FALSE(prog.data.empty());
  EXPECT_TRUE(prog.ContainsPc(prog.entry));
  EXPECT_TRUE(prog.pthreads.empty());  // annotations come from the compiler
}

TEST_P(EveryWorkload, DeterministicForSeed) {
  WorkloadConfig cfg;
  cfg.seed = 7;
  const Program a = BuildWorkloadProgram(GetParam(), cfg);
  const Program b = BuildWorkloadProgram(GetParam(), cfg);
  ASSERT_EQ(a.text.size(), b.text.size());
  for (std::size_t i = 0; i < a.text.size(); ++i) EXPECT_EQ(a.text[i], b.text[i]);
  ASSERT_EQ(a.data.size(), b.data.size());
  for (std::size_t i = 0; i < a.data.size(); ++i) {
    EXPECT_EQ(a.data[i].bytes, b.data[i].bytes);
  }
}

TEST_P(EveryWorkload, SeedChangesDataNotText) {
  WorkloadConfig s1, s2;
  s1.seed = 1;
  s2.seed = 2;
  const Program a = BuildWorkloadProgram(GetParam(), s1);
  const Program b = BuildWorkloadProgram(GetParam(), s2);
  ASSERT_EQ(a.text.size(), b.text.size());
  for (std::size_t i = 0; i < a.text.size(); ++i) {
    EXPECT_EQ(a.text[i], b.text[i]) << "text must be seed-independent";
  }
  bool any_data_differs = false;
  for (std::size_t i = 0; i < a.data.size() && !any_data_differs; ++i) {
    any_data_differs = a.data[i].bytes != b.data[i].bytes;
  }
  EXPECT_TRUE(any_data_differs);
}

TEST_P(EveryWorkload, RunsOnEmulator) {
  WorkloadConfig cfg;
  const Program prog = BuildWorkloadProgram(GetParam(), cfg);
  Emulator emu(prog);
  const std::uint64_t executed = emu.Run(200'000);
  // Either ran the full budget or halted cleanly before it.
  EXPECT_TRUE(executed == 200'000 || emu.halted());
  EXPECT_GT(executed, 10'000u) << "kernel too short to evaluate";
}

TEST_P(EveryWorkload, PipelineMatchesEmulatorPrefix) {
  WorkloadConfig cfg;
  const Program prog = BuildWorkloadProgram(GetParam(), cfg);
  constexpr std::uint64_t kPrefix = 30'000;

  Emulator emu(prog);
  std::vector<Pc> oracle;
  oracle.reserve(kPrefix);
  while (!emu.halted() && oracle.size() < kPrefix) {
    oracle.push_back(emu.pc());
    emu.Step();
  }

  Core core(prog, BaselineConfig(128));
  core.set_trace_commits(true);
  core.Run(oracle.size(), 50'000'000);
  ASSERT_GE(core.commit_trace().size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    ASSERT_EQ(core.commit_trace()[i], oracle[i])
        << GetParam() << " diverged at instruction " << i;
  }
}

TEST_P(EveryWorkload, SpearAnnotatedRunStaysExact) {
  EvalOptions opt;
  opt.sim_instrs = 30'000;
  opt.compiler.profiler.max_instrs = 300'000;
  const PreparedWorkload pw = PrepareWorkload(GetParam(), opt);

  Emulator emu(pw.plain);
  std::vector<Pc> oracle;
  while (!emu.halted() && oracle.size() < opt.sim_instrs) {
    oracle.push_back(emu.pc());
    emu.Step();
  }

  Core core(pw.annotated, SpearCoreConfig(128));
  core.set_trace_commits(true);
  core.Run(oracle.size(), 50'000'000);
  ASSERT_GE(core.commit_trace().size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    ASSERT_EQ(core.commit_trace()[i], oracle[i])
        << GetParam() << " diverged at instruction " << i;
  }
}

TEST_P(EveryWorkload, CompilerFindsDelinquentLoads) {
  EvalOptions opt;
  opt.compiler.profiler.max_instrs = 400'000;
  const PreparedWorkload pw = PrepareWorkload(GetParam(), opt);
  // Every kernel in the suite is memory-intensive enough for at least one
  // p-thread (field's scan is the lightest but still crosses the L2).
  EXPECT_FALSE(pw.annotated.pthreads.empty()) << GetParam();
  for (const PThreadSpec& spec : pw.annotated.pthreads) {
    EXPECT_FALSE(spec.slice_pcs.empty());
    EXPECT_TRUE(spec.InSlice(spec.dload_pc));
    EXPECT_TRUE(std::is_sorted(spec.slice_pcs.begin(), spec.slice_pcs.end()));
    for (Pc pc : spec.slice_pcs) {
      EXPECT_TRUE(pw.annotated.ContainsPc(pc));
      EXPECT_FALSE(IsControl(pw.annotated.At(pc).op));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, EveryWorkload,
    testing::Values("pointer", "update", "nbh", "tr", "matrix", "field", "dm",
                    "ray", "fft", "gzip", "mcf", "vpr", "bzip2", "equake",
                    "art"),
    [](const testing::TestParamInfo<const char*>& info) {
      return std::string(info.param);
    });

TEST(Registry, FifteenWorkloadsInFourSuites) {
  const auto& all = AllWorkloads();
  EXPECT_EQ(all.size(), 15u);
  int stress = 0, dis = 0, cint = 0, cfp = 0;
  for (const WorkloadInfo& w : all) {
    const std::string suite = w.suite;
    stress += suite == "Stressmark";
    dis += suite == "DIS";
    cint += suite == "SPEC CINT2000";
    cfp += suite == "SPEC CFP2000";
  }
  EXPECT_EQ(stress, 6);
  EXPECT_EQ(dis, 3);
  EXPECT_EQ(cint, 4);
  EXPECT_EQ(cfp, 2);
}

TEST(Registry, FindWorkloadReturnsMatch) {
  EXPECT_STREQ(FindWorkload("mcf").name, "mcf");
  EXPECT_STREQ(FindWorkload("art").suite, "SPEC CFP2000");
}

}  // namespace
}  // namespace spear
