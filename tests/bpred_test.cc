#include <gtest/gtest.h>

#include "bpred/bpred.h"
#include "common/rng.h"
#include "isa/regs.h"

namespace spear {
namespace {

Instruction MakeBranch(Pc target) {
  return Instruction{Opcode::kBne, 0, IntReg(1), IntReg(2),
                     static_cast<std::int32_t>(target)};
}

TEST(Bimodal, InitialStateIsWeaklyTaken) {
  BranchPredictor bp(BpredConfig{});
  const Instruction br = MakeBranch(0x1000);
  EXPECT_TRUE(bp.Predict(0x2000, br).taken);
  EXPECT_EQ(bp.Predict(0x2000, br).target, 0x1000u);
}

TEST(Bimodal, LearnsAlwaysNotTaken) {
  BranchPredictor bp(BpredConfig{});
  const Instruction br = MakeBranch(0x1000);
  for (int i = 0; i < 4; ++i) bp.Update(0x2000, br, false, 0x2008);
  const BranchPrediction p = bp.Predict(0x2000, br);
  EXPECT_FALSE(p.taken);
  EXPECT_EQ(p.target, 0x2008u);  // fallthrough
}

TEST(Bimodal, HysteresisNeedsTwoFlips) {
  BranchPredictor bp(BpredConfig{});
  const Instruction br = MakeBranch(0x1000);
  // Saturate taken.
  for (int i = 0; i < 4; ++i) bp.Update(0x2000, br, true, 0x1000);
  bp.Update(0x2000, br, false, 0x2008);
  EXPECT_TRUE(bp.Predict(0x2000, br).taken);  // one not-taken isn't enough
  bp.Update(0x2000, br, false, 0x2008);
  EXPECT_FALSE(bp.Predict(0x2000, br).taken);
}

TEST(Bimodal, DistinctPcsUseDistinctCounters) {
  BranchPredictor bp(BpredConfig{});
  const Instruction br = MakeBranch(0x1000);
  for (int i = 0; i < 4; ++i) bp.Update(0x2000, br, false, 0x2008);
  for (int i = 0; i < 4; ++i) bp.Update(0x2008, br, true, 0x1000);
  EXPECT_FALSE(bp.Predict(0x2000, br).taken);
  EXPECT_TRUE(bp.Predict(0x2008, br).taken);
}

TEST(Bimodal, AliasingWrapsAtTableSize) {
  BpredConfig cfg;
  cfg.table_entries = 16;
  BranchPredictor bp(cfg);
  const Instruction br = MakeBranch(0x1000);
  // PCs 0x0 and 16*8 = 0x80 alias in a 16-entry table.
  for (int i = 0; i < 4; ++i) bp.Update(0x0, br, false, 0x8);
  EXPECT_FALSE(bp.Predict(0x80, br).taken);
}

TEST(Predictor, DirectJumpAlwaysPredictedToTarget) {
  BranchPredictor bp(BpredConfig{});
  Instruction j{Opcode::kJ, 0, 0, 0, 0x3000};
  const BranchPrediction p = bp.Predict(0x1000, j);
  EXPECT_TRUE(p.taken);
  EXPECT_EQ(p.target, 0x3000u);
}

TEST(Predictor, RasPredictsReturnAddress) {
  BranchPredictor bp(BpredConfig{});
  Instruction call{Opcode::kJal, kRegRa, 0, 0, 0x3000};
  bp.Predict(0x1000, call);  // pushes 0x1008
  Instruction ret{Opcode::kJr, 0, kRegRa, 0, 0};
  EXPECT_EQ(bp.Predict(0x3040, ret).target, 0x1008u);
}

TEST(Predictor, RasNestsLikeAStack) {
  BranchPredictor bp(BpredConfig{});
  Instruction call{Opcode::kJal, kRegRa, 0, 0, 0x3000};
  bp.Predict(0x1000, call);  // push 0x1008
  bp.Predict(0x2000, call);  // push 0x2008
  Instruction ret{Opcode::kJr, 0, kRegRa, 0, 0};
  EXPECT_EQ(bp.Predict(0x3000, ret).target, 0x2008u);
  EXPECT_EQ(bp.Predict(0x3000, ret).target, 0x1008u);
}

TEST(Predictor, BtbLearnsIndirectTargets) {
  BranchPredictor bp(BpredConfig{});
  Instruction ijmp{Opcode::kJr, 0, IntReg(5), 0, 0};  // not a return (r5)
  // Unknown: falls back to fallthrough.
  EXPECT_EQ(bp.Predict(0x1000, ijmp).target, 0x1008u);
  bp.Update(0x1000, ijmp, true, 0x4000);
  EXPECT_EQ(bp.Predict(0x1000, ijmp).target, 0x4000u);
}

TEST(StaticBtfn, BackwardTakenForwardNot) {
  BpredConfig cfg;
  cfg.kind = BpredKind::kStaticBtfn;
  BranchPredictor bp(cfg);
  EXPECT_TRUE(bp.Predict(0x2000, MakeBranch(0x1000)).taken);   // backward
  EXPECT_FALSE(bp.Predict(0x2000, MakeBranch(0x3000)).taken);  // forward
}

TEST(AlwaysTaken, PredictsTaken) {
  BpredConfig cfg;
  cfg.kind = BpredKind::kAlwaysTaken;
  BranchPredictor bp(cfg);
  EXPECT_TRUE(bp.Predict(0x2000, MakeBranch(0x3000)).taken);
}

// Property: on a strongly biased branch stream, bimodal accuracy must be
// close to the bias; gshare must learn a strict alternation pattern that
// bimodal cannot.
TEST(PredictorProperty, BimodalTracksBias) {
  BranchPredictor bp(BpredConfig{});
  const Instruction br = MakeBranch(0x1000);
  Rng rng(11);
  int correct = 0;
  const int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    const bool actual = rng.Chance(0.95);
    correct += (bp.Predict(0x2000, br).taken == actual);
    bp.Update(0x2000, br, actual, actual ? 0x1000 : 0x2008);
  }
  EXPECT_GT(correct, kTrials * 90 / 100);
}

TEST(PredictorProperty, GshareLearnsAlternation) {
  BpredConfig cfg;
  cfg.kind = BpredKind::kGshare;
  BranchPredictor bp(cfg);
  const Instruction br = MakeBranch(0x1000);
  int correct_tail = 0;
  for (int i = 0; i < 2000; ++i) {
    const bool actual = (i % 2) == 0;
    const bool predicted = bp.Predict(0x2000, br).taken;
    if (i >= 1000) correct_tail += (predicted == actual);
    bp.Update(0x2000, br, actual, actual ? 0x1000 : 0x2008);
  }
  EXPECT_GT(correct_tail, 950);  // near-perfect once history is learned
}

}  // namespace
}  // namespace spear
