// Lockstep co-simulation checker tests (DESIGN.md §11): truthful commit
// records pass, every corrupted field is pinpointed, the checker latches,
// a real Core run checks clean end to end, fault injection proves the
// whole divergence path can fire, and the commit trace stays bounded.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <vector>

#include "cosim/cosim.h"
#include "cpu/core.h"
#include "eval/harness.h"
#include "isa/assembler.h"
#include "sim/emulator.h"
#include "workloads/workload.h"

namespace spear {
namespace {

using cosim::CommitRecord;
using cosim::CosimChecker;
using cosim::DivergentField;

// Mixed int/FP/memory/branch kernel with a store the tests can corrupt.
Program MixedProgram() {
  Program prog;
  Assembler a(&prog);
  DataSegment& seg = prog.AddSegment(0x8000, 64);
  PokeU32(seg, 0x8000, 11);
  PokeU32(seg, 0x8004, 22);
  PokeF64(seg, 0x8010, 2.5);

  a.la(r(10), 0x8000);
  a.li(r(1), 5);
  a.li(r(2), 0);
  Label loop = a.NewLabel();
  a.Bind(loop);
  a.lw(r(3), r(10), 0);
  a.add(r(2), r(2), r(3));
  a.sw(r(2), r(10), 4);
  a.ldf(f(1), r(10), 16);
  a.fadd(f(2), f(2), f(1));
  a.stf(f(2), r(10), 24);
  a.addi(r(1), r(1), -1);
  a.bne(r(1), r(0), loop);
  a.cvtfi(r(4), f(2));
  a.out(r(4));
  a.halt();
  a.Finish();
  return prog;
}

// Replays `prog` on a reference emulator and produces the records the
// core would deliver: dispatch-time functional result plus the dest value
// and store payload read back right after execution.
std::vector<CommitRecord> TruthfulRecords(const Program& prog) {
  std::vector<CommitRecord> recs;
  Emulator emu(prog);
  while (!emu.halted() && recs.size() < 100'000) {
    CommitRecord rec;
    rec.pc = emu.pc();
    const StepInfo si = emu.Step();
    rec.instr = si.instr;
    rec.exec = si.result;
    if (const auto rd = DestOf(rec.instr)) {
      if (IsFpReg(*rd)) {
        rec.fp_dest = emu.ReadFpReg(*rd);
      } else {
        rec.int_dest = emu.ReadIntReg(*rd);
      }
    }
    if (rec.exec.is_store) {
      switch (rec.instr.op) {
        case Opcode::kSw:
          rec.store_u32 = emu.memory().ReadU32(rec.exec.mem_addr);
          break;
        case Opcode::kSb:
          rec.store_u32 = emu.memory().ReadU8(rec.exec.mem_addr);
          break;
        case Opcode::kStf:
          rec.store_f64 = emu.memory().ReadF64(rec.exec.mem_addr);
          break;
        default:
          break;
      }
    }
    recs.push_back(rec);
  }
  EXPECT_TRUE(emu.halted());
  return recs;
}

// Feeds records, optionally corrupting one first, and returns the field
// the checker blamed (kNone when it stayed clean).
DivergentField FeedWithCorruption(
    const Program& prog, std::vector<CommitRecord> recs, std::size_t at,
    void (*corrupt)(CommitRecord&)) {
  CosimChecker checker(prog);
  if (corrupt != nullptr) corrupt(recs[at]);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const bool accepted = checker.OnCommit(recs[i]);
    if (corrupt != nullptr && i == at) {
      EXPECT_FALSE(accepted) << "corrupted record #" << i << " accepted";
    } else if (checker.ok()) {
      EXPECT_TRUE(accepted) << "truthful record #" << i << " rejected";
    }
  }
  if (!checker.ok()) {
    EXPECT_FALSE(checker.Summary().empty());
    EXPECT_EQ(checker.Summary().rfind("cosim divergence: ", 0), 0u)
        << checker.Summary();
    EXPECT_NE(checker.Report().find("=== COSIM DIVERGENCE ==="),
              std::string::npos);
    return checker.divergence()->field;
  }
  return DivergentField::kNone;
}

TEST(CosimChecker, TruthfulStreamPassesAndCounts) {
  const Program prog = MixedProgram();
  const std::vector<CommitRecord> recs = TruthfulRecords(prog);
  ASSERT_GT(recs.size(), 20u);
  CosimChecker checker(prog);
  for (const CommitRecord& rec : recs) {
    ASSERT_TRUE(checker.OnCommit(rec));
  }
  EXPECT_TRUE(checker.ok());
  EXPECT_EQ(checker.stats().commits_checked, recs.size());
  EXPECT_EQ(checker.stats().pthread_commits_checked, 0u);
  EXPECT_EQ(checker.stats().divergences, 0u);
  EXPECT_TRUE(checker.Summary().empty());
  EXPECT_NE(checker.Report().find("OK"), std::string::npos);
}

TEST(CosimChecker, WrongIntDestValueIsPinpointed) {
  const Program prog = MixedProgram();
  std::vector<CommitRecord> recs = TruthfulRecords(prog);
  // Find a committed lw (int dest) and flip one result bit.
  std::size_t at = 0;
  while (recs[at].instr.op != Opcode::kLw) ++at;
  EXPECT_EQ(FeedWithCorruption(prog, recs, at,
                               [](CommitRecord& r) { r.int_dest ^= 0x4; }),
            DivergentField::kIntDest);
}

TEST(CosimChecker, WrongFpDestValueIsPinpointedBitwise) {
  const Program prog = MixedProgram();
  std::vector<CommitRecord> recs = TruthfulRecords(prog);
  std::size_t at = 0;
  while (recs[at].instr.op != Opcode::kFadd) ++at;
  EXPECT_EQ(FeedWithCorruption(prog, recs, at,
                               [](CommitRecord& r) {
                                 std::uint64_t bits;
                                 std::memcpy(&bits, &r.fp_dest, sizeof(bits));
                                 bits ^= 1;  // one ulp: bitwise compare trips
                                 std::memcpy(&r.fp_dest, &bits, sizeof(bits));
                               }),
            DivergentField::kFpDest);
}

TEST(CosimChecker, WrongStoreDataIsPinpointed) {
  const Program prog = MixedProgram();
  std::vector<CommitRecord> recs = TruthfulRecords(prog);
  std::size_t at = 0;
  while (recs[at].instr.op != Opcode::kSw) ++at;
  EXPECT_EQ(FeedWithCorruption(prog, recs, at,
                               [](CommitRecord& r) { r.store_u32 += 1; }),
            DivergentField::kStoreData);
}

TEST(CosimChecker, WrongBranchSuccessorIsPinpointed) {
  const Program prog = MixedProgram();
  std::vector<CommitRecord> recs = TruthfulRecords(prog);
  std::size_t at = 0;
  while (recs[at].instr.op != Opcode::kBne) ++at;
  EXPECT_EQ(FeedWithCorruption(prog, recs, at,
                               [](CommitRecord& r) {
                                 r.exec.next_pc += kInstrBytes;
                               }),
            DivergentField::kNextPc);
}

TEST(CosimChecker, WrongCommitPcIsPinpointed) {
  const Program prog = MixedProgram();
  std::vector<CommitRecord> recs = TruthfulRecords(prog);
  EXPECT_EQ(FeedWithCorruption(prog, recs, 5,
                               [](CommitRecord& r) { r.pc += kInstrBytes; }),
            DivergentField::kPc);
}

TEST(CosimChecker, PThreadArchWriteTripsTheInvariant) {
  const Program prog = MixedProgram();
  const std::vector<CommitRecord> recs = TruthfulRecords(prog);
  CosimChecker checker(prog);
  // Interleave a clean p-thread retire: audited, not stepped.
  CommitRecord pt = recs[0];
  pt.tid = kPThread;
  pt.pthread_arch_clobber = false;
  ASSERT_TRUE(checker.OnCommit(pt));
  EXPECT_EQ(checker.stats().pthread_commits_checked, 1u);
  EXPECT_EQ(checker.stats().commits_checked, 0u);
  // A clobbering one must trip the invariant.
  pt.pthread_arch_clobber = true;
  EXPECT_FALSE(checker.OnCommit(pt));
  ASSERT_FALSE(checker.ok());
  EXPECT_EQ(checker.divergence()->field, DivergentField::kPThreadArchWrite);
}

TEST(CosimChecker, CommitPastHaltIsCaught) {
  const Program prog = MixedProgram();
  std::vector<CommitRecord> recs = TruthfulRecords(prog);
  CosimChecker checker(prog);
  for (const CommitRecord& rec : recs) ASSERT_TRUE(checker.OnCommit(rec));
  // The oracle has halted; any further commit is bogus.
  EXPECT_FALSE(checker.OnCommit(recs.front()));
  ASSERT_FALSE(checker.ok());
  EXPECT_EQ(checker.divergence()->field, DivergentField::kHaltedPastEnd);
}

TEST(CosimChecker, FirstDivergenceLatches) {
  const Program prog = MixedProgram();
  std::vector<CommitRecord> recs = TruthfulRecords(prog);
  CosimChecker checker(prog);
  CommitRecord bad = recs[0];
  bad.pc += kInstrBytes;
  EXPECT_FALSE(checker.OnCommit(bad));
  const DivergentField first = checker.divergence()->field;
  // Later records — even truthful ones — are refused and don't re-judge.
  EXPECT_FALSE(checker.OnCommit(recs[0]));
  EXPECT_EQ(checker.divergence()->field, first);
  EXPECT_EQ(checker.stats().divergences, 1u);
}

TEST(CosimCore, CleanRunChecksEveryCommit) {
  const Program prog = MixedProgram();
  Core core(prog, BaselineConfig(16));
  CosimChecker checker(prog);
  core.set_cosim(&checker);
  const RunResult rr = core.Run(UINT64_MAX, 1'000'000);
  ASSERT_TRUE(rr.halted);
  EXPECT_FALSE(core.cosim_diverged());
  EXPECT_TRUE(checker.ok());
  EXPECT_EQ(checker.stats().commits_checked, rr.instructions);
}

TEST(CosimCore, WorkloadRunsCleanUnderChecker) {
  WorkloadConfig wcfg;
  wcfg.seed = 42;
  const Program prog = BuildWorkloadProgram("mcf", wcfg);
  Core core(prog, BaselineConfig(128));
  CosimChecker checker(prog);
  core.set_cosim(&checker);
  core.Run(20'000, 10'000'000);
  EXPECT_TRUE(checker.ok()) << checker.Report();
  EXPECT_GE(checker.stats().commits_checked, 20'000u);
}

// A sink that vetoes the Kth commit, standing in for a divergence: the
// core must stop committing and latch the verdict.
class VetoSink : public cosim::CommitSink {
 public:
  explicit VetoSink(std::uint64_t veto_at) : veto_at_(veto_at) {}
  bool OnCommit(const CommitRecord&) override {
    return ++seen_ != veto_at_;
  }
  std::uint64_t seen() const { return seen_; }

 private:
  std::uint64_t veto_at_;
  std::uint64_t seen_ = 0;
};

TEST(CosimCore, DivergenceStopsTheRun) {
  const Program prog = MixedProgram();
  VetoSink sink(10);
  Core core(prog, BaselineConfig(16));
  core.set_cosim(&sink);
  const RunResult rr = core.Run(UINT64_MAX, 1'000'000);
  EXPECT_TRUE(core.cosim_diverged());
  EXPECT_FALSE(rr.halted);
  // The vetoed instruction did not retire; nothing after it committed.
  EXPECT_EQ(rr.instructions, 9u);
  EXPECT_EQ(sink.seen(), 10u);
}

TEST(CosimCore, FaultInjectionFiresTheChecker) {
  const Program prog = MixedProgram();
  CosimChecker::Config cc;
  cc.inject_at = 7;
  CosimChecker checker(prog, cc);
  Core core(prog, BaselineConfig(16));
  core.set_cosim(&checker);
  core.Run(UINT64_MAX, 1'000'000);
  EXPECT_TRUE(core.cosim_diverged());
  ASSERT_FALSE(checker.ok());
  EXPECT_EQ(checker.divergence()->commit_index, 7u);
  EXPECT_NE(checker.divergence()->field, DivergentField::kNone);
}

TEST(CosimHarness, RunConfigAttachesCheckerAndReportsDivergence) {
  EvalOptions opt;
  opt.sim_instrs = 15'000;
  opt.compiler.profiler.max_instrs = 100'000;
  const PreparedWorkload pw = PrepareWorkload("pointer", opt);

  CoreConfig base = BaselineConfig(128);
  base.cosim_check = true;
  const RunStats clean = RunConfig(pw.plain, base, opt);
  EXPECT_FALSE(clean.cosim_diverged);
  EXPECT_GE(clean.cosim_checked, opt.sim_instrs);
  EXPECT_TRUE(clean.complete);

  // The spear config must audit p-thread retires on top of main commits.
  CoreConfig spear = SpearCoreConfig(256);
  spear.cosim_check = true;
  const RunStats helper = RunConfig(pw.annotated, spear, opt);
  EXPECT_FALSE(helper.cosim_diverged) << helper.cosim_report;
  EXPECT_TRUE(helper.complete);
}

TEST(CommitTrace, RingStaysBoundedAndKeepsTheTail) {
  const Program prog = MixedProgram();
  // Oracle commit stream for the whole program.
  std::vector<Pc> oracle;
  Emulator emu(prog);
  while (!emu.halted()) {
    oracle.push_back(emu.pc());
    emu.Step();
  }
  ASSERT_GT(oracle.size(), 8u);

  Core core(prog, BaselineConfig(16));
  core.set_trace_commits(true, 8);
  const RunResult rr = core.Run(UINT64_MAX, 1'000'000);
  ASSERT_TRUE(rr.halted);
  const std::vector<Pc> trace = core.commit_trace();
  ASSERT_EQ(trace.size(), 8u);
  EXPECT_EQ(core.commit_trace_dropped(), oracle.size() - 8);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(trace[i], oracle[oracle.size() - 8 + i]) << "tail slot " << i;
  }
}

}  // namespace
}  // namespace spear
