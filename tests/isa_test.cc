#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "isa/assembler.h"
#include "isa/binary.h"
#include "isa/disasm.h"
#include "isa/instruction.h"
#include "isa/opcode.h"
#include "isa/program.h"
#include "isa/regs.h"

namespace spear {
namespace {

TEST(Opcode, TableIsConsistent) {
  for (int i = 0; i < kNumOpcodes; ++i) {
    const auto op = static_cast<Opcode>(i);
    const OpInfo& info = GetOpInfo(op);
    EXPECT_NE(info.mnemonic, nullptr);
    if (IsLoad(op) || IsStore(op)) {
      EXPECT_GT(info.access_bytes, 0) << info.mnemonic;
    } else {
      EXPECT_EQ(info.access_bytes, 0) << info.mnemonic;
    }
    if (IsLoad(op)) {
      EXPECT_TRUE(WritesRd(op)) << info.mnemonic;
    }
    if (IsStore(op)) {
      EXPECT_FALSE(WritesRd(op)) << info.mnemonic;
    }
    EXPECT_FALSE(IsLoad(op) && IsStore(op)) << info.mnemonic;
    EXPECT_FALSE(IsCondBranch(op) && IsUncondJump(op)) << info.mnemonic;
  }
}

TEST(Regs, UnifiedIdMapping) {
  EXPECT_EQ(IntReg(0), 0);
  EXPECT_EQ(IntReg(31), 31);
  EXPECT_EQ(FpReg(0), 32);
  EXPECT_EQ(FpReg(31), 63);
  EXPECT_FALSE(IsFpReg(IntReg(31)));
  EXPECT_TRUE(IsFpReg(FpReg(0)));
  EXPECT_EQ(FpIndex(FpReg(17)), 17);
  EXPECT_EQ(RegName(IntReg(5)), "r5");
  EXPECT_EQ(RegName(FpReg(5)), "f5");
}

TEST(Instruction, EncodeDecodeRoundTripAllFields) {
  for (int i = 0; i < kNumOpcodes; ++i) {
    Instruction in;
    in.op = static_cast<Opcode>(i);
    in.rd = static_cast<RegId>((i * 7) % 64);
    in.rs = static_cast<RegId>((i * 13) % 64);
    in.rt = static_cast<RegId>((i * 29) % 64);
    in.imm = (i % 2) ? -123456 * i : 987654 + i;
    EXPECT_EQ(Decode(Encode(in)), in);
  }
}

TEST(Instruction, NegativeImmediateSurvivesEncoding) {
  Instruction in{Opcode::kAddi, IntReg(1), IntReg(2), 0, -1};
  EXPECT_EQ(Decode(Encode(in)).imm, -1);
  in.imm = -2147483647;
  EXPECT_EQ(Decode(Encode(in)).imm, -2147483647);
}

TEST(Instruction, SourcesOfStoreIncludesValueAndBase) {
  Instruction sw{Opcode::kSw, 0, IntReg(3), IntReg(4), 8};
  const SrcRegs s = SourcesOf(sw);
  ASSERT_EQ(s.count, 2);
  EXPECT_EQ(s.reg[0], IntReg(3));
  EXPECT_EQ(s.reg[1], IntReg(4));
}

TEST(Instruction, SourcesOfUnaryFpIsSingle) {
  Instruction fm{Opcode::kFmov, FpReg(1), FpReg(2), FpReg(2), 0};
  EXPECT_EQ(SourcesOf(fm).count, 1);
  Instruction cv{Opcode::kCvtif, FpReg(1), IntReg(2), IntReg(2), 0};
  EXPECT_EQ(SourcesOf(cv).count, 1);
}

TEST(Instruction, DestOfRespectsRegZero) {
  Instruction add{Opcode::kAdd, IntReg(0), IntReg(1), IntReg(2), 0};
  EXPECT_FALSE(DestOf(add).has_value());
  add.rd = IntReg(9);
  ASSERT_TRUE(DestOf(add).has_value());
  EXPECT_EQ(*DestOf(add), IntReg(9));
  Instruction sw{Opcode::kSw, 0, IntReg(3), IntReg(4), 8};
  EXPECT_FALSE(DestOf(sw).has_value());
}

TEST(Assembler, LabelForwardAndBackwardFixup) {
  Program prog;
  Assembler a(&prog);
  Label fwd = a.NewLabel();
  Label back = a.BindNew();
  a.addi(r(1), r(1), 1);
  a.beq(r(1), r(2), fwd);   // forward reference
  a.j(back);                // backward reference
  a.Bind(fwd);
  a.halt();
  a.Finish();

  // beq is instruction #1, its target must be the halt at #3.
  EXPECT_EQ(static_cast<Pc>(prog.text[1].imm), prog.PcOf(3));
  // j is instruction #2, its target is instruction #0.
  EXPECT_EQ(static_cast<Pc>(prog.text[2].imm), prog.PcOf(0));
  EXPECT_EQ(a.UnboundLabels(), 0);
}

TEST(Assembler, PseudoOpsExpandAsDocumented) {
  Program prog;
  Assembler a(&prog);
  a.li(r(4), -77);
  a.mov(r(5), r(4));
  a.Finish();
  EXPECT_EQ(prog.text[0].op, Opcode::kAddi);
  EXPECT_EQ(prog.text[0].rs, kRegZero);
  EXPECT_EQ(prog.text[0].imm, -77);
  EXPECT_EQ(prog.text[1].op, Opcode::kAddi);
  EXPECT_EQ(prog.text[1].imm, 0);
}

TEST(Program, PcIndexRoundTrip) {
  Program prog;
  Assembler a(&prog);
  for (int i = 0; i < 10; ++i) a.nop();
  a.Finish();
  for (InstrIndex i = 0; i < 10; ++i) {
    const Pc pc = prog.PcOf(i);
    EXPECT_TRUE(prog.ContainsPc(pc));
    EXPECT_EQ(prog.IndexOf(pc), i);
  }
  EXPECT_FALSE(prog.ContainsPc(prog.text_base + 4));  // misaligned
  EXPECT_FALSE(prog.ContainsPc(prog.EndPc()));
}

TEST(Program, DataSegmentPokes) {
  Program prog;
  DataSegment& seg = prog.AddSegment(0x100000, 64);
  PokeU32(seg, 0x100000, 0xdeadbeef);
  PokeU8(seg, 0x100010, 0xab);
  PokeF64(seg, 0x100020, 3.25);
  EXPECT_EQ(seg.bytes[0], 0xef);
  EXPECT_EQ(seg.bytes[3], 0xde);
  EXPECT_EQ(seg.bytes[0x10], 0xab);
  double back;
  __builtin_memcpy(&back, &seg.bytes[0x20], 8);
  EXPECT_DOUBLE_EQ(back, 3.25);
}

Program MakeRichProgram() {
  Program prog;
  Assembler a(&prog);
  Label loop = a.NewLabel();
  a.li(r(1), 5);
  a.Bind(loop);
  a.lw(r(2), r(1), 16);
  a.fadd(f(1), f(2), f(3));
  a.addi(r(1), r(1), -1);
  a.bne(r(1), r(0), loop);
  a.halt();
  a.Finish();
  DataSegment& seg = prog.AddSegment(0x200000, 128);
  PokeU32(seg, 0x200000, 42);
  PThreadSpec spec;
  spec.dload_pc = prog.PcOf(1);
  spec.slice_pcs = {prog.PcOf(0), prog.PcOf(1)};
  spec.live_ins = {IntReg(1)};
  spec.region_start = prog.PcOf(0);
  spec.region_end = prog.PcOf(4);
  spec.profile_misses = 123;
  spec.region_dcycles = 45.5;
  prog.pthreads.push_back(spec);
  return prog;
}

TEST(Binary, SerializeDeserializeRoundTrip) {
  const Program prog = MakeRichProgram();
  const Program back = DeserializeProgram(SerializeProgram(prog));

  EXPECT_EQ(back.text_base, prog.text_base);
  EXPECT_EQ(back.entry, prog.entry);
  ASSERT_EQ(back.text.size(), prog.text.size());
  for (std::size_t i = 0; i < prog.text.size(); ++i) {
    EXPECT_EQ(back.text[i], prog.text[i]) << "instr " << i;
  }
  ASSERT_EQ(back.data.size(), prog.data.size());
  EXPECT_EQ(back.data[0].base, prog.data[0].base);
  EXPECT_EQ(back.data[0].bytes, prog.data[0].bytes);
  ASSERT_EQ(back.pthreads.size(), 1u);
  const PThreadSpec& s = back.pthreads[0];
  EXPECT_EQ(s.dload_pc, prog.pthreads[0].dload_pc);
  EXPECT_EQ(s.slice_pcs, prog.pthreads[0].slice_pcs);
  EXPECT_EQ(s.live_ins, prog.pthreads[0].live_ins);
  EXPECT_EQ(s.profile_misses, 123u);
  EXPECT_DOUBLE_EQ(s.region_dcycles, 45.5);
}

TEST(Binary, FileRoundTrip) {
  const Program prog = MakeRichProgram();
  const std::string path = testing::TempDir() + "/spear_roundtrip.bin";
  WriteProgram(prog, path);
  const Program back = ReadProgram(path);
  EXPECT_EQ(back.text.size(), prog.text.size());
  EXPECT_EQ(back.pthreads.size(), 1u);
  std::remove(path.c_str());
}

TEST(Binary, SecretRangesRoundTrip) {
  Program prog = MakeRichProgram();
  prog.secret_ranges.push_back({0x2000, 0x100});
  prog.secret_ranges.push_back({0x400000, 64});
  const Program back = DeserializeProgram(SerializeProgram(prog));
  ASSERT_EQ(back.secret_ranges.size(), 2u);
  EXPECT_EQ(back.secret_ranges[0].base, 0x2000u);
  EXPECT_EQ(back.secret_ranges[0].size, 0x100u);
  EXPECT_EQ(back.secret_ranges[1].base, 0x400000u);
  EXPECT_EQ(back.secret_ranges[1].size, 64u);
}

TEST(Binary, Version2WithoutSecretsSectionStillLoads) {
  // A v3 binary with no secrets is a v2 binary plus a trailing zero u32:
  // patch the version field down and drop the tail to reconstruct the old
  // format on the wire.
  const Program prog = MakeRichProgram();
  std::vector<std::uint8_t> bytes = SerializeProgram(prog);
  ASSERT_GE(bytes.size(), 16u);
  bytes[8] = 2;  // version u32 (little-endian) follows the 8-byte magic
  bytes.resize(bytes.size() - 4);  // drop "nsecret = 0"
  const Program back = DeserializeProgram(bytes);
  EXPECT_EQ(back.text.size(), prog.text.size());
  EXPECT_EQ(back.pthreads.size(), prog.pthreads.size());
  EXPECT_TRUE(back.secret_ranges.empty());
}

TEST(Program, IsSecretAddrOverlapSemantics) {
  Program prog;
  prog.secret_ranges.push_back({0x1000, 0x10});
  EXPECT_TRUE(prog.IsSecretAddr(0x1000, 4));
  EXPECT_TRUE(prog.IsSecretAddr(0x100c, 4));
  EXPECT_FALSE(prog.IsSecretAddr(0x1010, 4));   // one past the end
  EXPECT_FALSE(prog.IsSecretAddr(0x0ffc, 4));   // ends at the base
  EXPECT_TRUE(prog.IsSecretAddr(0x0ffd, 4));    // straddles the base
  EXPECT_TRUE(prog.IsSecretAddr(0x100e, 4));    // straddles the end
  EXPECT_FALSE(prog.IsSecretAddr(0x2000, 4));
}

TEST(PThreadSpec, InSliceUsesSortedOrder) {
  PThreadSpec spec;
  spec.slice_pcs = {0x1000, 0x1010, 0x1030};
  EXPECT_TRUE(spec.InSlice(0x1000));
  EXPECT_TRUE(spec.InSlice(0x1030));
  EXPECT_FALSE(spec.InSlice(0x1008));
  EXPECT_FALSE(spec.InSlice(0x1040));
}

TEST(Disasm, FormatsRepresentativeInstructions) {
  EXPECT_EQ(Disassemble({Opcode::kAdd, IntReg(1), IntReg(2), IntReg(3), 0}),
            "add r1, r2, r3");
  EXPECT_EQ(Disassemble({Opcode::kAddi, IntReg(1), IntReg(2), 0, -4}),
            "addi r1, r2, -4");
  EXPECT_EQ(Disassemble({Opcode::kLw, IntReg(5), IntReg(3), 0, 16}),
            "lw r5, 16(r3)");
  EXPECT_EQ(Disassemble({Opcode::kSw, 0, IntReg(3), IntReg(7), 8}),
            "sw r7, 8(r3)");
  EXPECT_EQ(Disassemble({Opcode::kBeq, 0, IntReg(1), IntReg(2), 0x1040}),
            "beq r1, r2, 0x1040");
  EXPECT_EQ(Disassemble({Opcode::kJ, 0, 0, 0, 0x1000}), "j 0x1000");
  EXPECT_EQ(Disassemble({Opcode::kJr, 0, kRegRa, 0, 0}), "jr r31");
  EXPECT_EQ(Disassemble({Opcode::kFadd, FpReg(2), FpReg(0), FpReg(1), 0}),
            "fadd f2, f0, f1");
  EXPECT_EQ(Disassemble({Opcode::kFmov, FpReg(2), FpReg(0), FpReg(0), 0}),
            "fmov f2, f0");
  EXPECT_EQ(Disassemble({Opcode::kHalt, 0, 0, 0, 0}), "halt");
}

TEST(Disasm, EveryOpcodeRendersItsMnemonic) {
  for (int i = 0; i < kNumOpcodes; ++i) {
    Instruction in;
    in.op = static_cast<Opcode>(i);
    in.rd = GetOpInfo(in.op).flags & kFlagRdIsFp ? FpReg(1) : IntReg(1);
    in.rs = GetOpInfo(in.op).flags & kFlagSrcFp ? FpReg(2) : IntReg(2);
    in.rt = GetOpInfo(in.op).flags & kFlagSrcFp ? FpReg(3) : IntReg(3);
    in.imm = 0x2000;
    const std::string text = Disassemble(in);
    const std::string mnemonic = GetOpInfo(in.op).mnemonic;
    ASSERT_GE(text.size(), mnemonic.size());
    EXPECT_EQ(text.substr(0, mnemonic.size()), mnemonic);
    // The mnemonic must be followed by a separator or end of string, so
    // "add" never leaks through as a prefix-rendering of "addi".
    if (text.size() > mnemonic.size()) {
      EXPECT_EQ(text[mnemonic.size()], ' ');
    }
  }
}

TEST(Disasm, ProgramListingHasOneLinePerInstruction) {
  Program prog;
  Assembler a(&prog);
  a.nop();
  a.halt();
  a.Finish();
  const std::string listing = DisassembleProgram(prog);
  EXPECT_NE(listing.find("0x1000: nop"), std::string::npos);
  EXPECT_NE(listing.find("0x1008: halt"), std::string::npos);
}

}  // namespace
}  // namespace spear
