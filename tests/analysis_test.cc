// Tests for the static dataflow framework (analysis/dataflow.h) and the
// p-thread verifier (analysis/verifier.h): solver correctness on hand-built
// CFG shapes, a clean gather-loop spec, and an adversarial spec per
// contract-violation class — each must fire its own diagnostic code.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/taint.h"
#include "analysis/verifier.h"
#include "compiler/slicer.h"
#include "eval/harness.h"
#include "isa/assembler.h"
#include "isa/binary.h"
#include "isa/spec_check.h"
#include "spear/pthread_table.h"

namespace spear {
namespace {

bool HasCode(const std::vector<SpecDiag>& diags, SpecDiagCode code) {
  return std::any_of(diags.begin(), diags.end(),
                     [code](const SpecDiag& d) { return d.code == code; });
}

// ---------------------------------------------------------------------------
// RegSet + use/def extraction
// ---------------------------------------------------------------------------

TEST(RegSet, BasicOperations) {
  RegSet s = RegSet::Of({r(1), r(5), f(2)});
  EXPECT_TRUE(s.Contains(r(1)));
  EXPECT_TRUE(s.Contains(f(2)));
  EXPECT_FALSE(s.Contains(r(2)));
  EXPECT_EQ(s.Count(), 3);

  s.Remove(r(5));
  EXPECT_FALSE(s.Contains(r(5)));
  EXPECT_EQ(s.Count(), 2);

  const RegSet t = RegSet::Of({r(1), r(9)});
  EXPECT_EQ((s | t), RegSet::Of({r(1), r(9), f(2)}));
  EXPECT_EQ((s & t), RegSet::Of({r(1)}));
  EXPECT_EQ(s - t, RegSet::Of({f(2)}));
  EXPECT_TRUE(RegSet().Empty());

  const std::vector<RegId> v = (s | t).ToVector();
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  EXPECT_EQ(v.size(), 3u);
}

TEST(RegSet, UsesAndDefsHonorRegZero) {
  // li r1, 5 == addi r1, r0, 5: reading r0 is not a use.
  const Instruction li{Opcode::kAddi, r(1), kRegZero, 0, 5};
  EXPECT_TRUE(UsesOf(li).Empty());
  EXPECT_EQ(DefsOf(li), RegSet::Of({r(1)}));

  // Writing r0 is not a definition.
  const Instruction to_zero{Opcode::kAddi, kRegZero, r(1), 0, 0};
  EXPECT_TRUE(DefsOf(to_zero).Empty());

  // sw reads both the base and the stored value, defines nothing.
  const Instruction sw{Opcode::kSw, 0, r(2), r(3), 4};
  EXPECT_EQ(UsesOf(sw), RegSet::Of({r(2), r(3)}));
  EXPECT_TRUE(DefsOf(sw).Empty());
}

// ---------------------------------------------------------------------------
// LiveVariables on hand-built CFG shapes
// ---------------------------------------------------------------------------

TEST(LiveVariables, Diamond) {
  Program prog;
  Assembler a(&prog);
  Label left = a.NewLabel(), join = a.NewLabel();
  a.li(r(1), 5);               // 0  B0: def r1
  a.beq(r(2), r(0), left);     // 1  B0: use r2
  a.addi(r(3), r(1), 1);       // 2  B1: use r1, def r3
  a.j(join);                   // 3
  a.Bind(left);
  a.addi(r(3), r(2), 2);       // 4  B2: use r2, def r3
  a.Bind(join);
  a.add(r(4), r(3), r(3));     // 5  B3: use r3, def r4
  a.halt();                    // 6
  a.Finish();

  const Cfg cfg = Cfg::Build(prog);
  ASSERT_EQ(cfg.num_blocks(), 4);
  const LiveVariables lv = LiveVariables::Compute(cfg);

  const int b0 = cfg.BlockOf(0), b1 = cfg.BlockOf(2), b2 = cfg.BlockOf(4),
            b3 = cfg.BlockOf(5);
  EXPECT_EQ(lv.use(b0), RegSet::Of({r(2)}));
  EXPECT_EQ(lv.def(b0), RegSet::Of({r(1)}));
  EXPECT_EQ(lv.live_in(b0), RegSet::Of({r(2)}));
  EXPECT_EQ(lv.live_out(b0), RegSet::Of({r(1), r(2)}));
  EXPECT_EQ(lv.live_in(b1), RegSet::Of({r(1)}));
  EXPECT_EQ(lv.live_in(b2), RegSet::Of({r(2)}));
  EXPECT_EQ(lv.live_in(b3), RegSet::Of({r(3)}));
  EXPECT_TRUE(lv.live_out(b3).Empty());

  EXPECT_EQ(lv.LiveBefore(0), RegSet::Of({r(2)}));
  EXPECT_EQ(lv.LiveAfter(0), RegSet::Of({r(1), r(2)}));
  EXPECT_EQ(lv.LiveBefore(5), RegSet::Of({r(3)}));
}

TEST(LiveVariables, LoopCarriesLiveness) {
  Program prog;
  Assembler a(&prog);
  a.li(r(1), 10);              // 0
  a.li(r(5), 0);               // 1
  Label loop = a.BindNew();
  a.add(r(5), r(5), r(1));     // 2  body: use r5,r1 / def r5
  a.addi(r(1), r(1), -1);      // 3
  a.bne(r(1), r(0), loop);     // 4
  a.out(r(5));                 // 5
  a.halt();                    // 6
  a.Finish();

  const Cfg cfg = Cfg::Build(prog);
  const LiveVariables lv = LiveVariables::Compute(cfg);
  const int body = cfg.BlockOf(2);
  // Both the accumulator and the counter are live around the backedge.
  EXPECT_EQ(lv.live_in(body), RegSet::Of({r(1), r(5)}));
  EXPECT_EQ(lv.live_out(body), RegSet::Of({r(1), r(5)}));
  EXPECT_TRUE(lv.live_in(cfg.entry_block()).Empty());
}

TEST(LiveVariables, UnreachableBlockStillSolved) {
  Program prog;
  Assembler a(&prog);
  a.li(r(1), 1);               // 0
  a.halt();                    // 1
  a.add(r(2), r(3), r(4));     // 2  unreachable
  a.halt();                    // 3
  a.Finish();

  const Cfg cfg = Cfg::Build(prog);
  const LiveVariables lv = LiveVariables::Compute(cfg);
  const int dead = cfg.BlockOf(2);
  EXPECT_NE(dead, cfg.BlockOf(0));
  // No predecessors, but local liveness is still well-defined.
  EXPECT_EQ(lv.live_in(dead), RegSet::Of({r(3), r(4)}));
}

// ---------------------------------------------------------------------------
// ReachingDefinitions
// ---------------------------------------------------------------------------

TEST(ReachingDefinitions, RedefinitionKills) {
  Program prog;
  Assembler a(&prog);
  a.li(r(1), 1);               // 0  def A of r1
  a.li(r(1), 2);               // 1  def B of r1, kills A
  a.add(r(2), r(1), r(1));     // 2
  a.halt();                    // 3
  a.Finish();

  const Cfg cfg = Cfg::Build(prog);
  const ReachingDefinitions rd = ReachingDefinitions::Compute(cfg);
  const std::vector<int> at2 = rd.DefsOfRegAt(r(1), 2);
  ASSERT_EQ(at2.size(), 1u);
  EXPECT_EQ(rd.definitions()[static_cast<std::size_t>(at2[0])].instr, 1u);
  // Before the redefinition, only def A reaches.
  const std::vector<int> at1 = rd.DefsOfRegAt(r(1), 1);
  ASSERT_EQ(at1.size(), 1u);
  EXPECT_EQ(rd.definitions()[static_cast<std::size_t>(at1[0])].instr, 0u);
}

TEST(ReachingDefinitions, DiamondMergesBothDefs) {
  Program prog;
  Assembler a(&prog);
  Label left = a.NewLabel(), join = a.NewLabel();
  a.beq(r(9), r(0), left);     // 0
  a.li(r(1), 1);               // 1
  a.j(join);                   // 2
  a.Bind(left);
  a.li(r(1), 2);               // 3
  a.Bind(join);
  a.add(r(2), r(1), r(0));     // 4
  a.halt();                    // 5
  a.Finish();

  const Cfg cfg = Cfg::Build(prog);
  const ReachingDefinitions rd = ReachingDefinitions::Compute(cfg);
  EXPECT_EQ(rd.DefsOfRegAt(r(1), 4).size(), 2u);
}

TEST(ReachingDefinitions, LoopBackedgeReaches) {
  Program prog;
  Assembler a(&prog);
  a.li(r(1), 0);               // 0  def A
  Label loop = a.BindNew();
  a.addi(r(1), r(1), 1);       // 1  def B
  a.bne(r(1), r(10), loop);    // 2
  a.halt();                    // 3
  a.Finish();

  const Cfg cfg = Cfg::Build(prog);
  const ReachingDefinitions rd = ReachingDefinitions::Compute(cfg);
  // At the top of the body both the init and the increment reach.
  EXPECT_EQ(rd.DefsOfRegAt(r(1), 1).size(), 2u);
}

// ---------------------------------------------------------------------------
// The gather-loop fixture: one valid spec plus adversarial mutations.
// ---------------------------------------------------------------------------

// Index-fed gather: spine load feeds the delinquent load's address; the
// consumer, a store and a junk def stay outside the slice.
struct GatherFixture {
  Program prog;
  PThreadSpec spec;

  GatherFixture() {
    Assembler a(&prog);
    a.li(r(4), 0x2000);          // 0  spine pointer
    a.li(r(1), 64);              // 1  trip count
    Label loop = a.BindNew();
    a.lw(r(2), r(4), 0);         // 2  slice: spine load
    a.slli(r(3), r(2), 2);       // 3  slice: index scale
    a.add(r(3), r(3), r(6));     // 4  slice: + table base (live-in)
    a.lw(r(5), r(3), 0);         // 5  slice: the delinquent load
    a.add(r(7), r(7), r(5));     // 6  main-thread consumer
    a.sw(r(7), r(4), 0);         // 7  main-thread store
    a.xor_(r(9), r(2), r(2));    // 8  junk def, feeds nothing
    a.addi(r(4), r(4), 4);       // 9  slice: spine advance
    a.addi(r(1), r(1), -1);      // 10
    a.bne(r(1), r(0), loop);     // 11
    a.halt();                    // 12
    a.Finish();

    spec.dload_pc = prog.PcOf(5);
    spec.slice_pcs = {prog.PcOf(2), prog.PcOf(3), prog.PcOf(4), prog.PcOf(5),
                      prog.PcOf(9)};
    spec.live_ins = {r(4), r(6)};
    spec.region_start = prog.PcOf(2);
    spec.region_end = prog.PcOf(11);
  }
};

TEST(Verifier, AcceptsValidGatherSpec) {
  GatherFixture fx;
  const SpecVerifyResult vr = VerifySpec(fx.prog, fx.spec);
  EXPECT_TRUE(vr.ok());
  // Clean including lints: the looped liveness analysis must see the spine
  // advance (instr 9) feeding the next iteration's spine load, not flag it
  // dead.
  EXPECT_TRUE(vr.diags.empty());
}

TEST(Verifier, MissingLiveInIsRejected) {
  GatherFixture fx;
  fx.spec.live_ins = {r(4)};  // forgot the table base r6
  const SpecVerifyResult vr = VerifySpec(fx.prog, fx.spec);
  EXPECT_FALSE(vr.ok());
  EXPECT_TRUE(HasCode(vr.diags, SpecDiagCode::kMissingLiveIn));
  // The read of r6 is also covered by neither live-ins nor slice defs.
  EXPECT_TRUE(HasCode(vr.diags, SpecDiagCode::kUncoveredRead));
}

TEST(Verifier, SpuriousLiveInIsRejected) {
  GatherFixture fx;
  fx.spec.live_ins = {r(4), r(6), r(9)};  // r9 is never read by the slice
  const SpecVerifyResult vr = VerifySpec(fx.prog, fx.spec);
  EXPECT_FALSE(vr.ok());
  EXPECT_TRUE(HasCode(vr.diags, SpecDiagCode::kSpuriousLiveIn));
}

TEST(Verifier, StoreInSliceIsRejected) {
  GatherFixture fx;
  fx.spec.slice_pcs.insert(
      std::lower_bound(fx.spec.slice_pcs.begin(), fx.spec.slice_pcs.end(),
                       fx.prog.PcOf(7)),
      fx.prog.PcOf(7));  // smuggle the store in
  const SpecVerifyResult vr = VerifySpec(fx.prog, fx.spec);
  EXPECT_FALSE(vr.ok());
  EXPECT_TRUE(HasCode(vr.diags, SpecDiagCode::kStoreInSlice));
}

TEST(Verifier, ControlInSliceIsRejected) {
  GatherFixture fx;
  fx.spec.slice_pcs.push_back(fx.prog.PcOf(11));  // the loop branch
  const SpecVerifyResult vr = VerifySpec(fx.prog, fx.spec);
  EXPECT_FALSE(vr.ok());
  EXPECT_TRUE(HasCode(vr.diags, SpecDiagCode::kControlInSlice));
}

TEST(Verifier, SlicePcOutsideRegionIsRejected) {
  GatherFixture fx;
  fx.spec.slice_pcs.insert(fx.spec.slice_pcs.begin(), fx.prog.PcOf(0));
  const SpecVerifyResult vr = VerifySpec(fx.prog, fx.spec);
  EXPECT_FALSE(vr.ok());
  EXPECT_TRUE(HasCode(vr.diags, SpecDiagCode::kSlicePcOutsideRegion));
}

TEST(Verifier, UnsortedSlicePcsIsRejected) {
  GatherFixture fx;
  std::swap(fx.spec.slice_pcs[0], fx.spec.slice_pcs[1]);
  const SpecVerifyResult vr = VerifySpec(fx.prog, fx.spec);
  EXPECT_FALSE(vr.ok());
  EXPECT_TRUE(HasCode(vr.diags, SpecDiagCode::kUnsortedSlicePcs));
}

TEST(Verifier, DloadMissingFromSliceIsRejected) {
  GatherFixture fx;
  fx.spec.slice_pcs.erase(fx.spec.slice_pcs.begin() + 3);  // drop PcOf(5)
  const SpecVerifyResult vr = VerifySpec(fx.prog, fx.spec);
  EXPECT_FALSE(vr.ok());
  EXPECT_TRUE(HasCode(vr.diags, SpecDiagCode::kDloadNotInSlice));
}

TEST(Verifier, DloadMustBeALoad) {
  GatherFixture fx;
  fx.spec.dload_pc = fx.prog.PcOf(3);  // the slli
  const SpecVerifyResult vr = VerifySpec(fx.prog, fx.spec);
  EXPECT_FALSE(vr.ok());
  EXPECT_TRUE(HasCode(vr.diags, SpecDiagCode::kDloadNotALoad));
}

TEST(Verifier, BadRegionIsRejected) {
  GatherFixture fx;
  std::swap(fx.spec.region_start, fx.spec.region_end);
  const SpecVerifyResult vr = VerifySpec(fx.prog, fx.spec);
  EXPECT_FALSE(vr.ok());
  EXPECT_TRUE(HasCode(vr.diags, SpecDiagCode::kBadRegion));
}

TEST(Verifier, SlicePcOutsideTextIsRejected) {
  GatherFixture fx;
  fx.spec.region_end = fx.prog.PcOf(12);
  fx.spec.slice_pcs.push_back(fx.prog.EndPc());
  const SpecVerifyResult vr = VerifySpec(fx.prog, fx.spec);
  EXPECT_FALSE(vr.ok());
  EXPECT_TRUE(HasCode(vr.diags, SpecDiagCode::kSlicePcNotInText));
}

TEST(Verifier, LiveInRegisterMustBeValid) {
  GatherFixture fx;
  fx.spec.live_ins = {kRegZero, r(4), r(6)};
  const SpecVerifyResult vr = VerifySpec(fx.prog, fx.spec);
  EXPECT_FALSE(vr.ok());
  EXPECT_TRUE(HasCode(vr.diags, SpecDiagCode::kBadLiveIn));
}

TEST(Verifier, UnsortedLiveInsIsRejected) {
  GatherFixture fx;
  fx.spec.live_ins = {r(6), r(4)};
  const SpecVerifyResult vr = VerifySpec(fx.prog, fx.spec);
  EXPECT_FALSE(vr.ok());
  EXPECT_TRUE(HasCode(vr.diags, SpecDiagCode::kUnsortedLiveIns));
}

TEST(Verifier, EmptySliceIsRejected) {
  GatherFixture fx;
  fx.spec.slice_pcs.clear();
  const SpecVerifyResult vr = VerifySpec(fx.prog, fx.spec);
  EXPECT_FALSE(vr.ok());
  EXPECT_TRUE(HasCode(vr.diags, SpecDiagCode::kEmptySlice));
}

// --- lints: warnings that do not fail verification -------------------------

TEST(Verifier, DeadSliceInstructionIsLinted) {
  GatherFixture fx;
  // The junk xor's def (r9) feeds nothing, even across the loop backedge.
  fx.spec.slice_pcs.insert(
      std::lower_bound(fx.spec.slice_pcs.begin(), fx.spec.slice_pcs.end(),
                       fx.prog.PcOf(8)),
      fx.prog.PcOf(8));
  const SpecVerifyResult vr = VerifySpec(fx.prog, fx.spec);
  EXPECT_TRUE(vr.ok());  // a warning, not an error
  EXPECT_TRUE(HasCode(vr.diags, SpecDiagCode::kDeadSliceInstr));
}

TEST(Verifier, OversizedLiveInsIsLinted) {
  GatherFixture fx;
  const SpecVerifyResult vr =
      VerifySpec(fx.prog, fx.spec, VerifyOptions{.live_in_budget = 1});
  EXPECT_TRUE(vr.ok());
  EXPECT_TRUE(HasCode(vr.diags, SpecDiagCode::kOversizedLiveIns));
}

TEST(Verifier, DloadOnlySliceIsLinted) {
  GatherFixture fx;
  fx.spec.slice_pcs = {fx.prog.PcOf(5)};
  fx.spec.live_ins = {r(3)};
  const SpecVerifyResult vr = VerifySpec(fx.prog, fx.spec);
  EXPECT_TRUE(vr.ok());
  EXPECT_TRUE(HasCode(vr.diags, SpecDiagCode::kEmptyRegion));
}

TEST(Verifier, NoLintsOptionSuppressesWarnings) {
  GatherFixture fx;
  fx.spec.slice_pcs = {fx.prog.PcOf(5)};
  fx.spec.live_ins = {r(3)};
  const SpecVerifyResult vr =
      VerifySpec(fx.prog, fx.spec, VerifyOptions{.lints = false});
  EXPECT_TRUE(vr.ok());
  EXPECT_TRUE(vr.diags.empty());
}

TEST(Verifier, ToStringCarriesSourceAndCode) {
  GatherFixture fx;
  std::swap(fx.spec.slice_pcs[0], fx.spec.slice_pcs[1]);
  fx.prog.pthreads = {fx.spec};
  const VerifyResult vr = VerifyProgram(fx.prog);
  EXPECT_FALSE(vr.ok());
  EXPECT_EQ(vr.errors(), 1);
  const std::string s = vr.ToString("demo.bin");
  EXPECT_NE(s.find("demo.bin:"), std::string::npos);
  EXPECT_NE(s.find("[unsorted-slice-pcs]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Consumers of the verifier: slicer gate, loader policy, hardware PT.
// ---------------------------------------------------------------------------

TEST(SlicerGate, RejectsBrokenCandidate) {
  GatherFixture fx;
  fx.spec.live_ins = {r(4)};  // missing live-in
  SliceReport report;
  report.dload_pc = fx.spec.dload_pc;
  EXPECT_FALSE(VerifyCandidateSpec(fx.prog, fx.spec, &report));
  EXPECT_TRUE(report.rejected);
  EXPECT_EQ(report.reject_reason.rfind("failed verification:", 0), 0u)
      << report.reject_reason;
}

TEST(SlicerGate, AcceptsValidCandidate) {
  GatherFixture fx;
  SliceReport report;
  EXPECT_TRUE(VerifyCandidateSpec(fx.prog, fx.spec, &report));
  EXPECT_FALSE(report.rejected);
}

TEST(LoadPolicy, WarnLoadsRejectAborts) {
  GatherFixture fx;
  fx.spec.slice_pcs.insert(
      std::lower_bound(fx.spec.slice_pcs.begin(), fx.spec.slice_pcs.end(),
                       fx.prog.PcOf(7)),
      fx.prog.PcOf(7));  // store in slice
  fx.prog.pthreads = {fx.spec};
  const std::string path = testing::TempDir() + "/bad_spec.spear.bin";
  WriteProgram(fx.prog, path);

  testing::internal::CaptureStderr();
  const Program warned = ReadProgram(path, SpecLoadPolicy::kWarn);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(warned.pthreads.size(), 1u);
  EXPECT_NE(err.find("[store-in-slice]"), std::string::npos);

  const Program trusted = ReadProgram(path, SpecLoadPolicy::kTrust);
  EXPECT_EQ(trusted.pthreads.size(), 1u);

  EXPECT_DEATH(ReadProgram(path, SpecLoadPolicy::kReject),
               "SPEAR_CHECK failed");
}

TEST(PThreadTableDeath, RefusesUnsortedSlice) {
  GatherFixture fx;
  std::swap(fx.spec.slice_pcs[0], fx.spec.slice_pcs[1]);
  EXPECT_DEATH(PThreadTable table({fx.spec}), "SPEAR_CHECK failed");
}

TEST(PThreadSpecInSlice, BinarySearchSemantics) {
  GatherFixture fx;
  for (Pc pc = fx.prog.PcOf(0); pc < fx.prog.EndPc(); pc += kInstrBytes) {
    const bool expected =
        std::find(fx.spec.slice_pcs.begin(), fx.spec.slice_pcs.end(), pc) !=
        fx.spec.slice_pcs.end();
    EXPECT_EQ(fx.spec.InSlice(pc), expected) << "pc 0x" << std::hex << pc;
  }
}

// ---------------------------------------------------------------------------
// Speculative-leakage taint pass (analysis/taint.h): one adversarial slice
// per sink rule, plus the false-positive guards.
// ---------------------------------------------------------------------------

// Pointer-chase slice: the spine load's value becomes the next load's
// address. Without @secret ranges that is the load-tainted-address warning;
// with the data declared secret it escalates to the error.
struct ChaseFixture {
  Program prog;
  PThreadSpec spec;

  ChaseFixture() {
    Assembler a(&prog);
    a.li(r(4), 0x2000);          // 0  chase pointer
    a.li(r(1), 64);              // 1  trip count
    Label loop = a.BindNew();
    a.lw(r(2), r(4), 0);         // 2  slice: load next pointer
    a.slli(r(3), r(2), 2);       // 3  slice: ALU chain on the loaded value
    a.add(r(3), r(3), r(6));     // 4  slice: + table base (live-in)
    a.lw(r(5), r(3), 0);         // 5  slice: dload, address from the chain
    a.add(r(7), r(7), r(5));     // 6  consumer (outside the slice)
    a.addi(r(4), r(4), 4);       // 7  slice: spine advance
    a.addi(r(1), r(1), -1);      // 8
    a.bne(r(1), r(0), loop);     // 9
    a.halt();                    // 10
    a.Finish();

    spec.dload_pc = prog.PcOf(5);
    spec.slice_pcs = {prog.PcOf(2), prog.PcOf(3), prog.PcOf(4), prog.PcOf(5),
                      prog.PcOf(7)};
    spec.live_ins = {r(4), r(6)};
    spec.region_start = prog.PcOf(2);
    spec.region_end = prog.PcOf(9);
  }
};

TEST(Taint, LoadedValueReachingAddressWarns) {
  ChaseFixture fx;
  const std::vector<SpecDiag> diags = CheckSliceTaint(fx.prog, fx.spec);
  EXPECT_TRUE(HasCode(diags, SpecDiagCode::kSpecTaintedAddress));
  EXPECT_FALSE(HasCode(diags, SpecDiagCode::kSecretTaintedAddress));
}

TEST(Taint, SecretThroughAluChainIsError) {
  ChaseFixture fx;
  fx.prog.secret_ranges.push_back({0x2000, 0x1000});
  const std::vector<SpecDiag> diags = CheckSliceTaint(fx.prog, fx.spec);
  // The spine load may read the secret region; the value flows through
  // slli/add into the dload's address.
  EXPECT_TRUE(HasCode(diags, SpecDiagCode::kSecretTaintedAddress));
}

TEST(Taint, SpecSourcesCanBeDisabled) {
  ChaseFixture fx;
  TaintOptions opt;
  opt.spec_load_sources = false;
  EXPECT_TRUE(CheckSliceTaint(fx.prog, fx.spec, opt).empty());
}

TEST(Taint, ConstantOverwriteKillsTaint) {
  // The loaded value is clobbered by an immediate before the address
  // computation, so the dload's address derives from live-ins only.
  Program prog;
  Assembler a(&prog);
  a.li(r(4), 0x2000);          // 0
  Label loop = a.BindNew();
  a.lw(r(2), r(4), 0);         // 1  slice: taints r2
  a.li(r(2), 8);               // 2  slice: strong update kills the taint
  a.add(r(3), r(2), r(6));     // 3  slice: address from constant + live-in
  a.lw(r(5), r(3), 0);         // 4  slice: dload — untainted address
  a.addi(r(4), r(4), 4);       // 5  slice: spine advance
  a.bne(r(4), r(7), loop);     // 6
  a.halt();                    // 7
  a.Finish();

  PThreadSpec spec;
  spec.dload_pc = prog.PcOf(4);
  spec.slice_pcs = {prog.PcOf(1), prog.PcOf(2), prog.PcOf(3), prog.PcOf(4),
                    prog.PcOf(5)};
  spec.live_ins = {r(4), r(6)};
  spec.region_start = prog.PcOf(1);
  spec.region_end = prog.PcOf(6);

  const std::vector<SpecDiag> diags = CheckSliceTaint(prog, spec);
  // pc 4's address is clean; pc 1's own address (r4, live-in ALU only)
  // is clean too — the whole slice must be quiet even across the back
  // edge (r2 is re-killed every iteration).
  EXPECT_TRUE(diags.empty()) << diags.size() << " diagnostics";
}

TEST(Taint, FpPathCarriesTaint) {
  // Taint must survive a float detour: ldf -> fadd -> cvtfi -> address.
  Program prog;
  Assembler a(&prog);
  a.li(r(4), 0x2000);          // 0
  Label loop = a.BindNew();
  a.ldf(f(1), r(4), 0);        // 1  slice: FP load (secret source)
  a.fadd(f(2), f(1), f(1));    // 2  slice: FP ALU
  a.cvtfi(r(3), f(2));         // 3  slice: back to int
  a.add(r(3), r(3), r(6));     // 4  slice: + table base
  a.lw(r(5), r(3), 0);         // 5  slice: dload
  a.addi(r(4), r(4), 8);       // 6  slice: spine advance
  a.bne(r(4), r(7), loop);     // 7
  a.halt();                    // 8
  a.Finish();

  PThreadSpec spec;
  spec.dload_pc = prog.PcOf(5);
  spec.slice_pcs = {prog.PcOf(1), prog.PcOf(2), prog.PcOf(3), prog.PcOf(4),
                    prog.PcOf(5), prog.PcOf(6)};
  spec.live_ins = {r(4), r(6)};
  spec.region_start = prog.PcOf(1);
  spec.region_end = prog.PcOf(7);

  prog.secret_ranges.push_back({0x2000, 0x100});
  const std::vector<SpecDiag> diags = CheckSliceTaint(prog, spec);
  EXPECT_TRUE(HasCode(diags, SpecDiagCode::kSecretTaintedAddress));
}

TEST(Taint, LiveInOnlyAddressHasNoFalsePositive) {
  // Index-fed gather where the dload address never touches a loaded
  // value: strictly live-in + immediate arithmetic. Zero diagnostics even
  // with secrets declared elsewhere.
  Program prog;
  Assembler a(&prog);
  a.li(r(4), 0x2000);          // 0
  Label loop = a.BindNew();
  a.slli(r(3), r(4), 1);       // 1  slice: pure live-in arithmetic
  a.add(r(3), r(3), r(6));     // 2  slice
  a.lw(r(5), r(3), 0);         // 3  slice: dload
  a.addi(r(4), r(4), 1);       // 4  slice: index advance
  a.bne(r(4), r(7), loop);     // 5
  a.halt();                    // 6
  a.Finish();

  PThreadSpec spec;
  spec.dload_pc = prog.PcOf(3);
  spec.slice_pcs = {prog.PcOf(1), prog.PcOf(2), prog.PcOf(3), prog.PcOf(4)};
  spec.live_ins = {r(4), r(6)};
  spec.region_start = prog.PcOf(1);
  spec.region_end = prog.PcOf(5);

  prog.secret_ranges.push_back({0x9000, 0x100});
  EXPECT_TRUE(CheckSliceTaint(prog, spec).empty());
}

TEST(Taint, ConstantAddressOutsideSecretRangeStaysClean) {
  // A statically resolved load address outside every @secret range must
  // not source secret taint (the may-analysis is exact when it can be) —
  // the loaded value still warns as a speculative source, but never
  // escalates to the error.
  Program prog;
  Assembler a(&prog);
  a.li(r(1), 64);              // 0
  Label loop = a.BindNew();
  a.li(r(4), 0x3000);          // 1  slice: constant base, re-established
                               //    every iteration (so relying on it is
                               //    sound across the back edge)
  a.lw(r(2), r(4), 0);         // 2  slice: address provably 0x3000
  a.add(r(3), r(2), r(6));     // 3  slice
  a.lw(r(5), r(3), 0);         // 4  slice: dload
  a.addi(r(1), r(1), -1);      // 5
  a.bne(r(1), r(0), loop);     // 6
  a.halt();                    // 7
  a.Finish();

  PThreadSpec spec;
  spec.dload_pc = prog.PcOf(4);
  spec.slice_pcs = {prog.PcOf(1), prog.PcOf(2), prog.PcOf(3), prog.PcOf(4)};
  spec.live_ins = {r(6)};
  spec.region_start = prog.PcOf(1);
  spec.region_end = prog.PcOf(6);

  prog.secret_ranges.push_back({0x2000, 0x100});
  const std::vector<SpecDiag> diags = CheckSliceTaint(prog, spec);
  EXPECT_TRUE(HasCode(diags, SpecDiagCode::kSpecTaintedAddress));
  EXPECT_FALSE(HasCode(diags, SpecDiagCode::kSecretTaintedAddress));

  // Widen the range over 0x3000 and the same slice must escalate.
  prog.secret_ranges[0] = {0x3000, 0x10};
  EXPECT_TRUE(
      HasCode(CheckSliceTaint(prog, spec), SpecDiagCode::kSecretTaintedAddress));
}

TEST(Taint, VerifierRunsTaintOnlyUnderSecurityOption) {
  ChaseFixture fx;
  const SpecVerifyResult plain = VerifySpec(fx.prog, fx.spec);
  EXPECT_FALSE(HasCode(plain.diags, SpecDiagCode::kSpecTaintedAddress));

  VerifyOptions vopt;
  vopt.security = true;
  const SpecVerifyResult sec = VerifySpec(fx.prog, fx.spec, vopt);
  EXPECT_TRUE(HasCode(sec.diags, SpecDiagCode::kSpecTaintedAddress));
  EXPECT_TRUE(sec.ok()) << "warnings alone must not fail verification";

  fx.prog.secret_ranges.push_back({0x2000, 0x1000});
  const SpecVerifyResult leak = VerifySpec(fx.prog, fx.spec, vopt);
  EXPECT_TRUE(HasCode(leak.diags, SpecDiagCode::kSecretTaintedAddress));
  EXPECT_FALSE(leak.ok()) << "secret-tainted addresses are errors";
}

TEST(SpecDiagTable, NamesSeveritiesAndSecurityFlagAgree) {
  const std::vector<SpecDiagInfo>& infos = AllSpecDiagInfos();
  ASSERT_FALSE(infos.empty());
  for (const SpecDiagInfo& info : infos) {
    EXPECT_STREQ(SpecDiagCodeName(info.code), info.name);
    EXPECT_EQ(SeverityOf(info.code), info.severity);
  }
  EXPECT_TRUE(IsSecurityDiag(SpecDiagCode::kSecretTaintedAddress));
  EXPECT_TRUE(IsSecurityDiag(SpecDiagCode::kSpecTaintedAddress));
  EXPECT_FALSE(IsSecurityDiag(SpecDiagCode::kStoreInSlice));
}

// ---------------------------------------------------------------------------
// End to end: every spec the post-compiler emits for every workload must
// verify with zero errors (the slicer's gate and the verifier agree) —
// including the security taint pass, which may warn but never error on
// the shipped workloads (none declare @secret regions).
// ---------------------------------------------------------------------------

class EveryWorkloadVerifies : public testing::TestWithParam<const char*> {};

TEST_P(EveryWorkloadVerifies, CompilerOutputIsContractClean) {
  EvalOptions opt;
  opt.compiler.profiler.max_instrs = 300'000;
  const PreparedWorkload pw = PrepareWorkload(GetParam(), opt);
  const VerifyResult vr = VerifyProgram(pw.annotated);
  EXPECT_TRUE(vr.ok()) << vr.ToString(GetParam());
  EXPECT_EQ(vr.specs.size(), pw.annotated.pthreads.size());

  VerifyOptions security;
  security.security = true;
  const VerifyResult sec = VerifyProgram(pw.annotated, security);
  EXPECT_TRUE(sec.ok()) << sec.ToString(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Suite, EveryWorkloadVerifies,
    testing::Values("pointer", "update", "nbh", "tr", "matrix", "field", "dm",
                    "ray", "fft", "gzip", "mcf", "vpr", "bzip2", "equake",
                    "art"),
    [](const testing::TestParamInfo<const char*>& info) {
      return std::string(info.param);
    });

}  // namespace
}  // namespace spear
