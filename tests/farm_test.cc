// Tests for the spearfarm subsystem (src/farm): the length-prefixed JSON
// wire protocol (framing round trips, malformed/oversized frames, clean
// EOF), the content-addressed result cache (key sensitivity, store/load
// round trips, corruption = miss), and the daemon itself — driven over
// real Unix-domain sockets with a deterministic in-memory executor so
// fairness, coalescing, admission control, cancel, disconnect and
// drain/restart are testable without forking a single simulator.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "eval/harness.h"
#include "farm/cache.h"
#include "farm/client.h"
#include "farm/daemon.h"
#include "farm/proto.h"
#include "runner/manifest.h"
#include "runner/runner.h"

namespace spear::farm {
namespace {

using telemetry::JsonValue;

std::string TempDir(const std::string& tag) {
  static int counter = 0;
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("spear_farm_test." + std::to_string(::getpid()) + "." + tag + "." +
        std::to_string(counter++)))
          .string();
  std::filesystem::create_directories(path);
  return path;
}

// --- wire protocol ---

TEST(ProtoTest, FrameRoundTripsOverSocketPair) {
  int fds[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  JsonValue frame = JsonValue::Object();
  frame.Set("op", JsonValue("submit"));
  frame.Set("job", JsonValue(7));
  std::string error;
  ASSERT_TRUE(WriteFrame(fds[0], frame, &error)) << error;

  JsonValue got;
  ASSERT_TRUE(ReadFrame(fds[1], &got, &error)) << error;
  EXPECT_EQ(frame.Dump(), got.Dump());

  // Clean EOF at a frame boundary: false with *error left empty.
  ::close(fds[0]);
  error = "sentinel";
  EXPECT_FALSE(ReadFrame(fds[1], &got, &error));
  EXPECT_TRUE(error.empty());
  ::close(fds[1]);
}

TEST(ProtoTest, ReadFrameRejectsOversizedLength) {
  int fds[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  // 0xFFFFFFFF bytes claimed — far beyond kMaxFrameBytes.
  const unsigned char huge[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(4, ::send(fds[0], huge, 4, 0));
  JsonValue got;
  std::string error;
  EXPECT_FALSE(ReadFrame(fds[1], &got, &error));
  EXPECT_NE(error.find("oversized"), std::string::npos) << error;
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ProtoTest, FrameBufferReassemblesSplitFrames) {
  JsonValue frame = JsonValue::Object();
  frame.Set("op", JsonValue("ping"));
  const std::string payload = frame.Dump();
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::string wire;
  wire.push_back(static_cast<char>(len & 0xff));
  wire.push_back(static_cast<char>((len >> 8) & 0xff));
  wire.push_back(static_cast<char>((len >> 16) & 0xff));
  wire.push_back(static_cast<char>((len >> 24) & 0xff));
  wire += payload;

  FrameBuffer buf;
  JsonValue got;
  std::string error;
  // Byte-at-a-time delivery: no frame until the last byte lands.
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    buf.Append(&wire[i], 1);
    EXPECT_FALSE(buf.Next(&got, &error));
    EXPECT_TRUE(error.empty()) << error;
  }
  buf.Append(&wire[wire.size() - 1], 1);
  ASSERT_TRUE(buf.Next(&got, &error)) << error;
  EXPECT_EQ(frame.Dump(), got.Dump());

  // Two frames in one append come out one at a time.
  buf.Append(wire.data(), wire.size());
  buf.Append(wire.data(), wire.size());
  EXPECT_TRUE(buf.Next(&got, &error));
  EXPECT_TRUE(buf.Next(&got, &error));
  EXPECT_FALSE(buf.Next(&got, &error));
  EXPECT_TRUE(error.empty());
}

TEST(ProtoTest, FrameBufferRejectsMalformedAndOversized) {
  // Valid length prefix, garbage payload.
  const std::string garbage = "not json!";
  const std::uint32_t len = static_cast<std::uint32_t>(garbage.size());
  FrameBuffer buf;
  const char prefix[4] = {static_cast<char>(len), 0, 0, 0};
  buf.Append(prefix, 4);
  buf.Append(garbage.data(), garbage.size());
  JsonValue got;
  std::string error;
  EXPECT_FALSE(buf.Next(&got, &error));
  EXPECT_NE(error.find("malformed"), std::string::npos) << error;

  // Oversized length prefix is rejected before any payload arrives.
  FrameBuffer buf2;
  const unsigned char huge[4] = {0xff, 0xff, 0xff, 0xff};
  buf2.Append(reinterpret_cast<const char*>(huge), 4);
  error.clear();
  EXPECT_FALSE(buf2.Next(&got, &error));
  EXPECT_NE(error.find("oversized"), std::string::npos) << error;
}

TEST(ProtoTest, WriteFrameRefusesOverlargePayload) {
  JsonValue frame = JsonValue::Object();
  frame.Set("blob", JsonValue(std::string(kMaxFrameBytes, 'x')));
  std::string error;
  EXPECT_FALSE(WriteFrame(1, frame, &error));
  EXPECT_NE(error.find("too large"), std::string::npos) << error;
}

// --- result cache ---

runner::Manifest CacheManifest() {
  runner::Manifest m;
  m.name = "farmtest";
  m.defaults.sim_instrs = 2'000;
  m.defaults.max_cycles = 1'000'000;
  m.defaults.ref_seed = 42;
  m.defaults.profile_seed = 7;
  m.workloads = {"matrix"};
  runner::ConfigSpec base;
  base.label = "base";
  m.configs.push_back(base);
  runner::ConfigSpec tuned;
  tuned.label = "tuned";
  tuned.ifq = 64;
  m.configs.push_back(tuned);
  return m;
}

TEST(ResultCacheTest, KeyCoversEveryDeterministicInput) {
  const runner::Manifest m = CacheManifest();
  const std::vector<runner::JobSpec> jobs = runner::ExpandJobs(m);
  ASSERT_EQ(jobs.size(), 2u);

  const ResultCacheKey a = MakeResultKey(m, jobs[0], 0x1234, false);
  EXPECT_EQ(a.key, MakeResultKey(m, jobs[0], 0x1234, false).key);

  // Config (the tuned ifq shows up through the canonical config JSON).
  EXPECT_NE(a.key, MakeResultKey(m, jobs[1], 0x1234, false).key);
  // Binary fingerprint.
  EXPECT_NE(a.key, MakeResultKey(m, jobs[0], 0x9999, false).key);
  // Cosim flag.
  EXPECT_NE(a.key, MakeResultKey(m, jobs[0], 0x1234, true).key);
  // Deterministic defaults.
  runner::Manifest m2 = m;
  m2.defaults.sim_instrs = 4'000;
  EXPECT_NE(a.key, MakeResultKey(m2, jobs[0], 0x1234, false).key);
  m2 = m;
  m2.defaults.ref_seed = 43;
  EXPECT_NE(a.key, MakeResultKey(m2, jobs[0], 0x1234, false).key);
  // The failure policy is NOT part of the key: it shapes the run, never
  // the row's bytes.
  m2 = m;
  m2.defaults.timeout_ms = 123'456;
  m2.defaults.max_retries = 9;
  EXPECT_EQ(a.key, MakeResultKey(m2, jobs[0], 0x1234, false).key);
}

TEST(ResultCacheTest, StoreLoadRoundTripAndProbe) {
  const std::string dir = TempDir("cache");
  const runner::Manifest m = CacheManifest();
  const std::vector<runner::JobSpec> jobs = runner::ExpandJobs(m);
  const ResultCacheKey key = MakeResultKey(m, jobs[0], 0xabcd, false);

  JsonValue row = JsonValue::Object();
  row.Set("id", JsonValue("matrix/base"));
  row.Set("stats", JsonValue::Object());

  std::uint64_t bytes = 0;
  EXPECT_FALSE(ProbeResult(dir, key, &bytes));
  std::string error;
  ASSERT_TRUE(StoreResult(dir, key, row, "hit", &error)) << error;

  JsonValue loaded;
  std::string ckpt;
  ASSERT_TRUE(LoadResult(dir, key, &loaded, &ckpt, &bytes));
  EXPECT_EQ(row.Dump(), loaded.Dump());
  EXPECT_EQ(ckpt, "hit");
  EXPECT_GT(bytes, 0u);
  EXPECT_TRUE(ProbeResult(dir, key, &bytes));

  // A different key misses even though the directory is warm.
  const ResultCacheKey other = MakeResultKey(m, jobs[1], 0xabcd, false);
  EXPECT_FALSE(ProbeResult(dir, other, &bytes));
}

TEST(ResultCacheTest, CorruptionAndKeyMismatchReadAsMiss) {
  const std::string dir = TempDir("corrupt");
  const runner::Manifest m = CacheManifest();
  const std::vector<runner::JobSpec> jobs = runner::ExpandJobs(m);
  const ResultCacheKey key = MakeResultKey(m, jobs[0], 0xabcd, false);
  JsonValue row = JsonValue::Object();
  row.Set("id", JsonValue("matrix/base"));
  ASSERT_TRUE(StoreResult(dir, key, row, "off", nullptr));

  // Truncate the entry: a torn file must read as a miss, never an error.
  {
    std::ofstream out(ResultCachePath(dir, key),
                      std::ios::binary | std::ios::trunc);
    out << "{\"result_cache_ver";
  }
  JsonValue loaded;
  EXPECT_FALSE(LoadResult(dir, key, &loaded));

  // A file whose stored key string disagrees (hash collision) is a miss.
  ASSERT_TRUE(StoreResult(dir, key, row, "off", nullptr));
  {
    std::ifstream in(ResultCachePath(dir, key), std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    const std::size_t pos = text.find("fp=");
    ASSERT_NE(pos, std::string::npos);
    text[pos + 3] = text[pos + 3] == '0' ? '1' : '0';
    std::ofstream out(ResultCachePath(dir, key),
                      std::ios::binary | std::ios::trunc);
    out << text;
  }
  EXPECT_FALSE(LoadResult(dir, key, &loaded));
}

TEST(ResultCacheTest, BinaryFingerprintIsDeterministicPerWorkload) {
  const runner::Manifest m = CacheManifest();
  const EvalOptions opts =
      runner::MakeEvalOptions(m.defaults, m.configs[0]);
  const PreparedWorkload a = PrepareWorkload("matrix", opts);
  const PreparedWorkload b = PrepareWorkload("matrix", opts);
  EXPECT_EQ(BinaryFingerprint(a), BinaryFingerprint(b));
  const PreparedWorkload c = PrepareWorkload("mcf", opts);
  EXPECT_NE(BinaryFingerprint(a), BinaryFingerprint(c));
}

// --- daemon, driven with a deterministic executor over real sockets ---

class FakeExecutor : public JobExecutor {
 public:
  explicit FakeExecutor(std::string tmp_dir) : tmp_dir_(std::move(tmp_dir)) {}

  std::uint64_t Start(const Launch& launch) override {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t ticket = next_++;
    launches_.push_back({ticket, launch});
    running_.insert(ticket);
    return ticket;
  }
  void Cancel(std::uint64_t ticket) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_.erase(ticket) == 0) return;
    Completion c;
    c.ticket = ticket;
    c.result.ok = false;
    c.result.canceled = true;
    c.result.attempts = 1;
    done_.push_back(std::move(c));
  }
  std::vector<Completion> Pump() override {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Completion> out = std::move(done_);
    done_.clear();
    return out;
  }
  std::size_t in_flight() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return running_.size();
  }

  // Test side: block until the Nth launch exists, then return it.
  std::pair<std::uint64_t, Launch> WaitForLaunch(std::size_t index) {
    for (int spin = 0; spin < 2000; ++spin) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (launches_.size() > index) return launches_[index];
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ADD_FAILURE() << "launch " << index << " never happened";
    return {};
  }
  std::size_t launch_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return launches_.size();
  }

  void CompleteOk(std::uint64_t ticket, const JsonValue& row,
                  const std::string& ckpt = "off") {
    const std::string path =
        tmp_dir_ + "/fake" + std::to_string(ticket) + ".json";
    JsonValue doc = JsonValue::Object();
    doc.Set("job", row);
    JsonValue run = JsonValue::Object();
    run.Set("ckpt", JsonValue(ckpt));
    doc.Set("run", std::move(run));
    {
      std::ofstream out(path, std::ios::binary);
      out << doc.Dump(2) << "\n";
    }
    std::lock_guard<std::mutex> lock(mu_);
    running_.erase(ticket);
    Completion c;
    c.ticket = ticket;
    c.result.ok = true;
    c.result.exit_code = 0;
    c.result.attempts = 1;
    c.job_out_path = path;
    done_.push_back(std::move(c));
  }
  void CompleteFail(std::uint64_t ticket, int exit_code) {
    std::lock_guard<std::mutex> lock(mu_);
    running_.erase(ticket);
    Completion c;
    c.ticket = ticket;
    c.result.ok = false;
    c.result.exit_code = exit_code;
    c.result.attempts = 1;
    done_.push_back(std::move(c));
  }

 private:
  std::string tmp_dir_;
  mutable std::mutex mu_;
  std::uint64_t next_ = 1;
  std::vector<std::pair<std::uint64_t, Launch>> launches_;
  std::set<std::uint64_t> running_;
  std::vector<Completion> done_;
};

// A daemon on its own thread plus the fake executor behind it.
class DaemonFixture {
 public:
  explicit DaemonFixture(int workers = 1, std::size_t max_queued = 256)
      : dir_(TempDir("daemon")), fake_(dir_ + "/fakeout") {
    std::filesystem::create_directories(dir_ + "/fakeout");
    opts_.socket_path = dir_ + "/farm.sock";
    opts_.state_dir = dir_ + "/state";
    opts_.workers = workers;
    opts_.max_queued = max_queued;
  }
  ~DaemonFixture() { Stop(); }

  bool Start() {
    daemon_ = std::make_unique<FarmDaemon>(opts_, &fake_);
    std::string error;
    if (!daemon_->Init(&error)) {
      ADD_FAILURE() << "daemon init: " << error;
      return false;
    }
    thread_ = std::thread([this] { exit_code_ = daemon_->Serve(); });
    return true;
  }
  // Drains through a dedicated control connection and joins.
  void Stop() {
    if (!thread_.joinable()) return;
    FarmClient control;
    std::string error;
    if (control.Connect(opts_.socket_path, &error)) {
      control.Drain(nullptr, &error);
    }
    thread_.join();
  }
  // Joins without draining — for tests that drained explicitly.
  void Join() {
    if (thread_.joinable()) thread_.join();
  }

  FakeExecutor& fake() { return fake_; }
  const FarmOptions& opts() const { return opts_; }
  const FarmDaemon& daemon() const { return *daemon_; }
  int exit_code() const { return exit_code_; }

 private:
  std::string dir_;
  FakeExecutor fake_;
  FarmOptions opts_;
  std::unique_ptr<FarmDaemon> daemon_;
  std::thread thread_;
  int exit_code_ = -1;
};

// Reads events until one of `kind` arrives (skipping others).
JsonValue WaitEvent(FarmClient& client, const std::string& kind) {
  for (int i = 0; i < 100; ++i) {
    JsonValue ev;
    std::string error;
    if (!client.Recv(&ev, &error)) {
      ADD_FAILURE() << "connection lost waiting for " << kind << ": "
                    << error;
      return JsonValue();
    }
    const JsonValue* k = ev.Find("event");
    if (k != nullptr && k->AsString() == kind) return ev;
  }
  ADD_FAILURE() << "no " << kind << " event in 100 frames";
  return JsonValue();
}

void Submit(FarmClient& client, const JsonValue& manifest_json,
            std::int64_t job) {
  JsonValue f = JsonValue::Object();
  f.Set("op", JsonValue("submit"));
  f.Set("manifest", manifest_json);
  f.Set("job", JsonValue(job));
  std::string error;
  ASSERT_TRUE(client.Send(f, &error)) << error;
}

runner::Manifest DaemonManifest(int extra_configs = 0) {
  runner::Manifest m = CacheManifest();
  for (int i = 0; i < extra_configs; ++i) {
    runner::ConfigSpec c;
    c.label = "sweep" + std::to_string(i);
    c.ifq = 64 + 64 * i;
    m.configs.push_back(c);
  }
  return m;
}

JsonValue FakeRow(const runner::Manifest& m, std::size_t job_index) {
  const std::vector<runner::JobSpec> jobs = runner::ExpandJobs(m);
  JsonValue row = JsonValue::Object();
  row.Set("id", JsonValue(runner::JobId(m, jobs[job_index])));
  row.Set("workload", JsonValue(jobs[job_index].workload));
  row.Set("config", JsonValue(m.configs[jobs[job_index].config].label));
  JsonValue stats = JsonValue::Object();
  stats.Set("cycles", JsonValue(1000 + static_cast<std::int64_t>(job_index)));
  row.Set("stats", std::move(stats));
  return row;
}

TEST(FarmDaemonTest, SubmitStreamsQueuedStartedResult) {
  DaemonFixture fx;
  ASSERT_TRUE(fx.Start());
  const runner::Manifest m = DaemonManifest();
  const JsonValue mj = runner::ManifestToJson(m);

  FarmClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(fx.opts().socket_path, &error)) << error;
  ASSERT_TRUE(client.Ping(&error)) << error;

  Submit(client, mj, 0);
  const JsonValue queued = WaitEvent(client, "queued");
  EXPECT_EQ(queued.Find("job")->AsInt(), 0);
  WaitEvent(client, "started");

  const auto [ticket, launch] = fx.fake().WaitForLaunch(0);
  EXPECT_EQ(launch.job_index, 0u);
  EXPECT_FALSE(launch.manifest_path.empty());
  const JsonValue row = FakeRow(m, 0);
  fx.fake().CompleteOk(ticket, row, "miss");

  const JsonValue result = WaitEvent(client, "result");
  EXPECT_FALSE(result.Find("cached")->AsBool());
  EXPECT_FALSE(result.Find("failed")->AsBool());
  EXPECT_EQ(result.Find("ckpt")->AsString(), "miss");
  EXPECT_EQ(result.Find("row")->Dump(), row.Dump());

  fx.Stop();
  EXPECT_EQ(fx.exit_code(), 0);
  EXPECT_EQ(fx.daemon().stats().admitted, 1u);
  EXPECT_EQ(fx.daemon().stats().jobs_ok, 1u);
  EXPECT_EQ(fx.daemon().stats().cache_stores, 1u);
}

TEST(FarmDaemonTest, SecondSubmitIsServedFromCache) {
  DaemonFixture fx;
  ASSERT_TRUE(fx.Start());
  const runner::Manifest m = DaemonManifest();
  const JsonValue mj = runner::ManifestToJson(m);

  FarmClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(fx.opts().socket_path, &error)) << error;
  Submit(client, mj, 0);
  WaitEvent(client, "queued");
  const auto [ticket, launch] = fx.fake().WaitForLaunch(0);
  const JsonValue row = FakeRow(m, 0);
  fx.fake().CompleteOk(ticket, row);
  WaitEvent(client, "result");

  // Same row again — served from the cache, no new launch.
  Submit(client, mj, 0);
  const JsonValue hit = WaitEvent(client, "result");
  EXPECT_TRUE(hit.Find("cached")->AsBool());
  EXPECT_EQ(hit.Find("row")->Dump(), row.Dump());
  EXPECT_EQ(fx.fake().launch_count(), 1u);

  fx.Stop();
  EXPECT_EQ(fx.daemon().stats().cache_hits, 1u);
  EXPECT_EQ(fx.daemon().stats().cache_misses, 1u);
}

TEST(FarmDaemonTest, ConcurrentSubmittersCoalesceOntoOneSimulation) {
  DaemonFixture fx;
  ASSERT_TRUE(fx.Start());
  const runner::Manifest m = DaemonManifest();
  const JsonValue mj = runner::ManifestToJson(m);

  FarmClient a;
  FarmClient b;
  std::string error;
  ASSERT_TRUE(a.Connect(fx.opts().socket_path, &error)) << error;
  ASSERT_TRUE(b.Connect(fx.opts().socket_path, &error)) << error;

  Submit(a, mj, 0);
  const JsonValue qa = WaitEvent(a, "queued");
  EXPECT_EQ(qa.Find("coalesced"), nullptr);

  Submit(b, mj, 0);
  const JsonValue qb = WaitEvent(b, "queued");
  ASSERT_NE(qb.Find("coalesced"), nullptr);
  EXPECT_TRUE(qb.Find("coalesced")->AsBool());
  EXPECT_EQ(qa.Find("ticket")->AsInt(), qb.Find("ticket")->AsInt());

  const auto [ticket, launch] = fx.fake().WaitForLaunch(0);
  const JsonValue row = FakeRow(m, 0);
  fx.fake().CompleteOk(ticket, row);

  // One simulation, both clients get the document.
  const JsonValue ra = WaitEvent(a, "result");
  const JsonValue rb = WaitEvent(b, "result");
  EXPECT_EQ(ra.Find("row")->Dump(), row.Dump());
  EXPECT_EQ(rb.Find("row")->Dump(), row.Dump());
  EXPECT_EQ(fx.fake().launch_count(), 1u);

  fx.Stop();
  EXPECT_EQ(fx.daemon().stats().cache_coalesced, 1u);
}

TEST(FarmDaemonTest, QueueDrainsRoundRobinAcrossClients) {
  DaemonFixture fx(/*workers=*/1);
  ASSERT_TRUE(fx.Start());
  const runner::Manifest m = DaemonManifest(/*extra_configs=*/2);  // 4 rows
  const JsonValue mj = runner::ManifestToJson(m);

  FarmClient a;
  FarmClient b;
  std::string error;
  ASSERT_TRUE(a.Connect(fx.opts().socket_path, &error)) << error;
  ASSERT_TRUE(b.Connect(fx.opts().socket_path, &error)) << error;

  // A's first job grabs the only slot; then A queues two more and B one.
  Submit(a, mj, 0);
  WaitEvent(a, "started");
  Submit(a, mj, 1);
  WaitEvent(a, "queued");
  Submit(a, mj, 2);
  WaitEvent(a, "queued");
  Submit(b, mj, 3);
  WaitEvent(b, "queued");

  // Completing each running job frees the slot; fairness hands it to the
  // *other* client before A's backlog: expected order 0, 1, 3, 2.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < 4; ++i) {
    const auto [ticket, launch] = fx.fake().WaitForLaunch(i);
    order.push_back(launch.job_index);
    fx.fake().CompleteOk(ticket, FakeRow(m, launch.job_index));
  }
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 3, 2}));

  fx.Stop();
  EXPECT_EQ(fx.daemon().stats().jobs_ok, 4u);
}

TEST(FarmDaemonTest, AdmissionControlRejectsWhenQueueIsFull) {
  DaemonFixture fx(/*workers=*/1, /*max_queued=*/1);
  ASSERT_TRUE(fx.Start());
  const runner::Manifest m = DaemonManifest(/*extra_configs=*/1);  // 3 rows
  const JsonValue mj = runner::ManifestToJson(m);

  FarmClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(fx.opts().socket_path, &error)) << error;
  Submit(client, mj, 0);
  WaitEvent(client, "started");  // slot taken
  Submit(client, mj, 1);
  WaitEvent(client, "queued");  // queue now at its cap
  Submit(client, mj, 2);
  const JsonValue rejected = WaitEvent(client, "rejected");
  EXPECT_EQ(rejected.Find("reason")->AsString(), "queue-full");
  EXPECT_EQ(rejected.Find("job")->AsInt(), 2);

  for (std::size_t i = 0; i < 2; ++i) {
    const auto [ticket, launch] = fx.fake().WaitForLaunch(i);
    fx.fake().CompleteOk(ticket, FakeRow(m, launch.job_index));
  }
  fx.Stop();
  EXPECT_EQ(fx.daemon().stats().rejected, 1u);
}

TEST(FarmDaemonTest, DisconnectMidJobStillRunsAndCachesTheRow) {
  DaemonFixture fx;
  ASSERT_TRUE(fx.Start());
  const runner::Manifest m = DaemonManifest();
  const JsonValue mj = runner::ManifestToJson(m);

  {
    FarmClient doomed;
    std::string error;
    ASSERT_TRUE(doomed.Connect(fx.opts().socket_path, &error)) << error;
    Submit(doomed, mj, 0);
    WaitEvent(doomed, "queued");
    doomed.Close();  // client dies before its job finishes
  }
  const auto [ticket, launch] = fx.fake().WaitForLaunch(0);
  const JsonValue row = FakeRow(m, 0);
  fx.fake().CompleteOk(ticket, row);

  // The orphaned job's row still landed in the cache: a new client gets
  // an immediate hit.
  FarmClient fresh;
  std::string error;
  ASSERT_TRUE(fresh.Connect(fx.opts().socket_path, &error)) << error;
  Submit(fresh, mj, 0);
  const JsonValue hit = WaitEvent(fresh, "result");
  EXPECT_TRUE(hit.Find("cached")->AsBool());
  EXPECT_EQ(hit.Find("row")->Dump(), row.Dump());
  fx.Stop();
}

TEST(FarmDaemonTest, MalformedFrameClosesThatClientOnly) {
  DaemonFixture fx;
  ASSERT_TRUE(fx.Start());

  FarmClient bad;
  std::string error;
  ASSERT_TRUE(bad.Connect(fx.opts().socket_path, &error)) << error;
  // Oversized length prefix: the daemon answers with an error event and
  // cuts the connection.
  {
    // Reach the raw fd through a second connection we fully control.
    const int fd = ConnectUnix(fx.opts().socket_path, &error);
    ASSERT_GE(fd, 0) << error;
    const unsigned char huge[4] = {0xff, 0xff, 0xff, 0xff};
    ASSERT_EQ(4, ::send(fd, huge, 4, MSG_NOSIGNAL));
    JsonValue ev;
    ASSERT_TRUE(ReadFrame(fd, &ev, &error)) << error;
    EXPECT_EQ(ev.Find("event")->AsString(), "error");
    // Next read: clean close.
    EXPECT_FALSE(ReadFrame(fd, &ev, &error));
    ::close(fd);
  }
  // The daemon is still alive and serving other clients.
  ASSERT_TRUE(bad.Ping(&error)) << error;
  fx.Stop();
  EXPECT_EQ(fx.daemon().stats().frames_bad, 1u);
}

TEST(FarmDaemonTest, CancelDropsQueuedJob) {
  DaemonFixture fx(/*workers=*/1);
  ASSERT_TRUE(fx.Start());
  const runner::Manifest m = DaemonManifest();
  const JsonValue mj = runner::ManifestToJson(m);

  FarmClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(fx.opts().socket_path, &error)) << error;
  Submit(client, mj, 0);
  WaitEvent(client, "started");  // occupies the only slot
  Submit(client, mj, 1);
  const JsonValue queued = WaitEvent(client, "queued");
  const std::int64_t ticket = queued.Find("ticket")->AsInt();

  JsonValue cancel = JsonValue::Object();
  cancel.Set("op", JsonValue("cancel"));
  cancel.Set("ticket", JsonValue(ticket));
  ASSERT_TRUE(client.Send(cancel, &error)) << error;
  WaitEvent(client, "canceled");

  const auto [t0, l0] = fx.fake().WaitForLaunch(0);
  fx.fake().CompleteOk(t0, FakeRow(m, 0));
  WaitEvent(client, "result");
  // The canceled job never launched.
  EXPECT_EQ(fx.fake().launch_count(), 1u);
  fx.Stop();
  EXPECT_EQ(fx.daemon().stats().jobs_canceled, 1u);
}

TEST(FarmDaemonTest, DrainPersistsQueueAndRestartRestoresIt) {
  DaemonFixture fx(/*workers=*/1);
  ASSERT_TRUE(fx.Start());
  const runner::Manifest m = DaemonManifest(/*extra_configs=*/1);  // 3 rows
  const JsonValue mj = runner::ManifestToJson(m);

  FarmClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(fx.opts().socket_path, &error)) << error;
  Submit(client, mj, 0);
  WaitEvent(client, "started");
  Submit(client, mj, 1);
  WaitEvent(client, "queued");
  Submit(client, mj, 2);
  WaitEvent(client, "queued");

  // Drain with one running and two queued: the running job finishes, the
  // queued two are persisted.
  FarmClient control;
  ASSERT_TRUE(control.Connect(fx.opts().socket_path, &error)) << error;
  JsonValue drain = JsonValue::Object();
  drain.Set("op", JsonValue("drain"));
  ASSERT_TRUE(control.Send(drain, &error)) << error;
  // A status round-trip on the same connection proves the daemon has
  // processed the drain (frames are handled in order) — only then may the
  // running job finish, else the freed slot could launch a queued job in
  // the window before the drain frame is read.
  JsonValue status_op = JsonValue::Object();
  status_op.Set("op", JsonValue("status"));
  ASSERT_TRUE(control.Send(status_op, &error)) << error;
  const JsonValue status = WaitEvent(control, "status");
  ASSERT_TRUE(status.Find("draining")->AsBool());

  const auto [t0, l0] = fx.fake().WaitForLaunch(0);
  fx.fake().CompleteOk(t0, FakeRow(m, 0));
  const JsonValue result = WaitEvent(client, "result");
  EXPECT_FALSE(result.Find("failed")->AsBool());
  const JsonValue drained = WaitEvent(control, "drained");
  EXPECT_EQ(drained.Find("persisted")->AsInt(), 2);
  fx.Join();
  EXPECT_EQ(fx.exit_code(), 0);
  EXPECT_EQ(fx.fake().launch_count(), 1u);
  ASSERT_TRUE(
      std::filesystem::exists(fx.opts().state_dir + "/queue.json"));

  // A new daemon on the same state dir restores and runs the remainder
  // as orphan jobs — their rows land in the cache.
  FakeExecutor fake2(fx.opts().state_dir + "/tmp");
  FarmDaemon daemon2(fx.opts(), &fake2);
  ASSERT_TRUE(daemon2.Init(&error)) << error;
  EXPECT_EQ(daemon2.queue_depth(), 2u);
  EXPECT_FALSE(
      std::filesystem::exists(fx.opts().state_dir + "/queue.json"));
  std::thread thread2([&] { daemon2.Serve(); });

  for (std::size_t i = 0; i < 2; ++i) {
    const auto [ticket, launch] = fake2.WaitForLaunch(i);
    fake2.CompleteOk(ticket, FakeRow(m, launch.job_index));
  }
  FarmClient fresh;
  ASSERT_TRUE(fresh.Connect(fx.opts().socket_path, &error)) << error;
  Submit(fresh, mj, 1);
  const JsonValue hit = WaitEvent(fresh, "result");
  EXPECT_TRUE(hit.Find("cached")->AsBool());

  FarmClient control2;
  ASSERT_TRUE(control2.Connect(fx.opts().socket_path, &error)) << error;
  ASSERT_TRUE(control2.Drain(nullptr, &error)) << error;
  thread2.join();
}

TEST(FarmDaemonTest, FailedJobsAreReportedButNeverCached) {
  DaemonFixture fx;
  ASSERT_TRUE(fx.Start());
  const runner::Manifest m = DaemonManifest();
  const JsonValue mj = runner::ManifestToJson(m);

  FarmClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(fx.opts().socket_path, &error)) << error;
  Submit(client, mj, 0);
  WaitEvent(client, "queued");
  const auto [t0, l0] = fx.fake().WaitForLaunch(0);
  fx.fake().CompleteFail(t0, 1);
  const JsonValue failed = WaitEvent(client, "result");
  EXPECT_TRUE(failed.Find("failed")->AsBool());
  EXPECT_EQ(failed.Find("row")->Find("error")->AsString(),
            "worker exited 1");

  // The failure was not cached: resubmitting simulates again.
  Submit(client, mj, 0);
  WaitEvent(client, "queued");
  const auto [t1, l1] = fx.fake().WaitForLaunch(1);
  fx.fake().CompleteOk(t1, FakeRow(m, 0));
  const JsonValue ok = WaitEvent(client, "result");
  EXPECT_FALSE(ok.Find("cached")->AsBool());
  fx.Stop();
  EXPECT_EQ(fx.daemon().stats().jobs_failed, 1u);
  EXPECT_EQ(fx.daemon().stats().cache_stores, 1u);
}

TEST(FarmDaemonTest, BadSubmitsGetErrorEventsNotDisconnects) {
  DaemonFixture fx;
  ASSERT_TRUE(fx.Start());
  const runner::Manifest m = DaemonManifest();
  const JsonValue mj = runner::ManifestToJson(m);

  FarmClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(fx.opts().socket_path, &error)) << error;

  // Job index out of range.
  Submit(client, mj, 99);
  JsonValue ev = WaitEvent(client, "error");
  EXPECT_NE(ev.Find("message")->AsString().find("out of range"),
            std::string::npos);

  // Unparseable manifest (unknown key is rejected, not ignored).
  JsonValue bogus = mj;
  bogus.Set("no_such_field", JsonValue(1));
  Submit(client, bogus, 0);
  ev = WaitEvent(client, "error");
  EXPECT_NE(ev.Find("message")->AsString().find("bad manifest"),
            std::string::npos);

  // The connection survived both.
  ASSERT_TRUE(client.Ping(&error)) << error;
  fx.Stop();
}

}  // namespace
}  // namespace spear::farm
