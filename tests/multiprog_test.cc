// Multiprogram execution (DESIGN.md §17): SMT contexts sharing one core,
// the CMP wrapper's shared L2 and cross-core pre-execution, plus the
// per-thread cosim attribution the mix runs rely on.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cosim/cosim.h"
#include "cpu/cmp.h"
#include "cpu/core.h"
#include "eval/harness.h"
#include "sim/emulator.h"
#include "test_programs.h"

namespace spear {
namespace {

using testprog::BuildChase;
using testprog::BuildGather;
using testprog::GatherProgram;

// ---- SMT: N main-thread contexts on one core ----

TEST(SmtCore, VectorCtorWithOneProgramMatchesSingleCtor) {
  const GatherProgram g = BuildGather(4000, 1 << 16);
  Core a(g.prog, SpearCoreConfig(128));
  Core b({&g.prog}, SpearCoreConfig(128));
  const RunResult ra = a.Run(UINT64_MAX, 50'000'000);
  const RunResult rb = b.Run(UINT64_MAX, 50'000'000);
  ASSERT_TRUE(ra.halted);
  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.instructions, rb.instructions);
  EXPECT_EQ(a.outputs(), b.outputs());
}

TEST(SmtCore, TwoContextsPreserveBothPrograms) {
  const GatherProgram g = BuildGather(3000, 1 << 16);
  const Program chase = BuildChase(256, 3000);
  Emulator eg(g.prog), ec(chase);
  eg.Run(10'000'000);
  ec.Run(10'000'000);
  ASSERT_TRUE(eg.halted() && ec.halted());

  Core core({&g.prog, &chase}, SpearCoreConfig(128));
  const RunResult rr = core.Run(UINT64_MAX, 100'000'000);
  ASSERT_TRUE(rr.halted);
  EXPECT_EQ(core.thread_outputs(0), eg.outputs());
  EXPECT_EQ(core.thread_outputs(1), ec.outputs());
  EXPECT_TRUE(core.thread_result(0).halted);
  EXPECT_TRUE(core.thread_result(1).halted);
  EXPECT_EQ(core.thread_result(0).committed + core.thread_result(1).committed,
            rr.instructions);
}

TEST(SmtCore, IcountKeepsIdenticalProgramsInStep) {
  // Two copies of the same program under ICOUNT fetch should advance at
  // (nearly) the same rate; a starved context would show up as a large
  // commit imbalance.
  const GatherProgram g = BuildGather(3000, 1 << 16);
  Core core({&g.prog, &g.prog}, BaselineConfig(128));
  core.Run(40'000, 50'000'000);  // cut mid-run: both contexts still active
  const std::uint64_t a = core.thread_result(0).committed;
  const std::uint64_t b = core.thread_result(1).committed;
  ASSERT_GE(a + b, 40'000u);
  const std::uint64_t hi = a > b ? a : b;
  const std::uint64_t lo = a > b ? b : a;
  EXPECT_LE(hi - lo, hi / 10);  // within 10%
}

TEST(SmtCore, MixRunIsDeterministic) {
  const GatherProgram g = BuildGather(2000, 1 << 15);
  const Program chase = BuildChase(128, 2000);
  EvalOptions opt;
  opt.sim_instrs = 30'000;
  CoreConfig cfg = SpearCoreConfig(128);
  cfg.cosim_check = true;
  const MixRunStats r1 =
      RunMix({&g.prog, &chase}, {"gather", "chase"}, cfg, opt);
  const MixRunStats r2 =
      RunMix({&g.prog, &chase}, {"gather", "chase"}, cfg, opt);
  EXPECT_FALSE(r1.cosim_diverged);
  EXPECT_GT(r1.cosim_checked, 0u);
  // Byte-identical result documents, run to run.
  EXPECT_EQ(MixRunStatsToJson(r1).Dump(2), MixRunStatsToJson(r2).Dump(2));
}

TEST(SmtCore, CosimCleanOnTwoContextMix) {
  const GatherProgram g = BuildGather(3000, 1 << 16);
  const Program chase = BuildChase(256, 3000);
  Core core({&g.prog, &chase}, SpearCoreConfig(128));
  cosim::CosimChecker checker(std::vector<const Program*>{&g.prog, &chase});
  core.set_cosim(&checker);
  const RunResult rr = core.Run(UINT64_MAX, 100'000'000);
  ASSERT_TRUE(rr.halted);
  EXPECT_TRUE(checker.ok());
  EXPECT_GT(checker.commits_checked(0), 0u);
  EXPECT_GT(checker.commits_checked(1), 0u);
  EXPECT_EQ(checker.commits_checked(0) + checker.commits_checked(1),
            checker.stats().commits_checked);
}

TEST(SmtCore, InjectedDivergenceIsAttributedToTheCorruptedThread) {
  const GatherProgram g = BuildGather(3000, 1 << 16);
  const Program chase = BuildChase(256, 3000);
  cosim::CosimChecker::Config cc;
  cc.inject_at = 40;
  cc.inject_tid = 1;  // corrupt thread 1's 40th commit only
  cosim::CosimChecker checker(std::vector<const Program*>{&g.prog, &chase},
                              cc);
  Core core({&g.prog, &chase}, BaselineConfig(128));
  core.set_cosim(&checker);
  core.Run(UINT64_MAX, 100'000'000);
  ASSERT_FALSE(checker.ok());
  EXPECT_EQ(checker.divergence()->record.tid, 1);
  EXPECT_EQ(checker.commits_checked(1), 40u);
  EXPECT_NE(checker.Summary().find("[thread 1]"), std::string::npos);
  EXPECT_NE(checker.Report().find("[thread 1]"), std::string::npos);
}

// ---- CMP: one program per core over a shared L2 ----

TEST(CmpSystem, LockstepRunPreservesEveryProgram) {
  const GatherProgram g = BuildGather(3000, 1 << 16);
  const Program chase = BuildChase(256, 3000);
  Emulator eg(g.prog), ec(chase);
  eg.Run(10'000'000);
  ec.Run(10'000'000);

  CmpSystem cmp({&g.prog, &chase}, SpearCoreConfig(128));
  cmp.EnableCosim();
  const RunResult rr = cmp.Run(UINT64_MAX, 100'000'000);
  ASSERT_TRUE(rr.halted);
  EXPECT_FALSE(cmp.cosim_diverged());
  EXPECT_GT(cmp.cosim_checked(), 0u);
  EXPECT_EQ(cmp.core(0).thread_outputs(0), eg.outputs());
  EXPECT_EQ(cmp.core(1).thread_outputs(0), ec.outputs());
}

TEST(CmpSystem, RunIsDeterministic) {
  const GatherProgram g = BuildGather(2000, 1 << 15);
  const Program chase = BuildChase(128, 2000);
  CmpSystem a({&g.prog, &chase}, SpearCoreConfig(128));
  CmpSystem b({&g.prog, &chase}, SpearCoreConfig(128));
  const RunResult ra = a.Run(30'000, 50'000'000);
  const RunResult rb = b.Run(30'000, 50'000'000);
  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.instructions, rb.instructions);
  EXPECT_EQ(a.core(0).stats().committed, b.core(0).stats().committed);
  EXPECT_EQ(a.core(1).stats().committed, b.core(1).stats().committed);
}

TEST(CmpSystem, InjectedDivergenceLandsOnTheTargetCore) {
  const GatherProgram g = BuildGather(3000, 1 << 16);
  const Program chase = BuildChase(256, 3000);
  CmpSystem cmp({&g.prog, &chase}, BaselineConfig(128));
  cosim::CosimChecker::Config cc;
  cc.inject_at = 40;
  cmp.EnableCosim(cc, /*target_core=*/1);
  cmp.Run(UINT64_MAX, 100'000'000);
  EXPECT_TRUE(cmp.cosim_diverged());
  EXPECT_FALSE(cmp.core(0).cosim_diverged());
  EXPECT_TRUE(cmp.core(1).cosim_diverged());
  EXPECT_FALSE(cmp.CosimReport().empty());
}

TEST(CmpSystem, SharedL2DoesNotAliasIdenticalAddressSpaces) {
  // Two cores run the *same* program — identical virtual addresses. With
  // asid-keyed tags each core must take its own L2 misses; aliasing would
  // let core 1 hit on core 0's lines and cut the shared-L2 miss count
  // below twice the solo run's. (Set contention can only add misses.)
  const GatherProgram g = BuildGather(3000, 1 << 16);
  const CoreConfig cfg = BaselineConfig(128);

  Core solo(g.prog, cfg);
  solo.Run(UINT64_MAX, 100'000'000);
  const std::uint64_t solo_l2 = solo.hierarchy().l2().misses(0) +
                                solo.hierarchy().l2().misses(1);
  ASSERT_GT(solo_l2, 0u);

  CmpSystem cmp({&g.prog, &g.prog}, cfg);
  cmp.EnableCosim();
  const RunResult rr = cmp.Run(UINT64_MAX, 100'000'000);
  ASSERT_TRUE(rr.halted);
  EXPECT_FALSE(cmp.cosim_diverged());
  const std::uint64_t shared_l2 =
      cmp.shared_l2().misses(0) + cmp.shared_l2().misses(1);
  EXPECT_GE(shared_l2, 2 * solo_l2);
}

TEST(CmpSystem, CrossCorePreExecutionRunsOnIdleDonor) {
  // Gather triggers constantly; the chase partner is mostly idle between
  // its serial misses, so donor grants must happen. The sessions must
  // stay architecturally invisible (cosim-clean, outputs intact).
  const GatherProgram g = BuildGather(3000, 1 << 16);
  const Program chase = BuildChase(256, 3000);
  Emulator eg(g.prog);
  eg.Run(10'000'000);

  CoreConfig cfg = SpearCoreConfig(128);
  cfg.spear.xcore_pthreads = true;
  CmpSystem cmp({&g.prog, &chase}, cfg);
  cmp.EnableCosim();
  const RunResult rr = cmp.Run(UINT64_MAX, 100'000'000);
  ASSERT_TRUE(rr.halted);
  EXPECT_FALSE(cmp.cosim_diverged());
  const CoreStats& s0 = cmp.core(0).stats();
  EXPECT_GT(s0.xcore_sessions, 0u);
  EXPECT_EQ(cmp.core(0).thread_outputs(0), eg.outputs());
  // A cross-core p-thread warms the shared L2 only — the p-thread slot of
  // core 0's *private* L1 must stay untouched while sessions ran there.
  EXPECT_GT(cmp.shared_l2().misses(1) + cmp.shared_l2().hits(1), 0u);
}

TEST(CmpSystem, XcoreFallsBackToOwnCoreWhenNoDonorIsIdle) {
  // Both cores run the trigger-heavy gather: donors are usually busy with
  // their own sessions, so at least some sessions must take the same-core
  // fallback — and the counters must account for every session one way or
  // the other.
  const GatherProgram g = BuildGather(3000, 1 << 16);
  CoreConfig cfg = SpearCoreConfig(128);
  cfg.spear.xcore_pthreads = true;
  CmpSystem cmp({&g.prog, &g.prog}, cfg);
  cmp.EnableCosim();
  const RunResult rr = cmp.Run(UINT64_MAX, 100'000'000);
  ASSERT_TRUE(rr.halted);
  EXPECT_FALSE(cmp.cosim_diverged());
  const CoreStats& s0 = cmp.core(0).stats();
  const CoreStats& s1 = cmp.core(1).stats();
  EXPECT_GT(s0.xcore_sessions + s0.xcore_fallback_same_core +
                s1.xcore_sessions + s1.xcore_fallback_same_core,
            0u);
}

}  // namespace
}  // namespace spear
