#include <gtest/gtest.h>

#include <vector>

#include "cpu/core.h"
#include "isa/assembler.h"
#include "isa/program.h"
#include "sim/emulator.h"

namespace spear {
namespace {

// Builds, runs to halt (bounded), returns the emulator for inspection.
Emulator RunProgram(const Program& prog, std::uint64_t budget = 1'000'000) {
  Emulator emu(prog);
  emu.Run(budget);
  EXPECT_TRUE(emu.halted()) << "program did not halt within budget";
  return emu;
}

TEST(Emulator, ArithmeticBasics) {
  Program prog;
  Assembler a(&prog);
  a.li(r(1), 6);
  a.li(r(2), 7);
  a.mul(r(3), r(1), r(2));
  a.out(r(3));
  a.sub(r(4), r(1), r(2));
  a.out(r(4));
  a.halt();
  a.Finish();
  Emulator emu = RunProgram(prog);
  ASSERT_EQ(emu.outputs().size(), 2u);
  EXPECT_EQ(emu.outputs()[0], 42u);
  EXPECT_EQ(emu.outputs()[1], static_cast<std::uint32_t>(-1));
}

TEST(Emulator, RegZeroIsImmutable) {
  Program prog;
  Assembler a(&prog);
  a.li(r(0), 99);     // write to r0 is discarded
  a.add(r(1), r(0), r(0));
  a.out(r(1));
  a.halt();
  a.Finish();
  EXPECT_EQ(RunProgram(prog).outputs()[0], 0u);
}

// Regression: ArchState::ReadInt once bypassed the r0 guard, so state
// read *through the state object* could observe a value another path had
// parked in slot 0. r0 must read as zero both architecturally (as a
// source operand of a later instruction) and through the register-file
// accessor.
TEST(Emulator, RegZeroReadsAsZeroBothWays) {
  Program prog;
  Assembler a(&prog);
  a.li(r(1), 41);
  a.addi(r(0), r(1), 5);  // attempted write: r0 would become 46
  a.addi(r(2), r(0), 7);  // architectural read of r0
  a.out(r(2));
  a.halt();
  a.Finish();
  Emulator emu = RunProgram(prog);
  EXPECT_EQ(emu.outputs()[0], 7u);             // r0 read as source = 0
  EXPECT_EQ(emu.ReadIntReg(kRegZero), 0u);     // accessor read = 0
}

TEST(Emulator, DivByZeroYieldsZeroNotTrap) {
  Program prog;
  Assembler a(&prog);
  a.li(r(1), 10);
  a.li(r(2), 0);
  a.div(r(3), r(1), r(2));
  a.out(r(3));
  a.rem(r(4), r(1), r(2));
  a.out(r(4));
  a.halt();
  a.Finish();
  Emulator emu = RunProgram(prog);
  EXPECT_EQ(emu.outputs()[0], 0u);
  EXPECT_EQ(emu.outputs()[1], 0u);
}

TEST(Emulator, SignedDivisionRounding) {
  Program prog;
  Assembler a(&prog);
  a.li(r(1), -7);
  a.li(r(2), 2);
  a.div(r(3), r(1), r(2));
  a.out(r(3));  // C semantics: -3
  a.rem(r(4), r(1), r(2));
  a.out(r(4));  // -1
  a.halt();
  a.Finish();
  Emulator emu = RunProgram(prog);
  EXPECT_EQ(static_cast<std::int32_t>(emu.outputs()[0]), -3);
  EXPECT_EQ(static_cast<std::int32_t>(emu.outputs()[1]), -1);
}

TEST(Emulator, ShiftsAndLogic) {
  Program prog;
  Assembler a(&prog);
  a.li(r(1), -8);          // 0xfffffff8
  a.srai(r(2), r(1), 1);   // -4
  a.out(r(2));
  a.srli(r(3), r(1), 28);  // 0xf
  a.out(r(3));
  a.slli(r(4), r(1), 1);   // -16
  a.out(r(4));
  a.andi(r(5), r(1), 0xff);
  a.out(r(5));             // 0xf8
  a.halt();
  a.Finish();
  Emulator emu = RunProgram(prog);
  EXPECT_EQ(static_cast<std::int32_t>(emu.outputs()[0]), -4);
  EXPECT_EQ(emu.outputs()[1], 0xfu);
  EXPECT_EQ(static_cast<std::int32_t>(emu.outputs()[2]), -16);
  EXPECT_EQ(emu.outputs()[3], 0xf8u);
}

TEST(Emulator, LoadStoreWordAndByte) {
  Program prog;
  prog.AddSegment(0x200000, 256);
  Assembler a(&prog);
  a.la(r(1), 0x200000);
  a.li(r(2), 0x11223344);
  a.sw(r(2), r(1), 0);
  a.lw(r(3), r(1), 0);
  a.out(r(3));
  a.lbu(r(4), r(1), 1);  // little-endian: byte 1 is 0x33
  a.out(r(4));
  a.sb(r(4), r(1), 8);
  a.lw(r(5), r(1), 8);
  a.out(r(5));
  a.halt();
  a.Finish();
  Emulator emu = RunProgram(prog);
  EXPECT_EQ(emu.outputs()[0], 0x11223344u);
  EXPECT_EQ(emu.outputs()[1], 0x33u);
  EXPECT_EQ(emu.outputs()[2], 0x33u);
}

TEST(Emulator, InitializedDataSegmentIsVisible) {
  Program prog;
  DataSegment& seg = prog.AddSegment(0x300000, 64);
  PokeU32(seg, 0x300004, 777);
  PokeF64(seg, 0x300010, 2.5);
  Assembler a(&prog);
  a.la(r(1), 0x300000);
  a.lw(r(2), r(1), 4);
  a.out(r(2));
  a.ldf(f(1), r(1), 16);
  a.cvtfi(r(3), f(1));
  a.out(r(3));
  a.halt();
  a.Finish();
  Emulator emu = RunProgram(prog);
  EXPECT_EQ(emu.outputs()[0], 777u);
  EXPECT_EQ(emu.outputs()[1], 2u);
}

TEST(Emulator, FpArithmeticAndCompare) {
  Program prog;
  Assembler a(&prog);
  a.li(r(1), 3);
  a.cvtif(f(1), r(1));
  a.li(r(2), 4);
  a.cvtif(f(2), r(2));
  a.fmul(f(3), f(1), f(2));   // 12.0
  a.cvtfi(r(3), f(3));
  a.out(r(3));
  a.fdiv(f(4), f(1), f(2));   // 0.75
  a.flt(r(4), f(4), f(1));    // 0.75 < 3 -> 1
  a.out(r(4));
  a.fle(r(5), f(1), f(1));    // 1
  a.out(r(5));
  a.feq(r(6), f(1), f(2));    // 0
  a.out(r(6));
  a.fneg(f(5), f(1));
  a.cvtfi(r(7), f(5));
  a.out(r(7));                // -3
  a.halt();
  a.Finish();
  Emulator emu = RunProgram(prog);
  EXPECT_EQ(emu.outputs()[0], 12u);
  EXPECT_EQ(emu.outputs()[1], 1u);
  EXPECT_EQ(emu.outputs()[2], 1u);
  EXPECT_EQ(emu.outputs()[3], 0u);
  EXPECT_EQ(static_cast<std::int32_t>(emu.outputs()[4]), -3);
}

TEST(Emulator, LoopCountsDown) {
  Program prog;
  Assembler a(&prog);
  Label loop = a.NewLabel();
  a.li(r(1), 100);
  a.li(r(2), 0);
  a.Bind(loop);
  a.add(r(2), r(2), r(1));
  a.addi(r(1), r(1), -1);
  a.bne(r(1), r(0), loop);
  a.out(r(2));  // sum 1..100 = 5050
  a.halt();
  a.Finish();
  EXPECT_EQ(RunProgram(prog).outputs()[0], 5050u);
}

TEST(Emulator, CallAndReturnThroughRa) {
  Program prog;
  Assembler a(&prog);
  Label func = a.NewLabel();
  Label done = a.NewLabel();
  a.li(r(4), 20);
  a.jal(func);
  a.out(r(5));
  a.j(done);
  a.Bind(func);
  a.addi(r(5), r(4), 22);
  a.ret();
  a.Bind(done);
  a.halt();
  a.Finish();
  EXPECT_EQ(RunProgram(prog).outputs()[0], 42u);
}

TEST(Emulator, BranchVariants) {
  Program prog;
  Assembler a(&prog);
  // For (taken, not taken) pairs, write 1/0 via slt-like sequences using
  // actual branches.
  Label t1 = a.NewLabel(), e1 = a.NewLabel();
  a.li(r(1), -5);
  a.li(r(2), 3);
  a.blt(r(1), r(2), t1);   // signed: taken
  a.li(r(10), 0);
  a.j(e1);
  a.Bind(t1);
  a.li(r(10), 1);
  a.Bind(e1);
  a.out(r(10));

  Label t2 = a.NewLabel(), e2 = a.NewLabel();
  a.bltu(r(1), r(2), t2);  // unsigned: 0xfffffffb < 3 is false
  a.li(r(10), 0);
  a.j(e2);
  a.Bind(t2);
  a.li(r(10), 1);
  a.Bind(e2);
  a.out(r(10));

  Label t3 = a.NewLabel(), e3 = a.NewLabel();
  a.bge(r(2), r(1), t3);   // 3 >= -5 signed: taken
  a.li(r(10), 0);
  a.j(e3);
  a.Bind(t3);
  a.li(r(10), 1);
  a.Bind(e3);
  a.out(r(10));
  a.halt();
  a.Finish();

  Emulator emu = RunProgram(prog);
  EXPECT_EQ(emu.outputs()[0], 1u);
  EXPECT_EQ(emu.outputs()[1], 0u);
  EXPECT_EQ(emu.outputs()[2], 1u);
}

TEST(Emulator, StepInfoReportsMemoryAddressesAndControl) {
  Program prog;
  prog.AddSegment(0x400000, 64);
  Assembler a(&prog);
  a.la(r(1), 0x400000);
  a.lw(r(2), r(1), 8);
  a.sw(r(2), r(1), 12);
  a.halt();
  a.Finish();
  Emulator emu(prog);
  StepInfo s0 = emu.Step();
  EXPECT_FALSE(s0.result.is_load);
  StepInfo s1 = emu.Step();
  EXPECT_TRUE(s1.result.is_load);
  EXPECT_EQ(s1.result.mem_addr, 0x400008u);
  StepInfo s2 = emu.Step();
  EXPECT_TRUE(s2.result.is_store);
  EXPECT_EQ(s2.result.mem_addr, 0x40000cu);
  StepInfo s3 = emu.Step();
  EXPECT_TRUE(s3.result.halted);
  EXPECT_TRUE(emu.halted());
}

TEST(Emulator, RunRespectsBudget) {
  Program prog;
  Assembler a(&prog);
  Label spin = a.BindNew();
  a.j(spin);  // infinite loop
  a.Finish();
  Emulator emu(prog);
  EXPECT_EQ(emu.Run(1000), 1000u);
  EXPECT_FALSE(emu.halted());
  EXPECT_EQ(emu.icount(), 1000u);
}

// --- out-of-text PC: structured fault, not a CHECK-abort ----------------

TEST(EmulatorFault, WildJumpTargetLatchesFault) {
  Program prog;
  Assembler a(&prog);
  a.li(r(1), 0x00deadb8);  // not a text PC
  a.jr(r(1));
  a.halt();  // never reached
  a.Finish();
  Emulator emu(prog);
  emu.Run(1000);
  EXPECT_FALSE(emu.halted());
  EXPECT_TRUE(emu.faulted());
  EXPECT_EQ(emu.fault_pc(), 0x00deadb8u);
  EXPECT_EQ(emu.icount(), 2u);  // li + jr executed, nothing after
}

TEST(EmulatorFault, RunningOffTextEndFaultsAtEndPc) {
  Program prog;
  Assembler a(&prog);
  a.li(r(1), 1);  // no halt: execution falls off the end of text
  a.Finish();
  Emulator emu(prog);
  emu.Run(1000);
  EXPECT_TRUE(emu.faulted());
  EXPECT_EQ(emu.fault_pc(), prog.EndPc());

  // Step() on the wild PC is the latch point: it reports the offending
  // PC, executes nothing, and leaves icount where it was.
  Emulator step(prog);
  step.Step();  // li
  ASSERT_FALSE(step.faulted());
  const StepInfo info = step.Step();
  EXPECT_TRUE(step.faulted());
  EXPECT_EQ(info.pc, prog.EndPc());
  EXPECT_EQ(step.icount(), 1u);
}

// --- stack seeding vs adversarial data segments -------------------------

TEST(EmulatorStack, SpSeedsToStackBaseWithoutOverlap) {
  Program prog;
  Assembler a(&prog);
  a.halt();
  a.Finish();
  prog.AddSegment(0x400000, 64);  // nowhere near the stack band
  EXPECT_EQ(InitialStackPointer(prog), kStackBase);
  Emulator emu(prog);
  EXPECT_EQ(emu.ReadIntReg(kRegSp), kStackBase);
}

TEST(EmulatorStack, SpRelocatesAboveSegmentInStackBand) {
  Program prog;
  Assembler a(&prog);
  // Store through sp, then read back the segment's sentinel word: a
  // non-relocated stack would clobber the segment it sits on.
  a.la(r(1), kStackBase - 8);
  a.lw(r(2), r(1), 0);
  a.sw(r(3), kRegSp, -4);
  a.lw(r(4), r(1), 0);
  a.out(r(2));
  a.out(r(4));
  a.halt();
  a.Finish();
  // Segment straddling the old seed: [kStackBase - 4 KiB, kStackBase + 4 KiB).
  DataSegment& seg = prog.AddSegment(kStackBase - 4096, 8192);
  PokeU32(seg, kStackBase - 8, 0xfeedface);

  const Addr sp = InitialStackPointer(prog);
  const Addr seg_end = kStackBase + 4096;
  EXPECT_GE(sp, seg_end + kStackGuardBytes);
  EXPECT_EQ(sp % kInstrBytes, 0u);

  Emulator emu(prog);
  EXPECT_EQ(emu.ReadIntReg(kRegSp), sp);
  emu.Run(100);
  ASSERT_TRUE(emu.halted());
  EXPECT_EQ(emu.outputs()[0], 0xfeedfaceu);
  EXPECT_EQ(emu.outputs()[1], 0xfeedfaceu);  // survived the sp-relative store
}

TEST(EmulatorStack, SpRelocationIteratesToFixpoint) {
  Program prog;
  Assembler a(&prog);
  a.halt();
  a.Finish();
  // First segment pushes sp up; the second sits exactly where the first
  // relocation would land, forcing another pass.
  prog.AddSegment(kStackBase - 4096, 8192);
  const Addr first_sp = InitialStackPointer(prog);
  prog.AddSegment(first_sp - 16, 4096);
  const Addr sp = InitialStackPointer(prog);
  EXPECT_GE(sp, first_sp - 16 + 4096 + kStackGuardBytes);
  for (const DataSegment& seg : prog.data) {
    const std::uint64_t seg_end =
        static_cast<std::uint64_t>(seg.base) + seg.bytes.size();
    EXPECT_FALSE(seg.base < sp && seg_end > sp - kStackGuardBytes)
        << "segment at " << seg.base << " still overlaps the stack band";
  }
}

TEST(EmulatorStack, SpSeedRefusedWhenNoRoomLeft) {
  Program prog;
  Assembler a(&prog);
  a.halt();
  a.Finish();
  // A chain of tiny segments, each sitting exactly where the previous
  // relocation lands, walks the fixpoint to the top of the usable range:
  // no band is left for the stack, so the seed must refuse loudly
  // instead of wrapping.
  std::uint64_t sp = kStackBase;
  while (sp <= 0xfff00000ull) {
    prog.AddSegment(static_cast<Addr>(sp - 8), 16);
    sp = sp + 8 + kStackGuardBytes;  // the relocation this segment forces
  }
  EXPECT_DEATH(InitialStackPointer(prog), "SPEAR_CHECK failed");
}

TEST(EmulatorStack, EmulatorAndCoreAgreeOnRelocatedSp) {
  Program prog;
  Assembler a(&prog);
  a.out(kRegSp);  // whatever sp seeds to is the first OUT value
  a.halt();
  a.Finish();
  DataSegment& seg = prog.AddSegment(kStackBase - 512, 1024);
  PokeU32(seg, kStackBase - 512, 1);  // keep the segment non-trivial

  Emulator emu(prog);
  emu.Run(100);
  ASSERT_TRUE(emu.halted());

  Core core(prog, BaselineConfig());
  core.Run(UINT64_MAX, 1'000'000);
  ASSERT_TRUE(core.halted());

  ASSERT_EQ(emu.outputs().size(), 1u);
  EXPECT_EQ(core.outputs(), emu.outputs());
  EXPECT_EQ(emu.outputs()[0], InitialStackPointer(prog));
}

TEST(Emulator, CvtfiSaturates) {
  Program prog;
  Assembler a(&prog);
  a.li(r(1), 1 << 30);
  a.cvtif(f(1), r(1));
  a.fadd(f(2), f(1), f(1));  // 2^31 > int32 max
  a.cvtfi(r(2), f(2));
  a.out(r(2));
  a.halt();
  a.Finish();
  EXPECT_EQ(RunProgram(prog).outputs()[0], 0x7fffffffu);
}

}  // namespace
}  // namespace spear
