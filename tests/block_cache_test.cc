// BlockCache behaviour the Emulator and Core hot loops depend on: runs
// split at already-built regions (never merged, never re-decoded), the
// fingerprint keys invalidation on exactly the code image + marks source,
// and the baked pre-decode marks agree with the per-instruction
// PThreadTable probes the pre-decoder used to make on every fetch.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "eval/harness.h"
#include "isa/assembler.h"
#include "isa/instruction.h"
#include "isa/opcode.h"
#include "isa/program.h"
#include "sim/block_cache.h"
#include "spear/pthread_table.h"
#include "test_programs.h"
#include "workloads/workload.h"

namespace spear {
namespace {

// Straight-line body with one backward branch and a halt:
//   0: li   r1
//   1: li   r2
//   2: loop: add r3        <- branch target, mid-run
//   3: addi r2, -1
//   4: bne  r2, r0, loop   <- control, run terminator
//   5: out  r3
//   6: halt
Program BuildLoopProgram() {
  Program prog;
  Assembler a(&prog);
  Label loop = a.NewLabel();
  a.li(r(1), 5);
  a.li(r(2), 3);
  a.Bind(loop);
  a.add(r(3), r(3), r(1));
  a.addi(r(2), r(2), -1);
  a.bne(r(2), r(0), loop);
  a.out(r(3));
  a.halt();
  a.Finish();
  return prog;
}

Pc PcAt(const Program& prog, std::uint32_t index) {
  return prog.text_base + static_cast<Pc>(index) * kInstrBytes;
}

TEST(BlockCache, RunsEndAtControlAndHalt) {
  Program prog = BuildLoopProgram();
  BlockCache cache;
  cache.Attach(prog, nullptr);

  // First touch from the entry decodes the run up to and including the
  // branch (indices 0..4), nothing beyond it.
  BlockCache::Block b = cache.Lookup(prog.entry);
  ASSERT_NE(b.recs, nullptr);
  EXPECT_EQ(b.len, 5u);
  EXPECT_TRUE(b.recs[b.len - 1].is_control());
  for (std::uint32_t i = 0; i + 1 < b.len; ++i) {
    EXPECT_FALSE(b.recs[i].is_control()) << "control mid-run at " << i;
    EXPECT_FALSE(b.recs[i].is_halt());
  }
  EXPECT_EQ(cache.stats().blocks_built, 1u);
  EXPECT_EQ(cache.stats().instrs_decoded, 5u);

  // Fall-through after the branch: out + halt, terminated by HALT.
  BlockCache::Block tail = cache.Lookup(PcAt(prog, 5));
  ASSERT_NE(tail.recs, nullptr);
  EXPECT_EQ(tail.len, 2u);
  EXPECT_TRUE(tail.recs[tail.len - 1].is_halt());
  EXPECT_EQ(cache.stats().blocks_built, 2u);
  EXPECT_EQ(cache.stats().instrs_decoded, 7u);
}

TEST(BlockCache, BranchIntoBuiltRunHitsMidRunRecords) {
  Program prog = BuildLoopProgram();
  BlockCache cache;
  cache.Attach(prog, nullptr);

  BlockCache::Block whole = cache.Lookup(prog.entry);
  ASSERT_EQ(whole.len, 5u);
  const std::uint64_t built = cache.stats().blocks_built;
  const std::uint64_t decoded = cache.stats().instrs_decoded;

  // The branch target (index 2) sits mid-run: the lookup must hit the
  // existing records — same storage, suffix length — with no rebuild.
  BlockCache::Block mid = cache.Lookup(PcAt(prog, 2));
  EXPECT_EQ(mid.recs, whole.recs + 2);
  EXPECT_EQ(mid.len, 3u);
  EXPECT_EQ(cache.stats().blocks_built, built);
  EXPECT_EQ(cache.stats().instrs_decoded, decoded);
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST(BlockCache, RunsSplitAtBuiltRegionBoundary) {
  Program prog = BuildLoopProgram();
  BlockCache cache;
  cache.Attach(prog, nullptr);

  // Build the loop body first (indices 2..4), as a taken backward branch
  // would touch it before the fall-through path runs.
  BlockCache::Block body = cache.Lookup(PcAt(prog, 2));
  ASSERT_EQ(body.len, 3u);

  // Now the entry run must stop at the edge of the built region: indices
  // 0..1 only, ending in a *non*-terminator. Runs are never merged, so
  // the two instructions already covered are not re-decoded.
  BlockCache::Block head = cache.Lookup(prog.entry);
  ASSERT_NE(head.recs, nullptr);
  EXPECT_EQ(head.len, 2u);
  EXPECT_FALSE(head.recs[head.len - 1].is_control());
  EXPECT_FALSE(head.recs[head.len - 1].is_halt());
  EXPECT_EQ(cache.stats().blocks_built, 2u);
  EXPECT_EQ(cache.stats().instrs_decoded, 5u);

  // The split point still resolves to the original body records.
  EXPECT_EQ(cache.Lookup(PcAt(prog, 2)).recs, body.recs);
}

TEST(BlockCache, OffTextAndMisalignedPcsMiss) {
  Program prog = BuildLoopProgram();
  BlockCache cache;
  cache.Attach(prog, nullptr);

  EXPECT_EQ(cache.Record(prog.text_base - kInstrBytes), nullptr);
  EXPECT_EQ(cache.Record(prog.EndPc()), nullptr);
  EXPECT_EQ(cache.Record(prog.entry + 1), nullptr);  // misaligned
  EXPECT_EQ(cache.Lookup(prog.EndPc()).recs, nullptr);
  EXPECT_EQ(cache.Lookup(prog.EndPc()).len, 0u);
}

TEST(BlockCache, WarmReattachKeepsBlocksColdReattachFlushes) {
  Program prog = BuildLoopProgram();
  BlockCache cache;
  cache.Attach(prog, nullptr);
  cache.Lookup(prog.entry);
  ASSERT_EQ(cache.stats().blocks_built, 1u);

  // Same fingerprint through a different Program copy: warm re-attach,
  // every record survives (this is the sampled-run reuse path).
  Program copy = prog;
  cache.Attach(copy, nullptr);
  EXPECT_EQ(cache.stats().flushes, 0u);
  const std::uint64_t hits = cache.stats().hits;
  EXPECT_NE(cache.Record(copy.entry), nullptr);
  EXPECT_EQ(cache.stats().hits, hits + 1);
  EXPECT_EQ(cache.stats().blocks_built, 1u);

  // Different text: flush; the old entry record is gone and rebuilt.
  Program other = BuildLoopProgram();
  other.text[0] = prog.text[3];
  ASSERT_NE(BlockCache::CodeFingerprint(other, false),
            BlockCache::CodeFingerprint(prog, false));
  cache.Attach(other, nullptr);
  EXPECT_EQ(cache.stats().flushes, 1u);
  const std::uint64_t misses = cache.stats().misses;
  EXPECT_NE(cache.Record(other.entry), nullptr);
  EXPECT_EQ(cache.stats().misses, misses + 1);
}

TEST(BlockCache, FingerprintCoversCodeAndMarksNotData) {
  const testprog::GatherProgram g = testprog::BuildGather(8, 16);
  const std::uint64_t base = BlockCache::CodeFingerprint(g.prog, true);

  // Data segments are excluded: poking data does not invalidate.
  Program data = g.prog;
  ASSERT_FALSE(data.data.empty());
  data.data[0].bytes[0] ^= 0xff;
  EXPECT_EQ(BlockCache::CodeFingerprint(data, true), base);

  // The p-thread section participates iff marks are requested.
  Program nopt = g.prog;
  nopt.pthreads.clear();
  EXPECT_NE(BlockCache::CodeFingerprint(nopt, true), base);
  EXPECT_EQ(BlockCache::CodeFingerprint(nopt, false),
            BlockCache::CodeFingerprint(g.prog, false));

  // Entry participates even with identical text.
  Program entry = g.prog;
  entry.entry += kInstrBytes;
  EXPECT_NE(BlockCache::CodeFingerprint(entry, true), base);
}

TEST(BlockCache, PtAttachBakesMarks) {
  const testprog::GatherProgram g = testprog::BuildGather(8, 16);
  const PThreadTable pt(g.prog.pthreads);
  ASSERT_FALSE(pt.empty());

  BlockCache cache;
  cache.Attach(g.prog, &pt);
  const DecodedInstr* dload = cache.Record(g.dload_pc);
  ASSERT_NE(dload, nullptr);
  EXPECT_GE(dload->dload_spec, 0);
  EXPECT_EQ(dload->dload_spec, pt.DloadSpec(g.dload_pc));

  // Attaching with marks vs without is a fingerprint change: the d-load
  // mark must not survive into a no-PT attach.
  cache.Attach(g.prog, nullptr);
  EXPECT_EQ(cache.stats().flushes, 1u);
  const DecodedInstr* plain = cache.Record(g.dload_pc);
  ASSERT_NE(plain, nullptr);
  EXPECT_EQ(plain->dload_spec, PThreadTable::kNoSpec);
  EXPECT_FALSE(plain->pthread_indicator);
}

// Every record's decode, tag and pre-decode marks must agree with the
// per-instruction path (opcode table + PThreadTable probes) on the full
// 15-workload suite, post-compiler annotations included.
TEST(BlockCache, MarksMatchPerInstructionPreDecoderOnAllWorkloads) {
  EvalOptions opt;
  opt.compiler.profiler.max_instrs = 200'000;
  for (const WorkloadInfo& w : AllWorkloads()) {
    SCOPED_TRACE(w.name);
    const PreparedWorkload pw = PrepareWorkload(w.name, opt);
    const PThreadTable pt(pw.annotated.pthreads);

    BlockCache cache;
    cache.Attach(pw.annotated, pt.empty() ? nullptr : &pt);
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(pw.annotated.text.size()); ++i) {
      const Pc pc = PcAt(pw.annotated, i);
      const DecodedInstr* rec = cache.Record(pc);
      ASSERT_NE(rec, nullptr);
      const Instruction& ref = pw.annotated.text[i];
      EXPECT_EQ(Encode(rec->instr), Encode(ref));
      EXPECT_EQ(rec->is_control(), IsControl(ref.op));
      EXPECT_EQ(rec->is_halt(), IsHalt(ref.op));
      EXPECT_EQ(rec->pthread_indicator, pt.InAnySlice(pc));
      EXPECT_EQ(rec->dload_spec, pt.DloadSpec(pc));
    }
    // Whole text decoded exactly once.
    EXPECT_EQ(cache.stats().instrs_decoded, pw.annotated.text.size());
  }
}

}  // namespace
}  // namespace spear
