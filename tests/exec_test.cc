// Golden-model tests for ExecuteInstruction: every opcode's semantics are
// checked against an independent C++ reference over a grid of operand
// values (including the signed/unsigned edge cases), on a plain in-memory
// state. Because the emulator, the pipeline and the p-thread context all
// execute through this one template, these tests pin the ISA semantics for
// the whole stack.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "isa/instruction.h"
#include "sim/exec.h"

namespace spear {
namespace {

// Minimal architectural state satisfying the State concept.
struct TestState {
  std::array<std::uint32_t, kNumIntRegs> iregs{};
  std::array<double, kNumFpRegs> fregs{};
  std::unordered_map<Addr, std::uint8_t> mem;

  std::uint32_t ReadInt(RegId r) { return iregs[r]; }
  void WriteInt(RegId r, std::uint32_t v) { iregs[r] = v; }
  double ReadFp(RegId r) { return fregs[FpIndex(r)]; }
  void WriteFp(RegId r, double v) { fregs[FpIndex(r)] = v; }
  std::uint8_t LoadU8(Addr a) {
    auto it = mem.find(a);
    return it == mem.end() ? 0 : it->second;
  }
  std::uint32_t LoadU32(Addr a) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(LoadU8(a + static_cast<Addr>(i))) << (8 * i);
    return v;
  }
  double LoadF64(Addr a) {
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i)
      bits |= static_cast<std::uint64_t>(LoadU8(a + static_cast<Addr>(i)))
              << (8 * i);
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }
  void StoreU8(Addr a, std::uint8_t v) { mem[a] = v; }
  void StoreU32(Addr a, std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      StoreU8(a + static_cast<Addr>(i), static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void StoreF64(Addr a, double v) {
    std::uint64_t bits;
    __builtin_memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i)
      StoreU8(a + static_cast<Addr>(i),
              static_cast<std::uint8_t>(bits >> (8 * i)));
  }
};

constexpr std::uint32_t kIntGrid[] = {
    0u,          1u,          2u,          7u,
    0x7fffffffu,              // INT_MAX
    0x80000000u,              // INT_MIN
    0xffffffffu,              // -1
    0xfffffff9u,              // -7
    12345u,      0xdeadbeefu,
};

std::int32_t S(std::uint32_t v) { return static_cast<std::int32_t>(v); }

// R-type binary int ops against a reference function.
struct RCase {
  Opcode op;
  std::function<std::uint32_t(std::uint32_t, std::uint32_t)> ref;
};

class RTypeGolden : public testing::TestWithParam<int> {};

const std::vector<RCase>& RCases() {
  static const std::vector<RCase> kCases = {
      {Opcode::kAdd, [](std::uint32_t a, std::uint32_t b) { return a + b; }},
      {Opcode::kSub, [](std::uint32_t a, std::uint32_t b) { return a - b; }},
      {Opcode::kMul, [](std::uint32_t a, std::uint32_t b) { return a * b; }},
      {Opcode::kDiv,
       [](std::uint32_t a, std::uint32_t b) -> std::uint32_t {
         if (S(b) == 0) return 0;
         return static_cast<std::uint32_t>(static_cast<std::int64_t>(S(a)) /
                                           S(b));
       }},
      {Opcode::kRem,
       [](std::uint32_t a, std::uint32_t b) -> std::uint32_t {
         if (S(b) == 0) return 0;
         return static_cast<std::uint32_t>(static_cast<std::int64_t>(S(a)) %
                                           S(b));
       }},
      {Opcode::kAnd, [](std::uint32_t a, std::uint32_t b) { return a & b; }},
      {Opcode::kOr, [](std::uint32_t a, std::uint32_t b) { return a | b; }},
      {Opcode::kXor, [](std::uint32_t a, std::uint32_t b) { return a ^ b; }},
      {Opcode::kSll,
       [](std::uint32_t a, std::uint32_t b) { return a << (b & 31); }},
      {Opcode::kSrl,
       [](std::uint32_t a, std::uint32_t b) { return a >> (b & 31); }},
      {Opcode::kSra,
       [](std::uint32_t a, std::uint32_t b) {
         return static_cast<std::uint32_t>(S(a) >> (b & 31));
       }},
      {Opcode::kSlt,
       [](std::uint32_t a, std::uint32_t b) -> std::uint32_t {
         return S(a) < S(b) ? 1 : 0;
       }},
      {Opcode::kSltu,
       [](std::uint32_t a, std::uint32_t b) -> std::uint32_t {
         return a < b ? 1 : 0;
       }},
  };
  return kCases;
}

TEST_P(RTypeGolden, MatchesReferenceOverGrid) {
  const RCase& c = RCases()[static_cast<std::size_t>(GetParam())];
  for (std::uint32_t a : kIntGrid) {
    for (std::uint32_t b : kIntGrid) {
      TestState st;
      st.iregs[1] = a;
      st.iregs[2] = b;
      const Instruction in{c.op, IntReg(3), IntReg(1), IntReg(2), 0};
      const ExecResult res = ExecuteInstruction(st, in, 0x1000);
      EXPECT_EQ(st.iregs[3], c.ref(a, b))
          << GetOpInfo(c.op).mnemonic << " a=" << a << " b=" << b;
      EXPECT_EQ(res.next_pc, 0x1008u);
      EXPECT_FALSE(res.is_control);
      EXPECT_FALSE(res.halted);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, RTypeGolden, testing::Range(0, static_cast<int>(RCases().size())),
    [](const testing::TestParamInfo<int>& info) {
      return GetOpInfo(RCases()[static_cast<std::size_t>(info.param)].op)
          .mnemonic;
    });

// Immediate forms against their register-form equivalents.
TEST(ExecGolden, ImmediateFormsMatchRegisterForms) {
  const std::pair<Opcode, Opcode> pairs[] = {
      {Opcode::kAddi, Opcode::kAdd}, {Opcode::kAndi, Opcode::kAnd},
      {Opcode::kOri, Opcode::kOr},   {Opcode::kXori, Opcode::kXor},
      {Opcode::kSlli, Opcode::kSll}, {Opcode::kSrli, Opcode::kSrl},
      {Opcode::kSrai, Opcode::kSra}, {Opcode::kSlti, Opcode::kSlt},
  };
  const std::int32_t imms[] = {0, 1, -1, 31, 255, -32768, 2047};
  for (auto [imm_op, reg_op] : pairs) {
    for (std::uint32_t a : kIntGrid) {
      for (std::int32_t imm : imms) {
        TestState s1, s2;
        s1.iregs[1] = s2.iregs[1] = a;
        s2.iregs[2] = static_cast<std::uint32_t>(imm);
        ExecuteInstruction(s1, {imm_op, IntReg(3), IntReg(1), 0, imm}, 0);
        ExecuteInstruction(s2, {reg_op, IntReg(3), IntReg(1), IntReg(2), 0}, 0);
        EXPECT_EQ(s1.iregs[3], s2.iregs[3])
            << GetOpInfo(imm_op).mnemonic << " a=" << a << " imm=" << imm;
      }
    }
  }
}

TEST(ExecGolden, LuiShiftsImmediate) {
  TestState st;
  ExecuteInstruction(st, {Opcode::kLui, IntReg(1), 0, 0, 0x1234}, 0);
  EXPECT_EQ(st.iregs[1], 0x12340000u);
}

// Branch direction truth table over the operand grid.
TEST(ExecGolden, BranchDirectionsMatchComparisons) {
  struct BCase {
    Opcode op;
    std::function<bool(std::uint32_t, std::uint32_t)> taken;
  };
  const BCase cases[] = {
      {Opcode::kBeq, [](std::uint32_t a, std::uint32_t b) { return a == b; }},
      {Opcode::kBne, [](std::uint32_t a, std::uint32_t b) { return a != b; }},
      {Opcode::kBlt,
       [](std::uint32_t a, std::uint32_t b) { return S(a) < S(b); }},
      {Opcode::kBge,
       [](std::uint32_t a, std::uint32_t b) { return S(a) >= S(b); }},
      {Opcode::kBltu, [](std::uint32_t a, std::uint32_t b) { return a < b; }},
      {Opcode::kBgeu, [](std::uint32_t a, std::uint32_t b) { return a >= b; }},
  };
  for (const BCase& c : cases) {
    for (std::uint32_t a : kIntGrid) {
      for (std::uint32_t b : kIntGrid) {
        TestState st;
        st.iregs[1] = a;
        st.iregs[2] = b;
        const Instruction in{c.op, 0, IntReg(1), IntReg(2), 0x4000};
        const ExecResult res = ExecuteInstruction(st, in, 0x1000);
        EXPECT_TRUE(res.is_control);
        EXPECT_EQ(res.taken, c.taken(a, b))
            << GetOpInfo(c.op).mnemonic << " a=" << a << " b=" << b;
        EXPECT_EQ(res.next_pc, res.taken ? 0x4000u : 0x1008u);
      }
    }
  }
}

TEST(ExecGolden, JumpsAndLinks) {
  TestState st;
  ExecResult r = ExecuteInstruction(st, {Opcode::kJ, 0, 0, 0, 0x9000}, 0x100);
  EXPECT_EQ(r.next_pc, 0x9000u);
  EXPECT_TRUE(r.taken);

  r = ExecuteInstruction(st, {Opcode::kJal, kRegRa, 0, 0, 0x9000}, 0x100);
  EXPECT_EQ(r.next_pc, 0x9000u);
  EXPECT_EQ(st.iregs[kRegRa], 0x108u);

  st.iregs[5] = 0x7770;
  r = ExecuteInstruction(st, {Opcode::kJr, 0, IntReg(5), 0, 0}, 0x200);
  EXPECT_EQ(r.next_pc, 0x7770u);

  r = ExecuteInstruction(st, {Opcode::kJalr, kRegRa, IntReg(5), 0, 0}, 0x200);
  EXPECT_EQ(r.next_pc, 0x7770u);
  EXPECT_EQ(st.iregs[kRegRa], 0x208u);
}

TEST(ExecGolden, LoadsReportAddressAndSignExtension) {
  TestState st;
  st.StoreU32(0x2000, 0xffc08044);
  st.iregs[1] = 0x2000;

  ExecResult r =
      ExecuteInstruction(st, {Opcode::kLw, IntReg(2), IntReg(1), 0, 0}, 0);
  EXPECT_TRUE(r.is_load);
  EXPECT_EQ(r.mem_addr, 0x2000u);
  EXPECT_EQ(st.iregs[2], 0xffc08044u);

  // lbu zero-extends.
  ExecuteInstruction(st, {Opcode::kLbu, IntReg(3), IntReg(1), 0, 3}, 0);
  EXPECT_EQ(st.iregs[3], 0xffu);
  ExecuteInstruction(st, {Opcode::kLbu, IntReg(3), IntReg(1), 0, 1}, 0);
  EXPECT_EQ(st.iregs[3], 0x80u);
}

TEST(ExecGolden, StoresUseRtAsValue) {
  TestState st;
  st.iregs[1] = 0x3000;  // base
  st.iregs[2] = 0xabcd1234;
  ExecResult r =
      ExecuteInstruction(st, {Opcode::kSw, 0, IntReg(1), IntReg(2), 8}, 0);
  EXPECT_TRUE(r.is_store);
  EXPECT_EQ(r.mem_addr, 0x3008u);
  EXPECT_EQ(st.LoadU32(0x3008), 0xabcd1234u);

  ExecuteInstruction(st, {Opcode::kSb, 0, IntReg(1), IntReg(2), 16}, 0);
  EXPECT_EQ(st.LoadU8(0x3010), 0x34u);
  EXPECT_EQ(st.LoadU8(0x3011), 0u);  // only one byte written
}

TEST(ExecGolden, FpArithmeticGrid) {
  const double grid[] = {0.0, 1.0, -1.0, 0.5, -2.25, 1e10, -1e-10, 3.14159};
  for (double a : grid) {
    for (double b : grid) {
      TestState st;
      st.fregs[1] = a;
      st.fregs[2] = b;
      ExecuteInstruction(st, {Opcode::kFadd, FpReg(3), FpReg(1), FpReg(2), 0}, 0);
      EXPECT_DOUBLE_EQ(st.fregs[3], a + b);
      ExecuteInstruction(st, {Opcode::kFsub, FpReg(3), FpReg(1), FpReg(2), 0}, 0);
      EXPECT_DOUBLE_EQ(st.fregs[3], a - b);
      ExecuteInstruction(st, {Opcode::kFmul, FpReg(3), FpReg(1), FpReg(2), 0}, 0);
      EXPECT_DOUBLE_EQ(st.fregs[3], a * b);
      ExecuteInstruction(st, {Opcode::kFdiv, FpReg(3), FpReg(1), FpReg(2), 0}, 0);
      EXPECT_DOUBLE_EQ(st.fregs[3], b == 0.0 ? 0.0 : a / b);
      ExecuteInstruction(st, {Opcode::kFeq, IntReg(4), FpReg(1), FpReg(2), 0}, 0);
      EXPECT_EQ(st.iregs[4], a == b ? 1u : 0u);
      ExecuteInstruction(st, {Opcode::kFlt, IntReg(4), FpReg(1), FpReg(2), 0}, 0);
      EXPECT_EQ(st.iregs[4], a < b ? 1u : 0u);
      ExecuteInstruction(st, {Opcode::kFle, IntReg(4), FpReg(1), FpReg(2), 0}, 0);
      EXPECT_EQ(st.iregs[4], a <= b ? 1u : 0u);
    }
  }
}

TEST(ExecGolden, ConversionEdgeCases) {
  TestState st;
  st.iregs[1] = 0x80000000;  // INT_MIN
  ExecuteInstruction(st, {Opcode::kCvtif, FpReg(1), IntReg(1), 0, 0}, 0);
  EXPECT_DOUBLE_EQ(st.fregs[1], -2147483648.0);

  st.fregs[2] = 1e30;
  ExecuteInstruction(st, {Opcode::kCvtfi, IntReg(2), FpReg(2), 0, 0}, 0);
  EXPECT_EQ(st.iregs[2], 0x7fffffffu);  // saturates high
  st.fregs[2] = -1e30;
  ExecuteInstruction(st, {Opcode::kCvtfi, IntReg(2), FpReg(2), 0, 0}, 0);
  EXPECT_EQ(st.iregs[2], 0x80000000u);  // saturates low
  st.fregs[2] = -2.75;
  ExecuteInstruction(st, {Opcode::kCvtfi, IntReg(2), FpReg(2), 0, 0}, 0);
  EXPECT_EQ(S(st.iregs[2]), -2);  // truncation toward zero
}

TEST(ExecGolden, FpLoadsAndStores) {
  TestState st;
  st.iregs[1] = 0x5000;
  st.fregs[2] = 42.125;
  ExecResult r =
      ExecuteInstruction(st, {Opcode::kStf, 0, IntReg(1), FpReg(2), 8}, 0);
  EXPECT_TRUE(r.is_store);
  EXPECT_EQ(r.mem_addr, 0x5008u);
  r = ExecuteInstruction(st, {Opcode::kLdf, FpReg(3), IntReg(1), 0, 8}, 0);
  EXPECT_TRUE(r.is_load);
  EXPECT_DOUBLE_EQ(st.fregs[3], 42.125);
}

TEST(ExecGolden, RegZeroReadsAsZeroEvenIfStateDirty) {
  TestState st;
  st.iregs[0] = 777;  // the state itself may hold garbage in slot 0
  ExecuteInstruction(st, {Opcode::kAdd, IntReg(1), IntReg(0), IntReg(0), 0}, 0);
  EXPECT_EQ(st.iregs[1], 0u);
}

TEST(ExecGolden, WriteToRegZeroDiscarded) {
  TestState st;
  st.iregs[1] = 5;
  ExecuteInstruction(st, {Opcode::kAdd, IntReg(0), IntReg(1), IntReg(1), 0}, 0);
  EXPECT_EQ(st.iregs[0], 0u);
}

TEST(ExecGolden, MiscOps) {
  TestState st;
  ExecResult r = ExecuteInstruction(st, {Opcode::kNop, 0, 0, 0, 0}, 0x10);
  EXPECT_EQ(r.next_pc, 0x18u);
  EXPECT_FALSE(r.halted);

  r = ExecuteInstruction(st, {Opcode::kHalt, 0, 0, 0, 0}, 0x10);
  EXPECT_TRUE(r.halted);

  st.iregs[4] = 99;
  r = ExecuteInstruction(st, {Opcode::kOut, 0, IntReg(4), 0, 0}, 0x10);
  ASSERT_TRUE(r.out_value.has_value());
  EXPECT_EQ(*r.out_value, 99u);
}

TEST(ExecGolden, FmovFnegAreUnary) {
  TestState st;
  st.fregs[1] = -7.5;
  ExecuteInstruction(st, {Opcode::kFmov, FpReg(2), FpReg(1), FpReg(1), 0}, 0);
  EXPECT_DOUBLE_EQ(st.fregs[2], -7.5);
  ExecuteInstruction(st, {Opcode::kFneg, FpReg(3), FpReg(2), FpReg(2), 0}, 0);
  EXPECT_DOUBLE_EQ(st.fregs[3], 7.5);
}

}  // namespace
}  // namespace spear
