// Tests for the experiment-orchestration subsystem (src/runner): the
// checkpointed fast-forward layer (save/load round trips must reproduce a
// live-warmed run bit-identically), the multi-process worker pool
// (timeout, bounded retry with backoff, fail-fast exits, crash isolation
// — driven with /bin/sh so no test forks a multi-second simulator), and
// the manifest parser's path-annotated rejection diagnostics.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cpu/config.h"
#include "eval/harness.h"
#include "runner/checkpoint.h"
#include "runner/manifest.h"
#include "runner/pool.h"
#include "runner/runner.h"
#include "workloads/workload.h"

namespace spear::runner {
namespace {

std::string TempDir(const std::string& tag) {
  static int counter = 0;
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("spear_runner_test." + std::to_string(::getpid()) + "." + tag + "." +
        std::to_string(counter++)))
          .string();
  std::filesystem::create_directories(path);
  return path;
}

CheckpointKey MatrixKey(std::uint64_t ff_instrs) {
  const CoreConfig cfg = BaselineConfig(128);
  CheckpointKey key;
  key.workload = "matrix";
  key.seed = 42;
  key.ff_instrs = ff_instrs;
  key.l1d = cfg.mem.l1d;
  key.l2 = cfg.mem.l2;
  key.bpred = cfg.bpred;
  return key;
}

Program MatrixProgram() {
  WorkloadConfig wc;
  wc.seed = 42;
  return BuildWorkloadProgram("matrix", wc);
}

// --- checkpoint layer ---

TEST(CheckpointKeyTest, KeyStringCoversWarmupInputs) {
  const CheckpointKey a = MatrixKey(10'000);
  CheckpointKey b = MatrixKey(10'000);
  EXPECT_EQ(KeyString(a), KeyString(b));
  EXPECT_EQ(CheckpointPath("d", a), CheckpointPath("d", b));

  b.ff_instrs = 20'000;
  EXPECT_NE(KeyString(a), KeyString(b));
  b = MatrixKey(10'000);
  b.seed = 7;
  EXPECT_NE(KeyString(a), KeyString(b));
  b = MatrixKey(10'000);
  b.l1d.sets *= 2;
  EXPECT_NE(KeyString(a), KeyString(b));
  b = MatrixKey(10'000);
  b.bpred.table_entries *= 2;
  EXPECT_NE(KeyString(a), KeyString(b));
}

TEST(CheckpointTest, SaveLoadRoundTripsWarmState) {
  const std::string dir = TempDir("roundtrip");
  const CheckpointKey key = MatrixKey(20'000);
  const Program prog = MatrixProgram();

  const FastForwardResult ff = FastForward(prog, key);
  ASSERT_FALSE(ff.state.halted);
  EXPECT_EQ(ff.executed, 20'000u);

  std::string error;
  ASSERT_TRUE(SaveCheckpoint(dir, key, ff.state, &error)) << error;

  WarmState loaded;
  ASSERT_TRUE(LoadCheckpoint(dir, key, &loaded, &error)) << error;
  EXPECT_EQ(loaded.pc, ff.state.pc);
  EXPECT_EQ(loaded.warmed_instrs, ff.state.warmed_instrs);
  EXPECT_EQ(loaded.iregs, ff.state.iregs);
  EXPECT_EQ(loaded.fregs, ff.state.fregs);
  EXPECT_EQ(loaded.l1d.stamp, ff.state.l1d.stamp);
  EXPECT_EQ(loaded.l1d.tags, ff.state.l1d.tags);
  EXPECT_EQ(loaded.l1d.lru, ff.state.l1d.lru);
  EXPECT_EQ(loaded.l2.tags, ff.state.l2.tags);
  EXPECT_EQ(loaded.bpred.counters, ff.state.bpred.counters);
  EXPECT_EQ(loaded.bpred.btb_pcs, ff.state.bpred.btb_pcs);

  // The ISSUE's equivalence bar: a run restored from the checkpoint and a
  // run warmed live must produce bit-identical stats JSON.
  EvalOptions opt;
  opt.sim_instrs = 20'000;
  const RunStats live = RunConfig(prog, BaselineConfig(128), opt, &ff.state);
  const RunStats restored = RunConfig(prog, BaselineConfig(128), opt, &loaded);
  EXPECT_EQ(RunStatsToJson(live).Dump(2), RunStatsToJson(restored).Dump(2));
}

TEST(CheckpointTest, MismatchesReadAsMisses) {
  const std::string dir = TempDir("miss");
  const CheckpointKey key = MatrixKey(5'000);
  WarmState state;

  // Absent file.
  EXPECT_FALSE(LoadCheckpoint(dir, key, &state));

  const FastForwardResult ff = FastForward(MatrixProgram(), key);
  ASSERT_TRUE(SaveCheckpoint(dir, key, ff.state));

  // A different geometry hashes to a different path: miss, not collision.
  CheckpointKey other = key;
  other.l2.assoc *= 2;
  EXPECT_FALSE(LoadCheckpoint(dir, other, &state));

  // Garbage where the file should be: bad magic is a miss, not an error.
  {
    std::ofstream out(CheckpointPath(dir, key), std::ios::binary);
    out << "not a checkpoint";
  }
  EXPECT_FALSE(LoadCheckpoint(dir, key, &state));

  // Truncation (simulating a torn write without the tmp+rename dance).
  ASSERT_TRUE(SaveCheckpoint(dir, key, ff.state));
  const std::string path = CheckpointPath(dir, key);
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);
  EXPECT_FALSE(LoadCheckpoint(dir, key, &state));
}

// --- SPCK v2 checkpoint trees ---

CheckpointTreeKey MatrixTreeKey(std::uint64_t ff_instrs) {
  CheckpointTreeKey tk;
  tk.base = MatrixKey(ff_instrs);
  tk.sim_instrs = 100'000;
  tk.period = 20'000;
  tk.detail = 2'000;
  tk.warmup = 4'000;
  return tk;
}

TEST(CheckpointTreeTest, TreeKeyCoversPlanGeometry) {
  const CheckpointTreeKey a = MatrixTreeKey(10'000);
  CheckpointTreeKey b = MatrixTreeKey(10'000);
  EXPECT_EQ(TreeKeyString(a), TreeKeyString(b));
  EXPECT_EQ(CheckpointTreePath("d", a), CheckpointTreePath("d", b));

  b.sim_instrs = 200'000;
  EXPECT_NE(TreeKeyString(a), TreeKeyString(b));
  b = MatrixTreeKey(10'000);
  b.period = 10'000;
  EXPECT_NE(TreeKeyString(a), TreeKeyString(b));
  b = MatrixTreeKey(10'000);
  b.detail = 1'000;
  EXPECT_NE(TreeKeyString(a), TreeKeyString(b));
  b = MatrixTreeKey(10'000);
  b.warmup = 8'000;
  EXPECT_NE(TreeKeyString(a), TreeKeyString(b));
  // The flat warmup key is embedded: any of its fields moves the tree key.
  b = MatrixTreeKey(20'000);
  EXPECT_NE(TreeKeyString(a), TreeKeyString(b));
  // A tree never shares a path with its own flat warmup checkpoint.
  EXPECT_NE(CheckpointTreePath("d", a), CheckpointPath("d", a.base));
}

TEST(CheckpointTreeTest, SaveLoadRoundTripsTreeWithDeltaPages) {
  const std::string dir = TempDir("tree");
  const CheckpointTreeKey tk = MatrixTreeKey(10'000);
  const Program prog = MatrixProgram();

  CheckpointTree tree;
  FastForwardResult root = FastForward(prog, tk.base);
  ASSERT_FALSE(root.state.halted);
  tree.root = std::move(root.state);

  // A later point of the same execution doubles as an interval-start
  // snapshot: same program, more instructions, a strictly evolved image.
  CheckpointKey child_key = tk.base;
  child_key.ff_instrs = 30'000;
  const FastForwardResult child = FastForward(prog, child_key);
  ASSERT_FALSE(child.state.halted);
  tree.AddChild(child.state);
  tree.covered_instrs = 100'000;
  tree.halted = false;

  // The matrix kernel writes memory between 10k and 30k instructions, so
  // the delta encoding must carry pages — but fewer than the full image.
  ASSERT_EQ(tree.children.size(), 1u);
  EXPECT_FALSE(tree.children[0].delta_pages.empty());
  EXPECT_LT(tree.children[0].delta_pages.size(),
            child.state.mem.PageNumbers().size());

  std::string error;
  ASSERT_TRUE(SaveCheckpointTree(dir, tk, tree, &error)) << error;

  CheckpointTree loaded;
  ASSERT_TRUE(LoadCheckpointTree(dir, tk, &loaded, &error)) << error;
  EXPECT_EQ(loaded.covered_instrs, 100'000u);
  EXPECT_FALSE(loaded.halted);
  EXPECT_EQ(loaded.root.pc, tree.root.pc);
  EXPECT_EQ(loaded.root.warmed_instrs, tree.root.warmed_instrs);
  EXPECT_EQ(loaded.root.iregs, tree.root.iregs);
  EXPECT_EQ(loaded.root.l1d.tags, tree.root.l1d.tags);
  EXPECT_EQ(loaded.root.bpred.counters, tree.root.bpred.counters);

  ASSERT_EQ(loaded.children.size(), 1u);
  const WarmState mc = loaded.MaterializeChild(0);
  EXPECT_EQ(mc.pc, child.state.pc);
  EXPECT_EQ(mc.warmed_instrs, child.state.warmed_instrs);
  EXPECT_EQ(mc.iregs, child.state.iregs);
  EXPECT_EQ(mc.fregs, child.state.fregs);
  EXPECT_EQ(mc.l1d.stamp, child.state.l1d.stamp);
  EXPECT_EQ(mc.l1d.tags, child.state.l1d.tags);
  EXPECT_EQ(mc.l1d.lru, child.state.l1d.lru);
  EXPECT_EQ(mc.l2.tags, child.state.l2.tags);
  EXPECT_EQ(mc.bpred.counters, child.state.bpred.counters);
  EXPECT_EQ(mc.bpred.btb_pcs, child.state.bpred.btb_pcs);
  // The materialized image must reproduce every page of the snapshot —
  // both the delta-carried pages and the ones inherited from the root.
  for (const Addr pn : child.state.mem.PageNumbers()) {
    const std::uint8_t* want = child.state.mem.PageData(pn);
    const std::uint8_t* got = mc.mem.PageData(pn);
    ASSERT_NE(got, nullptr) << "page " << pn << " missing";
    EXPECT_EQ(std::memcmp(got, want, Memory::kPageSize), 0)
        << "page " << pn << " differs";
  }
}

TEST(CheckpointTreeTest, FlatReaderOnTreeFileNamesBothVersions) {
  const std::string dir = TempDir("vskew1");
  const CheckpointTreeKey tk = MatrixTreeKey(5'000);

  CheckpointTree tree;
  FastForwardResult ff = FastForward(MatrixProgram(), tk.base);
  tree.root = std::move(ff.state);
  ASSERT_TRUE(SaveCheckpointTree(dir, tk, tree));

  // Simulate a mis-shared cache directory: the v2 tree file sits where
  // the v1 flat reader looks. Still a miss for control flow, but the
  // diagnostic must name both versions and the right reader.
  std::filesystem::copy_file(CheckpointTreePath(dir, tk),
                             CheckpointPath(dir, tk.base));
  WarmState state;
  std::string error;
  EXPECT_FALSE(LoadCheckpoint(dir, tk.base, &state, &error));
  EXPECT_TRUE(IsCheckpointVersionMismatch(error)) << error;
  EXPECT_NE(error.find("SPCK format version 2"), std::string::npos) << error;
  EXPECT_NE(error.find("expects 1"), std::string::npos) << error;
  EXPECT_NE(error.find("LoadCheckpointTree"), std::string::npos) << error;
}

TEST(CheckpointTreeTest, TreeReaderOnFlatFileNamesBothVersions) {
  const std::string dir = TempDir("vskew2");
  const CheckpointTreeKey tk = MatrixTreeKey(5'000);

  const FastForwardResult ff = FastForward(MatrixProgram(), tk.base);
  ASSERT_TRUE(SaveCheckpoint(dir, tk.base, ff.state));

  std::filesystem::copy_file(CheckpointPath(dir, tk.base),
                             CheckpointTreePath(dir, tk));
  CheckpointTree tree;
  std::string error;
  EXPECT_FALSE(LoadCheckpointTree(dir, tk, &tree, &error));
  EXPECT_TRUE(IsCheckpointVersionMismatch(error)) << error;
  EXPECT_NE(error.find("SPCK format version 1"), std::string::npos) << error;
  EXPECT_NE(error.find("expects 2"), std::string::npos) << error;
  EXPECT_NE(error.find("LoadCheckpoint"), std::string::npos) << error;

  // Ordinary corruption is NOT a version mismatch: the warning path must
  // stay silent for garbage files.
  {
    std::ofstream out(CheckpointTreePath(dir, tk), std::ios::binary);
    out << "not a checkpoint";
  }
  error.clear();
  EXPECT_FALSE(LoadCheckpointTree(dir, tk, &tree, &error));
  EXPECT_FALSE(IsCheckpointVersionMismatch(error)) << error;
}

// --- worker pool ---

TEST(ProcessPoolTest, TimeoutKillsAndRetriesWithBackoff) {
  const std::string marker = TempDir("pool") + "/attempts";
  PoolJob job;
  job.argv = {"/bin/sh", "-c", "echo x >> " + marker + "; sleep 30"};
  job.timeout_ms = 300;
  job.max_retries = 2;
  job.backoff_ms = 50;

  const std::vector<PoolResult> results = ProcessPool(2).Run({job});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_TRUE(results[0].timed_out);
  EXPECT_EQ(results[0].attempts, 3);

  // Every attempt actually started a child (the hang is real, not queued).
  std::ifstream in(marker);
  int lines = 0;
  for (std::string line; std::getline(in, line);) ++lines;
  EXPECT_EQ(lines, 3);
}

TEST(ProcessPoolTest, RetryBackoffDelaysReattempts) {
  PoolJob job;
  job.argv = {"/bin/sh", "-c", "exit 1"};
  job.max_retries = 2;
  job.backoff_ms = 100;  // attempt 2 waits 100ms, attempt 3 waits 200ms

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<PoolResult> results = ProcessPool(1).Run({job});
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(results[0].exit_code, 1);
  EXPECT_EQ(results[0].attempts, 3);
  EXPECT_GE(elapsed, 250);  // 100 + 200 of backoff, minus scheduling slack
}

TEST(ProcessPoolTest, FailFastExitsAreNotRetried) {
  PoolJob job;
  job.argv = {"/bin/sh", "-c", "exit 3"};
  job.max_retries = 5;
  job.fail_fast_exits = {kExitUsage, kExitIncomplete};

  const std::vector<PoolResult> results = ProcessPool(1).Run({job});
  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(results[0].exit_code, kExitIncomplete);
  EXPECT_EQ(results[0].attempts, 1);
}

TEST(ProcessPoolTest, CrashedWorkerFailsOnlyItsJob) {
  PoolJob crash;
  crash.argv = {"/bin/sh", "-c", "kill -9 $$"};
  PoolJob fine;
  fine.argv = {"/bin/sh", "-c", "exit 0"};

  const std::vector<PoolResult> results = ProcessPool(2).Run({crash, fine});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(results[0].exit_code, -1);
  EXPECT_EQ(results[0].term_signal, 9);
  EXPECT_TRUE(results[1].ok);
  EXPECT_EQ(results[1].exit_code, 0);
}

TEST(ProcessPoolTest, StderrTailSurvivesFailThenSucceedRetry) {
  // Regression: the retry path must surface the *last* attempt's stderr.
  // Attempt 1 writes a scary message and fails; attempt 2 writes its own
  // message and succeeds — the result must carry attempt 2's stderr, not
  // the stale first-attempt one.
  const std::string marker = TempDir("stderr") + "/marker";
  PoolJob job;
  job.argv = {"/bin/sh", "-c",
              "if [ -e " + marker +
                  " ]; then echo second-attempt-stderr >&2; exit 0; "
                  "else touch " +
                  marker + "; echo first-attempt-stderr >&2; exit 1; fi"};
  job.max_retries = 1;
  job.stderr_tail_bytes = 4096;

  const std::vector<PoolResult> results = ProcessPool(1).Run({job});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_EQ(results[0].attempts, 2);
  EXPECT_NE(results[0].stderr_tail.find("second-attempt-stderr"),
            std::string::npos)
      << results[0].stderr_tail;
  EXPECT_EQ(results[0].stderr_tail.find("first-attempt-stderr"),
            std::string::npos)
      << results[0].stderr_tail;
}

TEST(ProcessPoolTest, StderrTailOfRepeatedFailureIsTheLastAttempts) {
  const std::string marker = TempDir("stderr2") + "/marker";
  PoolJob job;
  job.argv = {"/bin/sh", "-c",
              "if [ -e " + marker +
                  " ]; then echo final-failure >&2; exit 7; "
                  "else touch " +
                  marker + "; echo first-failure >&2; exit 1; fi"};
  job.max_retries = 1;
  job.stderr_tail_bytes = 4096;

  const std::vector<PoolResult> results = ProcessPool(1).Run({job});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(results[0].exit_code, 7);
  EXPECT_NE(results[0].stderr_tail.find("final-failure"), std::string::npos);
  EXPECT_EQ(results[0].stderr_tail.find("first-failure"), std::string::npos);
}

TEST(ProcessPoolTest, StderrTailKeepsOnlyTheTrailingBytes) {
  PoolJob job;
  job.argv = {"/bin/sh", "-c",
              "i=0; while [ $i -lt 200 ]; do echo line$i >&2; "
              "i=$((i+1)); done; echo THE-END >&2; exit 1"};
  job.stderr_tail_bytes = 64;

  const std::vector<PoolResult> results = ProcessPool(1).Run({job});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_LE(results[0].stderr_tail.size(), 64u);
  EXPECT_NE(results[0].stderr_tail.find("THE-END"), std::string::npos);
}

TEST(ProcessPoolTest, IncrementalSubmitPumpCollectsCompletions) {
  ProcessPool pool(2);
  PoolJob ok;
  ok.argv = {"/bin/sh", "-c", "exit 0"};
  PoolJob fail;
  fail.argv = {"/bin/sh", "-c", "exit 1"};
  const std::uint64_t t_ok = pool.Submit(ok);
  const std::uint64_t t_fail = pool.Submit(fail);
  ASSERT_NE(t_ok, t_fail);
  EXPECT_EQ(pool.outstanding(), 2u);

  std::map<std::uint64_t, PoolResult> done;
  for (int spin = 0; spin < 2000 && done.size() < 2; ++spin) {
    pool.Pump();
    for (auto& [ticket, result] : pool.TakeCompletions()) {
      done.emplace(ticket, std::move(result));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_TRUE(done.at(t_ok).ok);
  EXPECT_FALSE(done.at(t_fail).ok);
  EXPECT_EQ(done.at(t_fail).exit_code, 1);
}

TEST(ProcessPoolTest, CancelKillsRunningAndDropsQueued) {
  ProcessPool pool(1);
  PoolJob hang;
  hang.argv = {"/bin/sh", "-c", "sleep 30"};
  const std::uint64_t t_running = pool.Submit(hang);
  pool.Pump();  // launches the hang into the only slot
  const std::uint64_t t_queued = pool.Submit(hang);

  pool.Cancel(t_running);
  pool.Cancel(t_queued);
  std::map<std::uint64_t, PoolResult> done;
  for (int spin = 0; spin < 2000 && done.size() < 2; ++spin) {
    pool.Pump();
    for (auto& [ticket, result] : pool.TakeCompletions()) {
      done.emplace(ticket, std::move(result));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(done.size(), 2u);
  EXPECT_TRUE(done.at(t_running).canceled);
  EXPECT_FALSE(done.at(t_running).ok);
  EXPECT_TRUE(done.at(t_queued).canceled);
}

// --- worker-row recovery (shared by spearrun and the spearfarm daemon) ---

TEST(RecoverWorkerRowTest, EmbedsWorkerRowVerbatimOrSynthesizesFailure) {
  Manifest m;
  std::string error;
  ASSERT_TRUE(ParseManifest(R"({
    "manifest_version": 1,
    "name": "t",
    "workloads": ["matrix"],
    "configs": [{"label": "base"}]
  })",
                            &m, &error))
      << error;
  const std::vector<JobSpec> jobs = ExpandJobs(m);

  // Verdict path: the worker's row is embedded byte-for-byte.
  const std::string job_out = TempDir("recover") + "/job0.json";
  {
    std::ofstream out(job_out);
    out << R"({"job": {"id": "matrix/base", "stats": {"cycles": 5}},)"
        << R"( "run": {"ckpt": "hit", "ms": 3}})" << "\n";
  }
  PoolResult ok;
  ok.ok = true;
  ok.exit_code = 0;
  const WorkerRow from_worker = RecoverWorkerRow(m, jobs[0], ok, job_out);
  EXPECT_TRUE(from_worker.from_worker);
  EXPECT_EQ(from_worker.ckpt, "hit");
  EXPECT_EQ(from_worker.row.FindPath("stats.cycles")->AsInt(), 5);

  // Timeout: canonical failure row carrying the last attempt's stderr.
  PoolResult timeout;
  timeout.timed_out = true;
  timeout.stderr_tail = "sim stuck at cycle 999";
  const WorkerRow timed = RecoverWorkerRow(m, jobs[0], timeout, "/no/file");
  EXPECT_FALSE(timed.from_worker);
  EXPECT_EQ(timed.row.Find("error")->AsString(), "timeout");
  EXPECT_EQ(timed.row.Find("stderr")->AsString(), "sim stuck at cycle 999");

  // Crash by signal, no stderr captured: no stderr member at all (the
  // deterministic row shape must not change with capture settings).
  PoolResult crash;
  crash.term_signal = 9;
  crash.exit_code = -1;
  const WorkerRow crashed = RecoverWorkerRow(m, jobs[0], crash, "/no/file");
  EXPECT_EQ(crashed.row.Find("error")->AsString(), "crashed (signal 9)");
  EXPECT_EQ(crashed.row.Find("stderr"), nullptr);

  // Cancellation.
  PoolResult canceled;
  canceled.canceled = true;
  const WorkerRow dropped = RecoverWorkerRow(m, jobs[0], canceled, "/no/file");
  EXPECT_EQ(dropped.row.Find("error")->AsString(), "canceled");
}

// --- manifest parsing ---

constexpr const char* kMinimalManifest = R"({
  "manifest_version": 1,
  "name": "t",
  "workloads": ["matrix", "mcf"],
  "configs": [{"label": "base"}, {"label": "spear", "spear": true}]
})";

TEST(ManifestTest, ParsesAndExpandsWorkloadMajor) {
  Manifest m;
  std::string error;
  ASSERT_TRUE(ParseManifest(kMinimalManifest, &m, &error)) << error;
  EXPECT_EQ(m.name, "t");
  const std::vector<JobSpec> jobs = ExpandJobs(m);
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_EQ(JobId(m, jobs[0]), "matrix/base");
  EXPECT_EQ(JobId(m, jobs[1]), "matrix/spear");
  EXPECT_EQ(JobId(m, jobs[2]), "mcf/base");
  EXPECT_EQ(JobId(m, jobs[3]), "mcf/spear");
}

TEST(ManifestTest, RejectionDiagnosticsNameThePath) {
  Manifest m;
  std::string error;

  EXPECT_FALSE(ParseManifest(
      R"({"manifest_version": 9, "name": "t", "workloads": ["w"],
          "configs": [{"label": "a"}]})",
      &m, &error));
  EXPECT_NE(error.find("manifest_version"), std::string::npos) << error;

  EXPECT_FALSE(ParseManifest(
      R"({"manifest_version": 1, "name": "t", "workloads": ["w"],
          "configs": [{"label": "a"}], "frobnicate": 1})",
      &m, &error));
  EXPECT_NE(error.find("frobnicate"), std::string::npos) << error;

  EXPECT_FALSE(ParseManifest(
      R"({"manifest_version": 1, "name": "t", "workloads": ["w"],
          "configs": [{"label": "a"}, {"label": "b", "bpred_kind": "oracle"}]})",
      &m, &error));
  EXPECT_NE(error.find("configs[1].bpred_kind"), std::string::npos) << error;
  EXPECT_NE(error.find("oracle"), std::string::npos) << error;

  EXPECT_FALSE(ParseManifest(
      R"({"manifest_version": 1, "name": "t", "workloads": ["w"],
          "configs": [{"label": "a"}, {"label": "a"}]})",
      &m, &error));
  EXPECT_NE(error.find("duplicate label 'a'"), std::string::npos) << error;

  EXPECT_FALSE(ParseManifest(
      R"({"manifest_version": 1, "name": "t", "workloads": ["w"],
          "configs": [{"label": "a"}],
          "jobs": [{"workload": "w", "config": "nope"}]})",
      &m, &error));
  EXPECT_NE(error.find("jobs[0].config"), std::string::npos) << error;
  EXPECT_NE(error.find("nope"), std::string::npos) << error;

  EXPECT_FALSE(ParseManifest(
      R"({"manifest_version": 1, "name": "t", "workloads": ["w"],
          "configs": [{"label": "a"}],
          "derived": [{"name": "d", "op": "median", "metric": "ipc",
                       "num": "a", "den": "a"}]})",
      &m, &error));
  EXPECT_NE(error.find("derived[0].op"), std::string::npos) << error;
}

TEST(ManifestTest, EmitParseIsAnIdentity) {
  Manifest m;
  m.name = "ident";
  m.defaults.sim_instrs = 1234;
  m.defaults.ff_instrs = 999;
  m.defaults.timeout_ms = 5000;
  m.workloads = {"matrix", "art"};
  ConfigSpec base;
  base.label = "base";
  ConfigSpec tuned;
  tuned.label = "tuned";
  tuned.spear = true;
  tuned.ifq = 256;
  tuned.separate_fu = true;
  tuned.mem_latency = 200;
  tuned.l2_latency = 20;
  tuned.bpred_kind = "gshare";
  tuned.bpred_entries = 16384;
  tuned.trigger_occupancy_div = 4;
  tuned.extract_per_cycle = 2;
  tuned.drain_policy = "drain_to_trigger";
  tuned.chaining_trigger = true;
  tuned.stride_prefetch = true;
  tuned.stride_degree = 3;
  tuned.dcycle_budget = 60.0;
  m.configs = {base, tuned};
  JobSpec hang;
  hang.workload = "matrix";
  hang.config = 0;
  hang.debug_hang = true;
  hang.timeout_ms = 1000;
  hang.max_retries = 0;
  m.extra_jobs = {hang};
  m.derived = {DerivedSpec{"spd", "mean_ratio", "ipc", "tuned", "base"}};

  const std::string a = ManifestToJson(m).Dump(2);
  Manifest m2;
  std::string error;
  ASSERT_TRUE(ParseManifest(a, &m2, &error)) << error;
  EXPECT_EQ(a, ManifestToJson(m2).Dump(2));
  EXPECT_EQ(ExpandJobs(m2).size(), 5u);
}

// --- in-process execution ---

TEST(RunnerTest, InProcessRunIsDeterministicAcrossCheckpointReuse) {
  Manifest m;
  std::string error;
  ASSERT_TRUE(ParseManifest(
      R"({"manifest_version": 1, "name": "smoke",
          "defaults": {"sim_instrs": 20000, "ff_instrs": 10000},
          "workloads": ["matrix"],
          "configs": [{"label": "base"}, {"label": "spear", "spear": true}],
          "derived": [{"name": "spd", "op": "mean_ratio", "metric": "ipc",
                       "num": "spear", "den": "base"}]})",
      &m, &error))
      << error;

  RunnerOptions opts;
  opts.ckpt_dir = TempDir("inproc");

  // First run warms live and saves checkpoints; the second restores them.
  // The deterministic document must not change either way.
  const ManifestRunResult cold = RunManifestInProcess(m, opts);
  EXPECT_EQ(cold.failed_jobs, 0);
  const ManifestRunResult warm = RunManifestInProcess(m, opts);
  EXPECT_EQ(warm.failed_jobs, 0);

  telemetry::JsonValue a = cold.document;
  telemetry::JsonValue b = warm.document;
  // Hit/miss tallies and wall times live in "run" and differ by design.
  // Both configs share one checkpoint (the key excludes the IFQ size and
  // binary flavor), so the cold run misses once and hits once.
  EXPECT_EQ(a.FindPath("run.stats.runner.ckpt.misses")->AsInt(), 1);
  EXPECT_EQ(a.FindPath("run.stats.runner.ckpt.hits")->AsInt(), 1);
  EXPECT_EQ(b.FindPath("run.stats.runner.ckpt.hits")->AsInt(), 2);
  a.Set("run", telemetry::JsonValue());
  b.Set("run", telemetry::JsonValue());
  EXPECT_EQ(a.Dump(2), b.Dump(2));

  const telemetry::JsonValue* spd = cold.document.FindPath("derived.spd");
  ASSERT_NE(spd, nullptr);
  EXPECT_GT(spd->AsDouble(), 0.0);
}

TEST(RunnerTest, DebugHangJobFailsDeterministicallyInProcess) {
  Manifest m;
  std::string error;
  ASSERT_TRUE(ParseManifest(
      R"({"manifest_version": 1, "name": "hang",
          "defaults": {"sim_instrs": 2000},
          "workloads": [],
          "configs": [{"label": "base"}],
          "jobs": [{"workload": "matrix", "config": "base",
                    "debug_hang": true}]})",
      &m, &error))
      << error;

  RunnerOptions opts;
  opts.use_ckpt = false;
  const ManifestRunResult result = RunManifestInProcess(m, opts);
  EXPECT_EQ(result.failed_jobs, 1);
  const telemetry::JsonValue* err = result.document.FindPath("jobs");
  ASSERT_NE(err, nullptr);
  ASSERT_EQ(err->items().size(), 1u);
  EXPECT_TRUE(err->items()[0].Find("failed")->AsBool());
  EXPECT_EQ(err->items()[0].Find("error")->AsString(), "debug_hang");
}

}  // namespace
}  // namespace spear::runner
