// Tests for the interval-sampling subsystem (src/sampling): the plan
// validator, the SMARTS population estimator (Student-t CIs, the
// monotone CPI -> IPC bound transform, the RunStats extrapolation), and
// the end-to-end property the ISSUE demands — a sampled manifest run is
// byte-identical modulo "run" whether its detailed intervals are warmed
// fresh or restored from an SPCK v2 checkpoint tree.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "runner/manifest.h"
#include "runner/runner.h"
#include "sampling/sampling.h"

namespace spear::sampling {
namespace {

std::string TempDir(const std::string& tag) {
  static int counter = 0;
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("spear_sampling_test." + std::to_string(::getpid()) + "." + tag +
        "." + std::to_string(counter++)))
          .string();
  std::filesystem::create_directories(path);
  return path;
}

// --- plan validation ---

TEST(SamplingPlanTest, ValidatesGeometry) {
  std::string why;
  SamplingPlan off;
  EXPECT_FALSE(off.enabled());
  EXPECT_TRUE(off.Validate(&why)) << why;

  // Disabled plans must not smuggle in detail/warmup.
  off.detail = 100;
  EXPECT_FALSE(off.Validate(&why));

  SamplingPlan p;
  p.period = 10'000;
  p.detail = 1'000;
  p.warmup = 2'000;
  EXPECT_TRUE(p.enabled());
  EXPECT_TRUE(p.Validate(&why)) << why;

  // Enabled needs a measured window...
  p.detail = 0;
  EXPECT_FALSE(p.Validate(&why));
  // ...that fits in the period together with its warmup.
  p.detail = 9'000;
  EXPECT_FALSE(p.Validate(&why));
  EXPECT_NE(why.find("10000"), std::string::npos) << why;
}

// --- estimator math ---

TEST(EstimateTest, TQuantileTableAndAsymptote) {
  EXPECT_DOUBLE_EQ(TQuantile975(1), 12.706);
  EXPECT_DOUBLE_EQ(TQuantile975(4), 2.776);
  EXPECT_DOUBLE_EQ(TQuantile975(30), 2.042);
  EXPECT_DOUBLE_EQ(TQuantile975(35), 2.021);
  EXPECT_DOUBLE_EQ(TQuantile975(60), 2.000);
  EXPECT_DOUBLE_EQ(TQuantile975(100), 1.980);
  EXPECT_DOUBLE_EQ(TQuantile975(10'000), 1.960);
}

TEST(EstimateTest, Estimate95MatchesHandComputation) {
  // {1..5}: mean 3, sample variance 2.5, se = sqrt(2.5/5), t(4) = 2.776.
  const Estimate e = Estimate95({1, 2, 3, 4, 5});
  EXPECT_EQ(e.n, 5u);
  EXPECT_DOUBLE_EQ(e.mean, 3.0);
  EXPECT_DOUBLE_EQ(e.se, std::sqrt(0.5));
  EXPECT_DOUBLE_EQ(e.ci_lo, 3.0 - 2.776 * std::sqrt(0.5));
  EXPECT_DOUBLE_EQ(e.ci_hi, 3.0 + 2.776 * std::sqrt(0.5));

  // One sample: a point, not an interval.
  const Estimate one = Estimate95({7.0});
  EXPECT_EQ(one.n, 1u);
  EXPECT_DOUBLE_EQ(one.mean, 7.0);
  EXPECT_DOUBLE_EQ(one.se, 0.0);
  EXPECT_DOUBLE_EQ(one.ci_lo, 7.0);
  EXPECT_DOUBLE_EQ(one.ci_hi, 7.0);

  const Estimate none = Estimate95({});
  EXPECT_EQ(none.n, 0u);
  EXPECT_DOUBLE_EQ(none.mean, 0.0);
}

// Regression: a single interval used to produce {mean, ci_lo == ci_hi ==
// mean} indistinguishable from a genuinely tight interval. The estimator
// now marks the degenerate case explicitly: ci_defined is true iff the
// variance estimator has at least one degree of freedom (n >= 2).
TEST(EstimateTest, Estimate95MarksDegenerateIntervals) {
  EXPECT_FALSE(Estimate95({}).ci_defined);
  EXPECT_FALSE(Estimate95({7.0}).ci_defined);
  EXPECT_TRUE(Estimate95({7.0, 7.0}).ci_defined);  // dof 1, even if se = 0
  EXPECT_TRUE(Estimate95({1, 2, 3, 4, 5}).ci_defined);
}

TEST(SummarizeTest, SingleIntervalRowCarriesDegenerateCiMarker) {
  SamplingPlan plan;
  plan.period = 10'000;
  plan.detail = 1'000;

  std::vector<IntervalSample> samples(1);
  samples[0].instrs = 1'000;
  samples[0].cycles = 3'000;

  const SampledStats s = Summarize(plan, samples, 10'000, false);
  EXPECT_FALSE(s.cpi.ci_defined);
  EXPECT_FALSE(s.ipc.ci_defined);  // inherits the CPI sample set's dof
  EXPECT_DOUBLE_EQ(s.cpi.ci_lo, s.cpi.mean);
  EXPECT_DOUBLE_EQ(s.cpi.ci_hi, s.cpi.mean);

  // The JSON marker is emitted only for the degenerate case...
  const telemetry::JsonValue row = SampledStatsToJson(s);
  const telemetry::JsonValue* marker = row.FindPath("sampling.cpi.ci_defined");
  ASSERT_NE(marker, nullptr);
  EXPECT_FALSE(marker->AsBool());
  ASSERT_NE(row.FindPath("sampling.ipc.ci_defined"), nullptr);

  // ...so well-formed multi-interval rows keep their exact shape.
  std::vector<IntervalSample> three(3);
  for (std::size_t i = 0; i < three.size(); ++i) {
    three[i].instrs = 1'000;
    three[i].cycles = 2'000 + 1'000 * i;
  }
  const SampledStats ok = Summarize(plan, three, 30'000, false);
  EXPECT_TRUE(ok.cpi.ci_defined);
  const telemetry::JsonValue okrow = SampledStatsToJson(ok);
  EXPECT_EQ(okrow.FindPath("sampling.cpi.ci_defined"), nullptr);
  EXPECT_EQ(okrow.FindPath("sampling.ipc.ci_defined"), nullptr);
}

TEST(SummarizeTest, IpcBoundsAreTransformedCpiBounds) {
  SamplingPlan plan;
  plan.period = 10'000;
  plan.detail = 1'000;
  plan.warmup = 1'000;

  // Three intervals with CPIs 2.0, 3.0 and 4.0: se = 1/sqrt(3), t(2) =
  // 4.303, so the CPI interval stays strictly positive and the monotone
  // transform applies.
  std::vector<IntervalSample> samples(3);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i].instrs = 1'000;
    samples[i].cycles = 2'000 + 1'000 * i;
  }

  const SampledStats s = Summarize(plan, samples, 30'000, false);
  EXPECT_EQ(s.intervals, 3u);
  EXPECT_EQ(s.covered_instrs, 30'000u);
  EXPECT_EQ(s.sampled_instrs, 3'000u);
  EXPECT_DOUBLE_EQ(s.cpi.mean, 3.0);
  ASSERT_GT(s.cpi.ci_lo, 0.0);

  // IPC = 1/CPI is monotone decreasing, so the bounds swap sides.
  EXPECT_DOUBLE_EQ(s.ipc.mean, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.ipc.ci_lo, 1.0 / s.cpi.ci_hi);
  EXPECT_DOUBLE_EQ(s.ipc.ci_hi, 1.0 / s.cpi.ci_lo);
  // Delta-method SE: se(1/x) = se(x) / x^2.
  EXPECT_DOUBLE_EQ(s.ipc.se, s.cpi.se / (s.cpi.mean * s.cpi.mean));

  // The RunStats summary extrapolates onto the covered region: 30k
  // instructions at the window-aggregate CPI of 3.0.
  EXPECT_EQ(s.stats.instructions, 30'000u);
  EXPECT_EQ(s.stats.cycles, 90'000);
  EXPECT_TRUE(s.stats.complete);

  // The row JSON carries the estimates under "sampling".
  const telemetry::JsonValue row = SampledStatsToJson(s);
  ASSERT_NE(row.FindPath("sampling.ipc.ci_lo"), nullptr);
  EXPECT_DOUBLE_EQ(row.FindPath("sampling.cpi.mean")->AsDouble(), 3.0);
  EXPECT_EQ(row.FindPath("sampling.intervals")->AsInt(), 3);
}

TEST(SummarizeTest, DegenerateCpiIntervalFallsBackToSymmetricCi) {
  SamplingPlan plan;
  plan.period = 10'000;
  plan.detail = 1'000;

  // Two wildly different intervals: t(1) = 12.706 pushes the CPI lower
  // bound below zero, where 1/x is undefined. The IPC CI must still be a
  // well-formed interval around the mean, clamped at zero.
  std::vector<IntervalSample> samples(2);
  samples[0].instrs = 1'000;
  samples[0].cycles = 2'000;
  samples[1].instrs = 1'000;
  samples[1].cycles = 4'000;

  const SampledStats s = Summarize(plan, samples, 20'000, false);
  EXPECT_LT(s.cpi.ci_lo, 0.0);
  EXPECT_GE(s.ipc.ci_lo, 0.0);
  EXPECT_LE(s.ipc.ci_lo, s.ipc.mean);
  EXPECT_GE(s.ipc.ci_hi, s.ipc.mean);
}

TEST(SummarizeTest, PerInstructionRatesComeFromWindows) {
  SamplingPlan plan;
  plan.period = 5'000;
  plan.detail = 1'000;

  std::vector<IntervalSample> samples(2);
  samples[0].instrs = 1'000;
  samples[0].cycles = 1'000;
  samples[0].l1d_misses_main = 10;  // 10 per kinstr
  samples[0].committed_cond_branches = 100;
  samples[0].bpred_dir_correct = 90;
  samples[1].instrs = 1'000;
  samples[1].cycles = 1'000;
  samples[1].l1d_misses_main = 30;  // 30 per kinstr
  samples[1].committed_cond_branches = 100;
  samples[1].bpred_dir_correct = 80;

  const SampledStats s = Summarize(plan, samples, 10'000, false);
  EXPECT_DOUBLE_EQ(s.l1d_miss_per_kinstr.mean, 20.0);
  EXPECT_DOUBLE_EQ(s.branch_hit_ratio.mean, 0.85);
  // Extrapolated counts: 20 misses / kinstr over a 10k region = 200.
  EXPECT_EQ(s.stats.l1d_misses_main, 200u);
}

// --- fresh vs tree-restored byte identity ---

TEST(SampledRunnerTest, FreshAndTreeRestoredDocumentsMatchModuloRun) {
  runner::Manifest m;
  std::string error;
  ASSERT_TRUE(runner::ParseManifest(
      R"({"manifest_version": 1, "name": "sampled_smoke",
          "defaults": {"sim_instrs": 60000, "ff_instrs": 10000,
                       "sampling": {"period": 12000, "detail": 1500,
                                    "warmup": 2000}},
          "workloads": ["matrix", "mcf", "update"],
          "configs": [{"label": "base"},
                      {"label": "spear256", "spear": true, "ifq": 256}],
          "derived": [{"name": "spd", "op": "mean_ratio", "metric": "ipc",
                       "num": "spear256", "den": "base"}]})",
      &m, &error))
      << error;

  runner::RunnerOptions opts;
  opts.ckpt_dir = TempDir("sampled");

  // Cold builds the SPCK v2 trees, warm restores every interval from
  // them; the deterministic document must not notice.
  const runner::ManifestRunResult cold = runner::RunManifestInProcess(m, opts);
  EXPECT_EQ(cold.failed_jobs, 0);
  const runner::ManifestRunResult warm = runner::RunManifestInProcess(m, opts);
  EXPECT_EQ(warm.failed_jobs, 0);

  telemetry::JsonValue a = cold.document;
  telemetry::JsonValue b = warm.document;
  EXPECT_EQ(a.FindPath("run.stats.runner.ckpt.misses")->AsInt(), 3);
  EXPECT_GE(b.FindPath("run.stats.runner.ckpt.hits")->AsInt(), 3);
  a.Set("run", telemetry::JsonValue());
  b.Set("run", telemetry::JsonValue());
  EXPECT_EQ(a.Dump(2), b.Dump(2));

  // Every row is a sampled row: the manifest echo and each job's stats
  // carry the sampling members, and the derived metric still evaluates.
  ASSERT_NE(cold.document.FindPath("defaults.sampling.period"), nullptr);
  const telemetry::JsonValue* jobs = cold.document.Find("jobs");
  ASSERT_NE(jobs, nullptr);
  for (const telemetry::JsonValue& row : jobs->items()) {
    const telemetry::JsonValue* n = row.FindPath("stats.sampling.intervals");
    ASSERT_NE(n, nullptr);
    EXPECT_GT(n->AsInt(), 0);
    EXPECT_TRUE(row.FindPath("stats.complete")->AsBool());
  }
  EXPECT_GT(cold.document.FindPath("derived.spd")->AsDouble(), 0.0);
}

}  // namespace
}  // namespace spear::sampling
