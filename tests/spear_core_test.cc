// SPEAR front-end hardware tests: trigger logic, P-thread Extractor,
// p-thread execution semantics, and end-to-end prefetching effect, all
// with hand-written PThreadSpecs (compiler-independent).
#include <gtest/gtest.h>

#include "cpu/core.h"
#include "isa/assembler.h"
#include "sim/emulator.h"
#include "spear/pthread_context.h"
#include "spear/pthread_table.h"
#include "test_programs.h"

namespace spear {
namespace {

using testprog::BuildChase;
using testprog::BuildGather;
using testprog::GatherProgram;

// ---- PThreadTable unit tests ----

TEST(PThreadTable, EmptyTable) {
  PThreadTable pt;
  EXPECT_TRUE(pt.empty());
  EXPECT_FALSE(pt.InAnySlice(0x1000));
  EXPECT_EQ(pt.DloadSpec(0x1000), PThreadTable::kNoSpec);
}

TEST(PThreadTable, LookupBySliceAndDload) {
  PThreadSpec s1;
  s1.dload_pc = 0x1010;
  s1.slice_pcs = {0x1000, 0x1010};
  PThreadSpec s2;
  s2.dload_pc = 0x2020;
  s2.slice_pcs = {0x2000, 0x2010, 0x2020};
  PThreadTable pt({s1, s2});
  EXPECT_EQ(pt.size(), 2u);
  EXPECT_TRUE(pt.InAnySlice(0x1000));
  EXPECT_TRUE(pt.InAnySlice(0x2010));
  EXPECT_FALSE(pt.InAnySlice(0x1008));
  EXPECT_EQ(pt.DloadSpec(0x1010), 0);
  EXPECT_EQ(pt.DloadSpec(0x2020), 1);
  EXPECT_EQ(pt.DloadSpec(0x1000), PThreadTable::kNoSpec);
  EXPECT_EQ(pt.spec(1).slice_pcs.size(), 3u);
}

// ---- PThreadContext unit tests ----

TEST(PThreadContext, LoadsReadMainMemory) {
  Memory mem;
  mem.WriteU32(0x100, 4242);
  PThreadContext ctx(&mem);
  EXPECT_EQ(ctx.LoadU32(0x100), 4242u);
}

TEST(PThreadContext, StoresStayPrivateButForward) {
  Memory mem;
  mem.WriteU32(0x100, 1);
  PThreadContext ctx(&mem);
  ctx.StoreU32(0x100, 99);
  EXPECT_EQ(ctx.LoadU32(0x100), 99u);   // forwarded from store buffer
  EXPECT_EQ(mem.ReadU32(0x100), 1u);    // main memory untouched
}

TEST(PThreadContext, PartialForwardMergesBytes) {
  Memory mem;
  mem.WriteU32(0x200, 0xaabbccdd);
  PThreadContext ctx(&mem);
  ctx.StoreU8(0x201, 0x11);  // overwrite one middle byte privately
  EXPECT_EQ(ctx.LoadU32(0x200), 0xaabb11ddu);
}

TEST(PThreadContext, ResetClearsRegistersAndBuffer) {
  Memory mem;
  PThreadContext ctx(&mem);
  ctx.CopyLiveInInt(IntReg(3), 77);
  ctx.StoreU32(0x300, 5);
  ctx.Reset();
  EXPECT_EQ(ctx.ReadInt(IntReg(3)), 0u);
  EXPECT_EQ(ctx.store_buffer_entries(), 0u);
  EXPECT_EQ(ctx.LoadU32(0x300), 0u);  // back to main memory (zero)
}

TEST(PThreadContext, F64RoundTripThroughStoreBuffer) {
  Memory mem;
  PThreadContext ctx(&mem);
  ctx.StoreF64(0x400, 6.5);
  EXPECT_DOUBLE_EQ(ctx.LoadF64(0x400), 6.5);
  EXPECT_DOUBLE_EQ(mem.ReadF64(0x400), 0.0);
}

// ---- end-to-end hardware behaviour ----

// Gather kernel sized so the d-load misses heavily (table >> L2).
GatherProgram BigGather() {
  return BuildGather(/*iterations=*/20000, /*table_words=*/1 << 20);
}

TEST(SpearCore, SemanticsUnchangedByPreExecution) {
  const GatherProgram g = BigGather();
  Emulator emu(g.prog);
  emu.Run(10'000'000);
  ASSERT_TRUE(emu.halted());

  Core core(g.prog, SpearCoreConfig(128));
  const RunResult rr = core.Run(UINT64_MAX, 100'000'000);
  ASSERT_TRUE(rr.halted);
  EXPECT_EQ(core.outputs(), emu.outputs());
  EXPECT_GT(core.stats().triggers_fired, 0u);
}

TEST(SpearCore, TriggersFireAndSessionsComplete) {
  const GatherProgram g = BigGather();
  Core core(g.prog, SpearCoreConfig(128));
  core.Run(UINT64_MAX, 100'000'000);
  const CoreStats& s = core.stats();
  EXPECT_GT(s.triggers_fired, 10u);
  EXPECT_GT(s.preexec_sessions_completed, 10u);
  EXPECT_GT(s.pthread_extracted, 100u);
  EXPECT_GT(s.pthread_loads_issued, 100u);
  EXPECT_GT(s.preexec_cycles, 0u);
}

// Regression for the PE scan-pointer desync the old silent clamp hid:
// when the PE stalls (1-wide extraction, tiny p-thread RUU), main
// dispatch pops unmarked IFQ entries the PE has not scanned yet, and the
// pointer must advance with every pop — marked or not — or it ends up
// trailing the IFQ head. A starved PE makes the stall constant, so this
// configuration tripped the clamp on the old code; it must now never
// resync, and the session machinery must keep working regardless.
TEST(SpearCore, StalledExtractorNeverDesyncsScanPointer) {
  const GatherProgram g = BigGather();
  CoreConfig cfg = SpearCoreConfig(128);
  cfg.spear.extract_per_cycle = 1;
  cfg.spear.pthread_ruu_size = 4;
  Core core(g.prog, cfg);
  core.Run(UINT64_MAX, 100'000'000);
  const CoreStats& s = core.stats();
  EXPECT_EQ(s.pe_scan_resyncs, 0u);
  EXPECT_GT(s.triggers_fired, 0u);
  EXPECT_GT(s.pthread_extracted, 0u);
  EXPECT_GT(s.preexec_sessions_completed, 0u);
}

TEST(SpearCore, PrefetchingReducesMainThreadMisses) {
  const GatherProgram g = BigGather();
  Core base(g.prog, BaselineConfig(128));
  base.Run(UINT64_MAX, 100'000'000);
  Core sp(g.prog, SpearCoreConfig(128));
  sp.Run(UINT64_MAX, 100'000'000);
  const std::uint64_t base_misses = base.hierarchy().l1d().misses(kMainThread);
  const std::uint64_t spear_misses = sp.hierarchy().l1d().misses(kMainThread);
  EXPECT_LT(spear_misses, base_misses * 9 / 10)
      << "base=" << base_misses << " spear=" << spear_misses;
}

TEST(SpearCore, SpeedupOnGatherKernel) {
  const GatherProgram g = BigGather();
  Core base(g.prog, BaselineConfig(128));
  const RunResult rb = base.Run(UINT64_MAX, 100'000'000);
  Core sp(g.prog, SpearCoreConfig(128));
  const RunResult rs = sp.Run(UINT64_MAX, 100'000'000);
  ASSERT_TRUE(rb.halted && rs.halted);
  EXPECT_EQ(rb.instructions, rs.instructions);
  EXPECT_LT(rs.cycles, rb.cycles) << "SPEAR should beat baseline here";
}

TEST(SpearCore, LongerIfqExtendsPrefetchDistance) {
  const GatherProgram g = BigGather();
  Core s128(g.prog, SpearCoreConfig(128));
  const RunResult r128 = s128.Run(UINT64_MAX, 100'000'000);
  Core s256(g.prog, SpearCoreConfig(256));
  const RunResult r256 = s256.Run(UINT64_MAX, 100'000'000);
  // The gather loop is perfectly predicted, so the longer IFQ must not
  // hurt and should extract more slice instructions per session.
  EXPECT_LE(r256.cycles, r128.cycles * 101 / 100);
  EXPECT_GE(s256.stats().pthread_extracted, s128.stats().pthread_extracted);
}

TEST(SpearCore, SeparateFuModeAtLeastAsFast) {
  const GatherProgram g = BigGather();
  Core shared(g.prog, SpearCoreConfig(128, /*separate_fu=*/false));
  const RunResult rs = shared.Run(UINT64_MAX, 100'000'000);
  Core sf(g.prog, SpearCoreConfig(128, /*separate_fu=*/true));
  const RunResult rf = sf.Run(UINT64_MAX, 100'000'000);
  EXPECT_LE(rf.cycles, rs.cycles * 102 / 100);
}

TEST(SpearCore, NoTriggerWithoutOccupancy) {
  // A d-load pre-decoded while the IFQ is nearly empty (straight-line code
  // shortly after program start) must not trigger: the paper requires at
  // least half the IFQ to be filled so the p-thread has a window to mine.
  Program prog;
  prog.AddSegment(0x100000, 64);
  Assembler a(&prog);
  a.la(r(1), 0x100000);
  const Pc dload = a.Here();
  a.lw(r(2), r(1), 0);
  for (int i = 0; i < 20; ++i) a.addi(r(3), r(3), 1);
  a.halt();
  a.Finish();
  PThreadSpec spec;
  spec.dload_pc = dload;
  spec.slice_pcs = {dload};
  spec.live_ins = {IntReg(1)};
  prog.pthreads.push_back(spec);

  Core core(prog, SpearCoreConfig(128));
  core.Run(UINT64_MAX, 1'000'000);
  EXPECT_EQ(core.stats().triggers_fired, 0u);
  EXPECT_EQ(core.stats().triggers_suppressed_occupancy, 1u);
}

TEST(SpearCore, OccupancyDivOneRequiresFullIfq) {
  const GatherProgram g = BigGather();
  CoreConfig cfg = SpearCoreConfig(128);
  cfg.spear.trigger_occupancy_div = 1;  // require a completely full IFQ
  Core strict(g.prog, cfg);
  strict.Run(UINT64_MAX, 100'000'000);
  Core normal(g.prog, SpearCoreConfig(128));
  normal.Run(UINT64_MAX, 100'000'000);
  EXPECT_LE(strict.stats().triggers_fired, normal.stats().triggers_fired);
}

TEST(SpearCore, DrainPoliciesPreserveSemantics) {
  const GatherProgram g = BigGather();
  Emulator emu(g.prog);
  emu.Run(10'000'000);
  for (TriggerDrainPolicy policy :
       {TriggerDrainPolicy::kImmediate, TriggerDrainPolicy::kDrainToTrigger,
        TriggerDrainPolicy::kStallDispatch}) {
    CoreConfig cfg = SpearCoreConfig(128);
    cfg.spear.drain_policy = policy;
    Core core(g.prog, cfg);
    const RunResult rr = core.Run(UINT64_MAX, 100'000'000);
    ASSERT_TRUE(rr.halted);
    EXPECT_EQ(core.outputs(), emu.outputs());
    EXPECT_GT(core.stats().triggers_fired, 0u);
  }
}

TEST(SpearCore, ImmediatePolicyHasNoDrainCycles) {
  const GatherProgram g = BigGather();
  Core core(g.prog, SpearCoreConfig(128));  // default policy = kImmediate
  core.Run(UINT64_MAX, 100'000'000);
  EXPECT_EQ(core.stats().drain_cycles, 0u);
  EXPECT_GT(core.stats().copy_cycles, 0u);  // 1 cycle per live-in register
}

TEST(SpearCore, StallDispatchPolicyPaysDrainCycles) {
  const GatherProgram g = BigGather();
  CoreConfig cfg = SpearCoreConfig(128);
  cfg.spear.drain_policy = TriggerDrainPolicy::kStallDispatch;
  Core core(g.prog, cfg);
  const RunResult stall = core.Run(UINT64_MAX, 100'000'000);
  Core fast(g.prog, SpearCoreConfig(128));
  const RunResult imm = fast.Run(UINT64_MAX, 100'000'000);
  EXPECT_GT(core.stats().drain_cycles, 0u);
  EXPECT_GT(core.stats().dispatch_stall_trigger, 0u);
  EXPECT_GT(stall.cycles, imm.cycles);  // the drain costs real time
}

TEST(SpearCore, SerialChaseDoesNoSemanticHarm) {
  const Program prog = BuildChase(/*nodes=*/4096, /*hops=*/20000);
  Emulator emu(prog);
  emu.Run(10'000'000);
  ASSERT_TRUE(emu.halted());
  Core core(prog, SpearCoreConfig(128));
  const RunResult rr = core.Run(UINT64_MAX, 200'000'000);
  ASSERT_TRUE(rr.halted);
  EXPECT_EQ(core.outputs(), emu.outputs());
}

TEST(SpearCore, DisabledSpearIgnoresAnnotations) {
  const GatherProgram g = BigGather();
  Core core(g.prog, BaselineConfig(128));  // spear.enabled = false
  core.Run(UINT64_MAX, 100'000'000);
  EXPECT_EQ(core.stats().triggers_fired, 0u);
  EXPECT_EQ(core.stats().pthread_extracted, 0u);
  EXPECT_EQ(core.hierarchy().l1d().misses(kPThread), 0u);
}

TEST(SpearCore, PThreadStoresNeverReachMemory) {
  // Build a kernel whose *slice* includes a store (read-modify-write on a
  // private accumulator feeding the d-load address). The p-thread will
  // pre-execute the store; architectural results must still match the
  // emulator exactly.
  Program prog;
  const Addr acc_addr = 0x04000000;
  const Addr table_base = 0x05000000;
  const int table_words = 1 << 20;
  DataSegment& acc = prog.AddSegment(acc_addr, 16);
  PokeU32(acc, acc_addr, 1);
  DataSegment& tab = prog.AddSegment(
      table_base, static_cast<std::size_t>(table_words) * 4);
  for (int i = 0; i < table_words; ++i) {
    PokeU32(tab, table_base + static_cast<Addr>(i) * 4,
            static_cast<std::uint32_t>(i * 2654435761u));
  }

  Assembler a(&prog);
  Label loop = a.NewLabel();
  a.la(r(8), acc_addr);
  a.la(r(9), table_base);
  a.li(r(2), 20000);
  a.li(r(3), 0);
  a.Bind(loop);
  const Pc p0 = a.Here();
  a.lw(r(4), r(8), 0);          // load accumulator   (slice)
  const Pc p1 = a.Here();
  a.addi(r(4), r(4), 12345);    //                    (slice)
  const Pc p2 = a.Here();
  a.sw(r(4), r(8), 0);          // store accumulator  (slice!)
  const Pc p3 = a.Here();
  a.andi(r(5), r(4), table_words - 1);  //             (slice)
  const Pc p4 = a.Here();
  a.slli(r(5), r(5), 2);        //                    (slice)
  const Pc p5 = a.Here();
  a.add(r(5), r(9), r(5));      //                    (slice)
  const Pc p6 = a.Here();
  a.lw(r(6), r(5), 0);          // d-load             (slice, trigger)
  a.add(r(3), r(3), r(6));
  a.addi(r(2), r(2), -1);
  a.bne(r(2), r(0), loop);
  a.out(r(3));
  a.halt();
  a.Finish();

  PThreadSpec spec;
  spec.dload_pc = p6;
  spec.slice_pcs = {p0, p1, p2, p3, p4, p5, p6};
  spec.live_ins = {IntReg(8), IntReg(9)};
  prog.pthreads.push_back(spec);

  Emulator emu(prog);
  emu.Run(10'000'000);
  ASSERT_TRUE(emu.halted());

  Core core(prog, SpearCoreConfig(128));
  const RunResult rr = core.Run(UINT64_MAX, 200'000'000);
  ASSERT_TRUE(rr.halted);
  EXPECT_GT(core.stats().triggers_fired, 0u);
  EXPECT_EQ(core.outputs(), emu.outputs());
}

TEST(SpearCore, RecoveryAbortsInFlightSession) {
  // Gather kernel with an unpredictable branch in the loop: mispredict
  // recoveries will land while sessions are in flight; everything must
  // stay architecturally exact and some sessions should abort.
  Program prog;
  const Addr index_base = 0x01000000;
  const Addr table_base = 0x02000000;
  const int iterations = 20000;
  const int table_words = 1 << 20;
  Rng rng(5);
  DataSegment& idx = prog.AddSegment(index_base,
                                     static_cast<std::size_t>(iterations) * 4);
  for (int i = 0; i < iterations; ++i) {
    PokeU32(idx, index_base + static_cast<Addr>(i) * 4,
            static_cast<std::uint32_t>(rng.Below(table_words)));
  }
  prog.AddSegment(table_base, static_cast<std::size_t>(table_words) * 4);

  Assembler a(&prog);
  Label loop = a.NewLabel(), skip = a.NewLabel();
  a.la(r(1), index_base);
  a.li(r(2), iterations);
  a.li(r(3), 0);
  a.la(r(9), table_base);
  a.Bind(loop);
  const Pc p0 = a.Here();
  a.lw(r(4), r(1), 0);
  const Pc p1 = a.Here();
  a.slli(r(5), r(4), 2);
  const Pc p2 = a.Here();
  a.add(r(5), r(9), r(5));
  const Pc p3 = a.Here();
  a.lw(r(6), r(5), 0);
  a.andi(r(7), r(4), 1);        // unpredictable bit from the index stream
  a.beq(r(7), r(0), skip);
  a.add(r(3), r(3), r(6));
  a.Bind(skip);
  const Pc p4 = a.Here();
  a.addi(r(1), r(1), 4);
  a.addi(r(2), r(2), -1);
  a.bne(r(2), r(0), loop);
  a.out(r(3));
  a.halt();
  a.Finish();

  PThreadSpec spec;
  spec.dload_pc = p3;
  spec.slice_pcs = {p0, p1, p2, p3, p4};
  spec.live_ins = {IntReg(1), IntReg(9)};
  prog.pthreads.push_back(spec);

  Emulator emu(prog);
  emu.Run(10'000'000);
  ASSERT_TRUE(emu.halted());

  Core core(prog, SpearCoreConfig(128));
  const RunResult rr = core.Run(UINT64_MAX, 200'000'000);
  ASSERT_TRUE(rr.halted);
  EXPECT_EQ(core.outputs(), emu.outputs());
  EXPECT_GT(core.stats().mispredict_recoveries, 1000u);
  EXPECT_GT(core.stats().triggers_fired, 0u);
}

// Parameterized sweep: SPEAR must preserve semantics for every IFQ size,
// drain policy and FU arrangement combination.
struct SpearVariant {
  std::uint32_t ifq;
  bool separate_fu;
  TriggerDrainPolicy drain;
};

class SpearVariantTest : public testing::TestWithParam<SpearVariant> {};

TEST_P(SpearVariantTest, OracleExactOnGather) {
  const SpearVariant v = GetParam();
  const GatherProgram g = BuildGather(/*iterations=*/8000,
                                      /*table_words=*/1 << 19);
  Emulator emu(g.prog);
  emu.Run(10'000'000);
  ASSERT_TRUE(emu.halted());

  CoreConfig cfg = SpearCoreConfig(v.ifq, v.separate_fu);
  cfg.spear.drain_policy = v.drain;
  Core core(g.prog, cfg);
  core.set_trace_commits(false);
  const RunResult rr = core.Run(UINT64_MAX, 200'000'000);
  ASSERT_TRUE(rr.halted);
  EXPECT_EQ(core.outputs(), emu.outputs());
}

INSTANTIATE_TEST_SUITE_P(
    Variants, SpearVariantTest,
    testing::Values(
        SpearVariant{128, false, TriggerDrainPolicy::kImmediate},
        SpearVariant{256, false, TriggerDrainPolicy::kImmediate},
        SpearVariant{128, true, TriggerDrainPolicy::kImmediate},
        SpearVariant{256, true, TriggerDrainPolicy::kImmediate},
        SpearVariant{128, false, TriggerDrainPolicy::kDrainToTrigger},
        SpearVariant{256, true, TriggerDrainPolicy::kDrainToTrigger},
        SpearVariant{128, false, TriggerDrainPolicy::kStallDispatch},
        SpearVariant{256, true, TriggerDrainPolicy::kStallDispatch},
        SpearVariant{64, false, TriggerDrainPolicy::kImmediate},
        SpearVariant{512, false, TriggerDrainPolicy::kImmediate}));

}  // namespace
}  // namespace spear
