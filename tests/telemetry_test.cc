// Telemetry subsystem tests: registry units, JSON round-trip, trace
// encode/decode, exporter well-formedness on a real SPEAR workload, and the
// two determinism guarantees (identical runs emit byte-identical JSON;
// attaching a trace never changes simulated timing).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/core.h"
#include "eval/harness.h"
#include "telemetry/json.h"
#include "telemetry/registry.h"
#include "telemetry/stat.h"
#include "telemetry/trace.h"

namespace spear {
namespace {

using telemetry::Distribution;
using telemetry::JsonParse;
using telemetry::JsonValue;
using telemetry::PipeTrace;
using telemetry::StatRegistry;
using telemetry::TraceEvent;
using telemetry::TraceRecord;
using telemetry::TraceUid;

// ---- registry units (cover the old flat StatsRegistry contract too) ----

TEST(StatRegistry, BindAndReadCounter) {
  StatRegistry reg;
  std::uint64_t counter = 5;
  reg.BindCounter("core.cycles", &counter);
  EXPECT_TRUE(reg.Has("core.cycles"));
  EXPECT_EQ(reg.Counter("core.cycles"), 5u);
  counter = 11;  // live pointer: later reads see the new value
  EXPECT_EQ(reg.Counter("core.cycles"), 11u);
}

TEST(StatRegistry, RatioHandlesZeroDenominator) {
  StatRegistry reg;
  std::uint64_t num = 10, den = 0;
  reg.BindCounter("n", &num);
  reg.BindCounter("d", &den);
  EXPECT_EQ(reg.Ratio("n", "d"), 0.0);
  den = 4;
  EXPECT_DOUBLE_EQ(reg.Ratio("n", "d"), 2.5);
}

TEST(StatRegistry, FormulaEvaluatesLazily) {
  StatRegistry reg;
  std::uint64_t committed = 0, cycles = 0;
  reg.BindCounter("committed", &committed);
  reg.BindCounter("cycles", &cycles);
  reg.AddFormula("ipc", [&] {
    return telemetry::SafeRatio(committed, cycles);
  });
  EXPECT_EQ(reg.Eval("ipc"), 0.0);
  committed = 30;
  cycles = 10;
  EXPECT_DOUBLE_EQ(reg.Eval("ipc"), 3.0);
}

TEST(StatRegistry, RebindReplacesInsteadOfDuplicating) {
  StatRegistry reg;
  std::uint64_t a = 1, b = 2;
  reg.BindCounter("x", &a);
  reg.BindCounter("x", &b);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.Counter("x"), 2u);
}

TEST(Distribution, MomentsAndBuckets) {
  Distribution d{std::vector<std::uint64_t>{2, 4}};
  for (std::uint64_t v : {1, 2, 3, 4, 10}) d.Add(v);
  EXPECT_EQ(d.count(), 5u);
  EXPECT_EQ(d.sum(), 20u);
  EXPECT_EQ(d.min(), 1u);
  EXPECT_EQ(d.max(), 10u);
  EXPECT_DOUBLE_EQ(d.Mean(), 4.0);
  // buckets: v<=2 -> {1,2}, v<=4 -> {3,4}, overflow -> {10}
  ASSERT_EQ(d.buckets().size(), 3u);
  EXPECT_EQ(d.buckets()[0], 2u);
  EXPECT_EQ(d.buckets()[1], 2u);
  EXPECT_EQ(d.buckets()[2], 1u);
}

TEST(Distribution, MergeMatchesFeedingEverySample) {
  const std::vector<std::uint64_t> bounds{2, 4};
  Distribution a{bounds}, b{bounds}, all{bounds};
  for (std::uint64_t v : {1, 4, 10}) {
    a.Add(v);
    all.Add(v);
  }
  for (std::uint64_t v : {2, 3}) {
    b.Add(v);
    all.Add(v);
  }

  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.sum(), all.sum());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_DOUBLE_EQ(a.Mean(), all.Mean());
  EXPECT_DOUBLE_EQ(a.Variance(), all.Variance());
  ASSERT_EQ(a.buckets().size(), all.buckets().size());
  for (std::size_t i = 0; i < a.buckets().size(); ++i) {
    EXPECT_EQ(a.buckets()[i], all.buckets()[i]) << "bucket " << i;
  }
}

TEST(Distribution, MergeEmptySides) {
  const std::vector<std::uint64_t> bounds{8};
  Distribution a{bounds}, empty{bounds};
  a.Add(5);
  a.Add(9);

  // Merging an empty distribution changes nothing — including the
  // extrema, which an empty side must not contribute to.
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 9u);

  // Merging INTO an empty one adopts the other side wholesale.
  Distribution into{bounds};
  into.Merge(a);
  EXPECT_EQ(into.count(), 2u);
  EXPECT_EQ(into.sum(), 14u);
  EXPECT_EQ(into.min(), 5u);
  EXPECT_EQ(into.max(), 9u);
}

// ---- JSON emit -> parse round-trip ----

TEST(Json, EmitParseRoundTrip) {
  StatRegistry reg;
  std::uint64_t cycles = 1234;
  Distribution occ{std::vector<std::uint64_t>{8, 64}};
  occ.Add(3);
  occ.Add(100);
  reg.BindCounter("core.cycles", &cycles, "elapsed cycles");
  reg.BindDistribution("core.ifq.occupancy", &occ);
  reg.AddFormula("core.ipc", [] { return 1.5; });

  JsonValue meta = JsonValue::Object();
  meta.Set("binary", JsonValue("prog.bin"));
  const JsonValue doc = telemetry::StatsDocument(reg, "spearsim", meta);
  const std::string text = doc.Dump(2);

  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(JsonParse(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.FindPath("schema_version")->AsInt(),
            telemetry::kStatsSchemaVersion);
  EXPECT_EQ(parsed.FindPath("kind")->AsString(), "spearsim");
  EXPECT_EQ(parsed.FindPath("binary")->AsString(), "prog.bin");
  EXPECT_EQ(parsed.FindPath("stats.core.cycles")->AsInt(), 1234);
  EXPECT_DOUBLE_EQ(parsed.FindPath("stats.core.ipc")->AsDouble(), 1.5);
  EXPECT_EQ(parsed.FindPath("stats.core.ifq.occupancy.count")->AsInt(), 2);
  // Re-dumping the parsed document reproduces the text (stable writer).
  EXPECT_EQ(parsed.Dump(2), text);
}

TEST(Json, ParserRejectsMalformedInput) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(JsonParse("{\"a\": 1,}", &v, &error));
  EXPECT_FALSE(JsonParse("{\"a\": 1} trailing", &v, &error));
  EXPECT_FALSE(JsonParse("[1, 2", &v, &error));
  EXPECT_FALSE(JsonParse("", &v, &error));
}

TEST(Json, EscapesAndNumbers) {
  JsonValue obj = JsonValue::Object();
  obj.Set("s", JsonValue("line\nbreak \"quoted\""));
  obj.Set("neg", JsonValue(static_cast<std::int64_t>(-42)));
  obj.Set("frac", JsonValue(0.25));
  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(JsonParse(obj.Dump(), &parsed, &error)) << error;
  EXPECT_EQ(parsed.Find("s")->AsString(), "line\nbreak \"quoted\"");
  EXPECT_EQ(parsed.Find("neg")->AsInt(), -42);
  EXPECT_DOUBLE_EQ(parsed.Find("frac")->AsDouble(), 0.25);
}

// ---- trace: ring, encode/decode, exporters ----

TEST(PipeTrace, RecordsAndWindow) {
  PipeTrace::Config cfg;
  cfg.start_cycle = 100;
  cfg.num_cycles = 50;
  PipeTrace trace(cfg);
  trace.Record(TraceEvent::kFetch, 99, 1, 0x1000, kMainThread);   // before
  trace.Record(TraceEvent::kFetch, 100, 2, 0x1008, kMainThread);  // inside
  trace.Record(TraceEvent::kFetch, 149, 3, 0x1010, kMainThread);  // inside
  trace.Record(TraceEvent::kFetch, 150, 4, 0x1018, kMainThread);  // after
  const std::vector<TraceRecord> recs = trace.Records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].uid, 2u);
  EXPECT_EQ(recs[1].uid, 3u);
}

TEST(PipeTrace, RingOverwritesOldestAndCountsDrops) {
  PipeTrace::Config cfg;
  cfg.capacity = 4;
  PipeTrace trace(cfg);
  for (std::uint64_t i = 0; i < 10; ++i) {
    trace.Record(TraceEvent::kFetch, i, i, 0x1000, kMainThread);
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.dropped(), 6u);
  const std::vector<TraceRecord> recs = trace.Records();
  EXPECT_EQ(recs.front().uid, 6u);
  EXPECT_EQ(recs.back().uid, 9u);
}

TEST(PipeTrace, BinaryEncodeDecodeRoundTrip) {
  PipeTrace trace({});
  trace.Record(TraceEvent::kFetch, 10, TraceUid(5, kMainThread), 0x1028,
               kMainThread);
  trace.Record(TraceEvent::kTrigger, 12, TraceUid(5, kMainThread), 0x1028,
               kMainThread, 3);
  trace.Record(TraceEvent::kPtExtract, 14, TraceUid(7, kPThread), 0x1038,
               kPThread);
  const std::string bytes = trace.EncodeBinary();

  std::vector<TraceRecord> decoded;
  std::uint64_t dropped = 99;
  std::string error;
  ASSERT_TRUE(PipeTrace::DecodeBinary(bytes, &decoded, &dropped, &error))
      << error;
  EXPECT_EQ(dropped, 0u);
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0], trace.Records()[0]);
  EXPECT_EQ(decoded[1], trace.Records()[1]);
  EXPECT_EQ(decoded[2], trace.Records()[2]);
  EXPECT_EQ(decoded[1].aux, 3u);

  // Corruption is detected.
  std::string bad = bytes;
  bad[0] ^= 0xff;
  EXPECT_FALSE(PipeTrace::DecodeBinary(bad, &decoded, &dropped, &error));
}

// ---- end-to-end on a real SPEAR workload ----

EvalOptions QuickOptions() {
  EvalOptions opt;
  opt.sim_instrs = 20'000;
  return opt;
}

TEST(Telemetry, CoreRegistersAllNamespaces) {
  const EvalOptions opt = QuickOptions();
  const PreparedWorkload pw = PrepareWorkload("mcf", opt);
  Core core(pw.annotated, SpearCoreConfig(256));
  core.Run(opt.sim_instrs, opt.max_cycles);

  StatRegistry reg;
  core.RegisterStats(reg);
  for (const char* name :
       {"core.cycles", "core.commit.instructions", "core.ifq.occupancy",
        "core.ipc", "mem.l1d.misses.main", "mem.l2.misses.main",
        "mem.l1d.miss_ratio", "bpred.predicts", "bpred.hit_ratio",
        "spear.trigger.fired", "spear.pt.extracted", "spear.pt.slice_len"}) {
    EXPECT_TRUE(reg.Has(name)) << name;
  }
  EXPECT_EQ(reg.Counter("core.cycles"), core.stats().cycles);
  EXPECT_GT(reg.Counter("spear.trigger.fired"), 0u);
  EXPECT_GT(reg.Eval("core.ipc"), 0.0);
  EXPECT_EQ(reg.Dist("core.ifq.occupancy").count(), core.stats().cycles);
}

TEST(Telemetry, IdenticalRunsEmitIdenticalJson) {
  const EvalOptions opt = QuickOptions();
  const PreparedWorkload pw = PrepareWorkload("mcf", opt);

  auto run_to_json = [&]() {
    Core core(pw.annotated, SpearCoreConfig(256));
    core.Run(opt.sim_instrs, opt.max_cycles);
    StatRegistry reg;
    core.RegisterStats(reg);
    return telemetry::StatsDocument(reg, "spearsim", JsonValue::Object())
        .Dump(2);
  };
  EXPECT_EQ(run_to_json(), run_to_json());
}

TEST(Telemetry, AttachedTraceDoesNotChangeTiming) {
  const EvalOptions opt = QuickOptions();
  const PreparedWorkload pw = PrepareWorkload("mcf", opt);

  Core plain(pw.annotated, SpearCoreConfig(256));
  const RunResult rr_plain = plain.Run(opt.sim_instrs, opt.max_cycles);

  Core traced(pw.annotated, SpearCoreConfig(256));
  PipeTrace trace({});
  traced.set_trace(&trace);
  const RunResult rr_traced = traced.Run(opt.sim_instrs, opt.max_cycles);

  EXPECT_EQ(rr_plain.cycles, rr_traced.cycles);
  EXPECT_EQ(rr_plain.instructions, rr_traced.instructions);
  if (telemetry::kTraceCompiled) {
    EXPECT_GT(trace.size(), 0u);
  }
}

TEST(Telemetry, SpearRunTracesSessionEvents) {
  if (!telemetry::kTraceCompiled) {
    GTEST_SKIP() << "trace hooks compiled out (SPEAR_ENABLE_TRACE=OFF)";
  }
  const EvalOptions opt = QuickOptions();
  const PreparedWorkload pw = PrepareWorkload("mcf", opt);
  Core core(pw.annotated, SpearCoreConfig(256));
  PipeTrace trace({});
  core.set_trace(&trace);
  core.Run(opt.sim_instrs, opt.max_cycles);

  bool saw_trigger = false, saw_extract = false, saw_pt_retire = false;
  bool saw_commit = false;
  for (const TraceRecord& r : trace.Records()) {
    saw_trigger |= r.event == TraceEvent::kTrigger;
    saw_extract |= r.event == TraceEvent::kPtExtract;
    saw_pt_retire |= r.event == TraceEvent::kPtRetire;
    saw_commit |= r.event == TraceEvent::kCommit;
    if (r.event == TraceEvent::kPtExtract) {
      EXPECT_EQ(r.tid, kPThread);
    }
  }
  EXPECT_TRUE(saw_trigger);
  EXPECT_TRUE(saw_extract);
  EXPECT_TRUE(saw_pt_retire);
  EXPECT_TRUE(saw_commit);

  // The Kanata export is well-formed: version header, and every stage
  // start refers to an introduced instruction.
  const std::string kanata = trace.ExportKanata();
  EXPECT_EQ(kanata.rfind("Kanata\t0004", 0), 0u);
  EXPECT_NE(kanata.find("trigger fired"), std::string::npos);

  const std::string o3 = trace.ExportO3PipeView();
  EXPECT_NE(o3.find("O3PipeView:fetch:"), std::string::npos);
  EXPECT_NE(o3.find("O3PipeView:retire:"), std::string::npos);
}

// ---- RunStats extensions (satellite: L2 + wrong-path counters) ----

TEST(RunStatsExtensions, L2AndWrongPathCountersFlow) {
  const EvalOptions opt = QuickOptions();
  const PreparedWorkload pw = PrepareWorkload("mcf", opt);
  const RunStats s = RunConfig(pw.annotated, SpearCoreConfig(256), opt);
  EXPECT_GT(s.l2_misses_main, 0u);
  // mcf mispredicts some branches, so recovery cost shows up.
  EXPECT_GT(s.squashed_wrongpath + s.dispatched_wrongpath + s.ifq_flushed, 0u);

  const JsonValue j = RunStatsToJson(s);
  EXPECT_EQ(j.Find("l2_misses_main")->AsInt(),
            static_cast<std::int64_t>(s.l2_misses_main));
  EXPECT_EQ(j.Find("squashed_wrongpath")->AsInt(),
            static_cast<std::int64_t>(s.squashed_wrongpath));
  EXPECT_EQ(j.Find("halted")->AsBool(), s.halted);
}

}  // namespace
}  // namespace spear
